// Storage-system model (paper Section III-A.2 and III-A.4, Figure 4).
//
// The I/O network is over-provisioned relative to the file servers, so
// congestion happens at the storage side: the disks deliver at most
// `BWmax` GB/s in aggregate. Each compute node can inject at most `b` GB/s,
// so a job J_i transferring with all N_i nodes moves data at up to
// b*N_i GB/s. The model tracks every in-flight I/O request (one per job),
// accrues transferred volume under piecewise-constant rates, and reports the
// earliest completion. *Which* jobs transfer and at what rate is decided
// outside (by the I/O-aware policy in src/core); this module enforces only
// physics: rates are non-negative, capped at the job's full rate, and their
// sum never exceeds BWmax... except that the model itself does not clamp the
// sum — the BASE_LINE fair-share helper and the policies are responsible for
// producing feasible assignments, and the model validates them.
//
// Performance invariants (see DESIGN.md "Performance notes"): the transfer
// set is stored struct-of-arrays — one dense column per field, indexed by
// slot — with a job-id hash index, so Begin/End/Abort/Has/Get/SetRate are
// O(1) (End/Abort swap-erase every column and patch the index of the
// transfer that moved into the hole). The per-cycle hot loops (AdvanceTo,
// NextCompletion, the I/O scheduler's view building and rate imposition) run
// down the columns without touching the hash index; Columns() exposes them
// so the grant cycle can do the same. Aggregates over the active set —
// TotalAssignedRate, total demand, total node count — are maintained
// incrementally on every mutation instead of being recomputed by scans, and
// are reset to exactly zero whenever the active set empties so float drift
// cannot accumulate across a month-long replay. The (request_arrival,
// job_id) FCFS order is kept as a sorted vector of dense slot indices,
// updated on Begin/End/Abort, so arrival-order iteration is a hash-free
// gather and never re-sorts.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <unordered_map>
#include <utility>
#include <vector>

#include "ckpt/serializer.h"
#include "sim/time.h"
#include "workload/job.h"

namespace iosched::storage {

struct StorageConfig {
  /// Aggregate file-server bandwidth BWmax (GB/s). Mira: 250.
  double max_bandwidth_gbps = 250.0;
  /// Validate that assigned rates never sum above BWmax (tolerance applied).
  bool enforce_capacity = true;
};

/// Value snapshot of one in-flight I/O request (the k-th I/O of some job).
/// The model stores these fields column-wise; Get/End/ActiveByArrival
/// assemble snapshots on demand.
struct Transfer {
  workload::JobId job_id = 0;
  /// Nodes participating in the transfer (N_i).
  int nodes = 0;
  /// Full-speed rate b*N_i (GB/s).
  double full_rate_gbps = 0.0;
  /// Total volume of this request, Vol_{i,k} (GB).
  double volume_gb = 0.0;
  /// Already-transferred volume W_{i,k} (GB).
  double transferred_gb = 0.0;
  /// When this request was issued (t^{I/O}_{i,k}).
  sim::SimTime request_arrival = 0.0;
  /// Rate currently granted by the policy; 0 means suspended.
  double rate_gbps = 0.0;
  /// Fraction of the granted rate the transfer actually achieves (straggler
  /// injection; 1.0 = nominal). The policy keeps granting — and the
  /// aggregates keep accounting — `rate_gbps`, while volume accrues at
  /// `rate_gbps * efficiency`: that gap is exactly what timeout/retry and
  /// the invariant checker exist to surface.
  double efficiency = 1.0;

  double RemainingGb() const { return volume_gb - transferred_gb; }
  /// Rate at which volume actually accrues (GB/s).
  double EffectiveRate() const { return rate_gbps * efficiency; }
  bool Complete() const;
};

/// The set of in-flight transfers with piecewise-constant-rate progression.
class StorageModel {
 public:
  /// Sentinel for an unset per-transfer user slot (see SetUserSlot).
  static constexpr std::uint32_t kNoUserSlot = 0xffffffffu;

  /// Read-only view of the dense columns plus the FCFS slot permutation.
  /// Spans are invalidated by any mutation (Begin/End/Abort/SetRate keeps
  /// the spans themselves valid but SetRate changes values; Begin/End/Abort
  /// may reallocate or permute slots).
  struct ActiveColumns {
    std::span<const workload::JobId> job_ids;
    std::span<const int> nodes;
    std::span<const double> full_rates;
    std::span<const double> volumes;
    std::span<const double> transferred;
    std::span<const sim::SimTime> arrivals;
    std::span<const double> rates;
    std::span<const double> efficiencies;
    std::span<const std::uint32_t> user_slots;
    /// Dense slot indices sorted by (request_arrival, job_id).
    std::span<const std::size_t> arrival_order;
  };

  explicit StorageModel(StorageConfig config);

  const StorageConfig& config() const { return config_; }

  /// Register a new I/O request. The transfer starts suspended (rate 0);
  /// the policy assigns rates afterwards. `efficiency` in (0, 1] scales the
  /// achieved rate below the grant (straggler injection). Throws if the job
  /// already has an in-flight transfer, volume is negative, or efficiency is
  /// out of range.
  void Begin(workload::JobId job, int nodes, double full_rate_gbps,
             double volume_gb, sim::SimTime now, double efficiency = 1.0);

  /// Remove a transfer; requires it to be complete (all volume moved).
  /// Returns the removed transfer's final state so callers don't need a
  /// separate Get: lookup, completeness check, and erase are one index
  /// probe.
  Transfer End(workload::JobId job);

  /// Remove a transfer regardless of progress (job killed / simulation
  /// teardown).
  void Abort(workload::JobId job);

  /// Mark the transfer finished by writing off its remaining sliver. Used
  /// by the scheduler when a completion event lands a rounding error before
  /// the transfer's analytic finish time; only tiny remainders (below
  /// `max_sliver_gb`) may be written off — larger ones throw.
  void ForceComplete(workload::JobId job, double max_sliver_gb);

  bool Has(workload::JobId job) const;
  /// Value snapshot of the job's transfer; throws when absent. Binding the
  /// result to a const reference keeps it alive (lifetime extension), but
  /// the snapshot does NOT track later mutations — re-Get after AdvanceTo
  /// or SetRate.
  Transfer Get(workload::JobId job) const;
  /// Like Get, but returns nullopt instead of throwing when the job has no
  /// in-flight transfer — lets callers replace Has+Get pairs with one
  /// lookup.
  std::optional<Transfer> TryGet(workload::JobId job) const;
  std::size_t active_count() const { return job_ids_.size(); }

  /// Dense column view for hash-free hot-loop iteration in arrival order.
  ActiveColumns Columns() const;

  /// Per-slot derived quantities (slot = dense index from Columns()).
  double RemainingAt(std::size_t slot) const {
    return volumes_[slot] - transferred_[slot];
  }
  double EffectiveRateAt(std::size_t slot) const {
    return rates_[slot] * efficiencies_[slot];
  }
  bool CompleteAt(std::size_t slot) const;

  /// All in-flight transfers ordered by (request_arrival, job_id) — the
  /// FCFS order the paper's policies start from. The returned pointers
  /// address value snapshots materialized into an internal scratch buffer:
  /// they are invalidated by the next ActiveByArrival call or any mutation,
  /// and do not track later mutations. Compatibility/reporting path — hot
  /// loops use Columns() instead.
  std::vector<const Transfer*> ActiveByArrival() const;
  /// Allocation-free variant: clears and refills `out` (capacity is
  /// reused across cycles by the scheduler's scratch buffer).
  void ActiveByArrival(std::vector<const Transfer*>& out) const;

  /// Accrue progress up to `now` under the current rates. Must be called
  /// before changing rates so progress is attributed correctly. `now` must
  /// not precede the previous update.
  void AdvanceTo(sim::SimTime now);

  /// Change the aggregate bandwidth cap at runtime (storage degradation or
  /// repair). In-flight transfers are re-accrued up to `now` at their old
  /// rates first, so the change point attributes progress correctly. The
  /// granted rates are NOT rescaled here — after a shrink they may sum above
  /// the new cap — so after updating the cap this notifies the registered
  /// bandwidth-change listener, which is expected to run a scheduling cycle
  /// immediately and produce a feasible assignment before any further time
  /// passes (the IoScheduler registers itself; without a listener the caller
  /// must force a cycle by hand, as before). Throws on a non-positive cap.
  void SetMaxBandwidth(double max_bandwidth_gbps, sim::SimTime now);

  /// Invoked by SetMaxBandwidth with (new BWmax, change time) right after
  /// the cap is swapped. At most one listener; replace with nullptr to
  /// detach. Never fired by RestoreState.
  using BandwidthChangeListener = std::function<void(double, sim::SimTime)>;
  void SetBandwidthChangeListener(BandwidthChangeListener listener) {
    bandwidth_listener_ = std::move(listener);
  }

  /// Set one transfer's granted rate (GB/s); clamped guards throw instead:
  /// negative or above full_rate (with tolerance) is an error. Callers must
  /// AdvanceTo(now) first.
  void SetRate(workload::JobId job, double rate_gbps);
  /// Same, addressed by dense slot (skips the hash lookup; the grant cycle
  /// already knows the slot from Columns()).
  void SetRateAtSlot(std::size_t slot, double rate_gbps);

  /// Attach an opaque user slot to the job's transfer (the I/O scheduler
  /// caches its job-context slot here so view building never hashes).
  /// Runtime-only state: NOT serialized; re-attach after RestoreState.
  void SetUserSlot(workload::JobId job, std::uint32_t user_slot);

  /// Sum of currently granted rates (GB/s). Maintained incrementally.
  double TotalAssignedRate() const { return total_assigned_rate_; }
  /// Sum of full rates b*N_i over active transfers. Maintained
  /// incrementally.
  double TotalDemand() const { return total_demand_gbps_; }
  /// Sum of node counts over active transfers. Maintained incrementally.
  long long TotalActiveNodes() const { return total_nodes_; }

  /// Verify the assignment is feasible (sum <= BWmax + eps) when
  /// enforce_capacity; throws std::logic_error on violation.
  void ValidateAssignment() const;

  /// Earliest (time, job) at which an in-flight transfer completes under
  /// current rates, or nullopt when none can complete (all suspended or no
  /// transfers). Ties break toward the smaller job id.
  std::optional<std::pair<sim::SimTime, workload::JobId>> NextCompletion()
      const;

  sim::SimTime last_update() const { return last_update_; }

  /// Serialize the full transfer set (dense-slot order), the FCFS arrival
  /// order, the current BWmax (it may have been changed at runtime by a
  /// degradation window), and the incrementally-maintained aggregates.
  /// The aggregates are saved verbatim rather than recomputed on restore:
  /// they carry accumulated float state, and resume-equivalence requires
  /// the restored values to be bit-identical to the live ones. User slots
  /// are runtime-only and excluded (the byte layout predates them).
  void SaveState(ckpt::Writer& w) const;
  /// Restore onto a model constructed from the same StorageConfig. Replaces
  /// any current transfer set; user slots come back as kNoUserSlot.
  void RestoreState(ckpt::Reader& r);

 private:
  /// Dense slot of `job`; throws when absent.
  std::size_t SlotOf(workload::JobId job) const;
  /// Assemble a value snapshot of the transfer in `slot`.
  Transfer AssembleAt(std::size_t slot) const;
  /// Swap-erase the transfer at dense index `idx` across every column,
  /// patching the hash index of the element moved into the hole, removing
  /// the job from the FCFS order, and unwinding the incremental aggregates.
  void EraseAt(std::size_t idx);
  /// Position of `job` (arrival `t`) in the FCFS arrival_order_ vector.
  std::vector<std::size_t>::iterator ArrivalPos(sim::SimTime arrival,
                                                workload::JobId job);
  std::vector<std::size_t>::const_iterator ArrivalPos(
      sim::SimTime arrival, workload::JobId job) const;

  StorageConfig config_;
  // Struct-of-arrays transfer storage: one column per Transfer field, all
  // indexed by the same dense slot; `index_` maps job id -> slot.
  std::vector<workload::JobId> job_ids_;
  std::vector<int> nodes_;
  std::vector<double> full_rates_;
  std::vector<double> volumes_;
  std::vector<double> transferred_;
  std::vector<sim::SimTime> arrivals_;
  std::vector<double> rates_;
  std::vector<double> efficiencies_;
  // Opaque per-transfer user slot (see SetUserSlot); runtime-only.
  std::vector<std::uint32_t> user_slots_;
  std::unordered_map<workload::JobId, std::size_t> index_;
  // Dense slot indices sorted by (request_arrival, job_id); maintained on
  // Begin/End/Abort (including re-pointing the slot that a swap-erase
  // moves) so arrival-order iteration is a hash-free gather, never a sort.
  std::vector<std::size_t> arrival_order_;
  // Scratch for the ActiveByArrival compatibility path: value snapshots the
  // returned pointers address.
  mutable std::vector<Transfer> materialized_;
  // Incremental aggregates over the active set (reset to 0 when empty).
  double total_assigned_rate_ = 0.0;
  double total_demand_gbps_ = 0.0;
  long long total_nodes_ = 0;
  sim::SimTime last_update_ = 0.0;
  BandwidthChangeListener bandwidth_listener_;
};

/// Water-filling (weighted max-min) bandwidth split: distribute
/// `max_bandwidth_gbps` across transfers in proportion to node counts,
/// capping any transfer at its demand (full rate) and redistributing the
/// freed slack to the rest until BWmax is saturated or every demand is met.
/// `demands[i]` pairs with `nodes[i]`; writes one rate per index into
/// `rates_out` (same length). When total demand fits in BWmax every
/// transfer gets its full demand. When `iterations_out` is non-null it is
/// *incremented* by the number of water-filling steps this call performed
/// (0 on the uncongested fast path) — observability accounting only, the
/// rates are unaffected.
void WaterFillRates(std::span<const double> demands,
                    std::span<const int> nodes, double max_bandwidth_gbps,
                    std::span<double> rates_out,
                    std::uint64_t* iterations_out = nullptr);

/// BASE_LINE bandwidth allocation (paper Section IV-D): every active
/// transfer runs; when aggregate demand exceeds BWmax each *node* receives
/// an equal share BWmax / N_active, i.e. job i gets share * N_i — except
/// that a job whose full rate b*N_i is below its per-node share is capped
/// there and the freed bandwidth water-fills back to the uncapped jobs
/// (otherwise capped jobs would strand bandwidth and understate BASE_LINE
/// throughput). Returns pairs (job, rate) covering every active transfer;
/// the total reaches min(total demand, BWmax).
std::vector<std::pair<workload::JobId, double>> FairShareRates(
    const std::vector<const Transfer*>& active, double max_bandwidth_gbps);

}  // namespace iosched::storage
