// Storage-system model (paper Section III-A.2 and III-A.4, Figure 4).
//
// The I/O network is over-provisioned relative to the file servers, so
// congestion happens at the storage side: the disks deliver at most
// `BWmax` GB/s in aggregate. Each compute node can inject at most `b` GB/s,
// so a job J_i transferring with all N_i nodes moves data at up to
// b*N_i GB/s. The model tracks every in-flight I/O request (one per job),
// accrues transferred volume under piecewise-constant rates, and reports the
// earliest completion. *Which* jobs transfer and at what rate is decided
// outside (by the I/O-aware policy in src/core); this module enforces only
// physics: rates are non-negative, capped at the job's full rate, and their
// sum never exceeds BWmax... except that the model itself does not clamp the
// sum — the BASE_LINE fair-share helper and the policies are responsible for
// producing feasible assignments, and the model validates them.
#pragma once

#include <optional>
#include <utility>
#include <vector>

#include "sim/time.h"
#include "workload/job.h"

namespace iosched::storage {

struct StorageConfig {
  /// Aggregate file-server bandwidth BWmax (GB/s). Mira: 250.
  double max_bandwidth_gbps = 250.0;
  /// Validate that assigned rates never sum above BWmax (tolerance applied).
  bool enforce_capacity = true;
};

/// One in-flight I/O request (the k-th I/O of some job).
struct Transfer {
  workload::JobId job_id = 0;
  /// Nodes participating in the transfer (N_i).
  int nodes = 0;
  /// Full-speed rate b*N_i (GB/s).
  double full_rate_gbps = 0.0;
  /// Total volume of this request, Vol_{i,k} (GB).
  double volume_gb = 0.0;
  /// Already-transferred volume W_{i,k} (GB).
  double transferred_gb = 0.0;
  /// When this request was issued (t^{I/O}_{i,k}).
  sim::SimTime request_arrival = 0.0;
  /// Rate currently granted by the policy; 0 means suspended.
  double rate_gbps = 0.0;

  double RemainingGb() const { return volume_gb - transferred_gb; }
  bool Complete() const;
};

/// The set of in-flight transfers with piecewise-constant-rate progression.
class StorageModel {
 public:
  explicit StorageModel(StorageConfig config);

  const StorageConfig& config() const { return config_; }

  /// Register a new I/O request. The transfer starts suspended (rate 0);
  /// the policy assigns rates afterwards. Throws if the job already has an
  /// in-flight transfer or volume is negative.
  void Begin(workload::JobId job, int nodes, double full_rate_gbps,
             double volume_gb, sim::SimTime now);

  /// Remove a transfer; requires it to be complete (all volume moved).
  void End(workload::JobId job);

  /// Remove a transfer regardless of progress (job killed / simulation
  /// teardown).
  void Abort(workload::JobId job);

  /// Mark the transfer finished by writing off its remaining sliver. Used
  /// by the scheduler when a completion event lands a rounding error before
  /// the transfer's analytic finish time; only tiny remainders (below
  /// `max_sliver_gb`) may be written off — larger ones throw.
  void ForceComplete(workload::JobId job, double max_sliver_gb);

  bool Has(workload::JobId job) const;
  const Transfer& Get(workload::JobId job) const;
  std::size_t active_count() const { return transfers_.size(); }

  /// All in-flight transfers ordered by (request_arrival, job_id) — the
  /// FCFS order the paper's policies start from.
  std::vector<const Transfer*> ActiveByArrival() const;

  /// Accrue progress up to `now` under the current rates. Must be called
  /// before changing rates so progress is attributed correctly. `now` must
  /// not precede the previous update.
  void AdvanceTo(sim::SimTime now);

  /// Change the aggregate bandwidth cap at runtime (storage degradation or
  /// repair). In-flight transfers are re-accrued up to `now` at their old
  /// rates first, so the change point attributes progress correctly. The
  /// granted rates are NOT rescaled here — after a shrink they may sum above
  /// the new cap, so the caller must immediately run a scheduling cycle to
  /// produce a feasible assignment before any further time passes (the
  /// capacity validator only runs after such a cycle, so it cannot fire
  /// spuriously across the transition). Throws on a non-positive cap.
  void SetMaxBandwidth(double max_bandwidth_gbps, sim::SimTime now);

  /// Set one transfer's granted rate (GB/s); clamped guards throw instead:
  /// negative or above full_rate (with tolerance) is an error. Callers must
  /// AdvanceTo(now) first.
  void SetRate(workload::JobId job, double rate_gbps);

  /// Sum of currently granted rates (GB/s).
  double TotalAssignedRate() const;

  /// Verify the assignment is feasible (sum <= BWmax + eps) when
  /// enforce_capacity; throws std::logic_error on violation.
  void ValidateAssignment() const;

  /// Earliest (time, job) at which an in-flight transfer completes under
  /// current rates, or nullopt when none can complete (all suspended or no
  /// transfers). Ties break toward the smaller job id.
  std::optional<std::pair<sim::SimTime, workload::JobId>> NextCompletion()
      const;

  sim::SimTime last_update() const { return last_update_; }

 private:
  Transfer& GetMutable(workload::JobId job);

  StorageConfig config_;
  // Keyed storage; iteration order is made deterministic via ActiveByArrival.
  std::vector<Transfer> transfers_;
  sim::SimTime last_update_ = 0.0;
};

/// BASE_LINE bandwidth allocation (paper Section IV-D): every active
/// transfer runs; when aggregate demand exceeds BWmax each *node* receives
/// an equal share BWmax / N_active, i.e. job i gets share * N_i. Returns
/// pairs (job, rate) covering every active transfer.
std::vector<std::pair<workload::JobId, double>> FairShareRates(
    const std::vector<const Transfer*>& active, double max_bandwidth_gbps);

}  // namespace iosched::storage
