// Pluggable storage backends: the simulation core talks to a
// `StorageBackend`, which owns the shared parallel-file-system model
// (`StorageModel`, capped at BWmax) and optionally a fast absorbing tier in
// front of it (`BurstBuffer`). Two implementations:
//
//   SingleTierBackend  — the paper's model: every request contends for the
//                        PFS directly; `burst_buffer()` is nullptr.
//   BurstBufferBackend — two tiers: requests that fit are absorbed by the
//                        burst buffer and drained to the PFS asynchronously;
//                        the drain reservation comes out of BWmax.
//
// The backend also snapshots both tiers into a `TierStatus` for metrics,
// observability and the tier-aware policy hook.
#pragma once

#include <memory>
#include <optional>

#include "storage/burst_buffer.h"
#include "storage/storage_model.h"

namespace iosched::storage {

/// Point-in-time view of both tiers (all rates GB/s, volumes GB).
struct TierStatus {
  /// PFS tier.
  double pfs_bandwidth_gbps = 0.0;  ///< current BWmax (faults may lower it)
  double pfs_demand_gbps = 0.0;
  double pfs_assigned_gbps = 0.0;
  /// Burst-buffer tier (zeros when disabled).
  bool bb_enabled = false;
  double bb_capacity_gb = 0.0;
  double bb_queued_gb = 0.0;  ///< drain backlog
  double bb_drain_gbps = 0.0;  ///< reservation active right now
  bool bb_congested = false;  ///< occupancy above the watermark
};

class StorageBackend {
 public:
  explicit StorageBackend(StorageConfig config) : model_(config) {}
  virtual ~StorageBackend() = default;

  StorageBackend(const StorageBackend&) = delete;
  StorageBackend& operator=(const StorageBackend&) = delete;

  virtual const char* name() const = 0;

  /// The shared PFS tier (always present).
  StorageModel& model() { return model_; }
  const StorageModel& model() const { return model_; }

  /// The absorbing tier, when this backend has one.
  virtual BurstBuffer* burst_buffer() { return nullptr; }
  const BurstBuffer* burst_buffer() const {
    return const_cast<StorageBackend*>(this)->burst_buffer();
  }

  /// Bandwidth the policy may grant to direct traffic at `now`: BWmax minus
  /// the drain reservation (never negative). Advances the absorbing tier.
  virtual double UsableBandwidth(sim::SimTime now);

  /// Projected free absorb capacity (GB) of the absorbing tier at future
  /// instant `at` (>= now): current free space plus what the drain clears
  /// in between, capped at capacity — a faulted buffer projects 0. A
  /// backend with no absorbing tier projects +infinity ("absorb capacity
  /// is never the constraint"). Advances the absorbing tier to `now`; the
  /// projection itself mutates nothing. Feeds reservation-aware backfill
  /// admission (PLAN_BF).
  virtual double ProjectedFreeCapacityGb(sim::SimTime now, sim::SimTime at);

  TierStatus Status() const;

 protected:
  StorageModel model_;
};

class SingleTierBackend final : public StorageBackend {
 public:
  explicit SingleTierBackend(StorageConfig config)
      : StorageBackend(config) {}
  const char* name() const override { return "single_tier"; }
};

class BurstBufferBackend final : public StorageBackend {
 public:
  /// Throws std::invalid_argument unless 0 < drain < BWmax and the
  /// burst-buffer config is enabled.
  BurstBufferBackend(StorageConfig storage, BurstBufferConfig bb);
  const char* name() const override { return "burst_buffer"; }
  BurstBuffer* burst_buffer() override { return &buffer_; }
  double UsableBandwidth(sim::SimTime now) override;
  double ProjectedFreeCapacityGb(sim::SimTime now, sim::SimTime at) override;

 private:
  BurstBuffer buffer_;
};

/// Factory: burst-buffer backend when `bb.enabled()`, single tier otherwise.
std::unique_ptr<StorageBackend> MakeBackend(const StorageConfig& storage,
                                            const BurstBufferConfig& bb = {});

}  // namespace iosched::storage
