#include "storage/storage_model.h"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "util/units.h"

namespace iosched::storage {

bool Transfer::Complete() const {
  return RemainingGb() <= util::kVolumeEpsilon * std::max(1.0, volume_gb);
}

StorageModel::StorageModel(StorageConfig config) : config_(config) {
  if (config_.max_bandwidth_gbps <= 0) {
    throw std::invalid_argument("StorageModel: non-positive BWmax");
  }
}

void StorageModel::Begin(workload::JobId job, int nodes, double full_rate_gbps,
                         double volume_gb, sim::SimTime now) {
  if (Has(job)) {
    throw std::logic_error("StorageModel::Begin: job " + std::to_string(job) +
                           " already transferring");
  }
  if (nodes <= 0 || full_rate_gbps <= 0 || volume_gb < 0) {
    throw std::invalid_argument("StorageModel::Begin: bad transfer params");
  }
  AdvanceTo(now);
  Transfer t;
  t.job_id = job;
  t.nodes = nodes;
  t.full_rate_gbps = full_rate_gbps;
  t.volume_gb = volume_gb;
  t.request_arrival = now;
  transfers_.push_back(t);
}

Transfer& StorageModel::GetMutable(workload::JobId job) {
  for (Transfer& t : transfers_) {
    if (t.job_id == job) return t;
  }
  throw std::logic_error("StorageModel: no transfer for job " +
                         std::to_string(job));
}

void StorageModel::End(workload::JobId job) {
  const Transfer& t = GetMutable(job);
  if (!t.Complete()) {
    throw std::logic_error("StorageModel::End: job " + std::to_string(job) +
                           " not complete (" + std::to_string(t.RemainingGb()) +
                           " GB remaining)");
  }
  Abort(job);
}

void StorageModel::Abort(workload::JobId job) {
  auto it = std::find_if(transfers_.begin(), transfers_.end(),
                         [job](const Transfer& t) { return t.job_id == job; });
  if (it == transfers_.end()) {
    throw std::logic_error("StorageModel::Abort: no transfer for job " +
                           std::to_string(job));
  }
  transfers_.erase(it);
}

void StorageModel::ForceComplete(workload::JobId job, double max_sliver_gb) {
  Transfer& t = GetMutable(job);
  double sliver = t.RemainingGb();
  if (sliver > max_sliver_gb) {
    throw std::logic_error("StorageModel::ForceComplete: remaining " +
                           std::to_string(sliver) + " GB exceeds the sliver "
                           "threshold");
  }
  t.transferred_gb = t.volume_gb;
}

bool StorageModel::Has(workload::JobId job) const {
  return std::any_of(transfers_.begin(), transfers_.end(),
                     [job](const Transfer& t) { return t.job_id == job; });
}

const Transfer& StorageModel::Get(workload::JobId job) const {
  for (const Transfer& t : transfers_) {
    if (t.job_id == job) return t;
  }
  throw std::logic_error("StorageModel::Get: no transfer for job " +
                         std::to_string(job));
}

std::vector<const Transfer*> StorageModel::ActiveByArrival() const {
  std::vector<const Transfer*> out;
  out.reserve(transfers_.size());
  for (const Transfer& t : transfers_) out.push_back(&t);
  std::sort(out.begin(), out.end(), [](const Transfer* a, const Transfer* b) {
    if (a->request_arrival != b->request_arrival) {
      return a->request_arrival < b->request_arrival;
    }
    return a->job_id < b->job_id;
  });
  return out;
}

void StorageModel::AdvanceTo(sim::SimTime now) {
  if (now < last_update_ - util::kTimeEpsilon) {
    throw std::logic_error("StorageModel::AdvanceTo: time went backwards");
  }
  double dt = std::max(0.0, now - last_update_);
  if (dt > 0) {
    for (Transfer& t : transfers_) {
      if (t.rate_gbps > 0) {
        t.transferred_gb =
            std::min(t.volume_gb, t.transferred_gb + t.rate_gbps * dt);
      }
    }
  }
  last_update_ = std::max(last_update_, now);
}

void StorageModel::SetMaxBandwidth(double max_bandwidth_gbps,
                                   sim::SimTime now) {
  if (max_bandwidth_gbps <= 0) {
    throw std::invalid_argument(
        "StorageModel::SetMaxBandwidth: non-positive BWmax");
  }
  AdvanceTo(now);
  config_.max_bandwidth_gbps = max_bandwidth_gbps;
}

void StorageModel::SetRate(workload::JobId job, double rate_gbps) {
  Transfer& t = GetMutable(job);
  if (rate_gbps < 0) {
    throw std::invalid_argument("StorageModel::SetRate: negative rate");
  }
  // Allow a small relative tolerance for float round-off in shares.
  if (rate_gbps > t.full_rate_gbps * (1.0 + 1e-9) + util::kVolumeEpsilon) {
    throw std::invalid_argument(
        "StorageModel::SetRate: rate exceeds job's full rate");
  }
  t.rate_gbps = std::min(rate_gbps, t.full_rate_gbps);
}

double StorageModel::TotalAssignedRate() const {
  double total = 0.0;
  for (const Transfer& t : transfers_) total += t.rate_gbps;
  return total;
}

void StorageModel::ValidateAssignment() const {
  if (!config_.enforce_capacity) return;
  double total = TotalAssignedRate();
  if (total > config_.max_bandwidth_gbps * (1.0 + 1e-6)) {
    throw std::logic_error(
        "StorageModel: assigned rates exceed BWmax (" + std::to_string(total) +
        " > " + std::to_string(config_.max_bandwidth_gbps) + ")");
  }
}

std::optional<std::pair<sim::SimTime, workload::JobId>>
StorageModel::NextCompletion() const {
  std::optional<std::pair<sim::SimTime, workload::JobId>> best;
  for (const Transfer& t : transfers_) {
    sim::SimTime finish;
    if (t.Complete()) {
      finish = last_update_;
    } else if (t.rate_gbps > 0) {
      finish = last_update_ + t.RemainingGb() / t.rate_gbps;
    } else {
      continue;  // suspended transfers never finish on their own
    }
    if (!best || finish < best->first ||
        (finish == best->first && t.job_id < best->second)) {
      best = {finish, t.job_id};
    }
  }
  return best;
}

std::vector<std::pair<workload::JobId, double>> FairShareRates(
    const std::vector<const Transfer*>& active, double max_bandwidth_gbps) {
  std::vector<std::pair<workload::JobId, double>> rates;
  rates.reserve(active.size());
  long long total_nodes = 0;
  double total_demand = 0.0;
  for (const Transfer* t : active) {
    total_nodes += t->nodes;
    total_demand += t->full_rate_gbps;
  }
  if (active.empty()) return rates;
  if (total_demand <= max_bandwidth_gbps || total_nodes == 0) {
    for (const Transfer* t : active) {
      rates.emplace_back(t->job_id, t->full_rate_gbps);
    }
    return rates;
  }
  double per_node = max_bandwidth_gbps / static_cast<double>(total_nodes);
  for (const Transfer* t : active) {
    double rate = std::min(t->full_rate_gbps, per_node * t->nodes);
    rates.emplace_back(t->job_id, rate);
  }
  return rates;
}

}  // namespace iosched::storage
