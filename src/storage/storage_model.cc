#include "storage/storage_model.h"

#include <algorithm>
#include <numeric>
#include <stdexcept>
#include <string>
#include <utility>

#include "util/units.h"

namespace iosched::storage {

bool Transfer::Complete() const {
  return RemainingGb() <= util::kVolumeEpsilon * std::max(1.0, volume_gb);
}

StorageModel::StorageModel(StorageConfig config) : config_(config) {
  if (config_.max_bandwidth_gbps <= 0) {
    throw std::invalid_argument("StorageModel: non-positive BWmax");
  }
}

bool StorageModel::CompleteAt(std::size_t slot) const {
  return RemainingAt(slot) <=
         util::kVolumeEpsilon * std::max(1.0, volumes_[slot]);
}

std::vector<std::size_t>::const_iterator StorageModel::ArrivalPos(
    sim::SimTime arrival, workload::JobId job) const {
  return std::lower_bound(
      arrival_order_.begin(), arrival_order_.end(),
      std::pair<sim::SimTime, workload::JobId>(arrival, job),
      [this](std::size_t lhs,
             const std::pair<sim::SimTime, workload::JobId>& rhs) {
        if (arrivals_[lhs] != rhs.first) {
          return arrivals_[lhs] < rhs.first;
        }
        return job_ids_[lhs] < rhs.second;
      });
}

std::vector<std::size_t>::iterator StorageModel::ArrivalPos(
    sim::SimTime arrival, workload::JobId job) {
  auto pos = std::as_const(*this).ArrivalPos(arrival, job);
  return arrival_order_.begin() + (pos - arrival_order_.cbegin());
}

void StorageModel::Begin(workload::JobId job, int nodes, double full_rate_gbps,
                         double volume_gb, sim::SimTime now,
                         double efficiency) {
  if (Has(job)) {
    throw std::logic_error("StorageModel::Begin: job " + std::to_string(job) +
                           " already transferring");
  }
  if (nodes <= 0 || full_rate_gbps <= 0 || volume_gb < 0) {
    throw std::invalid_argument("StorageModel::Begin: bad transfer params");
  }
  if (efficiency <= 0 || efficiency > 1.0) {
    throw std::invalid_argument("StorageModel::Begin: bad efficiency");
  }
  AdvanceTo(now);
  index_.emplace(job, job_ids_.size());
  job_ids_.push_back(job);
  nodes_.push_back(nodes);
  full_rates_.push_back(full_rate_gbps);
  volumes_.push_back(volume_gb);
  transferred_.push_back(0.0);
  arrivals_.push_back(now);
  rates_.push_back(0.0);
  efficiencies_.push_back(efficiency);
  user_slots_.push_back(kNoUserSlot);
  arrival_order_.insert(ArrivalPos(now, job), job_ids_.size() - 1);
  total_demand_gbps_ += full_rate_gbps;
  total_nodes_ += nodes;
}

std::size_t StorageModel::SlotOf(workload::JobId job) const {
  auto it = index_.find(job);
  if (it == index_.end()) {
    throw std::logic_error("StorageModel: no transfer for job " +
                           std::to_string(job));
  }
  return it->second;
}

Transfer StorageModel::AssembleAt(std::size_t slot) const {
  Transfer t;
  t.job_id = job_ids_[slot];
  t.nodes = nodes_[slot];
  t.full_rate_gbps = full_rates_[slot];
  t.volume_gb = volumes_[slot];
  t.transferred_gb = transferred_[slot];
  t.request_arrival = arrivals_[slot];
  t.rate_gbps = rates_[slot];
  t.efficiency = efficiencies_[slot];
  return t;
}

void StorageModel::EraseAt(std::size_t idx) {
  total_demand_gbps_ -= full_rates_[idx];
  total_nodes_ -= nodes_[idx];
  total_assigned_rate_ -= rates_[idx];
  arrival_order_.erase(ArrivalPos(arrivals_[idx], job_ids_[idx]));
  index_.erase(job_ids_[idx]);
  const std::size_t last = job_ids_.size() - 1;
  if (idx != last) {
    job_ids_[idx] = job_ids_[last];
    nodes_[idx] = nodes_[last];
    full_rates_[idx] = full_rates_[last];
    volumes_[idx] = volumes_[last];
    transferred_[idx] = transferred_[last];
    arrivals_[idx] = arrivals_[last];
    rates_[idx] = rates_[last];
    efficiencies_[idx] = efficiencies_[last];
    user_slots_[idx] = user_slots_[last];
    index_[job_ids_[idx]] = idx;
    // The moved transfer's FCFS entry still points at the old back slot;
    // re-point it (its sort key is unchanged, so the order is intact).
    *ArrivalPos(arrivals_[idx], job_ids_[idx]) = idx;
  }
  job_ids_.pop_back();
  nodes_.pop_back();
  full_rates_.pop_back();
  volumes_.pop_back();
  transferred_.pop_back();
  arrivals_.pop_back();
  rates_.pop_back();
  efficiencies_.pop_back();
  user_slots_.pop_back();
  if (job_ids_.empty()) {
    // Pin the aggregates back to exact zero so incremental-update round-off
    // cannot accumulate across a month of transfers.
    total_demand_gbps_ = 0.0;
    total_nodes_ = 0;
    total_assigned_rate_ = 0.0;
  }
}

Transfer StorageModel::End(workload::JobId job) {
  std::size_t slot = SlotOf(job);
  Transfer t = AssembleAt(slot);
  if (!t.Complete()) {
    throw std::logic_error("StorageModel::End: job " + std::to_string(job) +
                           " not complete (" + std::to_string(t.RemainingGb()) +
                           " GB remaining)");
  }
  EraseAt(slot);
  return t;
}

void StorageModel::Abort(workload::JobId job) {
  auto it = index_.find(job);
  if (it == index_.end()) {
    throw std::logic_error("StorageModel::Abort: no transfer for job " +
                           std::to_string(job) + " (" +
                           std::to_string(job_ids_.size()) +
                           " active transfers)");
  }
  EraseAt(it->second);
}

void StorageModel::ForceComplete(workload::JobId job, double max_sliver_gb) {
  std::size_t slot = SlotOf(job);
  double sliver = RemainingAt(slot);
  if (sliver > max_sliver_gb) {
    throw std::logic_error("StorageModel::ForceComplete: remaining " +
                           std::to_string(sliver) + " GB exceeds the sliver "
                           "threshold");
  }
  transferred_[slot] = volumes_[slot];
}

bool StorageModel::Has(workload::JobId job) const {
  return index_.find(job) != index_.end();
}

Transfer StorageModel::Get(workload::JobId job) const {
  auto it = index_.find(job);
  if (it == index_.end()) {
    throw std::logic_error("StorageModel::Get: no transfer for job " +
                           std::to_string(job));
  }
  return AssembleAt(it->second);
}

std::optional<Transfer> StorageModel::TryGet(workload::JobId job) const {
  auto it = index_.find(job);
  if (it == index_.end()) return std::nullopt;
  return AssembleAt(it->second);
}

StorageModel::ActiveColumns StorageModel::Columns() const {
  ActiveColumns c;
  c.job_ids = job_ids_;
  c.nodes = nodes_;
  c.full_rates = full_rates_;
  c.volumes = volumes_;
  c.transferred = transferred_;
  c.arrivals = arrivals_;
  c.rates = rates_;
  c.efficiencies = efficiencies_;
  c.user_slots = user_slots_;
  c.arrival_order = arrival_order_;
  return c;
}

std::vector<const Transfer*> StorageModel::ActiveByArrival() const {
  std::vector<const Transfer*> out;
  ActiveByArrival(out);
  return out;
}

void StorageModel::ActiveByArrival(std::vector<const Transfer*>& out) const {
  out.clear();
  out.reserve(job_ids_.size());
  materialized_.clear();
  materialized_.reserve(job_ids_.size());
  for (std::size_t slot : arrival_order_) {
    materialized_.push_back(AssembleAt(slot));
  }
  for (const Transfer& t : materialized_) {
    out.push_back(&t);
  }
}

void StorageModel::AdvanceTo(sim::SimTime now) {
  if (now < last_update_ - util::kTimeEpsilon) {
    throw std::logic_error("StorageModel::AdvanceTo: time went backwards");
  }
  double dt = std::max(0.0, now - last_update_);
  if (dt > 0) {
    const std::size_t n = job_ids_.size();
    for (std::size_t i = 0; i < n; ++i) {
      if (rates_[i] > 0) {
        transferred_[i] = std::min(
            volumes_[i],
            transferred_[i] + rates_[i] * efficiencies_[i] * dt);
      }
    }
  }
  last_update_ = std::max(last_update_, now);
}

void StorageModel::SetMaxBandwidth(double max_bandwidth_gbps,
                                   sim::SimTime now) {
  if (max_bandwidth_gbps <= 0) {
    throw std::invalid_argument(
        "StorageModel::SetMaxBandwidth: non-positive BWmax");
  }
  AdvanceTo(now);
  config_.max_bandwidth_gbps = max_bandwidth_gbps;
  if (bandwidth_listener_) bandwidth_listener_(max_bandwidth_gbps, now);
}

void StorageModel::SetRate(workload::JobId job, double rate_gbps) {
  SetRateAtSlot(SlotOf(job), rate_gbps);
}

void StorageModel::SetRateAtSlot(std::size_t slot, double rate_gbps) {
  if (rate_gbps < 0) {
    throw std::invalid_argument("StorageModel::SetRate: negative rate");
  }
  if (rate_gbps > util::MaxGrantableRate(full_rates_[slot])) {
    throw std::invalid_argument(
        "StorageModel::SetRate: rate exceeds job's full rate");
  }
  double clamped = std::min(rate_gbps, full_rates_[slot]);
  total_assigned_rate_ += clamped - rates_[slot];
  rates_[slot] = clamped;
}

void StorageModel::SetUserSlot(workload::JobId job, std::uint32_t user_slot) {
  user_slots_[SlotOf(job)] = user_slot;
}

void StorageModel::SaveState(ckpt::Writer& w) const {
  w.F64(config_.max_bandwidth_gbps);
  w.F64(last_update_);
  w.F64(total_assigned_rate_);
  w.F64(total_demand_gbps_);
  w.I64(total_nodes_);
  const std::size_t n = job_ids_.size();
  w.U32(static_cast<std::uint32_t>(n));
  // Field sequence matches the pre-SoA per-Transfer layout byte for byte;
  // user slots are runtime-only and excluded.
  for (std::size_t i = 0; i < n; ++i) {
    w.I64(job_ids_[i]);
    w.I64(nodes_[i]);
    w.F64(full_rates_[i]);
    w.F64(volumes_[i]);
    w.F64(transferred_[i]);
    w.F64(arrivals_[i]);
    w.F64(rates_[i]);
    w.F64(efficiencies_[i]);
  }
  // The FCFS order is a permutation of dense slots; saving it verbatim
  // avoids re-deriving it (and keeps restore a structural copy).
  for (std::size_t slot : arrival_order_) {
    w.U32(static_cast<std::uint32_t>(slot));
  }
}

void StorageModel::RestoreState(ckpt::Reader& r) {
  job_ids_.clear();
  nodes_.clear();
  full_rates_.clear();
  volumes_.clear();
  transferred_.clear();
  arrivals_.clear();
  rates_.clear();
  efficiencies_.clear();
  user_slots_.clear();
  index_.clear();
  arrival_order_.clear();
  config_.max_bandwidth_gbps = r.F64();
  last_update_ = r.F64();
  total_assigned_rate_ = r.F64();
  total_demand_gbps_ = r.F64();
  total_nodes_ = r.I64();
  std::uint32_t count = r.U32();
  job_ids_.reserve(count);
  nodes_.reserve(count);
  full_rates_.reserve(count);
  volumes_.reserve(count);
  transferred_.reserve(count);
  arrivals_.reserve(count);
  rates_.reserve(count);
  efficiencies_.reserve(count);
  user_slots_.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    workload::JobId id = r.I64();
    index_.emplace(id, job_ids_.size());
    job_ids_.push_back(id);
    nodes_.push_back(static_cast<int>(r.I64()));
    full_rates_.push_back(r.F64());
    volumes_.push_back(r.F64());
    transferred_.push_back(r.F64());
    arrivals_.push_back(r.F64());
    rates_.push_back(r.F64());
    efficiencies_.push_back(r.F64());
    user_slots_.push_back(kNoUserSlot);
  }
  arrival_order_.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    std::size_t slot = r.U32();
    if (slot >= job_ids_.size()) {
      throw std::runtime_error(
          "StorageModel::RestoreState: arrival order references slot " +
          std::to_string(slot) + " of " + std::to_string(job_ids_.size()));
    }
    arrival_order_.push_back(slot);
  }
}

void StorageModel::ValidateAssignment() const {
  if (!config_.enforce_capacity) return;
  double total = TotalAssignedRate();
  if (total >
      config_.max_bandwidth_gbps * (1.0 + util::kCapacityRelSlack)) {
    throw std::logic_error(
        "StorageModel: assigned rates exceed BWmax (" + std::to_string(total) +
        " > " + std::to_string(config_.max_bandwidth_gbps) + ")");
  }
}

std::optional<std::pair<sim::SimTime, workload::JobId>>
StorageModel::NextCompletion() const {
  std::optional<std::pair<sim::SimTime, workload::JobId>> best;
  const std::size_t n = job_ids_.size();
  for (std::size_t i = 0; i < n; ++i) {
    sim::SimTime finish;
    if (CompleteAt(i)) {
      finish = last_update_;
    } else if (rates_[i] > 0) {
      finish = last_update_ + RemainingAt(i) / EffectiveRateAt(i);
    } else {
      continue;  // suspended transfers never finish on their own
    }
    if (!best || finish < best->first ||
        (finish == best->first && job_ids_[i] < best->second)) {
      best = {finish, job_ids_[i]};
    }
  }
  return best;
}

void WaterFillRates(std::span<const double> demands,
                    std::span<const int> nodes, double max_bandwidth_gbps,
                    std::span<double> rates_out,
                    std::uint64_t* iterations_out) {
  const std::size_t n = demands.size();
  double total_demand = 0.0;
  long long total_nodes = 0;
  for (std::size_t i = 0; i < n; ++i) {
    total_demand += demands[i];
    total_nodes += nodes[i];
  }
  if (total_demand <= max_bandwidth_gbps || total_nodes == 0) {
    for (std::size_t i = 0; i < n; ++i) rates_out[i] = demands[i];
    return;
  }
  // Weighted max-min: visit transfers by increasing per-node demand. At
  // each step the fair per-node level is remaining_bw / remaining_nodes; a
  // transfer below its share takes only its demand and the slack stays in
  // remaining_bw, raising the level for everyone after it. Once the first
  // transfer exceeds its share, so do all later ones (their per-node demand
  // is larger and the level is constant from then on), so a single sorted
  // pass water-fills exactly.
  // Thread-local scratch: this runs once per admission probe inside the
  // ADAPTIVE policy's cycle loop, and policies may run on pool threads.
  thread_local std::vector<std::size_t> order;
  order.resize(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    double da = demands[a] / nodes[a];
    double db = demands[b] / nodes[b];
    if (da != db) return da < db;
    return a < b;
  });
  if (iterations_out != nullptr) *iterations_out += n;
  double remaining_bw = max_bandwidth_gbps;
  long long remaining_nodes = total_nodes;
  for (std::size_t i : order) {
    double share =
        remaining_bw * nodes[i] / static_cast<double>(remaining_nodes);
    double rate = std::min(demands[i], share);
    rates_out[i] = rate;
    remaining_bw -= rate;
    remaining_nodes -= nodes[i];
  }
}

std::vector<std::pair<workload::JobId, double>> FairShareRates(
    const std::vector<const Transfer*>& active, double max_bandwidth_gbps) {
  std::vector<std::pair<workload::JobId, double>> rates;
  rates.reserve(active.size());
  if (active.empty()) return rates;
  std::vector<double> demands(active.size());
  std::vector<int> nodes(active.size());
  for (std::size_t i = 0; i < active.size(); ++i) {
    demands[i] = active[i]->full_rate_gbps;
    nodes[i] = active[i]->nodes;
  }
  std::vector<double> shares(active.size());
  WaterFillRates(demands, nodes, max_bandwidth_gbps, shares);
  for (std::size_t i = 0; i < active.size(); ++i) {
    rates.emplace_back(active[i]->job_id, shares[i]);
  }
  return rates;
}

}  // namespace iosched::storage
