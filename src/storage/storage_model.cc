#include "storage/storage_model.h"

#include <algorithm>
#include <numeric>
#include <stdexcept>
#include <string>
#include <utility>

#include "util/units.h"

namespace iosched::storage {

bool Transfer::Complete() const {
  return RemainingGb() <= util::kVolumeEpsilon * std::max(1.0, volume_gb);
}

StorageModel::StorageModel(StorageConfig config) : config_(config) {
  if (config_.max_bandwidth_gbps <= 0) {
    throw std::invalid_argument("StorageModel: non-positive BWmax");
  }
}

std::vector<std::size_t>::const_iterator StorageModel::ArrivalPos(
    sim::SimTime arrival, workload::JobId job) const {
  return std::lower_bound(
      arrival_order_.begin(), arrival_order_.end(),
      std::pair<sim::SimTime, workload::JobId>(arrival, job),
      [this](std::size_t lhs,
             const std::pair<sim::SimTime, workload::JobId>& rhs) {
        const Transfer& t = transfers_[lhs];
        if (t.request_arrival != rhs.first) {
          return t.request_arrival < rhs.first;
        }
        return t.job_id < rhs.second;
      });
}

std::vector<std::size_t>::iterator StorageModel::ArrivalPos(
    sim::SimTime arrival, workload::JobId job) {
  auto pos = std::as_const(*this).ArrivalPos(arrival, job);
  return arrival_order_.begin() + (pos - arrival_order_.cbegin());
}

void StorageModel::Begin(workload::JobId job, int nodes, double full_rate_gbps,
                         double volume_gb, sim::SimTime now,
                         double efficiency) {
  if (Has(job)) {
    throw std::logic_error("StorageModel::Begin: job " + std::to_string(job) +
                           " already transferring");
  }
  if (nodes <= 0 || full_rate_gbps <= 0 || volume_gb < 0) {
    throw std::invalid_argument("StorageModel::Begin: bad transfer params");
  }
  if (efficiency <= 0 || efficiency > 1.0) {
    throw std::invalid_argument("StorageModel::Begin: bad efficiency");
  }
  AdvanceTo(now);
  Transfer t;
  t.job_id = job;
  t.nodes = nodes;
  t.full_rate_gbps = full_rate_gbps;
  t.volume_gb = volume_gb;
  t.request_arrival = now;
  t.efficiency = efficiency;
  index_.emplace(job, transfers_.size());
  transfers_.push_back(t);
  arrival_order_.insert(ArrivalPos(now, job), transfers_.size() - 1);
  total_demand_gbps_ += full_rate_gbps;
  total_nodes_ += nodes;
}

Transfer& StorageModel::GetMutable(workload::JobId job) {
  auto it = index_.find(job);
  if (it == index_.end()) {
    throw std::logic_error("StorageModel: no transfer for job " +
                           std::to_string(job));
  }
  return transfers_[it->second];
}

void StorageModel::EraseAt(std::size_t idx) {
  const Transfer& t = transfers_[idx];
  total_demand_gbps_ -= t.full_rate_gbps;
  total_nodes_ -= t.nodes;
  total_assigned_rate_ -= t.rate_gbps;
  arrival_order_.erase(ArrivalPos(t.request_arrival, t.job_id));
  index_.erase(t.job_id);
  if (idx + 1 != transfers_.size()) {
    transfers_[idx] = std::move(transfers_.back());
    index_[transfers_[idx].job_id] = idx;
    // The moved transfer's FCFS entry still points at the old back slot;
    // re-point it (its sort key is unchanged, so the order is intact).
    *ArrivalPos(transfers_[idx].request_arrival, transfers_[idx].job_id) =
        idx;
  }
  transfers_.pop_back();
  if (transfers_.empty()) {
    // Pin the aggregates back to exact zero so incremental-update round-off
    // cannot accumulate across a month of transfers.
    total_demand_gbps_ = 0.0;
    total_nodes_ = 0;
    total_assigned_rate_ = 0.0;
  }
}

Transfer StorageModel::End(workload::JobId job) {
  auto it = index_.find(job);
  if (it == index_.end()) {
    throw std::logic_error("StorageModel: no transfer for job " +
                           std::to_string(job));
  }
  Transfer t = transfers_[it->second];
  if (!t.Complete()) {
    throw std::logic_error("StorageModel::End: job " + std::to_string(job) +
                           " not complete (" + std::to_string(t.RemainingGb()) +
                           " GB remaining)");
  }
  EraseAt(it->second);
  return t;
}

void StorageModel::Abort(workload::JobId job) {
  auto it = index_.find(job);
  if (it == index_.end()) {
    throw std::logic_error("StorageModel::Abort: no transfer for job " +
                           std::to_string(job) + " (" +
                           std::to_string(transfers_.size()) +
                           " active transfers)");
  }
  EraseAt(it->second);
}

void StorageModel::ForceComplete(workload::JobId job, double max_sliver_gb) {
  Transfer& t = GetMutable(job);
  double sliver = t.RemainingGb();
  if (sliver > max_sliver_gb) {
    throw std::logic_error("StorageModel::ForceComplete: remaining " +
                           std::to_string(sliver) + " GB exceeds the sliver "
                           "threshold");
  }
  t.transferred_gb = t.volume_gb;
}

bool StorageModel::Has(workload::JobId job) const {
  return index_.find(job) != index_.end();
}

const Transfer& StorageModel::Get(workload::JobId job) const {
  auto it = index_.find(job);
  if (it == index_.end()) {
    throw std::logic_error("StorageModel::Get: no transfer for job " +
                           std::to_string(job));
  }
  return transfers_[it->second];
}

const Transfer* StorageModel::TryGet(workload::JobId job) const {
  auto it = index_.find(job);
  return it == index_.end() ? nullptr : &transfers_[it->second];
}

std::vector<const Transfer*> StorageModel::ActiveByArrival() const {
  std::vector<const Transfer*> out;
  ActiveByArrival(out);
  return out;
}

void StorageModel::ActiveByArrival(std::vector<const Transfer*>& out) const {
  out.clear();
  out.reserve(transfers_.size());
  for (std::size_t slot : arrival_order_) {
    out.push_back(&transfers_[slot]);
  }
}

void StorageModel::AdvanceTo(sim::SimTime now) {
  if (now < last_update_ - util::kTimeEpsilon) {
    throw std::logic_error("StorageModel::AdvanceTo: time went backwards");
  }
  double dt = std::max(0.0, now - last_update_);
  if (dt > 0) {
    for (Transfer& t : transfers_) {
      if (t.rate_gbps > 0) {
        t.transferred_gb =
            std::min(t.volume_gb, t.transferred_gb + t.EffectiveRate() * dt);
      }
    }
  }
  last_update_ = std::max(last_update_, now);
}

void StorageModel::SetMaxBandwidth(double max_bandwidth_gbps,
                                   sim::SimTime now) {
  if (max_bandwidth_gbps <= 0) {
    throw std::invalid_argument(
        "StorageModel::SetMaxBandwidth: non-positive BWmax");
  }
  AdvanceTo(now);
  config_.max_bandwidth_gbps = max_bandwidth_gbps;
  if (bandwidth_listener_) bandwidth_listener_(max_bandwidth_gbps, now);
}

void StorageModel::SetRate(workload::JobId job, double rate_gbps) {
  Transfer& t = GetMutable(job);
  if (rate_gbps < 0) {
    throw std::invalid_argument("StorageModel::SetRate: negative rate");
  }
  if (rate_gbps > util::MaxGrantableRate(t.full_rate_gbps)) {
    throw std::invalid_argument(
        "StorageModel::SetRate: rate exceeds job's full rate");
  }
  double clamped = std::min(rate_gbps, t.full_rate_gbps);
  total_assigned_rate_ += clamped - t.rate_gbps;
  t.rate_gbps = clamped;
}

void StorageModel::SaveState(ckpt::Writer& w) const {
  w.F64(config_.max_bandwidth_gbps);
  w.F64(last_update_);
  w.F64(total_assigned_rate_);
  w.F64(total_demand_gbps_);
  w.I64(total_nodes_);
  w.U32(static_cast<std::uint32_t>(transfers_.size()));
  for (const Transfer& t : transfers_) {
    w.I64(t.job_id);
    w.I64(t.nodes);
    w.F64(t.full_rate_gbps);
    w.F64(t.volume_gb);
    w.F64(t.transferred_gb);
    w.F64(t.request_arrival);
    w.F64(t.rate_gbps);
    w.F64(t.efficiency);
  }
  // The FCFS order is a permutation of dense slots; saving it verbatim
  // avoids re-deriving it (and keeps restore a structural copy).
  for (std::size_t slot : arrival_order_) {
    w.U32(static_cast<std::uint32_t>(slot));
  }
}

void StorageModel::RestoreState(ckpt::Reader& r) {
  transfers_.clear();
  index_.clear();
  arrival_order_.clear();
  config_.max_bandwidth_gbps = r.F64();
  last_update_ = r.F64();
  total_assigned_rate_ = r.F64();
  total_demand_gbps_ = r.F64();
  total_nodes_ = r.I64();
  std::uint32_t count = r.U32();
  transfers_.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    Transfer t;
    t.job_id = r.I64();
    t.nodes = static_cast<int>(r.I64());
    t.full_rate_gbps = r.F64();
    t.volume_gb = r.F64();
    t.transferred_gb = r.F64();
    t.request_arrival = r.F64();
    t.rate_gbps = r.F64();
    t.efficiency = r.F64();
    index_.emplace(t.job_id, transfers_.size());
    transfers_.push_back(t);
  }
  arrival_order_.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    std::size_t slot = r.U32();
    if (slot >= transfers_.size()) {
      throw std::runtime_error(
          "StorageModel::RestoreState: arrival order references slot " +
          std::to_string(slot) + " of " + std::to_string(transfers_.size()));
    }
    arrival_order_.push_back(slot);
  }
}

void StorageModel::ValidateAssignment() const {
  if (!config_.enforce_capacity) return;
  double total = TotalAssignedRate();
  if (total >
      config_.max_bandwidth_gbps * (1.0 + util::kCapacityRelSlack)) {
    throw std::logic_error(
        "StorageModel: assigned rates exceed BWmax (" + std::to_string(total) +
        " > " + std::to_string(config_.max_bandwidth_gbps) + ")");
  }
}

std::optional<std::pair<sim::SimTime, workload::JobId>>
StorageModel::NextCompletion() const {
  std::optional<std::pair<sim::SimTime, workload::JobId>> best;
  for (const Transfer& t : transfers_) {
    sim::SimTime finish;
    if (t.Complete()) {
      finish = last_update_;
    } else if (t.rate_gbps > 0) {
      finish = last_update_ + t.RemainingGb() / t.EffectiveRate();
    } else {
      continue;  // suspended transfers never finish on their own
    }
    if (!best || finish < best->first ||
        (finish == best->first && t.job_id < best->second)) {
      best = {finish, t.job_id};
    }
  }
  return best;
}

void WaterFillRates(std::span<const double> demands,
                    std::span<const int> nodes, double max_bandwidth_gbps,
                    std::span<double> rates_out,
                    std::uint64_t* iterations_out) {
  const std::size_t n = demands.size();
  double total_demand = 0.0;
  long long total_nodes = 0;
  for (std::size_t i = 0; i < n; ++i) {
    total_demand += demands[i];
    total_nodes += nodes[i];
  }
  if (total_demand <= max_bandwidth_gbps || total_nodes == 0) {
    for (std::size_t i = 0; i < n; ++i) rates_out[i] = demands[i];
    return;
  }
  // Weighted max-min: visit transfers by increasing per-node demand. At
  // each step the fair per-node level is remaining_bw / remaining_nodes; a
  // transfer below its share takes only its demand and the slack stays in
  // remaining_bw, raising the level for everyone after it. Once the first
  // transfer exceeds its share, so do all later ones (their per-node demand
  // is larger and the level is constant from then on), so a single sorted
  // pass water-fills exactly.
  // Thread-local scratch: this runs once per admission probe inside the
  // ADAPTIVE policy's cycle loop, and policies may run on pool threads.
  thread_local std::vector<std::size_t> order;
  order.resize(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    double da = demands[a] / nodes[a];
    double db = demands[b] / nodes[b];
    if (da != db) return da < db;
    return a < b;
  });
  if (iterations_out != nullptr) *iterations_out += n;
  double remaining_bw = max_bandwidth_gbps;
  long long remaining_nodes = total_nodes;
  for (std::size_t i : order) {
    double share =
        remaining_bw * nodes[i] / static_cast<double>(remaining_nodes);
    double rate = std::min(demands[i], share);
    rates_out[i] = rate;
    remaining_bw -= rate;
    remaining_nodes -= nodes[i];
  }
}

std::vector<std::pair<workload::JobId, double>> FairShareRates(
    const std::vector<const Transfer*>& active, double max_bandwidth_gbps) {
  std::vector<std::pair<workload::JobId, double>> rates;
  rates.reserve(active.size());
  if (active.empty()) return rates;
  std::vector<double> demands(active.size());
  std::vector<int> nodes(active.size());
  for (std::size_t i = 0; i < active.size(); ++i) {
    demands[i] = active[i]->full_rate_gbps;
    nodes[i] = active[i]->nodes;
  }
  std::vector<double> shares(active.size());
  WaterFillRates(demands, nodes, max_bandwidth_gbps, shares);
  for (std::size_t i = 0; i < active.size(); ++i) {
    rates.emplace_back(active[i]->job_id, shares[i]);
  }
  return rates;
}

}  // namespace iosched::storage
