// Burst-buffer tier (the architectural alternative the paper's related work
// discusses: absorb bursty checkpoint I/O near the compute nodes and drain
// it to the parallel file system in the background — Liu et al., MSST'12;
// Kopanski & Rzadca's shared-burst-buffer scheduling, arXiv:2109.00082).
//
// Model: an I/O request whose volume fits in the buffer's free space (and in
// the job's per-job quota, when one is configured) is absorbed at the
// absorb-tier bandwidth (the job's link rate, optionally capped by
// `absorb_gbps`) and its volume is queued for draining. The drain is
// strictly FIFO over per-job segments and runs whenever data is queued,
// consuming a fixed bandwidth reservation *out of BWmax* — so heavy
// absorption shrinks the bandwidth the I/O policy can grant to direct
// (non-absorbed) traffic; this is the drain backlog the tier-aware policies
// see. Requests that do not fit go the direct path and are scheduled by the
// policy as usual (recorded here as spills).
#pragma once

#include <cstdint>
#include <deque>
#include <map>

#include "ckpt/serializer.h"
#include "sim/time.h"
#include "workload/job.h"

namespace iosched::storage {

struct BurstBufferConfig {
  /// Total staging capacity (GB). 0 disables the buffer.
  double capacity_gb = 0.0;
  /// Bandwidth reserved from BWmax while draining (GB/s).
  double drain_gbps = 0.0;
  /// Absorb-tier bandwidth cap (GB/s). Requests are absorbed at
  /// min(job link rate, absorb_gbps); 0 means "link rate" (uncapped).
  double absorb_gbps = 0.0;
  /// Largest simultaneous staging footprint per job (GB). 0 = uncapped.
  double per_job_quota_gb = 0.0;
  /// Occupancy fraction above which the tier reports congestion (used for
  /// obs episode spans and the ADAPTIVE backlog deferral).
  double congestion_watermark = 0.9;

  bool enabled() const { return capacity_gb > 0 && drain_gbps > 0; }
};

class BurstBuffer {
 public:
  explicit BurstBuffer(BurstBufferConfig config);

  const BurstBufferConfig& config() const { return config_; }

  /// Advance the drain to `now` (piecewise-constant drain rate, FIFO over
  /// the absorbed segments).
  void AdvanceTo(sim::SimTime now);

  /// True when `volume_gb` fits in the free space — and in `job`'s quota,
  /// when one is configured — right now.
  bool CanAbsorb(workload::JobId job, double volume_gb) const;

  /// Stage `volume_gb` for `job`; requires CanAbsorb. Callers AdvanceTo(now)
  /// first.
  void Absorb(workload::JobId job, double volume_gb);

  /// Record a request that did not fit and fell back to the direct path.
  void RecordSpill() { ++spilled_requests_; }

  /// Fault the buffer (CanAbsorb is false while faulted) or repair it.
  /// Draining of already-staged data continues through a non-lossy fault.
  void SetFaulted(bool faulted) { faulted_ = faulted; }
  bool faulted() const { return faulted_; }

  /// Drop everything currently staged (a lossy capacity fault). Callers
  /// AdvanceTo(now) first so the drain is settled. Returns the GB dropped;
  /// the affected jobs' requests must be re-flushed by the caller.
  double DropBufferedData();

  /// Scale the drain rate (fault injection; 1.0 = nominal). Callers
  /// AdvanceTo(now) first so the backlog is settled at the old rate.
  void SetDrainFactor(double factor);
  double drain_factor() const { return drain_factor_; }

  /// Rate at which the absorb tier ingests `full_rate_gbps` worth of
  /// link-level demand (GB/s).
  double AbsorbRate(double full_rate_gbps) const {
    return config_.absorb_gbps > 0
               ? (full_rate_gbps < config_.absorb_gbps ? full_rate_gbps
                                                       : config_.absorb_gbps)
               : full_rate_gbps;
  }

  /// Currently staged data awaiting drain (GB) — the drain backlog.
  double queued_gb() const { return queued_gb_; }
  double free_gb() const { return config_.capacity_gb - queued_gb_; }
  /// Data staged for one job right now (GB).
  double JobUsageGb(workload::JobId job) const;

  /// Occupancy above the configured watermark: the BB-tier congestion
  /// signal.
  bool Congested() const {
    return queued_gb_ >= config_.congestion_watermark * config_.capacity_gb;
  }

  /// Bandwidth the drain is consuming right now (GB/s).
  double CurrentDrainRate() const {
    return queued_gb_ > 0 ? config_.drain_gbps * drain_factor_ : 0.0;
  }

  /// When the queue empties under the current rate (kTimeInfinity when
  /// already empty is never returned — returns last update time instead).
  sim::SimTime DrainEmptyTime() const;

  /// Lifetime counters (for reports).
  double total_absorbed_gb() const { return total_absorbed_gb_; }
  double total_drained_gb() const { return total_drained_gb_; }
  double peak_queued_gb() const { return peak_queued_gb_; }
  std::size_t absorbed_requests() const { return absorbed_requests_; }
  std::size_t spilled_requests() const { return spilled_requests_; }
  /// Data dropped by lossy capacity faults (GB).
  double total_lost_gb() const { return total_lost_gb_; }
  /// Time integral of queued_gb (GB*s): mean occupancy over a run is
  /// integral / (capacity * elapsed).
  double occupancy_integral_gbs() const { return occupancy_integral_gbs_; }

  /// From-scratch recomputations for the invariant checker: the sum of FIFO
  /// segment remainders and of per-job usage entries. Both must equal
  /// queued_gb() up to float tolerance — a divergence means the incremental
  /// bookkeeping lost track of staged data.
  double FifoTotalGb() const;
  double UsageTotalGb() const;
  std::size_t segment_count() const { return fifo_.size(); }

  /// Serialize queue/lifetime state (config comes from the run config).
  void SaveState(ckpt::Writer& w) const;
  void RestoreState(ckpt::Reader& r);

 private:
  /// One absorbed request awaiting drain; drained strictly front-first.
  struct Segment {
    workload::JobId job_id = 0;
    double remaining_gb = 0.0;
  };
  struct JobUsage {
    double gb = 0.0;
    std::uint32_t segments = 0;
  };

  void ConsumeFifo(double drained_gb);

  BurstBufferConfig config_;
  double queued_gb_ = 0.0;
  double total_absorbed_gb_ = 0.0;
  double total_drained_gb_ = 0.0;
  double peak_queued_gb_ = 0.0;
  double occupancy_integral_gbs_ = 0.0;
  double total_lost_gb_ = 0.0;
  std::size_t absorbed_requests_ = 0;
  std::size_t spilled_requests_ = 0;
  bool faulted_ = false;
  /// Drain-rate multiplier from fault injection (1.0 = nominal).
  double drain_factor_ = 1.0;
  std::deque<Segment> fifo_;
  // std::map: deterministic iteration keeps SaveState byte-stable.
  std::map<workload::JobId, JobUsage> usage_;
  sim::SimTime last_update_ = 0.0;
};

}  // namespace iosched::storage
