// Burst-buffer tier (the architectural alternative the paper's related work
// discusses: absorb bursty checkpoint I/O near the compute nodes and drain
// it to the parallel file system in the background — Liu et al., MSST'12).
//
// Model: an I/O request whose volume fits in the buffer's free space is
// absorbed at the job's full link rate (no storage-side contention) and its
// volume is queued for draining. The drain runs whenever data is queued,
// consuming a fixed bandwidth reservation *out of BWmax* — so heavy
// absorption shrinks the bandwidth the I/O policy can grant to direct
// (non-absorbed) traffic. Requests that do not fit go the direct path and
// are scheduled by the policy as usual.
#pragma once

#include "ckpt/serializer.h"
#include "sim/time.h"

namespace iosched::storage {

struct BurstBufferConfig {
  /// Total staging capacity (GB). 0 disables the buffer.
  double capacity_gb = 0.0;
  /// Bandwidth reserved from BWmax while draining (GB/s).
  double drain_gbps = 0.0;

  bool enabled() const { return capacity_gb > 0 && drain_gbps > 0; }
};

class BurstBuffer {
 public:
  explicit BurstBuffer(BurstBufferConfig config);

  const BurstBufferConfig& config() const { return config_; }

  /// Advance the drain to `now` (piecewise-constant drain rate).
  void AdvanceTo(sim::SimTime now);

  /// True when `volume_gb` fits in the free space right now.
  bool CanAbsorb(double volume_gb) const;

  /// Stage `volume_gb`; requires CanAbsorb. Callers AdvanceTo(now) first.
  void Absorb(double volume_gb);

  /// Currently staged data awaiting drain (GB).
  double queued_gb() const { return queued_gb_; }
  double free_gb() const { return config_.capacity_gb - queued_gb_; }

  /// Bandwidth the drain is consuming right now (GB/s).
  double CurrentDrainRate() const {
    return queued_gb_ > 0 ? config_.drain_gbps : 0.0;
  }

  /// When the queue empties under the current rate (kTimeInfinity when
  /// already empty is never returned — returns last update time instead).
  sim::SimTime DrainEmptyTime() const;

  /// Lifetime counters (for reports).
  double total_absorbed_gb() const { return total_absorbed_gb_; }
  std::size_t absorbed_requests() const { return absorbed_requests_; }

  /// Serialize queue/lifetime state (config comes from the run config).
  void SaveState(ckpt::Writer& w) const {
    w.F64(queued_gb_);
    w.F64(total_absorbed_gb_);
    w.U64(absorbed_requests_);
    w.F64(last_update_);
  }
  void RestoreState(ckpt::Reader& r) {
    queued_gb_ = r.F64();
    total_absorbed_gb_ = r.F64();
    absorbed_requests_ = static_cast<std::size_t>(r.U64());
    last_update_ = r.F64();
  }

 private:
  BurstBufferConfig config_;
  double queued_gb_ = 0.0;
  double total_absorbed_gb_ = 0.0;
  std::size_t absorbed_requests_ = 0;
  sim::SimTime last_update_ = 0.0;
};

}  // namespace iosched::storage
