#include "storage/backend.h"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <string>

namespace iosched::storage {

double StorageBackend::UsableBandwidth(sim::SimTime now) {
  (void)now;
  return model_.config().max_bandwidth_gbps;
}

double StorageBackend::ProjectedFreeCapacityGb(sim::SimTime now,
                                               sim::SimTime at) {
  (void)now;
  (void)at;
  // No absorbing tier: capacity is never the constraint.
  return std::numeric_limits<double>::infinity();
}

TierStatus StorageBackend::Status() const {
  TierStatus status;
  status.pfs_bandwidth_gbps = model_.config().max_bandwidth_gbps;
  status.pfs_demand_gbps = model_.TotalDemand();
  status.pfs_assigned_gbps = model_.TotalAssignedRate();
  if (const BurstBuffer* bb = burst_buffer()) {
    status.bb_enabled = true;
    status.bb_capacity_gb = bb->config().capacity_gb;
    status.bb_queued_gb = bb->queued_gb();
    status.bb_drain_gbps = bb->CurrentDrainRate();
    status.bb_congested = bb->Congested();
  }
  return status;
}

BurstBufferBackend::BurstBufferBackend(StorageConfig storage,
                                       BurstBufferConfig bb)
    : StorageBackend(storage), buffer_(bb) {
  if (bb.drain_gbps >= storage.max_bandwidth_gbps) {
    throw std::invalid_argument(
        "BurstBufferBackend: drain reservation (" +
        std::to_string(bb.drain_gbps) + " GB/s) must stay below BWmax (" +
        std::to_string(storage.max_bandwidth_gbps) + " GB/s)");
  }
}

double BurstBufferBackend::UsableBandwidth(sim::SimTime now) {
  buffer_.AdvanceTo(now);
  return std::max(0.0, model_.config().max_bandwidth_gbps -
                           buffer_.CurrentDrainRate());
}

double BurstBufferBackend::ProjectedFreeCapacityGb(sim::SimTime now,
                                                   sim::SimTime at) {
  buffer_.AdvanceTo(now);
  if (buffer_.faulted()) return 0.0;  // absorbing nothing until repaired
  double horizon = std::max(0.0, at - now);
  double cleared = buffer_.CurrentDrainRate() * horizon;
  return std::min(buffer_.free_gb() + cleared,
                  buffer_.config().capacity_gb);
}

std::unique_ptr<StorageBackend> MakeBackend(const StorageConfig& storage,
                                            const BurstBufferConfig& bb) {
  if (bb.enabled()) {
    return std::make_unique<BurstBufferBackend>(storage, bb);
  }
  return std::make_unique<SingleTierBackend>(storage);
}

}  // namespace iosched::storage
