#include "storage/burst_buffer.h"

#include <algorithm>
#include <stdexcept>

#include "util/units.h"

namespace iosched::storage {

BurstBuffer::BurstBuffer(BurstBufferConfig config) : config_(config) {
  if (!config_.enabled()) {
    throw std::invalid_argument(
        "BurstBuffer: construct only with an enabled config (capacity and "
        "drain bandwidth both positive)");
  }
}

void BurstBuffer::AdvanceTo(sim::SimTime now) {
  if (now < last_update_ - util::kTimeEpsilon) {
    throw std::logic_error("BurstBuffer: time went backwards");
  }
  double dt = std::max(0.0, now - last_update_);
  queued_gb_ = std::max(0.0, queued_gb_ - config_.drain_gbps * dt);
  // Snap small remainders to empty (1 MB is physically nothing): without
  // this the drain-empty wakeup can land at a future instant that double
  // rounding maps back to `now`, re-arming the same event forever.
  if (queued_gb_ <= 1e-3) queued_gb_ = 0.0;
  last_update_ = std::max(last_update_, now);
}

bool BurstBuffer::CanAbsorb(double volume_gb) const {
  return volume_gb > 0 && queued_gb_ + volume_gb <=
                              config_.capacity_gb + util::kVolumeEpsilon;
}

void BurstBuffer::Absorb(double volume_gb) {
  if (!CanAbsorb(volume_gb)) {
    throw std::logic_error("BurstBuffer: Absorb without capacity");
  }
  queued_gb_ += volume_gb;
  total_absorbed_gb_ += volume_gb;
  ++absorbed_requests_;
}

sim::SimTime BurstBuffer::DrainEmptyTime() const {
  if (queued_gb_ <= 0) return last_update_;
  return last_update_ + queued_gb_ / config_.drain_gbps;
}

}  // namespace iosched::storage
