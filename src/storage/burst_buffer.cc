#include "storage/burst_buffer.h"

#include <algorithm>
#include <stdexcept>

#include "util/units.h"

namespace iosched::storage {

BurstBuffer::BurstBuffer(BurstBufferConfig config) : config_(config) {
  if (!config_.enabled()) {
    throw std::invalid_argument(
        "BurstBuffer: construct only with an enabled config (capacity and "
        "drain bandwidth both positive)");
  }
  if (config_.absorb_gbps < 0 || config_.per_job_quota_gb < 0) {
    throw std::invalid_argument(
        "BurstBuffer: absorb_gbps and per_job_quota_gb must be >= 0");
  }
  if (config_.congestion_watermark <= 0 || config_.congestion_watermark > 1) {
    throw std::invalid_argument(
        "BurstBuffer: congestion_watermark must be in (0, 1]");
  }
}

void BurstBuffer::AdvanceTo(sim::SimTime now) {
  if (now < last_update_ - util::kTimeEpsilon) {
    throw std::logic_error("BurstBuffer: time went backwards");
  }
  double dt = std::max(0.0, now - last_update_);
  double rate = config_.drain_gbps * drain_factor_;
  if (dt > 0 && queued_gb_ > 0) {
    double drained = std::min(queued_gb_, rate * dt);
    // Occupancy shrinks linearly until the queue empties, then stays zero:
    // the exact integral over [last_update_, now] is q0*td - d*td^2/2 with
    // td the draining portion of dt.
    double td = drained / rate;
    occupancy_integral_gbs_ += queued_gb_ * td - 0.5 * rate * td * td;
    ConsumeFifo(drained);
    total_drained_gb_ += drained;
    queued_gb_ -= drained;
  }
  // Snap small remainders to empty (1 MB is physically nothing): without
  // this the drain-empty wakeup can land at a future instant that double
  // rounding maps back to `now`, re-arming the same event forever.
  if (queued_gb_ <= 1e-3) {
    total_drained_gb_ += queued_gb_;
    queued_gb_ = 0.0;
    fifo_.clear();
    usage_.clear();
  }
  last_update_ = std::max(last_update_, now);
}

void BurstBuffer::ConsumeFifo(double drained_gb) {
  while (drained_gb > 0 && !fifo_.empty()) {
    Segment& front = fifo_.front();
    double take = std::min(front.remaining_gb, drained_gb);
    front.remaining_gb -= take;
    drained_gb -= take;
    auto it = usage_.find(front.job_id);
    if (it != usage_.end()) {
      it->second.gb = std::max(0.0, it->second.gb - take);
      if (front.remaining_gb <= 0.0) {
        if (it->second.segments > 0) --it->second.segments;
        if (it->second.segments == 0) usage_.erase(it);
      }
    }
    if (front.remaining_gb <= 0.0) fifo_.pop_front();
  }
}

bool BurstBuffer::CanAbsorb(workload::JobId job, double volume_gb) const {
  if (faulted_) return false;
  if (volume_gb <= 0) return false;
  if (queued_gb_ + volume_gb > config_.capacity_gb + util::kVolumeEpsilon) {
    return false;
  }
  if (config_.per_job_quota_gb > 0 &&
      JobUsageGb(job) + volume_gb >
          config_.per_job_quota_gb + util::kVolumeEpsilon) {
    return false;
  }
  return true;
}

void BurstBuffer::Absorb(workload::JobId job, double volume_gb) {
  if (!CanAbsorb(job, volume_gb)) {
    throw std::logic_error("BurstBuffer: Absorb without capacity");
  }
  queued_gb_ += volume_gb;
  total_absorbed_gb_ += volume_gb;
  peak_queued_gb_ = std::max(peak_queued_gb_, queued_gb_);
  ++absorbed_requests_;
  fifo_.push_back(Segment{job, volume_gb});
  JobUsage& usage = usage_[job];
  usage.gb += volume_gb;
  ++usage.segments;
}

double BurstBuffer::JobUsageGb(workload::JobId job) const {
  auto it = usage_.find(job);
  return it == usage_.end() ? 0.0 : it->second.gb;
}

sim::SimTime BurstBuffer::DrainEmptyTime() const {
  if (queued_gb_ <= 0) return last_update_;
  return last_update_ + queued_gb_ / (config_.drain_gbps * drain_factor_);
}

double BurstBuffer::FifoTotalGb() const {
  double total = 0.0;
  for (const Segment& s : fifo_) total += s.remaining_gb;
  return total;
}

double BurstBuffer::UsageTotalGb() const {
  double total = 0.0;
  for (const auto& [job, usage] : usage_) total += usage.gb;
  return total;
}

double BurstBuffer::DropBufferedData() {
  double dropped = queued_gb_;
  total_lost_gb_ += dropped;
  queued_gb_ = 0.0;
  fifo_.clear();
  usage_.clear();
  return dropped;
}

void BurstBuffer::SetDrainFactor(double factor) {
  if (factor <= 0 || factor > 1.0) {
    throw std::invalid_argument(
        "BurstBuffer: drain factor must be in (0, 1]");
  }
  drain_factor_ = factor;
}

void BurstBuffer::SaveState(ckpt::Writer& w) const {
  w.F64(queued_gb_);
  w.F64(total_absorbed_gb_);
  w.U64(absorbed_requests_);
  w.F64(last_update_);
  w.F64(total_drained_gb_);
  w.F64(peak_queued_gb_);
  w.F64(occupancy_integral_gbs_);
  w.U64(spilled_requests_);
  // The FIFO is serialized verbatim (front first) and the per-job usage by
  // ascending id, so restore is a structural copy — required for bit-exact
  // resume equivalence.
  w.U32(static_cast<std::uint32_t>(fifo_.size()));
  for (const Segment& s : fifo_) {
    w.I64(s.job_id);
    w.F64(s.remaining_gb);
  }
  w.U32(static_cast<std::uint32_t>(usage_.size()));
  for (const auto& [job, usage] : usage_) {
    w.I64(job);
    w.F64(usage.gb);
    w.U32(usage.segments);
  }
  // Fault-model state (appended so the layout above is unchanged).
  w.Bool(faulted_);
  w.F64(drain_factor_);
  w.F64(total_lost_gb_);
}

void BurstBuffer::RestoreState(ckpt::Reader& r) {
  fifo_.clear();
  usage_.clear();
  queued_gb_ = r.F64();
  total_absorbed_gb_ = r.F64();
  absorbed_requests_ = static_cast<std::size_t>(r.U64());
  last_update_ = r.F64();
  total_drained_gb_ = r.F64();
  peak_queued_gb_ = r.F64();
  occupancy_integral_gbs_ = r.F64();
  spilled_requests_ = static_cast<std::size_t>(r.U64());
  std::uint32_t segments = r.U32();
  for (std::uint32_t i = 0; i < segments; ++i) {
    Segment s;
    s.job_id = r.I64();
    s.remaining_gb = r.F64();
    fifo_.push_back(s);
  }
  std::uint32_t jobs = r.U32();
  for (std::uint32_t i = 0; i < jobs; ++i) {
    workload::JobId job = r.I64();
    JobUsage usage;
    usage.gb = r.F64();
    usage.segments = r.U32();
    usage_.emplace(job, usage);
  }
  faulted_ = r.Bool();
  drain_factor_ = r.F64();
  total_lost_gb_ = r.F64();
}

}  // namespace iosched::storage
