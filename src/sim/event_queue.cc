#include "sim/event_queue.h"

#include <stdexcept>

namespace iosched::sim {

EventId EventQueue::Push(SimTime time, std::function<void()> action) {
  EventId id = next_id_++;
  heap_.push(Entry{time, id});
  actions_.emplace(id, std::move(action));
  ++live_count_;
  return id;
}

bool EventQueue::Cancel(EventId id) {
  auto it = actions_.find(id);
  if (it == actions_.end()) return false;
  actions_.erase(it);
  cancelled_.insert(id);
  --live_count_;
  return true;
}

void EventQueue::DropCancelledHead() const {
  while (!heap_.empty() && cancelled_.count(heap_.top().id)) {
    cancelled_.erase(heap_.top().id);
    heap_.pop();
  }
}

SimTime EventQueue::PeekTime() const {
  DropCancelledHead();
  if (heap_.empty()) throw std::logic_error("EventQueue::PeekTime on empty");
  return heap_.top().time;
}

Event EventQueue::Pop() {
  DropCancelledHead();
  if (heap_.empty()) throw std::logic_error("EventQueue::Pop on empty");
  Entry top = heap_.top();
  heap_.pop();
  auto it = actions_.find(top.id);
  Event ev{top.time, top.id, std::move(it->second)};
  actions_.erase(it);
  --live_count_;
  return ev;
}

void EventQueue::Clear() {
  heap_ = {};
  cancelled_.clear();
  actions_.clear();
  live_count_ = 0;
}

}  // namespace iosched::sim
