#include "sim/event_queue.h"

#include <algorithm>
#include <stdexcept>

namespace iosched::sim {

EventId EventQueue::Push(SimTime time, std::function<void()> action) {
  EventId id = next_id_++;
  heap_.push_back(Entry{time, id});
  std::push_heap(heap_.begin(), heap_.end(), Later);
  actions_.emplace(id, std::move(action));
  return id;
}

bool EventQueue::Cancel(EventId id) {
  auto it = actions_.find(id);
  if (it == actions_.end()) return false;
  actions_.erase(it);
  cancelled_.insert(id);
  if (cancelled_.size() >= kCompactionMinCancelled &&
      cancelled_.size() > actions_.size()) {
    Compact();
  }
  return true;
}

void EventQueue::Compact() {
  if (cancelled_.empty()) return;
  std::erase_if(heap_, [this](const Entry& e) {
    return cancelled_.find(e.id) != cancelled_.end();
  });
  std::make_heap(heap_.begin(), heap_.end(), Later);
  cancelled_.clear();
}

void EventQueue::DropCancelledHead() const {
  while (!heap_.empty() && cancelled_.count(heap_.front().id)) {
    cancelled_.erase(heap_.front().id);
    std::pop_heap(heap_.begin(), heap_.end(), Later);
    heap_.pop_back();
  }
}

SimTime EventQueue::PeekTime() const {
  DropCancelledHead();
  if (heap_.empty()) throw std::logic_error("EventQueue::PeekTime on empty");
  return heap_.front().time;
}

Event EventQueue::Pop() {
  DropCancelledHead();
  if (heap_.empty()) throw std::logic_error("EventQueue::Pop on empty");
  Entry top = heap_.front();
  std::pop_heap(heap_.begin(), heap_.end(), Later);
  heap_.pop_back();
  auto it = actions_.find(top.id);
  Event ev{top.time, top.id, std::move(it->second)};
  actions_.erase(it);
  return ev;
}

void EventQueue::RestoreSchedule(SimTime time, EventId id,
                                 std::function<void()> action) {
  if (id == 0 || id >= next_id_) {
    throw std::logic_error(
        "EventQueue::RestoreSchedule: id outside the restored range "
        "(SetNextId must run first)");
  }
  if (!actions_.emplace(id, std::move(action)).second) {
    throw std::logic_error("EventQueue::RestoreSchedule: duplicate id");
  }
  heap_.push_back(Entry{time, id});
  std::push_heap(heap_.begin(), heap_.end(), Later);
}

void EventQueue::SetNextId(EventId next_id) {
  if (!actions_.empty() || !heap_.empty()) {
    throw std::logic_error("EventQueue::SetNextId on a non-empty queue");
  }
  if (next_id == 0) throw std::logic_error("EventQueue::SetNextId: id 0");
  next_id_ = next_id;
}

void EventQueue::Clear() {
  heap_.clear();
  cancelled_.clear();
  actions_.clear();
}

}  // namespace iosched::sim
