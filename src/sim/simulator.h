// Discrete-event simulation engine (the Qsim substrate).
//
// The engine owns the clock and the event queue. Model components schedule
// closures; the engine pops them in timestamp order and advances the clock.
// Time never moves backwards: scheduling in the past is a programming error
// and throws.
#pragma once

#include <cstdint>
#include <functional>

#include "sim/event_queue.h"
#include "sim/time.h"

namespace iosched::obs {
class Counter;
}

namespace iosched::sim {

class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulated time.
  SimTime Now() const { return now_; }

  /// Schedule `action` at absolute time `t` (>= Now(), tolerating a tiny
  /// negative float slack which is clamped to Now()).
  EventId ScheduleAt(SimTime t, std::function<void()> action);

  /// Schedule `action` after `delay` seconds (>= 0).
  EventId ScheduleAfter(SimTime delay, std::function<void()> action);

  /// Cancel a pending event; false if it already fired or was cancelled.
  bool Cancel(EventId id) { return queue_.Cancel(id); }

  /// Run until the queue drains, `until` is reached, or Stop() is called.
  /// Returns the number of events processed by this call. Events with
  /// timestamp exactly `until` are processed.
  std::size_t Run(SimTime until = kTimeInfinity);

  /// Process exactly one event if available. Returns false when empty.
  bool RunOne();

  /// Request that Run() return after the current event completes.
  void Stop() { stop_requested_ = true; }

  /// Total number of events processed over the simulator's lifetime.
  std::uint64_t processed_events() const { return processed_; }

  /// Number of pending events.
  std::size_t pending_events() const { return queue_.Size(); }

  /// Attach an observability counter incremented once per processed event
  /// (nullptr detaches). The counter must outlive the simulator's runs.
  void SetEventCounter(obs::Counter* counter) { event_counter_ = counter; }

  // --- Checkpoint support -------------------------------------------------
  // The queue's closures are unserializable; checkpoints store typed event
  // descriptors owned by each component, which re-arm their closures via
  // RestoreEvent. The clock, lifetime event count, and the id counter are
  // the simulator's own state.

  /// The id the next scheduled event will receive (FIFO tie-break state).
  EventId NextEventId() const { return queue_.next_id(); }

  /// Restore clock + counters on a fresh simulator (no pending events).
  /// `next_event_id` continues the saved id sequence so post-restore
  /// scheduling keeps the same same-timestamp ordering.
  void RestoreClock(SimTime now, std::uint64_t processed_events,
                    EventId next_event_id) {
    queue_.SetNextId(next_event_id);
    now_ = now;
    processed_ = processed_events;
  }

  /// Re-arm one event under its original id at its original firing time.
  /// `time` may not precede the restored clock.
  void RestoreEvent(SimTime time, EventId id, std::function<void()> action);

 private:
  SimTime now_ = 0.0;
  EventQueue queue_;
  bool stop_requested_ = false;
  std::uint64_t processed_ = 0;
  obs::Counter* event_counter_ = nullptr;
};

}  // namespace iosched::sim
