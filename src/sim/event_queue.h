// Cancellable priority event queue: the core data structure of the
// discrete-event engine.
//
// Cancellation is lazy: cancelled entries stay in the heap and are skipped
// on pop. This keeps Cancel() O(1) and is the standard technique for
// simulators whose I/O-completion events are frequently rescheduled when
// bandwidth shares change.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "sim/time.h"

namespace iosched::sim {

/// Identifier returned by Push; usable to Cancel the event later.
using EventId = std::uint64_t;

/// A schedulable event: time, FIFO tie-break sequence, action.
struct Event {
  SimTime time = 0.0;
  EventId id = 0;
  std::function<void()> action;
};

class EventQueue {
 public:
  EventQueue() = default;

  /// Schedule `action` at `time`. Events at equal time pop in push order.
  EventId Push(SimTime time, std::function<void()> action);

  /// Cancel a pending event. Returns false if the event already ran, was
  /// already cancelled, or never existed.
  bool Cancel(EventId id);

  /// True when no live (non-cancelled) events remain.
  bool Empty() const { return live_count_ == 0; }

  /// Number of live events.
  std::size_t Size() const { return live_count_; }

  /// Time of the next live event. Precondition: !Empty().
  SimTime PeekTime() const;

  /// Pop and return the next live event. Precondition: !Empty().
  Event Pop();

  /// Remove every pending event.
  void Clear();

 private:
  struct Entry {
    SimTime time;
    EventId id;
    // Min-heap on (time, id): earlier time first; FIFO within a timestamp.
    bool operator>(const Entry& other) const {
      if (time != other.time) return time > other.time;
      return id > other.id;
    }
  };

  void DropCancelledHead() const;

  mutable std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>>
      heap_;
  mutable std::unordered_set<EventId> cancelled_;
  std::unordered_map<EventId, std::function<void()>> actions_;
  EventId next_id_ = 1;
  std::size_t live_count_ = 0;
};

}  // namespace iosched::sim
