// Cancellable priority event queue: the core data structure of the
// discrete-event engine.
//
// Cancellation is lazy: cancelled entries stay in the heap and are skipped
// on pop. This keeps Cancel() O(1) and is the standard technique for
// simulators whose I/O-completion events are frequently rescheduled when
// bandwidth shares change. To keep the heap from growing unboundedly across
// a month of rescheduled completion events, Cancel triggers a compaction
// (rebuild dropping every cancelled entry) whenever cancelled entries
// outnumber live ones; since a compaction is linear in the heap and halves
// it, the cost is amortized O(1) per Cancel.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "sim/time.h"

namespace iosched::sim {

/// Identifier returned by Push; usable to Cancel the event later.
using EventId = std::uint64_t;

/// A schedulable event: time, FIFO tie-break sequence, action.
struct Event {
  SimTime time = 0.0;
  EventId id = 0;
  std::function<void()> action;
};

class EventQueue {
 public:
  EventQueue() = default;

  /// Schedule `action` at `time`. Events at equal time pop in push order.
  EventId Push(SimTime time, std::function<void()> action);

  /// Cancel a pending event. Returns false if the event already ran, was
  /// already cancelled, or never existed. May compact the heap (see
  /// Compact) once enough lazily-cancelled entries pile up.
  bool Cancel(EventId id);

  /// True when no live (non-cancelled) events remain.
  bool Empty() const { return actions_.empty(); }

  /// Number of live events.
  std::size_t Size() const { return actions_.size(); }

  /// Entries physically in the heap: live plus not-yet-purged cancelled
  /// ones. Exposed so tests can assert compaction bounds the heap.
  std::size_t HeapSize() const { return heap_.size(); }

  /// Time of the next live event. Precondition: !Empty().
  SimTime PeekTime() const;

  /// Pop and return the next live event. Precondition: !Empty().
  Event Pop();

  /// Remove every pending event.
  void Clear();

  /// Rebuild the heap without the lazily-cancelled entries. Runs
  /// automatically from Cancel when cancelled entries outnumber live ones
  /// (and at least kCompactionMinCancelled have accumulated, so small
  /// queues aren't rebuilt constantly); public so tests and long-lived
  /// callers can force a bound. Preserves pop order exactly — the heap
  /// order is (time, id) and ids encode FIFO push order.
  void Compact();

  /// Minimum number of lazily-cancelled entries before an automatic
  /// compaction can trigger.
  static constexpr std::size_t kCompactionMinCancelled = 64;

  /// Re-insert an event under its ORIGINAL id during checkpoint restore.
  /// Pop order is (time, id) and ids encode FIFO push order, so recreating
  /// every live event with its saved id reproduces the pre-checkpoint pop
  /// sequence exactly; lazily-cancelled entries are simply not recreated
  /// (the restored heap is the compacted equivalent of the saved one).
  /// Throws if `id` is already pending or would collide with ids Push may
  /// hand out later (call SetNextId first).
  void RestoreSchedule(SimTime time, EventId id, std::function<void()> action);

  /// Restore the id counter so post-restore Push calls continue the saved
  /// id sequence (ids are the FIFO tie-break; reusing one would reorder
  /// same-timestamp events). Only valid while no events are pending.
  void SetNextId(EventId next_id);

  /// The id the next Push will assign (saved into checkpoints).
  EventId next_id() const { return next_id_; }

 private:
  struct Entry {
    SimTime time;
    EventId id;
  };
  // std::push_heap-style comparator; "greater" ordering yields a min-heap
  // on (time, id): earlier time first, FIFO within a timestamp.
  static bool Later(const Entry& a, const Entry& b) {
    if (a.time != b.time) return a.time > b.time;
    return a.id > b.id;
  }

  void DropCancelledHead() const;

  mutable std::vector<Entry> heap_;
  mutable std::unordered_set<EventId> cancelled_;
  std::unordered_map<EventId, std::function<void()>> actions_;
  EventId next_id_ = 1;
};

}  // namespace iosched::sim
