#include "sim/simulator.h"

#include <stdexcept>
#include <string>

#include "obs/metrics.h"
#include "util/units.h"

namespace iosched::sim {

EventId Simulator::ScheduleAt(SimTime t, std::function<void()> action) {
  if (t < now_ - util::kTimeEpsilon) {
    throw std::logic_error("Simulator: scheduling in the past (t=" +
                           std::to_string(t) + " now=" + std::to_string(now_) +
                           ")");
  }
  if (t < now_) t = now_;
  return queue_.Push(t, std::move(action));
}

EventId Simulator::ScheduleAfter(SimTime delay, std::function<void()> action) {
  if (delay < 0) {
    throw std::logic_error("Simulator: negative delay");
  }
  return queue_.Push(now_ + delay, std::move(action));
}

std::size_t Simulator::Run(SimTime until) {
  stop_requested_ = false;
  std::size_t count = 0;
  while (!queue_.Empty() && !stop_requested_) {
    if (queue_.PeekTime() > until) break;
    Event ev = queue_.Pop();
    now_ = ev.time;
    ev.action();
    ++processed_;
    if (event_counter_ != nullptr) event_counter_->Inc();
    ++count;
  }
  return count;
}

void Simulator::RestoreEvent(SimTime time, EventId id,
                             std::function<void()> action) {
  if (time < now_ - util::kTimeEpsilon) {
    throw std::logic_error("Simulator::RestoreEvent: event at t=" +
                           std::to_string(time) + " precedes restored now=" +
                           std::to_string(now_));
  }
  if (time < now_) time = now_;
  queue_.RestoreSchedule(time, id, std::move(action));
}

bool Simulator::RunOne() {
  if (queue_.Empty()) return false;
  Event ev = queue_.Pop();
  now_ = ev.time;
  ev.action();
  ++processed_;
  if (event_counter_ != nullptr) event_counter_->Inc();
  return true;
}

}  // namespace iosched::sim
