// Simulated-time definitions shared across the engine and models.
#pragma once

#include <limits>

namespace iosched::sim {

/// Simulated time in seconds since the simulation epoch (t = 0).
using SimTime = double;

/// Sentinel "never" timestamp.
inline constexpr SimTime kTimeInfinity =
    std::numeric_limits<SimTime>::infinity();

}  // namespace iosched::sim
