#include "machine/machine.h"

#include <stdexcept>

namespace iosched::machine {

MachineConfig MachineConfig::Mira() { return MachineConfig{}; }

MachineConfig MachineConfig::Intrepid() {
  MachineConfig cfg;
  cfg.midplanes_per_row = 16;  // 8 racks x 2 midplanes
  cfg.rows = 5;
  // 40,960 nodes driving ~512 GB/s of aggregate injection.
  cfg.node_bandwidth_gbps = 512.0 / 40960.0;
  return cfg;
}

MachineConfig MachineConfig::Small() {
  MachineConfig cfg;
  cfg.midplanes_per_row = 8;
  cfg.rows = 1;
  return cfg;
}

Machine::Machine(MachineConfig config)
    : config_(config),
      occupied_(static_cast<std::size_t>(config.total_midplanes()), false),
      faulted_(static_cast<std::size_t>(config.total_midplanes()), false) {
  if (config_.nodes_per_midplane <= 0 || config_.midplanes_per_row <= 0 ||
      config_.rows <= 0) {
    throw std::invalid_argument("Machine: non-positive geometry");
  }
  if (config_.node_bandwidth_gbps <= 0) {
    throw std::invalid_argument("Machine: non-positive node bandwidth");
  }
}

int Machine::BlockMidplanesFor(int requested_nodes) const {
  if (requested_nodes <= 0) return -1;
  int per_mp = config_.nodes_per_midplane;
  int row = config_.midplanes_per_row;
  int needed = (requested_nodes + per_mp - 1) / per_mp;  // ceil
  if (needed > config_.total_midplanes()) return -1;
  // Power-of-two block inside one row.
  int block = 1;
  while (block < needed && block < row) block *= 2;
  if (needed <= block && block <= row) return block;
  // Multi-row blocks: whole rows only.
  for (int rows = 2; rows <= config_.rows; ++rows) {
    if (needed <= rows * row) return rows * row;
  }
  return -1;
}

std::optional<int> Machine::BlockNodesFor(int requested_nodes) const {
  int mps = BlockMidplanesFor(requested_nodes);
  if (mps < 0) return std::nullopt;
  return mps * config_.nodes_per_midplane;
}

bool Machine::RunFree(int start, int count) const {
  for (int i = start; i < start + count; ++i) {
    if (occupied_[static_cast<std::size_t>(i)] ||
        faulted_[static_cast<std::size_t>(i)]) {
      return false;
    }
  }
  return true;
}

void Machine::SetFaulted(int midplane, bool faulted) {
  if (midplane < 0 || midplane >= config_.total_midplanes()) {
    throw std::invalid_argument("Machine::SetFaulted: bad midplane index");
  }
  auto i = static_cast<std::size_t>(midplane);
  if (faulted_[i] == faulted) return;
  faulted_[i] = faulted;
  faulted_count_ += faulted ? 1 : -1;
}

bool Machine::IsFaulted(int midplane) const {
  if (midplane < 0 || midplane >= config_.total_midplanes()) {
    throw std::invalid_argument("Machine::IsFaulted: bad midplane index");
  }
  return faulted_[static_cast<std::size_t>(midplane)];
}

int Machine::FindFreeRun(int midplanes) const {
  int row = config_.midplanes_per_row;
  if (midplanes <= row) {
    // Aligned run inside any single row.
    for (int r = 0; r < config_.rows; ++r) {
      for (int off = 0; off + midplanes <= row; off += midplanes) {
        int start = r * row + off;
        if (RunFree(start, midplanes)) return start;
      }
    }
    return -1;
  }
  // Whole-row groups: contiguous rows.
  int rows_needed = midplanes / row;
  for (int r = 0; r + rows_needed <= config_.rows; ++r) {
    int start = r * row;
    if (RunFree(start, rows_needed * row)) return start;
  }
  return -1;
}

bool Machine::CanAllocate(int requested_nodes) const {
  int mps = BlockMidplanesFor(requested_nodes);
  if (mps < 0) return false;
  return FindFreeRun(mps) >= 0;
}

std::optional<Partition> Machine::Allocate(int requested_nodes) {
  int mps = BlockMidplanesFor(requested_nodes);
  if (mps < 0) return std::nullopt;
  int start = FindFreeRun(mps);
  if (start < 0) return std::nullopt;
  for (int i = start; i < start + mps; ++i) {
    occupied_[static_cast<std::size_t>(i)] = true;
  }
  busy_midplanes_ += mps;
  busy_nodes_ += mps * config_.nodes_per_midplane;
  return Partition{start, mps, mps * config_.nodes_per_midplane};
}

void Machine::Release(const Partition& partition) {
  if (!partition.valid() ||
      partition.first_midplane + partition.midplane_count >
          config_.total_midplanes()) {
    throw std::invalid_argument("Machine::Release: bogus partition");
  }
  for (int i = partition.first_midplane;
       i < partition.first_midplane + partition.midplane_count; ++i) {
    if (!occupied_[static_cast<std::size_t>(i)]) {
      throw std::logic_error("Machine::Release: midplane already free");
    }
    occupied_[static_cast<std::size_t>(i)] = false;
  }
  busy_midplanes_ -= partition.midplane_count;
  busy_nodes_ -= partition.nodes;
}

}  // namespace iosched::machine
