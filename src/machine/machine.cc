#include "machine/machine.h"

#include <stdexcept>

namespace iosched::machine {

namespace {
/// Bits [lo, hi) of a 64-bit word, 0 <= lo < hi <= 64.
std::uint64_t WordMask(int lo, int hi) {
  std::uint64_t m = ~std::uint64_t{0} >> (64 - (hi - lo));
  return m << lo;
}

bool TestBit(const std::vector<std::uint64_t>& words, int bit) {
  return (words[static_cast<std::size_t>(bit >> 6)] >>
          (static_cast<unsigned>(bit) & 63u)) &
         1u;
}
}  // namespace

MachineConfig MachineConfig::Mira() { return MachineConfig{}; }

MachineConfig MachineConfig::Intrepid() {
  MachineConfig cfg;
  cfg.midplanes_per_row = 16;  // 8 racks x 2 midplanes
  cfg.rows = 5;
  // 40,960 nodes driving ~512 GB/s of aggregate injection.
  cfg.node_bandwidth_gbps = 512.0 / 40960.0;
  return cfg;
}

MachineConfig MachineConfig::Small() {
  MachineConfig cfg;
  cfg.midplanes_per_row = 8;
  cfg.rows = 1;
  return cfg;
}

Machine::Machine(MachineConfig config)
    : config_(config),
      occupied_words_(
          static_cast<std::size_t>((config.total_midplanes() + 63) / 64), 0),
      faulted_words_(
          static_cast<std::size_t>((config.total_midplanes() + 63) / 64), 0) {
  if (config_.nodes_per_midplane <= 0 || config_.midplanes_per_row <= 0 ||
      config_.rows <= 0) {
    throw std::invalid_argument("Machine: non-positive geometry");
  }
  if (config_.node_bandwidth_gbps <= 0) {
    throw std::invalid_argument("Machine: non-positive node bandwidth");
  }
}

int Machine::BlockMidplanesFor(int requested_nodes) const {
  if (requested_nodes <= 0) return -1;
  int per_mp = config_.nodes_per_midplane;
  int row = config_.midplanes_per_row;
  int needed = (requested_nodes + per_mp - 1) / per_mp;  // ceil
  if (needed > config_.total_midplanes()) return -1;
  // Power-of-two block inside one row.
  int block = 1;
  while (block < needed && block < row) block *= 2;
  if (needed <= block && block <= row) return block;
  // Multi-row blocks: whole rows only.
  for (int rows = 2; rows <= config_.rows; ++rows) {
    if (needed <= rows * row) return rows * row;
  }
  return -1;
}

std::optional<int> Machine::BlockNodesFor(int requested_nodes) const {
  int mps = BlockMidplanesFor(requested_nodes);
  if (mps < 0) return std::nullopt;
  return mps * config_.nodes_per_midplane;
}

bool Machine::RunFree(int start, int count) const {
  int end = start + count;
  int w_first = start >> 6;
  int w_last = (end - 1) >> 6;
  for (int w = w_first; w <= w_last; ++w) {
    int lo = (w == w_first) ? (start & 63) : 0;
    int hi = (w == w_last) ? (end - (w << 6)) : 64;
    std::uint64_t mask = WordMask(lo, hi);
    auto i = static_cast<std::size_t>(w);
    if ((occupied_words_[i] | faulted_words_[i]) & mask) return false;
  }
  return true;
}

void Machine::SetFaulted(int midplane, bool faulted) {
  if (midplane < 0 || midplane >= config_.total_midplanes()) {
    throw std::invalid_argument("Machine::SetFaulted: bad midplane index");
  }
  if (TestBit(faulted_words_, midplane) == faulted) return;
  faulted_words_[static_cast<std::size_t>(midplane >> 6)] ^=
      std::uint64_t{1} << (static_cast<unsigned>(midplane) & 63u);
  faulted_count_ += faulted ? 1 : -1;
}

bool Machine::IsFaulted(int midplane) const {
  if (midplane < 0 || midplane >= config_.total_midplanes()) {
    throw std::invalid_argument("Machine::IsFaulted: bad midplane index");
  }
  return TestBit(faulted_words_, midplane);
}

int Machine::FindFreeRun(int midplanes) const {
  int row = config_.midplanes_per_row;
  if (midplanes <= row) {
    // Aligned run inside any single row.
    for (int r = 0; r < config_.rows; ++r) {
      for (int off = 0; off + midplanes <= row; off += midplanes) {
        int start = r * row + off;
        if (RunFree(start, midplanes)) return start;
      }
    }
    return -1;
  }
  // Whole-row groups: contiguous rows.
  int rows_needed = midplanes / row;
  for (int r = 0; r + rows_needed <= config_.rows; ++r) {
    int start = r * row;
    if (RunFree(start, rows_needed * row)) return start;
  }
  return -1;
}

bool Machine::CanAllocate(int requested_nodes) const {
  int mps = BlockMidplanesFor(requested_nodes);
  if (mps < 0) return false;
  return FindFreeRun(mps) >= 0;
}

std::optional<Partition> Machine::Allocate(int requested_nodes) {
  int mps = BlockMidplanesFor(requested_nodes);
  if (mps < 0) return std::nullopt;
  int start = FindFreeRun(mps);
  if (start < 0) return std::nullopt;
  int end = start + mps;
  int w_first = start >> 6;
  int w_last = (end - 1) >> 6;
  for (int w = w_first; w <= w_last; ++w) {
    int lo = (w == w_first) ? (start & 63) : 0;
    int hi = (w == w_last) ? (end - (w << 6)) : 64;
    occupied_words_[static_cast<std::size_t>(w)] |= WordMask(lo, hi);
  }
  busy_midplanes_ += mps;
  busy_nodes_ += mps * config_.nodes_per_midplane;
  return Partition{start, mps, mps * config_.nodes_per_midplane};
}

void Machine::Release(const Partition& partition) {
  if (!partition.valid() ||
      partition.first_midplane + partition.midplane_count >
          config_.total_midplanes()) {
    throw std::invalid_argument("Machine::Release: bogus partition");
  }
  int start = partition.first_midplane;
  int end = start + partition.midplane_count;
  int w_first = start >> 6;
  int w_last = (end - 1) >> 6;
  // Verify the whole range is occupied before clearing any of it, so a
  // double release never leaves the bitmap half-mutated.
  for (int w = w_first; w <= w_last; ++w) {
    int lo = (w == w_first) ? (start & 63) : 0;
    int hi = (w == w_last) ? (end - (w << 6)) : 64;
    std::uint64_t mask = WordMask(lo, hi);
    if ((occupied_words_[static_cast<std::size_t>(w)] & mask) != mask) {
      throw std::logic_error("Machine::Release: midplane already free");
    }
  }
  for (int w = w_first; w <= w_last; ++w) {
    int lo = (w == w_first) ? (start & 63) : 0;
    int hi = (w == w_last) ? (end - (w << 6)) : 64;
    occupied_words_[static_cast<std::size_t>(w)] &= ~WordMask(lo, hi);
  }
  busy_midplanes_ -= partition.midplane_count;
  busy_nodes_ -= partition.nodes;
}

void Machine::SaveState(ckpt::Writer& w) const {
  w.U32(static_cast<std::uint32_t>(occupied_words_.size()));
  for (std::uint64_t word : occupied_words_) w.U64(word);
  for (std::uint64_t word : faulted_words_) w.U64(word);
  w.I64(busy_nodes_);
  w.I64(busy_midplanes_);
  w.I64(faulted_count_);
}

void Machine::RestoreState(ckpt::Reader& r) {
  std::uint32_t words = r.U32();
  if (words != occupied_words_.size()) {
    throw std::runtime_error(
        "Machine::RestoreState: checkpoint machine geometry (" +
        std::to_string(words) + " occupancy words) does not match this "
        "machine (" + std::to_string(occupied_words_.size()) + ")");
  }
  for (std::uint64_t& word : occupied_words_) word = r.U64();
  for (std::uint64_t& word : faulted_words_) word = r.U64();
  busy_nodes_ = static_cast<int>(r.I64());
  busy_midplanes_ = static_cast<int>(r.I64());
  faulted_count_ = static_cast<int>(r.I64());
}

std::vector<bool> Machine::occupancy() const {
  std::vector<bool> out(static_cast<std::size_t>(config_.total_midplanes()));
  for (int i = 0; i < config_.total_midplanes(); ++i) {
    out[static_cast<std::size_t>(i)] = TestBit(occupied_words_, i);
  }
  return out;
}

}  // namespace iosched::machine
