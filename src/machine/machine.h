// Blue Gene/Q-style machine model with partition-based exclusive allocation.
//
// Mira (Section II of the paper): 48 racks in 3 rows of 16; each rack has two
// 512-node midplanes, so 96 midplanes / 49,152 nodes. The smallest
// allocatable partition is one midplane (512 nodes). Larger partitions are
// power-of-two groups of midplanes aligned inside a 32-midplane row
// (512..16,384 nodes); two adjacent rows form a 32,768-node partition and
// all three rows the full 49,152-node machine. Compute resources inside a
// partition are dedicated to the job running on it (exclusive allocation),
// exactly as Cobalt does on Mira.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "ckpt/serializer.h"

namespace iosched::machine {

/// Geometry and I/O capability of the modeled system.
struct MachineConfig {
  int nodes_per_midplane = 512;
  int midplanes_per_row = 32;
  int rows = 3;
  /// Per-compute-node injection bandwidth into the I/O network, GB/s.
  /// Mira: 1536 GB/s aggregate over 49,152 nodes = 0.03125 GB/s per node.
  double node_bandwidth_gbps = 1536.0 / 49152.0;

  int total_midplanes() const { return midplanes_per_row * rows; }
  int total_nodes() const { return total_midplanes() * nodes_per_midplane; }

  /// The production Mira configuration (defaults above).
  static MachineConfig Mira();
  /// Mira's predecessor Intrepid (IBM Blue Gene/P): 40 racks in 5 rows of
  /// 8, 40,960 nodes, ~88 GB/s storage-era injection fabric (approximate
  /// public numbers; the paper quotes Intrepid at 0.5 PF with ~1/3 of
  /// Mira's I/O throughput).
  static MachineConfig Intrepid();
  /// A small test machine: 1 row of 8 midplanes (4,096 nodes).
  static MachineConfig Small();
};

/// A granted partition: a contiguous aligned run of midplanes.
struct Partition {
  int first_midplane = 0;
  int midplane_count = 0;
  /// Total nodes in the partition (may exceed the job's request).
  int nodes = 0;

  bool valid() const { return midplane_count > 0; }
};

/// Tracks midplane occupancy and implements the partition allocator.
class Machine {
 public:
  explicit Machine(MachineConfig config);

  const MachineConfig& config() const { return config_; }
  int total_nodes() const { return config_.total_nodes(); }

  /// Nodes currently inside allocated partitions (includes internal
  /// fragmentation when a job's request is smaller than its block).
  int busy_nodes() const { return busy_nodes_; }
  int free_nodes() const { return total_nodes() - busy_nodes_; }
  /// Number of midplanes currently allocated.
  int busy_midplanes() const { return busy_midplanes_; }
  /// Number of midplanes currently marked faulted (service outage).
  int faulted_midplanes() const { return faulted_count_; }

  /// Smallest allocatable block (in nodes) that can hold `requested_nodes`,
  /// or nullopt when the request exceeds the machine.
  std::optional<int> BlockNodesFor(int requested_nodes) const;

  /// True when a partition for `requested_nodes` could be carved out of the
  /// current free midplanes (used by the backfill planner).
  bool CanAllocate(int requested_nodes) const;

  /// Allocate a partition for `requested_nodes`; nullopt when no aligned
  /// free block exists. Deterministic: lowest-numbered candidate wins.
  std::optional<Partition> Allocate(int requested_nodes);

  /// Return a partition's midplanes to the free pool. Throws on a partition
  /// that is not currently allocated exactly as given.
  void Release(const Partition& partition);

  /// Mark a midplane as faulted (excluded from new allocations) or repaired.
  /// Idempotent; independent of occupancy — a faulted midplane inside a
  /// running partition stays allocated until the job is killed/released, but
  /// cannot be re-allocated afterwards. Throws on a bad index.
  void SetFaulted(int midplane, bool faulted);
  bool IsFaulted(int midplane) const;

  /// True when `partition` covers `midplane`.
  static bool Covers(const Partition& partition, int midplane) {
    return midplane >= partition.first_midplane &&
           midplane < partition.first_midplane + partition.midplane_count;
  }

  /// Occupancy bitmap (one flag per midplane), for tests and visualization.
  /// Materialized from the packed word representation on each call.
  std::vector<bool> occupancy() const;

  /// Serialize occupancy/fault words + derived counters. Geometry is not
  /// saved — it is reconstructed from the run configuration, and the
  /// checkpoint's config hash guarantees it matches.
  void SaveState(ckpt::Writer& w) const;
  /// Restore onto a machine built from the same config. Throws on a word
  /// count mismatch (config drift that escaped the hash).
  void RestoreState(ckpt::Reader& r);

 private:
  /// Midplane count of the block serving `requested_nodes` (1,2,4,...,row,
  /// 2*row, 3*row), or -1 when impossible.
  int BlockMidplanesFor(int requested_nodes) const;
  /// Find the lowest feasible start index for an aligned free run of
  /// `midplanes`, or -1.
  int FindFreeRun(int midplanes) const;
  bool RunFree(int start, int count) const;

  MachineConfig config_;
  // Occupancy and fault state are packed 64 midplanes per word so the
  // allocator's free-run probes (the hottest loop in backfill planning) are
  // a couple of masked word tests instead of per-midplane flag reads.
  std::vector<std::uint64_t> occupied_words_;
  std::vector<std::uint64_t> faulted_words_;
  int busy_nodes_ = 0;
  int busy_midplanes_ = 0;
  int faulted_count_ = 0;
};

}  // namespace iosched::machine
