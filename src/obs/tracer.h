// Execution tracer: spans, instants, and counter samples in a bounded ring
// buffer, exported as Chrome trace-event JSON (chrome://tracing and Perfetto
// both load it).
//
// Tracks map to Chrome "threads" of a single "process":
//   * kSchedulerTrack — scheduler-cycle/queue telemetry;
//   * kStorageTrack   — aggregate demand vs BWmax, congestion episodes;
//   * any track id >= 0 is a job id, one lane per job (wait/run/I-O spans).
//
// The ring bounds memory for arbitrarily long runs: once full, the oldest
// record is overwritten and `dropped()` counts the loss (the exporter still
// emits a valid trace of the most recent window). Record names must be
// string literals (or otherwise outlive the Tracer) — they are stored as
// pointers, keeping the record path allocation-free.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <vector>

namespace iosched::obs {

/// Fixed track ids; non-negative ids are job ids.
inline constexpr std::int64_t kSchedulerTrack = -1;
inline constexpr std::int64_t kStorageTrack = -2;

class Tracer {
 public:
  enum class RecordKind : std::uint8_t { kSpan, kInstant, kCounter };

  struct Record {
    RecordKind kind = RecordKind::kInstant;
    std::int64_t track = 0;
    const char* name = "";
    double start_s = 0.0;  // also the timestamp of instants/counters
    double end_s = 0.0;    // spans only
    double value = 0.0;    // span/instant payload, or the counter level
  };

  /// `capacity` > 0: maximum records retained (throws otherwise).
  explicit Tracer(std::size_t capacity);

  /// A closed interval [start_s, end_s] on `track`. end_s >= start_s.
  void Span(std::int64_t track, const char* name, double start_s,
            double end_s, double value = 0.0);

  /// A point event.
  void Instant(std::int64_t track, const char* name, double t_s,
               double value = 0.0);

  /// A counter sample (rendered as a filled area chart).
  void Counter(std::int64_t track, const char* name, double t_s,
               double value);

  std::size_t size() const { return size_; }
  std::size_t capacity() const { return ring_.size(); }
  /// Records lost to ring wraparound.
  std::uint64_t dropped() const { return dropped_; }

  /// Retained records, oldest first.
  std::vector<Record> Snapshot() const;

  /// Chrome trace-event JSON: a single array of event objects, sorted by
  /// timestamp (with a deterministic tie-break), preceded by thread_name
  /// metadata for every referenced track. Timestamps are simulated seconds
  /// scaled to microseconds, the format's native unit.
  void WriteChromeTrace(std::ostream& out) const;

 private:
  void Push(const Record& record);

  std::vector<Record> ring_;
  std::size_t next_ = 0;  // slot the next record lands in
  std::size_t size_ = 0;
  std::uint64_t dropped_ = 0;
};

}  // namespace iosched::obs
