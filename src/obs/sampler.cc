#include "obs/sampler.h"

#include <ostream>
#include <stdexcept>

#include "util/csv.h"
#include "util/units.h"

namespace iosched::obs {

TimeSeriesSampler::TimeSeriesSampler(double dt_seconds)
    : dt_seconds_(dt_seconds) {
  if (dt_seconds <= 0) {
    throw std::invalid_argument("TimeSeriesSampler: non-positive dt");
  }
}

void TimeSeriesSampler::Record(const SamplePoint& point) {
  if (!samples_.empty()) {
    double last = samples_.back().time;
    if (point.time < last - util::kTimeEpsilon) {
      throw std::logic_error("TimeSeriesSampler: time went backwards");
    }
    if (point.time <= last + util::kTimeEpsilon) {
      samples_.back() = point;
      return;
    }
  }
  samples_.push_back(point);
}

void TimeSeriesSampler::WriteCsv(std::ostream& out) const {
  util::CsvWriter csv(out);
  csv.Header({"time", "demand_gbps", "granted_gbps", "active_requests",
              "suspended_requests", "busy_nodes", "utilization",
              "queue_depth", "running_jobs", "bb_queued_gb"});
  for (const SamplePoint& p : samples_) {
    csv.Row()
        .Add(p.time)
        .Add(p.demand_gbps)
        .Add(p.granted_gbps)
        .Add(p.active_requests)
        .Add(p.suspended_requests)
        .Add(p.busy_nodes)
        .Add(p.utilization)
        .Add(static_cast<long long>(p.queue_depth))
        .Add(static_cast<long long>(p.running_jobs))
        .Add(p.bb_queued_gb);
  }
}

}  // namespace iosched::obs
