#include "obs/metrics.h"

#include <algorithm>
#include <ostream>
#include <stdexcept>

namespace iosched::obs {

Histogram::Histogram(std::string name, std::vector<double> upper_bounds)
    : name_(std::move(name)), bounds_(std::move(upper_bounds)) {
  if (bounds_.empty()) {
    throw std::invalid_argument("Histogram " + name_ + ": no buckets");
  }
  for (std::size_t i = 1; i < bounds_.size(); ++i) {
    if (bounds_[i] <= bounds_[i - 1]) {
      throw std::invalid_argument("Histogram " + name_ +
                                  ": bounds not strictly increasing");
    }
  }
  counts_.assign(bounds_.size() + 1, 0);
}

namespace {
template <typename T>
T* FindByName(const std::vector<std::unique_ptr<T>>& items,
              std::string_view name) {
  for (const auto& item : items) {
    if (item->name() == name) return item.get();
  }
  return nullptr;
}

template <typename T>
void RequireFresh(const std::vector<std::unique_ptr<T>>& items,
                  const std::string& name) {
  if (FindByName(items, name) != nullptr) {
    throw std::invalid_argument("Registry: duplicate instrument '" + name +
                                "'");
  }
}

template <typename T>
std::vector<const T*> SortedByName(
    const std::vector<std::unique_ptr<T>>& items) {
  std::vector<const T*> out;
  out.reserve(items.size());
  for (const auto& item : items) out.push_back(item.get());
  std::sort(out.begin(), out.end(),
            [](const T* a, const T* b) { return a->name() < b->name(); });
  return out;
}
}  // namespace

Counter* Registry::AddCounter(std::string name) {
  RequireFresh(counters_, name);
  counters_.push_back(std::make_unique<Counter>(std::move(name)));
  return counters_.back().get();
}

Gauge* Registry::AddGauge(std::string name) {
  RequireFresh(gauges_, name);
  gauges_.push_back(std::make_unique<Gauge>(std::move(name)));
  return gauges_.back().get();
}

Histogram* Registry::AddHistogram(std::string name,
                                  std::vector<double> upper_bounds) {
  RequireFresh(histograms_, name);
  histograms_.push_back(
      std::make_unique<Histogram>(std::move(name), std::move(upper_bounds)));
  return histograms_.back().get();
}

const Counter* Registry::FindCounter(std::string_view name) const {
  return FindByName(counters_, name);
}

const Gauge* Registry::FindGauge(std::string_view name) const {
  return FindByName(gauges_, name);
}

const Histogram* Registry::FindHistogram(std::string_view name) const {
  return FindByName(histograms_, name);
}

void Registry::WriteText(std::ostream& out) const {
  for (const Counter* c : SortedByName(counters_)) {
    out << "counter " << c->name() << ' ' << c->value() << '\n';
  }
  for (const Gauge* g : SortedByName(gauges_)) {
    out << "gauge " << g->name() << ' ' << g->value() << " max " << g->max()
        << '\n';
  }
  for (const Histogram* h : SortedByName(histograms_)) {
    out << "histogram " << h->name() << " count " << h->total_count()
        << " sum " << h->sum();
    const auto& bounds = h->bounds();
    const auto& counts = h->counts();
    for (std::size_t i = 0; i < bounds.size(); ++i) {
      out << " le_" << bounds[i] << ' ' << counts[i];
    }
    out << " inf " << counts.back() << '\n';
  }
}

}  // namespace iosched::obs
