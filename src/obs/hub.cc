#include "obs/hub.h"

namespace iosched::obs {

Hub::Hub(const Options& options)
    : options_(options),
      tracer_(options.trace_capacity),
      // The sampler object always exists; a non-positive dt only disables
      // the engine's tick events, so substitute a benign cadence here.
      sampler_(options.sample_dt_seconds > 0 ? options.sample_dt_seconds
                                             : 600.0) {
  events_processed = registry_.AddCounter("sim.events_processed");
  io_cycles = registry_.AddCounter("core.io_cycles");
  forced_reschedules = registry_.AddCounter("core.forced_reschedules");
  io_requests = registry_.AddCounter("core.io_requests");
  congested_cycles = registry_.AddCounter("core.congested_cycles");
  throttled_grants = registry_.AddCounter("core.throttled_grants");
  knapsack_invocations = registry_.AddCounter("core.knapsack_invocations");
  waterfill_iterations =
      registry_.AddCounter("storage.waterfill_iterations");
  bb_absorbed_requests = registry_.AddCounter("storage.bb_absorbed_requests");
  bb_spilled_requests = registry_.AddCounter("storage.bb_spilled_requests");
  bb_congested_cycles = registry_.AddCounter("storage.bb_congested_cycles");
  bb_reflushed_requests =
      registry_.AddCounter("storage.bb_reflushed_requests");
  io_transfer_timeouts = registry_.AddCounter("core.io_transfer_timeouts");
  io_transfer_retries = registry_.AddCounter("core.io_transfer_retries");
  io_straggler_spills = registry_.AddCounter("core.io_straggler_spills");
  invariant_checks = registry_.AddCounter("core.invariant_checks");
  sched_passes = registry_.AddCounter("sched.passes");
  backfill_starts = registry_.AddCounter("sched.backfill_starts");
  backfill_denials = registry_.AddCounter("sched.backfill_denials");
  jobs_submitted = registry_.AddCounter("sched.jobs_submitted");
  jobs_started = registry_.AddCounter("sched.jobs_started");
  jobs_completed = registry_.AddCounter("sched.jobs_completed");
  jobs_killed = registry_.AddCounter("sched.jobs_killed");
  jobs_fault_killed = registry_.AddCounter("sched.jobs_fault_killed");
  jobs_requeued = registry_.AddCounter("sched.jobs_requeued");
  jobs_abandoned = registry_.AddCounter("sched.jobs_abandoned");
  queue_depth = registry_.AddGauge("sched.queue_depth");
  queue_depth_hist = registry_.AddHistogram(
      "sched.queue_depth_hist",
      {0.0, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0});
  io_request_gb = registry_.AddHistogram(
      "core.io_request_gb", {1.0, 10.0, 100.0, 1e3, 1e4, 1e5});
}

}  // namespace iosched::obs
