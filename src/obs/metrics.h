// Observability instruments: named counters, gauges, and fixed-bucket
// histograms behind a Registry.
//
// Design constraints (the subsystem is always compiled in):
//   * the increment path is header-only and allocation-free, so a bound
//     instrument costs one add in the hot loops;
//   * instruments are created once at setup and never move — the Registry
//     hands out stable pointers that callers may cache for the run's
//     lifetime;
//   * when observability is off nothing here is even constructed; call
//     sites guard on a null hub pointer instead.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace iosched::obs {

/// Monotonically increasing event count.
class Counter {
 public:
  explicit Counter(std::string name) : name_(std::move(name)) {}

  void Inc(std::uint64_t delta = 1) { value_ += delta; }
  std::uint64_t value() const { return value_; }
  const std::string& name() const { return name_; }

 private:
  std::string name_;
  std::uint64_t value_ = 0;
};

/// Last-written level plus the running maximum (e.g. queue depth).
class Gauge {
 public:
  explicit Gauge(std::string name) : name_(std::move(name)) {}

  void Set(double value) {
    value_ = value;
    if (value > max_) max_ = value;
  }
  void Add(double delta) { Set(value_ + delta); }
  double value() const { return value_; }
  double max() const { return max_; }
  const std::string& name() const { return name_; }

 private:
  std::string name_;
  double value_ = 0.0;
  double max_ = 0.0;
};

/// Fixed-bucket histogram: bucket i counts observations <= bounds[i]; one
/// implicit overflow bucket catches the rest. Bounds are set at creation
/// and never change, so Observe never allocates.
class Histogram {
 public:
  /// `upper_bounds` must be non-empty and strictly increasing (throws
  /// std::invalid_argument otherwise).
  Histogram(std::string name, std::vector<double> upper_bounds);

  void Observe(double value) {
    ++counts_[BucketIndex(value)];
    ++total_;
    sum_ += value;
  }

  /// Index of the bucket `value` falls into (bounds.size() = overflow).
  std::size_t BucketIndex(double value) const {
    std::size_t i = 0;
    while (i < bounds_.size() && value > bounds_[i]) ++i;
    return i;
  }

  const std::string& name() const { return name_; }
  const std::vector<double>& bounds() const { return bounds_; }
  /// counts().size() == bounds().size() + 1 (last = overflow).
  const std::vector<std::uint64_t>& counts() const { return counts_; }
  std::uint64_t total_count() const { return total_; }
  double sum() const { return sum_; }
  double mean() const {
    return total_ ? sum_ / static_cast<double>(total_) : 0.0;
  }

 private:
  std::string name_;
  std::vector<double> bounds_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
  double sum_ = 0.0;
};

/// Owns every instrument of one run. Creation throws on duplicate names;
/// returned pointers stay valid for the Registry's lifetime.
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  Counter* AddCounter(std::string name);
  Gauge* AddGauge(std::string name);
  Histogram* AddHistogram(std::string name, std::vector<double> upper_bounds);

  /// Lookup by name; nullptr when absent.
  const Counter* FindCounter(std::string_view name) const;
  const Gauge* FindGauge(std::string_view name) const;
  const Histogram* FindHistogram(std::string_view name) const;

  std::size_t size() const {
    return counters_.size() + gauges_.size() + histograms_.size();
  }

  /// Human-readable dump, one instrument per line, sorted by name within
  /// each instrument type:
  ///   counter <name> <value>
  ///   gauge <name> <value> max <max>
  ///   histogram <name> count <n> sum <s> le_<bound> <n> ... inf <n>
  void WriteText(std::ostream& out) const;

 private:
  // unique_ptr elements keep instrument addresses stable across Add calls.
  std::vector<std::unique_ptr<Counter>> counters_;
  std::vector<std::unique_ptr<Gauge>> gauges_;
  std::vector<std::unique_ptr<Histogram>> histograms_;
};

}  // namespace iosched::obs
