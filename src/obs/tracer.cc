#include "obs/tracer.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <ostream>
#include <set>
#include <stdexcept>
#include <string>

namespace iosched::obs {

Tracer::Tracer(std::size_t capacity) {
  if (capacity == 0) {
    throw std::invalid_argument("Tracer: zero capacity");
  }
  ring_.resize(capacity);
}

void Tracer::Push(const Record& record) {
  if (size_ == ring_.size()) ++dropped_;
  ring_[next_] = record;
  next_ = (next_ + 1) % ring_.size();
  if (size_ < ring_.size()) ++size_;
}

void Tracer::Span(std::int64_t track, const char* name, double start_s,
                  double end_s, double value) {
  if (end_s < start_s) {
    throw std::invalid_argument("Tracer::Span: end before start");
  }
  Push(Record{RecordKind::kSpan, track, name, start_s, end_s, value});
}

void Tracer::Instant(std::int64_t track, const char* name, double t_s,
                     double value) {
  Push(Record{RecordKind::kInstant, track, name, t_s, t_s, value});
}

void Tracer::Counter(std::int64_t track, const char* name, double t_s,
                     double value) {
  Push(Record{RecordKind::kCounter, track, name, t_s, t_s, value});
}

std::vector<Tracer::Record> Tracer::Snapshot() const {
  std::vector<Record> out;
  out.reserve(size_);
  // When the ring has wrapped, `next_` is also the oldest slot.
  std::size_t start = size_ == ring_.size() ? next_ : 0;
  for (std::size_t i = 0; i < size_; ++i) {
    out.push_back(ring_[(start + i) % ring_.size()]);
  }
  return out;
}

namespace {

/// Chrome "thread" id for a track (job J gets lane J+2 after the two fixed
/// lanes, so the UI sorts jobs by id).
long long TrackTid(std::int64_t track) {
  if (track == kSchedulerTrack) return 0;
  if (track == kStorageTrack) return 1;
  return track + 2;
}

std::string TrackLabel(std::int64_t track) {
  if (track == kSchedulerTrack) return "scheduler";
  if (track == kStorageTrack) return "storage";
  return "job " + std::to_string(track);
}

void WriteEscaped(std::ostream& out, const char* s) {
  for (; *s != '\0'; ++s) {
    char c = *s;
    if (c == '"' || c == '\\') {
      out << '\\' << c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out << buf;
    } else {
      out << c;
    }
  }
}

/// JSON has no inf/nan literals; clamp so the output always parses.
void WriteNumber(std::ostream& out, double v) {
  if (!std::isfinite(v)) v = 0.0;
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6f", v);
  out << buf;
}

}  // namespace

void Tracer::WriteChromeTrace(std::ostream& out) const {
  std::vector<Record> records = Snapshot();
  // Export in deterministic order regardless of how simultaneous records
  // were interleaved at emit time.
  std::stable_sort(records.begin(), records.end(),
                   [](const Record& a, const Record& b) {
                     if (a.start_s != b.start_s) return a.start_s < b.start_s;
                     if (a.track != b.track) return a.track < b.track;
                     if (a.kind != b.kind) {
                       return static_cast<int>(a.kind) <
                              static_cast<int>(b.kind);
                     }
                     return std::strcmp(a.name, b.name) < 0;
                   });

  std::set<std::int64_t> tracks;
  for (const Record& r : records) tracks.insert(r.track);

  out << "[\n";
  bool first = true;
  auto sep = [&] {
    if (!first) out << ",\n";
    first = false;
  };
  for (std::int64_t track : tracks) {
    sep();
    out << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":"
        << TrackTid(track) << ",\"args\":{\"name\":\"";
    WriteEscaped(out, TrackLabel(track).c_str());
    out << "\"}}";
  }
  for (const Record& r : records) {
    sep();
    out << "{\"name\":\"";
    WriteEscaped(out, r.name);
    out << "\",\"pid\":1,\"tid\":" << TrackTid(r.track) << ",\"ts\":";
    WriteNumber(out, r.start_s * 1e6);
    switch (r.kind) {
      case RecordKind::kSpan:
        out << ",\"ph\":\"X\",\"dur\":";
        WriteNumber(out, (r.end_s - r.start_s) * 1e6);
        out << ",\"args\":{\"value\":";
        WriteNumber(out, r.value);
        out << "}}";
        break;
      case RecordKind::kInstant:
        out << ",\"ph\":\"i\",\"s\":\"t\",\"args\":{\"value\":";
        WriteNumber(out, r.value);
        out << "}}";
        break;
      case RecordKind::kCounter:
        out << ",\"ph\":\"C\",\"args\":{\"value\":";
        WriteNumber(out, r.value);
        out << "}}";
        break;
    }
  }
  out << "\n]\n";
}

}  // namespace iosched::obs
