// The observability hub: one Registry + Tracer + TimeSeriesSampler bundle
// with every framework instrument pre-bound, so hot paths pay exactly one
// null check when observability is off and one pointer-chase + add when it
// is on.
//
// Ownership: the caller that runs a simulation owns the Hub and passes a
// raw pointer down (nullptr = observability off, the default). The engine
// and its components never construct instruments themselves — they use the
// bound pointers below, which keeps instrument naming in one place.
#pragma once

#include <cstddef>

#include "obs/metrics.h"
#include "obs/sampler.h"
#include "obs/tracer.h"

namespace iosched::obs {

struct Options {
  /// Master switch, read by drivers to decide whether to build a Hub at
  /// all (the engine only sees the Hub pointer).
  bool enabled = false;
  /// Time-series sampling period (simulated seconds); <= 0 disables the
  /// sampler ticks.
  double sample_dt_seconds = 600.0;
  /// Ring capacity of the tracer (records, not bytes).
  std::size_t trace_capacity = 1u << 20;
};

class Hub {
 public:
  explicit Hub(const Options& options);
  Hub(const Hub&) = delete;
  Hub& operator=(const Hub&) = delete;

  const Options& options() const { return options_; }
  Registry& registry() { return registry_; }
  const Registry& registry() const { return registry_; }
  Tracer& tracer() { return tracer_; }
  const Tracer& tracer() const { return tracer_; }
  TimeSeriesSampler& sampler() { return sampler_; }
  const TimeSeriesSampler& sampler() const { return sampler_; }

  // Pre-bound instruments (never null). Names mirror the subsystem that
  // feeds them.

  /// sim.events_processed — discrete events popped by the Simulator.
  Counter* events_processed = nullptr;
  /// core.io_cycles — I/O scheduling cycles (policy invocations).
  Counter* io_cycles = nullptr;
  /// core.forced_reschedules — out-of-band cycles (BWmax changes).
  Counter* forced_reschedules = nullptr;
  /// core.io_requests — I/O requests submitted (absorbed + direct).
  Counter* io_requests = nullptr;
  /// core.congested_cycles — cycles whose aggregate demand exceeded the
  /// usable bandwidth.
  Counter* congested_cycles = nullptr;
  /// core.throttled_grants — per-cycle count of requests granted rate 0
  /// (the policy's throttle decisions).
  Counter* throttled_grants = nullptr;
  /// core.knapsack_invocations — MAX_UTIL 0-1 knapsack solves.
  Counter* knapsack_invocations = nullptr;
  /// storage.waterfill_iterations — water-filling sorted-pass steps
  /// (ADAPTIVE fair share and FairShareRates).
  Counter* waterfill_iterations = nullptr;
  /// storage.bb_absorbed_requests — I/O requests absorbed by the
  /// burst-buffer tier (bypassing the policy-managed PFS path).
  Counter* bb_absorbed_requests = nullptr;
  /// storage.bb_spilled_requests — requests that did not fit the buffer
  /// (capacity or per-job quota) and fell back to the direct path.
  Counter* bb_spilled_requests = nullptr;
  /// storage.bb_congested_cycles — scheduling cycles with BB occupancy
  /// above the configured watermark.
  Counter* bb_congested_cycles = nullptr;
  /// storage.bb_reflushed_requests — absorbed requests whose staged data a
  /// lossy BB fault dropped, forcing a re-flush over the direct path.
  Counter* bb_reflushed_requests = nullptr;
  /// core.io_transfer_timeouts — direct transfers aborted at their deadline
  /// (progress kept, remainder resubmitted after backoff).
  Counter* io_transfer_timeouts = nullptr;
  /// core.io_transfer_retries — timed-out transfers resubmitted.
  Counter* io_transfer_retries = nullptr;
  /// core.io_straggler_spills — BB-absorbable requests routed to the direct
  /// path because a straggling absorb would have blown the deadline.
  Counter* io_straggler_spills = nullptr;
  /// core.invariant_checks — full from-scratch InvariantChecker sweeps.
  Counter* invariant_checks = nullptr;
  /// sched.passes — batch-scheduler Schedule() invocations.
  Counter* sched_passes = nullptr;
  /// sched.backfill_starts — jobs started by EASY backfill (behind a
  /// blocked head).
  Counter* backfill_starts = nullptr;
  /// sched.backfill_denials — geometrically viable backfills vetoed by the
  /// admission hook (reservation-aware planning policies).
  Counter* backfill_denials = nullptr;
  /// sched.jobs_* — lifecycle counts from the engine's event emit point.
  Counter* jobs_submitted = nullptr;
  Counter* jobs_started = nullptr;
  Counter* jobs_completed = nullptr;
  Counter* jobs_killed = nullptr;
  Counter* jobs_fault_killed = nullptr;
  Counter* jobs_requeued = nullptr;
  Counter* jobs_abandoned = nullptr;
  /// sched.queue_depth — wait-queue depth at each scheduling pass.
  Gauge* queue_depth = nullptr;
  Histogram* queue_depth_hist = nullptr;
  /// core.io_request_gb — request volume distribution.
  Histogram* io_request_gb = nullptr;

 private:
  Options options_;
  Registry registry_;
  Tracer tracer_;
  TimeSeriesSampler sampler_;
};

}  // namespace iosched::obs
