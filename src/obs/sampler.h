// Periodic time-series sampler: the simulation engine records one
// SamplePoint every `dt` of simulated time (plus one at t=0 and one at the
// end of the run), and the sampler renders them as a CSV for offline
// plotting — bandwidth demand/grant, machine utilization, queue depth.
//
// The sampler itself is passive storage; the engine owns the tick cadence
// so the sampling events cannot keep an otherwise-drained event queue
// alive.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <vector>

namespace iosched::obs {

struct SamplePoint {
  double time = 0.0;
  /// Aggregate full-rate demand of active transfers (GB/s).
  double demand_gbps = 0.0;
  /// Aggregate granted rate (GB/s).
  double granted_gbps = 0.0;
  int active_requests = 0;
  int suspended_requests = 0;
  int busy_nodes = 0;
  /// busy_nodes / machine size at the sample instant.
  double utilization = 0.0;
  std::size_t queue_depth = 0;
  std::size_t running_jobs = 0;
  /// Burst-buffer drain backlog at the sample instant (GB; 0 when the tier
  /// is disabled).
  double bb_queued_gb = 0.0;
};

class TimeSeriesSampler {
 public:
  /// `dt_seconds` is the intended cadence (informational here; the engine
  /// drives the actual ticks). Must be positive.
  explicit TimeSeriesSampler(double dt_seconds);

  double dt_seconds() const { return dt_seconds_; }

  /// Append a sample. Time must be non-decreasing; a sample at the same
  /// instant as the previous one overwrites it (the end-of-run sample can
  /// coincide with the last tick).
  void Record(const SamplePoint& point);

  const std::vector<SamplePoint>& samples() const { return samples_; }
  bool empty() const { return samples_.empty(); }

  /// CSV with header:
  ///   time,demand_gbps,granted_gbps,active_requests,suspended_requests,
  ///   busy_nodes,utilization,queue_depth,running_jobs,bb_queued_gb
  void WriteCsv(std::ostream& out) const;

 private:
  double dt_seconds_;
  std::vector<SamplePoint> samples_;
};

}  // namespace iosched::obs
