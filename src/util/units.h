// Units and common scalar conventions used throughout the simulator.
//
// All simulated time is in seconds (double); data volumes are in gigabytes
// (GB, decimal); bandwidths are in GB/s. Reports convert to minutes to match
// the paper's figures.
#pragma once

namespace iosched::util {

/// Seconds per minute; reports in the paper are in minutes.
inline constexpr double kSecondsPerMinute = 60.0;
/// Seconds per hour.
inline constexpr double kSecondsPerHour = 3600.0;
/// Seconds per day.
inline constexpr double kSecondsPerDay = 86400.0;

/// Convert simulated seconds to minutes (paper's reporting unit).
constexpr double SecondsToMinutes(double s) { return s / kSecondsPerMinute; }
/// Convert minutes to simulated seconds.
constexpr double MinutesToSeconds(double m) { return m * kSecondsPerMinute; }
/// Convert hours to simulated seconds.
constexpr double HoursToSeconds(double h) { return h * kSecondsPerHour; }
/// Convert simulated seconds to hours.
constexpr double SecondsToHours(double s) { return s / kSecondsPerHour; }

/// Tolerance for floating-point comparisons on simulated time.
inline constexpr double kTimeEpsilon = 1e-7;
/// Tolerance for floating-point comparisons on bandwidth/volume.
inline constexpr double kVolumeEpsilon = 1e-9;

/// Relative slack allowed when a single granted rate is checked against a
/// job's full rate b*N_i (fair shares are computed in floating point, so a
/// share meant to equal the full rate can land a few ulps above it). Used
/// by StorageModel::SetRate and the grant validator so the two checks
/// cannot drift apart.
inline constexpr double kRateRelSlack = 1e-9;
/// Relative slack allowed when the *sum* of granted rates is checked
/// against BWmax. Looser than kRateRelSlack because the sum accumulates
/// round-off across every active transfer.
inline constexpr double kCapacityRelSlack = 1e-6;

/// Upper bound for a granted rate given the job's full rate: full rate plus
/// the shared relative + absolute slack.
constexpr double MaxGrantableRate(double full_rate_gbps) {
  return full_rate_gbps * (1.0 + kRateRelSlack) + kVolumeEpsilon;
}

}  // namespace iosched::util
