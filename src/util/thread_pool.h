// Fixed-size worker pool used to run independent simulations (policy ×
// workload sweeps) concurrently. Each simulation is single-threaded and
// deterministic; the pool only parallelizes across runs, so results are
// identical to serial execution.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace iosched::util {

class ThreadPool {
 public:
  /// Spawns `threads` workers; 0 means std::thread::hardware_concurrency()
  /// (at least 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue a task; the future resolves with the task's result (or
  /// exception).
  template <typename F>
  auto Submit(F&& f) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
    std::future<R> fut = task->get_future();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (stopping_) throw std::runtime_error("ThreadPool: submit after stop");
      queue_.emplace_back([task] { (*task)(); });
    }
    cv_.notify_one();
    return fut;
  }

  /// Run `fn(i)` for i in [0, n) across the pool and wait for completion.
  /// Exceptions from tasks are rethrown (the first one encountered).
  void ParallelFor(std::size_t n, const std::function<void(std::size_t)>& fn);

  std::size_t thread_count() const { return workers_.size(); }

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

}  // namespace iosched::util
