#include "util/strings.h"

#include <cctype>
#include <charconv>
#include <cstdarg>
#include <cstdio>

namespace iosched::util {

std::string_view Trim(std::string_view s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::vector<std::string> Split(std::string_view s, char delim) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == delim) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::vector<std::string> SplitWhitespace(std::string_view s) {
  std::vector<std::string> out;
  std::size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    std::size_t start = i;
    while (i < s.size() && !std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    if (i > start) out.emplace_back(s.substr(start, i - start));
  }
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

std::optional<double> ParseDouble(std::string_view s) {
  s = Trim(s);
  if (s.empty()) return std::nullopt;
  double value = 0.0;
  auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), value);
  if (ec != std::errc() || ptr != s.data() + s.size()) return std::nullopt;
  return value;
}

std::optional<long long> ParseInt(std::string_view s) {
  s = Trim(s);
  if (s.empty()) return std::nullopt;
  long long value = 0;
  auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), value);
  if (ec != std::errc() || ptr != s.data() + s.size()) return std::nullopt;
  return value;
}

std::optional<bool> ParseBool(std::string_view s) {
  std::string t = ToLower(Trim(s));
  if (t == "true" || t == "yes" || t == "1" || t == "on") return true;
  if (t == "false" || t == "no" || t == "0" || t == "off") return false;
  return std::nullopt;
}

std::string ToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::string Format(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list copy;
  va_copy(copy, args);
  int needed = std::vsnprintf(nullptr, 0, fmt, copy);
  va_end(copy);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<std::size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args);
  }
  va_end(args);
  return out;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i) out += sep;
    out += parts[i];
  }
  return out;
}

}  // namespace iosched::util
