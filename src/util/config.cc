#include "util/config.h"

#include <cerrno>
#include <cstring>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "util/strings.h"

namespace iosched::util {

namespace {
// Strip an unquoted trailing comment beginning with '#' or ';'.
std::string_view StripComment(std::string_view s) {
  bool in_quotes = false;
  for (std::size_t i = 0; i < s.size(); ++i) {
    char c = s[i];
    if (c == '"') in_quotes = !in_quotes;
    if (!in_quotes && (c == '#' || c == ';')) return s.substr(0, i);
  }
  return s;
}

// Remove surrounding double quotes if present.
std::string Unquote(std::string_view s) {
  if (s.size() >= 2 && s.front() == '"' && s.back() == '"') {
    return std::string(s.substr(1, s.size() - 2));
  }
  return std::string(s);
}
}  // namespace

Config Config::FromString(std::string_view text) {
  Config cfg;
  std::string section;
  std::size_t line_no = 0;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    std::size_t eol = text.find('\n', pos);
    std::string_view raw = eol == std::string_view::npos
                               ? text.substr(pos)
                               : text.substr(pos, eol - pos);
    pos = eol == std::string_view::npos ? text.size() + 1 : eol + 1;
    ++line_no;
    std::string_view line = Trim(StripComment(raw));
    if (line.empty()) continue;
    if (line.front() == '[') {
      if (line.back() != ']' || line.size() < 3) {
        throw std::runtime_error("config line " + std::to_string(line_no) +
                                 ": malformed section header");
      }
      section = std::string(Trim(line.substr(1, line.size() - 2)));
      continue;
    }
    std::size_t eq = line.find('=');
    if (eq == std::string_view::npos) {
      throw std::runtime_error("config line " + std::to_string(line_no) +
                               ": expected key = value");
    }
    std::string key(Trim(line.substr(0, eq)));
    if (key.empty()) {
      throw std::runtime_error("config line " + std::to_string(line_no) +
                               ": empty key");
    }
    std::string value = Unquote(Trim(line.substr(eq + 1)));
    std::string full = section.empty() ? key : section + "." + key;
    cfg.values_[full] = std::move(value);
  }
  return cfg;
}

Config Config::FromFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    int err = errno;
    throw std::runtime_error("config: cannot open " + path + ": " +
                             std::strerror(err));
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  if (in.bad()) {
    int err = errno;
    throw std::runtime_error("config: read failed for " + path + ": " +
                             std::strerror(err));
  }
  try {
    return FromString(buf.str());
  } catch (const std::runtime_error& e) {
    // Re-throw with the file path so a bad line in one of several configs
    // is attributable.
    throw std::runtime_error(std::string(e.what()) + " (" + path + ")");
  }
}

bool Config::Has(const std::string& key) const {
  return values_.count(key) > 0;
}

std::optional<std::string> Config::GetString(const std::string& key) const {
  auto it = values_.find(key);
  if (it == values_.end()) return std::nullopt;
  return it->second;
}

std::optional<double> Config::GetDouble(const std::string& key) const {
  auto s = GetString(key);
  if (!s) return std::nullopt;
  return ParseDouble(*s);
}

std::optional<long long> Config::GetInt(const std::string& key) const {
  auto s = GetString(key);
  if (!s) return std::nullopt;
  return ParseInt(*s);
}

std::optional<bool> Config::GetBool(const std::string& key) const {
  auto s = GetString(key);
  if (!s) return std::nullopt;
  return ParseBool(*s);
}

std::string Config::GetStringOr(const std::string& key, std::string def) const {
  return GetString(key).value_or(std::move(def));
}

double Config::GetDoubleOr(const std::string& key, double def) const {
  return GetDouble(key).value_or(def);
}

long long Config::GetIntOr(const std::string& key, long long def) const {
  return GetInt(key).value_or(def);
}

bool Config::GetBoolOr(const std::string& key, bool def) const {
  return GetBool(key).value_or(def);
}

double Config::RequireDouble(const std::string& key) const {
  auto v = GetDouble(key);
  if (!v) throw std::runtime_error("config: missing/invalid double '" + key + "'");
  return *v;
}

long long Config::RequireInt(const std::string& key) const {
  auto v = GetInt(key);
  if (!v) throw std::runtime_error("config: missing/invalid int '" + key + "'");
  return *v;
}

std::string Config::RequireString(const std::string& key) const {
  auto v = GetString(key);
  if (!v) throw std::runtime_error("config: missing string '" + key + "'");
  return *v;
}

void Config::Set(const std::string& key, std::string value) {
  values_[key] = std::move(value);
}

std::vector<std::string> Config::Keys() const {
  std::vector<std::string> keys;
  keys.reserve(values_.size());
  for (const auto& [k, v] : values_) keys.push_back(k);
  return keys;
}

std::string Config::ToString() const {
  // Emit root-section keys first (a root key after a [section] header would
  // re-parse into that section), then sections grouped in sorted order.
  std::ostringstream os;
  for (const auto& [full, value] : values_) {
    if (full.rfind('.') == std::string::npos) {
      os << full << " = " << value << "\n";
    }
  }
  std::string current_section;
  for (const auto& [full, value] : values_) {
    std::size_t dot = full.rfind('.');
    if (dot == std::string::npos) continue;
    std::string section = full.substr(0, dot);
    std::string key = full.substr(dot + 1);
    if (section != current_section) {
      os << "[" << section << "]\n";
      current_section = section;
    }
    os << key << " = " << value << "\n";
  }
  return os.str();
}

}  // namespace iosched::util
