// Minimal leveled logger. The simulator is deterministic and single-threaded
// per run, but sweeps run concurrently, so emission is mutex-guarded.
#pragma once

#include <mutex>
#include <sstream>
#include <string>

namespace iosched::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global minimum level; messages below it are compiled but not emitted.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

/// Parse "debug"/"info"/"warn"/"error"/"off"; defaults to kInfo on garbage.
LogLevel ParseLogLevel(const std::string& name);

namespace detail {
void Emit(LogLevel level, const std::string& message);

/// Stream-style log statement builder; emits on destruction.
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;
  ~LogLine() { Emit(level_, stream_.str()); }

  template <typename T>
  LogLine& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace detail

}  // namespace iosched::util

#define IOSCHED_LOG(level) ::iosched::util::detail::LogLine(level)
#define LOG_DEBUG IOSCHED_LOG(::iosched::util::LogLevel::kDebug)
#define LOG_INFO IOSCHED_LOG(::iosched::util::LogLevel::kInfo)
#define LOG_WARN IOSCHED_LOG(::iosched::util::LogLevel::kWarn)
#define LOG_ERROR IOSCHED_LOG(::iosched::util::LogLevel::kError)
