// Minimal INI-style configuration reader for experiment scenarios.
//
// Grammar (a practical subset of TOML):
//   [section]
//   key = value        # comment
//   ; full-line comments with ';' or '#'
//
// Values are stored as strings; typed getters parse on demand. Keys are
// addressed as "section.key"; keys before any section header live in the
// "" (root) section and are addressed by bare name.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace iosched::util {

class Config {
 public:
  Config() = default;

  /// Parse from in-memory text. Throws std::runtime_error with a line number
  /// on malformed input.
  static Config FromString(std::string_view text);

  /// Parse from a file. Throws std::runtime_error if unreadable.
  static Config FromFile(const std::string& path);

  /// True when the key exists.
  bool Has(const std::string& key) const;

  /// Raw string value; nullopt when missing.
  std::optional<std::string> GetString(const std::string& key) const;
  std::optional<double> GetDouble(const std::string& key) const;
  std::optional<long long> GetInt(const std::string& key) const;
  std::optional<bool> GetBool(const std::string& key) const;

  /// Typed getters with defaults.
  std::string GetStringOr(const std::string& key, std::string def) const;
  double GetDoubleOr(const std::string& key, double def) const;
  long long GetIntOr(const std::string& key, long long def) const;
  bool GetBoolOr(const std::string& key, bool def) const;

  /// Typed getter that throws std::runtime_error naming the key when the key
  /// is missing or unparsable — for required scenario parameters.
  double RequireDouble(const std::string& key) const;
  long long RequireInt(const std::string& key) const;
  std::string RequireString(const std::string& key) const;

  /// Set/override a value programmatically (used by CLI overrides).
  void Set(const std::string& key, std::string value);

  /// All keys in deterministic (sorted) order.
  std::vector<std::string> Keys() const;

  /// Serialize back to INI text (sorted keys, sections grouped).
  std::string ToString() const;

 private:
  std::map<std::string, std::string> values_;
};

}  // namespace iosched::util
