// ASCII table renderer used by the benchmark harness to print the paper's
// figures as aligned text tables.
#pragma once

#include <string>
#include <vector>

namespace iosched::util {

class Table {
 public:
  /// Column headers define the table width.
  explicit Table(std::vector<std::string> headers);

  /// Append a row; must have exactly as many cells as there are headers.
  void AddRow(std::vector<std::string> cells);

  /// Convenience: format a double with `precision` digits after the point.
  static std::string Num(double v, int precision = 1);
  /// Format a ratio like "0.97x".
  static std::string Ratio(double v, int precision = 2);
  /// Format a percentage like "-31.4%" (input is a fraction, e.g. -0.314).
  static std::string Percent(double fraction, int precision = 1);

  /// Render with column alignment and +---+ separators.
  std::string ToString() const;

  std::size_t row_count() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace iosched::util
