#include "util/atomic_file.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <stdexcept>
#include <utility>
#include <vector>

namespace iosched::util {

namespace {

[[noreturn]] void ThrowErrno(const std::string& what, const std::string& path,
                             int err) {
  throw std::runtime_error(what + " '" + path +
                           "': " + std::strerror(err));
}

std::string DirName(const std::string& path) {
  std::size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

void FsyncDirectory(const std::string& dir) {
  int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) ThrowErrno("AtomicFileWriter: cannot open directory", dir,
                         errno);
  if (::fsync(fd) != 0) {
    int err = errno;
    ::close(fd);
    ThrowErrno("AtomicFileWriter: fsync of directory failed", dir, err);
  }
  ::close(fd);
}

}  // namespace

AtomicFileWriter::AtomicFileWriter(std::string path)
    : path_(std::move(path)) {
  if (path_.empty()) {
    throw std::runtime_error("AtomicFileWriter: empty path");
  }
}

AtomicFileWriter::~AtomicFileWriter() = default;

void AtomicFileWriter::Commit() {
  if (committed_) {
    throw std::runtime_error("AtomicFileWriter: Commit() called twice for '" +
                             path_ + "'");
  }
  const std::string contents = buffer_.str();

  // Stage in a unique sibling so the rename stays within one filesystem.
  std::vector<char> tmp(path_.begin(), path_.end());
  const char suffix[] = ".tmpXXXXXX";
  tmp.insert(tmp.end(), suffix, suffix + sizeof(suffix));  // includes '\0'
  int fd = ::mkstemp(tmp.data());
  if (fd < 0) ThrowErrno("AtomicFileWriter: cannot create temp file for",
                         path_, errno);
  const std::string tmp_path(tmp.data());

  auto fail = [&](const char* what, int err) {
    ::close(fd);
    ::unlink(tmp_path.c_str());
    ThrowErrno(what, path_, err);
  };

  // mkstemp creates 0600; published outputs should be world-readable like
  // any ofstream-created file.
  if (::fchmod(fd, 0644) != 0) fail("AtomicFileWriter: fchmod failed for",
                                    errno);

  std::size_t written = 0;
  while (written < contents.size()) {
    ssize_t n = ::write(fd, contents.data() + written,
                        contents.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      fail("AtomicFileWriter: write failed for", errno);
    }
    written += static_cast<std::size_t>(n);
  }
  if (::fsync(fd) != 0) fail("AtomicFileWriter: fsync failed for", errno);
  if (::close(fd) != 0) {
    ::unlink(tmp_path.c_str());
    ThrowErrno("AtomicFileWriter: close failed for", path_, errno);
  }
  if (::rename(tmp_path.c_str(), path_.c_str()) != 0) {
    int err = errno;
    ::unlink(tmp_path.c_str());
    ThrowErrno("AtomicFileWriter: rename failed for", path_, err);
  }
  FsyncDirectory(DirName(path_));
  committed_ = true;
}

void WriteFileAtomic(const std::string& path, std::string_view contents) {
  AtomicFileWriter writer(path);
  writer.Write(contents);
  writer.Commit();
}

}  // namespace iosched::util
