#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>
#include <stdexcept>

namespace iosched::util {

RunningStats::RunningStats()
    : min_(std::numeric_limits<double>::infinity()),
      max_(-std::numeric_limits<double>::infinity()) {}

void RunningStats::Add(double x) {
  ++n_;
  sum_ += x;
  double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void RunningStats::Merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  double delta = other.mean_ - mean_;
  std::size_t total = n_ + other.n_;
  m2_ += other.m2_ + delta * delta * static_cast<double>(n_) *
                         static_cast<double>(other.n_) /
                         static_cast<double>(total);
  mean_ = (mean_ * static_cast<double>(n_) +
           other.mean_ * static_cast<double>(other.n_)) /
          static_cast<double>(total);
  sum_ += other.sum_;
  n_ = total;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void RunningStats::Clear() { *this = RunningStats(); }

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

Summary::Summary(std::span<const double> values)
    : sorted_(values.begin(), values.end()) {
  std::sort(sorted_.begin(), sorted_.end());
  if (!sorted_.empty()) {
    double s = 0.0;
    for (double v : sorted_) s += v;
    mean_ = s / static_cast<double>(sorted_.size());
  }
}

double Summary::min() const {
  if (sorted_.empty()) throw std::logic_error("Summary::min on empty sample");
  return sorted_.front();
}

double Summary::max() const {
  if (sorted_.empty()) throw std::logic_error("Summary::max on empty sample");
  return sorted_.back();
}

double Summary::Quantile(double q) const {
  if (sorted_.empty()) throw std::logic_error("Summary::Quantile on empty");
  if (q < 0.0 || q > 1.0) throw std::invalid_argument("Quantile: q not in [0,1]");
  if (sorted_.size() == 1) return sorted_.front();
  double pos = q * static_cast<double>(sorted_.size() - 1);
  auto idx = static_cast<std::size_t>(pos);
  double frac = pos - static_cast<double>(idx);
  if (idx + 1 >= sorted_.size()) return sorted_.back();
  return sorted_[idx] * (1.0 - frac) + sorted_[idx + 1] * frac;
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  if (!(lo < hi) || bins == 0) {
    throw std::invalid_argument("Histogram: require lo < hi and bins > 0");
  }
}

void Histogram::Add(double x) {
  double t = (x - lo_) / (hi_ - lo_);
  auto bin = static_cast<std::ptrdiff_t>(
      t * static_cast<double>(counts_.size()));
  bin = std::clamp<std::ptrdiff_t>(
      bin, 0, static_cast<std::ptrdiff_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(bin)];
  ++total_;
}

double Histogram::BinLow(std::size_t bin) const {
  return lo_ + (hi_ - lo_) * static_cast<double>(bin) /
                   static_cast<double>(counts_.size());
}

double Histogram::BinHigh(std::size_t bin) const { return BinLow(bin + 1); }

std::string Histogram::ToAscii(std::size_t width) const {
  std::size_t peak = 0;
  for (std::size_t c : counts_) peak = std::max(peak, c);
  std::ostringstream os;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    std::size_t bar =
        peak == 0 ? 0 : counts_[i] * width / peak;
    os << "[" << BinLow(i) << ", " << BinHigh(i) << ") "
       << std::string(bar, '#') << " " << counts_[i] << "\n";
  }
  return os.str();
}

}  // namespace iosched::util
