// Small string helpers shared by the trace parsers and the config reader.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace iosched::util {

/// Strip ASCII whitespace from both ends (view into the input).
std::string_view Trim(std::string_view s);

/// Split on a delimiter character; empty fields are preserved.
std::vector<std::string> Split(std::string_view s, char delim);

/// Split on arbitrary runs of whitespace; no empty fields.
std::vector<std::string> SplitWhitespace(std::string_view s);

/// True when `s` begins with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

/// Parse a double; nullopt on any trailing garbage or empty input.
std::optional<double> ParseDouble(std::string_view s);

/// Parse a signed 64-bit integer; nullopt on failure.
std::optional<long long> ParseInt(std::string_view s);

/// Parse a boolean: true/false/yes/no/1/0 (case-insensitive).
std::optional<bool> ParseBool(std::string_view s);

/// Lower-case an ASCII string.
std::string ToLower(std::string_view s);

/// printf-style formatting into a std::string.
std::string Format(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// Join elements with a separator.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

}  // namespace iosched::util
