// CSV emission and parsing for experiment results and trace files.
//
// The writer quotes fields per RFC 4180 when needed. The reader handles
// quoted fields, embedded commas/quotes, and comment lines.
#pragma once

#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace iosched::util {

/// Streaming CSV writer. Rows are buffered per-row and flushed to the sink.
class CsvWriter {
 public:
  /// Writes to `out`; the stream must outlive the writer.
  explicit CsvWriter(std::ostream& out) : out_(out) {}

  /// Emit the header row. May only be called before any Row().
  void Header(const std::vector<std::string>& names);

  /// Begin a row builder.
  class RowBuilder {
   public:
    explicit RowBuilder(CsvWriter& w) : writer_(w) {}
    RowBuilder(const RowBuilder&) = delete;
    RowBuilder& operator=(const RowBuilder&) = delete;
    ~RowBuilder();

    RowBuilder& Add(std::string_view field);
    RowBuilder& Add(double value);
    RowBuilder& Add(long long value);
    RowBuilder& Add(unsigned long long value);
    RowBuilder& Add(int value) { return Add(static_cast<long long>(value)); }
    RowBuilder& Add(std::size_t value) {
      return Add(static_cast<unsigned long long>(value));
    }

   private:
    CsvWriter& writer_;
    std::vector<std::string> fields_;
  };

  RowBuilder Row() { return RowBuilder(*this); }

  /// Emit a fully-formed row.
  void WriteRow(const std::vector<std::string>& fields);

 private:
  friend class RowBuilder;
  std::ostream& out_;
  bool wrote_any_ = false;
};

/// Parse one CSV line into fields (RFC 4180 quoting).
std::vector<std::string> ParseCsvLine(std::string_view line);

/// Parse a whole CSV document: skips blank lines and lines starting with '#'.
/// When `has_header` is true the first data line is returned separately.
struct CsvDocument {
  std::vector<std::string> header;
  std::vector<std::vector<std::string>> rows;
};
CsvDocument ParseCsv(std::string_view text, bool has_header);

/// Quote a single field if it contains a comma, quote, or newline.
std::string CsvQuote(std::string_view field);

}  // namespace iosched::util
