#include "util/csv.h"

#include <cstdio>
#include <stdexcept>

#include "util/strings.h"

namespace iosched::util {

void CsvWriter::Header(const std::vector<std::string>& names) {
  if (wrote_any_) throw std::logic_error("CsvWriter::Header after rows");
  WriteRow(names);
}

void CsvWriter::WriteRow(const std::vector<std::string>& fields) {
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i) out_ << ',';
    out_ << CsvQuote(fields[i]);
  }
  out_ << '\n';
  wrote_any_ = true;
}

CsvWriter::RowBuilder::~RowBuilder() { writer_.WriteRow(fields_); }

CsvWriter::RowBuilder& CsvWriter::RowBuilder::Add(std::string_view field) {
  fields_.emplace_back(field);
  return *this;
}

CsvWriter::RowBuilder& CsvWriter::RowBuilder::Add(double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", value);
  fields_.emplace_back(buf);
  return *this;
}

CsvWriter::RowBuilder& CsvWriter::RowBuilder::Add(long long value) {
  fields_.emplace_back(std::to_string(value));
  return *this;
}

CsvWriter::RowBuilder& CsvWriter::RowBuilder::Add(unsigned long long value) {
  fields_.emplace_back(std::to_string(value));
  return *this;
}

std::string CsvQuote(std::string_view field) {
  bool needs_quote = field.find_first_of(",\"\n\r") != std::string_view::npos;
  if (!needs_quote) return std::string(field);
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += '"';
  return out;
}

std::vector<std::string> ParseCsvLine(std::string_view line) {
  std::vector<std::string> fields;
  std::string cur;
  bool in_quotes = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          cur += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        cur += c;
      }
    } else if (c == '"') {
      in_quotes = true;
    } else if (c == ',') {
      fields.push_back(std::move(cur));
      cur.clear();
    } else {
      cur += c;
    }
  }
  fields.push_back(std::move(cur));
  return fields;
}

CsvDocument ParseCsv(std::string_view text, bool has_header) {
  CsvDocument doc;
  std::size_t pos = 0;
  bool seen_header = !has_header;
  while (pos <= text.size()) {
    std::size_t eol = text.find('\n', pos);
    std::string_view line = eol == std::string_view::npos
                                ? text.substr(pos)
                                : text.substr(pos, eol - pos);
    pos = eol == std::string_view::npos ? text.size() + 1 : eol + 1;
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
    std::string_view trimmed = Trim(line);
    if (trimmed.empty() || trimmed.front() == '#') continue;
    auto fields = ParseCsvLine(line);
    if (!seen_header) {
      doc.header = std::move(fields);
      seen_header = true;
    } else {
      doc.rows.push_back(std::move(fields));
    }
  }
  return doc;
}

}  // namespace iosched::util
