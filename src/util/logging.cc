#include "util/logging.h"

#include <atomic>
#include <cstdio>

#include "util/strings.h"

namespace iosched::util {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kInfo};
std::mutex g_emit_mutex;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF  ";
  }
  return "?    ";
}
}  // namespace

void SetLogLevel(LogLevel level) { g_level.store(level); }
LogLevel GetLogLevel() { return g_level.load(); }

LogLevel ParseLogLevel(const std::string& name) {
  std::string n = ToLower(name);
  if (n == "debug") return LogLevel::kDebug;
  if (n == "warn" || n == "warning") return LogLevel::kWarn;
  if (n == "error") return LogLevel::kError;
  if (n == "off" || n == "none") return LogLevel::kOff;
  return LogLevel::kInfo;
}

namespace detail {
void Emit(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) < static_cast<int>(g_level.load())) return;
  std::lock_guard<std::mutex> lock(g_emit_mutex);
  std::fprintf(stderr, "[%s] %s\n", LevelName(level), message.c_str());
}
}  // namespace detail

}  // namespace iosched::util
