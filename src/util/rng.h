// Deterministic pseudo-random number generation for workload synthesis.
//
// We implement PCG32 (O'Neill, pcg-random.org, Apache-2.0 algorithm) rather
// than relying on std::mt19937 so that generated workloads are reproducible
// bit-for-bit across standard libraries and platforms. Distribution sampling
// (exponential, log-normal, bounded Pareto, weighted discrete) is implemented
// on top of the raw generator for the same reason: std::* distributions are
// not portable across implementations.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace iosched::util {

/// PCG32: 64-bit state / 32-bit output permuted congruential generator.
/// Satisfies UniformRandomBitGenerator so it can also feed std facilities.
class Pcg32 {
 public:
  using result_type = std::uint32_t;

  /// Seeds with a state and a stream selector; distinct streams from the
  /// same seed are statistically independent.
  explicit Pcg32(std::uint64_t seed = 0x853c49e6748fea9bULL,
                 std::uint64_t stream = 0xda3e39cb94b95bdbULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return 0xffffffffu; }

  /// Next raw 32-bit output.
  result_type operator()();

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform integer in [0, bound) without modulo bias. `bound` must be > 0.
  std::uint32_t NextBounded(std::uint32_t bound);

  /// Advance the generator by `delta` steps in O(log delta) (jump-ahead).
  void Advance(std::uint64_t delta);

  /// Raw generator state, for checkpointing. `inc` encodes the stream
  /// selector; restoring {state, inc} resumes the sequence exactly.
  struct State {
    std::uint64_t state = 0;
    std::uint64_t inc = 0;
  };
  State SaveState() const { return {state_, inc_}; }
  void RestoreState(const State& s) {
    state_ = s.state;
    inc_ = s.inc;
  }

 private:
  std::uint64_t state_;
  std::uint64_t inc_;
};

/// Random variate sampler over a Pcg32 engine. All samplers are stateless
/// with respect to parameters: they take parameters per call so one Rng can
/// serve many distributions.
class Rng {
 public:
  explicit Rng(std::uint64_t seed, std::uint64_t stream = 1);

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi);
  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t UniformInt(std::int64_t lo, std::int64_t hi);
  /// Bernoulli trial with probability `p` of true.
  bool Bernoulli(double p);
  /// Exponential with rate lambda (mean 1/lambda).
  double Exponential(double lambda);
  /// Normal via Box-Muller (mean mu, stddev sigma).
  double Normal(double mu, double sigma);
  /// Log-normal: exp(Normal(mu, sigma)) — `mu`/`sigma` are in log space.
  double LogNormal(double mu, double sigma);
  /// Bounded Pareto on [lo, hi] with shape alpha (heavy-tailed sizes).
  double BoundedPareto(double alpha, double lo, double hi);
  /// Index in [0, weights.size()) drawn proportionally to `weights`.
  /// Weights must be non-negative with a positive sum.
  std::size_t WeightedIndex(std::span<const double> weights);
  /// Poisson count with mean `lambda` (Knuth for small, normal approx large).
  std::int64_t Poisson(double lambda);

  /// Access the underlying engine (e.g. for std::shuffle).
  Pcg32& engine() { return engine_; }

  /// Full sampler state (engine + cached Box-Muller spare), for
  /// checkpointing.
  struct State {
    Pcg32::State engine;
    bool has_spare = false;
    double spare = 0.0;
  };
  State SaveState() const { return {engine_.SaveState(), has_spare_, spare_}; }
  void RestoreState(const State& s) {
    engine_.RestoreState(s.engine);
    has_spare_ = s.has_spare;
    spare_ = s.spare;
  }

 private:
  Pcg32 engine_;
  // Cached second Box-Muller variate.
  bool has_spare_ = false;
  double spare_ = 0.0;
};

/// Fisher-Yates shuffle of a vector using the portable engine.
template <typename T>
void Shuffle(std::vector<T>& v, Pcg32& g) {
  for (std::size_t i = v.size(); i > 1; --i) {
    std::size_t j = g.NextBounded(static_cast<std::uint32_t>(i));
    using std::swap;
    swap(v[i - 1], v[j]);
  }
}

}  // namespace iosched::util
