#include "util/table.h"

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <stdexcept>

namespace iosched::util {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  if (headers_.empty()) throw std::invalid_argument("Table: no headers");
}

void Table::AddRow(std::vector<std::string> cells) {
  if (cells.size() != headers_.size()) {
    throw std::invalid_argument("Table: row width mismatch");
  }
  rows_.push_back(std::move(cells));
}

std::string Table::Num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string Table::Ratio(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*fx", precision, v);
  return buf;
}

std::string Table::Percent(double fraction, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%+.*f%%", precision, fraction * 100.0);
  return buf;
}

std::string Table::ToString() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  auto rule = [&] {
    std::string s = "+";
    for (std::size_t w : widths) s += std::string(w + 2, '-') + "+";
    return s + "\n";
  };
  auto line = [&](const std::vector<std::string>& cells) {
    std::string s = "|";
    for (std::size_t c = 0; c < cells.size(); ++c) {
      s += " " + cells[c] + std::string(widths[c] - cells[c].size(), ' ') + " |";
    }
    return s + "\n";
  };

  std::ostringstream os;
  os << rule() << line(headers_) << rule();
  for (const auto& row : rows_) os << line(row);
  os << rule();
  return os.str();
}

}  // namespace iosched::util
