// Streaming and batch statistics used by the metrics subsystem and the
// benchmark harness.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace iosched::util {

/// Numerically stable streaming mean/variance (Welford) with min/max.
class RunningStats {
 public:
  /// Incorporate one observation.
  void Add(double x);
  /// Merge another accumulator into this one (parallel reduction).
  void Merge(const RunningStats& other);
  /// Reset to the empty state.
  void Clear();

  std::size_t count() const { return n_; }
  /// Mean of observations; 0 when empty.
  double mean() const { return n_ ? mean_ : 0.0; }
  /// Unbiased sample variance; 0 with fewer than two observations.
  double variance() const;
  /// Sample standard deviation.
  double stddev() const;
  /// Smallest observation; +inf when empty.
  double min() const { return min_; }
  /// Largest observation; -inf when empty.
  double max() const { return max_; }
  /// Sum of observations.
  double sum() const { return sum_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_;
  double max_;

 public:
  RunningStats();
};

/// Batch summary: quantiles over a copy of the sample (nearest-rank with
/// linear interpolation, the "type 7" estimator used by R/numpy).
class Summary {
 public:
  explicit Summary(std::span<const double> values);

  std::size_t count() const { return sorted_.size(); }
  double mean() const { return mean_; }
  double min() const;
  double max() const;
  /// Quantile for q in [0,1]; interpolated. Throws when empty.
  double Quantile(double q) const;
  double median() const { return Quantile(0.5); }
  double p90() const { return Quantile(0.90); }
  double p99() const { return Quantile(0.99); }

 private:
  std::vector<double> sorted_;
  double mean_ = 0.0;
};

/// Fixed-bin histogram on [lo, hi); samples outside the range are clamped
/// into the first/last bin so mass is never silently dropped.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void Add(double x);
  std::size_t bin_count() const { return counts_.size(); }
  std::size_t count(std::size_t bin) const { return counts_.at(bin); }
  std::size_t total() const { return total_; }
  /// Inclusive lower edge of `bin`.
  double BinLow(std::size_t bin) const;
  /// Exclusive upper edge of `bin`.
  double BinHigh(std::size_t bin) const;
  /// Render a compact ASCII sketch (for logs and examples).
  std::string ToAscii(std::size_t width = 40) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

}  // namespace iosched::util
