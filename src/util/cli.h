// Minimal command-line flag parser for the tools/ binaries.
//
// Supported syntax: --name value, --name=value, and boolean --name. Flags
// are declared up front with defaults and help text; Parse() consumes
// argv, leaving positional arguments accessible by index.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace iosched::util {

class CliParser {
 public:
  /// `program_summary` is printed at the top of Help().
  explicit CliParser(std::string program_summary);

  /// Declare flags before Parse(). `default_value` is returned when the
  /// flag is absent; boolean flags default to false and take no value.
  void AddFlag(const std::string& name, const std::string& default_value,
               const std::string& help);
  void AddBoolFlag(const std::string& name, const std::string& help);

  /// Parse argv (excluding argv[0]); returns false and records an error on
  /// unknown flags or missing values.
  bool Parse(int argc, const char* const* argv);

  /// Typed access after Parse(). Unknown names throw std::logic_error (a
  /// programming error, not a user error).
  std::string GetString(const std::string& name) const;
  double GetDouble(const std::string& name) const;
  long long GetInt(const std::string& name) const;
  bool GetBool(const std::string& name) const;
  /// True when the user supplied the flag explicitly.
  bool Provided(const std::string& name) const;

  const std::vector<std::string>& positional() const { return positional_; }
  const std::string& error() const { return error_; }

  /// Usage text from the declarations.
  std::string Help() const;

 private:
  struct Flag {
    std::string default_value;
    std::string help;
    bool boolean = false;
    std::optional<std::string> value;
  };

  std::string summary_;
  std::map<std::string, Flag> flags_;
  std::vector<std::string> positional_;
  std::string error_;
};

}  // namespace iosched::util
