#include "util/rng.h"

#include <cmath>
#include <stdexcept>

namespace iosched::util {

namespace {
constexpr std::uint64_t kMultiplier = 6364136223846793005ULL;
}  // namespace

Pcg32::Pcg32(std::uint64_t seed, std::uint64_t stream)
    : state_(0), inc_((stream << 1u) | 1u) {
  operator()();
  state_ += seed;
  operator()();
}

Pcg32::result_type Pcg32::operator()() {
  std::uint64_t old = state_;
  state_ = old * kMultiplier + inc_;
  auto xorshifted =
      static_cast<std::uint32_t>(((old >> 18u) ^ old) >> 27u);
  auto rot = static_cast<std::uint32_t>(old >> 59u);
  return (xorshifted >> rot) | (xorshifted << ((32u - rot) & 31u));
}

double Pcg32::NextDouble() {
  // 53 random bits -> double in [0,1).
  std::uint64_t hi = operator()();
  std::uint64_t lo = operator()();
  std::uint64_t bits = (hi << 21u) ^ lo;  // 53 significant bits
  return static_cast<double>(bits & ((1ULL << 53u) - 1)) * 0x1.0p-53;
}

std::uint32_t Pcg32::NextBounded(std::uint32_t bound) {
  if (bound == 0) throw std::invalid_argument("NextBounded: bound must be > 0");
  // Lemire-style rejection to kill modulo bias.
  std::uint32_t threshold = (-bound) % bound;
  for (;;) {
    std::uint32_t r = operator()();
    if (r >= threshold) return r % bound;
  }
}

void Pcg32::Advance(std::uint64_t delta) {
  // Brown, "Random Number Generation with Arbitrary Strides" (1994).
  std::uint64_t cur_mult = kMultiplier;
  std::uint64_t cur_plus = inc_;
  std::uint64_t acc_mult = 1u;
  std::uint64_t acc_plus = 0u;
  while (delta > 0) {
    if (delta & 1u) {
      acc_mult *= cur_mult;
      acc_plus = acc_plus * cur_mult + cur_plus;
    }
    cur_plus = (cur_mult + 1) * cur_plus;
    cur_mult *= cur_mult;
    delta >>= 1u;
  }
  state_ = acc_mult * state_ + acc_plus;
}

Rng::Rng(std::uint64_t seed, std::uint64_t stream) : engine_(seed, stream) {}

double Rng::Uniform(double lo, double hi) {
  return lo + (hi - lo) * engine_.NextDouble();
}

std::int64_t Rng::UniformInt(std::int64_t lo, std::int64_t hi) {
  if (lo > hi) throw std::invalid_argument("UniformInt: lo > hi");
  auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span <= 0xffffffffULL) {
    return lo + engine_.NextBounded(static_cast<std::uint32_t>(span));
  }
  // Wide range: compose two 32-bit draws (span < 2^64 always holds here).
  std::uint64_t r =
      (static_cast<std::uint64_t>(engine_()) << 32u) | engine_();
  return lo + static_cast<std::int64_t>(r % span);
}

bool Rng::Bernoulli(double p) { return engine_.NextDouble() < p; }

double Rng::Exponential(double lambda) {
  if (lambda <= 0) throw std::invalid_argument("Exponential: lambda <= 0");
  double u = engine_.NextDouble();
  // 1-u in (0,1] avoids log(0).
  return -std::log1p(-u) / lambda;
}

double Rng::Normal(double mu, double sigma) {
  if (has_spare_) {
    has_spare_ = false;
    return mu + sigma * spare_;
  }
  double u1 = 0.0;
  do {
    u1 = engine_.NextDouble();
  } while (u1 <= 1e-300);
  double u2 = engine_.NextDouble();
  double mag = std::sqrt(-2.0 * std::log(u1));
  double two_pi_u2 = 2.0 * 3.14159265358979323846 * u2;
  spare_ = mag * std::sin(two_pi_u2);
  has_spare_ = true;
  return mu + sigma * mag * std::cos(two_pi_u2);
}

double Rng::LogNormal(double mu, double sigma) {
  return std::exp(Normal(mu, sigma));
}

double Rng::BoundedPareto(double alpha, double lo, double hi) {
  if (alpha <= 0 || lo <= 0 || hi <= lo) {
    throw std::invalid_argument("BoundedPareto: require alpha>0, 0<lo<hi");
  }
  double u = engine_.NextDouble();
  double la = std::pow(lo, alpha);
  double ha = std::pow(hi, alpha);
  return std::pow(-(u * ha - u * la - ha) / (ha * la), -1.0 / alpha);
}

std::size_t Rng::WeightedIndex(std::span<const double> weights) {
  double total = 0.0;
  for (double w : weights) {
    if (w < 0) throw std::invalid_argument("WeightedIndex: negative weight");
    total += w;
  }
  if (total <= 0) throw std::invalid_argument("WeightedIndex: zero total");
  double target = engine_.NextDouble() * total;
  double acc = 0.0;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (target < acc) return i;
  }
  return weights.size() - 1;  // floating-point edge: return last bucket
}

std::int64_t Rng::Poisson(double lambda) {
  if (lambda < 0) throw std::invalid_argument("Poisson: lambda < 0");
  if (lambda == 0) return 0;
  if (lambda < 30.0) {
    double l = std::exp(-lambda);
    std::int64_t k = 0;
    double p = 1.0;
    do {
      ++k;
      p *= engine_.NextDouble();
    } while (p > l);
    return k - 1;
  }
  // Normal approximation with continuity correction for large lambda.
  double x = Normal(lambda, std::sqrt(lambda));
  return x < 0 ? 0 : static_cast<std::int64_t>(x + 0.5);
}

}  // namespace iosched::util
