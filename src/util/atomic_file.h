// Crash-safe file output: stage the full contents in a temporary file next
// to the destination, fsync it, then rename over the target. Readers either
// see the complete old file or the complete new file — never a truncated
// mix — so a crash mid-write cannot leave a half-written CSV/JSON behind.
//
// Usage:
//   util::AtomicFileWriter out(path);
//   out.stream() << ...;           // or out.Write(string_view)
//   out.Commit();                  // throws std::runtime_error on failure
//
// If Commit() is never called (exception unwound past the writer), nothing
// touches the destination — contents are staged in memory until Commit().
// All failures — open, write, flush, fsync, rename — throw with the path
// and the OS errno text, so disk-full and unwritable-dir conditions surface
// as errors instead of silently truncated output.
#pragma once

#include <sstream>
#include <string>
#include <string_view>

namespace iosched::util {

class AtomicFileWriter {
 public:
  explicit AtomicFileWriter(std::string path);
  AtomicFileWriter(const AtomicFileWriter&) = delete;
  AtomicFileWriter& operator=(const AtomicFileWriter&) = delete;
  ~AtomicFileWriter();

  /// Buffered output stream; contents reach disk only on Commit().
  std::ostream& stream() { return buffer_; }

  void Write(std::string_view data) { buffer_ << data; }

  /// Atomically publishes the buffered contents to `path`: writes a
  /// temporary sibling file, fsyncs it, renames it over the target, and
  /// fsyncs the containing directory. Throws std::runtime_error carrying
  /// the path and errno text on any failure. At most one Commit() per
  /// writer.
  void Commit();

  const std::string& path() const { return path_; }
  bool committed() const { return committed_; }

 private:
  std::string path_;
  std::ostringstream buffer_;
  bool committed_ = false;
};

/// One-shot helper: atomically replace `path` with `contents`.
void WriteFileAtomic(const std::string& path, std::string_view contents);

}  // namespace iosched::util
