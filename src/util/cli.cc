#include "util/cli.h"

#include <sstream>
#include <stdexcept>

#include "util/strings.h"

namespace iosched::util {

CliParser::CliParser(std::string program_summary)
    : summary_(std::move(program_summary)) {}

void CliParser::AddFlag(const std::string& name,
                        const std::string& default_value,
                        const std::string& help) {
  flags_[name] = Flag{default_value, help, false, std::nullopt};
}

void CliParser::AddBoolFlag(const std::string& name, const std::string& help) {
  flags_[name] = Flag{"false", help, true, std::nullopt};
}

bool CliParser::Parse(int argc, const char* const* argv) {
  for (int i = 0; i < argc; ++i) {
    std::string arg = argv[i];
    if (!StartsWith(arg, "--")) {
      positional_.push_back(arg);
      continue;
    }
    std::string name = arg.substr(2);
    std::string value;
    bool has_inline_value = false;
    std::size_t eq = name.find('=');
    if (eq != std::string::npos) {
      value = name.substr(eq + 1);
      name = name.substr(0, eq);
      has_inline_value = true;
    }
    auto it = flags_.find(name);
    if (it == flags_.end()) {
      error_ = "unknown flag --" + name;
      return false;
    }
    Flag& flag = it->second;
    if (flag.boolean) {
      if (has_inline_value) {
        auto parsed = ParseBool(value);
        if (!parsed) {
          error_ = "bad boolean for --" + name + ": " + value;
          return false;
        }
        flag.value = *parsed ? "true" : "false";
      } else {
        flag.value = "true";
      }
      continue;
    }
    if (!has_inline_value) {
      if (i + 1 >= argc) {
        error_ = "missing value for --" + name;
        return false;
      }
      value = argv[++i];
    }
    flag.value = value;
  }
  return true;
}

std::string CliParser::GetString(const std::string& name) const {
  auto it = flags_.find(name);
  if (it == flags_.end()) {
    throw std::logic_error("CliParser: undeclared flag --" + name);
  }
  return it->second.value.value_or(it->second.default_value);
}

double CliParser::GetDouble(const std::string& name) const {
  auto v = ParseDouble(GetString(name));
  if (!v) {
    throw std::runtime_error("flag --" + name + " is not a number: " +
                             GetString(name));
  }
  return *v;
}

long long CliParser::GetInt(const std::string& name) const {
  auto v = ParseInt(GetString(name));
  if (!v) {
    throw std::runtime_error("flag --" + name + " is not an integer: " +
                             GetString(name));
  }
  return *v;
}

bool CliParser::GetBool(const std::string& name) const {
  auto v = ParseBool(GetString(name));
  return v.value_or(false);
}

bool CliParser::Provided(const std::string& name) const {
  auto it = flags_.find(name);
  if (it == flags_.end()) {
    throw std::logic_error("CliParser: undeclared flag --" + name);
  }
  return it->second.value.has_value();
}

std::string CliParser::Help() const {
  std::ostringstream os;
  os << summary_ << "\n\nflags:\n";
  for (const auto& [name, flag] : flags_) {
    os << "  --" << name;
    if (!flag.boolean) os << " <value>";
    os << "  " << flag.help;
    if (!flag.boolean && !flag.default_value.empty()) {
      os << " (default: " << flag.default_value << ")";
    }
    os << "\n";
  }
  return os.str();
}

}  // namespace iosched::util
