// Fault injection over the discrete-event simulator.
//
// The injector owns no model state: it schedules the plan's fault and repair
// events on the Simulator and applies them through hook callbacks provided
// by the engine (scale storage bandwidth, fault/repair a midplane, kill a
// running job). Probabilistic mid-run kills are drawn per job attempt from a
// dedicated PCG stream, so a (plan, workload) pair replays bit-identically:
// the draw order is the deterministic job-start order of the simulation.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <unordered_map>

#include "ckpt/serializer.h"
#include "faults/fault_plan.h"
#include "metrics/fault_stats.h"
#include "sim/simulator.h"
#include "util/rng.h"
#include "workload/job.h"

namespace iosched::faults {

/// Engine-side effects of a fault event. All hooks are required when the
/// corresponding plan component is non-empty.
struct FaultHooks {
  /// Storage bandwidth factor changed (1.0 = nominal). Called at most once
  /// per distinct factor transition; the receiver must rescale BWmax and
  /// force an I/O re-planning cycle.
  std::function<void(double factor, sim::SimTime now)> set_bandwidth_factor;
  /// A midplane went down (`faulted`) or came back. On fault, the receiver
  /// must kill any job whose partition covers the midplane and exclude it
  /// from future allocations; on repair, return it to the free pool.
  std::function<void(int midplane, bool faulted, sim::SimTime now)>
      set_midplane_faulted;
  /// Kill a running job (fault-kill path, distinct from the walltime kill).
  /// Must be a no-op returning false when the job is no longer running.
  std::function<bool(workload::JobId id, sim::SimTime now)> kill_job;
  /// The burst buffer went down (`faulted`) or came back. On fault with
  /// `lose_data`, the receiver must drop all buffered data and re-flush
  /// in-flight absorbed requests over the direct path.
  std::function<void(bool faulted, bool lose_data, sim::SimTime now)>
      set_bb_faulted;
  /// BB drain-rate factor changed (1.0 = nominal). Called at most once per
  /// distinct factor transition.
  std::function<void(double factor, sim::SimTime now)> set_drain_factor;
};

class FaultInjector {
 public:
  /// `simulator` must outlive the injector; `stats` may be null. Throws
  /// std::invalid_argument when the plan fails Validate() or a hook needed
  /// by the plan is missing.
  FaultInjector(sim::Simulator& simulator, FaultPlan plan, FaultHooks hooks,
                metrics::FaultStats* stats = nullptr);

  /// Schedule every planned fault/repair event. Call once, before Run().
  void Arm();

  /// Notify that a job attempt started; draws the (seeded) kill decision
  /// and schedules the kill event inside (5%, 95%) of `expected_runtime`.
  /// Each retry attempt draws independently.
  void OnJobStart(workload::JobId id, sim::SimTime now,
                  double expected_runtime);

  /// Notify that a job left the machine (finished, walltime-killed, or
  /// fault-killed); cancels its pending kill event, if any.
  void OnJobStop(workload::JobId id);

  /// Smallest active degradation factor (1.0 when storage is nominal).
  double current_bandwidth_factor() const { return current_factor_; }

  /// Smallest active drain factor (1.0 when the BB drain is nominal).
  double current_drain_factor() const { return current_drain_factor_; }

  /// True while at least one burst-buffer fault window is active.
  bool bb_faulted() const { return active_bb_faults_ > 0; }

  /// Seeded per-transfer straggler draw: the effective-rate multiplier for
  /// the next direct PFS transfer (1.0 = nominal, `straggler_factor` when
  /// the Bernoulli draw straggles). Call exactly once per direct-transfer
  /// submission, in deterministic event order. Returns 1.0 without drawing
  /// when the plan has no stragglers.
  double DrawStragglerFactor();

  /// Close the degraded-seconds accounting at the end of the run.
  void FinalizeStats(sim::SimTime end);

  const FaultPlan& plan() const { return plan_; }

  /// Serialize runtime state: RNG stream position, active windows, the
  /// not-yet-fired plan edges and pending kill events (with their original
  /// event ids and firing times). The plan itself is NOT saved — it is
  /// rebuilt deterministically from the run config, which the checkpoint's
  /// config hash pins.
  void SaveState(ckpt::Writer& w) const;
  /// Restore onto a freshly constructed (un-armed) injector built from the
  /// identical plan; re-arms the saved events under their original ids.
  /// Replaces the Arm() call for a resumed run.
  void RestoreState(ckpt::Reader& r);

 private:
  void OnDegradationEdge(double factor, bool begin);
  void OnOutageEdge(int midplane, bool begin);
  void OnBbFaultEdge(bool lose_data, bool begin);
  void OnDrainEdge(double factor, bool begin);
  /// Recompute the effective factor from active windows and fire the hook
  /// on transitions.
  void ApplyFactor();
  void ApplyDrainFactor();
  void AccrueDegradedTime(sim::SimTime now);

  /// Plan edges are enumerated canonically for checkpointing: index 2i /
  /// 2i+1 are degradation i's start/end, then outage edges follow at offset
  /// 2 * degradations.size(), then burst-buffer fault edges, then
  /// drain-degradation edges. Firing time and action are derived from the
  /// plan, so a checkpoint stores only (edge index, event id).
  std::size_t EdgeCount() const;
  sim::SimTime EdgeTime(std::size_t edge) const;
  std::function<void()> EdgeAction(std::size_t edge);

  /// A pending probabilistic kill: the scheduled event and its firing time
  /// (needed to re-arm the closure on restore).
  struct PendingKill {
    sim::EventId event = 0;
    sim::SimTime fire_time = 0.0;
  };
  std::function<void()> KillAction(workload::JobId id);
  std::function<void()> FailureAction(workload::JobId id);

  sim::Simulator& simulator_;
  FaultPlan plan_;
  FaultHooks hooks_;
  metrics::FaultStats* stats_;
  util::Rng kill_rng_;
  util::Rng straggler_rng_;
  /// MTBF time-to-failure draws (stream 43, independent of the kill and
  /// straggler streams so enabling MTBF never perturbs their sequences).
  util::Rng mtbf_rng_;
  /// Multiset of active degradation factors (value -> active count).
  std::unordered_map<double, int> active_factors_;
  double current_factor_ = 1.0;
  /// Multiset of active drain-degradation factors (value -> active count).
  std::unordered_map<double, int> active_drain_factors_;
  double current_drain_factor_ = 1.0;
  /// Number of currently active burst-buffer fault windows.
  int active_bb_faults_ = 0;
  /// Active outage count per midplane (overlapping outages must not
  /// double-repair).
  std::unordered_map<int, int> active_outages_;
  std::unordered_map<workload::JobId, PendingKill> pending_kills_;
  /// Pending MTBF failures (one per running attempt while the MTBF process
  /// is enabled; the event may outlive the attempt's expected runtime and
  /// is cancelled by OnJobStop).
  std::unordered_map<workload::JobId, PendingKill> pending_failures_;
  /// Not-yet-fired plan edges: canonical edge index -> scheduled event id.
  /// Ordered so checkpoint bytes are deterministic.
  std::map<std::size_t, sim::EventId> pending_edges_;
  sim::SimTime last_factor_change_ = 0.0;
  bool armed_ = false;
};

}  // namespace iosched::faults
