#include "faults/fault_injector.h"

#include <algorithm>
#include <stdexcept>

namespace iosched::faults {

FaultInjector::FaultInjector(sim::Simulator& simulator, FaultPlan plan,
                             FaultHooks hooks, metrics::FaultStats* stats)
    : simulator_(simulator),
      plan_(std::move(plan)),
      hooks_(std::move(hooks)),
      stats_(stats),
      kill_rng_(plan_.kill_seed, /*stream=*/23) {
  std::string err = plan_.Validate();
  if (!err.empty()) throw std::invalid_argument("FaultInjector: " + err);
  if (!plan_.degradations.empty() && !hooks_.set_bandwidth_factor) {
    throw std::invalid_argument(
        "FaultInjector: plan degrades storage but no bandwidth hook");
  }
  if (!plan_.outages.empty() && !hooks_.set_midplane_faulted) {
    throw std::invalid_argument(
        "FaultInjector: plan has outages but no midplane hook");
  }
  if ((plan_.job_kill_probability > 0 || !plan_.outages.empty()) &&
      !hooks_.kill_job) {
    throw std::invalid_argument(
        "FaultInjector: plan kills jobs but no kill hook");
  }
}

void FaultInjector::Arm() {
  if (armed_) throw std::logic_error("FaultInjector: already armed");
  armed_ = true;
  for (const StorageDegradation& d : plan_.degradations) {
    simulator_.ScheduleAt(d.start, [this, f = d.bandwidth_factor] {
      OnDegradationEdge(f, /*begin=*/true);
    });
    simulator_.ScheduleAt(d.end, [this, f = d.bandwidth_factor] {
      OnDegradationEdge(f, /*begin=*/false);
    });
  }
  for (const MidplaneOutage& o : plan_.outages) {
    simulator_.ScheduleAt(o.start, [this, m = o.midplane] {
      OnOutageEdge(m, /*begin=*/true);
    });
    simulator_.ScheduleAt(o.end, [this, m = o.midplane] {
      OnOutageEdge(m, /*begin=*/false);
    });
  }
}

void FaultInjector::OnDegradationEdge(double factor, bool begin) {
  int& count = active_factors_[factor];
  count += begin ? 1 : -1;
  if (count <= 0) active_factors_.erase(factor);
  ApplyFactor();
}

void FaultInjector::ApplyFactor() {
  double factor = 1.0;
  for (const auto& [f, count] : active_factors_) {
    factor = std::min(factor, f);
  }
  if (factor == current_factor_) return;
  sim::SimTime now = simulator_.Now();
  AccrueDegradedTime(now);
  bool degrading = factor < current_factor_;
  current_factor_ = factor;
  if (stats_ != nullptr) {
    stats_->Add(now,
                degrading ? metrics::FaultEventKind::kStorageDegrade
                          : metrics::FaultEventKind::kStorageRestore,
                0, factor);
    stats_->min_bandwidth_factor =
        std::min(stats_->min_bandwidth_factor, factor);
  }
  hooks_.set_bandwidth_factor(factor, now);
}

void FaultInjector::AccrueDegradedTime(sim::SimTime now) {
  if (stats_ != nullptr && current_factor_ < 1.0) {
    stats_->degraded_seconds += now - last_factor_change_;
  }
  last_factor_change_ = now;
}

void FaultInjector::OnOutageEdge(int midplane, bool begin) {
  int& count = active_outages_[midplane];
  sim::SimTime now = simulator_.Now();
  if (begin) {
    ++count;
    if (count == 1) {
      if (stats_ != nullptr) {
        stats_->Add(now, metrics::FaultEventKind::kMidplaneFault, 0,
                    static_cast<double>(midplane));
      }
      hooks_.set_midplane_faulted(midplane, /*faulted=*/true, now);
    }
  } else {
    --count;
    if (count <= 0) {
      active_outages_.erase(midplane);
      if (stats_ != nullptr) {
        stats_->Add(now, metrics::FaultEventKind::kMidplaneRepair, 0,
                    static_cast<double>(midplane));
      }
      hooks_.set_midplane_faulted(midplane, /*faulted=*/false, now);
    }
  }
}

void FaultInjector::OnJobStart(workload::JobId id, sim::SimTime now,
                               double expected_runtime) {
  if (plan_.job_kill_probability <= 0) return;
  // One Bernoulli per attempt keeps the draw sequence aligned with the
  // deterministic job-start order, so replays are bit-identical.
  if (!kill_rng_.Bernoulli(plan_.job_kill_probability)) return;
  double at = std::max(0.0, expected_runtime) *
              kill_rng_.Uniform(0.05, 0.95);
  sim::EventId event = simulator_.ScheduleAfter(at, [this, id] {
    pending_kills_.erase(id);
    if (hooks_.kill_job(id, simulator_.Now()) && stats_ != nullptr) {
      stats_->Add(simulator_.Now(), metrics::FaultEventKind::kJobKill, id);
    }
  });
  // A retry attempt replaces any stale entry (the old event already fired —
  // that is what caused the retry).
  pending_kills_[id] = event;
}

void FaultInjector::OnJobStop(workload::JobId id) {
  auto it = pending_kills_.find(id);
  if (it == pending_kills_.end()) return;
  simulator_.Cancel(it->second);
  pending_kills_.erase(it);
}

void FaultInjector::FinalizeStats(sim::SimTime end) {
  AccrueDegradedTime(std::max(end, last_factor_change_));
}

}  // namespace iosched::faults
