#include "faults/fault_injector.h"

#include <algorithm>
#include <numeric>
#include <stdexcept>
#include <utility>
#include <vector>

namespace iosched::faults {

FaultInjector::FaultInjector(sim::Simulator& simulator, FaultPlan plan,
                             FaultHooks hooks, metrics::FaultStats* stats)
    : simulator_(simulator),
      plan_(std::move(plan)),
      hooks_(std::move(hooks)),
      stats_(stats),
      kill_rng_(plan_.kill_seed, /*stream=*/23),
      straggler_rng_(plan_.straggler_seed, /*stream=*/29),
      mtbf_rng_(plan_.mtbf_seed, /*stream=*/43) {
  std::string err = plan_.Validate();
  if (!err.empty()) throw std::invalid_argument("FaultInjector: " + err);
  if (!plan_.degradations.empty() && !hooks_.set_bandwidth_factor) {
    throw std::invalid_argument(
        "FaultInjector: plan degrades storage but no bandwidth hook");
  }
  if (!plan_.outages.empty() && !hooks_.set_midplane_faulted) {
    throw std::invalid_argument(
        "FaultInjector: plan has outages but no midplane hook");
  }
  if ((plan_.job_kill_probability > 0 || !plan_.outages.empty() ||
       plan_.job_mtbf_seconds > 0) &&
      !hooks_.kill_job) {
    throw std::invalid_argument(
        "FaultInjector: plan kills jobs but no kill hook");
  }
  if (!plan_.bb_faults.empty() && !hooks_.set_bb_faulted) {
    throw std::invalid_argument(
        "FaultInjector: plan faults the burst buffer but no BB hook");
  }
  if (!plan_.drain_degradations.empty() && !hooks_.set_drain_factor) {
    throw std::invalid_argument(
        "FaultInjector: plan degrades the drain but no drain hook");
  }
}

std::size_t FaultInjector::EdgeCount() const {
  return 2 * (plan_.degradations.size() + plan_.outages.size() +
              plan_.bb_faults.size() + plan_.drain_degradations.size());
}

sim::SimTime FaultInjector::EdgeTime(std::size_t edge) const {
  std::size_t degradation_edges = 2 * plan_.degradations.size();
  if (edge < degradation_edges) {
    const StorageDegradation& d = plan_.degradations[edge / 2];
    return (edge % 2 == 0) ? d.start : d.end;
  }
  std::size_t k = edge - degradation_edges;
  std::size_t outage_edges = 2 * plan_.outages.size();
  if (k < outage_edges) {
    const MidplaneOutage& o = plan_.outages[k / 2];
    return (k % 2 == 0) ? o.start : o.end;
  }
  k -= outage_edges;
  std::size_t bb_edges = 2 * plan_.bb_faults.size();
  if (k < bb_edges) {
    const BurstBufferFault& f = plan_.bb_faults[k / 2];
    return (k % 2 == 0) ? f.start : f.end;
  }
  k -= bb_edges;
  const DrainDegradation& d = plan_.drain_degradations[k / 2];
  return (k % 2 == 0) ? d.start : d.end;
}

std::function<void()> FaultInjector::EdgeAction(std::size_t edge) {
  // The closure erases its own pending entry first, so the checkpoint's
  // pending set is exactly the not-yet-fired edges.
  std::size_t degradation_edges = 2 * plan_.degradations.size();
  if (edge < degradation_edges) {
    double factor = plan_.degradations[edge / 2].bandwidth_factor;
    bool begin = edge % 2 == 0;
    return [this, edge, factor, begin] {
      pending_edges_.erase(edge);
      OnDegradationEdge(factor, begin);
    };
  }
  std::size_t k = edge - degradation_edges;
  std::size_t outage_edges = 2 * plan_.outages.size();
  if (k < outage_edges) {
    int midplane = plan_.outages[k / 2].midplane;
    bool begin = k % 2 == 0;
    return [this, edge, midplane, begin] {
      pending_edges_.erase(edge);
      OnOutageEdge(midplane, begin);
    };
  }
  k -= outage_edges;
  std::size_t bb_edges = 2 * plan_.bb_faults.size();
  if (k < bb_edges) {
    bool lose_data = plan_.bb_faults[k / 2].lose_data;
    bool begin = k % 2 == 0;
    return [this, edge, lose_data, begin] {
      pending_edges_.erase(edge);
      OnBbFaultEdge(lose_data, begin);
    };
  }
  k -= bb_edges;
  double factor = plan_.drain_degradations[k / 2].drain_factor;
  bool begin = k % 2 == 0;
  return [this, edge, factor, begin] {
    pending_edges_.erase(edge);
    OnDrainEdge(factor, begin);
  };
}

void FaultInjector::Arm() {
  if (armed_) throw std::logic_error("FaultInjector: already armed");
  armed_ = true;
  // Same-timestamp events pop in scheduling order, so arm start edges
  // before end edges at a shared timestamp. Two windows meeting at a
  // boundary (adjacent degraded tiles, back-to-back outages of one
  // midplane) must hand over without a pulse: firing the end edge first
  // would transiently lift the fault — restore full bandwidth, repair the
  // midplane — and the scheduler would re-plan against state that never
  // really existed. Every edge-kind block has even size, so global parity
  // identifies start edges.
  std::vector<std::size_t> order(EdgeCount());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [this](std::size_t a, std::size_t b) {
    double ta = EdgeTime(a);
    double tb = EdgeTime(b);
    if (ta != tb) return ta < tb;
    bool a_start = a % 2 == 0;
    bool b_start = b % 2 == 0;
    if (a_start != b_start) return a_start;
    return a < b;
  });
  for (std::size_t edge : order) {
    pending_edges_[edge] =
        simulator_.ScheduleAt(EdgeTime(edge), EdgeAction(edge));
  }
}

void FaultInjector::OnDegradationEdge(double factor, bool begin) {
  int& count = active_factors_[factor];
  count += begin ? 1 : -1;
  if (count <= 0) active_factors_.erase(factor);
  ApplyFactor();
}

void FaultInjector::ApplyFactor() {
  double factor = 1.0;
  for (const auto& [f, count] : active_factors_) {
    factor = std::min(factor, f);
  }
  if (factor == current_factor_) return;
  sim::SimTime now = simulator_.Now();
  AccrueDegradedTime(now);
  bool degrading = factor < current_factor_;
  current_factor_ = factor;
  if (stats_ != nullptr) {
    stats_->Add(now,
                degrading ? metrics::FaultEventKind::kStorageDegrade
                          : metrics::FaultEventKind::kStorageRestore,
                0, factor);
    stats_->min_bandwidth_factor =
        std::min(stats_->min_bandwidth_factor, factor);
  }
  hooks_.set_bandwidth_factor(factor, now);
}

void FaultInjector::AccrueDegradedTime(sim::SimTime now) {
  if (stats_ != nullptr && current_factor_ < 1.0) {
    stats_->degraded_seconds += now - last_factor_change_;
  }
  last_factor_change_ = now;
}

void FaultInjector::OnBbFaultEdge(bool lose_data, bool begin) {
  sim::SimTime now = simulator_.Now();
  if (begin) {
    ++active_bb_faults_;
    if (active_bb_faults_ == 1) {
      if (stats_ != nullptr) {
        stats_->Add(now, metrics::FaultEventKind::kBbFault, 0,
                    lose_data ? 1.0 : 0.0);
      }
      hooks_.set_bb_faulted(/*faulted=*/true, lose_data, now);
    } else if (lose_data) {
      // An overlapping lossy window still drops whatever drained in.
      hooks_.set_bb_faulted(/*faulted=*/true, lose_data, now);
    }
  } else {
    --active_bb_faults_;
    if (active_bb_faults_ <= 0) {
      active_bb_faults_ = 0;
      if (stats_ != nullptr) {
        stats_->Add(now, metrics::FaultEventKind::kBbRepair);
      }
      hooks_.set_bb_faulted(/*faulted=*/false, /*lose_data=*/false, now);
    }
  }
}

void FaultInjector::OnDrainEdge(double factor, bool begin) {
  int& count = active_drain_factors_[factor];
  count += begin ? 1 : -1;
  if (count <= 0) active_drain_factors_.erase(factor);
  ApplyDrainFactor();
}

void FaultInjector::ApplyDrainFactor() {
  double factor = 1.0;
  for (const auto& [f, count] : active_drain_factors_) {
    factor = std::min(factor, f);
  }
  if (factor == current_drain_factor_) return;
  sim::SimTime now = simulator_.Now();
  bool degrading = factor < current_drain_factor_;
  current_drain_factor_ = factor;
  if (stats_ != nullptr) {
    stats_->Add(now,
                degrading ? metrics::FaultEventKind::kDrainDegrade
                          : metrics::FaultEventKind::kDrainRestore,
                0, factor);
    stats_->min_drain_factor = std::min(stats_->min_drain_factor, factor);
  }
  hooks_.set_drain_factor(factor, now);
}

double FaultInjector::DrawStragglerFactor() {
  if (plan_.straggler_probability <= 0) return 1.0;
  return straggler_rng_.Bernoulli(plan_.straggler_probability)
             ? plan_.straggler_factor
             : 1.0;
}

void FaultInjector::OnOutageEdge(int midplane, bool begin) {
  int& count = active_outages_[midplane];
  sim::SimTime now = simulator_.Now();
  if (begin) {
    ++count;
    if (count == 1) {
      if (stats_ != nullptr) {
        stats_->Add(now, metrics::FaultEventKind::kMidplaneFault, 0,
                    static_cast<double>(midplane));
      }
      hooks_.set_midplane_faulted(midplane, /*faulted=*/true, now);
    }
  } else {
    --count;
    if (count <= 0) {
      active_outages_.erase(midplane);
      if (stats_ != nullptr) {
        stats_->Add(now, metrics::FaultEventKind::kMidplaneRepair, 0,
                    static_cast<double>(midplane));
      }
      hooks_.set_midplane_faulted(midplane, /*faulted=*/false, now);
    }
  }
}

std::function<void()> FaultInjector::KillAction(workload::JobId id) {
  return [this, id] {
    pending_kills_.erase(id);
    if (hooks_.kill_job(id, simulator_.Now()) && stats_ != nullptr) {
      stats_->Add(simulator_.Now(), metrics::FaultEventKind::kJobKill, id);
    }
  };
}

std::function<void()> FaultInjector::FailureAction(workload::JobId id) {
  return [this, id] {
    pending_failures_.erase(id);
    sim::SimTime now = simulator_.Now();
    if (hooks_.kill_job(id, now) && stats_ != nullptr) {
      stats_->Add(now, metrics::FaultEventKind::kMtbfFailure, id);
      stats_->Add(now, metrics::FaultEventKind::kJobKill, id);
    }
  };
}

void FaultInjector::OnJobStart(workload::JobId id, sim::SimTime now,
                               double expected_runtime) {
  if (plan_.job_mtbf_seconds > 0) {
    // Memoryless per-attempt failure process: exponential time-to-failure
    // with mean MTBF, drawn once per attempt in deterministic job-start
    // order. The event is armed unconditionally — a congested attempt can
    // run far past its uncongested expected runtime and must still be
    // exposed to late failures; OnJobStop cancels the event if the attempt
    // finishes first.
    double ttf = mtbf_rng_.Exponential(1.0 / plan_.job_mtbf_seconds);
    sim::EventId event = simulator_.ScheduleAfter(ttf, FailureAction(id));
    pending_failures_[id] = PendingKill{event, now + ttf};
  }
  if (plan_.job_kill_probability <= 0) return;
  // One Bernoulli per attempt keeps the draw sequence aligned with the
  // deterministic job-start order, so replays are bit-identical.
  if (!kill_rng_.Bernoulli(plan_.job_kill_probability)) return;
  double at = std::max(0.0, expected_runtime) *
              kill_rng_.Uniform(0.05, 0.95);
  sim::EventId event = simulator_.ScheduleAfter(at, KillAction(id));
  // A retry attempt replaces any stale entry (the old event already fired —
  // that is what caused the retry).
  pending_kills_[id] = PendingKill{event, now + at};
}

void FaultInjector::OnJobStop(workload::JobId id) {
  auto failure = pending_failures_.find(id);
  if (failure != pending_failures_.end()) {
    simulator_.Cancel(failure->second.event);
    pending_failures_.erase(failure);
  }
  auto it = pending_kills_.find(id);
  if (it == pending_kills_.end()) return;
  simulator_.Cancel(it->second.event);
  pending_kills_.erase(it);
}

void FaultInjector::FinalizeStats(sim::SimTime end) {
  AccrueDegradedTime(std::max(end, last_factor_change_));
}

void FaultInjector::SaveState(ckpt::Writer& w) const {
  w.Bool(armed_);
  util::Rng::State rng = kill_rng_.SaveState();
  w.U64(rng.engine.state);
  w.U64(rng.engine.inc);
  w.Bool(rng.has_spare);
  w.F64(rng.spare);
  w.F64(current_factor_);
  w.F64(last_factor_change_);
  // Maps are serialized sorted so checkpoint bytes are deterministic.
  std::vector<std::pair<double, int>> factors(active_factors_.begin(),
                                              active_factors_.end());
  std::sort(factors.begin(), factors.end());
  w.U32(static_cast<std::uint32_t>(factors.size()));
  for (const auto& [factor, count] : factors) {
    w.F64(factor);
    w.I64(count);
  }
  std::vector<std::pair<int, int>> outages(active_outages_.begin(),
                                           active_outages_.end());
  std::sort(outages.begin(), outages.end());
  w.U32(static_cast<std::uint32_t>(outages.size()));
  for (const auto& [midplane, count] : outages) {
    w.I64(midplane);
    w.I64(count);
  }
  w.U32(static_cast<std::uint32_t>(pending_edges_.size()));
  for (const auto& [edge, event] : pending_edges_) {
    w.U64(edge);
    w.U64(event);
  }
  std::vector<std::pair<workload::JobId, PendingKill>> kills(
      pending_kills_.begin(), pending_kills_.end());
  std::sort(kills.begin(), kills.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  w.U32(static_cast<std::uint32_t>(kills.size()));
  for (const auto& [id, kill] : kills) {
    w.I64(id);
    w.U64(kill.event);
    w.F64(kill.fire_time);
  }
  // Storage-tier fault state (appended so the layout above is unchanged).
  util::Rng::State straggler = straggler_rng_.SaveState();
  w.U64(straggler.engine.state);
  w.U64(straggler.engine.inc);
  w.Bool(straggler.has_spare);
  w.F64(straggler.spare);
  w.F64(current_drain_factor_);
  std::vector<std::pair<double, int>> drains(active_drain_factors_.begin(),
                                             active_drain_factors_.end());
  std::sort(drains.begin(), drains.end());
  w.U32(static_cast<std::uint32_t>(drains.size()));
  for (const auto& [factor, count] : drains) {
    w.F64(factor);
    w.I64(count);
  }
  w.I64(active_bb_faults_);
  // MTBF failure-process state (appended; gated on the plan so runs without
  // the process keep the exact section layout they had before it existed).
  if (plan_.job_mtbf_seconds > 0) {
    util::Rng::State mtbf = mtbf_rng_.SaveState();
    w.U64(mtbf.engine.state);
    w.U64(mtbf.engine.inc);
    w.Bool(mtbf.has_spare);
    w.F64(mtbf.spare);
    std::vector<std::pair<workload::JobId, PendingKill>> failures(
        pending_failures_.begin(), pending_failures_.end());
    std::sort(failures.begin(), failures.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    w.U32(static_cast<std::uint32_t>(failures.size()));
    for (const auto& [id, failure] : failures) {
      w.I64(id);
      w.U64(failure.event);
      w.F64(failure.fire_time);
    }
  }
}

void FaultInjector::RestoreState(ckpt::Reader& r) {
  if (armed_) {
    throw std::logic_error("FaultInjector::RestoreState after Arm()");
  }
  armed_ = r.Bool();
  util::Rng::State rng;
  rng.engine.state = r.U64();
  rng.engine.inc = r.U64();
  rng.has_spare = r.Bool();
  rng.spare = r.F64();
  kill_rng_.RestoreState(rng);
  current_factor_ = r.F64();
  last_factor_change_ = r.F64();
  std::uint32_t factors = r.U32();
  for (std::uint32_t i = 0; i < factors; ++i) {
    double factor = r.F64();
    active_factors_[factor] = static_cast<int>(r.I64());
  }
  std::uint32_t outages = r.U32();
  for (std::uint32_t i = 0; i < outages; ++i) {
    int midplane = static_cast<int>(r.I64());
    active_outages_[midplane] = static_cast<int>(r.I64());
  }
  std::uint32_t edges = r.U32();
  for (std::uint32_t i = 0; i < edges; ++i) {
    std::size_t edge = static_cast<std::size_t>(r.U64());
    sim::EventId event = r.U64();
    if (edge >= EdgeCount()) {
      throw std::runtime_error(
          "FaultInjector::RestoreState: plan edge index out of range "
          "(checkpoint does not match this fault plan)");
    }
    pending_edges_[edge] = event;
    simulator_.RestoreEvent(EdgeTime(edge), event, EdgeAction(edge));
  }
  std::uint32_t kills = r.U32();
  for (std::uint32_t i = 0; i < kills; ++i) {
    workload::JobId id = r.I64();
    PendingKill kill;
    kill.event = r.U64();
    kill.fire_time = r.F64();
    pending_kills_[id] = kill;
    simulator_.RestoreEvent(kill.fire_time, kill.event, KillAction(id));
  }
  util::Rng::State straggler;
  straggler.engine.state = r.U64();
  straggler.engine.inc = r.U64();
  straggler.has_spare = r.Bool();
  straggler.spare = r.F64();
  straggler_rng_.RestoreState(straggler);
  current_drain_factor_ = r.F64();
  std::uint32_t drains = r.U32();
  for (std::uint32_t i = 0; i < drains; ++i) {
    double factor = r.F64();
    active_drain_factors_[factor] = static_cast<int>(r.I64());
  }
  active_bb_faults_ = static_cast<int>(r.I64());
  if (plan_.job_mtbf_seconds > 0) {
    util::Rng::State mtbf;
    mtbf.engine.state = r.U64();
    mtbf.engine.inc = r.U64();
    mtbf.has_spare = r.Bool();
    mtbf.spare = r.F64();
    mtbf_rng_.RestoreState(mtbf);
    std::uint32_t failures = r.U32();
    for (std::uint32_t i = 0; i < failures; ++i) {
      workload::JobId id = r.I64();
      PendingKill failure;
      failure.event = r.U64();
      failure.fire_time = r.F64();
      pending_failures_[id] = failure;
      simulator_.RestoreEvent(failure.fire_time, failure.event,
                              FailureAction(id));
    }
  }
}

}  // namespace iosched::faults
