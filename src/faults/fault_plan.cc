#include "faults/fault_plan.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "util/rng.h"
#include "util/strings.h"

namespace iosched::faults {

std::string FaultPlan::Validate() const {
  for (const StorageDegradation& d : degradations) {
    if (d.start < 0 || d.end <= d.start) {
      return "degradation window must have 0 <= start < end";
    }
    if (d.bandwidth_factor <= 0 || d.bandwidth_factor > 1.0) {
      return "degradation bandwidth_factor must be in (0, 1]";
    }
  }
  for (const MidplaneOutage& o : outages) {
    if (o.start < 0 || o.end <= o.start) {
      return "outage window must have 0 <= start < end";
    }
    if (o.midplane < 0) return "outage midplane must be non-negative";
  }
  for (const BurstBufferFault& f : bb_faults) {
    if (f.start < 0 || f.end <= f.start) {
      return "bb fault window must have 0 <= start < end";
    }
  }
  for (const DrainDegradation& d : drain_degradations) {
    if (d.start < 0 || d.end <= d.start) {
      return "drain degradation window must have 0 <= start < end";
    }
    if (d.drain_factor <= 0 || d.drain_factor > 1.0) {
      return "drain_factor must be in (0, 1]";
    }
  }
  if (job_kill_probability < 0 || job_kill_probability > 1.0) {
    return "job_kill_probability must be in [0, 1]";
  }
  if (straggler_probability < 0 || straggler_probability > 1.0) {
    return "straggler_probability must be in [0, 1]";
  }
  if (straggler_probability > 0 &&
      (straggler_factor <= 0 || straggler_factor >= 1.0)) {
    return "straggler_factor must be in (0, 1)";
  }
  if (job_mtbf_seconds < 0) return "job_mtbf_seconds must be >= 0";
  return "";
}

std::string FaultPlanConfig::Validate() const {
  if (degraded_fraction < 0 || degraded_fraction >= 1.0) {
    return "degraded_fraction must be in [0, 1)";
  }
  if (degradation_factor <= 0 || degradation_factor > 1.0) {
    return "degradation_factor must be in (0, 1]";
  }
  if (degraded_window_seconds <= 0) {
    return "degraded_window_seconds must be positive";
  }
  if (midplane_outages < 0) return "midplane_outages must be non-negative";
  if (midplane_outage_seconds <= 0) {
    return "midplane_outage_seconds must be positive";
  }
  if (job_kill_probability < 0 || job_kill_probability > 1.0) {
    return "job_kill_probability must be in [0, 1]";
  }
  if (bb_faults < 0) return "bb_faults must be non-negative";
  if (bb_fault_seconds <= 0) return "bb_fault_seconds must be positive";
  if (drain_degraded_fraction < 0 || drain_degraded_fraction >= 1.0) {
    return "drain_degraded_fraction must be in [0, 1)";
  }
  if (drain_degradation_factor <= 0 || drain_degradation_factor > 1.0) {
    return "drain_degradation_factor must be in (0, 1]";
  }
  if (drain_window_seconds <= 0) {
    return "drain_window_seconds must be positive";
  }
  if (straggler_probability < 0 || straggler_probability > 1.0) {
    return "straggler_probability must be in [0, 1]";
  }
  if (straggler_probability > 0 &&
      (straggler_factor <= 0 || straggler_factor >= 1.0)) {
    return "straggler_factor must be in (0, 1)";
  }
  if (job_mtbf_seconds < 0) return "job_mtbf_seconds must be >= 0";
  return "";
}

FaultPlan BuildFaultPlan(const FaultPlanConfig& config, double horizon_seconds,
                         int total_midplanes) {
  std::string err = config.Validate();
  if (!err.empty()) throw std::invalid_argument("BuildFaultPlan: " + err);
  if (horizon_seconds <= 0) {
    throw std::invalid_argument("BuildFaultPlan: non-positive horizon");
  }
  if (total_midplanes <= 0 && config.midplane_outages > 0) {
    throw std::invalid_argument("BuildFaultPlan: outages need midplanes");
  }

  FaultPlan plan;
  plan.job_kill_probability = config.job_kill_probability;
  plan.kill_seed = config.seed;
  util::Rng rng(config.seed, /*stream=*/17);

  if (config.degraded_fraction > 0) {
    // Tile the horizon and degrade a seeded-shuffled prefix of the tiles so
    // the degraded time hits the target as exactly as the tiling allows.
    auto tiles = static_cast<std::size_t>(
        std::ceil(horizon_seconds / config.degraded_window_seconds));
    auto degraded = static_cast<std::size_t>(std::llround(
        config.degraded_fraction * static_cast<double>(tiles)));
    degraded = std::min(degraded, tiles);
    if (degraded == 0 && config.degraded_fraction > 0) degraded = 1;
    std::vector<std::size_t> order(tiles);
    std::iota(order.begin(), order.end(), std::size_t{0});
    util::Shuffle(order, rng.engine());
    order.resize(degraded);
    std::sort(order.begin(), order.end());
    for (std::size_t tile : order) {
      StorageDegradation d;
      d.start = static_cast<double>(tile) * config.degraded_window_seconds;
      d.end = std::min(horizon_seconds,
                       d.start + config.degraded_window_seconds);
      d.bandwidth_factor = config.degradation_factor;
      if (d.end > d.start) plan.degradations.push_back(d);
    }
  }

  for (int i = 0; i < config.midplane_outages; ++i) {
    MidplaneOutage o;
    o.midplane = static_cast<int>(
        rng.UniformInt(0, total_midplanes - 1));
    o.start = rng.Uniform(0.0, horizon_seconds);
    o.end = o.start + config.midplane_outage_seconds;
    plan.outages.push_back(o);
  }
  std::sort(plan.outages.begin(), plan.outages.end(),
            [](const MidplaneOutage& a, const MidplaneOutage& b) {
              if (a.start != b.start) return a.start < b.start;
              return a.midplane < b.midplane;
            });

  // Storage-tier fault kinds are drawn strictly after the original kinds so
  // enabling them never perturbs the degradation/outage schedule a seed
  // produced before they existed.
  for (int i = 0; i < config.bb_faults; ++i) {
    BurstBufferFault f;
    f.start = rng.Uniform(0.0, horizon_seconds);
    f.end = f.start + config.bb_fault_seconds;
    f.lose_data = config.bb_fault_lose_data;
    plan.bb_faults.push_back(f);
  }
  std::sort(plan.bb_faults.begin(), plan.bb_faults.end(),
            [](const BurstBufferFault& a, const BurstBufferFault& b) {
              return a.start < b.start;
            });

  if (config.drain_degraded_fraction > 0) {
    auto tiles = static_cast<std::size_t>(
        std::ceil(horizon_seconds / config.drain_window_seconds));
    auto degraded = static_cast<std::size_t>(std::llround(
        config.drain_degraded_fraction * static_cast<double>(tiles)));
    degraded = std::min(degraded, tiles);
    if (degraded == 0) degraded = 1;
    std::vector<std::size_t> order(tiles);
    std::iota(order.begin(), order.end(), std::size_t{0});
    util::Shuffle(order, rng.engine());
    order.resize(degraded);
    std::sort(order.begin(), order.end());
    for (std::size_t tile : order) {
      DrainDegradation d;
      d.start = static_cast<double>(tile) * config.drain_window_seconds;
      d.end = std::min(horizon_seconds, d.start + config.drain_window_seconds);
      d.drain_factor = config.drain_degradation_factor;
      if (d.end > d.start) plan.drain_degradations.push_back(d);
    }
  }

  plan.straggler_probability = config.straggler_probability;
  plan.straggler_factor = config.straggler_factor;
  plan.straggler_seed = config.seed;
  plan.job_mtbf_seconds = config.job_mtbf_seconds;
  plan.mtbf_seed = config.seed;

  err = plan.Validate();
  if (!err.empty()) throw std::logic_error("BuildFaultPlan: " + err);
  return plan;
}

RestartMode ParseRestartMode(const std::string& name) {
  std::string lower = util::ToLower(name);
  if (lower == "zero" || lower == "restart") {
    return RestartMode::kRestartFromZero;
  }
  if (lower == "resume" || lower == "checkpoint") {
    return RestartMode::kResumeFromLastPhase;
  }
  if (lower == "app_checkpoint" || lower == "app-checkpoint" ||
      lower == "app_ckpt") {
    return RestartMode::kRestartFromAppCheckpoint;
  }
  throw std::invalid_argument("unknown restart mode: " + name);
}

const char* ToString(RestartMode mode) {
  switch (mode) {
    case RestartMode::kRestartFromZero: return "zero";
    case RestartMode::kResumeFromLastPhase: return "resume";
    case RestartMode::kRestartFromAppCheckpoint: return "app_checkpoint";
  }
  return "?";
}

}  // namespace iosched::faults
