// Fault plans: the declarative description of every fault a simulation run
// will experience, fully determined before the run starts (storage-side
// degradation windows and midplane outages) or by a seeded draw during it
// (probabilistic mid-run job kills).
//
// Real petascale systems see exactly these deviations from the paper's
// fault-free model: file servers transiently underperform (RAID rebuilds,
// failover, contention from outside the machine), midplanes are drained for
// service, and jobs die mid-run. A plan is either written explicitly (tests,
// targeted experiments) or generated from a FaultPlanConfig with a seed, so
// the same seed always yields byte-identical fault schedules.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/time.h"

namespace iosched::faults {

/// One storage-degradation window: while active, the usable aggregate file
/// server bandwidth is `bandwidth_factor * BWmax`. Overlapping windows do
/// not stack; the smallest active factor wins.
struct StorageDegradation {
  sim::SimTime start = 0.0;
  sim::SimTime end = 0.0;
  /// Multiplier in (0, 1]; 0.5 halves BWmax for the window.
  double bandwidth_factor = 1.0;
};

/// One midplane outage window: the midplane cannot host new partitions
/// while down, and any job running on it when the outage begins is killed.
struct MidplaneOutage {
  sim::SimTime start = 0.0;
  sim::SimTime end = 0.0;
  int midplane = 0;
};

/// One burst-buffer fault window: while active, the buffer absorbs nothing
/// (every request takes the direct PFS path). With `lose_data` set, any data
/// buffered at the window start is dropped and the affected in-flight
/// absorbed requests must re-flush over the direct path.
struct BurstBufferFault {
  sim::SimTime start = 0.0;
  sim::SimTime end = 0.0;
  bool lose_data = false;
};

/// One drain-rate degradation window: while active, the burst buffer drains
/// at `drain_factor * drain_gbps`. Overlapping windows do not stack; the
/// smallest active factor wins.
struct DrainDegradation {
  sim::SimTime start = 0.0;
  sim::SimTime end = 0.0;
  /// Multiplier in (0, 1]; 0.25 quarters the drain rate for the window.
  double drain_factor = 1.0;
};

/// The full fault schedule for one run.
struct FaultPlan {
  std::vector<StorageDegradation> degradations;
  std::vector<MidplaneOutage> outages;
  std::vector<BurstBufferFault> bb_faults;
  std::vector<DrainDegradation> drain_degradations;
  /// Per-attempt probability that a job is killed mid-run (0 disables).
  double job_kill_probability = 0.0;
  /// Seed for the kill draws (independent of the workload seed).
  std::uint64_t kill_seed = 1;
  /// Per-transfer probability that a direct PFS transfer straggles — its
  /// effective rate collapses to `straggler_factor` of its grant for the
  /// whole attempt (0 disables).
  double straggler_probability = 0.0;
  /// Effective-rate multiplier for straggling transfers, in (0, 1).
  double straggler_factor = 0.25;
  /// Seed for the straggler draws (independent of kill draws).
  std::uint64_t straggler_seed = 1;
  /// MTBF-driven per-job failure process (distinct from the Bernoulli kill
  /// windows above): each attempt draws an exponential time-to-failure with
  /// this mean and is killed if it fires before the attempt finishes. 0
  /// disables. This is the failure process checkpoint traffic defends
  /// against (Young/Daly; see workload/app_checkpoint.h).
  double job_mtbf_seconds = 0.0;
  /// Seed for the MTBF draws (independent of kill and straggler draws).
  std::uint64_t mtbf_seed = 1;

  bool Empty() const {
    return degradations.empty() && outages.empty() && bb_faults.empty() &&
           drain_degradations.empty() && job_kill_probability <= 0.0 &&
           straggler_probability <= 0.0 && job_mtbf_seconds <= 0.0;
  }

  /// Invariant check: windows well-formed (end > start >= 0), factors in
  /// (0, 1], kill probability in [0, 1], midplane indices non-negative.
  /// Returns an error description, or empty when valid.
  std::string Validate() const;
};

/// Parameters for deterministic plan generation.
struct FaultPlanConfig {
  bool enabled = false;
  std::uint64_t seed = 1;
  /// Target fraction of the horizon with degraded storage, in [0, 1).
  double degraded_fraction = 0.0;
  /// BWmax multiplier inside degraded windows, in (0, 1].
  double degradation_factor = 0.5;
  /// Length of each degradation window (seconds).
  double degraded_window_seconds = 3600.0;
  /// Number of midplane outages over the horizon.
  int midplane_outages = 0;
  /// Length of each midplane outage (seconds).
  double midplane_outage_seconds = 4.0 * 3600.0;
  /// Per-attempt mid-run kill probability, in [0, 1].
  double job_kill_probability = 0.0;
  /// Number of burst-buffer fault windows over the horizon.
  int bb_faults = 0;
  /// Length of each burst-buffer fault window (seconds).
  double bb_fault_seconds = 2.0 * 3600.0;
  /// Whether buffered data is dropped when a BB fault window opens.
  bool bb_fault_lose_data = false;
  /// Target fraction of the horizon with a degraded drain rate, in [0, 1).
  double drain_degraded_fraction = 0.0;
  /// Drain-rate multiplier inside degraded windows, in (0, 1].
  double drain_degradation_factor = 0.5;
  /// Length of each drain-degradation window (seconds).
  double drain_window_seconds = 3600.0;
  /// Per-transfer straggler probability, in [0, 1].
  double straggler_probability = 0.0;
  /// Effective-rate multiplier for straggling transfers, in (0, 1).
  double straggler_factor = 0.25;
  /// Mean time between MTBF-driven per-job failures (seconds); 0 disables.
  double job_mtbf_seconds = 0.0;

  std::string Validate() const;
};

/// Generate a plan covering `horizon_seconds` from seeded draws: the horizon
/// is tiled into windows of `degraded_window_seconds` and exactly
/// round(degraded_fraction * tiles) of them are degraded (chosen by a seeded
/// shuffle, so the degraded time matches the target as closely as the tiling
/// allows); outages pick a uniform midplane and start time. Deterministic:
/// the same (config, horizon, total_midplanes) triple always produces the
/// same plan. Throws std::invalid_argument on invalid config.
FaultPlan BuildFaultPlan(const FaultPlanConfig& config,
                         double horizon_seconds, int total_midplanes);

/// What a requeued job re-runs after a mid-run kill.
enum class RestartMode {
  /// Lose all progress: the job restarts at its first phase.
  kRestartFromZero,
  /// Approximate checkpointing: completed phases are not re-run; the
  /// interrupted phase restarts from its beginning.
  kResumeFromLastPhase,
  /// Application checkpointing: the job restarts after its last *durable*
  /// checkpoint flush — one whose data reached the PFS (directly, or fully
  /// drained out of the burst buffer) before the failure. Requires
  /// checkpoint-traffic workloads (workload/app_checkpoint.h); jobs without
  /// flush phases restart from zero under this mode.
  kRestartFromAppCheckpoint,
};

/// Parse "zero" / "resume" / "app_checkpoint" (case-insensitive); throws on
/// unknown names.
RestartMode ParseRestartMode(const std::string& name);
const char* ToString(RestartMode mode);

/// Everything the engine needs to run with faults: either an explicit plan
/// (which wins when non-empty) or generation parameters, plus the restart
/// semantics for requeued jobs.
struct FaultOptions {
  FaultPlanConfig plan_config;
  FaultPlan explicit_plan;
  RestartMode restart_mode = RestartMode::kResumeFromLastPhase;

  bool enabled() const {
    return plan_config.enabled || !explicit_plan.Empty();
  }
};

}  // namespace iosched::faults
