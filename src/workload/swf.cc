#include "workload/swf.h"

#include <fstream>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "util/strings.h"

namespace iosched::workload {

namespace {
double FieldAsDouble(const std::vector<std::string>& f, std::size_t i,
                     std::size_t line_no) {
  auto v = util::ParseDouble(f[i]);
  if (!v) {
    throw std::runtime_error("SWF line " + std::to_string(line_no) +
                             ": bad numeric field " + std::to_string(i + 1));
  }
  return *v;
}

std::int64_t FieldAsInt(const std::vector<std::string>& f, std::size_t i,
                        std::size_t line_no) {
  auto v = util::ParseInt(f[i]);
  if (!v) {
    throw std::runtime_error("SWF line " + std::to_string(line_no) +
                             ": bad integer field " + std::to_string(i + 1));
  }
  return *v;
}
}  // namespace

SwfTrace ParseSwf(const std::string& text) {
  SwfTrace trace;
  std::istringstream in(text);
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    std::string_view trimmed = util::Trim(line);
    if (trimmed.empty()) continue;
    if (trimmed.front() == ';') {
      trace.header_comments.emplace_back(trimmed.substr(1));
      continue;
    }
    auto fields = util::SplitWhitespace(trimmed);
    if (fields.size() != 18) {
      throw std::runtime_error("SWF line " + std::to_string(line_no) +
                               ": expected 18 fields, got " +
                               std::to_string(fields.size()));
    }
    SwfRecord r;
    r.job_number = FieldAsInt(fields, 0, line_no);
    r.submit_time = FieldAsDouble(fields, 1, line_no);
    r.wait_time = FieldAsDouble(fields, 2, line_no);
    r.run_time = FieldAsDouble(fields, 3, line_no);
    r.allocated_procs = FieldAsInt(fields, 4, line_no);
    r.avg_cpu_time = FieldAsDouble(fields, 5, line_no);
    r.used_memory = FieldAsDouble(fields, 6, line_no);
    r.requested_procs = FieldAsInt(fields, 7, line_no);
    r.requested_time = FieldAsDouble(fields, 8, line_no);
    r.requested_memory = FieldAsDouble(fields, 9, line_no);
    r.status = FieldAsInt(fields, 10, line_no);
    r.user_id = FieldAsInt(fields, 11, line_no);
    r.group_id = FieldAsInt(fields, 12, line_no);
    r.executable = FieldAsInt(fields, 13, line_no);
    r.queue = FieldAsInt(fields, 14, line_no);
    r.partition = FieldAsInt(fields, 15, line_no);
    r.preceding_job = FieldAsInt(fields, 16, line_no);
    r.think_time = FieldAsDouble(fields, 17, line_no);
    trace.records.push_back(r);
  }
  return trace;
}

SwfTrace ReadSwfFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("SWF: cannot open " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return ParseSwf(buf.str());
}

void WriteSwf(std::ostream& out, const SwfTrace& trace) {
  for (const std::string& c : trace.header_comments) {
    out << ';' << c << '\n';
  }
  for (const SwfRecord& r : trace.records) {
    out << r.job_number << ' ' << r.submit_time << ' ' << r.wait_time << ' '
        << r.run_time << ' ' << r.allocated_procs << ' ' << r.avg_cpu_time
        << ' ' << r.used_memory << ' ' << r.requested_procs << ' '
        << r.requested_time << ' ' << r.requested_memory << ' ' << r.status
        << ' ' << r.user_id << ' ' << r.group_id << ' ' << r.executable << ' '
        << r.queue << ' ' << r.partition << ' ' << r.preceding_job << ' '
        << r.think_time << '\n';
  }
}

void WriteSwfFile(const std::string& path, const SwfTrace& trace) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("SWF: cannot open for write " + path);
  WriteSwf(out, trace);
  if (!out) throw std::runtime_error("SWF: write failed for " + path);
}

}  // namespace iosched::workload
