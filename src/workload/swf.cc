#include "workload/swf.h"

#include <cerrno>
#include <cstring>
#include <fstream>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "util/atomic_file.h"
#include "util/strings.h"

namespace iosched::workload {

namespace {
/// Parse one 18-field record; on failure returns a description and leaves
/// `out` unspecified.
std::string ParseSwfFields(const std::vector<std::string>& fields,
                           SwfRecord& out) {
  if (fields.size() != 18) {
    return "expected 18 fields, got " + std::to_string(fields.size());
  }
  auto as_double = [&](std::size_t i, double& dst) {
    auto v = util::ParseDouble(fields[i]);
    if (v) dst = *v;
    return v.has_value();
  };
  auto as_int = [&](std::size_t i, std::int64_t& dst) {
    auto v = util::ParseInt(fields[i]);
    if (v) dst = *v;
    return v.has_value();
  };
  bool ok = as_int(0, out.job_number) && as_double(1, out.submit_time) &&
            as_double(2, out.wait_time) && as_double(3, out.run_time) &&
            as_int(4, out.allocated_procs) && as_double(5, out.avg_cpu_time) &&
            as_double(6, out.used_memory) && as_int(7, out.requested_procs) &&
            as_double(8, out.requested_time) &&
            as_double(9, out.requested_memory) && as_int(10, out.status) &&
            as_int(11, out.user_id) && as_int(12, out.group_id) &&
            as_int(13, out.executable) && as_int(14, out.queue) &&
            as_int(15, out.partition) && as_int(16, out.preceding_job) &&
            as_double(17, out.think_time);
  return ok ? std::string() : std::string("bad numeric field");
}
}  // namespace

SwfTrace ParseSwf(const std::string& text) {
  return ParseSwf(text, ParseMode::kStrict, nullptr);
}

SwfTrace ParseSwf(const std::string& text, ParseMode mode,
                  std::vector<ParseDiagnostic>* diagnostics,
                  const std::string& source) {
  SwfTrace trace;
  std::istringstream in(text);
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    std::string_view trimmed = util::Trim(line);
    if (trimmed.empty()) continue;
    if (trimmed.front() == ';') {
      trace.header_comments.emplace_back(trimmed.substr(1));
      continue;
    }
    auto fields = util::SplitWhitespace(trimmed);
    SwfRecord r;
    std::string err = ParseSwfFields(fields, r);
    if (!err.empty()) {
      if (mode == ParseMode::kStrict) {
        throw std::runtime_error("SWF " + source + " line " +
                                 std::to_string(line_no) + ": " + err);
      }
      if (diagnostics != nullptr) {
        diagnostics->push_back(ParseDiagnostic{source, line_no, err});
      }
      continue;
    }
    trace.records.push_back(r);
  }
  return trace;
}

namespace {
std::string ReadTextFile(const std::string& kind, const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    int err = errno;
    throw std::runtime_error(kind + ": cannot open " + path + ": " +
                             std::strerror(err));
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  if (in.bad()) {
    int err = errno;
    throw std::runtime_error(kind + ": read failed for " + path + ": " +
                             std::strerror(err));
  }
  return buf.str();
}
}  // namespace

SwfTrace ReadSwfFile(const std::string& path) {
  return ReadSwfFile(path, ParseMode::kStrict, nullptr);
}

SwfTrace ReadSwfFile(const std::string& path, ParseMode mode,
                     std::vector<ParseDiagnostic>* diagnostics) {
  return ParseSwf(ReadTextFile("SWF", path), mode, diagnostics, path);
}

void WriteSwf(std::ostream& out, const SwfTrace& trace) {
  for (const std::string& c : trace.header_comments) {
    out << ';' << c << '\n';
  }
  for (const SwfRecord& r : trace.records) {
    out << r.job_number << ' ' << r.submit_time << ' ' << r.wait_time << ' '
        << r.run_time << ' ' << r.allocated_procs << ' ' << r.avg_cpu_time
        << ' ' << r.used_memory << ' ' << r.requested_procs << ' '
        << r.requested_time << ' ' << r.requested_memory << ' ' << r.status
        << ' ' << r.user_id << ' ' << r.group_id << ' ' << r.executable << ' '
        << r.queue << ' ' << r.partition << ' ' << r.preceding_job << ' '
        << r.think_time << '\n';
  }
}

void WriteSwfFile(const std::string& path, const SwfTrace& trace) {
  // Atomic publish: a crash or full disk mid-write must not leave a torn
  // trace behind, and Commit() surfaces the failing path + errno.
  util::AtomicFileWriter out(path);
  WriteSwf(out.stream(), trace);
  out.Commit();
}

}  // namespace iosched::workload
