// "Darshan-lite" I/O summary trace.
//
// Darshan records, per job, a compact statistical summary of its I/O
// footprint (number of I/O calls, bytes moved, time in I/O). This module
// defines the analogous per-job summary we pair with the SWF job trace, and
// a CSV on-disk format:
//
//   # iosched-darshan-lite v2
//   job_id,io_phases,total_io_gb,agg_rate_gbps,read_fraction
//
// `io_phases`, `total_io_gb` and `agg_rate_gbps` (the application's
// effective aggregate transfer rate, which Darshan derives from bytes moved
// and time in I/O) drive the simulation; `read_fraction` is carried for
// workload characterization.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "workload/job.h"
#include "workload/parse_diag.h"

namespace iosched::workload {

/// Per-job I/O summary (the Darshan-lite record).
struct IoSummary {
  JobId job_id = 0;
  /// Number of I/O requests over the job's lifetime (n_i).
  int io_phases = 0;
  /// Total bytes moved across all phases, in GB.
  double total_io_gb = 0.0;
  /// Effective aggregate transfer rate while in I/O (GB/s); 0 means
  /// unknown, interpreted as the full link rate b*N at pairing time.
  double agg_rate_gbps = 0.0;
  /// Fraction of the volume that is reads, in [0,1].
  double read_fraction = 0.0;
};

using IoTrace = std::vector<IoSummary>;

/// Parse the CSV text form. Lines starting with '#' are comments. Throws
/// std::runtime_error on malformed rows.
IoTrace ParseIoTrace(const std::string& text);

/// Parse with explicit mode. Strict throws on the first malformed row;
/// lenient skips malformed rows, appending a ParseDiagnostic each to
/// `diagnostics` (null discards them). A wrong header is structural and
/// throws in both modes. `source` labels errors — pass the file path when
/// parsing file contents.
IoTrace ParseIoTrace(const std::string& text, ParseMode mode,
                     std::vector<ParseDiagnostic>* diagnostics,
                     const std::string& source = "<memory>");

/// Read from disk; throws on unreadable file with the path and the OS error
/// (strerror).
IoTrace ReadIoTraceFile(const std::string& path);
IoTrace ReadIoTraceFile(const std::string& path, ParseMode mode,
                        std::vector<ParseDiagnostic>* diagnostics);

/// Serialize with the canonical header comment.
void WriteIoTrace(std::ostream& out, const IoTrace& trace);

/// Write to disk; throws on failure.
void WriteIoTraceFile(const std::string& path, const IoTrace& trace);

}  // namespace iosched::workload
