#include "workload/synthetic.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/units.h"

namespace iosched::workload {

namespace {
constexpr double kTwoPi = 6.28318530717958647692;

/// Arrival-rate envelope at time t (seconds): diurnal sine around 1.0.
double DiurnalFactor(double t, double depth) {
  return 1.0 + depth * std::sin(kTwoPi * t / util::kSecondsPerDay);
}
}  // namespace

Workload GenerateWorkload(const SyntheticConfig& config, std::uint64_t seed) {
  if (config.size_menu.size() != config.size_weights.size() ||
      config.size_menu.empty()) {
    throw std::invalid_argument("GenerateWorkload: bad size menu");
  }
  if (config.io_bands.empty()) {
    throw std::invalid_argument("GenerateWorkload: no I/O bands");
  }
  if (config.duration_days <= 0 || config.jobs_per_day <= 0) {
    throw std::invalid_argument("GenerateWorkload: non-positive duration/rate");
  }
  if (config.diurnal_depth < 0 || config.diurnal_depth >= 1) {
    throw std::invalid_argument("GenerateWorkload: diurnal depth not in [0,1)");
  }
  if (config.io_efficiency_lo <= 0 || config.io_efficiency_hi > 1.0 ||
      config.io_efficiency_lo > config.io_efficiency_hi) {
    throw std::invalid_argument("GenerateWorkload: bad I/O efficiency range");
  }

  util::Rng rng(seed, /*stream=*/7);

  // Assign each synthetic project an I/O-intensity band so that projects have
  // consistent I/O behaviour (this is what makes the paper's future-work
  // predictor learnable from history).
  std::vector<double> band_weights;
  band_weights.reserve(config.io_bands.size());
  for (const IoIntensityBand& band : config.io_bands) {
    if (band.weight < 0 || band.fraction_lo < 0 ||
        band.fraction_hi > 0.98 || band.fraction_lo > band.fraction_hi) {
      throw std::invalid_argument("GenerateWorkload: bad I/O band");
    }
    band_weights.push_back(band.weight);
  }
  std::vector<std::size_t> project_band(
      static_cast<std::size_t>(std::max(1, config.project_count)));
  for (auto& band : project_band) band = rng.WeightedIndex(band_weights);

  // Non-homogeneous Poisson arrivals by thinning against the peak rate.
  double horizon = config.duration_days * util::kSecondsPerDay;
  double base_rate = config.jobs_per_day / util::kSecondsPerDay;  // per sec
  double peak_rate = base_rate * (1.0 + config.diurnal_depth);

  Workload out;
  out.reserve(static_cast<std::size_t>(
      config.jobs_per_day * config.duration_days * 1.1));
  JobId next_id = config.first_job_id;
  double t = 0.0;
  for (;;) {
    // An exponential draw can land exactly on 0 (u = 0 in -log(1-u)/rate),
    // which would emit two jobs at the same instant or, worse, stall the
    // arrival clock. Clamp to a strictly positive gap; real draws at any
    // sane rate are orders of magnitude above the floor, so existing seeds
    // generate identical workloads.
    t += std::max(rng.Exponential(peak_rate), kMinInterArrivalSeconds);
    if (t >= horizon) break;
    double accept = base_rate * DiurnalFactor(t, config.diurnal_depth) /
                    peak_rate;
    if (!rng.Bernoulli(accept)) continue;

    Job job;
    job.id = next_id++;
    job.submit_time = t;
    job.nodes = config.size_menu[rng.WeightedIndex(config.size_weights)];

    double runtime = rng.LogNormal(config.runtime_log_mean,
                                   config.runtime_log_sigma);
    runtime = std::clamp(runtime, config.min_runtime_seconds,
                         config.max_runtime_seconds);
    double walltime = runtime * rng.Uniform(config.walltime_factor_lo,
                                            config.walltime_factor_hi);
    job.requested_walltime =
        std::min(walltime, config.max_runtime_seconds * 1.5);

    int user = static_cast<int>(
        rng.UniformInt(0, std::max(1, config.user_count) - 1));
    int project = static_cast<int>(
        rng.UniformInt(0, std::max(1, config.project_count) - 1));
    job.user = "u" + std::to_string(user);
    job.project = "p" + std::to_string(project);

    const IoIntensityBand& band =
        config.io_bands[project_band[static_cast<std::size_t>(project)]];
    job.io_efficiency =
        rng.Uniform(config.io_efficiency_lo, config.io_efficiency_hi);
    double full_rate = job.FullIoRate(config.node_bandwidth_gbps);

    double io_fraction = rng.Uniform(band.fraction_lo, band.fraction_hi);
    double io_seconds = io_fraction * runtime;
    if (config.max_io_volume_gb > 0) {
      io_seconds = std::min(io_seconds, config.max_io_volume_gb / full_rate);
    }
    double compute_seconds = runtime - io_seconds;

    int phases = 1;
    if (config.checkpoint_period_seconds > 0) {
      phases = static_cast<int>(
          std::lround(compute_seconds / config.checkpoint_period_seconds));
      phases = std::clamp(phases, 1, config.max_io_phases);
    }
    double volume = io_seconds * full_rate;  // GB
    job.phases = MakeUniformPhases(compute_seconds, volume, phases);
    if (config.restart_read_probability > 0 && volume > 0 &&
        rng.Bernoulli(config.restart_read_probability)) {
      // Resume from a predecessor's checkpoint: one checkpoint-sized read
      // before the first compute phase (alternation may start with I/O).
      double chunk = volume / static_cast<double>(phases);
      job.phases.insert(job.phases.begin(), Phase::Io(chunk));
    }
    out.push_back(std::move(job));
  }
  return out;
}

SyntheticConfig EvaluationMonthConfig(int index) {
  SyntheticConfig cfg;
  switch (index) {
    case 1:
      // Month 1: busiest month, I/O-heavy mix -> longest baseline queues.
      // Average storage demand ~50% of BWmax; bursts regularly congest.
      cfg.jobs_per_day = 150.0;
      cfg.checkpoint_period_seconds = 450.0;
      cfg.max_io_phases = 100;
      cfg.max_io_volume_gb = 0.0;  // rely on the efficiency model instead
      cfg.io_efficiency_lo = 0.15;
      cfg.io_efficiency_hi = 0.75;
      cfg.io_bands = {{0.45, 0.03, 0.12},
                      {0.33, 0.12, 0.30},
                      {0.22, 0.30, 0.55}};
      break;
    case 2:
      // Month 2: moderate load, medium-dominated I/O (~37% of BWmax).
      cfg.jobs_per_day = 148.0;
      cfg.checkpoint_period_seconds = 450.0;
      cfg.max_io_phases = 100;
      cfg.max_io_volume_gb = 0.0;  // rely on the efficiency model instead
      cfg.io_efficiency_lo = 0.15;
      cfg.io_efficiency_hi = 0.75;
      cfg.io_bands = {{0.50, 0.02, 0.10},
                      {0.36, 0.10, 0.25},
                      {0.14, 0.25, 0.45}};
      break;
    case 3:
      // Month 3: slightly lighter load, more capability (large) jobs.
      cfg.jobs_per_day = 118.0;
      cfg.size_weights = {0.28, 0.22, 0.16, 0.13, 0.12, 0.06, 0.03};
      cfg.checkpoint_period_seconds = 450.0;
      cfg.max_io_phases = 100;
      cfg.max_io_volume_gb = 0.0;  // rely on the efficiency model instead
      cfg.io_efficiency_lo = 0.15;
      cfg.io_efficiency_hi = 0.75;
      cfg.io_bands = {{0.52, 0.02, 0.09},
                      {0.32, 0.09, 0.22},
                      {0.16, 0.22, 0.42}};
      break;
    default:
      throw std::invalid_argument("EvaluationMonthConfig: index must be 1..3");
  }
  return cfg;
}

}  // namespace iosched::workload
