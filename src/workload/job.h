// Job and phase abstraction (paper Section III-A.1, Figures 2-3).
//
// A job alternates computation/communication phases (fixed duration, because
// the partition's compute and network resources are dedicated) with I/O
// phases (a data volume whose transfer time depends on the bandwidth the
// storage system grants). A run of consecutive I/O calls is modeled as one
// I/O request, as in the paper.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace iosched::workload {

using JobId = std::int64_t;

enum class PhaseKind { kCompute, kIo };

/// One phase of a job's lifecycle.
struct Phase {
  PhaseKind kind = PhaseKind::kCompute;
  /// Duration in seconds (compute phases only).
  double compute_seconds = 0.0;
  /// Data to transfer in GB (I/O phases only).
  double io_volume_gb = 0.0;
  /// True for defensive checkpoint flushes emitted by the checkpoint-traffic
  /// generator (see workload/app_checkpoint.h). Flush phases are I/O phases
  /// the scheduler may defer under congestion and that establish restart
  /// points under RESTART_FROM_APP_CHECKPOINT; plain I/O phases never set
  /// this, so untouched workloads keep their fingerprints.
  bool is_flush = false;

  static Phase Compute(double seconds) {
    return Phase{PhaseKind::kCompute, seconds, 0.0};
  }
  static Phase Io(double volume_gb) {
    return Phase{PhaseKind::kIo, 0.0, volume_gb};
  }
  static Phase Flush(double volume_gb) {
    return Phase{PhaseKind::kIo, 0.0, volume_gb, /*is_flush=*/true};
  }
};

/// A batch job as it appears in the paired (job + I/O) trace.
struct Job {
  JobId id = 0;
  /// Submission time, seconds since the trace epoch.
  double submit_time = 0.0;
  /// Requested compute nodes (N_i).
  int nodes = 0;
  /// User's requested walltime in seconds (scheduling estimate only).
  double requested_walltime = 0.0;
  /// Alternating compute/I/O phases; never empty for a valid job.
  std::vector<Phase> phases;
  /// Application I/O efficiency in (0, 1]: the fraction of the per-node
  /// link bandwidth b the job actually drives when transferring (Darshan
  /// reports effective aggregate rates far below the link bound; few codes
  /// saturate their injection links). The job's full I/O rate is
  /// b * io_efficiency * N_i.
  double io_efficiency = 1.0;
  /// Optional provenance (used by the I/O-behavior predictor extension).
  std::string user;
  std::string project;

  /// Sum of compute-phase durations.
  double TotalComputeSeconds() const;
  /// Sum of I/O-phase volumes (GB).
  double TotalIoVolumeGb() const;
  /// Number of I/O phases (n_i in the paper).
  int IoPhaseCount() const;
  /// I/O time with zero congestion: each phase at full rate b*N_i.
  double UncongestedIoSeconds(double node_bandwidth_gbps) const;
  /// Runtime with zero congestion: compute + uncongested I/O.
  double UncongestedRuntime(double node_bandwidth_gbps) const;
  /// Fraction of the uncongested runtime spent in I/O ([0,1]).
  double IoFraction(double node_bandwidth_gbps) const;
  /// Full I/O rate of this job's partition: b * io_efficiency * N_i (GB/s).
  double FullIoRate(double node_bandwidth_gbps) const {
    return node_bandwidth_gbps * io_efficiency * nodes;
  }
  /// Scale every I/O phase volume by `factor` (sensitivity-study EF knob).
  void ScaleIoVolume(double factor);

  /// Validate invariants (positive size, alternating phases, non-negative
  /// durations/volumes); returns an error description or empty string.
  std::string Validate() const;
};

/// Convenience: build the canonical alternating phase list from totals —
/// `io_phases` equal compute chunks each followed by an equal I/O chunk.
std::vector<Phase> MakeUniformPhases(double total_compute_seconds,
                                     double total_io_volume_gb, int io_phases);

}  // namespace iosched::workload
