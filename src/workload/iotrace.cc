#include "workload/iotrace.h"

#include <cerrno>
#include <cstring>
#include <fstream>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "util/atomic_file.h"
#include "util/csv.h"
#include "util/strings.h"

namespace iosched::workload {

namespace {
/// Parse one data row; on failure returns a description.
std::string ParseIoTraceRow(const std::vector<std::string>& row,
                            IoSummary& out) {
  if (row.size() != 5) {
    return "expected 5 fields, got " + std::to_string(row.size());
  }
  auto id = util::ParseInt(row[0]);
  auto phases = util::ParseInt(row[1]);
  auto gb = util::ParseDouble(row[2]);
  auto rate = util::ParseDouble(row[3]);
  auto rf = util::ParseDouble(row[4]);
  if (!id || !phases || !gb || !rate || !rf) return "bad field";
  if (*phases < 0 || *gb < 0 || *rate < 0 || *rf < 0 || *rf > 1) {
    return "out-of-range value";
  }
  out = IoSummary{*id, static_cast<int>(*phases), *gb, *rate, *rf};
  return std::string();
}
}  // namespace

IoTrace ParseIoTrace(const std::string& text) {
  return ParseIoTrace(text, ParseMode::kStrict, nullptr);
}

IoTrace ParseIoTrace(const std::string& text, ParseMode mode,
                     std::vector<ParseDiagnostic>* diagnostics,
                     const std::string& source) {
  // Line-by-line (rather than ParseCsv) so diagnostics carry true source
  // line numbers even with interleaved comments and blank lines.
  IoTrace trace;
  std::istringstream in(text);
  std::string line;
  std::size_t line_no = 0;
  bool saw_header = false;
  while (std::getline(in, line)) {
    ++line_no;
    std::string_view trimmed = util::Trim(line);
    if (trimmed.empty() || trimmed.front() == '#') continue;
    std::vector<std::string> fields = util::ParseCsvLine(trimmed);
    if (!saw_header) {
      if (fields.size() != 5 || fields[0] != "job_id" ||
          fields[1] != "io_phases" || fields[2] != "total_io_gb" ||
          fields[3] != "agg_rate_gbps" || fields[4] != "read_fraction") {
        throw std::runtime_error("iotrace " + source + ": unexpected header");
      }
      saw_header = true;
      continue;
    }
    IoSummary s;
    std::string err = ParseIoTraceRow(fields, s);
    if (!err.empty()) {
      if (mode == ParseMode::kStrict) {
        throw std::runtime_error("iotrace " + source + " line " +
                                 std::to_string(line_no) + ": " + err);
      }
      if (diagnostics != nullptr) {
        diagnostics->push_back(ParseDiagnostic{source, line_no, err});
      }
      continue;
    }
    trace.push_back(s);
  }
  return trace;
}

IoTrace ReadIoTraceFile(const std::string& path) {
  return ReadIoTraceFile(path, ParseMode::kStrict, nullptr);
}

IoTrace ReadIoTraceFile(const std::string& path, ParseMode mode,
                        std::vector<ParseDiagnostic>* diagnostics) {
  std::ifstream in(path);
  if (!in) {
    int err = errno;
    throw std::runtime_error("iotrace: cannot open " + path + ": " +
                             std::strerror(err));
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return ParseIoTrace(buf.str(), mode, diagnostics, path);
}

void WriteIoTrace(std::ostream& out, const IoTrace& trace) {
  out << "# iosched-darshan-lite v2\n";
  util::CsvWriter csv(out);
  csv.Header(
      {"job_id", "io_phases", "total_io_gb", "agg_rate_gbps", "read_fraction"});
  for (const IoSummary& s : trace) {
    csv.Row()
        .Add(static_cast<long long>(s.job_id))
        .Add(s.io_phases)
        .Add(s.total_io_gb)
        .Add(s.agg_rate_gbps)
        .Add(s.read_fraction);
  }
}

void WriteIoTraceFile(const std::string& path, const IoTrace& trace) {
  // Atomic publish: a crash or full disk mid-write must not leave a torn
  // trace behind, and Commit() surfaces the failing path + errno.
  util::AtomicFileWriter out(path);
  WriteIoTrace(out.stream(), trace);
  out.Commit();
}

}  // namespace iosched::workload
