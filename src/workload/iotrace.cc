#include "workload/iotrace.h"

#include <fstream>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "util/csv.h"
#include "util/strings.h"

namespace iosched::workload {

IoTrace ParseIoTrace(const std::string& text) {
  util::CsvDocument doc = util::ParseCsv(text, /*has_header=*/true);
  if (doc.header.size() != 5 || doc.header[0] != "job_id" ||
      doc.header[1] != "io_phases" || doc.header[2] != "total_io_gb" ||
      doc.header[3] != "agg_rate_gbps" || doc.header[4] != "read_fraction") {
    throw std::runtime_error("iotrace: unexpected header");
  }
  IoTrace trace;
  trace.reserve(doc.rows.size());
  for (std::size_t i = 0; i < doc.rows.size(); ++i) {
    const auto& row = doc.rows[i];
    if (row.size() != 5) {
      throw std::runtime_error("iotrace row " + std::to_string(i + 1) +
                               ": expected 5 fields");
    }
    auto id = util::ParseInt(row[0]);
    auto phases = util::ParseInt(row[1]);
    auto gb = util::ParseDouble(row[2]);
    auto rate = util::ParseDouble(row[3]);
    auto rf = util::ParseDouble(row[4]);
    if (!id || !phases || !gb || !rate || !rf) {
      throw std::runtime_error("iotrace row " + std::to_string(i + 1) +
                               ": bad field");
    }
    if (*phases < 0 || *gb < 0 || *rate < 0 || *rf < 0 || *rf > 1) {
      throw std::runtime_error("iotrace row " + std::to_string(i + 1) +
                               ": out-of-range value");
    }
    trace.push_back(
        IoSummary{*id, static_cast<int>(*phases), *gb, *rate, *rf});
  }
  return trace;
}

IoTrace ReadIoTraceFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("iotrace: cannot open " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return ParseIoTrace(buf.str());
}

void WriteIoTrace(std::ostream& out, const IoTrace& trace) {
  out << "# iosched-darshan-lite v2\n";
  util::CsvWriter csv(out);
  csv.Header(
      {"job_id", "io_phases", "total_io_gb", "agg_rate_gbps", "read_fraction"});
  for (const IoSummary& s : trace) {
    csv.Row()
        .Add(static_cast<long long>(s.job_id))
        .Add(s.io_phases)
        .Add(s.total_io_gb)
        .Add(s.agg_rate_gbps)
        .Add(s.read_fraction);
  }
}

void WriteIoTraceFile(const std::string& path, const IoTrace& trace) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("iotrace: cannot open for write " + path);
  WriteIoTrace(out, trace);
  if (!out) throw std::runtime_error("iotrace: write failed for " + path);
}

}  // namespace iosched::workload
