// Trace-parsing modes and diagnostics.
//
// Real archive traces (SWF dumps, Darshan summaries) routinely contain a few
// malformed lines; aborting a month-long experiment on line 80,000 of a
// trace is rarely what the operator wants. Parsers accept a ParseMode:
// strict (the default — first malformed record throws) or lenient (malformed
// records are skipped and reported as ParseDiagnostics so the caller can log
// or assert on them).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace iosched::workload {

enum class ParseMode {
  kStrict,   // throw std::runtime_error on the first malformed record
  kLenient,  // skip malformed records, collecting one diagnostic each
};

/// One skipped record from a lenient parse.
struct ParseDiagnostic {
  /// Source file path, or "<memory>" when parsing an in-memory string.
  std::string file;
  /// 1-based source line of the offending record.
  std::size_t line = 0;
  std::string message;
};

/// "file:line: message" — the conventional compiler-style rendering.
inline std::string ToString(const ParseDiagnostic& d) {
  return d.file + ":" + std::to_string(d.line) + ": " + d.message;
}

}  // namespace iosched::workload
