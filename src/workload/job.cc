#include "workload/job.h"

#include <stdexcept>

namespace iosched::workload {

double Job::TotalComputeSeconds() const {
  double total = 0.0;
  for (const Phase& p : phases) {
    if (p.kind == PhaseKind::kCompute) total += p.compute_seconds;
  }
  return total;
}

double Job::TotalIoVolumeGb() const {
  double total = 0.0;
  for (const Phase& p : phases) {
    if (p.kind == PhaseKind::kIo) total += p.io_volume_gb;
  }
  return total;
}

int Job::IoPhaseCount() const {
  int count = 0;
  for (const Phase& p : phases) {
    if (p.kind == PhaseKind::kIo) ++count;
  }
  return count;
}

double Job::UncongestedIoSeconds(double node_bandwidth_gbps) const {
  double rate = FullIoRate(node_bandwidth_gbps);
  if (rate <= 0) return 0.0;
  return TotalIoVolumeGb() / rate;
}

double Job::UncongestedRuntime(double node_bandwidth_gbps) const {
  return TotalComputeSeconds() + UncongestedIoSeconds(node_bandwidth_gbps);
}

double Job::IoFraction(double node_bandwidth_gbps) const {
  double runtime = UncongestedRuntime(node_bandwidth_gbps);
  if (runtime <= 0) return 0.0;
  return UncongestedIoSeconds(node_bandwidth_gbps) / runtime;
}

void Job::ScaleIoVolume(double factor) {
  if (factor < 0) throw std::invalid_argument("ScaleIoVolume: negative factor");
  for (Phase& p : phases) {
    if (p.kind == PhaseKind::kIo) p.io_volume_gb *= factor;
  }
}

std::string Job::Validate() const {
  if (nodes <= 0) return "non-positive node count";
  if (io_efficiency <= 0 || io_efficiency > 1.0) {
    return "io_efficiency outside (0, 1]";
  }
  if (submit_time < 0) return "negative submit time";
  if (requested_walltime <= 0) return "non-positive requested walltime";
  if (phases.empty()) return "no phases";
  for (std::size_t i = 0; i < phases.size(); ++i) {
    const Phase& p = phases[i];
    if (p.kind == PhaseKind::kCompute && p.compute_seconds < 0) {
      return "negative compute duration";
    }
    if (p.kind == PhaseKind::kIo && p.io_volume_gb < 0) {
      return "negative I/O volume";
    }
    if (i > 0 && phases[i - 1].kind == p.kind) {
      return "phases do not alternate";
    }
  }
  return "";
}

std::vector<Phase> MakeUniformPhases(double total_compute_seconds,
                                     double total_io_volume_gb,
                                     int io_phases) {
  if (total_compute_seconds < 0 || total_io_volume_gb < 0) {
    throw std::invalid_argument("MakeUniformPhases: negative totals");
  }
  std::vector<Phase> phases;
  if (io_phases <= 0 || total_io_volume_gb <= 0) {
    phases.push_back(Phase::Compute(total_compute_seconds));
    return phases;
  }
  double compute_chunk =
      total_compute_seconds / static_cast<double>(io_phases);
  double io_chunk = total_io_volume_gb / static_cast<double>(io_phases);
  phases.reserve(static_cast<std::size_t>(io_phases) * 2);
  for (int i = 0; i < io_phases; ++i) {
    phases.push_back(Phase::Compute(compute_chunk));
    phases.push_back(Phase::Io(io_chunk));
  }
  return phases;
}

}  // namespace iosched::workload
