// Application checkpoint-traffic generator (DESIGN.md §12).
//
// Real petascale PFS traffic is dominated by *defensive* I/O: applications
// periodically flush a checkpoint so that an MTBF-driven failure costs only
// the compute since the last flush. This transform rewrites a workload so
// each job emits that traffic: it draws a per-job application class (the
// checkpoint footprint in GB per node), computes the Young/Daly-optimal
// checkpoint interval
//
//     tau = sqrt(2 * C * MTBF),   C = flush volume / full I/O rate,
//
// and splits the job's compute phases at every tau seconds of accumulated
// compute, inserting a flush I/O phase (Phase::is_flush = true) at each
// boundary. Original I/O phases are preserved untouched, so the transform
// composes with SWF-paired and synthetic workloads alike.
//
// Deterministic: class draws come from a dedicated RNG stream (47) seeded by
// `seed`, one draw per job in workload order, independent of whether the job
// ends up receiving flushes.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "workload/workload.h"

namespace iosched::workload {

/// One application class: a checkpoint footprint drawn with `weight`.
struct AppCheckpointClass {
  /// Checkpoint footprint per allocated node (GB). A 2048-node job of a
  /// 2 GB/node class flushes 4 TB per checkpoint.
  double gb_per_node = 1.0;
  /// Relative draw weight (weights need not sum to 1).
  double weight = 1.0;
};

struct AppCheckpointConfig {
  bool enabled = false;

  /// Per-application mean time between failures (seconds) used both for the
  /// Young/Daly interval here and (via the driver) for the MTBF failure
  /// process in src/faults. Must be > 0 when enabled.
  double mtbf_seconds = 4.0 * 3600.0;

  /// Class menu: mix of light/medium/heavy checkpointers (memory-fraction
  /// style footprints; Mira nodes hold 16 GB).
  std::vector<AppCheckpointClass> classes = {
      {0.5, 0.45},   // light: solver state only
      {2.0, 0.40},   // medium: a fraction of node memory
      {8.0, 0.15}};  // heavy: near-full memory image

  /// Young/Daly intervals are clamped below to this (seconds), so a tiny
  /// MTBF cannot make flush count explode.
  double min_interval_seconds = 120.0;

  /// Jobs whose total compute is below this never receive flushes (too
  /// short to fail meaningfully; also keeps micro-jobs cheap).
  double min_compute_seconds = 300.0;

  /// Seed for the class-draw stream (47).
  std::uint64_t seed = 1;

  /// Returns an error description, or "" when valid.
  std::string Validate() const;
};

/// The Young/Daly first-order optimal checkpoint interval (seconds):
/// sqrt(2 * flush_seconds * mtbf_seconds). `flush_seconds` is the time one
/// flush takes at the job's full (uncongested) I/O rate.
double YoungDalyInterval(double flush_seconds, double mtbf_seconds);

/// Rewrite `workload` in place, inserting periodic flush phases per the
/// config. `node_bandwidth_gbps` is the per-node link bandwidth b (flush
/// cost C uses the job's full rate b * efficiency * nodes). No-op when
/// config.enabled is false. Throws std::invalid_argument on bad config.
void ApplyCheckpointTraffic(Workload& workload,
                            const AppCheckpointConfig& config,
                            double node_bandwidth_gbps);

}  // namespace iosched::workload
