// Workload assembly: pairing the SWF job trace with the Darshan-lite I/O
// trace (paper Section IV-B), plus workload-level transforms and statistics.
#pragma once

#include <string>
#include <vector>

#include "workload/iotrace.h"
#include "workload/job.h"
#include "workload/swf.h"

namespace iosched::workload {

using Workload = std::vector<Job>;

/// Options controlling the SWF+I/O pairing.
struct PairingOptions {
  /// Per-node link bandwidth (GB/s), needed to convert I/O volume into
  /// uncongested I/O time when deriving compute time from SWF run time.
  double node_bandwidth_gbps = 1536.0 / 49152.0;
  /// Keep only completed jobs (SWF status == 1) when true.
  bool completed_only = false;
  /// A job's uncongested I/O time is capped at this fraction of its SWF run
  /// time; volumes implying more I/O than the job's whole runtime would be
  /// inconsistent, so they are scaled down to the cap.
  double max_io_fraction = 0.95;
};

/// Join the job trace with the I/O trace on job id. SWF `run_time` is
/// interpreted as the *uncongested* runtime; total compute time is run_time
/// minus the uncongested I/O time of the paired volume. Jobs with no I/O
/// record become pure-compute jobs. Throws std::runtime_error on duplicate
/// I/O records for one job id.
Workload PairTraces(const SwfTrace& jobs, const IoTrace& io,
                    const PairingOptions& options);

/// Scale every job's I/O volume by `expansion_factor` (the paper's EF knob:
/// 0.3 compresses I/O time to 30%, 1.5 expands it by 50%).
void ApplyExpansionFactor(Workload& workload, double expansion_factor);

/// Sort by submit time (stable), which every consumer expects.
void SortBySubmitTime(Workload& workload);

/// Aggregate demand statistics for calibration and reporting.
struct WorkloadStats {
  std::size_t job_count = 0;
  double makespan_seconds = 0.0;  // last submit - first submit
  double total_node_seconds = 0.0;
  double mean_nodes = 0.0;
  double mean_runtime_seconds = 0.0;
  double mean_io_fraction = 0.0;
  double total_io_gb = 0.0;
  /// Offered load vs a machine of `machine_nodes`: node-seconds demanded /
  /// (machine_nodes * makespan).
  double offered_load = 0.0;
};

WorkloadStats ComputeStats(const Workload& workload, int machine_nodes,
                           double node_bandwidth_gbps);

/// Decompose a workload back into its SWF + I/O trace halves (round-trip
/// support: generate -> write -> read -> pair must reproduce the workload).
SwfTrace ToSwf(const Workload& workload, double node_bandwidth_gbps);
IoTrace ToIoTrace(const Workload& workload, double node_bandwidth_gbps);

/// Validate every job; returns human-readable errors (empty when clean).
std::vector<std::string> ValidateWorkload(const Workload& workload);

/// Bit-exact FNV-1a fingerprint over every semantic field of every job
/// (ids, times, phases, efficiencies — floats hashed by bit pattern, not
/// text). Feeds the checkpoint config hash: a checkpoint resumed against a
/// workload with any differing field must be rejected, because the restored
/// engine holds raw pointers into the job vector and replays the remaining
/// phases from it.
std::uint64_t WorkloadFingerprint(const Workload& workload);

}  // namespace iosched::workload
