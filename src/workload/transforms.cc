#include "workload/transforms.h"

#include <algorithm>
#include <stdexcept>

namespace iosched::workload {

Workload TimeSlice(const Workload& jobs, double start_seconds,
                   double end_seconds) {
  if (end_seconds <= start_seconds) {
    throw std::invalid_argument("TimeSlice: empty window");
  }
  Workload out;
  for (const Job& job : jobs) {
    if (job.submit_time >= start_seconds && job.submit_time < end_seconds) {
      out.push_back(job);
    }
  }
  SortBySubmitTime(out);
  if (!out.empty()) {
    double base = out.front().submit_time;
    for (Job& job : out) job.submit_time -= base;
  }
  return out;
}

Workload ScaleLoad(const Workload& jobs, double factor) {
  if (factor <= 0) throw std::invalid_argument("ScaleLoad: factor <= 0");
  Workload out = jobs;
  for (Job& job : out) job.submit_time /= factor;
  SortBySubmitTime(out);
  return out;
}

Workload FilterBySize(const Workload& jobs, int min_nodes, int max_nodes) {
  if (min_nodes > max_nodes) {
    throw std::invalid_argument("FilterBySize: min > max");
  }
  Workload out;
  for (const Job& job : jobs) {
    if (job.nodes >= min_nodes && job.nodes <= max_nodes) {
      out.push_back(job);
    }
  }
  return out;
}

Workload Renumber(const Workload& jobs) {
  Workload out = jobs;
  SortBySubmitTime(out);
  JobId next = 1;
  for (Job& job : out) job.id = next++;
  return out;
}

}  // namespace iosched::workload
