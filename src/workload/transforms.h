// Workload transforms for trace studies: slice a window out of a longer
// trace, scale the arrival intensity, or filter by job size. All transforms
// return copies and leave the input untouched.
#pragma once

#include "workload/workload.h"

namespace iosched::workload {

/// Jobs submitted in [start_seconds, end_seconds), re-based so the first
/// kept submission lands at t=0 and ids stay unchanged.
Workload TimeSlice(const Workload& jobs, double start_seconds,
                   double end_seconds);

/// Scale the arrival process: submission times are divided by `factor`, so
/// factor > 1 compresses the trace (higher offered load) and factor < 1
/// stretches it. Runtimes and I/O are untouched. Throws on factor <= 0.
Workload ScaleLoad(const Workload& jobs, double factor);

/// Keep only jobs with min_nodes <= nodes <= max_nodes.
Workload FilterBySize(const Workload& jobs, int min_nodes, int max_nodes);

/// Relabel ids to a dense 1..N sequence in submit order (some tools expect
/// dense ids); provenance fields are preserved.
Workload Renumber(const Workload& jobs);

}  // namespace iosched::workload
