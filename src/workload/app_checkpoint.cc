#include "workload/app_checkpoint.h"

#include <cmath>
#include <stdexcept>

#include "util/rng.h"
#include "util/units.h"

namespace iosched::workload {

namespace {
/// RNG stream for per-job class assignment (see DESIGN.md §12; 7, 17, 23,
/// 29, 31, 37, 41, and 43 are taken by other subsystems).
constexpr std::uint64_t kClassStream = 47;

/// A flush boundary splitting a compute phase must leave real compute on
/// both sides, or the phase list would stop alternating (flush adjacent to
/// an application I/O phase).
constexpr double kSplitEpsilonSeconds = 1e-6;

/// Minimal compute emitted before an overdue (carried-over) flush boundary.
constexpr double kMinLeadSeconds = 1.0;
}  // namespace

std::string AppCheckpointConfig::Validate() const {
  if (!enabled) return "";
  if (mtbf_seconds <= 0) return "app_checkpoint.mtbf_seconds must be > 0";
  if (classes.empty()) return "app_checkpoint.classes must not be empty";
  double weight_sum = 0.0;
  for (const AppCheckpointClass& c : classes) {
    if (c.gb_per_node <= 0) {
      return "app_checkpoint class gb_per_node must be > 0";
    }
    if (c.weight < 0) return "app_checkpoint class weight must be >= 0";
    weight_sum += c.weight;
  }
  if (weight_sum <= 0) return "app_checkpoint class weights sum to 0";
  if (min_interval_seconds <= 0) {
    return "app_checkpoint.min_interval_seconds must be > 0";
  }
  if (min_compute_seconds < 0) {
    return "app_checkpoint.min_compute_seconds must be >= 0";
  }
  return "";
}

double YoungDalyInterval(double flush_seconds, double mtbf_seconds) {
  if (flush_seconds <= 0 || mtbf_seconds <= 0) return 0.0;
  return std::sqrt(2.0 * flush_seconds * mtbf_seconds);
}

void ApplyCheckpointTraffic(Workload& workload,
                            const AppCheckpointConfig& config,
                            double node_bandwidth_gbps) {
  if (!config.enabled) return;
  std::string err = config.Validate();
  if (!err.empty()) {
    throw std::invalid_argument("ApplyCheckpointTraffic: " + err);
  }
  if (node_bandwidth_gbps <= 0) {
    throw std::invalid_argument(
        "ApplyCheckpointTraffic: node_bandwidth_gbps must be > 0");
  }

  std::vector<double> weights;
  weights.reserve(config.classes.size());
  for (const AppCheckpointClass& c : config.classes) {
    weights.push_back(c.weight);
  }

  util::Rng rng(config.seed, kClassStream);
  std::vector<Phase> rewritten;
  for (Job& job : workload) {
    // One draw per job, unconditionally, so skipping a job never shifts the
    // class assignment of the jobs after it.
    const AppCheckpointClass& cls = config.classes[rng.WeightedIndex(weights)];
    double total_compute = job.TotalComputeSeconds();
    if (total_compute < config.min_compute_seconds) continue;

    double flush_gb = cls.gb_per_node * job.nodes;
    double full_rate = job.FullIoRate(node_bandwidth_gbps);
    if (full_rate <= 0) continue;
    double flush_seconds = flush_gb / full_rate;
    double tau = YoungDalyInterval(flush_seconds, config.mtbf_seconds);
    tau = std::max(tau, config.min_interval_seconds);
    // No room for even one interior boundary: leave the job alone.
    if (tau >= total_compute) continue;

    rewritten.clear();
    rewritten.reserve(job.phases.size() * 2);
    double since_flush = 0.0;  // compute accumulated since the last flush
    for (const Phase& phase : job.phases) {
      if (phase.kind != PhaseKind::kCompute) {
        rewritten.push_back(phase);
        continue;
      }
      double remaining = phase.compute_seconds;
      while (since_flush + remaining >= tau + kSplitEpsilonSeconds) {
        // Compute still owed before the boundary. A boundary carried over
        // from an earlier phase (it would have abutted the application's
        // own I/O phase) is overdue — emit it after a minimal lead chunk so
        // alternation is preserved.
        double lead = std::max(tau - since_flush, kMinLeadSeconds);
        if (lead > remaining - kSplitEpsilonSeconds) {
          // The boundary lands on (or past) the phase end; emitting the
          // flush here would abut the next I/O phase and break alternation.
          // Carry the accumulator into the next compute phase.
          break;
        }
        rewritten.push_back(Phase::Compute(lead));
        rewritten.push_back(Phase::Flush(flush_gb));
        remaining -= lead;
        since_flush = 0.0;
      }
      rewritten.push_back(Phase::Compute(remaining));
      since_flush += remaining;
    }
    job.phases = rewritten;
  }
}

}  // namespace iosched::workload
