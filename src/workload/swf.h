// Standard Workload Format (SWF) reader/writer.
//
// SWF (Feitelson's Parallel Workloads Archive format) is the de-facto
// interchange format for HPC job traces; the paper's 3-month Mira job trace
// carries exactly the fields SWF standardizes (submit time, size, duration,
// walltime). Records are 18 whitespace-separated fields, one per line;
// header/comment lines start with ';'. Missing values are -1.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "workload/parse_diag.h"

namespace iosched::workload {

/// One SWF record; field names follow the SWF specification.
struct SwfRecord {
  std::int64_t job_number = -1;       // 1
  double submit_time = -1;            // 2 (seconds)
  double wait_time = -1;              // 3 (seconds)
  double run_time = -1;               // 4 (seconds)
  std::int64_t allocated_procs = -1;  // 5
  double avg_cpu_time = -1;           // 6
  double used_memory = -1;            // 7
  std::int64_t requested_procs = -1;  // 8
  double requested_time = -1;         // 9 (seconds)
  double requested_memory = -1;       // 10
  std::int64_t status = -1;           // 11 (1 = completed)
  std::int64_t user_id = -1;          // 12
  std::int64_t group_id = -1;         // 13
  std::int64_t executable = -1;       // 14
  std::int64_t queue = -1;            // 15
  std::int64_t partition = -1;        // 16
  std::int64_t preceding_job = -1;    // 17
  double think_time = -1;             // 18
};

/// Parse SWF text. Comment lines (';') are collected into `header_comments`.
/// Throws std::runtime_error with a line number on malformed records.
struct SwfTrace {
  std::vector<std::string> header_comments;
  std::vector<SwfRecord> records;
};

SwfTrace ParseSwf(const std::string& text);

/// Parse with explicit mode. Strict: throws std::runtime_error naming
/// `source` and the line on the first malformed record. Lenient: malformed
/// records are skipped; one ParseDiagnostic each is appended to
/// `diagnostics` (which may be null to discard them). `source` labels
/// errors/diagnostics — pass the file path when parsing file contents.
SwfTrace ParseSwf(const std::string& text, ParseMode mode,
                  std::vector<ParseDiagnostic>* diagnostics,
                  const std::string& source = "<memory>");

/// Read an SWF file from disk. Throws on unreadable files with the path and
/// the OS error (strerror).
SwfTrace ReadSwfFile(const std::string& path);
SwfTrace ReadSwfFile(const std::string& path, ParseMode mode,
                     std::vector<ParseDiagnostic>* diagnostics);

/// Serialize records (with optional header comments) to SWF text.
void WriteSwf(std::ostream& out, const SwfTrace& trace);

/// Write an SWF file to disk. Throws on I/O failure.
void WriteSwfFile(const std::string& path, const SwfTrace& trace);

}  // namespace iosched::workload
