// Synthetic Mira-like workload generator.
//
// Substitute for the proprietary 2014 Mira job trace + Darshan logs (see
// DESIGN.md §2). The generator reproduces the published characteristics the
// scheduling policies are sensitive to:
//   * capability-class job sizes: power-of-two node counts from 512 (the
//     smallest production partition) up to the full machine, with 8K/16K
//     jobs "common" (paper Section II-A);
//   * log-normal runtimes clipped to [min_runtime, max_runtime];
//   * user walltime requests that over-estimate the runtime (as real users
//     do), which is what WFP and backfilling consume;
//   * a diurnally modulated Poisson arrival process;
//   * a light/medium/heavy I/O-intensity mixture with checkpoint-style
//     periodic I/O phases (Darshan-like behaviour).
#pragma once

#include <cstdint>
#include <vector>

#include "util/rng.h"
#include "workload/workload.h"

namespace iosched::workload {

/// Floor on the synthetic inter-arrival gap (seconds). An exponential draw
/// can return exactly 0; the generator clamps every gap to at least this so
/// no seed can emit two jobs at the same instant or a non-advancing clock.
/// Far below any realistic draw, so existing seeds are unaffected.
inline constexpr double kMinInterArrivalSeconds = 1e-6;

/// Mixture component for I/O intensity: a fraction of jobs whose I/O time
/// fraction (of uncongested runtime) is uniform in [lo, hi].
struct IoIntensityBand {
  double weight = 1.0;
  double fraction_lo = 0.0;
  double fraction_hi = 0.0;
};

struct SyntheticConfig {
  /// Trace duration in days (the paper simulates one-month workloads).
  double duration_days = 30.0;
  /// Mean arrivals per day before diurnal modulation.
  double jobs_per_day = 220.0;
  /// Diurnal modulation depth in [0,1): arrival rate swings between
  /// (1-depth) and (1+depth) of the mean over a 24h period.
  double diurnal_depth = 0.35;

  /// Job size menu (nodes) and weights; defaults mirror Mira's mix.
  std::vector<int> size_menu = {512, 1024, 2048, 4096, 8192, 16384, 32768};
  std::vector<double> size_weights = {0.32, 0.24, 0.16, 0.12, 0.10, 0.045,
                                      0.015};

  /// Runtime distribution: log-normal in log-seconds.
  double runtime_log_mean = 8.6;   // exp(8.6) ~ 5,432 s ~ 90 min
  double runtime_log_sigma = 0.85;
  double min_runtime_seconds = 600.0;     // 10 min
  double max_runtime_seconds = 86400.0;   // 24 h

  /// Walltime request = runtime * Uniform(lo, hi), clipped to max_runtime.
  double walltime_factor_lo = 1.15;
  double walltime_factor_hi = 2.2;

  /// I/O intensity mixture (weights need not sum to 1).
  std::vector<IoIntensityBand> io_bands = {
      {0.55, 0.02, 0.10},   // light: occasional output dumps
      {0.30, 0.10, 0.30},   // medium: regular checkpointing
      {0.15, 0.30, 0.60}};  // heavy: data-intensive / analysis

  /// Mean compute-seconds between I/O phases (checkpoint period); the
  /// number of I/O phases is derived from runtime / period, in
  /// [1, max_io_phases].
  double checkpoint_period_seconds = 1800.0;
  int max_io_phases = 60;

  /// Cap on a job's total I/O volume (GB). Bounds the pathological tail
  /// (a day-long 8K-node job at a heavy I/O fraction would otherwise move
  /// petabytes, which no real Darshan log shows). <= 0 disables the cap.
  double max_io_volume_gb = 131072.0;  // 128 TB

  /// Per-job application I/O efficiency (fraction of the link bandwidth the
  /// code actually drives), uniform in [lo, hi]. Defaults model perfectly
  /// efficient I/O; the Mira evaluation months use Darshan-like 0.15-0.75.
  double io_efficiency_lo = 1.0;
  double io_efficiency_hi = 1.0;

  /// Probability that a job starts with a restart read (it resumes from a
  /// checkpoint written by a predecessor): the job's phase list then begins
  /// with an I/O phase of one checkpoint's volume. 0 disables.
  double restart_read_probability = 0.0;

  /// Per-node bandwidth used to convert I/O-time fraction into volume.
  double node_bandwidth_gbps = 1536.0 / 49152.0;

  /// Number of distinct synthetic users/projects (for the predictor).
  int user_count = 64;
  int project_count = 24;

  /// First job id to assign (ids are sequential).
  JobId first_job_id = 1;
};

/// Generate a workload. Deterministic in (config, seed).
Workload GenerateWorkload(const SyntheticConfig& config, std::uint64_t seed);

/// The three one-month evaluation workloads (WL1..WL3). Distinct seeds and
/// slightly different load/IO-intensity mixes stand in for the paper's three
/// calendar months "with different characteristics". `index` is 1-based.
SyntheticConfig EvaluationMonthConfig(int index);

}  // namespace iosched::workload
