#include "metrics/breakdown.h"

#include <cstdio>

#include "util/units.h"

namespace iosched::metrics {

std::vector<ClassSummary> BreakdownBy(
    const JobRecords& records,
    const std::function<std::string(const JobRecord&)>& key) {
  std::map<std::string, ClassSummary> groups;
  for (const JobRecord& r : records) {
    ClassSummary& g = groups[key(r)];
    ++g.job_count;
    g.avg_wait_seconds += r.WaitTime();
    g.avg_response_seconds += r.ResponseTime();
    g.avg_runtime_expansion += r.RuntimeExpansion();
    g.avg_io_slowdown += r.IoSlowdown();
    g.total_node_seconds +=
        static_cast<double>(r.allocated_nodes) * r.Runtime();
  }
  std::vector<ClassSummary> out;
  out.reserve(groups.size());
  for (auto& [label, g] : groups) {
    auto n = static_cast<double>(g.job_count);
    g.label = label;
    g.avg_wait_seconds /= n;
    g.avg_response_seconds /= n;
    g.avg_runtime_expansion /= n;
    g.avg_io_slowdown /= n;
    out.push_back(std::move(g));
  }
  return out;
}

std::vector<ClassSummary> BreakdownBySize(const JobRecords& records) {
  auto out = BreakdownBy(records, [](const JobRecord& r) {
    char buf[16];
    std::snprintf(buf, sizeof(buf), "%6d", r.requested_nodes);
    return std::string(buf);
  });
  for (ClassSummary& c : out) {
    // Strip the sort padding for display.
    std::size_t pos = c.label.find_first_not_of(' ');
    c.label = c.label.substr(pos);
  }
  return out;
}

util::Table BreakdownTable(const std::vector<ClassSummary>& classes) {
  util::Table table({"class", "jobs", "avg wait (min)", "avg response (min)",
                     "runtime stretch", "io slowdown", "node-hours"});
  for (const ClassSummary& c : classes) {
    table.AddRow({c.label, std::to_string(c.job_count),
                  util::Table::Num(
                      util::SecondsToMinutes(c.avg_wait_seconds), 1),
                  util::Table::Num(
                      util::SecondsToMinutes(c.avg_response_seconds), 1),
                  util::Table::Num(c.avg_runtime_expansion, 3),
                  util::Table::Num(c.avg_io_slowdown, 3),
                  util::Table::Num(c.total_node_seconds / 3600.0, 0)});
  }
  return table;
}

}  // namespace iosched::metrics
