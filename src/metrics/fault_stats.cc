#include "metrics/fault_stats.h"

#include <ostream>

#include "util/csv.h"

namespace iosched::metrics {

const char* ToString(FaultEventKind kind) {
  switch (kind) {
    case FaultEventKind::kStorageDegrade: return "storage_degrade";
    case FaultEventKind::kStorageRestore: return "storage_restore";
    case FaultEventKind::kMidplaneFault: return "midplane_fault";
    case FaultEventKind::kMidplaneRepair: return "midplane_repair";
    case FaultEventKind::kJobKill: return "job_kill";
    case FaultEventKind::kRequeue: return "requeue";
    case FaultEventKind::kAbandon: return "abandon";
    case FaultEventKind::kBbFault: return "bb_fault";
    case FaultEventKind::kBbRepair: return "bb_repair";
    case FaultEventKind::kDrainDegrade: return "drain_degrade";
    case FaultEventKind::kDrainRestore: return "drain_restore";
    case FaultEventKind::kMtbfFailure: return "mtbf_failure";
  }
  return "?";
}

void FaultStats::Add(sim::SimTime time, FaultEventKind kind,
                     workload::JobId job, double detail) {
  timeline.push_back(FaultEvent{time, kind, job, detail});
  switch (kind) {
    case FaultEventKind::kStorageDegrade: ++storage_degradations; break;
    case FaultEventKind::kMidplaneFault: ++midplane_outages; break;
    case FaultEventKind::kJobKill: ++fault_kills; break;
    case FaultEventKind::kRequeue: ++requeues; break;
    case FaultEventKind::kAbandon: ++abandoned_jobs; break;
    case FaultEventKind::kBbFault: ++bb_faults; break;
    case FaultEventKind::kDrainDegrade: ++drain_degradations; break;
    // MTBF failures also deliver a kJobKill event (which counts the kill);
    // this kind only attributes it to the MTBF process.
    case FaultEventKind::kMtbfFailure: ++mtbf_failures; break;
    case FaultEventKind::kStorageRestore:
    case FaultEventKind::kMidplaneRepair:
    case FaultEventKind::kBbRepair:
    case FaultEventKind::kDrainRestore:
      break;
  }
}

void FaultStats::WriteTimelineCsv(std::ostream& out) const {
  util::CsvWriter csv(out);
  csv.Header({"time", "event", "job", "detail"});
  for (const FaultEvent& e : timeline) {
    csv.Row()
        .Add(e.time)
        .Add(std::string_view(ToString(e.kind)))
        .Add(static_cast<long long>(e.job))
        .Add(e.detail);
  }
}

}  // namespace iosched::metrics
