// Per-job outcome record produced by a simulation run.
#pragma once

#include <vector>

#include "workload/job.h"

namespace iosched::metrics {

struct JobRecord {
  workload::JobId id = 0;
  int requested_nodes = 0;
  /// Nodes in the granted partition (>= requested: internal fragmentation).
  int allocated_nodes = 0;
  double submit_time = 0.0;
  double start_time = 0.0;
  double end_time = 0.0;
  /// Runtime the job would have had with zero I/O congestion.
  double uncongested_runtime = 0.0;
  double requested_walltime = 0.0;
  /// Seconds actually spent inside I/O requests (incl. suspension).
  double io_time_actual = 0.0;
  /// Seconds I/O would have taken at full rate b*N.
  double io_time_uncongested = 0.0;
  int io_phase_count = 0;
  /// True when the scheduler killed the job at its requested walltime
  /// (enforce_walltime mode) instead of the job completing its phases.
  bool killed = false;
  /// Execution attempts consumed (1 = no fault kill; >1 = requeued after
  /// fault kills). start/end/io times describe the final attempt.
  int attempts = 1;
  /// True when the job exhausted its retry budget and never completed; the
  /// record then describes the last failed attempt.
  bool abandoned = false;
  /// Machine time burned by failed attempts (start-to-kill, summed).
  double lost_seconds = 0.0;
  /// Checkpoint flushes completed across all attempts (checkpoint-traffic
  /// workloads only; 0 otherwise).
  int flush_count = 0;
  /// Simulated seconds of progress discarded by failures — per failed
  /// attempt, the span from the attempt's last restart anchor (job start,
  /// last completed phase, or last durable flush, by restart mode) to the
  /// kill, summed. The work a restart must redo.
  double rework_seconds = 0.0;

  double WaitTime() const { return start_time - submit_time; }
  double ResponseTime() const { return end_time - submit_time; }
  double Runtime() const { return end_time - start_time; }
  /// Runtime stretch caused by I/O congestion (>= 1 up to float noise).
  double RuntimeExpansion() const {
    return uncongested_runtime > 0 ? Runtime() / uncongested_runtime : 1.0;
  }
  /// I/O slowdown over the whole job (>= 1 when congested).
  double IoSlowdown() const {
    return io_time_uncongested > 0 ? io_time_actual / io_time_uncongested
                                   : 1.0;
  }
};

using JobRecords = std::vector<JobRecord>;

}  // namespace iosched::metrics
