// Bit-exact FNV-1a digest over per-job records — the replay-equivalence
// oracle. Two runs that produce the same digest produced byte-identical
// outcome records; the bench harness uses it to detect behavioural drift
// and the checkpoint tests use it as the resume-equivalence bar (a restored
// run must digest identically to an uninterrupted one).
#pragma once

#include <cstdint>
#include <string>

#include "metrics/job_record.h"

namespace iosched::metrics {

inline constexpr std::uint64_t kFnvOffset = 1469598103934665603ULL;
inline constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

/// FNV-1a over the 8 bytes of `value` (little-endian byte order).
std::uint64_t FnvMix(std::uint64_t hash, std::uint64_t value);
/// Bit-exact double mix (no decimal round-trip).
std::uint64_t FnvMix(std::uint64_t hash, double value);

/// Digest over every field of every record. Records are sorted by id by
/// RunSimulation, so the digest is replay-order stable.
std::uint64_t DigestRecords(const JobRecords& records);

/// "0x"-prefixed 16-digit hex rendering, for logs and JSON.
std::string HexDigest(std::uint64_t digest);

}  // namespace iosched::metrics
