#include "metrics/report.h"

#include <algorithm>
#include <ostream>
#include <sstream>

#include "util/csv.h"
#include "util/stats.h"
#include "util/units.h"

namespace iosched::metrics {

Report Summarize(const JobRecords& records, const UtilizationTracker& util,
                 double warmup_fraction, double cooldown_fraction) {
  Report report;
  report.job_count = records.size();
  report.utilization =
      util.sample_count() > 0
          ? util.StableUtilization(warmup_fraction, cooldown_fraction)
          : 0.0;
  if (records.empty()) return report;

  std::vector<double> waits;
  std::vector<double> responses;
  waits.reserve(records.size());
  responses.reserve(records.size());
  util::RunningStats runtime_stats;
  util::RunningStats expansion_stats;
  util::RunningStats io_slowdown_stats;
  util::RunningStats bounded_slowdown_stats;
  util::RunningStats clean_wait_stats;
  util::RunningStats requeued_wait_stats;
  util::RunningStats requeued_response_stats;
  constexpr double kSlowdownBoundSeconds = 600.0;
  double first_submit = records.front().submit_time;
  double last_end = records.front().end_time;
  double useful_node_seconds = 0.0;
  for (const JobRecord& r : records) {
    report.total_attempts += static_cast<std::uint64_t>(r.attempts);
    report.lost_node_seconds += r.lost_seconds * r.allocated_nodes;
    report.total_flushes += static_cast<std::uint64_t>(r.flush_count);
    report.rework_node_seconds += r.rework_seconds * r.allocated_nodes;
    first_submit = std::min(first_submit, r.submit_time);
    last_end = std::max(last_end, r.end_time);
    if (!r.abandoned) useful_node_seconds += r.Runtime() * r.allocated_nodes;
    if (r.abandoned) {
      // The job never completed; its wait/response are undefined.
      ++report.abandoned_job_count;
      continue;
    }
    if (r.attempts > 1) {
      ++report.requeued_job_count;
      requeued_wait_stats.Add(r.WaitTime());
      requeued_response_stats.Add(r.ResponseTime());
    } else {
      clean_wait_stats.Add(r.WaitTime());
    }
    waits.push_back(r.WaitTime());
    responses.push_back(r.ResponseTime());
    runtime_stats.Add(r.Runtime());
    expansion_stats.Add(r.RuntimeExpansion());
    if (r.io_time_uncongested > 0) io_slowdown_stats.Add(r.IoSlowdown());
    bounded_slowdown_stats.Add(std::max(
        1.0, r.ResponseTime() / std::max(r.Runtime(), kSlowdownBoundSeconds)));
  }
  report.avg_wait_clean_seconds =
      clean_wait_stats.count() ? clean_wait_stats.mean() : 0.0;
  report.avg_wait_requeued_seconds =
      requeued_wait_stats.count() ? requeued_wait_stats.mean() : 0.0;
  report.avg_response_requeued_seconds =
      requeued_response_stats.count() ? requeued_response_stats.mean() : 0.0;
  if (useful_node_seconds + report.rework_node_seconds > 0) {
    report.rework_ratio =
        report.rework_node_seconds /
        (useful_node_seconds + report.rework_node_seconds);
  }
  if (useful_node_seconds + report.lost_node_seconds > 0) {
    report.goodput = useful_node_seconds /
                     (useful_node_seconds + report.lost_node_seconds);
  }
  if (waits.empty()) {
    report.makespan_seconds = last_end - first_submit;
    return report;
  }
  util::Summary wait_summary(waits);
  util::Summary response_summary(responses);
  report.avg_wait_seconds = wait_summary.mean();
  report.avg_response_seconds = response_summary.mean();
  report.p90_wait_seconds = wait_summary.p90();
  report.p90_response_seconds = response_summary.p90();
  report.max_wait_seconds = wait_summary.max();
  report.avg_bounded_slowdown = bounded_slowdown_stats.mean();
  report.avg_runtime_seconds = runtime_stats.mean();
  report.avg_runtime_expansion =
      expansion_stats.count() ? expansion_stats.mean() : 1.0;
  report.avg_io_slowdown =
      io_slowdown_stats.count() ? io_slowdown_stats.mean() : 1.0;
  report.makespan_seconds = last_end - first_submit;
  return report;
}

void WriteRecordsCsv(std::ostream& out, const JobRecords& records) {
  util::CsvWriter csv(out);
  csv.Header({"job_id", "requested_nodes", "allocated_nodes", "submit",
              "start", "end", "wait", "response", "runtime",
              "uncongested_runtime", "expansion", "io_time_actual",
              "io_time_uncongested", "io_phases", "killed", "attempts",
              "abandoned", "lost_seconds", "flush_count", "rework_seconds"});
  for (const JobRecord& r : records) {
    csv.Row()
        .Add(static_cast<long long>(r.id))
        .Add(r.requested_nodes)
        .Add(r.allocated_nodes)
        .Add(r.submit_time)
        .Add(r.start_time)
        .Add(r.end_time)
        .Add(r.WaitTime())
        .Add(r.ResponseTime())
        .Add(r.Runtime())
        .Add(r.uncongested_runtime)
        .Add(r.RuntimeExpansion())
        .Add(r.io_time_actual)
        .Add(r.io_time_uncongested)
        .Add(r.io_phase_count)
        .Add(std::string_view(r.killed ? "1" : "0"))
        .Add(r.attempts)
        .Add(std::string_view(r.abandoned ? "1" : "0"))
        .Add(r.lost_seconds)
        .Add(r.flush_count)
        .Add(r.rework_seconds);
  }
}

std::string ToString(const Report& report) {
  std::ostringstream os;
  os << "jobs=" << report.job_count
     << " avg_wait=" << util::SecondsToMinutes(report.avg_wait_seconds)
     << "min avg_response="
     << util::SecondsToMinutes(report.avg_response_seconds)
     << "min utilization=" << report.utilization * 100.0 << "%"
     << " avg_expansion=" << report.avg_runtime_expansion
     << " avg_io_slowdown=" << report.avg_io_slowdown;
  if (report.requeued_job_count > 0 || report.abandoned_job_count > 0) {
    os << " requeued=" << report.requeued_job_count
       << " abandoned=" << report.abandoned_job_count
       << " fault_wait_delta="
       << util::SecondsToMinutes(report.avg_wait_requeued_seconds -
                                 report.avg_wait_clean_seconds)
       << "min";
  }
  if (report.total_flushes > 0 || report.rework_node_seconds > 0) {
    os << " flushes=" << report.total_flushes
       << " rework_ratio=" << report.rework_ratio
       << " goodput=" << report.goodput;
  }
  return os.str();
}

}  // namespace iosched::metrics
