// Aggregate report over a simulation run: the three metrics the paper
// evaluates (average wait time, average response time, stable-window system
// utilization) plus diagnostics that explain *why* a policy wins (runtime
// expansion, I/O slowdown).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>

#include "metrics/job_record.h"
#include "metrics/utilization.h"

namespace iosched::metrics {

struct Report {
  std::size_t job_count = 0;
  /// Paper's evaluation metrics (seconds; convert with SecondsToMinutes).
  double avg_wait_seconds = 0.0;
  double avg_response_seconds = 0.0;
  double utilization = 0.0;  // stable window, 0..1

  /// Distribution tails for wait/response (seconds).
  double p90_wait_seconds = 0.0;
  double p90_response_seconds = 0.0;
  double max_wait_seconds = 0.0;

  /// Average bounded slowdown: response / max(runtime, 600 s), floored at
  /// 1 — the standard queueing-fairness metric (the 10-minute bound keeps
  /// tiny jobs from dominating the mean).
  double avg_bounded_slowdown = 1.0;

  /// Diagnostics.
  double avg_runtime_seconds = 0.0;
  double avg_runtime_expansion = 1.0;  // actual / uncongested
  double avg_io_slowdown = 1.0;        // actual / uncongested I/O time
  double makespan_seconds = 0.0;       // first submit .. last completion
  double total_io_gb = 0.0;

  /// Fault accounting (all zero on a fault-free run). Abandoned jobs are
  /// excluded from the wait/response/slowdown averages above — their last
  /// attempt never completed, so those metrics are undefined for them.
  std::size_t requeued_job_count = 0;  // jobs that needed >1 attempt
  std::size_t abandoned_job_count = 0;
  std::uint64_t total_attempts = 0;
  double lost_node_seconds = 0.0;  // allocated nodes x failed-attempt time
  /// Mean wait of single-attempt vs requeued jobs: the wait-time delta
  /// attributable to faults is `avg_wait_requeued - avg_wait_clean`.
  double avg_wait_clean_seconds = 0.0;
  double avg_wait_requeued_seconds = 0.0;
  double avg_response_requeued_seconds = 0.0;

  /// Checkpoint-traffic accounting (zero without flush phases / failures).
  std::uint64_t total_flushes = 0;
  /// Node-seconds of discarded progress (rework_seconds x allocated nodes).
  double rework_node_seconds = 0.0;
  /// rework / (useful + rework) node-seconds, in [0, 1): the share of the
  /// machine's delivered cycles that was repeated work. Useful node-seconds
  /// are final-attempt runtimes of completed jobs.
  double rework_ratio = 0.0;
  /// useful / (useful + lost) node-seconds, in (0, 1]: goodput of the
  /// delivered cycles (lost covers every failed attempt's machine time).
  double goodput = 1.0;
};

/// Build a report from per-job records and the utilization tracker.
/// `warmup_fraction`/`cooldown_fraction` select the stable window.
Report Summarize(const JobRecords& records, const UtilizationTracker& util,
                 double warmup_fraction = 0.05,
                 double cooldown_fraction = 0.05);

/// Write the per-job records as CSV (for offline analysis/plotting).
void WriteRecordsCsv(std::ostream& out, const JobRecords& records);

/// One-paragraph human-readable rendering.
std::string ToString(const Report& report);

}  // namespace iosched::metrics
