// Speedup arithmetic for the benchmark regression harness.
//
// Pulled out of bench/micro_components.cpp so the zero/missing-baseline
// guards are unit-testable: a baseline entry recorded as 0 seconds (a replay
// too fast for the clock, or a hand-edited file) must not poison the
// geometric mean with an infinity or NaN, and a replay with no matching
// baseline entry must simply not participate.
#pragma once

#include <span>

namespace iosched::metrics {

/// One replay's timing pair. `baseline_seconds <= 0` marks a missing or
/// degenerate baseline entry; `current_seconds <= 0` a degenerate run.
struct SpeedupSample {
  double baseline_seconds = 0.0;
  double current_seconds = 0.0;
};

/// baseline/current, or 0.0 when either side is non-positive (unknown).
double Speedup(double baseline_seconds, double current_seconds);

/// Geometric mean of the valid samples' speedups. Samples where either side
/// is non-positive are skipped; returns 0.0 when no sample is valid, so a
/// missing baseline reads as "no comparison" rather than as a 1.0x result.
double SpeedupGeomean(std::span<const SpeedupSample> samples);

}  // namespace iosched::metrics
