// ASCII timeline rendering: machine occupancy and storage demand over
// simulated time, bucketed into fixed intervals. Gives an at-a-glance
// picture of the diurnal load and the congestion bursts a policy faces.
#pragma once

#include <string>
#include <vector>

#include "metrics/bandwidth.h"
#include "metrics/job_record.h"

namespace iosched::metrics {

/// Bucketed series: mean value of a step function per time bucket.
struct TimelineSeries {
  double bucket_seconds = 0.0;
  double start_time = 0.0;
  std::vector<double> values;
};

/// Machine occupancy (busy-node fraction, 0..1 per bucket) reconstructed
/// from job records (allocated nodes over [start, end)).
TimelineSeries OccupancyTimeline(const JobRecords& records, int total_nodes,
                                 double bucket_seconds);

/// Storage demand relative to BWmax (can exceed 1) per bucket, from
/// bandwidth samples.
TimelineSeries DemandTimeline(const BandwidthTracker& tracker,
                              double bucket_seconds);

/// Render as a fixed-height ASCII strip chart. `ceiling` is the value that
/// maps to the top row (values above are clipped); a marker row is drawn at
/// `threshold` when it lies in (0, ceiling].
std::string RenderTimeline(const TimelineSeries& series, int height,
                           double ceiling, double threshold = 0.0);

}  // namespace iosched::metrics
