// Per-class breakdowns of job outcomes: group records by job size (or any
// key) and summarize wait/response/slowdown per group. This is the analysis
// that exposes *why* a policy moves the averages — e.g. the even-split
// BASE_LINE squeezing capability-class (8K+ node) jobs.
#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "metrics/job_record.h"
#include "util/table.h"

namespace iosched::metrics {

struct ClassSummary {
  std::string label;
  std::size_t job_count = 0;
  double avg_wait_seconds = 0.0;
  double avg_response_seconds = 0.0;
  double avg_runtime_expansion = 1.0;
  double avg_io_slowdown = 1.0;
  double total_node_seconds = 0.0;
};

/// Group records with `key` and summarize each group. Groups are returned
/// in ascending key order.
std::vector<ClassSummary> BreakdownBy(
    const JobRecords& records,
    const std::function<std::string(const JobRecord&)>& key);

/// Standard size classes on power-of-two boundaries: "512", "1024", ...
/// (keyed by requested nodes; labels are zero-padded for sort order).
std::vector<ClassSummary> BreakdownBySize(const JobRecords& records);

/// Render a breakdown as an aligned table (times in minutes).
util::Table BreakdownTable(const std::vector<ClassSummary>& classes);

}  // namespace iosched::metrics
