// Fault accounting for a simulation run: a time-ordered fault timeline
// (storage degradations, midplane outages, fault kills, requeues) plus the
// aggregate counters the robustness benchmarks report (degraded-seconds,
// requeue counts, jobs abandoned after exhausting their retry budget).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "ckpt/serializer.h"
#include "sim/time.h"
#include "workload/job.h"

namespace iosched::metrics {

enum class FaultEventKind {
  kStorageDegrade,  // BWmax scaled down (detail = new bandwidth factor)
  kStorageRestore,  // degradation window ended (detail = new factor)
  kMidplaneFault,   // midplane went down (detail = midplane index)
  kMidplaneRepair,  // midplane came back (detail = midplane index)
  kJobKill,         // a running job was killed by fault injection
  kRequeue,         // a killed job re-entered the queue (detail = eligible t)
  kAbandon,         // retry budget exhausted; job permanently failed
  kBbFault,         // burst buffer went down (detail = 1 if data was lost)
  kBbRepair,        // burst buffer came back
  kDrainDegrade,    // BB drain rate scaled down (detail = new drain factor)
  kDrainRestore,    // drain degradation ended (detail = new factor)
  // Appended (U8 serialization): never reorder the values above.
  kMtbfFailure,     // MTBF process failed a running job
};

const char* ToString(FaultEventKind kind);

struct FaultEvent {
  sim::SimTime time = 0.0;
  FaultEventKind kind = FaultEventKind::kStorageDegrade;
  /// Affected job, or 0 for system-level events.
  workload::JobId job = 0;
  /// Kind-specific payload (see the enum).
  double detail = 0.0;
};

/// Per-run fault accounting, filled by the fault injector and the engine.
struct FaultStats {
  std::vector<FaultEvent> timeline;

  /// Wall-clock (simulated) seconds with storage bandwidth below nominal.
  double degraded_seconds = 0.0;
  /// Smallest bandwidth factor observed (1.0 = never degraded).
  double min_bandwidth_factor = 1.0;
  std::uint64_t storage_degradations = 0;
  std::uint64_t midplane_outages = 0;
  std::uint64_t fault_kills = 0;
  std::uint64_t requeues = 0;
  std::uint64_t abandoned_jobs = 0;
  std::uint64_t bb_faults = 0;
  std::uint64_t drain_degradations = 0;
  /// Smallest BB drain factor observed (1.0 = never degraded).
  double min_drain_factor = 1.0;
  /// Kills delivered by the MTBF failure process (subset of fault_kills).
  std::uint64_t mtbf_failures = 0;

  bool Empty() const { return timeline.empty(); }

  void Add(sim::SimTime time, FaultEventKind kind, workload::JobId job = 0,
           double detail = 0.0);

  /// CSV: time,event,job,detail — the per-run fault timeline.
  void WriteTimelineCsv(std::ostream& out) const;

  void SaveState(ckpt::Writer& w) const {
    w.U32(static_cast<std::uint32_t>(timeline.size()));
    for (const FaultEvent& e : timeline) {
      w.F64(e.time);
      w.U8(static_cast<std::uint8_t>(e.kind));
      w.I64(e.job);
      w.F64(e.detail);
    }
    w.F64(degraded_seconds);
    w.F64(min_bandwidth_factor);
    w.U64(storage_degradations);
    w.U64(midplane_outages);
    w.U64(fault_kills);
    w.U64(requeues);
    w.U64(abandoned_jobs);
    w.U64(bb_faults);
    w.U64(drain_degradations);
    w.F64(min_drain_factor);
    w.U64(mtbf_failures);
  }
  void RestoreState(ckpt::Reader& r) {
    timeline.resize(r.U32());
    for (FaultEvent& e : timeline) {
      e.time = r.F64();
      e.kind = static_cast<FaultEventKind>(r.U8());
      e.job = r.I64();
      e.detail = r.F64();
    }
    degraded_seconds = r.F64();
    min_bandwidth_factor = r.F64();
    storage_degradations = r.U64();
    midplane_outages = r.U64();
    fault_kills = r.U64();
    requeues = r.U64();
    abandoned_jobs = r.U64();
    bb_faults = r.U64();
    drain_degradations = r.U64();
    min_drain_factor = r.F64();
    mtbf_failures = r.U64();
  }
};

}  // namespace iosched::metrics
