#include "metrics/speedup.h"

#include <cmath>

namespace iosched::metrics {

double Speedup(double baseline_seconds, double current_seconds) {
  if (baseline_seconds <= 0.0 || current_seconds <= 0.0) return 0.0;
  return baseline_seconds / current_seconds;
}

double SpeedupGeomean(std::span<const SpeedupSample> samples) {
  double log_sum = 0.0;
  int count = 0;
  for (const SpeedupSample& s : samples) {
    double ratio = Speedup(s.baseline_seconds, s.current_seconds);
    if (ratio <= 0.0) continue;
    log_sum += std::log(ratio);
    ++count;
  }
  return count > 0 ? std::exp(log_sum / static_cast<double>(count)) : 0.0;
}

}  // namespace iosched::metrics
