#include "metrics/bandwidth.h"

#include <algorithm>
#include <stdexcept>

#include "util/units.h"

namespace iosched::metrics {

BandwidthTracker::BandwidthTracker(double max_bandwidth_gbps)
    : max_bandwidth_(max_bandwidth_gbps) {
  if (max_bandwidth_ <= 0) {
    throw std::invalid_argument("BandwidthTracker: non-positive BWmax");
  }
}

void BandwidthTracker::Record(const BandwidthSample& sample) {
  if (sample.demand_gbps < 0 || sample.granted_gbps < 0 ||
      sample.suspended_requests < 0 ||
      sample.suspended_requests > sample.active_requests) {
    throw std::invalid_argument("BandwidthTracker: bogus sample");
  }
  if (!samples_.empty()) {
    if (sample.time < samples_.back().time - util::kTimeEpsilon) {
      throw std::logic_error("BandwidthTracker: time went backwards");
    }
    if (sample.time <= samples_.back().time + util::kTimeEpsilon) {
      samples_.back() = sample;
      return;
    }
  }
  samples_.push_back(sample);
}

std::vector<CongestionEpisode> BandwidthTracker::Episodes() const {
  std::vector<CongestionEpisode> episodes;
  bool in_episode = false;
  CongestionEpisode current;
  for (std::size_t i = 0; i < samples_.size(); ++i) {
    const BandwidthSample& s = samples_[i];
    bool congested = s.demand_gbps > max_bandwidth_;
    if (congested && !in_episode) {
      in_episode = true;
      current = CongestionEpisode{s.time, s.time, s.demand_gbps / max_bandwidth_};
    } else if (congested && in_episode) {
      current.peak_overload =
          std::max(current.peak_overload, s.demand_gbps / max_bandwidth_);
    } else if (!congested && in_episode) {
      current.end = s.time;
      episodes.push_back(current);
      in_episode = false;
    }
  }
  if (in_episode) {
    current.end = samples_.back().time;
    episodes.push_back(current);
  }
  return episodes;
}

BandwidthSummary BandwidthTracker::Summarize() const {
  BandwidthSummary summary;
  if (samples_.size() < 2) return summary;
  double span = samples_.back().time - samples_.front().time;
  summary.time_span = span;
  if (span <= 0) return summary;

  double congested_time = 0.0;
  double demand_integral = 0.0;
  double granted_integral = 0.0;
  double wasted_integral = 0.0;
  for (std::size_t i = 0; i + 1 < samples_.size(); ++i) {
    const BandwidthSample& s = samples_[i];
    double dt = samples_[i + 1].time - s.time;
    if (s.demand_gbps > max_bandwidth_) congested_time += dt;
    demand_integral += s.demand_gbps * dt;
    granted_integral += s.granted_gbps * dt;
    double usable = std::min(s.demand_gbps, max_bandwidth_);
    wasted_integral += std::max(0.0, usable - s.granted_gbps) * dt;
  }
  summary.congested_fraction = congested_time / span;
  summary.mean_demand_gbps = demand_integral / span;
  summary.mean_granted_gbps = granted_integral / span;
  summary.mean_wasted_gbps = wasted_integral / span;

  auto episodes = Episodes();
  summary.episode_count = episodes.size();
  double total = 0.0;
  for (const CongestionEpisode& e : episodes) {
    total += e.Duration();
    summary.max_episode_seconds =
        std::max(summary.max_episode_seconds, e.Duration());
  }
  if (!episodes.empty()) {
    summary.mean_episode_seconds = total / static_cast<double>(episodes.size());
  }
  return summary;
}

}  // namespace iosched::metrics
