#include "metrics/timeline.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace iosched::metrics {

namespace {
/// Accumulate `value` over [lo, hi) into the bucketed series (time-weighted
/// mean per bucket).
void Accumulate(TimelineSeries& series, std::vector<double>& weights,
                double lo, double hi, double value) {
  if (hi <= lo) return;
  double rel_lo = lo - series.start_time;
  double rel_hi = hi - series.start_time;
  auto first = static_cast<std::size_t>(
      std::max(0.0, std::floor(rel_lo / series.bucket_seconds)));
  for (std::size_t b = first; b < series.values.size(); ++b) {
    double bucket_lo = static_cast<double>(b) * series.bucket_seconds;
    double bucket_hi = bucket_lo + series.bucket_seconds;
    if (bucket_lo >= rel_hi) break;
    double overlap =
        std::min(bucket_hi, rel_hi) - std::max(bucket_lo, rel_lo);
    if (overlap > 0) {
      series.values[b] += value * overlap;
      weights[b] += overlap;
    }
  }
}

void Normalize(TimelineSeries& series, const std::vector<double>& weights) {
  for (std::size_t b = 0; b < series.values.size(); ++b) {
    if (weights[b] > 0) series.values[b] /= weights[b];
  }
}
}  // namespace

TimelineSeries OccupancyTimeline(const JobRecords& records, int total_nodes,
                                 double bucket_seconds) {
  if (total_nodes <= 0 || bucket_seconds <= 0) {
    throw std::invalid_argument("OccupancyTimeline: bad parameters");
  }
  TimelineSeries series;
  series.bucket_seconds = bucket_seconds;
  if (records.empty()) return series;

  double t0 = records.front().start_time;
  double t1 = records.front().end_time;
  for (const JobRecord& r : records) {
    t0 = std::min(t0, r.start_time);
    t1 = std::max(t1, r.end_time);
  }
  series.start_time = t0;
  auto buckets = static_cast<std::size_t>(
      std::ceil((t1 - t0) / bucket_seconds));
  series.values.assign(std::max<std::size_t>(buckets, 1), 0.0);

  // Sum allocated-node time per bucket, then divide by machine capacity.
  std::vector<double> unused(series.values.size(), 0.0);
  for (const JobRecord& r : records) {
    Accumulate(series, unused, r.start_time, r.end_time,
               static_cast<double>(r.allocated_nodes));
  }
  for (double& v : series.values) {
    v /= bucket_seconds * static_cast<double>(total_nodes);
    v = std::min(v, 1.0);  // partial last bucket round-off
  }
  return series;
}

TimelineSeries DemandTimeline(const BandwidthTracker& tracker,
                              double bucket_seconds) {
  if (bucket_seconds <= 0) {
    throw std::invalid_argument("DemandTimeline: bad bucket size");
  }
  TimelineSeries series;
  series.bucket_seconds = bucket_seconds;
  const auto& samples = tracker.samples();
  if (samples.size() < 2) return series;
  series.start_time = samples.front().time;
  double span = samples.back().time - samples.front().time;
  auto buckets =
      static_cast<std::size_t>(std::ceil(span / bucket_seconds));
  series.values.assign(std::max<std::size_t>(buckets, 1), 0.0);
  std::vector<double> weights(series.values.size(), 0.0);
  for (std::size_t i = 0; i + 1 < samples.size(); ++i) {
    Accumulate(series, weights, samples[i].time, samples[i + 1].time,
               samples[i].demand_gbps / tracker.max_bandwidth());
  }
  Normalize(series, weights);
  return series;
}

std::string RenderTimeline(const TimelineSeries& series, int height,
                           double ceiling, double threshold) {
  if (height <= 0 || ceiling <= 0) {
    throw std::invalid_argument("RenderTimeline: bad height/ceiling");
  }
  if (series.values.empty()) return "(empty timeline)\n";
  std::ostringstream os;
  int threshold_row = -1;
  if (threshold > 0 && threshold <= ceiling) {
    threshold_row = static_cast<int>(
        std::round(threshold / ceiling * height));
  }
  for (int row = height; row >= 1; --row) {
    double row_value = ceiling * row / height;
    os << (row == threshold_row ? '-' : ' ');
    for (double v : series.values) {
      if (v >= row_value - 1e-12) {
        os << '#';
      } else {
        os << (row == threshold_row ? '-' : ' ');
      }
    }
    os << '\n';
  }
  os << '+' << std::string(series.values.size(), '-') << "  (" <<
      series.values.size() << " buckets x " << series.bucket_seconds
     << " s, ceiling " << ceiling << ")\n";
  return os.str();
}

}  // namespace iosched::metrics
