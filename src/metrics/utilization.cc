#include "metrics/utilization.h"

#include <algorithm>
#include <stdexcept>

#include "util/units.h"

namespace iosched::metrics {

UtilizationTracker::UtilizationTracker(int total_nodes)
    : total_nodes_(total_nodes) {
  if (total_nodes <= 0) {
    throw std::invalid_argument("UtilizationTracker: non-positive node count");
  }
}

void UtilizationTracker::Record(sim::SimTime time, int busy_nodes) {
  if (busy_nodes < 0 || busy_nodes > total_nodes_) {
    throw std::invalid_argument("UtilizationTracker: busy nodes out of range");
  }
  if (!times_.empty()) {
    if (time < times_.back() - util::kTimeEpsilon) {
      throw std::logic_error("UtilizationTracker: time went backwards");
    }
    if (time <= times_.back() + util::kTimeEpsilon) {
      busy_.back() = busy_nodes;  // same instant: overwrite
      return;
    }
  }
  // Skip no-op samples to keep the series compact.
  if (!busy_.empty() && busy_.back() == busy_nodes) return;
  times_.push_back(time);
  busy_.push_back(busy_nodes);
}

double UtilizationTracker::BusyNodeSeconds(sim::SimTime t0,
                                           sim::SimTime t1) const {
  if (t1 <= t0 || times_.empty()) return 0.0;
  double total = 0.0;
  for (std::size_t i = 0; i < times_.size(); ++i) {
    sim::SimTime seg_start = times_[i];
    sim::SimTime seg_end =
        i + 1 < times_.size() ? times_[i + 1] : std::max(t1, times_.back());
    double lo = std::max(seg_start, t0);
    double hi = std::min(seg_end, t1);
    if (hi > lo) total += static_cast<double>(busy_[i]) * (hi - lo);
  }
  return total;
}

double UtilizationTracker::Utilization(sim::SimTime t0,
                                       sim::SimTime t1) const {
  if (t1 <= t0) return 0.0;
  return BusyNodeSeconds(t0, t1) /
         (static_cast<double>(total_nodes_) * (t1 - t0));
}

double UtilizationTracker::StableUtilization(double warmup_fraction,
                                             double cooldown_fraction) const {
  if (times_.empty()) return 0.0;
  if (warmup_fraction < 0 || cooldown_fraction < 0 ||
      warmup_fraction + cooldown_fraction >= 1.0) {
    throw std::invalid_argument("StableUtilization: bad window fractions");
  }
  sim::SimTime lo = times_.front();
  sim::SimTime hi = times_.back();
  double span = hi - lo;
  if (span <= 0) return 0.0;
  sim::SimTime t0 = lo + warmup_fraction * span;
  sim::SimTime t1 = hi - cooldown_fraction * span;
  // Float round-off can collapse the trimmed window even when span > 0
  // (fractions summing to just under 1 on a tiny span); a degenerate
  // window has no defined utilization — report idle, not NaN.
  if (t1 <= t0) return 0.0;
  return Utilization(t0, t1);
}

sim::SimTime UtilizationTracker::first_time() const {
  if (times_.empty()) throw std::logic_error("UtilizationTracker: no samples");
  return times_.front();
}

sim::SimTime UtilizationTracker::last_time() const {
  if (times_.empty()) throw std::logic_error("UtilizationTracker: no samples");
  return times_.back();
}

}  // namespace iosched::metrics
