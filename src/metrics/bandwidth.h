// Storage-bandwidth accounting: demand vs grant over time and congestion
// episodes.
//
// The I/O scheduler reports, at every scheduling cycle, the aggregate
// demand (sum of active requests' full rates), the aggregate granted rate,
// and the number of suspended requests. From that step function this module
// derives the paper-relevant facts: how often the storage is congested, how
// long episodes last, how much bandwidth the policy leaves unused while
// requests are suspended (the "waste" the adaptive policy attacks), and
// time-weighted averages.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "ckpt/serializer.h"
#include "sim/time.h"

namespace iosched::metrics {

/// One scheduling-cycle sample.
struct BandwidthSample {
  sim::SimTime time = 0.0;
  /// Sum of active requests' full rates (GB/s).
  double demand_gbps = 0.0;
  /// Sum of granted rates (GB/s).
  double granted_gbps = 0.0;
  /// Requests with a zero grant.
  int suspended_requests = 0;
  /// Total in-flight requests.
  int active_requests = 0;
};

/// A maximal interval during which demand exceeded BWmax.
struct CongestionEpisode {
  sim::SimTime start = 0.0;
  sim::SimTime end = 0.0;
  /// Peak demand/BWmax ratio seen within the episode (>= 1).
  double peak_overload = 1.0;

  double Duration() const { return end - start; }
};

struct BandwidthSummary {
  double time_span = 0.0;
  /// Fraction of time with demand > BWmax.
  double congested_fraction = 0.0;
  std::size_t episode_count = 0;
  double mean_episode_seconds = 0.0;
  double max_episode_seconds = 0.0;
  /// Time-weighted mean demand and grant (GB/s).
  double mean_demand_gbps = 0.0;
  double mean_granted_gbps = 0.0;
  /// Time-weighted mean of (min(demand, BWmax) - granted), the bandwidth
  /// the policy left idle although requests wanted it (GB/s).
  double mean_wasted_gbps = 0.0;
};

class BandwidthTracker {
 public:
  /// `max_bandwidth_gbps` is the BWmax threshold for congestion.
  explicit BandwidthTracker(double max_bandwidth_gbps);

  /// Record a scheduling-cycle sample; times must be non-decreasing.
  /// Samples at the same instant overwrite (last cycle of the instant wins).
  void Record(const BandwidthSample& sample);

  std::size_t sample_count() const { return samples_.size(); }
  const std::vector<BandwidthSample>& samples() const { return samples_; }
  double max_bandwidth() const { return max_bandwidth_; }

  /// Maximal demand>BWmax intervals, in time order.
  std::vector<CongestionEpisode> Episodes() const;

  /// Aggregate the whole series.
  BandwidthSummary Summarize() const;

  /// Serialize the sample series (max_bandwidth_ comes from config).
  void SaveState(ckpt::Writer& w) const {
    w.U32(static_cast<std::uint32_t>(samples_.size()));
    for (const BandwidthSample& s : samples_) {
      w.F64(s.time);
      w.F64(s.demand_gbps);
      w.F64(s.granted_gbps);
      w.I64(s.suspended_requests);
      w.I64(s.active_requests);
    }
  }
  void RestoreState(ckpt::Reader& r) {
    samples_.resize(r.U32());
    for (BandwidthSample& s : samples_) {
      s.time = r.F64();
      s.demand_gbps = r.F64();
      s.granted_gbps = r.F64();
      s.suspended_requests = static_cast<int>(r.I64());
      s.active_requests = static_cast<int>(r.I64());
    }
  }

 private:
  double max_bandwidth_;
  std::vector<BandwidthSample> samples_;
};

}  // namespace iosched::metrics
