// System-utilization accounting (paper Section IV-C).
//
// Utilization = busy node-hours / total node-hours over a window. The
// tracker records the busy-node step function as (time, busy_nodes) change
// points and integrates over any window; reports use the stabilized window
// that excludes the workload's warm-up and cool-down phases, as the paper
// prescribes.
#pragma once

#include <cstdint>
#include <vector>

#include "ckpt/serializer.h"
#include "sim/time.h"

namespace iosched::metrics {

class UtilizationTracker {
 public:
  explicit UtilizationTracker(int total_nodes);

  /// Record that the busy-node count changed to `busy_nodes` at `time`.
  /// Times must be non-decreasing; equal-time updates overwrite.
  void Record(sim::SimTime time, int busy_nodes);

  /// Integral of busy nodes over [t0, t1] in node-seconds. The step function
  /// extends the last sample to t1; before the first sample it is 0.
  double BusyNodeSeconds(sim::SimTime t0, sim::SimTime t1) const;

  /// Mean utilization (0..1) over [t0, t1].
  double Utilization(sim::SimTime t0, sim::SimTime t1) const;

  /// Utilization over the stabilized window: the span [first, last] sample
  /// times shrunk by `warmup_fraction` at the front and `cooldown_fraction`
  /// at the back.
  double StableUtilization(double warmup_fraction,
                           double cooldown_fraction) const;

  int total_nodes() const { return total_nodes_; }
  std::size_t sample_count() const { return times_.size(); }
  sim::SimTime first_time() const;
  sim::SimTime last_time() const;

  /// Serialize the change-point series (total_nodes_ comes from config).
  void SaveState(ckpt::Writer& w) const {
    w.U32(static_cast<std::uint32_t>(times_.size()));
    for (sim::SimTime t : times_) w.F64(t);
    for (int b : busy_) w.I64(b);
  }
  void RestoreState(ckpt::Reader& r) {
    std::uint32_t n = r.U32();
    times_.resize(n);
    busy_.resize(n);
    for (sim::SimTime& t : times_) t = r.F64();
    for (int& b : busy_) b = static_cast<int>(r.I64());
  }

 private:
  int total_nodes_;
  std::vector<sim::SimTime> times_;
  std::vector<int> busy_;
};

}  // namespace iosched::metrics
