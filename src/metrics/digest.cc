#include "metrics/digest.h"

#include <bit>
#include <cstdio>

namespace iosched::metrics {

std::uint64_t FnvMix(std::uint64_t hash, std::uint64_t value) {
  for (int i = 0; i < 8; ++i) {
    hash ^= (value >> (8 * i)) & 0xffULL;
    hash *= kFnvPrime;
  }
  return hash;
}

std::uint64_t FnvMix(std::uint64_t hash, double value) {
  return FnvMix(hash, std::bit_cast<std::uint64_t>(value));
}

std::uint64_t DigestRecords(const JobRecords& records) {
  std::uint64_t h = kFnvOffset;
  h = FnvMix(h, static_cast<std::uint64_t>(records.size()));
  for (const JobRecord& r : records) {
    h = FnvMix(h, static_cast<std::uint64_t>(r.id));
    h = FnvMix(h, static_cast<std::uint64_t>(r.requested_nodes));
    h = FnvMix(h, static_cast<std::uint64_t>(r.allocated_nodes));
    h = FnvMix(h, r.submit_time);
    h = FnvMix(h, r.start_time);
    h = FnvMix(h, r.end_time);
    h = FnvMix(h, r.uncongested_runtime);
    h = FnvMix(h, r.requested_walltime);
    h = FnvMix(h, r.io_time_actual);
    h = FnvMix(h, r.io_time_uncongested);
    h = FnvMix(h, static_cast<std::uint64_t>(r.io_phase_count));
    h = FnvMix(h, static_cast<std::uint64_t>(r.killed ? 1 : 0));
    h = FnvMix(h, static_cast<std::uint64_t>(r.attempts));
    h = FnvMix(h, static_cast<std::uint64_t>(r.abandoned ? 1 : 0));
    h = FnvMix(h, r.lost_seconds);
    // Mixed only when set so runs without checkpoint traffic keep the
    // digests pinned by BENCH_core.json.
    if (r.flush_count != 0)
      h = FnvMix(h, static_cast<std::uint64_t>(r.flush_count));
    if (r.rework_seconds != 0.0) h = FnvMix(h, r.rework_seconds);
  }
  return h;
}

std::string HexDigest(std::uint64_t digest) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "0x%016llx",
                static_cast<unsigned long long>(digest));
  return buf;
}

}  // namespace iosched::metrics
