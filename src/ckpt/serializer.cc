#include "ckpt/serializer.h"

#include <array>
#include <cstring>
#include <stdexcept>
#include <utility>

namespace iosched::ckpt {

void Writer::U32(std::uint32_t v) {
  char raw[4];
  for (int i = 0; i < 4; ++i) raw[i] = static_cast<char>((v >> (8 * i)) & 0xff);
  buffer_.append(raw, 4);
}

void Writer::U64(std::uint64_t v) {
  char raw[8];
  for (int i = 0; i < 8; ++i) raw[i] = static_cast<char>((v >> (8 * i)) & 0xff);
  buffer_.append(raw, 8);
}

void Writer::Str(std::string_view s) {
  U32(static_cast<std::uint32_t>(s.size()));
  buffer_.append(s.data(), s.size());
}

void Writer::Bytes(const void* data, std::size_t size) {
  buffer_.append(static_cast<const char*>(data), size);
}

Reader::Reader(std::string_view data, std::string context)
    : data_(data), context_(std::move(context)) {}

const char* Reader::Take(std::size_t n) {
  if (data_.size() - pos_ < n) {
    throw std::runtime_error("checkpoint " + context_ +
                             ": truncated (wanted " + std::to_string(n) +
                             " bytes at offset " + std::to_string(pos_) +
                             " of " + std::to_string(data_.size()) + ")");
  }
  const char* p = data_.data() + pos_;
  pos_ += n;
  return p;
}

std::uint8_t Reader::U8() {
  return static_cast<std::uint8_t>(*Take(1));
}

bool Reader::Bool() {
  std::uint8_t v = U8();
  if (v > 1) {
    throw std::runtime_error("checkpoint " + context_ +
                             ": malformed bool value " + std::to_string(v));
  }
  return v == 1;
}

std::uint32_t Reader::U32() {
  const char* p = Take(4);
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(static_cast<unsigned char>(p[i]))
         << (8 * i);
  }
  return v;
}

std::uint64_t Reader::U64() {
  const char* p = Take(8);
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(static_cast<unsigned char>(p[i]))
         << (8 * i);
  }
  return v;
}

std::string Reader::Str() {
  std::uint32_t size = U32();
  const char* p = Take(size);
  return std::string(p, size);
}

std::string_view Reader::Raw(std::size_t n) {
  return std::string_view(Take(n), n);
}

void Reader::ExpectEnd() const {
  if (!AtEnd()) {
    throw std::runtime_error("checkpoint " + context_ + ": " +
                             std::to_string(Remaining()) +
                             " unread trailing bytes (layout mismatch)");
  }
}

namespace {
std::array<std::uint32_t, 256> BuildCrcTable() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}
}  // namespace

std::uint32_t Crc32(std::string_view data) {
  static const std::array<std::uint32_t, 256> table = BuildCrcTable();
  std::uint32_t crc = 0xFFFFFFFFu;
  for (char ch : data) {
    crc = table[(crc ^ static_cast<unsigned char>(ch)) & 0xffu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

}  // namespace iosched::ckpt
