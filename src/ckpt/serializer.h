// Flat binary serialization for checkpoint payloads.
//
// Writer appends little-endian fixed-width fields to an in-memory buffer;
// Reader walks the same layout with bounds checks and throws on any
// malformed input instead of reading past the end. Doubles are serialized
// bit-exactly (std::bit_cast to uint64) because resume-equivalence requires
// restored floating-point state to be byte-identical — round-tripping
// through decimal text would lose the last ulp and change digests.
//
// There is no schema: every section owner writes and reads its fields in
// one fixed order, guarded by the file-level format version in
// ckpt::CheckpointFile.
#pragma once

#include <bit>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace iosched::ckpt {

class Writer {
 public:
  void U8(std::uint8_t v) { buffer_.push_back(static_cast<char>(v)); }
  void Bool(bool v) { U8(v ? 1 : 0); }
  void U32(std::uint32_t v);
  void U64(std::uint64_t v);
  void I64(std::int64_t v) { U64(static_cast<std::uint64_t>(v)); }
  void F64(double v) { U64(std::bit_cast<std::uint64_t>(v)); }
  void Str(std::string_view s);
  void Bytes(const void* data, std::size_t size);

  const std::string& buffer() const { return buffer_; }
  std::string TakeBuffer() { return std::move(buffer_); }

 private:
  std::string buffer_;
};

/// Bounds-checked reader over a serialized payload. Throws
/// std::runtime_error (with `context` in the message) on truncation or
/// malformed fields. The payload must outlive the reader.
class Reader {
 public:
  explicit Reader(std::string_view data, std::string context = "payload");

  std::uint8_t U8();
  bool Bool();
  std::uint32_t U32();
  std::uint64_t U64();
  std::int64_t I64() { return static_cast<std::int64_t>(U64()); }
  double F64() { return std::bit_cast<double>(U64()); }
  std::string Str();
  /// Raw view of the next `n` bytes (valid while the payload lives).
  std::string_view Raw(std::size_t n);

  std::size_t Remaining() const { return data_.size() - pos_; }
  bool AtEnd() const { return pos_ == data_.size(); }
  /// Throws unless the whole payload was consumed — catches section layouts
  /// drifting out of sync between writer and reader.
  void ExpectEnd() const;

 private:
  const char* Take(std::size_t n);

  std::string_view data_;
  std::size_t pos_ = 0;
  std::string context_;
};

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) over `data`.
std::uint32_t Crc32(std::string_view data);

}  // namespace iosched::ckpt
