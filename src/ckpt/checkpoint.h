// Self-describing checkpoint container.
//
// Layout (all integers little-endian):
//   magic            8 bytes  "IOSCKPT1"
//   format_version   u32      bumped on any incompatible layout change
//   config_hash      u64      fingerprint of the run configuration +
//                             workload; a resume against a different
//                             config must fail, not silently diverge
//   section_count    u32
//   per section:
//     name           u32 length + bytes
//     payload_size   u64
//     payload_crc    u32      CRC-32 of the payload bytes
//     payload        payload_size bytes
//
// Every section's CRC is verified at load time, so a torn or bit-flipped
// file surfaces as CrcError before any state is restored. Files are
// published with util::AtomicFileWriter (temp + fsync + rename), so a crash
// during a save can never leave a half-written checkpoint under the final
// name — at worst a stale *.tmpXXXXXX sibling.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace iosched::ckpt {

/// Base class for everything that can go wrong loading a checkpoint.
class CheckpointError : public std::runtime_error {
  using std::runtime_error::runtime_error;
};
/// Structural damage: bad magic, truncation, missing section.
class FormatError : public CheckpointError {
  using CheckpointError::CheckpointError;
};
/// File was written by an incompatible format version.
class VersionError : public CheckpointError {
  using CheckpointError::CheckpointError;
};
/// A section's payload does not match its recorded CRC (bit rot, torn
/// write that somehow reached the final name, manual tampering).
class CrcError : public CheckpointError {
  using CheckpointError::CheckpointError;
};
/// The checkpoint was taken under a different configuration or workload.
class ConfigMismatchError : public CheckpointError {
  using CheckpointError::CheckpointError;
};

inline constexpr std::string_view kMagic = "IOSCKPT1";
inline constexpr std::uint32_t kFormatVersion = 1;

/// In-memory checkpoint: named binary sections plus the config hash.
/// Built section-by-section on save; fully decoded and CRC-verified on
/// load.
class CheckpointFile {
 public:
  void SetConfigHash(std::uint64_t hash) { config_hash_ = hash; }
  std::uint64_t config_hash() const { return config_hash_; }

  void AddSection(std::string name, std::string payload);

  bool HasSection(std::string_view name) const;
  /// Throws FormatError if the section is absent.
  std::string_view Section(std::string_view name) const;

  /// Serializes to the on-disk byte layout.
  std::string Encode() const;
  /// Encode + atomic publish (temp + fsync + rename).
  void WriteAtomic(const std::string& path) const;

  /// Parses and CRC-verifies `bytes`. `context` (typically the path) is
  /// included in error messages. Throws FormatError / VersionError /
  /// CrcError.
  static CheckpointFile Decode(std::string_view bytes,
                               const std::string& context);
  /// Reads the whole file and decodes it.
  static CheckpointFile Load(const std::string& path);

 private:
  std::uint64_t config_hash_ = 0;
  std::vector<std::pair<std::string, std::string>> sections_;
};

/// Checkpoint/resume knobs, filled from the [checkpoint] INI section or CLI
/// flags. Checkpointing is active when `directory` is non-empty and at
/// least one trigger is enabled.
struct Options {
  /// Where periodic checkpoints land; empty disables checkpointing.
  std::string directory;
  /// Save every N simulated seconds (<= 0 disables this trigger).
  double every_sim_seconds = 0.0;
  /// Save every N processed events (0 disables; the deterministic trigger
  /// used by resume-equivalence tests).
  std::uint64_t every_events = 0;
  /// Save every N wall-clock seconds (<= 0 disables this trigger).
  double every_wall_seconds = 0.0;
  /// Keep the newest N periodic checkpoints, pruning older ones after each
  /// successful save (<= 0 keeps everything).
  int keep_last = 3;
  /// Explicit checkpoint file to restore before running; empty = none.
  std::string resume_from;
  /// Scan `directory` for the newest valid checkpoint and resume from it
  /// (falling back to older ones on CRC/format damage). No-op when the
  /// directory holds no usable checkpoint.
  bool resume_latest = false;

  bool SavingEnabled() const {
    return !directory.empty() &&
           (every_sim_seconds > 0 || every_events > 0 ||
            every_wall_seconds > 0);
  }
};

/// "<dir>/ckpt-<seq, zero-padded>.iosckpt".
std::string CheckpointFileName(const std::string& directory,
                               std::uint64_t sequence);

/// Checkpoints in `directory`, sorted by ascending sequence number.
/// Returns empty if the directory does not exist.
std::vector<std::pair<std::uint64_t, std::string>> ListCheckpoints(
    const std::string& directory);

/// One past the highest existing sequence number (1 for an empty dir).
std::uint64_t NextSequence(const std::string& directory);

/// Removes all but the newest `keep_last` checkpoints (no-op if
/// keep_last <= 0).
void PruneOld(const std::string& directory, int keep_last);

/// Newest checkpoint in `directory` that decodes cleanly and matches
/// `expected_config_hash`; damaged or mismatched files are skipped (noted
/// in `*diagnostic` when non-null). Returns "" when none qualifies.
std::string FindLatestValid(const std::string& directory,
                            std::uint64_t expected_config_hash,
                            std::string* diagnostic = nullptr);

}  // namespace iosched::ckpt
