#include "ckpt/checkpoint.h"

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "ckpt/serializer.h"
#include "util/atomic_file.h"

namespace iosched::ckpt {

namespace fs = std::filesystem;

void CheckpointFile::AddSection(std::string name, std::string payload) {
  for (const auto& [existing, _] : sections_) {
    if (existing == name) {
      throw std::logic_error("checkpoint: duplicate section '" + name + "'");
    }
  }
  sections_.emplace_back(std::move(name), std::move(payload));
}

bool CheckpointFile::HasSection(std::string_view name) const {
  for (const auto& [existing, _] : sections_) {
    if (existing == name) return true;
  }
  return false;
}

std::string_view CheckpointFile::Section(std::string_view name) const {
  for (const auto& [existing, payload] : sections_) {
    if (existing == name) return payload;
  }
  throw FormatError("checkpoint: missing section '" + std::string(name) +
                    "'");
}

std::string CheckpointFile::Encode() const {
  Writer w;
  w.Bytes(kMagic.data(), kMagic.size());
  w.U32(kFormatVersion);
  w.U64(config_hash_);
  w.U32(static_cast<std::uint32_t>(sections_.size()));
  for (const auto& [name, payload] : sections_) {
    w.Str(name);
    w.U64(payload.size());
    w.U32(Crc32(payload));
    w.Bytes(payload.data(), payload.size());
  }
  return w.TakeBuffer();
}

void CheckpointFile::WriteAtomic(const std::string& path) const {
  util::WriteFileAtomic(path, Encode());
}

CheckpointFile CheckpointFile::Decode(std::string_view bytes,
                                      const std::string& context) {
  if (bytes.size() < kMagic.size() ||
      bytes.substr(0, kMagic.size()) != kMagic) {
    throw FormatError("checkpoint '" + context +
                      "': bad magic (not a checkpoint file)");
  }
  Reader r(bytes.substr(kMagic.size()), "'" + context + "' header");
  std::uint32_t version;
  std::uint64_t config_hash;
  std::uint32_t section_count;
  try {
    version = r.U32();
    config_hash = r.U64();
    section_count = r.U32();
  } catch (const std::runtime_error& e) {
    throw FormatError(e.what());
  }
  if (version != kFormatVersion) {
    throw VersionError("checkpoint '" + context + "': format version " +
                       std::to_string(version) + " (this build reads only " +
                       std::to_string(kFormatVersion) + ")");
  }
  CheckpointFile file;
  file.config_hash_ = config_hash;
  file.sections_.reserve(section_count);
  for (std::uint32_t i = 0; i < section_count; ++i) {
    std::string name;
    std::uint64_t size;
    std::uint32_t crc;
    try {
      name = r.Str();
      size = r.U64();
      crc = r.U32();
    } catch (const std::runtime_error& e) {
      throw FormatError(e.what());
    }
    if (r.Remaining() < size) {
      throw FormatError("checkpoint '" + context + "': section '" + name +
                        "' truncated (declares " + std::to_string(size) +
                        " bytes, " + std::to_string(r.Remaining()) +
                        " remain)");
    }
    std::string payload(r.Raw(size));
    if (Crc32(payload) != crc) {
      throw CrcError("checkpoint '" + context + "': CRC mismatch in section '" +
                     name + "' (file is corrupt)");
    }
    file.sections_.emplace_back(std::move(name), std::move(payload));
  }
  try {
    r.ExpectEnd();
  } catch (const std::runtime_error& e) {
    throw FormatError(e.what());
  }
  return file;
}

CheckpointFile CheckpointFile::Load(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    int err = errno;
    throw FormatError("checkpoint '" + path +
                      "': cannot open: " + std::strerror(err));
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) {
    throw FormatError("checkpoint '" + path + "': read error");
  }
  return Decode(buffer.str(), path);
}

namespace {
constexpr std::string_view kFilePrefix = "ckpt-";
constexpr std::string_view kFileSuffix = ".iosckpt";
}  // namespace

std::string CheckpointFileName(const std::string& directory,
                               std::uint64_t sequence) {
  std::string seq = std::to_string(sequence);
  if (seq.size() < 6) seq.insert(0, 6 - seq.size(), '0');
  return directory + "/" + std::string(kFilePrefix) + seq +
         std::string(kFileSuffix);
}

std::vector<std::pair<std::uint64_t, std::string>> ListCheckpoints(
    const std::string& directory) {
  std::vector<std::pair<std::uint64_t, std::string>> found;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(directory, ec)) {
    if (!entry.is_regular_file()) continue;
    std::string name = entry.path().filename().string();
    if (name.size() <= kFilePrefix.size() + kFileSuffix.size()) continue;
    if (name.compare(0, kFilePrefix.size(), kFilePrefix) != 0) continue;
    if (name.compare(name.size() - kFileSuffix.size(), kFileSuffix.size(),
                     kFileSuffix) != 0) {
      continue;
    }
    std::string digits = name.substr(
        kFilePrefix.size(),
        name.size() - kFilePrefix.size() - kFileSuffix.size());
    if (digits.empty() ||
        digits.find_first_not_of("0123456789") != std::string::npos) {
      continue;
    }
    found.emplace_back(std::stoull(digits), entry.path().string());
  }
  std::sort(found.begin(), found.end());
  return found;
}

std::uint64_t NextSequence(const std::string& directory) {
  auto existing = ListCheckpoints(directory);
  return existing.empty() ? 1 : existing.back().first + 1;
}

void PruneOld(const std::string& directory, int keep_last) {
  if (keep_last <= 0) return;
  auto existing = ListCheckpoints(directory);
  if (existing.size() <= static_cast<std::size_t>(keep_last)) return;
  std::size_t drop = existing.size() - static_cast<std::size_t>(keep_last);
  for (std::size_t i = 0; i < drop; ++i) {
    std::error_code ec;
    fs::remove(existing[i].second, ec);  // best effort; stale files are inert
  }
}

std::string FindLatestValid(const std::string& directory,
                            std::uint64_t expected_config_hash,
                            std::string* diagnostic) {
  auto existing = ListCheckpoints(directory);
  for (auto it = existing.rbegin(); it != existing.rend(); ++it) {
    try {
      CheckpointFile file = CheckpointFile::Load(it->second);
      if (file.config_hash() != expected_config_hash) {
        if (diagnostic != nullptr) {
          *diagnostic += "skipped '" + it->second +
                         "': config hash mismatch (checkpoint was taken "
                         "under a different configuration)\n";
        }
        continue;
      }
      return it->second;
    } catch (const CheckpointError& e) {
      if (diagnostic != nullptr) {
        *diagnostic += std::string("skipped '") + it->second +
                       "': " + e.what() + "\n";
      }
    }
  }
  return {};
}

}  // namespace iosched::ckpt
