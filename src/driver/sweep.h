// Unified sweep API: one declarative SweepSpec covers policies ×
// expansion factors × BB capacities, optionally parallel and optionally
// crash-safe. This is the only sweep entrypoint — the former
// RunPolicySweep / RunExpansionSweep / RunResumablePolicySweep wrappers
// have been removed; build a SweepSpec instead.
//
//   driver::SweepSpec spec;
//   spec.scenario = &scenario;
//   spec.policies = {"BASE_LINE", "ADAPTIVE"};
//   spec.bb_capacities_gb = {0, 1000, 4000, 16000};
//   spec.bb_drain_gbps = 25.0;
//   driver::SweepResult result = driver::RunSweep(spec);
//   std::puts(driver::BbCapacityTable(result).ToString().c_str());
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "core/simulation.h"
#include "driver/experiment.h"
#include "driver/resumable.h"
#include "driver/scenario.h"
#include "util/table.h"
#include "util/thread_pool.h"

namespace iosched::driver {

/// Declarative description of a sweep. Unset axes collapse to a single
/// implicit variant that leaves the scenario untouched, so the smallest
/// spec (scenario + one policy) is exactly one simulation.
struct SweepSpec {
  /// Base scenario; must outlive RunSweep. Required.
  const Scenario* scenario = nullptr;
  /// I/O policies to run (see core::AllPolicyNames()). Required, non-empty.
  std::vector<std::string> policies;
  /// Expansion-factor axis (paper Fig. 11). Empty = run the scenario's own
  /// workload; non-empty = each factor gets a "<name>/EF=<f>%" variant
  /// (including 1.0, which is renamed too).
  std::vector<double> expansion_factors;
  /// Burst-buffer capacity axis (GB). Empty = keep the scenario's own
  /// burst-buffer config; non-empty = each entry gets a "<name>/BB=..."
  /// variant where 0 disables the tier and a positive capacity enables it
  /// with `bb_drain_gbps` (and the optional knobs below).
  std::vector<double> bb_capacities_gb;
  /// PFS drain rate reserved by the enabled BB variants (GB/s). Must be
  /// positive and below the scenario's storage BWmax when any capacity in
  /// `bb_capacities_gb` is positive.
  double bb_drain_gbps = 0.0;
  /// Optional BB knobs applied to the enabled variants (see
  /// storage::BurstBufferConfig for semantics).
  double bb_absorb_gbps = 0.0;
  double bb_per_job_quota_gb = 0.0;
  double bb_congestion_watermark = 0.9;
  /// When non-null, cells run concurrently (ignored for resumable sweeps,
  /// which are sequential by design).
  util::ThreadPool* pool = nullptr;
  /// When set, every cell runs through a ResumableRunner rooted here:
  /// finished cells are skipped on re-invocation and interrupted cells
  /// resume from their checkpoints. Cell names are
  /// "<variant scenario name>/<policy>".
  std::optional<ResumableRunner::Options> resumable;

  /// Full list of problems with this spec (empty = valid). RunSweep calls
  /// this and throws core::ConfigValidationError when anything is wrong.
  std::vector<core::ConfigIssue> Validate() const;
};

/// Sweep output: the runs plus the axes that shaped them, so tables and
/// CSV emitters need no side-band bookkeeping. `runs` is row-major
/// [expansion factor][BB capacity][policy]; collapsed axes have exactly
/// one entry (factor 1.0 / the scenario's own capacity).
struct SweepResult {
  std::vector<std::string> policies;
  std::vector<double> expansion_factors;
  std::vector<double> bb_capacities_gb;
  std::vector<PolicyRun> runs;

  std::size_t ef_count() const { return expansion_factors.size(); }
  std::size_t bb_count() const { return bb_capacities_gb.size(); }
  std::size_t policy_count() const { return policies.size(); }

  /// Bounds-checked row-major access (throws std::out_of_range).
  const PolicyRun& At(std::size_t ef, std::size_t bb,
                      std::size_t policy) const;
};

/// Run every cell of `spec`. Throws core::ConfigValidationError on an
/// invalid spec; individual cells propagate the usual RunSimulation /
/// ResumableRunner exceptions.
SweepResult RunSweep(const SweepSpec& spec);

/// Burst-buffer capacity sensitivity table: rows = capacities ("off" for
/// 0), columns = policies, cells = average wait time in minutes with the
/// absorbed-request share in parentheses. Uses the first expansion-factor
/// slice.
util::Table BbCapacityTable(const SweepResult& result);

}  // namespace iosched::driver
