#include "driver/sweep.h"

#include <cctype>
#include <chrono>
#include <cstdio>
#include <stdexcept>
#include <utility>

#include "core/policy_factory.h"
#include "util/units.h"

namespace iosched::driver {

namespace {

/// "off" for a disabled tier, "2000GB"-style otherwise (matches the %g
/// rendering WithExpansionFactor uses for its EF suffix).
std::string BbLabel(double capacity_gb) {
  if (capacity_gb <= 0) return "off";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%gGB", capacity_gb);
  return buf;
}

}  // namespace

std::vector<core::ConfigIssue> SweepSpec::Validate() const {
  std::vector<core::ConfigIssue> issues;
  auto add = [&issues](const char* field, std::string message) {
    issues.push_back({field, std::move(message)});
  };
  if (scenario == nullptr) add("scenario", "must be set");
  if (policies.empty()) add("policies", "must name at least one policy");
  for (const std::string& policy : policies) {
    if (!core::KnownPolicyName(policy)) {
      add("policies", "unknown policy \"" + policy + "\" (known: " +
                          core::PolicyNamesHelp() + ")");
    }
  }
  for (double factor : expansion_factors) {
    if (factor <= 0) {
      add("expansion_factors", "factors must be positive");
      break;
    }
  }
  bool any_bb = false;
  for (double capacity : bb_capacities_gb) {
    if (capacity < 0) {
      add("bb_capacities_gb", "capacities must be >= 0 (0 = tier off)");
      break;
    }
    any_bb = any_bb || capacity > 0;
  }
  if (any_bb) {
    if (bb_drain_gbps <= 0) {
      add("bb_drain_gbps",
          "must be positive when any BB capacity is enabled");
    } else if (scenario != nullptr &&
               bb_drain_gbps >= scenario->config.storage.max_bandwidth_gbps) {
      add("bb_drain_gbps",
          "must stay below the scenario's storage BWmax");
    }
    if (bb_absorb_gbps < 0) add("bb_absorb_gbps", "must be >= 0");
    if (bb_per_job_quota_gb < 0) {
      add("bb_per_job_quota_gb", "must be >= 0");
    }
    if (bb_congestion_watermark <= 0 || bb_congestion_watermark > 1) {
      add("bb_congestion_watermark", "must be in (0, 1]");
    }
  }
  return issues;
}

const PolicyRun& SweepResult::At(std::size_t ef, std::size_t bb,
                                 std::size_t policy) const {
  if (ef >= ef_count() || bb >= bb_count() || policy >= policy_count()) {
    throw std::out_of_range("SweepResult::At: index out of range");
  }
  return runs.at((ef * bb_count() + bb) * policy_count() + policy);
}

SweepResult RunSweep(const SweepSpec& spec) {
  std::vector<core::ConfigIssue> issues = spec.Validate();
  if (!issues.empty()) {
    throw core::ConfigValidationError(std::move(issues));
  }
  const Scenario& base = *spec.scenario;
  const bool ef_axis = !spec.expansion_factors.empty();
  const bool bb_axis = !spec.bb_capacities_gb.empty();

  SweepResult result;
  result.policies = spec.policies;
  result.expansion_factors =
      ef_axis ? spec.expansion_factors : std::vector<double>{1.0};
  result.bb_capacities_gb =
      bb_axis ? spec.bb_capacities_gb
              : std::vector<double>{base.config.burst_buffer.capacity_gb};

  // Materialize the variant scenarios, row-major [ef][bb]. A collapsed
  // axis leaves the scenario untouched — names and configs then match what
  // the pre-SweepSpec entrypoints produced, which keeps resumable cell
  // directories (keyed by name + config hash) reusable across the API
  // change.
  std::vector<Scenario> variants;
  variants.reserve(result.ef_count() * result.bb_count());
  for (std::size_t f = 0; f < result.ef_count(); ++f) {
    Scenario scaled =
        ef_axis ? WithExpansionFactor(base, result.expansion_factors[f])
                : base;
    for (std::size_t b = 0; b < result.bb_count(); ++b) {
      Scenario variant = scaled;
      if (bb_axis) {
        double capacity = result.bb_capacities_gb[b];
        variant.config.burst_buffer = storage::BurstBufferConfig{};
        if (capacity > 0) {
          variant.config.burst_buffer.capacity_gb = capacity;
          variant.config.burst_buffer.drain_gbps = spec.bb_drain_gbps;
          variant.config.burst_buffer.absorb_gbps = spec.bb_absorb_gbps;
          variant.config.burst_buffer.per_job_quota_gb =
              spec.bb_per_job_quota_gb;
          variant.config.burst_buffer.congestion_watermark =
              spec.bb_congestion_watermark;
        }
        variant.name += "/BB=" + BbLabel(capacity);
      }
      variants.push_back(std::move(variant));
    }
  }

  const std::size_t policy_count = result.policy_count();
  result.runs.resize(variants.size() * policy_count);

  if (spec.resumable.has_value()) {
    // Crash-safe path: sequential by design (each cell is individually
    // checkpointed and watchdog-protected; see ResumableRunner).
    ResumableRunner runner(*spec.resumable);
    for (std::size_t v = 0; v < variants.size(); ++v) {
      for (std::size_t p = 0; p < policy_count; ++p) {
        const Scenario& variant = variants[v];
        SweepCell cell;
        cell.name = variant.name + "/" + spec.policies[p];
        cell.config = variant.config;
        cell.config.policy = spec.policies[p];
        cell.jobs = &variant.jobs;
        auto t0 = std::chrono::steady_clock::now();
        CellOutcome outcome = runner.Run(cell);
        auto t1 = std::chrono::steady_clock::now();
        PolicyRun run;
        run.policy = outcome.policy_name;
        run.scenario = variant.name;
        run.report = outcome.report;
        run.events_processed = outcome.events_processed;
        run.io_cycles = outcome.io_cycles;
        run.wall_seconds =
            outcome.reused
                ? 0.0
                : std::chrono::duration<double>(t1 - t0).count();
        run.bb_capacity_gb = cell.config.burst_buffer.capacity_gb;
        run.bb_absorbed_gb = outcome.bb_absorbed_gb;
        run.bb_absorbed_requests = outcome.bb_absorbed_requests;
        run.bb_spilled_requests = outcome.bb_spilled_requests;
        run.bb_peak_queued_gb = outcome.bb_peak_queued_gb;
        run.bb_mean_occupancy = outcome.bb_mean_occupancy;
        result.runs[v * policy_count + p] = std::move(run);
      }
    }
    return result;
  }

  auto run_cell = [&](std::size_t cell) {
    result.runs[cell] = RunSingle(variants[cell / policy_count],
                                  spec.policies[cell % policy_count]);
  };
  if (spec.pool != nullptr && result.runs.size() > 1) {
    spec.pool->ParallelFor(result.runs.size(), run_cell);
  } else {
    for (std::size_t cell = 0; cell < result.runs.size(); ++cell) {
      run_cell(cell);
    }
  }
  return result;
}

util::Table BbCapacityTable(const SweepResult& result) {
  if (result.runs.empty()) {
    throw std::invalid_argument("BbCapacityTable: empty sweep result");
  }
  std::vector<std::string> headers = {"BB capacity"};
  for (const std::string& policy : result.policies) {
    headers.push_back(policy);
  }
  util::Table table(headers);
  for (std::size_t b = 0; b < result.bb_count(); ++b) {
    std::vector<std::string> row = {BbLabel(result.bb_capacities_gb[b])};
    for (std::size_t p = 0; p < result.policy_count(); ++p) {
      const PolicyRun& run = result.At(0, b, p);
      std::uint64_t attempted =
          run.bb_absorbed_requests + run.bb_spilled_requests;
      double share =
          attempted > 0 ? static_cast<double>(run.bb_absorbed_requests) /
                              static_cast<double>(attempted)
                        : 0.0;
      row.push_back(
          util::Table::Num(
              util::SecondsToMinutes(run.report.avg_wait_seconds), 1) +
          " (" + util::Table::Num(share * 100.0, 0) + "% abs)");
    }
    table.AddRow(row);
  }
  return table;
}

}  // namespace iosched::driver
