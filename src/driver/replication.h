// Replication support: run a policy over several independently seeded
// instances of the same workload model and aggregate mean/stddev of each
// metric. The paper reports single-trace numbers; replications show which
// policy gaps are robust and which are month-to-month noise.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "driver/scenario.h"
#include "util/table.h"
#include "util/thread_pool.h"

namespace iosched::driver {

/// Scenario factory: given a seed, produce the workload instance.
using ScenarioFactory = std::function<Scenario(std::uint64_t seed)>;

/// Mean and sample stddev of one metric across replications.
struct MetricStats {
  double mean = 0.0;
  double stddev = 0.0;
  std::size_t n = 0;
};

struct ReplicatedRun {
  std::string policy;
  MetricStats wait_seconds;
  MetricStats response_seconds;
  MetricStats utilization;
  MetricStats runtime_expansion;
};

/// Run every (policy, seed) combination and aggregate per policy. Results
/// follow `policies` order. When `pool` is non-null the runs execute
/// concurrently; aggregation is order-independent, so results are
/// deterministic either way.
std::vector<ReplicatedRun> RunReplications(
    const ScenarioFactory& factory, std::span<const std::uint64_t> seeds,
    std::span<const std::string> policies, util::ThreadPool* pool = nullptr);

/// A factory for evaluation month `index` with variable seed.
ScenarioFactory EvaluationMonthFactory(int index, double duration_days);

/// Render: avg wait mean +- stddev (minutes) and change vs the first policy.
util::Table ReplicationTable(std::span<const ReplicatedRun> runs);

}  // namespace iosched::driver
