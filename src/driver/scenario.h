// Evaluation scenarios: the single source of truth for the workloads and
// system configuration used by the paper-reproduction benchmarks, the
// examples, and the integration tests.
#pragma once

#include <cstdint>
#include <string>

#include "core/simulation.h"
#include "workload/synthetic.h"
#include "workload/workload.h"

namespace iosched::driver {

struct Scenario {
  std::string name;
  workload::Workload jobs;
  core::SimulationConfig config;
};

/// The paper's evaluation month WL<index> (index 1..3) on the Mira model.
/// `duration_days` can shrink the month for quick runs (tests use 4-8 days;
/// the benchmarks use the full 30).
Scenario MakeEvaluationScenario(int index, double duration_days = 30.0);

/// A year-scale throughput scenario on the Mira model: ~2,800 scaled-down
/// jobs per day, so the default 365 days generate just over one million
/// jobs. The mix trades the evaluation months' capability-class footprint
/// (big nodes, day-long runtimes) for throughput-class jobs (mean ~750
/// nodes, ~20 min runtimes) so the machine sustains the arrival rate at
/// ~65% utilization instead of building an unbounded backlog. Deterministic
/// in `duration_days`; shrink it for smoke runs and mode-equality tests.
Scenario MakeYearScenario(double duration_days = 365.0);

/// A reduced-scale scenario (Small machine, few days, scaled BWmax) used by
/// unit/integration tests so they run in milliseconds. The storage cap is
/// scaled with the machine so the congestion regime matches Mira's
/// (aggregate link demand ~6x the storage bandwidth).
Scenario MakeTestScenario(std::uint64_t seed, double duration_days = 2.0,
                          double jobs_per_day = 260.0);

/// Apply the paper's sensitivity-study knob: scale every job's I/O volume
/// by `expansion_factor` (EF). Returns a renamed copy.
Scenario WithExpansionFactor(const Scenario& base, double expansion_factor);

}  // namespace iosched::driver
