#include "driver/chaos.h"

#include <exception>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "core/invariants.h"
#include "core/policy_factory.h"
#include "core/simulation.h"
#include "driver/scenario.h"
#include "driver/watchdog.h"
#include "metrics/digest.h"
#include "util/rng.h"
#include "workload/app_checkpoint.h"

namespace iosched::driver {
namespace {

/// RNG stream for chaos-schedule randomization (17/23/29/31/37 are taken by
/// the engine; see util::Rng usage notes in the respective subsystems).
constexpr std::uint64_t kChaosStream = 41;

/// Draw one randomized fault schedule for seed `seed`. Every knob the fault
/// model exposes is exercised somewhere across the soak: storage
/// degradations, midplane outages, mid-run kills, lossy and lossless BB
/// capacity faults, drain degradations, and transfer stragglers.
faults::FaultPlanConfig DrawPlanConfig(std::uint64_t seed) {
  util::Rng rng(seed, kChaosStream);
  faults::FaultPlanConfig fp;
  fp.enabled = true;
  fp.seed = seed;
  fp.degraded_fraction = rng.Uniform(0.0, 0.3);
  fp.degradation_factor = rng.Uniform(0.3, 1.0);
  fp.degraded_window_seconds = 1800.0;
  fp.midplane_outages = static_cast<int>(rng.UniformInt(0, 2));
  fp.midplane_outage_seconds = rng.Uniform(600.0, 7200.0);
  fp.job_kill_probability = rng.Uniform(0.0, 0.05);
  fp.bb_faults = static_cast<int>(rng.UniformInt(0, 2));
  fp.bb_fault_seconds = rng.Uniform(600.0, 3600.0);
  fp.bb_fault_lose_data = rng.Bernoulli(0.5);
  fp.drain_degraded_fraction = rng.Uniform(0.0, 0.3);
  fp.drain_degradation_factor = rng.Uniform(0.3, 1.0);
  fp.drain_window_seconds = 3600.0;
  fp.straggler_probability = rng.Uniform(0.0, 0.3);
  fp.straggler_factor = rng.Uniform(0.1, 0.6);
  return fp;
}

/// The common scenario for schedule `seed`: reduced-scale workload plus a
/// burst buffer, transfer timeouts, jittered scheduler backoff, and the
/// invariant checker — i.e. every robustness path armed at once.
Scenario MakeChaosScenario(std::uint64_t seed, const ChaosOptions& options) {
  Scenario scenario =
      MakeTestScenario(seed, options.duration_days, options.jobs_per_day);
  scenario.name = "chaos-" + std::to_string(seed);
  // Sized against MakeTestScenario's workload (phases of a few hundred GB):
  // the capacity fits a handful of phases so absorbs and capacity spills
  // both happen, and the slow absorb tier stretches absorptions to minutes
  // — long enough for straggler draws to blow the 900 s deadline (spill to
  // the direct path) and for lossy BB faults to catch absorbs in flight
  // (re-flush).
  scenario.config.burst_buffer = {.capacity_gb = 4000.0,
                                  .drain_gbps = 5.0,
                                  .absorb_gbps = 2.0,
                                  .per_job_quota_gb = 0.0,
                                  .congestion_watermark = 0.8};
  scenario.config.faults.plan_config = DrawPlanConfig(seed);
  scenario.config.transfer_retry = {.timeout_seconds = 900.0,
                                    .max_retries = 3,
                                    .backoff_base_seconds = 30.0,
                                    .backoff_max_seconds = 600.0,
                                    .backoff_jitter_fraction = 0.2,
                                    .jitter_seed = seed};
  scenario.config.batch.backoff_jitter_fraction = 0.1;
  scenario.config.batch.backoff_jitter_seed = seed;
  scenario.config.check_invariants = true;
  scenario.config.invariant_check_every_events =
      options.invariant_check_every_events;
  // Every fourth schedule additionally arms the application-resilience
  // stack: Young/Daly checkpoint traffic rewritten into the workload, the
  // MTBF failure process, restart-from-checkpoint semantics, and deferrable
  // flushes — so flush parking/forced release, durable-marker settling, and
  // rework accounting all soak against the same fault schedules as the base
  // cells. The short MTBF keeps flush phases and failures frequent inside
  // the reduced-duration run.
  if (seed % 4 == 3) {
    workload::AppCheckpointConfig ac;
    ac.enabled = true;
    ac.mtbf_seconds = 1800.0;
    ac.min_interval_seconds = 60.0;
    ac.min_compute_seconds = 120.0;
    ac.seed = seed;
    workload::ApplyCheckpointTraffic(
        scenario.jobs, ac, scenario.config.machine.node_bandwidth_gbps);
    scenario.config.app_checkpoint.enabled = true;
    scenario.config.app_checkpoint.max_defer_seconds = 300.0;
    scenario.config.faults.plan_config.job_mtbf_seconds = 1800.0;
    scenario.config.faults.restart_mode =
        faults::RestartMode::kRestartFromAppCheckpoint;
  }
  return scenario;
}

struct CellRun {
  std::uint64_t digest = 0;
  core::SimulationResult result;
  std::string error;
};

/// Execute one cell run under an optional watchdog, translating every
/// failure mode into an error string instead of propagating.
CellRun ExecuteOnce(const Scenario& scenario, const std::string& policy,
                    const ChaosOptions& options) {
  CellRun run;
  core::SimulationConfig config = scenario.config;
  config.policy = policy;
  core::RunControl control;
  config.control = &control;
  try {
    std::unique_ptr<Watchdog> watchdog;
    if (options.watchdog_seconds > 0) {
      watchdog = std::make_unique<Watchdog>(
          control, Watchdog::Options{
                       .no_progress_seconds = options.watchdog_seconds,
                       .poll_interval_seconds = 0.25,
                   });
    }
    run.result = core::RunSimulation(config, scenario.jobs);
    if (watchdog != nullptr) watchdog->Stop();
    run.digest = metrics::DigestRecords(run.result.records);
  } catch (const core::InvariantViolation& e) {
    run.error = std::string("invariant violation: ") + e.what();
  } catch (const core::SimulationAborted& e) {
    run.error = std::string("stuck run: ") + e.what();
  } catch (const std::exception& e) {
    run.error = std::string("engine error: ") + e.what();
  }
  return run;
}

}  // namespace

ChaosSummary RunChaos(const ChaosOptions& options) {
  if (options.schedules <= 0) {
    throw std::invalid_argument("RunChaos: schedules must be positive");
  }
  std::vector<std::string> policies = options.policies;
  if (policies.empty()) policies = core::AllPolicyNames();
  for (const std::string& policy : policies) {
    core::MakePolicy(policy);  // throws on unknown names before any run
  }

  ChaosSummary summary;
  summary.cells.reserve(
      static_cast<std::size_t>(options.schedules) * policies.size());
  for (int s = 0; s < options.schedules; ++s) {
    const std::uint64_t seed = options.base_seed + static_cast<std::uint64_t>(s);
    Scenario scenario = MakeChaosScenario(seed, options);
    for (const std::string& policy : policies) {
      ChaosCell cell;
      cell.schedule = s;
      cell.seed = seed;
      cell.policy = policy;
      CellRun first = ExecuteOnce(scenario, policy, options);
      cell.error = first.error;
      if (first.error.empty()) {
        cell.digest = first.digest;
        cell.jobs = first.result.records.size();
        cell.events = first.result.events_processed;
        cell.invariant_checks = first.result.invariant_checks;
        cell.fault_kills = first.result.faults.fault_kills;
        cell.transfer_timeouts = first.result.transfer_timeouts;
        cell.transfer_retries = first.result.transfer_retries;
        cell.straggler_spills = first.result.straggler_spills;
        cell.bb_reflushed_requests = first.result.bb_reflushed_requests;
        cell.flushes = first.result.report.total_flushes;
        cell.flush_deferrals = first.result.flush_deferrals;
        cell.forced_flush_releases = first.result.forced_flush_releases;
        if (options.verify_reproducible) {
          CellRun second = ExecuteOnce(scenario, policy, options);
          if (!second.error.empty()) {
            cell.error = "re-run failed: " + second.error;
          } else if (second.digest != first.digest) {
            cell.reproducible = false;
          }
        }
      }
      if (!cell.ok()) ++summary.failures;
      summary.cells.push_back(std::move(cell));
    }
  }
  return summary;
}

std::string ChaosCsv(const ChaosSummary& summary) {
  std::ostringstream out;
  out << "schedule,seed,policy,ok,digest,jobs,events,invariant_checks,"
         "fault_kills,transfer_timeouts,transfer_retries,straggler_spills,"
         "bb_reflushed_requests,flushes,flush_deferrals,"
         "forced_flush_releases,reproducible,error\n";
  for (const ChaosCell& cell : summary.cells) {
    std::string error = cell.error;
    for (char& c : error) {
      if (c == ',' || c == '\n' || c == '\r') c = ';';
    }
    out << cell.schedule << ',' << cell.seed << ',' << cell.policy << ','
        << (cell.ok() ? 1 : 0) << ',' << metrics::HexDigest(cell.digest)
        << ',' << cell.jobs << ',' << cell.events << ','
        << cell.invariant_checks << ',' << cell.fault_kills << ','
        << cell.transfer_timeouts << ',' << cell.transfer_retries << ','
        << cell.straggler_spills << ',' << cell.bb_reflushed_requests << ','
        << cell.flushes << ',' << cell.flush_deferrals << ','
        << cell.forced_flush_releases << ','
        << (cell.reproducible ? 1 : 0) << ',' << error << '\n';
  }
  return out.str();
}

}  // namespace iosched::driver
