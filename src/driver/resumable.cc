#include "driver/resumable.h"

#include <chrono>
#include <filesystem>
#include <fstream>
#include <optional>
#include <stdexcept>
#include <system_error>
#include <utility>

#include "ckpt/checkpoint.h"
#include "ckpt/serializer.h"
#include "driver/sweep.h"
#include "driver/watchdog.h"
#include "metrics/digest.h"
#include "obs/hub.h"

namespace iosched::driver {

namespace {

constexpr const char* kOutcomeFileName = "result.iosres";

/// Directory-safe rendering of a cell name: anything outside
/// [A-Za-z0-9._-] becomes '_', so "WL1/seed7" and "WL1 seed7" cannot
/// escape the cells/ tree or collide with path separators.
std::string SanitizeName(const std::string& name) {
  std::string out = name;
  for (char& c : out) {
    bool safe = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                (c >= '0' && c <= '9') || c == '.' || c == '_' || c == '-';
    if (!safe) c = '_';
  }
  return out;
}

void WriteReport(ckpt::Writer& w, const metrics::Report& r) {
  w.U64(r.job_count);
  w.F64(r.avg_wait_seconds);
  w.F64(r.avg_response_seconds);
  w.F64(r.utilization);
  w.F64(r.p90_wait_seconds);
  w.F64(r.p90_response_seconds);
  w.F64(r.max_wait_seconds);
  w.F64(r.avg_bounded_slowdown);
  w.F64(r.avg_runtime_seconds);
  w.F64(r.avg_runtime_expansion);
  w.F64(r.avg_io_slowdown);
  w.F64(r.makespan_seconds);
  w.F64(r.total_io_gb);
  w.U64(r.requeued_job_count);
  w.U64(r.abandoned_job_count);
  w.U64(r.total_attempts);
  w.F64(r.lost_node_seconds);
  w.F64(r.avg_wait_clean_seconds);
  w.F64(r.avg_wait_requeued_seconds);
  w.F64(r.avg_response_requeued_seconds);
  w.U64(r.total_flushes);
  w.F64(r.rework_node_seconds);
  w.F64(r.rework_ratio);
  w.F64(r.goodput);
}

metrics::Report ReadReport(ckpt::Reader& r) {
  metrics::Report out;
  out.job_count = static_cast<std::size_t>(r.U64());
  out.avg_wait_seconds = r.F64();
  out.avg_response_seconds = r.F64();
  out.utilization = r.F64();
  out.p90_wait_seconds = r.F64();
  out.p90_response_seconds = r.F64();
  out.max_wait_seconds = r.F64();
  out.avg_bounded_slowdown = r.F64();
  out.avg_runtime_seconds = r.F64();
  out.avg_runtime_expansion = r.F64();
  out.avg_io_slowdown = r.F64();
  out.makespan_seconds = r.F64();
  out.total_io_gb = r.F64();
  out.requeued_job_count = static_cast<std::size_t>(r.U64());
  out.abandoned_job_count = static_cast<std::size_t>(r.U64());
  out.total_attempts = r.U64();
  out.lost_node_seconds = r.F64();
  out.avg_wait_clean_seconds = r.F64();
  out.avg_wait_requeued_seconds = r.F64();
  out.avg_response_requeued_seconds = r.F64();
  out.total_flushes = r.U64();
  out.rework_node_seconds = r.F64();
  out.rework_ratio = r.F64();
  out.goodput = r.F64();
  return out;
}

}  // namespace

ResumableRunner::ResumableRunner(Options options)
    : options_(std::move(options)) {
  if (options_.root_directory.empty()) {
    throw std::invalid_argument(
        "ResumableRunner: root_directory must be set");
  }
}

std::string ResumableRunner::CellDirectory(
    const std::string& cell_name) const {
  return options_.root_directory + "/cells/" + SanitizeName(cell_name);
}

bool ResumableRunner::LoadOutcome(const SweepCell& cell,
                                  std::uint64_t config_hash,
                                  CellOutcome* out) const {
  std::string path = CellDirectory(cell.name) + "/" + kOutcomeFileName;
  std::error_code ec;
  if (!std::filesystem::exists(path, ec)) return false;
  try {
    ckpt::CheckpointFile file = ckpt::CheckpointFile::Load(path);
    // A stale outcome from a different configuration or workload must not
    // satisfy this sweep: the cell reruns instead.
    if (file.config_hash() != config_hash) return false;
    ckpt::Reader r(file.Section("outcome"), "outcome");
    CellOutcome loaded;
    loaded.name = r.Str();
    loaded.policy_name = r.Str();
    loaded.record_digest = r.U64();
    loaded.events_processed = r.U64();
    loaded.io_cycles = r.U64();
    loaded.bb_absorbed_gb = r.F64();
    loaded.bb_absorbed_requests = r.U64();
    loaded.bb_spilled_requests = r.U64();
    loaded.bb_peak_queued_gb = r.F64();
    loaded.bb_mean_occupancy = r.F64();
    loaded.report = ReadReport(r);
    r.ExpectEnd();
    loaded.reused = true;
    *out = std::move(loaded);
    return true;
  } catch (const std::exception&) {
    // Damaged outcome file (torn write before atomic publish existed,
    // bit rot): treat the cell as unfinished and rerun it.
    return false;
  }
}

void ResumableRunner::StoreOutcome(const CellOutcome& outcome,
                                   std::uint64_t config_hash,
                                   const std::string& cell_dir) const {
  ckpt::CheckpointFile file;
  file.SetConfigHash(config_hash);
  ckpt::Writer w;
  w.Str(outcome.name);
  w.Str(outcome.policy_name);
  w.U64(outcome.record_digest);
  w.U64(outcome.events_processed);
  w.U64(outcome.io_cycles);
  w.F64(outcome.bb_absorbed_gb);
  w.U64(outcome.bb_absorbed_requests);
  w.U64(outcome.bb_spilled_requests);
  w.F64(outcome.bb_peak_queued_gb);
  w.F64(outcome.bb_mean_occupancy);
  WriteReport(w, outcome.report);
  file.AddSection("outcome", w.TakeBuffer());
  file.WriteAtomic(cell_dir + "/" + kOutcomeFileName);
}

void ResumableRunner::AppendManifest(const CellOutcome& outcome,
                                     std::uint64_t config_hash) const {
  // Append-only journal for humans and CI greps; the outcome files are the
  // authoritative skip decision, so a torn final line after a crash is
  // harmless.
  std::string path = options_.root_directory + "/manifest.tsv";
  std::ofstream out(path, std::ios::app);
  out << "done\t" << outcome.name << "\t"
      << metrics::HexDigest(config_hash) << "\t"
      << metrics::HexDigest(outcome.record_digest) << "\t"
      << outcome.policy_name << "\n";
  out.flush();
  if (!out) {
    throw std::runtime_error("ResumableRunner: failed writing manifest " +
                             path);
  }
}

CellOutcome ResumableRunner::Run(const SweepCell& cell) {
  if (cell.jobs == nullptr) {
    throw std::invalid_argument("ResumableRunner: cell '" + cell.name +
                                "' has no workload");
  }
  std::uint64_t config_hash =
      core::SimulationConfigHash(cell.config, *cell.jobs);
  std::string cell_dir = CellDirectory(cell.name);
  CellOutcome outcome;
  if (LoadOutcome(cell, config_hash, &outcome)) return outcome;

  std::filesystem::create_directories(std::filesystem::path(cell_dir));
  std::string ckpt_dir = cell_dir + "/ckpt";
  core::SimulationConfig config = cell.config;
  config.checkpoint.directory = ckpt_dir;
  config.checkpoint.every_sim_seconds = options_.checkpoint_every_sim_seconds;
  config.checkpoint.every_events = options_.checkpoint_every_events;
  config.checkpoint.every_wall_seconds =
      options_.checkpoint_every_wall_seconds;
  config.checkpoint.keep_last = options_.keep_last;
  config.checkpoint.resume_from.clear();
  config.checkpoint.resume_latest = true;
  core::RunControl control;
  config.control = &control;

  std::optional<obs::Hub> hub;
  if (config.obs.enabled) hub.emplace(config.obs);
  std::optional<Watchdog> watchdog;
  if (options_.watchdog_no_progress_seconds > 0) {
    Watchdog::Options wopt;
    wopt.no_progress_seconds = options_.watchdog_no_progress_seconds;
    wopt.poll_interval_seconds = options_.watchdog_poll_interval_seconds;
    watchdog.emplace(control, wopt);
  }

  core::SimulationResult result;
  try {
    result = core::RunSimulation(config, *cell.jobs, nullptr,
                                 hub ? &*hub : nullptr);
  } catch (const core::SimulationAborted& e) {
    std::string what = e.what();
    if (watchdog.has_value()) {
      watchdog->Stop();
      if (watchdog->fired()) what += "; " + watchdog->diagnostic();
    }
    // The emergency checkpoint (when written) makes the cell resumable by
    // the next sweep invocation.
    throw core::SimulationAborted("cell '" + cell.name + "': " + what,
                                  e.checkpoint_path());
  }
  if (watchdog.has_value()) watchdog->Stop();

  outcome.name = cell.name;
  outcome.policy_name = result.policy_name;
  outcome.report = result.report;
  outcome.record_digest = metrics::DigestRecords(result.records);
  outcome.events_processed = result.events_processed;
  outcome.io_cycles = result.io_scheduling_cycles;
  outcome.bb_absorbed_gb = result.bb_absorbed_gb;
  outcome.bb_absorbed_requests = result.bb_absorbed_requests;
  outcome.bb_spilled_requests = result.bb_spilled_requests;
  outcome.bb_peak_queued_gb = result.bb_peak_queued_gb;
  outcome.bb_mean_occupancy = result.bb_mean_occupancy;
  outcome.reused = false;
  outcome.resumed = !result.resumed_from.empty();
  outcome.resumed_from = result.resumed_from;
  StoreOutcome(outcome, config_hash, cell_dir);
  AppendManifest(outcome, config_hash);
  std::error_code ec;
  std::filesystem::remove_all(ckpt_dir, ec);  // best-effort cleanup
  return outcome;
}

}  // namespace iosched::driver
