#include "driver/cli_flags.h"

#include <cstdio>

#include "driver/config_scenario.h"
#include "workload/app_checkpoint.h"
#include "workload/iotrace.h"
#include "workload/swf.h"

namespace iosched::driver {

void AddScenarioFlags(util::CliParser& cli) {
  cli.AddFlag("workload", "1", "built-in evaluation month (1..3)");
  cli.AddFlag("config", "", "INI scenario file (overrides workload flags)");
  cli.AddFlag("days", "30", "trace duration in days");
  cli.AddFlag("swf", "", "SWF job trace to load");
  cli.AddFlag("io", "", "Darshan-lite I/O trace paired with --swf");
  cli.AddFlag("bwmax", "250", "storage bandwidth cap BWmax in GB/s");
  cli.AddFlag("factor", "1.0", "I/O expansion factor applied to the workload");
}

void AddBurstBufferFlags(util::CliParser& cli) {
  cli.AddFlag("bb-capacity", "0",
              "burst-buffer capacity in GB (0 = no buffer; a positive value "
              "enables the tier with the --bb-drain rate)");
  cli.AddFlag("bb-drain", "25",
              "PFS bandwidth reserved for the burst-buffer drain in GB/s");
  cli.AddFlag("bb-absorb", "0",
              "absorb-tier bandwidth cap in GB/s (0 = job link rate)");
  cli.AddFlag("bb-quota", "0",
              "per-job burst-buffer staging quota in GB (0 = uncapped)");
  cli.AddFlag("bb-watermark", "0.9",
              "occupancy fraction above which the buffer reports congestion");
}

void AddPredictionFlags(util::CliParser& cli) {
  cli.AddFlag("predict", "off",
              "I/O behaviour prediction mode: off, learned, oracle, or null");
  cli.AddFlag("predict-alpha", "0.25",
              "EWMA smoothing factor for the learned predictor");
  cli.AddFlag("predict-min-support", "3",
              "observations before a user/project level is fully trusted");
  cli.AddFlag("predict-horizon", "300",
              "lookahead window in seconds for imminent-burst aggregation");
}

void AddAppCheckpointFlags(util::CliParser& cli) {
  cli.AddFlag("app-ckpt-mtbf", "0",
              "application MTBF in seconds; a positive value enables "
              "checkpoint traffic (Young/Daly flushes), the MTBF failure "
              "process, and restart-from-checkpoint semantics");
  cli.AddFlag("app-ckpt-defer", "600",
              "maximum seconds a checkpoint flush may be deferred under "
              "congestion (0 = flushes are never deferred)");
  cli.AddFlag("app-ckpt-min-interval", "120",
              "lower clamp on the Young/Daly checkpoint interval in seconds");
  cli.AddFlag("app-ckpt-seed", "1",
              "seed for the per-job application-class draws");
}

std::optional<int> ParseStandardFlags(util::CliParser& cli, int argc,
                                      const char* const* argv) {
  cli.AddBoolFlag("help", "show usage");
  if (!cli.Parse(argc, argv)) {
    std::fprintf(stderr, "%s\n%s", cli.error().c_str(), cli.Help().c_str());
    return 1;
  }
  if (cli.GetBool("help")) {
    std::fputs(cli.Help().c_str(), stdout);
    return 0;
  }
  return std::nullopt;
}

Scenario ScenarioFromFlags(const util::CliParser& cli) {
  Scenario scenario;
  if (cli.Provided("config")) {
    scenario = ScenarioFromConfigFile(cli.GetString("config"));
    if (cli.Provided("bwmax")) {
      scenario.config.storage.max_bandwidth_gbps = cli.GetDouble("bwmax");
    }
    return scenario;
  }
  scenario.config.machine = machine::MachineConfig::Mira();
  scenario.config.storage.max_bandwidth_gbps = cli.GetDouble("bwmax");
  if (cli.Provided("swf")) {
    workload::SwfTrace swf = workload::ReadSwfFile(cli.GetString("swf"));
    workload::IoTrace io;
    if (cli.Provided("io")) {
      io = workload::ReadIoTraceFile(cli.GetString("io"));
    }
    workload::PairingOptions opts;
    opts.node_bandwidth_gbps = scenario.config.machine.node_bandwidth_gbps;
    scenario.jobs = workload::PairTraces(swf, io, opts);
    scenario.name = cli.GetString("swf");
  } else {
    int index = static_cast<int>(cli.GetInt("workload"));
    scenario = MakeEvaluationScenario(index, cli.GetDouble("days"));
    scenario.config.storage.max_bandwidth_gbps = cli.GetDouble("bwmax");
  }
  double factor = cli.GetDouble("factor");
  if (factor != 1.0) {
    scenario = WithExpansionFactor(scenario, factor);
  }
  return scenario;
}

void ApplyBurstBufferFlags(const util::CliParser& cli,
                           core::SimulationConfig& config) {
  storage::BurstBufferConfig& bb = config.burst_buffer;
  if (cli.Provided("bb-capacity")) {
    bb.capacity_gb = cli.GetDouble("bb-capacity");
    // A capacity without a drain rate is never a valid tier, so enabling
    // the buffer from the command line pulls in the drain default too.
    if (bb.capacity_gb > 0 && bb.drain_gbps <= 0) {
      bb.drain_gbps = cli.GetDouble("bb-drain");
    }
  }
  if (cli.Provided("bb-drain")) bb.drain_gbps = cli.GetDouble("bb-drain");
  if (cli.Provided("bb-absorb")) bb.absorb_gbps = cli.GetDouble("bb-absorb");
  if (cli.Provided("bb-quota")) {
    bb.per_job_quota_gb = cli.GetDouble("bb-quota");
  }
  if (cli.Provided("bb-watermark")) {
    bb.congestion_watermark = cli.GetDouble("bb-watermark");
  }
}

void ApplyPredictionFlags(const util::CliParser& cli,
                          core::SimulationConfig& config) {
  core::PredictionConfig& pred = config.prediction;
  if (cli.Provided("predict")) {
    std::string mode = cli.GetString("predict");
    if (mode == "off") {
      pred.enabled = false;
    } else {
      pred.enabled = true;
      pred.mode = mode;  // Validate() rejects unknown modes.
    }
  }
  if (cli.Provided("predict-alpha")) {
    pred.alpha = cli.GetDouble("predict-alpha");
  }
  if (cli.Provided("predict-min-support")) {
    pred.min_support = static_cast<std::size_t>(
        cli.GetInt("predict-min-support"));
  }
  if (cli.Provided("predict-horizon")) {
    pred.horizon_seconds = cli.GetDouble("predict-horizon");
  }
}

void ApplyAppCheckpointFlags(const util::CliParser& cli, Scenario& scenario) {
  double mtbf = cli.GetDouble("app-ckpt-mtbf");
  if (mtbf <= 0) return;
  workload::AppCheckpointConfig ac;
  ac.enabled = true;
  ac.mtbf_seconds = mtbf;
  if (cli.Provided("app-ckpt-min-interval")) {
    ac.min_interval_seconds = cli.GetDouble("app-ckpt-min-interval");
  }
  if (cli.Provided("app-ckpt-seed")) {
    ac.seed = static_cast<std::uint64_t>(cli.GetInt("app-ckpt-seed"));
  }
  workload::ApplyCheckpointTraffic(
      scenario.jobs, ac, scenario.config.machine.node_bandwidth_gbps);
  scenario.config.app_checkpoint.enabled = true;
  scenario.config.app_checkpoint.max_defer_seconds =
      cli.GetDouble("app-ckpt-defer");
  scenario.config.faults.plan_config.enabled = true;
  scenario.config.faults.plan_config.job_mtbf_seconds = mtbf;
  scenario.config.faults.restart_mode =
      faults::RestartMode::kRestartFromAppCheckpoint;
}

}  // namespace iosched::driver
