// Stuck-run watchdog: a monitor thread that watches a simulation's
// RunControl progress counters and aborts the run when no event progress
// happens within a wall-clock budget.
//
// The engine publishes progress after every processed event and polls the
// abort flag between events, so a fired watchdog stops the run at the next
// event boundary, writes an emergency checkpoint (when a checkpoint
// directory is configured), and surfaces as core::SimulationAborted — the
// experiment driver can log the diagnostic and move on to the next cell
// instead of hanging a whole sweep on one pathological run.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>

#include "core/simulation.h"

namespace iosched::driver {

class Watchdog {
 public:
  struct Options {
    /// Fire when the event counter has not moved for this long (seconds).
    double no_progress_seconds = 300.0;
    /// How often the monitor thread samples the counters (seconds).
    double poll_interval_seconds = 1.0;
    /// A long checkpoint write is not a stalled simulation: while the
    /// engine reports RunControl::checkpoint_in_progress the normal budget
    /// is suspended and this one applies instead. 0 = wait indefinitely
    /// for the write to finish (the stall clock restarts when it does).
    double checkpoint_write_seconds = 0.0;
  };

  /// Starts the monitor thread immediately. `control` must outlive the
  /// watchdog. `on_stall` (optional) runs on the monitor thread with the
  /// diagnostic right after the abort flag is set.
  Watchdog(core::RunControl& control, Options options,
           std::function<void(const std::string&)> on_stall = nullptr);
  Watchdog(const Watchdog&) = delete;
  Watchdog& operator=(const Watchdog&) = delete;
  /// Stops and joins the monitor thread.
  ~Watchdog();

  /// Stop monitoring (idempotent; the destructor calls it). A watchdog
  /// stopped before firing never touches the abort flag.
  void Stop();

  /// True once the watchdog has set the abort flag.
  bool fired() const;
  /// Human-readable stall description ("" until fired).
  std::string diagnostic() const;

 private:
  void Loop();

  core::RunControl& control_;
  Options options_;
  std::function<void(const std::string&)> on_stall_;
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_requested_ = false;
  bool fired_ = false;
  std::string diagnostic_;
  std::thread thread_;
};

}  // namespace iosched::driver
