// Seeded chaos soak: randomized fault schedules against every policy with
// the invariant checker on.
//
// Each schedule index deterministically derives a FaultPlanConfig (storage
// degradations, midplane outages, job kills, burst-buffer capacity faults,
// drain degradations, transfer stragglers) from the base seed, then runs a
// reduced-scale scenario under every policy with from-scratch invariant
// checking enabled and transfer timeouts armed. A cell fails on any
// invariant violation, engine error, watchdog abort (stuck run), or — when
// reproducibility verification is on — a same-seed re-run whose per-job
// record digest differs. The soak is the robustness gate: tools/
// chaos_soak.sh and the CI chaos job both funnel through RunChaos.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace iosched::driver {

struct ChaosOptions {
  /// Schedule s uses seed base_seed + s for the plan, the workload, and the
  /// jitter streams, so one failing cell is reproducible from its row alone.
  std::uint64_t base_seed = 1;
  int schedules = 50;
  /// Reduced-scale scenario knobs (Small machine; see MakeTestScenario).
  double duration_days = 0.25;
  double jobs_per_day = 240.0;
  /// Policies to exercise; empty = every registered policy.
  std::vector<std::string> policies;
  /// Re-run each cell with the same seed and require a bit-identical
  /// record digest.
  bool verify_reproducible = true;
  /// Invariant sweep cadence (processed events).
  std::uint64_t invariant_check_every_events = 64;
  /// Abort a cell after this many wall seconds without event progress
  /// (0 disables the per-cell watchdog).
  double watchdog_seconds = 60.0;
};

/// One (schedule, policy) cell of the soak.
struct ChaosCell {
  int schedule = 0;
  std::uint64_t seed = 0;
  std::string policy;
  /// metrics::DigestRecords over the run's records (0 when the run failed).
  std::uint64_t digest = 0;
  std::size_t jobs = 0;
  std::uint64_t events = 0;
  std::uint64_t invariant_checks = 0;
  std::uint64_t fault_kills = 0;
  std::uint64_t transfer_timeouts = 0;
  std::uint64_t transfer_retries = 0;
  std::uint64_t straggler_spills = 0;
  std::uint64_t bb_reflushed_requests = 0;
  /// Checkpoint-flush activity (0 on the cells without checkpoint traffic).
  std::uint64_t flushes = 0;
  std::uint64_t flush_deferrals = 0;
  std::uint64_t forced_flush_releases = 0;
  /// False when the same-seed re-run produced a different digest.
  bool reproducible = true;
  /// Empty = cell passed; otherwise the violation/abort/error description.
  std::string error;

  bool ok() const { return error.empty() && reproducible; }
};

struct ChaosSummary {
  std::vector<ChaosCell> cells;
  /// Cells that failed (invariant violation, stuck run, engine error, or
  /// non-reproducible digest).
  int failures = 0;

  bool ok() const { return failures == 0; }
};

/// Run the soak. Deterministic for a fixed ChaosOptions. Never throws on a
/// cell failure — failures are reported in the summary; configuration
/// errors (unknown policy, bad options) do throw.
ChaosSummary RunChaos(const ChaosOptions& options);

/// CSV rendering (header + one row per cell) for artifacts and triage.
std::string ChaosCsv(const ChaosSummary& summary);

}  // namespace iosched::driver
