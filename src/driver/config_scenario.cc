#include "driver/config_scenario.h"

#include <cstdint>
#include <stdexcept>

#include "faults/fault_plan.h"
#include "sched/queue_policy.h"
#include "util/strings.h"
#include "workload/app_checkpoint.h"
#include "workload/synthetic.h"

namespace iosched::driver {

namespace {
double RequirePositive(const util::Config& config, const std::string& key,
                       double fallback) {
  double value = config.GetDoubleOr(key, fallback);
  if (value <= 0) {
    throw std::runtime_error("config: '" + key + "' must be positive");
  }
  return value;
}
}  // namespace

Scenario ScenarioFromConfig(const util::Config& config) {
  Scenario scenario;

  // Machine.
  std::string preset =
      util::ToLower(config.GetStringOr("machine.preset", "mira"));
  if (preset == "mira") {
    scenario.config.machine = machine::MachineConfig::Mira();
  } else if (preset == "intrepid") {
    scenario.config.machine = machine::MachineConfig::Intrepid();
  } else if (preset == "small") {
    scenario.config.machine = machine::MachineConfig::Small();
  } else {
    throw std::runtime_error("config: unknown machine.preset '" + preset +
                             "'");
  }
  if (config.Has("machine.node_bandwidth_gbps")) {
    scenario.config.machine.node_bandwidth_gbps =
        RequirePositive(config, "machine.node_bandwidth_gbps", 1.0);
  }

  // Storage / burst buffer.
  scenario.config.storage.max_bandwidth_gbps =
      RequirePositive(config, "storage.bwmax_gbps", 250.0);
  scenario.config.burst_buffer.capacity_gb =
      config.GetDoubleOr("burst_buffer.capacity_gb", 0.0);
  scenario.config.burst_buffer.drain_gbps =
      config.GetDoubleOr("burst_buffer.drain_gbps", 0.0);
  scenario.config.burst_buffer.absorb_gbps =
      config.GetDoubleOr("burst_buffer.absorb_gbps", 0.0);
  scenario.config.burst_buffer.per_job_quota_gb =
      config.GetDoubleOr("burst_buffer.per_job_quota_gb", 0.0);
  scenario.config.burst_buffer.congestion_watermark =
      config.GetDoubleOr("burst_buffer.congestion_watermark", 0.9);

  // Batch scheduler.
  scenario.config.batch.order =
      sched::ParseQueueOrder(config.GetStringOr("batch.order", "wfp"));
  scenario.config.batch.easy_backfill =
      config.GetBoolOr("batch.easy_backfill", true);

  // Fault injection (off unless [faults] enabled=true).
  {
    faults::FaultPlanConfig& fp = scenario.config.faults.plan_config;
    fp.enabled = config.GetBoolOr("faults.enabled", false);
    fp.seed = static_cast<std::uint64_t>(config.GetIntOr("faults.seed", 1));
    fp.degraded_fraction = config.GetDoubleOr("faults.degraded_fraction", 0.0);
    fp.degradation_factor =
        config.GetDoubleOr("faults.degradation_factor", 0.5);
    fp.degraded_window_seconds =
        config.GetDoubleOr("faults.degraded_window_seconds", 3600.0);
    fp.midplane_outages =
        static_cast<int>(config.GetIntOr("faults.midplane_outages", 0));
    fp.midplane_outage_seconds =
        config.GetDoubleOr("faults.midplane_outage_seconds", 4.0 * 3600.0);
    fp.job_kill_probability =
        config.GetDoubleOr("faults.job_kill_probability", 0.0);
    fp.bb_faults = static_cast<int>(config.GetIntOr("faults.bb_faults", 0));
    fp.bb_fault_seconds =
        config.GetDoubleOr("faults.bb_fault_seconds", 2.0 * 3600.0);
    fp.bb_fault_lose_data =
        config.GetBoolOr("faults.bb_fault_lose_data", false);
    fp.drain_degraded_fraction =
        config.GetDoubleOr("faults.drain_degraded_fraction", 0.0);
    fp.drain_degradation_factor =
        config.GetDoubleOr("faults.drain_degradation_factor", 0.5);
    fp.drain_window_seconds =
        config.GetDoubleOr("faults.drain_window_seconds", 3600.0);
    fp.straggler_probability =
        config.GetDoubleOr("faults.straggler_probability", 0.0);
    fp.straggler_factor = config.GetDoubleOr("faults.straggler_factor", 0.25);
    fp.job_mtbf_seconds = config.GetDoubleOr("faults.job_mtbf_seconds", 0.0);
    if (fp.enabled) {
      std::string err = fp.Validate();
      if (!err.empty()) throw std::runtime_error("config: [faults] " + err);
    }
    scenario.config.faults.restart_mode =
        faults::ParseRestartMode(config.GetStringOr("faults.restart",
                                                    "resume"));
    scenario.config.batch.max_retries =
        static_cast<int>(config.GetIntOr("faults.max_retries", 3));
    scenario.config.batch.requeue_backoff_seconds =
        config.GetDoubleOr("faults.backoff_seconds", 300.0);
    scenario.config.batch.max_backoff_seconds =
        config.GetDoubleOr("faults.max_backoff_seconds", 4.0 * 3600.0);
    scenario.config.batch.backoff_jitter_fraction =
        config.GetDoubleOr("faults.backoff_jitter_fraction", 0.0);
    scenario.config.batch.backoff_jitter_seed = static_cast<std::uint64_t>(
        config.GetIntOr("faults.backoff_jitter_seed", 1));
  }

  // Application checkpoint traffic + deferrable flush scheduling (off
  // unless [app_checkpoint] enabled=true). The workload transform itself
  // runs after workload generation below.
  {
    scenario.config.app_checkpoint.enabled =
        config.GetBoolOr("app_checkpoint.enabled", false);
    scenario.config.app_checkpoint.max_defer_seconds =
        config.GetDoubleOr("app_checkpoint.max_defer_seconds", 0.0);
  }

  // Transfer deadline/timeout semantics (off unless timeout_seconds > 0).
  {
    core::TransferRetryConfig& tr = scenario.config.transfer_retry;
    tr.timeout_seconds =
        config.GetDoubleOr("transfer_retry.timeout_seconds", 0.0);
    tr.max_retries =
        static_cast<int>(config.GetIntOr("transfer_retry.max_retries", 3));
    tr.backoff_base_seconds =
        config.GetDoubleOr("transfer_retry.backoff_base_seconds", 30.0);
    tr.backoff_max_seconds =
        config.GetDoubleOr("transfer_retry.backoff_max_seconds", 600.0);
    tr.backoff_jitter_fraction =
        config.GetDoubleOr("transfer_retry.backoff_jitter_fraction", 0.0);
    tr.jitter_seed = static_cast<std::uint64_t>(
        config.GetIntOr("transfer_retry.jitter_seed", 1));
  }

  // I/O behaviour prediction (off unless [prediction] enabled=true).
  {
    core::PredictionConfig& pred = scenario.config.prediction;
    pred.enabled = config.GetBoolOr("prediction.enabled", false);
    pred.mode = config.GetStringOr("prediction.mode", "learned");
    pred.alpha = config.GetDoubleOr("prediction.alpha", 0.25);
    long long min_support = config.GetIntOr("prediction.min_support", 3);
    if (min_support < 0) {
      throw std::runtime_error(
          "config: 'prediction.min_support' must be >= 0");
    }
    pred.min_support = static_cast<std::size_t>(min_support);
    pred.horizon_seconds =
        config.GetDoubleOr("prediction.horizon_seconds", 300.0);
  }

  // Invariant checking (read-only; never changes records or digests).
  scenario.config.check_invariants =
      config.GetBoolOr("simulation.check_invariants", false);
  {
    long long every =
        config.GetIntOr("simulation.invariant_check_every_events", 64);
    if (every <= 0) {
      throw std::runtime_error(
          "config: 'simulation.invariant_check_every_events' must be "
          "positive");
    }
    scenario.config.invariant_check_every_events =
        static_cast<std::uint64_t>(every);
  }

  // Observability.
  scenario.config.obs.enabled = config.GetBoolOr("obs.enabled", false);
  scenario.config.obs.sample_dt_seconds =
      config.GetDoubleOr("obs.sample_dt_seconds", 600.0);
  {
    long long cap = config.GetIntOr("obs.trace_capacity",
                                    static_cast<long long>(1u << 20));
    if (cap <= 0) {
      throw std::runtime_error("config: 'obs.trace_capacity' must be positive");
    }
    scenario.config.obs.trace_capacity = static_cast<std::size_t>(cap);
  }

  // Checkpoint / resume (off unless [checkpoint] directory is set).
  {
    ckpt::Options& ck = scenario.config.checkpoint;
    ck.directory = config.GetStringOr("checkpoint.directory", "");
    ck.every_sim_seconds =
        config.GetDoubleOr("checkpoint.every_sim_seconds", 0.0);
    long long every_events = config.GetIntOr("checkpoint.every_events", 0);
    if (every_events < 0) {
      throw std::runtime_error(
          "config: 'checkpoint.every_events' must be >= 0");
    }
    ck.every_events = static_cast<std::uint64_t>(every_events);
    ck.every_wall_seconds =
        config.GetDoubleOr("checkpoint.every_wall_seconds", 0.0);
    ck.keep_last = static_cast<int>(config.GetIntOr("checkpoint.keep_last", 3));
    ck.resume_latest = config.GetBoolOr("checkpoint.resume_latest", false);
  }

  // Policy & simulation knobs. The name is validated (against the factory
  // registry, which covers the planning family too) by
  // SimulationConfig::Validate at run time.
  scenario.config.policy = config.GetStringOr("policy.name", "BASE_LINE");

  // Planning cadence ([plan], used only by PERIODIC / PLAN_BF; greedy
  // policies ignore it and it stays out of their config hashes).
  {
    core::PlanConfig& plan = scenario.config.plan;
    plan.window_seconds =
        config.GetDoubleOr("plan.window_seconds", plan.window_seconds);
    plan.slice_seconds =
        config.GetDoubleOr("plan.slice_seconds", plan.slice_seconds);
    long long churn = config.GetIntOr(
        "plan.churn_cycles", static_cast<long long>(plan.churn_cycles));
    if (churn < 0) {
      throw std::runtime_error("config: 'plan.churn_cycles' must be >= 0");
    }
    plan.churn_cycles = static_cast<std::uint64_t>(churn);
  }
  scenario.config.enforce_walltime =
      config.GetBoolOr("simulation.enforce_walltime", false);
  scenario.config.warmup_fraction =
      config.GetDoubleOr("simulation.warmup_fraction", 0.05);
  scenario.config.cooldown_fraction =
      config.GetDoubleOr("simulation.cooldown_fraction", 0.05);

  // Workload.
  int month = static_cast<int>(config.GetIntOr("workload.month", 1));
  workload::SyntheticConfig wl = workload::EvaluationMonthConfig(month);
  wl.duration_days = RequirePositive(config, "workload.days", 30.0);
  wl.node_bandwidth_gbps = scenario.config.machine.node_bandwidth_gbps;
  if (config.Has("workload.jobs_per_day")) {
    wl.jobs_per_day = RequirePositive(config, "workload.jobs_per_day", 1.0);
  }
  if (config.Has("workload.checkpoint_period_seconds")) {
    wl.checkpoint_period_seconds =
        RequirePositive(config, "workload.checkpoint_period_seconds", 1.0);
  }
  if (config.Has("workload.io_efficiency_lo")) {
    wl.io_efficiency_lo = config.RequireDouble("workload.io_efficiency_lo");
  }
  if (config.Has("workload.io_efficiency_hi")) {
    wl.io_efficiency_hi = config.RequireDouble("workload.io_efficiency_hi");
  }
  if (config.Has("workload.restart_read_probability")) {
    wl.restart_read_probability =
        config.RequireDouble("workload.restart_read_probability");
  }
  // Drop size classes the configured machine cannot host (a small-machine
  // config with the Mira month presets would otherwise generate unplaceable
  // jobs).
  {
    std::vector<int> menu;
    std::vector<double> weights;
    for (std::size_t i = 0; i < wl.size_menu.size(); ++i) {
      if (wl.size_menu[i] <= scenario.config.machine.total_nodes()) {
        menu.push_back(wl.size_menu[i]);
        weights.push_back(wl.size_weights[i]);
      }
    }
    if (menu.empty()) {
      throw std::runtime_error(
          "config: machine too small for every workload size class");
    }
    wl.size_menu = std::move(menu);
    wl.size_weights = std::move(weights);
  }
  auto seed =
      static_cast<std::uint64_t>(config.GetIntOr("workload.seed", 101));
  scenario.jobs = workload::GenerateWorkload(wl, seed);
  scenario.name = "month" + std::to_string(month) + "/seed" +
                  std::to_string(seed);

  double factor = config.GetDoubleOr("workload.expansion_factor", 1.0);
  if (factor != 1.0) {
    if (factor < 0) {
      throw std::runtime_error("config: negative workload.expansion_factor");
    }
    workload::ApplyExpansionFactor(scenario.jobs, factor);
    scenario.name += "/ef" + std::to_string(factor);
  }

  // Checkpoint-traffic transform, last so Young/Daly intervals see the
  // final (expansion-scaled) compute durations.
  if (scenario.config.app_checkpoint.enabled) {
    workload::AppCheckpointConfig ac;
    ac.enabled = true;
    ac.mtbf_seconds =
        config.GetDoubleOr("app_checkpoint.mtbf_seconds", 4.0 * 3600.0);
    ac.min_interval_seconds =
        config.GetDoubleOr("app_checkpoint.min_interval_seconds", 120.0);
    ac.min_compute_seconds =
        config.GetDoubleOr("app_checkpoint.min_compute_seconds", 300.0);
    ac.seed = static_cast<std::uint64_t>(
        config.GetIntOr("app_checkpoint.seed", 1));
    workload::ApplyCheckpointTraffic(
        scenario.jobs, ac, scenario.config.machine.node_bandwidth_gbps);
    scenario.name += "/ckpt";
  }
  return scenario;
}

Scenario ScenarioFromConfigFile(const std::string& path) {
  return ScenarioFromConfig(util::Config::FromFile(path));
}

}  // namespace iosched::driver
