// Experiment runner: policy sweeps and the table emitters that regenerate
// the paper's figures (8, 9, 10, 11).
#pragma once

#include <span>
#include <string>
#include <vector>

#include "driver/scenario.h"
#include "metrics/report.h"
#include "util/table.h"
#include "util/thread_pool.h"

namespace iosched::driver {

struct PolicyRun {
  std::string policy;
  std::string scenario;
  metrics::Report report;
  std::uint64_t events_processed = 0;
  std::uint64_t io_cycles = 0;
  double wall_seconds = 0.0;  // host time spent simulating
  /// Burst-buffer tier statistics (all zero when the run had no buffer).
  /// bb_capacity_gb echoes the configured capacity so CSV rows are
  /// self-describing in capacity sweeps.
  double bb_capacity_gb = 0.0;
  double bb_absorbed_gb = 0.0;
  std::uint64_t bb_absorbed_requests = 0;
  std::uint64_t bb_spilled_requests = 0;
  double bb_peak_queued_gb = 0.0;
  /// Time-averaged occupancy fraction (0..1).
  double bb_mean_occupancy = 0.0;
  /// Counter dump (obs::Registry::WriteText) when the scenario enables
  /// observability; empty otherwise. Each run gets its own Hub, so sweeps
  /// stay parallel-safe.
  std::string obs_stats;
};

/// Run one (scenario, policy) cell and package the result as a PolicyRun.
/// This is the single execution path every sweep entrypoint funnels
/// through; it honors the scenario's obs settings with a run-private Hub.
PolicyRun RunSingle(const Scenario& scenario, const std::string& policy);

/// Fig. 8-style table: average wait time (minutes) per policy, with the
/// change vs the first row's policy (BASE_LINE in the paper).
util::Table WaitTimeTable(std::span<const PolicyRun> runs);

/// Fig. 9-style table: average response time (minutes) per policy.
util::Table ResponseTimeTable(std::span<const PolicyRun> runs);

/// Fig. 10-style table: utilization normalized to the first row's policy.
util::Table UtilizationTable(std::span<const PolicyRun> runs);

/// Fig. 11-style table: rows = expansion factors, columns = policies,
/// cells = average wait time in minutes.
util::Table SensitivityTable(std::span<const PolicyRun> runs,
                             std::span<const double> expansion_factors,
                             std::span<const std::string> policies);

/// CSV dump of any run list (one row per run) for offline plotting.
std::string RunsToCsv(std::span<const PolicyRun> runs);

}  // namespace iosched::driver
