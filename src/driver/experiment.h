// Experiment runner: policy sweeps and the table emitters that regenerate
// the paper's figures (8, 9, 10, 11).
#pragma once

#include <span>
#include <string>
#include <vector>

#include "driver/scenario.h"
#include "metrics/report.h"
#include "util/table.h"
#include "util/thread_pool.h"

namespace iosched::driver {

struct PolicyRun {
  std::string policy;
  std::string scenario;
  metrics::Report report;
  std::uint64_t events_processed = 0;
  std::uint64_t io_cycles = 0;
  double wall_seconds = 0.0;  // host time spent simulating
  /// Counter dump (obs::Registry::WriteText) when the scenario enables
  /// observability; empty otherwise. Each run gets its own Hub, so sweeps
  /// stay parallel-safe.
  std::string obs_stats;
};

/// Run one scenario under each policy. When `pool` is non-null the runs
/// execute concurrently (each simulation stays single-threaded and
/// deterministic). Results are returned in `policies` order.
std::vector<PolicyRun> RunPolicySweep(const Scenario& scenario,
                                      std::span<const std::string> policies,
                                      util::ThreadPool* pool = nullptr);

/// Expansion-factor sweep (paper Fig. 11): run `scenario` at each EF under
/// each policy. Result is row-major: result[f * policies.size() + p].
std::vector<PolicyRun> RunExpansionSweep(
    const Scenario& scenario, std::span<const double> expansion_factors,
    std::span<const std::string> policies, util::ThreadPool* pool = nullptr);

/// Fig. 8-style table: average wait time (minutes) per policy, with the
/// change vs the first row's policy (BASE_LINE in the paper).
util::Table WaitTimeTable(std::span<const PolicyRun> runs);

/// Fig. 9-style table: average response time (minutes) per policy.
util::Table ResponseTimeTable(std::span<const PolicyRun> runs);

/// Fig. 10-style table: utilization normalized to the first row's policy.
util::Table UtilizationTable(std::span<const PolicyRun> runs);

/// Fig. 11-style table: rows = expansion factors, columns = policies,
/// cells = average wait time in minutes.
util::Table SensitivityTable(std::span<const PolicyRun> runs,
                             std::span<const double> expansion_factors,
                             std::span<const std::string> policies);

/// CSV dump of any run list (one row per run) for offline plotting.
std::string RunsToCsv(std::span<const PolicyRun> runs);

}  // namespace iosched::driver
