// Build a complete scenario (machine + storage + batch + policy + workload)
// from an INI configuration file, so experiments are reproducible from a
// checked-in config instead of code edits.
//
// Recognized keys (all optional; defaults in parentheses):
//
//   [machine]
//   preset = mira | intrepid | small (mira)
//   node_bandwidth_gbps = <double>   (preset value)
//
//   [storage]
//   bwmax_gbps = <double>            (250)
//
//   [batch]
//   order = wfp | fcfs               (wfp)
//   easy_backfill = <bool>           (true)
//
//   [policy]
//   name = BASE_LINE | ... | ADAPTIVE | PERIODIC | PLAN_BF (BASE_LINE)
//
//   [plan]                             # planning policies only
//   window_seconds = <double>        (600)   # replan horizon
//   slice_seconds = <double>         (30)    # PERIODIC pattern slice
//   churn_cycles = <int>             (0 = off) # replan after N cycles
//
//   [burst_buffer]
//   capacity_gb = <double>           (0 = disabled)
//   drain_gbps = <double>            (0)     # PFS bandwidth reserved to drain
//   absorb_gbps = <double>           (0 = absorb at the job's link rate)
//   per_job_quota_gb = <double>      (0 = no per-job staging cap)
//   congestion_watermark = <double>  (0.9)   # occupancy fraction -> congested
//
//   [simulation]
//   enforce_walltime = <bool>        (false)
//   warmup_fraction = <double>       (0.05)
//   cooldown_fraction = <double>     (0.05)
//
//   [faults]
//   enabled = <bool>                 (false)
//   seed = <int>                     (1)
//   degraded_fraction = <double>     (0.0)   # fraction of horizon degraded
//   degradation_factor = <double>    (0.5)   # BWmax multiplier when degraded
//   degraded_window_seconds = <double> (3600)
//   midplane_outages = <int>         (0)
//   midplane_outage_seconds = <double> (14400)
//   job_kill_probability = <double>  (0.0)   # per attempt
//   restart = zero | resume          (resume)
//   max_retries = <int>              (3)
//   backoff_seconds = <double>       (300)   # doubles per retry
//   max_backoff_seconds = <double>   (14400)
//
//   [obs]
//   enabled = <bool>                 (false)  # counters + trace + sampler
//   sample_dt_seconds = <double>     (600)    # <= 0 disables the sampler
//   trace_capacity = <int>           (1048576) # tracer ring size, records
//
//   [checkpoint]
//   directory = <path>               ("" = checkpointing disabled)
//   every_sim_seconds = <double>     (0 = trigger off)
//   every_events = <int>             (0 = trigger off)
//   every_wall_seconds = <double>    (0 = trigger off)
//   keep_last = <int>                (3)     # <= 0 keeps everything
//   resume_latest = <bool>           (false) # resume newest valid checkpoint
//
//   [workload]
//   month = 1..3                     (use the built-in evaluation month)
//   days = <double>                  (30)
//   seed = <int>                     (101)
//   expansion_factor = <double>      (1.0)
//   # Generator overrides (applied on top of the month's config):
//   jobs_per_day = <double>
//   checkpoint_period_seconds = <double>
//   io_efficiency_lo / io_efficiency_hi = <double>
//   restart_read_probability = <double>
#pragma once

#include <string>

#include "driver/scenario.h"
#include "util/config.h"

namespace iosched::driver {

/// Build a scenario from a parsed config. Throws std::runtime_error with
/// the offending key on invalid values.
Scenario ScenarioFromConfig(const util::Config& config);

/// Convenience: parse the file then build.
Scenario ScenarioFromConfigFile(const std::string& path);

}  // namespace iosched::driver
