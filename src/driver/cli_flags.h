// Shared command-line surface for the tools/ binaries.
//
// Every tool that consumes a workload declares the same flag set through
// AddScenarioFlags/AddBurstBufferFlags and loads it through
// ScenarioFromFlags/ApplyBurstBufferFlags, so flag names, defaults, and
// --help text are defined exactly once. ParseStandardFlags owns the
// parse-error and --help preamble each main() used to hand-roll.
#pragma once

#include <optional>

#include "core/simulation.h"
#include "driver/scenario.h"
#include "util/cli.h"

namespace iosched::driver {

/// Declare the workload-selection flags ScenarioFromFlags reads:
/// --workload/--days (built-in month), --swf/--io (trace pair), --config
/// (INI scenario), --bwmax, and --factor.
void AddScenarioFlags(util::CliParser& cli);

/// Declare the burst-buffer flags ApplyBurstBufferFlags reads:
/// --bb-capacity, --bb-drain, --bb-absorb, --bb-quota, --bb-watermark.
void AddBurstBufferFlags(util::CliParser& cli);

/// Declare the prediction flags ApplyPredictionFlags reads:
/// --predict (off|learned|oracle|null), --predict-alpha,
/// --predict-min-support, --predict-horizon.
void AddPredictionFlags(util::CliParser& cli);

/// Declare the application-checkpoint flags ApplyAppCheckpointFlags reads:
/// --app-ckpt-mtbf (0 = off), --app-ckpt-defer, --app-ckpt-min-interval,
/// --app-ckpt-seed.
void AddAppCheckpointFlags(util::CliParser& cli);

/// Parse argv and run the standard preamble: a parse error prints the
/// message plus usage to stderr and yields exit code 1; --help (declared
/// here) prints usage to stdout and yields 0. Returns nullopt when the
/// program should continue.
std::optional<int> ParseStandardFlags(util::CliParser& cli, int argc,
                                      const char* const* argv);

/// Build the scenario selected by the AddScenarioFlags flags. --config
/// wins (with --bwmax still honoured as an override); otherwise --swf/--io
/// beats the built-in --workload month, and --factor != 1 applies an
/// expansion factor.
Scenario ScenarioFromFlags(const util::CliParser& cli);

/// Overlay the burst-buffer flags onto `config`. Each explicitly provided
/// flag overrides its field; additionally, providing --bb-capacity alone
/// pulls in the --bb-drain default so a single flag enables the tier.
void ApplyBurstBufferFlags(const util::CliParser& cli,
                           core::SimulationConfig& config);

/// Overlay the prediction flags onto `config`. --predict off disables the
/// subsystem (the default); any other mode enables it. The tuning flags
/// override their fields only when explicitly provided.
void ApplyPredictionFlags(const util::CliParser& cli,
                          core::SimulationConfig& config);

/// Overlay the app-checkpoint flags onto `scenario`. A positive
/// --app-ckpt-mtbf enables the whole resilience stack in one step: the
/// workload is rewritten with Young/Daly flush phases for that MTBF, flush
/// scheduling is enabled with the --app-ckpt-defer deferral bound, the
/// MTBF-driven failure process is armed, and restart mode switches to
/// app_checkpoint. Mutates both the workload and the config, so it must
/// run after ScenarioFromFlags.
void ApplyAppCheckpointFlags(const util::CliParser& cli, Scenario& scenario);

}  // namespace iosched::driver
