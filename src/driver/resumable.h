// Crash-safe experiment driver: a sweep whose cells (scenario × policy
// runs) survive process death.
//
// Each cell gets its own directory under the sweep root. While a cell
// runs, the engine drops periodic checkpoints there; when it finishes, a
// compact outcome file (report + record digest) is atomically published
// and the cell's checkpoints are deleted. Re-running the sweep after a
// crash (or a watchdog abort) skips every finished cell — the outcome file
// is re-validated against the cell's configuration hash — and the
// interrupted cell resumes from its newest valid checkpoint, falling back
// to older ones when the newest is damaged. Resume-equivalence guarantees
// the stitched-together sweep reports exactly what an uninterrupted sweep
// would have.
//
// Layout under Options::root_directory:
//   manifest.tsv                      append-only "done" journal (human/CI)
//   cells/<name>/result.iosres        outcome file (checkpoint container)
//   cells/<name>/ckpt/ckpt-*.iosckpt  in-flight checkpoints (removed on
//                                     completion)
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "core/simulation.h"
#include "driver/experiment.h"
#include "driver/scenario.h"
#include "metrics/report.h"
#include "workload/workload.h"

namespace iosched::driver {

/// One unit of resumable work.
struct SweepCell {
  /// Unique within the sweep; sanitized into a directory name.
  std::string name;
  core::SimulationConfig config;
  /// Must outlive the Run call.
  const workload::Workload* jobs = nullptr;
};

/// What Run() returns for a cell, whether freshly computed or reloaded.
struct CellOutcome {
  std::string name;
  std::string policy_name;
  metrics::Report report;
  /// metrics::DigestRecords over the cell's job records.
  std::uint64_t record_digest = 0;
  std::uint64_t events_processed = 0;
  std::uint64_t io_cycles = 0;
  /// Burst-buffer statistics (zero when the cell ran without a buffer).
  /// Outcome files written before these fields existed fail to parse and
  /// simply rerun, so the format extension is backward-safe.
  double bb_absorbed_gb = 0.0;
  std::uint64_t bb_absorbed_requests = 0;
  std::uint64_t bb_spilled_requests = 0;
  double bb_peak_queued_gb = 0.0;
  double bb_mean_occupancy = 0.0;
  /// True when the outcome was loaded from a previous sweep's result file
  /// (the simulation did not run again).
  bool reused = false;
  /// True when the run continued from a mid-run checkpoint.
  bool resumed = false;
  std::string resumed_from;
};

class ResumableRunner {
 public:
  struct Options {
    /// Sweep state root; created on demand. Must be non-empty.
    std::string root_directory;
    /// Checkpoint triggers for in-flight cells (see ckpt::Options); all
    /// zero disables mid-cell checkpointing (cells then restart from
    /// scratch after a crash, but completed cells are still skipped).
    double checkpoint_every_sim_seconds = 0.0;
    std::uint64_t checkpoint_every_events = 0;
    double checkpoint_every_wall_seconds = 30.0;
    int keep_last = 3;
    /// Abort a cell when its event counter stalls for this many wall
    /// seconds (0 disables the watchdog).
    double watchdog_no_progress_seconds = 0.0;
    double watchdog_poll_interval_seconds = 1.0;
  };

  explicit ResumableRunner(Options options);

  /// Run (or skip, or resume) one cell. Throws core::SimulationAborted
  /// when the watchdog fires — the emergency checkpoint makes the cell
  /// resumable by the next invocation.
  CellOutcome Run(const SweepCell& cell);

  const Options& options() const { return options_; }

  /// Directory holding a cell's state ("<root>/cells/<sanitized name>").
  std::string CellDirectory(const std::string& cell_name) const;

 private:
  /// Returns the finished outcome when `cell` already completed under the
  /// same configuration hash; nullopt when it must (re)run.
  bool LoadOutcome(const SweepCell& cell, std::uint64_t config_hash,
                   CellOutcome* out) const;
  void StoreOutcome(const CellOutcome& outcome, std::uint64_t config_hash,
                    const std::string& cell_dir) const;
  void AppendManifest(const CellOutcome& outcome,
                      std::uint64_t config_hash) const;

  Options options_;
};

}  // namespace iosched::driver
