#include "driver/experiment.h"

#include <chrono>
#include <optional>
#include <sstream>
#include <stdexcept>

#include "core/simulation.h"
#include "driver/sweep.h"
#include "obs/hub.h"
#include "util/csv.h"
#include "util/units.h"

namespace iosched::driver {

PolicyRun RunSingle(const Scenario& scenario, const std::string& policy) {
  core::SimulationConfig config = scenario.config;
  config.policy = policy;
  std::optional<obs::Hub> hub;
  if (config.obs.enabled) hub.emplace(config.obs);
  auto t0 = std::chrono::steady_clock::now();
  core::SimulationResult result = core::RunSimulation(
      config, scenario.jobs, nullptr, hub ? &*hub : nullptr);
  auto t1 = std::chrono::steady_clock::now();

  PolicyRun run;
  run.policy = result.policy_name;
  run.scenario = scenario.name;
  run.report = result.report;
  run.events_processed = result.events_processed;
  run.io_cycles = result.io_scheduling_cycles;
  run.wall_seconds = std::chrono::duration<double>(t1 - t0).count();
  run.bb_capacity_gb = config.burst_buffer.capacity_gb;
  run.bb_absorbed_gb = result.bb_absorbed_gb;
  run.bb_absorbed_requests = result.bb_absorbed_requests;
  run.bb_spilled_requests = result.bb_spilled_requests;
  run.bb_peak_queued_gb = result.bb_peak_queued_gb;
  run.bb_mean_occupancy = result.bb_mean_occupancy;
  if (hub) {
    std::ostringstream os;
    hub->registry().WriteText(os);
    run.obs_stats = os.str();
  }
  return run;
}

namespace {
util::Table MetricTable(std::span<const PolicyRun> runs, const char* header,
                        double (*metric)(const metrics::Report&)) {
  util::Table table({"policy", header, "vs " + runs.front().policy});
  double base = metric(runs.front().report);
  for (const PolicyRun& run : runs) {
    double value = metric(run.report);
    double change = base > 0 ? (value - base) / base : 0.0;
    table.AddRow({run.policy, util::Table::Num(value, 1),
                  util::Table::Percent(change, 1)});
  }
  return table;
}
}  // namespace

util::Table WaitTimeTable(std::span<const PolicyRun> runs) {
  if (runs.empty()) throw std::invalid_argument("WaitTimeTable: no runs");
  return MetricTable(runs, "avg wait (min)", [](const metrics::Report& r) {
    return util::SecondsToMinutes(r.avg_wait_seconds);
  });
}

util::Table ResponseTimeTable(std::span<const PolicyRun> runs) {
  if (runs.empty()) throw std::invalid_argument("ResponseTimeTable: no runs");
  return MetricTable(runs, "avg response (min)",
                     [](const metrics::Report& r) {
                       return util::SecondsToMinutes(r.avg_response_seconds);
                     });
}

util::Table UtilizationTable(std::span<const PolicyRun> runs) {
  if (runs.empty()) throw std::invalid_argument("UtilizationTable: no runs");
  util::Table table(
      {"policy", "utilization", "normalized vs " + runs.front().policy});
  double base = runs.front().report.utilization;
  for (const PolicyRun& run : runs) {
    double normalized = base > 0 ? run.report.utilization / base : 0.0;
    table.AddRow({run.policy,
                  util::Table::Num(run.report.utilization * 100.0, 1) + "%",
                  util::Table::Ratio(normalized, 3)});
  }
  return table;
}

util::Table SensitivityTable(std::span<const PolicyRun> runs,
                             std::span<const double> expansion_factors,
                             std::span<const std::string> policies) {
  if (runs.size() != expansion_factors.size() * policies.size()) {
    throw std::invalid_argument("SensitivityTable: size mismatch");
  }
  std::vector<std::string> headers = {"EF"};
  for (const std::string& p : policies) headers.push_back(p);
  util::Table table(headers);
  for (std::size_t f = 0; f < expansion_factors.size(); ++f) {
    std::vector<std::string> row = {
        util::Table::Num(expansion_factors[f] * 100.0, 0) + "%"};
    for (std::size_t p = 0; p < policies.size(); ++p) {
      const PolicyRun& run = runs[f * policies.size() + p];
      row.push_back(util::Table::Num(
          util::SecondsToMinutes(run.report.avg_wait_seconds), 1));
    }
    table.AddRow(row);
  }
  return table;
}

std::string RunsToCsv(std::span<const PolicyRun> runs) {
  std::ostringstream os;
  util::CsvWriter csv(os);
  csv.Header({"scenario", "policy", "jobs", "avg_wait_min",
              "avg_response_min", "utilization", "p90_wait_min",
              "avg_expansion", "avg_io_slowdown", "events", "io_cycles",
              "wall_seconds", "bb_capacity_gb", "bb_absorbed_gb",
              "bb_absorbed_requests", "bb_spilled_requests",
              "bb_peak_queued_gb", "bb_mean_occupancy"});
  for (const PolicyRun& run : runs) {
    csv.Row()
        .Add(run.scenario)
        .Add(run.policy)
        .Add(run.report.job_count)
        .Add(util::SecondsToMinutes(run.report.avg_wait_seconds))
        .Add(util::SecondsToMinutes(run.report.avg_response_seconds))
        .Add(run.report.utilization)
        .Add(util::SecondsToMinutes(run.report.p90_wait_seconds))
        .Add(run.report.avg_runtime_expansion)
        .Add(run.report.avg_io_slowdown)
        .Add(static_cast<unsigned long long>(run.events_processed))
        .Add(static_cast<unsigned long long>(run.io_cycles))
        .Add(run.wall_seconds)
        .Add(run.bb_capacity_gb)
        .Add(run.bb_absorbed_gb)
        .Add(static_cast<unsigned long long>(run.bb_absorbed_requests))
        .Add(static_cast<unsigned long long>(run.bb_spilled_requests))
        .Add(run.bb_peak_queued_gb)
        .Add(run.bb_mean_occupancy);
  }
  return os.str();
}

}  // namespace iosched::driver
