#include "driver/experiment.h"

#include <chrono>
#include <optional>
#include <sstream>
#include <stdexcept>

#include "core/simulation.h"
#include "obs/hub.h"
#include "util/csv.h"
#include "util/units.h"

namespace iosched::driver {

namespace {
PolicyRun RunOne(const Scenario& scenario, const std::string& policy) {
  core::SimulationConfig config = scenario.config;
  config.policy = policy;
  std::optional<obs::Hub> hub;
  if (config.obs.enabled) hub.emplace(config.obs);
  auto t0 = std::chrono::steady_clock::now();
  core::SimulationResult result = core::RunSimulation(
      config, scenario.jobs, nullptr, hub ? &*hub : nullptr);
  auto t1 = std::chrono::steady_clock::now();

  PolicyRun run;
  run.policy = result.policy_name;
  run.scenario = scenario.name;
  run.report = result.report;
  run.events_processed = result.events_processed;
  run.io_cycles = result.io_scheduling_cycles;
  run.wall_seconds = std::chrono::duration<double>(t1 - t0).count();
  if (hub) {
    std::ostringstream os;
    hub->registry().WriteText(os);
    run.obs_stats = os.str();
  }
  return run;
}
}  // namespace

std::vector<PolicyRun> RunPolicySweep(const Scenario& scenario,
                                      std::span<const std::string> policies,
                                      util::ThreadPool* pool) {
  std::vector<PolicyRun> runs(policies.size());
  if (pool != nullptr && policies.size() > 1) {
    pool->ParallelFor(policies.size(), [&](std::size_t i) {
      runs[i] = RunOne(scenario, policies[i]);
    });
  } else {
    for (std::size_t i = 0; i < policies.size(); ++i) {
      runs[i] = RunOne(scenario, policies[i]);
    }
  }
  return runs;
}

std::vector<PolicyRun> RunExpansionSweep(
    const Scenario& scenario, std::span<const double> expansion_factors,
    std::span<const std::string> policies, util::ThreadPool* pool) {
  std::vector<Scenario> scaled;
  scaled.reserve(expansion_factors.size());
  for (double factor : expansion_factors) {
    scaled.push_back(WithExpansionFactor(scenario, factor));
  }
  std::vector<PolicyRun> runs(expansion_factors.size() * policies.size());
  auto run_cell = [&](std::size_t cell) {
    std::size_t f = cell / policies.size();
    std::size_t p = cell % policies.size();
    runs[cell] = RunOne(scaled[f], policies[p]);
  };
  if (pool != nullptr && runs.size() > 1) {
    pool->ParallelFor(runs.size(), run_cell);
  } else {
    for (std::size_t cell = 0; cell < runs.size(); ++cell) run_cell(cell);
  }
  return runs;
}

namespace {
util::Table MetricTable(std::span<const PolicyRun> runs, const char* header,
                        double (*metric)(const metrics::Report&)) {
  util::Table table({"policy", header, "vs " + runs.front().policy});
  double base = metric(runs.front().report);
  for (const PolicyRun& run : runs) {
    double value = metric(run.report);
    double change = base > 0 ? (value - base) / base : 0.0;
    table.AddRow({run.policy, util::Table::Num(value, 1),
                  util::Table::Percent(change, 1)});
  }
  return table;
}
}  // namespace

util::Table WaitTimeTable(std::span<const PolicyRun> runs) {
  if (runs.empty()) throw std::invalid_argument("WaitTimeTable: no runs");
  return MetricTable(runs, "avg wait (min)", [](const metrics::Report& r) {
    return util::SecondsToMinutes(r.avg_wait_seconds);
  });
}

util::Table ResponseTimeTable(std::span<const PolicyRun> runs) {
  if (runs.empty()) throw std::invalid_argument("ResponseTimeTable: no runs");
  return MetricTable(runs, "avg response (min)",
                     [](const metrics::Report& r) {
                       return util::SecondsToMinutes(r.avg_response_seconds);
                     });
}

util::Table UtilizationTable(std::span<const PolicyRun> runs) {
  if (runs.empty()) throw std::invalid_argument("UtilizationTable: no runs");
  util::Table table(
      {"policy", "utilization", "normalized vs " + runs.front().policy});
  double base = runs.front().report.utilization;
  for (const PolicyRun& run : runs) {
    double normalized = base > 0 ? run.report.utilization / base : 0.0;
    table.AddRow({run.policy,
                  util::Table::Num(run.report.utilization * 100.0, 1) + "%",
                  util::Table::Ratio(normalized, 3)});
  }
  return table;
}

util::Table SensitivityTable(std::span<const PolicyRun> runs,
                             std::span<const double> expansion_factors,
                             std::span<const std::string> policies) {
  if (runs.size() != expansion_factors.size() * policies.size()) {
    throw std::invalid_argument("SensitivityTable: size mismatch");
  }
  std::vector<std::string> headers = {"EF"};
  for (const std::string& p : policies) headers.push_back(p);
  util::Table table(headers);
  for (std::size_t f = 0; f < expansion_factors.size(); ++f) {
    std::vector<std::string> row = {
        util::Table::Num(expansion_factors[f] * 100.0, 0) + "%"};
    for (std::size_t p = 0; p < policies.size(); ++p) {
      const PolicyRun& run = runs[f * policies.size() + p];
      row.push_back(util::Table::Num(
          util::SecondsToMinutes(run.report.avg_wait_seconds), 1));
    }
    table.AddRow(row);
  }
  return table;
}

std::string RunsToCsv(std::span<const PolicyRun> runs) {
  std::ostringstream os;
  util::CsvWriter csv(os);
  csv.Header({"scenario", "policy", "jobs", "avg_wait_min",
              "avg_response_min", "utilization", "p90_wait_min",
              "avg_expansion", "avg_io_slowdown", "events", "io_cycles",
              "wall_seconds"});
  for (const PolicyRun& run : runs) {
    csv.Row()
        .Add(run.scenario)
        .Add(run.policy)
        .Add(run.report.job_count)
        .Add(util::SecondsToMinutes(run.report.avg_wait_seconds))
        .Add(util::SecondsToMinutes(run.report.avg_response_seconds))
        .Add(run.report.utilization)
        .Add(util::SecondsToMinutes(run.report.p90_wait_seconds))
        .Add(run.report.avg_runtime_expansion)
        .Add(run.report.avg_io_slowdown)
        .Add(static_cast<unsigned long long>(run.events_processed))
        .Add(static_cast<unsigned long long>(run.io_cycles))
        .Add(run.wall_seconds);
  }
  return os.str();
}

}  // namespace iosched::driver
