#include "driver/watchdog.h"

#include <chrono>
#include <stdexcept>
#include <utility>

namespace iosched::driver {

Watchdog::Watchdog(core::RunControl& control, Options options,
                   std::function<void(const std::string&)> on_stall)
    : control_(control), options_(options), on_stall_(std::move(on_stall)) {
  if (options_.no_progress_seconds <= 0 ||
      options_.poll_interval_seconds <= 0) {
    throw std::invalid_argument(
        "Watchdog: budgets must be positive (no_progress_seconds=" +
        std::to_string(options_.no_progress_seconds) +
        ", poll_interval_seconds=" +
        std::to_string(options_.poll_interval_seconds) + ")");
  }
  if (options_.checkpoint_write_seconds < 0) {
    throw std::invalid_argument(
        "Watchdog: checkpoint_write_seconds must be >= 0 (0 waits "
        "indefinitely for a checkpoint write)");
  }
  thread_ = std::thread([this] { Loop(); });
}

Watchdog::~Watchdog() { Stop(); }

void Watchdog::Stop() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_requested_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

bool Watchdog::fired() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return fired_;
}

std::string Watchdog::diagnostic() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return diagnostic_;
}

void Watchdog::Loop() {
  using Clock = std::chrono::steady_clock;
  auto poll = std::chrono::duration_cast<Clock::duration>(
      std::chrono::duration<double>(options_.poll_interval_seconds));
  std::uint64_t last_events =
      control_.progress_events.load(std::memory_order_relaxed);
  bool last_in_checkpoint =
      control_.checkpoint_in_progress.load(std::memory_order_relaxed);
  Clock::time_point last_change = Clock::now();
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    if (cv_.wait_for(lock, poll, [this] { return stop_requested_; })) return;
    std::uint64_t events =
        control_.progress_events.load(std::memory_order_relaxed);
    bool in_checkpoint =
        control_.checkpoint_in_progress.load(std::memory_order_relaxed);
    Clock::time_point now = Clock::now();
    // Event progress resets the stall clock; so does a checkpoint write
    // starting or finishing — crossing that boundary proves the engine is
    // alive even though the event counter stands still.
    if (events != last_events || in_checkpoint != last_in_checkpoint) {
      last_events = events;
      last_in_checkpoint = in_checkpoint;
      last_change = now;
      continue;
    }
    double stalled = std::chrono::duration<double>(now - last_change).count();
    if (in_checkpoint) {
      // A long checkpoint write is not a stalled simulation: hold fire
      // under the (usually laxer) checkpoint budget.
      if (options_.checkpoint_write_seconds <= 0 ||
          stalled < options_.checkpoint_write_seconds) {
        continue;
      }
    } else if (stalled < options_.no_progress_seconds) {
      continue;
    }
    control_.abort.store(true, std::memory_order_relaxed);
    fired_ = true;
    diagnostic_ =
        in_checkpoint
            ? "watchdog: checkpoint write in progress for " +
                  std::to_string(stalled) + " s without completing (at " +
                  std::to_string(events) + " events, sim t=" +
                  std::to_string(control_.progress_sim_time.load(
                      std::memory_order_relaxed)) +
                  ")"
            : "watchdog: no event progress for " + std::to_string(stalled) +
                  " s (stuck at " + std::to_string(events) +
                  " events, sim t=" +
                  std::to_string(control_.progress_sim_time.load(
                      std::memory_order_relaxed)) +
                  ")";
    std::string diagnostic = diagnostic_;
    lock.unlock();
    if (on_stall_) on_stall_(diagnostic);
    return;
  }
}

}  // namespace iosched::driver
