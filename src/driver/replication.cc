#include "driver/replication.h"

#include <cmath>
#include <stdexcept>

#include "core/simulation.h"
#include "util/stats.h"
#include "util/units.h"
#include "workload/synthetic.h"

namespace iosched::driver {

namespace {
MetricStats ToStats(const util::RunningStats& s) {
  // A single replication has no spread: report exactly 0, never a NaN or a
  // Welford residual, so tables render "±0.0" for n=1 sweeps.
  double stddev = s.count() < 2 ? 0.0 : s.stddev();
  return MetricStats{s.mean(), stddev, s.count()};
}
}  // namespace

std::vector<ReplicatedRun> RunReplications(
    const ScenarioFactory& factory, std::span<const std::uint64_t> seeds,
    std::span<const std::string> policies, util::ThreadPool* pool) {
  if (seeds.empty() || policies.empty()) {
    throw std::invalid_argument("RunReplications: empty seeds or policies");
  }
  // One result slot per (policy, seed); aggregate afterwards so the
  // parallel path is race-free and ordering-independent.
  struct Cell {
    double wait = 0;
    double response = 0;
    double utilization = 0;
    double expansion = 0;
  };
  std::vector<Cell> cells(policies.size() * seeds.size());
  auto run_cell = [&](std::size_t index) {
    std::size_t p = index / seeds.size();
    std::size_t s = index % seeds.size();
    Scenario scenario = factory(seeds[s]);
    core::SimulationConfig config = scenario.config;
    config.policy = policies[p];
    core::SimulationResult result =
        core::RunSimulation(config, scenario.jobs);
    cells[index] = Cell{result.report.avg_wait_seconds,
                        result.report.avg_response_seconds,
                        result.report.utilization,
                        result.report.avg_runtime_expansion};
  };
  if (pool != nullptr && cells.size() > 1) {
    pool->ParallelFor(cells.size(), run_cell);
  } else {
    for (std::size_t i = 0; i < cells.size(); ++i) run_cell(i);
  }

  std::vector<ReplicatedRun> out(policies.size());
  for (std::size_t p = 0; p < policies.size(); ++p) {
    util::RunningStats wait;
    util::RunningStats response;
    util::RunningStats utilization;
    util::RunningStats expansion;
    for (std::size_t s = 0; s < seeds.size(); ++s) {
      const Cell& c = cells[p * seeds.size() + s];
      wait.Add(c.wait);
      response.Add(c.response);
      utilization.Add(c.utilization);
      expansion.Add(c.expansion);
    }
    out[p].policy = std::string(policies[p]);
    out[p].wait_seconds = ToStats(wait);
    out[p].response_seconds = ToStats(response);
    out[p].utilization = ToStats(utilization);
    out[p].runtime_expansion = ToStats(expansion);
  }
  return out;
}

ScenarioFactory EvaluationMonthFactory(int index, double duration_days) {
  // Validate eagerly so a bad index fails at factory creation.
  workload::EvaluationMonthConfig(index);
  return [index, duration_days](std::uint64_t seed) {
    workload::SyntheticConfig cfg = workload::EvaluationMonthConfig(index);
    cfg.duration_days = duration_days;
    Scenario scenario;
    scenario.name = "WL" + std::to_string(index) + "/seed" +
                    std::to_string(seed);
    scenario.config.machine = machine::MachineConfig::Mira();
    cfg.node_bandwidth_gbps = scenario.config.machine.node_bandwidth_gbps;
    scenario.config.storage.max_bandwidth_gbps = 250.0;
    scenario.jobs = workload::GenerateWorkload(cfg, seed);
    return scenario;
  };
}

util::Table ReplicationTable(std::span<const ReplicatedRun> runs) {
  if (runs.empty()) throw std::invalid_argument("ReplicationTable: no runs");
  util::Table table({"policy", "avg wait (min)", "vs " + runs.front().policy,
                     "avg response (min)", "utilization"});
  double base = runs.front().wait_seconds.mean;
  for (const ReplicatedRun& run : runs) {
    table.AddRow(
        {run.policy,
         util::Table::Num(util::SecondsToMinutes(run.wait_seconds.mean), 1) +
             " +- " +
             util::Table::Num(
                 util::SecondsToMinutes(run.wait_seconds.stddev), 1),
         util::Table::Percent(
             base > 0 ? run.wait_seconds.mean / base - 1.0 : 0.0, 1),
         util::Table::Num(
             util::SecondsToMinutes(run.response_seconds.mean), 1) +
             " +- " +
             util::Table::Num(
                 util::SecondsToMinutes(run.response_seconds.stddev), 1),
         util::Table::Num(run.utilization.mean * 100.0, 1) + "% +- " +
             util::Table::Num(run.utilization.stddev * 100.0, 1)});
  }
  return table;
}

}  // namespace iosched::driver
