#include "driver/scenario.h"

#include <cstdio>

namespace iosched::driver {

Scenario MakeEvaluationScenario(int index, double duration_days) {
  workload::SyntheticConfig wl_cfg =
      workload::EvaluationMonthConfig(index);
  wl_cfg.duration_days = duration_days;

  Scenario scenario;
  scenario.name = "WL" + std::to_string(index);
  scenario.config.machine = machine::MachineConfig::Mira();
  wl_cfg.node_bandwidth_gbps = scenario.config.machine.node_bandwidth_gbps;
  scenario.config.storage.max_bandwidth_gbps = 250.0;
  scenario.jobs = workload::GenerateWorkload(
      wl_cfg, /*seed=*/100 + static_cast<std::uint64_t>(index));
  return scenario;
}

Scenario MakeYearScenario(double duration_days) {
  Scenario scenario;
  scenario.name = "YEAR";
  scenario.config.machine = machine::MachineConfig::Mira();
  scenario.config.storage.max_bandwidth_gbps = 250.0;

  workload::SyntheticConfig wl_cfg;
  wl_cfg.duration_days = duration_days;
  wl_cfg.jobs_per_day = 2800.0;
  // Throughput-class mix: mean ~750 nodes and ~20 min runtimes put the
  // steady-state demand near 65% of the machine, so the queue drains
  // overnight instead of growing without bound across the year.
  wl_cfg.size_menu = {512, 1024, 2048};
  wl_cfg.size_weights = {0.70, 0.22, 0.08};
  wl_cfg.runtime_log_mean = 7.0;   // exp(7.0) ~ 1,097 s ~ 18 min
  wl_cfg.runtime_log_sigma = 0.6;
  wl_cfg.min_runtime_seconds = 300.0;
  wl_cfg.max_runtime_seconds = 2.0 * 3600.0;
  wl_cfg.checkpoint_period_seconds = 600.0;
  wl_cfg.max_io_phases = 6;
  wl_cfg.node_bandwidth_gbps = scenario.config.machine.node_bandwidth_gbps;
  wl_cfg.io_efficiency_lo = 0.2;
  wl_cfg.io_efficiency_hi = 0.9;

  scenario.jobs = workload::GenerateWorkload(wl_cfg, /*seed=*/777);
  return scenario;
}

Scenario MakeTestScenario(std::uint64_t seed, double duration_days,
                          double jobs_per_day) {
  Scenario scenario;
  scenario.name = "TEST";
  scenario.config.machine = machine::MachineConfig::Small();  // 4,096 nodes

  workload::SyntheticConfig wl_cfg;
  wl_cfg.duration_days = duration_days;
  wl_cfg.jobs_per_day = jobs_per_day;
  wl_cfg.size_menu = {512, 1024, 2048};
  wl_cfg.size_weights = {0.55, 0.30, 0.15};
  wl_cfg.runtime_log_mean = 7.2;   // ~22 min median
  wl_cfg.runtime_log_sigma = 0.7;
  wl_cfg.min_runtime_seconds = 300.0;
  wl_cfg.max_runtime_seconds = 4.0 * 3600.0;
  wl_cfg.checkpoint_period_seconds = 600.0;
  wl_cfg.max_io_phases = 20;
  wl_cfg.node_bandwidth_gbps = scenario.config.machine.node_bandwidth_gbps;
  // Heterogeneous application I/O rates, as on the real system: this is
  // what makes the even-split BASE_LINE non-work-conserving.
  wl_cfg.io_efficiency_lo = 0.2;
  wl_cfg.io_efficiency_hi = 0.9;

  // Keep Mira's congestion geometry: machine aggregate link bandwidth is
  // ~6.1x the storage cap (1536/250). Small machine: 4096 nodes * b = 128
  // GB/s aggregate -> BWmax ~ 21 GB/s.
  double aggregate =
      scenario.config.machine.total_nodes() *
      scenario.config.machine.node_bandwidth_gbps;
  scenario.config.storage.max_bandwidth_gbps = aggregate / 6.144;

  scenario.jobs = workload::GenerateWorkload(wl_cfg, seed);
  return scenario;
}

Scenario WithExpansionFactor(const Scenario& base, double expansion_factor) {
  Scenario out = base;
  workload::ApplyExpansionFactor(out.jobs, expansion_factor);
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%g%%", expansion_factor * 100.0);
  out.name = base.name + "/EF=" + buf;
  return out;
}

}  // namespace iosched::driver
