#include "core/conservative_policy.h"

#include <algorithm>
#include <numeric>

#include "core/knapsack.h"
#include "core/slowdown.h"

namespace iosched::core {

namespace {
std::string NameFor(ConservativeOrder order) {
  switch (order) {
    case ConservativeOrder::kFcfs: return "FCFS";
    case ConservativeOrder::kMaxUtil: return "MAX_UTIL";
    case ConservativeOrder::kMinInstSld: return "MIN_INST_SLD";
    case ConservativeOrder::kMinAggrSld: return "MIN_AGGR_SLD";
    case ConservativeOrder::kShortestFirst: return "SJF";
    case ConservativeOrder::kSmithRule: return "WSJF";
  }
  return "?";
}
}  // namespace

ConservativePolicy::ConservativePolicy(ConservativeOrder order)
    : order_(order), name_(NameFor(order)) {}

const std::string& ConservativePolicy::name() const { return name_; }

std::vector<std::size_t> ConservativePriorityOrder(
    std::span<const IoJobView> active, ConservativeOrder order,
    sim::SimTime now) {
  std::vector<std::size_t> idx(active.size());
  std::iota(idx.begin(), idx.end(), 0);

  auto fcfs_less = [&](std::size_t a, std::size_t b) {
    if (active[a].request_arrival != active[b].request_arrival) {
      return active[a].request_arrival < active[b].request_arrival;
    }
    return active[a].id < active[b].id;
  };

  switch (order) {
    case ConservativeOrder::kFcfs:
    case ConservativeOrder::kMaxUtil:
      std::sort(idx.begin(), idx.end(), fcfs_less);
      break;
    case ConservativeOrder::kMinInstSld: {
      // To *minimize* slowdown, serve the currently most-slowed-down
      // request first. A suspended request's InstSld grows with its waiting
      // time, so this degenerates to FCFS among starved requests — the
      // paper notes MinInstSld "is close to Cons-FCFS".
      std::vector<double> key(active.size());
      for (std::size_t i = 0; i < active.size(); ++i) {
        key[i] = InstantSlowdown(active[i], now);
      }
      std::sort(idx.begin(), idx.end(), [&](std::size_t a, std::size_t b) {
        if (key[a] != key[b]) return key[a] > key[b];
        return fcfs_less(a, b);
      });
      break;
    }
    case ConservativeOrder::kMinAggrSld: {
      // Most-delayed job (whole-lifetime view) first, so a job that was
      // squeezed earlier catches up instead of compounding its delay.
      std::vector<double> key(active.size());
      for (std::size_t i = 0; i < active.size(); ++i) {
        key[i] = AggregateSlowdown(active[i], now);
      }
      std::sort(idx.begin(), idx.end(), [&](std::size_t a, std::size_t b) {
        if (key[a] != key[b]) return key[a] > key[b];
        return fcfs_less(a, b);
      });
      break;
    }
    case ConservativeOrder::kShortestFirst: {
      // Smallest remaining full-rate transfer time first.
      std::vector<double> key(active.size());
      for (std::size_t i = 0; i < active.size(); ++i) {
        key[i] = active[i].RemainingGb() /
                 std::max(active[i].full_rate_gbps, 1e-12);
      }
      std::sort(idx.begin(), idx.end(), [&](std::size_t a, std::size_t b) {
        if (key[a] != key[b]) return key[a] < key[b];
        return fcfs_less(a, b);
      });
      break;
    }
    case ConservativeOrder::kSmithRule: {
      // Highest nodes-per-remaining-second first: Smith's rule with weight
      // N_i, so the storage channel releases blocked node-seconds fastest.
      std::vector<double> key(active.size());
      for (std::size_t i = 0; i < active.size(); ++i) {
        double remaining_seconds = active[i].RemainingGb() /
                                   std::max(active[i].full_rate_gbps, 1e-12);
        key[i] = static_cast<double>(active[i].nodes) /
                 std::max(remaining_seconds, 1e-9);
      }
      std::sort(idx.begin(), idx.end(), [&](std::size_t a, std::size_t b) {
        if (key[a] != key[b]) return key[a] > key[b];
        return fcfs_less(a, b);
      });
      break;
    }
  }
  return idx;
}

std::vector<RateGrant> ConservativePolicy::Assign(
    std::span<const IoJobView> active, double max_bandwidth_gbps,
    sim::SimTime now) {
  std::vector<RateGrant> grants(active.size());
  for (std::size_t i = 0; i < active.size(); ++i) {
    grants[i] = {active[i].id, 0.0};
  }
  if (active.empty()) return grants;

  std::vector<bool> admitted(active.size(), false);
  std::size_t admitted_count = 0;

  // A job whose solo demand b*N_i exceeds BWmax (an 8192+ node job on Mira)
  // can never "fit"; counting its demand as min(b*N_i, BWmax) lets it be
  // admitted (alone, rate-capped at the disks' speed) when it reaches the
  // head of the priority order instead of starving behind smaller jobs.
  auto demand = [&](const IoJobView& v) {
    return std::min(v.full_rate_gbps, max_bandwidth_gbps);
  };

  if (order_ == ConservativeOrder::kMaxUtil) {
    // Knapsack: weight = (capped) bandwidth demand, value = compute nodes.
    std::vector<KnapsackItem> items;
    items.reserve(active.size());
    for (const IoJobView& v : active) {
      items.push_back({demand(v), static_cast<double>(v.nodes)});
    }
    KnapsackSolution solution =
        SolveKnapsack01(items, max_bandwidth_gbps, /*unit=*/1.0);
    for (std::size_t i : solution.selected) {
      admitted[i] = true;
      ++admitted_count;
    }
  } else {
    std::vector<std::size_t> priority =
        ConservativePriorityOrder(active, order_, now);
    double available = max_bandwidth_gbps;
    for (std::size_t i : priority) {
      if (demand(active[i]) <= available) {
        admitted[i] = true;
        ++admitted_count;
        available -= demand(active[i]);
      }
    }
  }

  if (admitted_count == 0) {
    // Starvation guard: every candidate alone exceeds BWmax. Admit the
    // top-priority job capped at BWmax.
    std::vector<std::size_t> priority =
        ConservativePriorityOrder(active, order_, now);
    std::size_t head = priority.front();
    grants[head].rate_gbps =
        std::min(active[head].full_rate_gbps, max_bandwidth_gbps);
    return grants;
  }

  for (std::size_t i = 0; i < active.size(); ++i) {
    if (admitted[i]) {
      grants[i].rate_gbps =
          std::min(active[i].full_rate_gbps, max_bandwidth_gbps);
    }
  }
  return grants;
}

}  // namespace iosched::core
