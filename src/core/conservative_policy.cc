#include "core/conservative_policy.h"

#include <algorithm>
#include <numeric>

#include "core/knapsack.h"
#include "core/slowdown.h"
#include "obs/hub.h"

namespace iosched::core {

namespace {
std::string NameFor(ConservativeOrder order) {
  switch (order) {
    case ConservativeOrder::kFcfs: return "FCFS";
    case ConservativeOrder::kMaxUtil: return "MAX_UTIL";
    case ConservativeOrder::kMinInstSld: return "MIN_INST_SLD";
    case ConservativeOrder::kMinAggrSld: return "MIN_AGGR_SLD";
    case ConservativeOrder::kShortestFirst: return "SJF";
    case ConservativeOrder::kSmithRule: return "WSJF";
  }
  return "?";
}
}  // namespace

ConservativePolicy::ConservativePolicy(ConservativeOrder order)
    : order_(order), name_(NameFor(order)) {}

const std::string& ConservativePolicy::name() const { return name_; }

void ConservativePolicy::BindObs(obs::Hub* hub) {
  knapsack_counter_ = hub != nullptr ? hub->knapsack_invocations : nullptr;
}

std::vector<std::size_t> ConservativePriorityOrder(
    std::span<const IoJobView> active, ConservativeOrder order,
    sim::SimTime now) {
  // Every ordering sorts a contiguous array of precomputed keys — the
  // comparators never touch the (much wider) IoJobView records, and keys
  // are evaluated once per element instead of once per comparison.
  struct Ranked {
    double key;
    sim::SimTime arrival;
    workload::JobId id;
    std::size_t idx;
  };
  std::vector<Ranked> ranked;
  ranked.reserve(active.size());
  for (std::size_t i = 0; i < active.size(); ++i) {
    ranked.push_back({0.0, active[i].request_arrival, active[i].id, i});
  }

  auto fcfs_less = [](const Ranked& a, const Ranked& b) {
    if (a.arrival != b.arrival) return a.arrival < b.arrival;
    return a.id < b.id;
  };
  auto sort_key_desc = [&] {
    std::sort(ranked.begin(), ranked.end(),
              [&](const Ranked& a, const Ranked& b) {
                if (a.key != b.key) return a.key > b.key;
                return fcfs_less(a, b);
              });
  };

  switch (order) {
    case ConservativeOrder::kFcfs:
    case ConservativeOrder::kMaxUtil:
      std::sort(ranked.begin(), ranked.end(), fcfs_less);
      break;
    case ConservativeOrder::kMinInstSld:
      // To *minimize* slowdown, serve the currently most-slowed-down
      // request first. A suspended request's InstSld grows with its waiting
      // time, so this degenerates to FCFS among starved requests — the
      // paper notes MinInstSld "is close to Cons-FCFS".
      for (std::size_t i = 0; i < active.size(); ++i) {
        ranked[i].key = InstantSlowdown(active[i], now);
      }
      sort_key_desc();
      break;
    case ConservativeOrder::kMinAggrSld:
      // Most-delayed job (whole-lifetime view) first, so a job that was
      // squeezed earlier catches up instead of compounding its delay.
      for (std::size_t i = 0; i < active.size(); ++i) {
        ranked[i].key = AggregateSlowdown(active[i], now);
      }
      sort_key_desc();
      break;
    case ConservativeOrder::kShortestFirst:
      // Smallest remaining full-rate transfer time first.
      for (std::size_t i = 0; i < active.size(); ++i) {
        ranked[i].key = active[i].RemainingGb() /
                        std::max(active[i].full_rate_gbps, 1e-12);
      }
      std::sort(ranked.begin(), ranked.end(),
                [&](const Ranked& a, const Ranked& b) {
                  if (a.key != b.key) return a.key < b.key;
                  return fcfs_less(a, b);
                });
      break;
    case ConservativeOrder::kSmithRule:
      // Highest nodes-per-remaining-second first: Smith's rule with weight
      // N_i, so the storage channel releases blocked node-seconds fastest.
      for (std::size_t i = 0; i < active.size(); ++i) {
        double remaining_seconds = active[i].RemainingGb() /
                                   std::max(active[i].full_rate_gbps, 1e-12);
        ranked[i].key = static_cast<double>(active[i].nodes) /
                        std::max(remaining_seconds, 1e-9);
      }
      sort_key_desc();
      break;
  }

  std::vector<std::size_t> idx(active.size());
  for (std::size_t i = 0; i < ranked.size(); ++i) idx[i] = ranked[i].idx;
  return idx;
}

std::vector<RateGrant> ConservativePolicy::Assign(
    std::span<const IoJobView> active, double max_bandwidth_gbps,
    sim::SimTime now) {
  std::vector<RateGrant> grants(active.size());
  for (std::size_t i = 0; i < active.size(); ++i) {
    grants[i] = {active[i].id, 0.0};
  }
  if (active.empty()) return grants;

  std::vector<bool> admitted(active.size(), false);
  std::size_t admitted_count = 0;

  // A job whose solo demand b*N_i exceeds BWmax (an 8192+ node job on Mira)
  // can never "fit"; counting its demand as min(b*N_i, BWmax) lets it be
  // admitted (alone, rate-capped at the disks' speed) when it reaches the
  // head of the priority order instead of starving behind smaller jobs.
  auto demand = [&](const IoJobView& v) {
    return std::min(v.full_rate_gbps, max_bandwidth_gbps);
  };

  if (order_ == ConservativeOrder::kMaxUtil) {
    // Knapsack: weight = (capped) bandwidth demand, value = compute nodes.
    std::vector<KnapsackItem> items;
    items.reserve(active.size());
    for (const IoJobView& v : active) {
      items.push_back({demand(v), static_cast<double>(v.nodes)});
    }
    if (knapsack_counter_ != nullptr) knapsack_counter_->Inc();
    KnapsackSolution solution =
        SolveKnapsack01(items, max_bandwidth_gbps, /*unit=*/1.0);
    for (std::size_t i : solution.selected) {
      admitted[i] = true;
      ++admitted_count;
    }
  } else {
    std::vector<std::size_t> priority =
        ConservativePriorityOrder(active, order_, now);
    double available = max_bandwidth_gbps;
    for (std::size_t i : priority) {
      if (demand(active[i]) <= available) {
        admitted[i] = true;
        ++admitted_count;
        available -= demand(active[i]);
      }
    }
  }

  if (admitted_count == 0) {
    // Starvation guard: every candidate alone exceeds BWmax. Admit the
    // top-priority job capped at BWmax.
    std::vector<std::size_t> priority =
        ConservativePriorityOrder(active, order_, now);
    std::size_t head = priority.front();
    grants[head].rate_gbps =
        std::min(active[head].full_rate_gbps, max_bandwidth_gbps);
    return grants;
  }

  for (std::size_t i = 0; i < active.size(); ++i) {
    if (admitted[i]) {
      grants[i].rate_gbps =
          std::min(active[i].full_rate_gbps, max_bandwidth_gbps);
    }
  }
  return grants;
}

}  // namespace iosched::core
