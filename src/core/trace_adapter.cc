#include "core/trace_adapter.h"

#include <stdexcept>

namespace iosched::core {

SchedTraceAdapter::SchedTraceAdapter(obs::Tracer* tracer) : tracer_(tracer) {
  if (tracer_ == nullptr) {
    throw std::invalid_argument("SchedTraceAdapter: null tracer");
  }
}

void SchedTraceAdapter::OnSchedEvent(const SchedEvent& e) {
  const std::int64_t track = static_cast<std::int64_t>(e.job);
  switch (e.kind) {
    case SchedEventKind::kSubmit: {
      JobState& s = jobs_[e.job];
      s.waiting_since = e.time;
      tracer_->Instant(track, "submit", e.time, e.detail);
      break;
    }
    case SchedEventKind::kStart: {
      JobState& s = jobs_[e.job];
      tracer_->Span(track, "wait", s.waiting_since, e.time, e.detail);
      s.running = true;
      s.run_start = e.time;
      break;
    }
    case SchedEventKind::kIoRequest: {
      JobState& s = jobs_[e.job];
      s.in_io = true;
      s.io_start = e.time;
      break;
    }
    case SchedEventKind::kIoComplete: {
      JobState& s = jobs_[e.job];
      if (s.in_io) {
        tracer_->Span(track, "io", s.io_start, e.time, e.detail);
        s.in_io = false;
      }
      break;
    }
    case SchedEventKind::kEnd:
    case SchedEventKind::kKill: {
      JobState& s = jobs_[e.job];
      if (s.running) tracer_->Span(track, "run", s.run_start, e.time);
      if (e.kind == SchedEventKind::kKill) {
        tracer_->Instant(track, "walltime_kill", e.time);
      }
      jobs_.erase(e.job);
      break;
    }
    case SchedEventKind::kFaultKill: {
      JobState& s = jobs_[e.job];
      if (s.in_io) {
        tracer_->Span(track, "io", s.io_start, e.time);
        s.in_io = false;
      }
      if (s.running) {
        tracer_->Span(track, "run", s.run_start, e.time, e.detail);
        s.running = false;
      }
      tracer_->Instant(track, "fault_kill", e.time, e.detail);
      // A requeue/abandon decision follows at the same instant; until then
      // the job is back to waiting.
      s.waiting_since = e.time;
      break;
    }
    case SchedEventKind::kRequeue: {
      tracer_->Instant(track, "requeue", e.time, e.detail);
      break;
    }
    case SchedEventKind::kAbandon: {
      tracer_->Instant(track, "abandon", e.time);
      jobs_.erase(e.job);
      break;
    }
  }
}

void SchedTraceAdapter::Flush(sim::SimTime now) {
  for (const auto& [job, s] : jobs_) {
    const std::int64_t track = static_cast<std::int64_t>(job);
    if (s.in_io) tracer_->Span(track, "io", s.io_start, now);
    if (s.running) tracer_->Span(track, "run", s.run_start, now);
  }
  jobs_.clear();
}

}  // namespace iosched::core
