// Conservative I/O-aware policies (paper Section III-C.2): never let the
// admitted set's aggregate bandwidth exceed BWmax.
//
// Four variants differ only in how candidates are prioritised:
//   * Cons-FCFS       — by current request's start time (user fairness);
//   * Cons-MaxUtil    — 0-1 knapsack maximizing busy compute nodes;
//   * Cons-MinInstSld — ascending InstSld (Eq. 1);
//   * Cons-MinAggrSld — ascending AggrSld (Eq. 2).
//
// Except for MaxUtil (whose knapsack picks the set directly), admission is
// greedy in priority order, skipping candidates that no longer fit. To
// avoid starving a job whose solo demand exceeds BWmax (> 8,000 nodes on
// Mira), when nothing has been admitted the top-priority job is admitted
// with its rate capped at BWmax — a single huge job alone on the storage
// simply runs at disk speed.
#pragma once

#include "core/io_policy.h"

namespace iosched::obs {
class Counter;
}  // namespace iosched::obs

namespace iosched::core {

enum class ConservativeOrder {
  kFcfs,        // Cons-FCFS
  kMaxUtil,     // Cons-MaxUtil (knapsack; order field unused for packing)
  kMinInstSld,  // Cons-MinInstSld
  kMinAggrSld,  // Cons-MinAggrSld

  // Extensions beyond the paper (ablation subjects, see bench/):
  kShortestFirst,  // SJF: smallest remaining transfer time first
  kSmithRule,      // WSJF: highest N_i / remaining-time first — Smith's rule
                   // for minimizing node-weighted completion, i.e. the rate
                   // at which blocked partitions are released
};

class ConservativePolicy final : public GreedyAdapter {
 public:
  explicit ConservativePolicy(ConservativeOrder order);

  const std::string& name() const override;
  std::vector<RateGrant> Assign(std::span<const IoJobView> active,
                                double max_bandwidth_gbps,
                                sim::SimTime now) override;
  void BindObs(obs::Hub* hub) override;

  ConservativeOrder order() const { return order_; }

 private:
  ConservativeOrder order_;
  std::string name_;
  /// Counts SolveKnapsack01 calls (MaxUtil only); null when obs is off.
  obs::Counter* knapsack_counter_ = nullptr;
};

/// Priority-ordered index permutation of `active` for the given ordering at
/// time `now` (exposed for tests; MaxUtil falls back to FCFS order here).
std::vector<std::size_t> ConservativePriorityOrder(
    std::span<const IoJobView> active, ConservativeOrder order,
    sim::SimTime now);

}  // namespace iosched::core
