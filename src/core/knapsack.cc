#include "core/knapsack.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <numeric>
#include <stdexcept>

namespace iosched::core {

KnapsackSolution SolveKnapsack01(std::span<const KnapsackItem> items,
                                 double capacity, double unit) {
  if (capacity < 0 || unit <= 0) {
    throw std::invalid_argument("SolveKnapsack01: bad capacity/unit");
  }
  KnapsackSolution solution;
  if (items.empty() || capacity == 0) return solution;

  auto cap_units = static_cast<std::size_t>(std::floor(capacity / unit));
  if (cap_units == 0) return solution;

  // Discretised weights, rounded up (feasibility preserved). Thread-local
  // scratch: the solver runs every congested Cons-MaxUtil cycle, and the
  // driver's sweeps call policies from pool threads.
  thread_local std::vector<std::size_t> w;
  w.resize(items.size());
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (items[i].weight < 0 || items[i].value < 0) {
      throw std::invalid_argument("SolveKnapsack01: negative item");
    }
    w[i] = static_cast<std::size_t>(std::ceil(items[i].weight / unit - 1e-12));
    if (w[i] == 0 && items[i].weight > 0) w[i] = 1;
  }

  // Fast path: when every item fits individually and collectively (in the
  // same discretised units the DP would use) and all values are positive,
  // taking everything is the unique DP optimum — skip the table entirely.
  // This is the common uncongested case for Cons-MaxUtil, where the active
  // set's total demand is usually below BWmax. Accumulate value/weight in
  // the DP's reconstruction order (descending index) so the float sums are
  // bit-identical to the slow path's.
  bool all_fit = true;
  std::size_t total_w = 0;
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (w[i] > cap_units || items[i].value <= 0) {
      all_fit = false;
      break;
    }
    total_w += w[i];
  }
  if (all_fit && total_w <= cap_units) {
    solution.selected.resize(items.size());
    std::iota(solution.selected.begin(), solution.selected.end(),
              std::size_t{0});
    for (std::size_t i = items.size(); i-- > 0;) {
      solution.total_value += items[i].value;
      solution.total_weight += items[i].weight;
    }
    return solution;
  }

  // DP over capacity with per-item take bits for reconstruction. The take
  // matrix is a single flat allocation (items x cols), not a
  // vector-of-vector<bool> — this solver runs every congested cycle.
  const std::size_t cols = cap_units + 1;
  thread_local std::vector<double> best;
  best.assign(cols, 0.0);
  thread_local std::vector<std::uint8_t> take;
  take.assign(items.size() * cols, 0);
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (w[i] > cap_units) continue;
    std::uint8_t* take_row = take.data() + i * cols;
    // Iterate capacity downwards: classic 0/1 in-place update.
    for (std::size_t c = cap_units; c + 1 > w[i]; --c) {
      double candidate = best[c - w[i]] + items[i].value;
      if (candidate > best[c]) {
        best[c] = candidate;
        take_row[c] = 1;
      }
      if (c == 0) break;  // unsigned guard (w[i]==0 case)
    }
  }

  // Reconstruct from the full-capacity cell.
  std::size_t c = cap_units;
  for (std::size_t i = items.size(); i-- > 0;) {
    if (w[i] <= c && take[i * cols + c]) {
      solution.selected.push_back(i);
      solution.total_value += items[i].value;
      solution.total_weight += items[i].weight;
      c -= w[i];
    }
  }
  std::reverse(solution.selected.begin(), solution.selected.end());
  return solution;
}

}  // namespace iosched::core
