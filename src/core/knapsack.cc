#include "core/knapsack.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace iosched::core {

KnapsackSolution SolveKnapsack01(std::span<const KnapsackItem> items,
                                 double capacity, double unit) {
  if (capacity < 0 || unit <= 0) {
    throw std::invalid_argument("SolveKnapsack01: bad capacity/unit");
  }
  KnapsackSolution solution;
  if (items.empty() || capacity == 0) return solution;

  auto cap_units = static_cast<std::size_t>(std::floor(capacity / unit));
  if (cap_units == 0) return solution;

  // Discretised weights, rounded up (feasibility preserved).
  std::vector<std::size_t> w(items.size());
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (items[i].weight < 0 || items[i].value < 0) {
      throw std::invalid_argument("SolveKnapsack01: negative item");
    }
    w[i] = static_cast<std::size_t>(std::ceil(items[i].weight / unit - 1e-12));
    if (w[i] == 0 && items[i].weight > 0) w[i] = 1;
  }

  // DP over capacity with per-item take bits for reconstruction.
  const std::size_t cols = cap_units + 1;
  std::vector<double> best(cols, 0.0);
  std::vector<std::vector<bool>> take(items.size(),
                                      std::vector<bool>(cols, false));
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (w[i] > cap_units) continue;
    // Iterate capacity downwards: classic 0/1 in-place update.
    for (std::size_t c = cap_units; c + 1 > w[i]; --c) {
      double candidate = best[c - w[i]] + items[i].value;
      if (candidate > best[c]) {
        best[c] = candidate;
        take[i][c] = true;
      }
      if (c == 0) break;  // unsigned guard (w[i]==0 case)
    }
  }

  // Reconstruct from the full-capacity cell.
  std::size_t c = cap_units;
  for (std::size_t i = items.size(); i-- > 0;) {
    if (w[i] <= c && take[i][c]) {
      solution.selected.push_back(i);
      solution.total_value += items[i].value;
      solution.total_weight += items[i].weight;
      c -= w[i];
    }
  }
  std::reverse(solution.selected.begin(), solution.selected.end());
  return solution;
}

}  // namespace iosched::core
