#include "core/adaptive_policy.h"

#include <algorithm>
#include <numeric>
#include <vector>

#include "util/units.h"

namespace iosched::core {

const std::string& AdaptivePolicy::name() const {
  static const std::string kName = "ADAPTIVE";
  return kName;
}

sim::SimTime EarliestStartIfDeferred(std::span<const IoJobView> active,
                                     std::span<const std::uint8_t> admitted,
                                     std::span<const double> rates,
                                     std::size_t candidate,
                                     double max_bandwidth_gbps,
                                     sim::SimTime now) {
  double needed = std::min(active[candidate].full_rate_gbps,
                           max_bandwidth_gbps);
  double busy = 0.0;
  // (finish_time, released_bandwidth) for each admitted transfer.
  std::vector<std::pair<sim::SimTime, double>> releases;
  for (std::size_t i = 0; i < active.size(); ++i) {
    if (!admitted[i] || i == candidate) continue;
    busy += rates[i];
    if (rates[i] > 0) {
      releases.emplace_back(now + active[i].RemainingGb() / rates[i],
                            rates[i]);
    }
  }
  double available = max_bandwidth_gbps - busy;
  if (available >= needed - util::kVolumeEpsilon) return now;
  std::sort(releases.begin(), releases.end());
  for (const auto& [finish, released] : releases) {
    available += released;
    if (available >= needed - util::kVolumeEpsilon) return finish;
  }
  // Even with everything released the demand is capped at BWmax, so this is
  // only reachable when there are no releases at all.
  return now;
}

namespace {
/// Mean seconds-to-finish of the admitted set assuming each admitted job i
/// holds rate `rates[i]` from `now` on. Jobs with zero rate contribute the
/// cap horizon (they never finish); callers only compare estimates, so any
/// consistent large value works — we use the slowest finisher's time.
double MeanCompletionSeconds(std::span<const IoJobView> active,
                             std::span<const std::uint8_t> admitted,
                             std::span<const double> rates,
                             std::span<const double> extra_delay) {
  double total = 0.0;
  std::size_t count = 0;
  for (std::size_t i = 0; i < active.size(); ++i) {
    if (!admitted[i]) continue;
    double t = extra_delay[i];
    if (rates[i] > 0) {
      t += active[i].RemainingGb() / rates[i];
    }
    total += t;
    ++count;
  }
  return count ? total / static_cast<double>(count) : 0.0;
}

/// Per-node fair share over the admitted set (paper's congestion model).
void FairShare(std::span<const IoJobView> active,
               std::span<const std::uint8_t> admitted, double max_bandwidth_gbps,
               std::span<double> rates_out) {
  long long total_nodes = 0;
  double total_demand = 0.0;
  for (std::size_t i = 0; i < active.size(); ++i) {
    if (!admitted[i]) continue;
    total_nodes += active[i].nodes;
    total_demand += active[i].full_rate_gbps;
  }
  for (std::size_t i = 0; i < active.size(); ++i) {
    if (!admitted[i]) {
      rates_out[i] = 0.0;
    } else if (total_demand <= max_bandwidth_gbps || total_nodes == 0) {
      rates_out[i] = active[i].full_rate_gbps;
    } else {
      double per_node = max_bandwidth_gbps / static_cast<double>(total_nodes);
      rates_out[i] = std::min(active[i].full_rate_gbps,
                              per_node * active[i].nodes);
    }
  }
}
}  // namespace

std::vector<RateGrant> AdaptivePolicy::Assign(
    std::span<const IoJobView> active, double max_bandwidth_gbps,
    sim::SimTime now) {
  std::vector<RateGrant> grants(active.size());
  for (std::size_t i = 0; i < active.size(); ++i) {
    grants[i] = {active[i].id, 0.0};
  }
  if (active.empty()) return grants;

  // Line 2: FCFS priority by current request start time.
  std::vector<std::size_t> priority(active.size());
  std::iota(priority.begin(), priority.end(), 0);
  std::sort(priority.begin(), priority.end(),
            [&](std::size_t a, std::size_t b) {
              if (active[a].request_arrival != active[b].request_arrival) {
                return active[a].request_arrival < active[b].request_arrival;
              }
              return active[a].id < active[b].id;
            });

  std::vector<std::uint8_t> admitted(active.size(), 0);
  std::vector<double> rates(active.size(), 0.0);
  double available = max_bandwidth_gbps;
  bool overflowed = false;  // once true, BWavail is pinned to 0

  for (std::size_t i : priority) {
    // Solo-saturating jobs (b*N_i > BWmax) count as BWmax so they are
    // admitted when they head the FCFS order instead of starving.
    double demand = std::min(active[i].full_rate_gbps, max_bandwidth_gbps);
    if (!overflowed && demand <= available) {
      // Lines 7-9: plain FCFS admission.
      admitted[i] = 1;
      available -= demand;
      FairShare(active, admitted, max_bandwidth_gbps, rates);
      continue;
    }
    if (std::none_of(admitted.begin(), admitted.end(),
                     [](std::uint8_t a) { return a != 0; })) {
      // Nothing admitted yet and the first job alone exceeds BWmax: admit
      // capped (same starvation guard as the conservative family).
      admitted[i] = 1;
      overflowed = true;
      FairShare(active, admitted, max_bandwidth_gbps, rates);
      continue;
    }

    // Lines 11-13: compare deferring J_i vs letting it compete.
    sim::SimTime start_if_deferred = EarliestStartIfDeferred(
        active, admitted, rates, i, max_bandwidth_gbps, now);

    std::vector<std::uint8_t> with(admitted.begin(), admitted.end());
    with[i] = 1;
    std::vector<double> extra_delay(active.size(), 0.0);

    // T_FCFS: admitted jobs keep their current rates; J_i starts at
    // `start_if_deferred` and then runs at min(full, BWmax).
    std::vector<double> fcfs_rates(rates.begin(), rates.end());
    fcfs_rates[i] = std::min(demand, max_bandwidth_gbps);
    extra_delay[i] = start_if_deferred - now;
    double t_fcfs =
        MeanCompletionSeconds(active, with, fcfs_rates, extra_delay);

    // T_Adaptive: the enlarged set fair-shares BWmax immediately.
    std::vector<double> shared_rates(active.size(), 0.0);
    FairShare(active, with, max_bandwidth_gbps, shared_rates);
    extra_delay[i] = 0.0;
    double t_adaptive =
        MeanCompletionSeconds(active, with, shared_rates, extra_delay);

    if (t_adaptive < t_fcfs) {
      // Line 15-16: admit and compete; bandwidth budget is exhausted.
      admitted[i] = 1;
      overflowed = true;
      FairShare(active, admitted, max_bandwidth_gbps, rates);
    }
  }

  for (std::size_t i = 0; i < active.size(); ++i) {
    grants[i].rate_gbps = rates[i];
  }
  return grants;
}

}  // namespace iosched::core
