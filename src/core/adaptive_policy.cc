#include "core/adaptive_policy.h"

#include <algorithm>
#include <vector>

#include "obs/hub.h"
#include "storage/storage_model.h"
#include "util/units.h"

namespace iosched::core {

const std::string& AdaptivePolicy::name() const {
  static const std::string kName = "ADAPTIVE";
  static const std::string kPredictiveName = "PREDICTIVE_ADAPTIVE";
  return predictive_ ? kPredictiveName : kName;
}

void AdaptivePolicy::BindObs(obs::Hub* hub) {
  waterfill_counter_ = hub != nullptr ? hub->waterfill_iterations : nullptr;
}

namespace {
sim::SimTime EarliestStartImpl(
    std::span<const IoJobView> active, std::span<const std::uint8_t> admitted,
    std::span<const double> rates, std::size_t candidate,
    double max_bandwidth_gbps, sim::SimTime now,
    std::vector<std::pair<sim::SimTime, double>>& releases) {
  double needed = std::min(active[candidate].full_rate_gbps,
                           max_bandwidth_gbps);
  double busy = 0.0;
  // (finish_time, released_bandwidth) for each admitted transfer.
  releases.clear();
  for (std::size_t i = 0; i < active.size(); ++i) {
    if (!admitted[i] || i == candidate) continue;
    busy += rates[i];
    if (rates[i] > 0) {
      releases.emplace_back(now + active[i].RemainingGb() / rates[i],
                            rates[i]);
    }
  }
  double available = max_bandwidth_gbps - busy;
  if (available >= needed - util::kVolumeEpsilon) return now;
  std::sort(releases.begin(), releases.end());
  for (const auto& [finish, released] : releases) {
    available += released;
    if (available >= needed - util::kVolumeEpsilon) return finish;
  }
  // Even with everything released the demand is capped at BWmax, so this is
  // only reachable when there are no releases at all.
  return now;
}
}  // namespace

sim::SimTime EarliestStartIfDeferred(std::span<const IoJobView> active,
                                     std::span<const std::uint8_t> admitted,
                                     std::span<const double> rates,
                                     std::size_t candidate,
                                     double max_bandwidth_gbps,
                                     sim::SimTime now) {
  std::vector<std::pair<sim::SimTime, double>> releases;
  return EarliestStartImpl(active, admitted, rates, candidate,
                           max_bandwidth_gbps, now, releases);
}

namespace {
/// Mean seconds-to-finish of the admitted set assuming each admitted job i
/// holds rate `rates[i]` from `now` on. Jobs with zero rate contribute the
/// cap horizon (they never finish); callers only compare estimates, so any
/// consistent large value works — we use the slowest finisher's time.
double MeanCompletionSeconds(std::span<const IoJobView> active,
                             std::span<const std::uint8_t> admitted,
                             std::span<const double> rates,
                             std::span<const double> extra_delay) {
  double total = 0.0;
  std::size_t count = 0;
  for (std::size_t i = 0; i < active.size(); ++i) {
    if (!admitted[i]) continue;
    double t = extra_delay[i];
    if (rates[i] > 0) {
      t += active[i].RemainingGb() / rates[i];
    }
    total += t;
    ++count;
  }
  return count ? total / static_cast<double>(count) : 0.0;
}

/// Reusable buffers for gathering the admitted subset before water-filling.
struct FairShareScratch {
  std::vector<std::size_t> idx;
  std::vector<double> demands;
  std::vector<int> nodes;
  std::vector<double> shares;
};

/// Fair share of BWmax over the admitted set (paper's congestion model):
/// proportional to node counts, water-filling slack from demand-capped jobs
/// back into the pool (storage::WaterFillRates) so no bandwidth is
/// stranded.
void FairShare(std::span<const IoJobView> active,
               std::span<const std::uint8_t> admitted,
               double max_bandwidth_gbps, std::span<double> rates_out,
               FairShareScratch& scratch,
               std::uint64_t* wf_iterations = nullptr) {
  scratch.idx.clear();
  scratch.demands.clear();
  scratch.nodes.clear();
  for (std::size_t i = 0; i < active.size(); ++i) {
    if (admitted[i]) {
      scratch.idx.push_back(i);
      scratch.demands.push_back(active[i].full_rate_gbps);
      scratch.nodes.push_back(active[i].nodes);
    } else {
      rates_out[i] = 0.0;
    }
  }
  scratch.shares.resize(scratch.idx.size());
  storage::WaterFillRates(scratch.demands, scratch.nodes, max_bandwidth_gbps,
                          scratch.shares, wf_iterations);
  for (std::size_t k = 0; k < scratch.idx.size(); ++k) {
    rates_out[scratch.idx[k]] = scratch.shares[k];
  }
}
}  // namespace

std::vector<RateGrant> AdaptivePolicy::Assign(
    std::span<const IoJobView> active, double max_bandwidth_gbps,
    sim::SimTime now) {
  std::vector<RateGrant> grants(active.size());
  for (std::size_t i = 0; i < active.size(); ++i) {
    grants[i] = {active[i].id, 0.0};
  }
  if (active.empty()) return grants;

  // Line 2: FCFS priority by current request start time. Sort cached
  // (arrival, id) keys instead of indices into the wide view records.
  struct Ranked {
    sim::SimTime arrival;
    workload::JobId id;
    std::size_t idx;
  };
  // All per-cycle temporaries below are thread_local scratch: Assign runs
  // every scheduling cycle (and the driver's sweeps call policies from pool
  // threads), and the dozen short-lived vectors dominated its allocation
  // profile.
  thread_local std::vector<Ranked> priority;
  priority.clear();
  priority.reserve(active.size());
  for (std::size_t i = 0; i < active.size(); ++i) {
    priority.push_back({active[i].request_arrival, active[i].id, i});
  }
  std::sort(priority.begin(), priority.end(),
            [](const Ranked& a, const Ranked& b) {
              if (a.arrival != b.arrival) return a.arrival < b.arrival;
              return a.id < b.id;
            });

  thread_local std::vector<std::uint8_t> admitted;
  admitted.assign(active.size(), 0);
  thread_local std::vector<double> rates;
  rates.assign(active.size(), 0.0);
  double available = max_bandwidth_gbps;
  bool overflowed = false;     // once true, BWavail is pinned to 0
  std::size_t admitted_count = 0;

  thread_local FairShareScratch scratch;
  thread_local std::vector<std::pair<sim::SimTime, double>> releases;
  thread_local std::vector<std::uint8_t> with;
  with.resize(active.size());
  thread_local std::vector<double> extra_delay;
  extra_delay.resize(active.size());
  thread_local std::vector<double> fcfs_rates;
  fcfs_rates.resize(active.size());
  thread_local std::vector<double> shared_rates;
  shared_rates.resize(active.size());

  // The fair shares are a pure function of the admitted set, so a run of
  // consecutive admissions only needs one recomputation at the next point
  // the rates are actually read (the deferral comparison, or the final
  // grant fill). The values are identical to eager recomputation.
  bool rates_dirty = false;
  std::uint64_t wf_iters = 0;
  auto refresh_rates = [&] {
    if (rates_dirty) {
      FairShare(active, admitted, max_bandwidth_gbps, rates, scratch,
                &wf_iters);
      rates_dirty = false;
    }
  };

  for (const Ranked& r : priority) {
    const std::size_t i = r.idx;
    // Solo-saturating jobs (b*N_i > BWmax) count as BWmax so they are
    // admitted when they head the FCFS order instead of starving.
    double demand = std::min(active[i].full_rate_gbps, max_bandwidth_gbps);
    if (!overflowed && demand <= available) {
      // Lines 7-9: plain FCFS admission.
      admitted[i] = 1;
      ++admitted_count;
      available -= demand;
      rates_dirty = true;
      continue;
    }
    if (admitted_count == 0) {
      // Nothing admitted yet and the first job alone exceeds BWmax: admit
      // capped (same starvation guard as the conservative family).
      admitted[i] = 1;
      ++admitted_count;
      overflowed = true;
      rates_dirty = true;
      continue;
    }
    if (tiers().bb_enabled &&
        (tiers().bb_queued_gb >
             kBacklogDeferralFraction * tiers().bb_capacity_gb ||
         tiers().bb_faulted || tiers().drain_factor < 1.0)) {
      // Deep drain backlog — or a degraded/failed buffer, which is the same
      // congestion signal arriving early: a faulted buffer spills every new
      // request onto the direct path, and a degraded drain holds its
      // reservation longer than planned. Over-admitting would stretch the
      // direct transfers either way; defer like Cons-FCFS until the tier
      // recovers.
      continue;
    }
    if (flush_backlog_gb() >=
            kFlushBacklogDeferralSeconds * max_bandwidth_gbps &&
        flush_backlog_count() > 0) {
      // Deep parked-flush backlog: the checkpoint flushes this policy
      // benched are pent-up demand that reclaims the channel the moment it
      // clears. Over-admitting would push that moment out (and with it
      // every flush's durability point); defer like Cons-FCFS instead.
      continue;
    }
    if (predictive_ && prediction().enabled &&
        prediction().imminent_rate_gbps >=
            kStormDeferralFraction * max_bandwidth_gbps) {
      // Predicted burst storm: the forecast demand due within the horizon
      // rivals the channel itself. Over-admitting now would stretch exactly
      // the transfers the storm is about to pile onto; defer discretionary
      // admissions like Cons-FCFS until the predicted pressure passes.
      continue;
    }

    // Lines 11-13: compare deferring J_i vs letting it compete.
    refresh_rates();
    sim::SimTime start_if_deferred = EarliestStartImpl(
        active, admitted, rates, i, max_bandwidth_gbps, now, releases);

    std::copy(admitted.begin(), admitted.end(), with.begin());
    with[i] = 1;
    std::fill(extra_delay.begin(), extra_delay.end(), 0.0);

    // T_FCFS: admitted jobs keep their current rates; J_i starts at
    // `start_if_deferred` and then runs at min(full, BWmax).
    std::copy(rates.begin(), rates.end(), fcfs_rates.begin());
    fcfs_rates[i] = std::min(demand, max_bandwidth_gbps);
    extra_delay[i] = start_if_deferred - now;
    double t_fcfs =
        MeanCompletionSeconds(active, with, fcfs_rates, extra_delay);

    // T_Adaptive: the enlarged set fair-shares BWmax immediately.
    FairShare(active, with, max_bandwidth_gbps, shared_rates, scratch,
              &wf_iters);
    extra_delay[i] = 0.0;
    double t_adaptive =
        MeanCompletionSeconds(active, with, shared_rates, extra_delay);

    if (t_adaptive < t_fcfs) {
      // Line 15-16: admit and compete; bandwidth budget is exhausted.
      admitted[i] = 1;
      ++admitted_count;
      overflowed = true;
      rates_dirty = true;
    }
  }

  refresh_rates();
  if (waterfill_counter_ != nullptr && wf_iters > 0) {
    waterfill_counter_->Inc(wf_iters);
  }
  for (std::size_t i = 0; i < active.size(); ++i) {
    grants[i].rate_gbps = rates[i];
  }
  return grants;
}

bool AdaptivePolicy::DeferFlush(const FlushView& flush,
                                double active_demand_gbps,
                                double max_bandwidth_gbps, sim::SimTime now) {
  (void)flush;
  (void)now;
  // Hold flushes while the burst-buffer drain is behind: releasing one now
  // would add direct traffic to exactly the channel the drain reservation
  // is competing with. A faulted buffer does NOT defer — the flush data can
  // only reach the PFS over the direct path then.
  if (tiers().bb_enabled &&
      (tiers().bb_queued_gb >
           kBacklogDeferralFraction * tiers().bb_capacity_gb ||
       tiers().drain_factor < 1.0)) {
    return true;
  }
  // Otherwise release as soon as the direct channel has headroom.
  return active_demand_gbps >= max_bandwidth_gbps - util::kVolumeEpsilon;
}

}  // namespace iosched::core
