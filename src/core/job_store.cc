#include "core/job_store.h"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace iosched::core {

std::uint32_t JobStore::Add(workload::JobId id, const JobContext& ctx) {
  std::uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
  } else {
    slot = static_cast<std::uint32_t>(contexts_.size());
  }
  if (!index_.emplace(id, slot).second) {
    throw std::logic_error("JobStore: job " + std::to_string(id) +
                           " already registered");
  }
  if (slot == contexts_.size()) {
    contexts_.push_back(ctx);
  } else {
    free_slots_.pop_back();
    contexts_[slot] = ctx;
  }
  return slot;
}

void JobStore::Remove(workload::JobId id) {
  auto it = index_.find(id);
  if (it == index_.end()) {
    throw std::logic_error("JobStore: job " + std::to_string(id) +
                           " not registered");
  }
  std::uint32_t slot = it->second;
  index_.erase(it);
  contexts_[slot] = JobContext{};
  free_slots_.push_back(slot);
}

std::uint32_t JobStore::SlotOf(workload::JobId id) const {
  auto it = index_.find(id);
  return it == index_.end() ? kInvalidSlot : it->second;
}

JobContext* JobStore::Find(workload::JobId id) {
  auto it = index_.find(id);
  return it == index_.end() ? nullptr : &contexts_[it->second];
}

const JobContext* JobStore::Find(workload::JobId id) const {
  auto it = index_.find(id);
  return it == index_.end() ? nullptr : &contexts_[it->second];
}

void JobStore::SortedIds(std::vector<workload::JobId>& out) const {
  out.clear();
  out.reserve(index_.size());
  for (const auto& [id, _] : index_) out.push_back(id);
  std::sort(out.begin(), out.end());
}

void JobStore::Clear() {
  contexts_.clear();
  free_slots_.clear();
  index_.clear();
}

}  // namespace iosched::core
