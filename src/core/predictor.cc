#include "core/predictor.h"

#include <cmath>
#include <stdexcept>

namespace iosched::core {

IoBehaviorPredictor::IoBehaviorPredictor(Options options) : options_(options) {
  if (options_.alpha <= 0 || options_.alpha > 1) {
    throw std::invalid_argument("IoBehaviorPredictor: alpha not in (0,1]");
  }
  if (options_.node_bandwidth_gbps <= 0) {
    throw std::invalid_argument("IoBehaviorPredictor: bad node bandwidth");
  }
}

void IoBehaviorPredictor::Ewma::Update(double fraction, double phases,
                                       double efficiency, double alpha) {
  if (count == 0) {
    io_fraction = fraction;
    io_phases = phases;
    io_efficiency = efficiency;
  } else {
    io_fraction += alpha * (fraction - io_fraction);
    io_phases += alpha * (phases - io_phases);
    io_efficiency += alpha * (efficiency - io_efficiency);
  }
  ++count;
}

void IoBehaviorPredictor::Observe(const workload::Job& job) {
  double fraction = job.IoFraction(options_.node_bandwidth_gbps);
  auto phases = static_cast<double>(job.IoPhaseCount());
  double efficiency = job.io_efficiency;
  global_.Update(fraction, phases, efficiency, options_.alpha);
  if (!job.project.empty()) {
    by_project_[job.project].Update(fraction, phases, efficiency,
                                    options_.alpha);
  }
  if (!job.user.empty()) {
    by_user_[job.user].Update(fraction, phases, efficiency, options_.alpha);
  }
}

const IoBehaviorPredictor::Ewma* IoBehaviorPredictor::Lookup(
    const std::unordered_map<std::string, Ewma>& table,
    const std::string& key) const {
  if (key.empty()) return nullptr;
  auto it = table.find(key);
  if (it == table.end()) return nullptr;
  if (it->second.count < options_.min_support) return nullptr;
  return &it->second;
}

IoPrediction IoBehaviorPredictor::Predict(const workload::Job& job) const {
  const Ewma* source = Lookup(by_project_, job.project);
  if (source == nullptr) source = Lookup(by_user_, job.user);
  if (source == nullptr && global_.count > 0) source = &global_;
  IoPrediction prediction;
  if (source == nullptr) return prediction;  // no history at all
  prediction.io_fraction = source->io_fraction;
  prediction.io_phases = source->io_phases;
  prediction.io_efficiency = source->io_efficiency;
  prediction.support = source->count;
  return prediction;
}

double EvaluateFractionError(const IoBehaviorPredictor& predictor,
                             const workload::Workload& jobs,
                             double node_bandwidth_gbps) {
  if (jobs.empty()) return 0.0;
  double total = 0.0;
  for (const workload::Job& job : jobs) {
    IoPrediction p = predictor.Predict(job);
    total += std::abs(p.io_fraction - job.IoFraction(node_bandwidth_gbps));
  }
  return total / static_cast<double>(jobs.size());
}

}  // namespace iosched::core
