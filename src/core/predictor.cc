#include "core/predictor.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "ckpt/serializer.h"

namespace iosched::core {
namespace {

/// Evidence ramp of one provenance level: full trust at min_support
/// observations, linear below, zero without any observation.
double LevelWeight(std::size_t count, std::size_t min_support) {
  if (count == 0) return 0.0;
  if (min_support == 0) return 1.0;
  double w = static_cast<double>(count) / static_cast<double>(min_support);
  return w < 1.0 ? w : 1.0;
}

}  // namespace

IoBehaviorPredictor::IoBehaviorPredictor(Options options) : options_(options) {
  if (options_.alpha <= 0 || options_.alpha > 1) {
    throw std::invalid_argument("IoBehaviorPredictor: alpha not in (0,1]");
  }
  if (options_.node_bandwidth_gbps <= 0) {
    throw std::invalid_argument("IoBehaviorPredictor: bad node bandwidth");
  }
}

void IoBehaviorPredictor::Ewma::Update(double fraction, double phases,
                                       double efficiency, double alpha) {
  if (count == 0) {
    io_fraction = fraction;
    io_phases = phases;
    io_efficiency = efficiency;
  } else {
    io_fraction += alpha * (fraction - io_fraction);
    io_phases += alpha * (phases - io_phases);
    io_efficiency += alpha * (efficiency - io_efficiency);
  }
  ++count;
}

void IoBehaviorPredictor::Observe(const workload::Job& job) {
  double fraction = job.IoFraction(options_.node_bandwidth_gbps);
  auto phases = static_cast<double>(job.IoPhaseCount());
  double efficiency = job.io_efficiency;
  global_.Update(fraction, phases, efficiency, options_.alpha);
  if (!job.project.empty()) {
    by_project_[job.project].Update(fraction, phases, efficiency,
                                    options_.alpha);
  }
  if (!job.user.empty()) {
    by_user_[job.user].Update(fraction, phases, efficiency, options_.alpha);
  }
}

const IoBehaviorPredictor::Ewma* IoBehaviorPredictor::Find(
    const std::unordered_map<std::string, Ewma>& table,
    const std::string& key) const {
  if (key.empty()) return nullptr;
  auto it = table.find(key);
  return it == table.end() ? nullptr : &it->second;
}

IoPrediction IoBehaviorPredictor::Predict(const workload::Job& job) const {
  IoPrediction prediction;
  if (global_.count == 0) return prediction;  // no history at all
  // Start from the global average and blend in the more specific levels,
  // each weighted by its evidence ramp: w = min(1, count / min_support).
  // A well-supported project overrides everything (w = 1); a thin one
  // contributes proportionally and the coarser levels fill the rest.
  prediction.io_fraction = global_.io_fraction;
  prediction.io_phases = global_.io_phases;
  prediction.io_efficiency = global_.io_efficiency;
  auto blend = [&prediction](const Ewma& src, double w) {
    prediction.io_fraction += w * (src.io_fraction - prediction.io_fraction);
    prediction.io_phases += w * (src.io_phases - prediction.io_phases);
    prediction.io_efficiency +=
        w * (src.io_efficiency - prediction.io_efficiency);
  };
  const Ewma* user = Find(by_user_, job.user);
  double weight_user = 0.0;
  if (user != nullptr) {
    weight_user = LevelWeight(user->count, options_.min_support);
    blend(*user, weight_user);
  }
  const Ewma* project = Find(by_project_, job.project);
  double weight_project = 0.0;
  if (project != nullptr) {
    weight_project = LevelWeight(project->count, options_.min_support);
    blend(*project, weight_project);
  }
  // Report the evidence behind the strongest contributing level; ties go to
  // the more specific level. Never zero here: global_ has history.
  double eff_project = weight_project;
  double eff_user = (1.0 - weight_project) * weight_user;
  double eff_global = (1.0 - weight_project) * (1.0 - weight_user);
  if (project != nullptr && eff_project >= eff_user &&
      eff_project >= eff_global) {
    prediction.support = project->count;
  } else if (user != nullptr && eff_user >= eff_global) {
    prediction.support = user->count;
  } else {
    prediction.support = global_.count;
  }
  return prediction;
}

void IoBehaviorPredictor::SaveState(ckpt::Writer& writer) const {
  auto save_ewma = [&writer](const Ewma& e) {
    writer.F64(e.io_fraction);
    writer.F64(e.io_phases);
    writer.F64(e.io_efficiency);
    writer.U64(e.count);
  };
  save_ewma(global_);
  auto save_table =
      [&](const std::unordered_map<std::string, Ewma>& table) {
        std::vector<const std::string*> keys;
        keys.reserve(table.size());
        for (const auto& [key, value] : table) keys.push_back(&key);
        std::sort(keys.begin(), keys.end(),
                  [](const std::string* a, const std::string* b) {
                    return *a < *b;
                  });
        writer.U64(table.size());
        for (const std::string* key : keys) {
          writer.Str(*key);
          save_ewma(table.at(*key));
        }
      };
  save_table(by_project_);
  save_table(by_user_);
}

void IoBehaviorPredictor::RestoreState(ckpt::Reader& reader) {
  auto load_ewma = [&reader](Ewma& e) {
    e.io_fraction = reader.F64();
    e.io_phases = reader.F64();
    e.io_efficiency = reader.F64();
    e.count = static_cast<std::size_t>(reader.U64());
  };
  load_ewma(global_);
  auto load_table = [&](std::unordered_map<std::string, Ewma>& table) {
    table.clear();
    std::uint64_t n = reader.U64();
    for (std::uint64_t i = 0; i < n; ++i) {
      std::string key = reader.Str();
      load_ewma(table[key]);
    }
  };
  load_table(by_project_);
  load_table(by_user_);
}

double EvaluateFractionError(const IoBehaviorPredictor& predictor,
                             const workload::Workload& jobs,
                             double node_bandwidth_gbps) {
  if (jobs.empty()) return 0.0;
  double total = 0.0;
  for (const workload::Job& job : jobs) {
    IoPrediction p = predictor.Predict(job);
    total += std::abs(p.io_fraction - job.IoFraction(node_bandwidth_gbps));
  }
  return total / static_cast<double>(jobs.size());
}

PrequentialResult EvaluatePrequential(IoBehaviorPredictor& predictor,
                                      const workload::Workload& jobs,
                                      double node_bandwidth_gbps) {
  PrequentialResult result;
  double total = 0.0;
  for (const workload::Job& job : jobs) {
    IoPrediction p = predictor.Predict(job);
    if (p.support == 0) ++result.cold_jobs;
    total += std::abs(p.io_fraction - job.IoFraction(node_bandwidth_gbps));
    predictor.Observe(job);
    ++result.evaluated;
  }
  if (result.evaluated > 0) {
    result.mae_fraction = total / static_cast<double>(result.evaluated);
  }
  return result;
}

}  // namespace iosched::core
