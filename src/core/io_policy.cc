#include "core/io_policy.h"

#include <cmath>
#include <stdexcept>
#include <string>
#include <unordered_map>

#include "util/units.h"

namespace iosched::core {

void ValidateGrants(std::span<const IoJobView> active,
                    std::span<const RateGrant> grants) {
  if (active.size() != grants.size()) {
    throw std::logic_error("ValidateGrants: grant count mismatch");
  }
  // Fast path: every in-tree policy emits grants[i] for active[i], so the
  // common case validates positionally with no id map. Fall back to the
  // order-insensitive check only when the alignment doesn't hold.
  bool aligned = true;
  for (std::size_t i = 0; i < grants.size(); ++i) {
    if (grants[i].id != active[i].id) {
      aligned = false;
      break;
    }
  }
  if (aligned) {
    for (std::size_t i = 0; i < grants.size(); ++i) {
      if (grants[i].rate_gbps < 0) {
        throw std::logic_error("ValidateGrants: negative rate for job " +
                               std::to_string(grants[i].id));
      }
      if (grants[i].rate_gbps >
          util::MaxGrantableRate(active[i].full_rate_gbps)) {
        throw std::logic_error("ValidateGrants: job " +
                               std::to_string(grants[i].id) +
                               " granted above its full rate");
      }
    }
    return;
  }
  std::unordered_map<workload::JobId, double> by_id;
  by_id.reserve(grants.size());
  for (const RateGrant& g : grants) {
    if (g.rate_gbps < 0) {
      throw std::logic_error("ValidateGrants: negative rate for job " +
                             std::to_string(g.id));
    }
    if (!by_id.emplace(g.id, g.rate_gbps).second) {
      throw std::logic_error("ValidateGrants: duplicate grant for job " +
                             std::to_string(g.id));
    }
  }
  for (const IoJobView& v : active) {
    auto it = by_id.find(v.id);
    if (it == by_id.end()) {
      throw std::logic_error("ValidateGrants: missing grant for job " +
                             std::to_string(v.id));
    }
    if (it->second > util::MaxGrantableRate(v.full_rate_gbps)) {
      throw std::logic_error("ValidateGrants: job " + std::to_string(v.id) +
                             " granted above its full rate");
    }
  }
}

const CycleInputs& GreedyAdapter::NoInputs() {
  static const CycleInputs kEmpty;
  return kEmpty;
}

void ValidateReservations(std::span<const PlanReservation> reservations,
                          sim::SimTime now, double max_bandwidth_gbps,
                          double bb_capacity_gb) {
  double active_rate = 0.0;
  double promised_bb = 0.0;
  for (std::size_t i = 0; i < reservations.size(); ++i) {
    const PlanReservation& r = reservations[i];
    auto fail = [&](const std::string& what) {
      throw std::logic_error("ValidateReservations: entry " +
                             std::to_string(i) + " (job " +
                             std::to_string(r.job) + "): " + what);
    };
    if (!std::isfinite(r.start) || !std::isfinite(r.end)) {
      fail("non-finite interval");
    }
    if (r.end < r.start) fail("end before start");
    if (!std::isfinite(r.rate_gbps) || r.rate_gbps < 0) {
      fail("invalid rate " + std::to_string(r.rate_gbps));
    }
    if (!std::isfinite(r.bb_gb) || r.bb_gb < 0) {
      fail("invalid absorb promise " + std::to_string(r.bb_gb));
    }
    if (r.start <= now && now < r.end) active_rate += r.rate_gbps;
    promised_bb += r.bb_gb;
  }
  if (active_rate > max_bandwidth_gbps + util::kVolumeEpsilon) {
    throw std::logic_error(
        "ValidateReservations: reservations active now sum to " +
        std::to_string(active_rate) + " GB/s, above the channel's " +
        std::to_string(max_bandwidth_gbps));
  }
  if (bb_capacity_gb > 0 &&
      promised_bb > bb_capacity_gb + util::kVolumeEpsilon) {
    throw std::logic_error(
        "ValidateReservations: absorb promises sum to " +
        std::to_string(promised_bb) + " GB, above the buffer's " +
        std::to_string(bb_capacity_gb));
  }
}

}  // namespace iosched::core
