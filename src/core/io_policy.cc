#include "core/io_policy.h"

#include <stdexcept>
#include <string>
#include <unordered_map>

#include "util/units.h"

namespace iosched::core {

void ValidateGrants(std::span<const IoJobView> active,
                    std::span<const RateGrant> grants) {
  if (active.size() != grants.size()) {
    throw std::logic_error("ValidateGrants: grant count mismatch");
  }
  // Fast path: every in-tree policy emits grants[i] for active[i], so the
  // common case validates positionally with no id map. Fall back to the
  // order-insensitive check only when the alignment doesn't hold.
  bool aligned = true;
  for (std::size_t i = 0; i < grants.size(); ++i) {
    if (grants[i].id != active[i].id) {
      aligned = false;
      break;
    }
  }
  if (aligned) {
    for (std::size_t i = 0; i < grants.size(); ++i) {
      if (grants[i].rate_gbps < 0) {
        throw std::logic_error("ValidateGrants: negative rate for job " +
                               std::to_string(grants[i].id));
      }
      if (grants[i].rate_gbps >
          util::MaxGrantableRate(active[i].full_rate_gbps)) {
        throw std::logic_error("ValidateGrants: job " +
                               std::to_string(grants[i].id) +
                               " granted above its full rate");
      }
    }
    return;
  }
  std::unordered_map<workload::JobId, double> by_id;
  by_id.reserve(grants.size());
  for (const RateGrant& g : grants) {
    if (g.rate_gbps < 0) {
      throw std::logic_error("ValidateGrants: negative rate for job " +
                             std::to_string(g.id));
    }
    if (!by_id.emplace(g.id, g.rate_gbps).second) {
      throw std::logic_error("ValidateGrants: duplicate grant for job " +
                             std::to_string(g.id));
    }
  }
  for (const IoJobView& v : active) {
    auto it = by_id.find(v.id);
    if (it == by_id.end()) {
      throw std::logic_error("ValidateGrants: missing grant for job " +
                             std::to_string(v.id));
    }
    if (it->second > util::MaxGrantableRate(v.full_rate_gbps)) {
      throw std::logic_error("ValidateGrants: job " + std::to_string(v.id) +
                             " granted above its full rate");
    }
  }
}

}  // namespace iosched::core
