// PLAN_BF policy — plan-based scheduling with shared burst-buffer
// reservations after Kopanski & Rzadca, "Plan-Based Job Scheduling for
// Supercomputers with Shared Burst Buffers" (the planning family's
// reservation-based member; see DESIGN.md §13).
//
// Plan builds a reservation table over the coming window from the cycle
// inputs: one infrastructure reservation (job 0) covering the burst-buffer
// drain backlog, then one reservation per predicted imminent burst in ETA
// order — each promising a starvation floor of PFS bandwidth over the
// burst's expected interval (capped at the burst's fair share of the
// channel, so promise-keeping cannot distort the allocation) and absorb
// capacity in the buffer at its start. Promised rates are capped so the
// table can never oversubscribe BWmax, and absorb promises never exceed
// the capacity left above the current drain queue; the InvariantChecker
// audits exactly these properties through Reservations().
//
// Execute honors the table: transfers holding an active reservation drink
// their reserved rate first (their floor was promised), then the residual
// budget is max-min water-filled across the remaining demand, with the
// usual solo-saturating starvation guard.
//
// The policy also extends EASY backfill: AdmitBackfill rejects a backfill
// candidate whose largest I/O burst would not fit the buffer's projected
// free capacity net of the absorb promises still pending — such a job would
// spill to the direct PFS path mid-run, stretch past its walltime estimate,
// and push out the very reservation backfilling must protect. A pending
// promise is discounted by what the drain clears while its burst absorbs
// (occupancy added by a burst is volume - drain*duration, not the full
// volume); without the discount every oracle-predicted burst would pin its
// whole volume for the window and the veto would reject essentially all
// backfill whenever prediction is good, which inverts the feature.
//
// The table and window are cross-cycle state and are checkpointed; a
// resumed run honors the same promises bit-exactly.
#pragma once

#include "core/io_policy.h"

namespace iosched::core {

class PlanBfPolicy final : public IoPolicy {
 public:
  const std::string& name() const override;

  IoPlan Plan(const PlanContext& ctx) override;
  std::vector<RateGrant> Execute(const PlanContext& ctx,
                                 const PlanCursor& cursor) override;
  sim::SimTime NextPlanEvent(const PlanContext& ctx) const override;
  bool WantsPlanning() const override { return true; }
  std::span<const PlanReservation> Reservations() const override {
    return reservations_;
  }
  bool AdmitBackfill(const workload::Job& job, sim::SimTime now,
                     double projected_free_bb_gb) const override;

  void SaveState(ckpt::Writer& w) const override;
  void RestoreState(ckpt::Reader& r) override;

  /// Summed gross absorb promises currently on the table (exposed for
  /// tests; AdmitBackfill uses the net-of-drain PendingAbsorbGb instead).
  double CommittedAbsorbGb() const;

  /// Absorb promises still outstanding at `now`, each discounted by what
  /// the drain clears over its burst's own interval (exposed for tests).
  double PendingAbsorbGb(sim::SimTime now) const;

  /// Fallback window when the configured value is unusable.
  static constexpr double kDefaultWindowSeconds = 600.0;

 private:
  std::vector<PlanReservation> reservations_;
  sim::SimTime valid_until_ = 0.0;
  /// Drain rate observed when the table was built; prices the net
  /// occupancy of pending promises in AdmitBackfill. Checkpointed with
  /// the table so a resumed run prices them identically.
  double plan_drain_gbps_ = 0.0;
  /// Buffer capacity observed when the table was built; bursts larger
  /// than this bypass the veto (they spill whenever the job runs).
  double plan_bb_capacity_gb_ = 0.0;
};

}  // namespace iosched::core
