// Runtime I/O coordination (paper Section III-B, Figure 6).
//
// The IoScheduler is the framework piece that makes the batch scheduler
// "I/O-aware": it monitors every in-flight I/O request (the blue arrow in
// Figure 6) and, on each scheduling cycle — an I/O request arriving or
// completing — asks the configured policy for a bandwidth assignment and
// imposes it on the storage model (the yellow arrow: dynamic control of
// running jobs, i.e. suspending/resuming their I/O).
//
// It also maintains the per-job accounting the slowdown metrics need
// (completed compute seconds, completed uncongested I/O seconds) and drives
// the single pending completion event on the simulator.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <unordered_map>

#include "ckpt/serializer.h"
#include "core/io_policy.h"
#include "core/job_store.h"
#include "core/predictor.h"
#include "metrics/bandwidth.h"
#include "sim/simulator.h"
#include "storage/backend.h"
#include "storage/burst_buffer.h"
#include "storage/storage_model.h"
#include "util/rng.h"
#include "workload/job.h"

namespace iosched::obs {
class Hub;
}  // namespace iosched::obs

namespace iosched::core {

/// Deadline/timeout semantics for direct PFS transfers (the graceful-
/// degradation response to straggling storage). A transfer still in flight
/// `timeout_seconds` after submission is aborted (its progress is kept) and
/// the remaining volume is resubmitted after a jittered exponential backoff;
/// after `max_retries` resubmissions the transfer runs unwatched to
/// completion, so a pathological straggler degrades throughput but can never
/// wedge a job.
struct TransferRetryConfig {
  /// Deadline per transfer attempt (seconds); 0 disables timeouts entirely.
  double timeout_seconds = 0.0;
  /// Resubmissions before the transfer runs unwatched.
  int max_retries = 3;
  /// First backoff delay (seconds); doubles per retry.
  double backoff_base_seconds = 30.0;
  /// Backoff ceiling (seconds); the doubling clamps here.
  double backoff_max_seconds = 600.0;
  /// Optional seeded jitter: each delay is scaled by a uniform factor in
  /// [1 - f, 1 + f]. 0 disables (no RNG draws).
  double backoff_jitter_fraction = 0.0;
  /// Seed for the jitter draws.
  std::uint64_t jitter_seed = 1;

  bool enabled() const { return timeout_seconds > 0; }
  /// Error description, or empty when valid.
  std::string Validate() const;
};

/// Replan cadence for planning policies (PERIODIC, PLAN_BF). The scheduler
/// asks the policy for a fresh plan when the standing one expires
/// (`window_seconds` after it was computed, or earlier if the plan itself
/// returned a tighter valid_until), when the active set has churned through
/// `churn_cycles` scheduling cycles since the last plan (0 disables the
/// churn trigger), or when the policy reports PlanInvalidated. Greedy
/// policies ignore all of this: their plans never expire and they replan
/// only on (free) pointer-latching Plan calls after a restore.
struct PlanConfig {
  /// Planning-window length (seconds); also handed to the policy as the
  /// horizon it should plan for. Must be > 0.
  double window_seconds = 600.0;
  /// Pattern slice length for PERIODIC (seconds). Must be > 0.
  double slice_seconds = 30.0;
  /// Replan after this many scheduling cycles under one plan (0 = only the
  /// window / invalidation triggers).
  std::uint64_t churn_cycles = 0;

  /// Error description, or empty when valid.
  std::string Validate() const;
};

/// Checkpoint-flush-aware scheduling (application checkpoint traffic). When
/// enabled, I/O requests submitted with the flush flag become *deferrable*:
/// a policy may park a direct-path flush while it reports congestion, and
/// the scheduler force-releases it `max_defer_seconds` after submission —
/// the durability of an application checkpoint may be delayed, never
/// denied. Disabled (the default), flush requests behave exactly like
/// ordinary I/O and no flush state exists.
struct FlushDeferralConfig {
  bool enabled = false;
  /// Longest a policy may hold a ready flush (seconds). 0 = flushes are
  /// never parked even when the feature is enabled.
  double max_defer_seconds = 0.0;
};

/// How a completed I/O request reached (or will reach) the PFS — delivered
/// with every completion callback. A direct-path request is durable on the
/// PFS the instant it completes. A burst-buffer-absorbed request is only
/// *staged* at completion: its bytes are durable once the buffer's
/// cumulative drained volume passes `durable_drain_gb` (captured when the
/// request was absorbed, FIFO drain order makes the threshold exact).
struct IoCompletionInfo {
  bool absorbed = false;
  double durable_drain_gb = 0.0;
};

class IoScheduler {
 public:
  /// Called when a job's current I/O request has fully transferred.
  using CompletionCallback = std::function<void(
      workload::JobId, sim::SimTime, const IoCompletionInfo&)>;

  /// All references must outlive the IoScheduler. `node_bandwidth_gbps` is
  /// the per-node link speed b used to derive each job's full I/O rate.
  /// The scheduler registers itself as the storage model's bandwidth-change
  /// listener, so a runtime SetMaxBandwidth (degradation/repair) re-runs
  /// water-filling immediately — no caller-side ForceReschedule needed.
  IoScheduler(sim::Simulator& simulator, storage::StorageModel& storage,
              double node_bandwidth_gbps, std::unique_ptr<IoPolicy> policy,
              CompletionCallback on_complete);

  /// Convenience: construct against a storage backend — the PFS tier is
  /// `backend.model()` and the absorbing tier (when the backend has one) is
  /// attached automatically.
  IoScheduler(sim::Simulator& simulator, storage::StorageBackend& backend,
              double node_bandwidth_gbps, std::unique_ptr<IoPolicy> policy,
              CompletionCallback on_complete)
      : IoScheduler(simulator, backend.model(), node_bandwidth_gbps,
                    std::move(policy), std::move(on_complete)) {
    AttachBurstBuffer(backend.burst_buffer());
  }

  /// Detaches the bandwidth-change listener (the storage model may outlive
  /// the scheduler, e.g. in test fixtures).
  ~IoScheduler();

  /// Register a job when it starts running (t_start for AggrSld).
  void RegisterJob(const workload::Job& job, sim::SimTime start_time);

  /// Remove a finished job's context. Its transfer must already be done.
  void UnregisterJob(workload::JobId id);

  /// Account a finished compute phase (feeds AggrSld's denominator).
  void AddCompletedCompute(workload::JobId id, double seconds);

  /// A job issues its next I/O request of `volume_gb`; triggers a
  /// scheduling cycle. Volume must be > 0 (callers skip empty phases).
  /// `is_flush` marks a checkpoint flush: with flush-aware scheduling
  /// enabled the request becomes deferrable on the direct path (see
  /// FlushDeferralConfig); otherwise the flag is ignored.
  void SubmitRequest(workload::JobId id, double volume_gb, sim::SimTime now,
                     bool is_flush = false);

  /// Abort a job's in-flight request without completing it (walltime or
  /// fault kill). No completion callback fires; a scheduling cycle
  /// redistributes the freed bandwidth. Also cancels a pending burst-buffer
  /// absorbed completion. No-op if the job has no request in flight.
  void AbortRequest(workload::JobId id, sim::SimTime now);

  /// Force an immediate scheduling cycle outside the normal request
  /// arrival/completion triggers — used when the storage capacity changes
  /// under the policy (degradation/repair), so conservative policies
  /// instantly produce assignments feasible against the new BWmax.
  void ForceReschedule(sim::SimTime now);

  /// Attach observability (null detaches); also rebinds the policy's
  /// instruments. The hub must outlive the scheduler or be detached first.
  void SetObs(obs::Hub* hub);

  /// Close the open congestion episode, if any, at `now`. Call once after
  /// the simulation drains so the trace's last span has an end.
  void FlushObs(sim::SimTime now);

  /// Number of jobs currently performing/awaiting I/O.
  std::size_t active_requests() const { return storage_.active_count(); }

  const IoPolicy& policy() const { return *policy_; }

  /// Scheduling cycles executed (policy invocations).
  std::uint64_t cycles() const { return cycles_; }

  /// Attach a bandwidth tracker; every scheduling cycle records a sample
  /// (demand, grant, suspended count). Pass nullptr to detach. The tracker
  /// must outlive the scheduler or be detached first.
  void SetBandwidthTracker(metrics::BandwidthTracker* tracker) {
    bandwidth_tracker_ = tracker;
  }

  /// Attach a burst buffer (nullptr detaches). Requests that fit its free
  /// space (and the job's quota) are absorbed at the absorb-tier rate
  /// (bypassing the policy); the drain reserves its bandwidth out of BWmax,
  /// shrinking what the policy can grant to direct traffic. Tier-aware
  /// policies receive a TierState each cycle while a buffer is attached.
  /// The buffer must outlive the scheduler.
  void AttachBurstBuffer(storage::BurstBuffer* burst_buffer) {
    burst_buffer_ = burst_buffer;
  }

  /// Total I/O requests submitted (absorbed + direct).
  std::uint64_t submitted_requests() const { return submitted_requests_; }

  /// Configure transfer deadlines/retries (call before the run starts).
  /// Throws std::invalid_argument on invalid fields.
  void SetRetryConfig(const TransferRetryConfig& config);

  /// Configure checkpoint-flush-aware scheduling (call before the run
  /// starts). Throws std::invalid_argument on a negative deferral bound.
  void ConfigureFlushScheduling(const FlushDeferralConfig& config);

  /// Configure the replan cadence (call before the run starts). Throws
  /// std::invalid_argument on invalid fields. Meaningful only for planning
  /// policies; harmless otherwise.
  void ConfigurePlanning(const PlanConfig& config);

  /// Plans built so far (0 until the first scheduling cycle; greedy
  /// policies plan exactly once per process/restore).
  std::uint64_t replans() const { return replans_; }

  /// Wall-clock seconds spent inside IoPolicy::Plan (host-side measurement
  /// for the plan-quality study; never feeds back into simulated time).
  double plan_wall_seconds() const { return plan_wall_seconds_; }

  /// Cumulative volume the burst buffer has drained to the PFS by `now`
  /// (0 without a buffer). Settles the drain to `now` first, so callers can
  /// compare it against IoCompletionInfo::durable_drain_gb thresholds.
  double TotalDrainedGb(sim::SimTime now);

  /// Flush-deferral counters (for reports).
  std::uint64_t flush_deferrals() const { return flush_deferrals_; }
  std::uint64_t forced_flush_releases() const {
    return forced_flush_releases_;
  }
  /// Parked flushes right now (GB / count).
  double deferred_flush_gb() const { return deferred_backlog_gb_; }
  std::size_t deferred_flush_count() const {
    return deferred_flushes_.size();
  }

  /// Enumerate parked flushes in job-id order (invariant checking): the
  /// callback receives (job, volume_gb, submit_time, release_deadline).
  template <typename Fn>
  void ForEachDeferredFlush(Fn&& fn) const {
    for (const auto& [id, flush] : deferred_flushes_) {
      fn(id, flush.volume_gb, flush.submit_time, flush.fire_time);
    }
  }

  /// Enable prediction-driven scheduling (call before the run starts).
  /// In "learned" mode an IoBehaviorPredictor is trained online from
  /// completed jobs (ObserveCompletion); "oracle" reads each job's exact
  /// profile from the trace; "null" never produces a signal. While enabled,
  /// every scheduling cycle delivers a PredictionState to the policy before
  /// Assign. When disabled (the default) no predictor exists, no per-cycle
  /// work happens, and results are bit-identical to a prediction-free build.
  void ConfigurePrediction(const PredictionConfig& config);

  /// Feed a job that ran to normal completion to the learned predictor.
  /// Call before UnregisterJob. No-op unless learned prediction is enabled.
  void ObserveCompletion(workload::JobId id);

  /// The learned predictor, or nullptr when not in learned mode (tests).
  const IoBehaviorPredictor* predictor() const { return predictor_.get(); }

  /// Install the seeded per-transfer straggler draw (fault injection): the
  /// callback returns the effective-rate multiplier for the next direct
  /// submission (1.0 = nominal). Null detaches — with no draw installed,
  /// submissions never consume RNG state, keeping fault-free runs
  /// digest-identical.
  void SetStragglerDraw(std::function<double()> draw) {
    straggler_draw_ = std::move(draw);
  }

  /// Burst-buffer fault edge (fault injection). On fault the buffer stops
  /// absorbing; with `lose_data` the staged data is dropped and every
  /// in-flight absorbed request re-flushes its full volume over the direct
  /// path. On repair the buffer absorbs again. Requires an attached buffer.
  void OnBurstBufferFault(bool faulted, bool lose_data, sim::SimTime now);

  /// Drain-rate degradation edge (fault injection): settle the drain at the
  /// old rate, apply the factor, and re-plan. Requires an attached buffer.
  void OnDrainFactorChange(double factor, sim::SimTime now);

  /// Robustness counters (for reports).
  std::uint64_t transfer_timeouts() const { return transfer_timeouts_; }
  std::uint64_t transfer_retries() const { return transfer_retries_; }
  std::uint64_t straggler_spills() const { return straggler_spills_; }
  std::uint64_t reflushed_requests() const { return reflushed_requests_; }

  /// Build the policy view of the active set at `now` (exposed for tests).
  std::vector<IoJobView> BuildViews(sim::SimTime now) const;

  /// Serialize per-job accounting, cycle counters, congestion-span state,
  /// and the scheduler's pending events (completion, drain, absorbed
  /// completions) with their original event ids and firing times. The
  /// storage model saves its own transfer set.
  void SaveState(ckpt::Writer& w) const;
  /// Restore onto a freshly built scheduler; `resolve` maps job ids back to
  /// workload entries (must cover every saved id). Re-arms pending events
  /// under their original ids.
  void RestoreState(
      ckpt::Reader& r,
      const std::function<const workload::Job*(workload::JobId)>& resolve);

 private:
  /// Run one scheduling cycle: advance progress, re-assign rates, and
  /// reschedule the completion event.
  void Reschedule(sim::SimTime now);

  /// Refill `views` (cleared first) with the policy view of the active set.
  void FillViews(std::vector<IoJobView>& views) const;

  /// Rebuild cycle_inputs_.prediction for the current cycle: one
  /// PredictedBurst per computing job with a usable (support > 0)
  /// prediction, plus the imminent aggregates over the configured horizon.
  void BuildPredictionState(sim::SimTime now);

  /// Refresh cycle_inputs_ for this cycle at the same points the old
  /// per-cycle observer hooks delivered: tiers while a buffer is attached,
  /// prediction while enabled, flush backlog while flush-aware scheduling
  /// is on. Fields of disabled features keep their defaults.
  void RefreshCycleInputs(sim::SimTime now);

  /// Replan-or-execute decision for this cycle: (re)build the plan when
  /// there is none, the standing one expired or churned out, or the policy
  /// invalidated it; then Execute against the standing plan.
  std::vector<RateGrant> PlanAndExecute(const PlanContext& ctx);

  /// Re-arm the plan review event from the policy's NextPlanEvent (planning
  /// policies only; greedy policies never add simulator events).
  void ArmPlanReview(const PlanContext& ctx);
  /// Closure for the plan review event (fresh arming and checkpoint
  /// re-arming).
  std::function<void()> PlanReviewAction();

  /// The mode's prediction for `job`: learned predictor, exact trace
  /// profile (oracle), or the support-0 default (null).
  IoPrediction PredictFor(const workload::Job& job) const;

  /// Completion event handler: finish every complete transfer, then cycle.
  void OnCompletionEvent();

  /// Storage bandwidth-change listener body: emit the obs instant and run a
  /// cycle so grants are feasible against the new cap before time advances.
  void OnBandwidthChange(double new_bwmax_gbps, sim::SimTime now);

  /// Closure used for both fresh scheduling and checkpoint re-arming of a
  /// burst-buffer-absorbed completion.
  std::function<void()> AbsorbedAction(workload::JobId id, double duration);

  /// Closure for a deferred flush's forced-release deadline.
  std::function<void()> FlushReleaseAction(workload::JobId id);
  /// Park a ready direct-path flush on the deferral bench.
  void ParkFlush(workload::JobId id, double volume_gb, sim::SimTime now);
  /// End-of-cycle sweep: release every parked flush that is past its
  /// deadline or that the policy no longer defers.
  void ReleaseDeferredFlushes(sim::SimTime now);

  /// Closures for deadline/retry events (fresh scheduling and re-arming).
  std::function<void()> DeadlineAction(workload::JobId id);
  std::function<void()> RetryAction(workload::JobId id);

  /// Begin a direct PFS transfer for `id` (drawing a straggler factor when
  /// one is installed) and arm its deadline when timeouts are enabled and
  /// the retry budget allows.
  void BeginDirectTransfer(workload::JobId id, double volume_gb,
                           sim::SimTime now, int retries);
  /// Deadline fired: abort the straggling transfer (progress kept) and
  /// schedule the resubmission after a jittered exponential backoff.
  void OnTransferDeadline(workload::JobId id);
  /// Backoff elapsed: resubmit the remaining volume as a fresh transfer.
  void OnTransferRetry(workload::JobId id);
  /// Clamped, optionally jittered exponential backoff for retry `retries`.
  double BackoffDelay(int retries);

  sim::Simulator& simulator_;
  storage::StorageModel& storage_;
  double node_bandwidth_gbps_;
  std::unique_ptr<IoPolicy> policy_;
  CompletionCallback on_complete_;
  /// Slot-stable per-job accounting: each active transfer caches its job's
  /// slot on the storage model (SetUserSlot), so the per-cycle view build
  /// is pure array indexing — no hash probes on the hot path.
  JobStore jobs_;
  sim::EventId pending_event_ = 0;
  bool has_pending_event_ = false;
  sim::SimTime pending_event_time_ = 0.0;
  sim::EventId drain_event_ = 0;
  bool has_drain_event_ = false;
  sim::SimTime drain_event_time_ = 0.0;
  std::uint64_t cycles_ = 0;
  std::uint64_t submitted_requests_ = 0;
  /// A pending completion of a burst-buffer-absorbed request: the event (so
  /// kills can cancel it), its firing time, and the transfer duration its
  /// closure credits (all three checkpointed to re-arm the closure).
  struct AbsorbedEvent {
    sim::EventId event = 0;
    sim::SimTime fire_time = 0.0;
    double duration = 0.0;
    /// Request volume — needed to re-flush when a lossy BB fault drops the
    /// staged data out from under the pending completion.
    double volume_gb = 0.0;
    /// Durability threshold delivered with the completion: the buffer's
    /// cumulative drained volume at which this request's bytes are on the
    /// PFS (captured at absorb time; see IoCompletionInfo).
    double durable_gb = 0.0;
  };
  /// Keyed by job; one request per job at a time.
  std::unordered_map<workload::JobId, AbsorbedEvent> absorbed_events_;
  /// An armed per-transfer deadline: cancelled on completion/abort; on fire
  /// the transfer is aborted and resubmitted after backoff.
  struct DeadlineEvent {
    sim::EventId event = 0;
    sim::SimTime fire_time = 0.0;
    /// Retries already consumed by this job's current request.
    int retries = 0;
  };
  std::unordered_map<workload::JobId, DeadlineEvent> deadline_events_;
  /// A resubmission waiting out its backoff (the job holds no transfer).
  struct PendingRetry {
    sim::EventId event = 0;
    sim::SimTime fire_time = 0.0;
    double remaining_gb = 0.0;
    /// Retries consumed including the upcoming resubmission.
    int retries = 0;
  };
  std::unordered_map<workload::JobId, PendingRetry> pending_retries_;
  /// A checkpoint flush parked by the policy: its forced-release event,
  /// that event's firing time (= the deferral deadline), the submit time,
  /// and the flush volume. std::map: deterministic release order and
  /// checkpoint bytes.
  struct DeferredFlush {
    sim::EventId event = 0;
    sim::SimTime fire_time = 0.0;
    sim::SimTime submit_time = 0.0;
    double volume_gb = 0.0;
  };
  std::map<workload::JobId, DeferredFlush> deferred_flushes_;
  FlushDeferralConfig flush_config_;
  /// Sum of parked volumes (maintained incrementally; the per-cycle policy
  /// observation).
  double deferred_backlog_gb_ = 0.0;
  std::uint64_t flush_deferrals_ = 0;
  std::uint64_t forced_flush_releases_ = 0;
  /// Guards the release sweep against re-entering itself through the
  /// nested Reschedule a release triggers.
  bool releasing_flushes_ = false;
  TransferRetryConfig retry_config_;
  util::Rng jitter_rng_{1, /*stream=*/31};
  std::function<double()> straggler_draw_;
  std::uint64_t transfer_timeouts_ = 0;
  std::uint64_t transfer_retries_ = 0;
  std::uint64_t straggler_spills_ = 0;
  std::uint64_t reflushed_requests_ = 0;
  metrics::BandwidthTracker* bandwidth_tracker_ = nullptr;
  storage::BurstBuffer* burst_buffer_ = nullptr;
  obs::Hub* hub_ = nullptr;
  /// Congestion-episode span state (demand above usable bandwidth).
  bool congested_ = false;
  sim::SimTime congestion_start_ = 0.0;
  /// Burst-buffer-tier congestion episode (occupancy above the watermark).
  bool bb_congested_ = false;
  sim::SimTime bb_congestion_start_ = 0.0;
  /// Prediction-driven scheduling (off by default). The predictor only
  /// exists in learned mode; the per-cycle PredictionState is rebuilt from
  /// scratch each cycle, so only the predictor itself is checkpointed.
  PredictionConfig prediction_config_;
  std::unique_ptr<IoBehaviorPredictor> predictor_;
  /// Per-cycle policy observations; handed to Plan/Execute by pointer.
  /// Member (not stack) so GreedyAdapter's latched pointer stays valid
  /// between cycles (DeferFlush reads the previous cycle's snapshot, the
  /// same stale-snapshot semantics the old observer members had).
  CycleInputs cycle_inputs_;
  /// Two-phase plan state. `policy_is_planning_` caches WantsPlanning()
  /// (it gates the review event, the plan checkpoint section, and the
  /// backfill hook).
  PlanConfig plan_config_;
  bool policy_is_planning_ = false;
  bool has_plan_ = false;
  sim::SimTime plan_computed_at_ = 0.0;
  sim::SimTime plan_valid_until_ = 0.0;
  std::uint64_t replans_ = 0;
  std::uint64_t cycles_in_plan_ = 0;
  double plan_wall_seconds_ = 0.0;
  /// Plan review event: wakes the scheduler at the next plan boundary
  /// (slice edge, reservation edge, window expiry) so planning policies can
  /// change rates when no request arrives or completes there. Same
  /// cancel/re-arm triplet pattern as the drain event.
  sim::EventId review_event_ = 0;
  bool has_review_event_ = false;
  sim::SimTime review_event_time_ = 0.0;
  /// Cycle-scratch buffers (capacity reused across the ~1 cycle per event
  /// of a month-long replay; cleared each use).
  std::vector<IoJobView> views_scratch_;
  std::vector<workload::JobId> done_scratch_;
  std::vector<workload::JobId> ids_scratch_;
};

}  // namespace iosched::core
