// Runtime I/O coordination (paper Section III-B, Figure 6).
//
// The IoScheduler is the framework piece that makes the batch scheduler
// "I/O-aware": it monitors every in-flight I/O request (the blue arrow in
// Figure 6) and, on each scheduling cycle — an I/O request arriving or
// completing — asks the configured policy for a bandwidth assignment and
// imposes it on the storage model (the yellow arrow: dynamic control of
// running jobs, i.e. suspending/resuming their I/O).
//
// It also maintains the per-job accounting the slowdown metrics need
// (completed compute seconds, completed uncongested I/O seconds) and drives
// the single pending completion event on the simulator.
#pragma once

#include <functional>
#include <memory>
#include <unordered_map>

#include "ckpt/serializer.h"
#include "core/io_policy.h"
#include "metrics/bandwidth.h"
#include "sim/simulator.h"
#include "storage/backend.h"
#include "storage/burst_buffer.h"
#include "storage/storage_model.h"
#include "workload/job.h"

namespace iosched::obs {
class Hub;
}  // namespace iosched::obs

namespace iosched::core {

class IoScheduler {
 public:
  /// Called when a job's current I/O request has fully transferred.
  using CompletionCallback =
      std::function<void(workload::JobId, sim::SimTime)>;

  /// All references must outlive the IoScheduler. `node_bandwidth_gbps` is
  /// the per-node link speed b used to derive each job's full I/O rate.
  /// The scheduler registers itself as the storage model's bandwidth-change
  /// listener, so a runtime SetMaxBandwidth (degradation/repair) re-runs
  /// water-filling immediately — no caller-side ForceReschedule needed.
  IoScheduler(sim::Simulator& simulator, storage::StorageModel& storage,
              double node_bandwidth_gbps, std::unique_ptr<IoPolicy> policy,
              CompletionCallback on_complete);

  /// Convenience: construct against a storage backend — the PFS tier is
  /// `backend.model()` and the absorbing tier (when the backend has one) is
  /// attached automatically.
  IoScheduler(sim::Simulator& simulator, storage::StorageBackend& backend,
              double node_bandwidth_gbps, std::unique_ptr<IoPolicy> policy,
              CompletionCallback on_complete)
      : IoScheduler(simulator, backend.model(), node_bandwidth_gbps,
                    std::move(policy), std::move(on_complete)) {
    AttachBurstBuffer(backend.burst_buffer());
  }

  /// Detaches the bandwidth-change listener (the storage model may outlive
  /// the scheduler, e.g. in test fixtures).
  ~IoScheduler();

  /// Register a job when it starts running (t_start for AggrSld).
  void RegisterJob(const workload::Job& job, sim::SimTime start_time);

  /// Remove a finished job's context. Its transfer must already be done.
  void UnregisterJob(workload::JobId id);

  /// Account a finished compute phase (feeds AggrSld's denominator).
  void AddCompletedCompute(workload::JobId id, double seconds);

  /// A job issues its next I/O request of `volume_gb`; triggers a
  /// scheduling cycle. Volume must be > 0 (callers skip empty phases).
  void SubmitRequest(workload::JobId id, double volume_gb, sim::SimTime now);

  /// Abort a job's in-flight request without completing it (walltime or
  /// fault kill). No completion callback fires; a scheduling cycle
  /// redistributes the freed bandwidth. Also cancels a pending burst-buffer
  /// absorbed completion. No-op if the job has no request in flight.
  void AbortRequest(workload::JobId id, sim::SimTime now);

  /// Force an immediate scheduling cycle outside the normal request
  /// arrival/completion triggers — used when the storage capacity changes
  /// under the policy (degradation/repair), so conservative policies
  /// instantly produce assignments feasible against the new BWmax.
  void ForceReschedule(sim::SimTime now);

  /// Attach observability (null detaches); also rebinds the policy's
  /// instruments. The hub must outlive the scheduler or be detached first.
  void SetObs(obs::Hub* hub);

  /// Close the open congestion episode, if any, at `now`. Call once after
  /// the simulation drains so the trace's last span has an end.
  void FlushObs(sim::SimTime now);

  /// Number of jobs currently performing/awaiting I/O.
  std::size_t active_requests() const { return storage_.active_count(); }

  const IoPolicy& policy() const { return *policy_; }

  /// Scheduling cycles executed (policy invocations).
  std::uint64_t cycles() const { return cycles_; }

  /// Attach a bandwidth tracker; every scheduling cycle records a sample
  /// (demand, grant, suspended count). Pass nullptr to detach. The tracker
  /// must outlive the scheduler or be detached first.
  void SetBandwidthTracker(metrics::BandwidthTracker* tracker) {
    bandwidth_tracker_ = tracker;
  }

  /// Attach a burst buffer (nullptr detaches). Requests that fit its free
  /// space (and the job's quota) are absorbed at the absorb-tier rate
  /// (bypassing the policy); the drain reserves its bandwidth out of BWmax,
  /// shrinking what the policy can grant to direct traffic. Tier-aware
  /// policies receive a TierState each cycle while a buffer is attached.
  /// The buffer must outlive the scheduler.
  void AttachBurstBuffer(storage::BurstBuffer* burst_buffer) {
    burst_buffer_ = burst_buffer;
  }

  /// Total I/O requests submitted (absorbed + direct).
  std::uint64_t submitted_requests() const { return submitted_requests_; }

  /// Build the policy view of the active set at `now` (exposed for tests).
  std::vector<IoJobView> BuildViews(sim::SimTime now) const;

  /// Serialize per-job accounting, cycle counters, congestion-span state,
  /// and the scheduler's pending events (completion, drain, absorbed
  /// completions) with their original event ids and firing times. The
  /// storage model saves its own transfer set.
  void SaveState(ckpt::Writer& w) const;
  /// Restore onto a freshly built scheduler; `resolve` maps job ids back to
  /// workload entries (must cover every saved id). Re-arms pending events
  /// under their original ids.
  void RestoreState(
      ckpt::Reader& r,
      const std::function<const workload::Job*(workload::JobId)>& resolve);

 private:
  struct JobContext {
    const workload::Job* job = nullptr;
    sim::SimTime start_time = 0.0;
    double completed_compute_seconds = 0.0;
    double completed_io_seconds = 0.0;  // uncongested equivalents
  };

  /// Run one scheduling cycle: advance progress, re-assign rates, and
  /// reschedule the completion event.
  void Reschedule(sim::SimTime now);

  /// Refill `views` (cleared first) with the policy view of the active set.
  void FillViews(std::vector<IoJobView>& views) const;

  /// Completion event handler: finish every complete transfer, then cycle.
  void OnCompletionEvent();

  /// Storage bandwidth-change listener body: emit the obs instant and run a
  /// cycle so grants are feasible against the new cap before time advances.
  void OnBandwidthChange(double new_bwmax_gbps, sim::SimTime now);

  /// Closure used for both fresh scheduling and checkpoint re-arming of a
  /// burst-buffer-absorbed completion.
  std::function<void()> AbsorbedAction(workload::JobId id, double duration);

  sim::Simulator& simulator_;
  storage::StorageModel& storage_;
  double node_bandwidth_gbps_;
  std::unique_ptr<IoPolicy> policy_;
  CompletionCallback on_complete_;
  std::unordered_map<workload::JobId, JobContext> jobs_;
  sim::EventId pending_event_ = 0;
  bool has_pending_event_ = false;
  sim::SimTime pending_event_time_ = 0.0;
  sim::EventId drain_event_ = 0;
  bool has_drain_event_ = false;
  sim::SimTime drain_event_time_ = 0.0;
  std::uint64_t cycles_ = 0;
  std::uint64_t submitted_requests_ = 0;
  /// A pending completion of a burst-buffer-absorbed request: the event (so
  /// kills can cancel it), its firing time, and the transfer duration its
  /// closure credits (all three checkpointed to re-arm the closure).
  struct AbsorbedEvent {
    sim::EventId event = 0;
    sim::SimTime fire_time = 0.0;
    double duration = 0.0;
  };
  /// Keyed by job; one request per job at a time.
  std::unordered_map<workload::JobId, AbsorbedEvent> absorbed_events_;
  metrics::BandwidthTracker* bandwidth_tracker_ = nullptr;
  storage::BurstBuffer* burst_buffer_ = nullptr;
  obs::Hub* hub_ = nullptr;
  /// Congestion-episode span state (demand above usable bandwidth).
  bool congested_ = false;
  sim::SimTime congestion_start_ = 0.0;
  /// Burst-buffer-tier congestion episode (occupancy above the watermark).
  bool bb_congested_ = false;
  sim::SimTime bb_congestion_start_ = 0.0;
  /// Cycle-scratch buffers (capacity reused across the ~1 cycle per event
  /// of a month-long replay; cleared each use).
  mutable std::vector<const storage::Transfer*> active_scratch_;
  std::vector<IoJobView> views_scratch_;
  std::vector<workload::JobId> done_scratch_;
};

}  // namespace iosched::core
