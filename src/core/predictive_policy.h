// PREDICTIVE policy: Cons-FCFS with prediction-driven headroom (the paper's
// Section VI future work made concrete).
//
// Each cycle the scheduler hands the policy a PredictionState listing the
// bursts its predictor expects from currently computing jobs. The policy
// admits requests FCFS like Cons-FCFS, but against a budget reduced by a
// reservation proportional to the volume of bursts due within the
// prediction horizon: the reserved slack lets those bursts start at a
// useful rate instead of arriving into a fully subscribed channel. The
// reservation is capped at kMaxHeadroomFraction of BWmax so present
// traffic is never starved for a forecast, and the Cons-FCFS starvation
// guard is unchanged (a solo-saturating head job still runs at full BWmax).
//
// With prediction disabled — or when every prediction has support 0 ("no
// signal", e.g. the null predictor or an all-unseen workload) — the
// reservation is zero and the policy is grant-for-grant identical to
// Cons-FCFS.
#pragma once

#include "core/io_policy.h"

namespace iosched::core {

class PredictivePolicy final : public GreedyAdapter {
 public:
  const std::string& name() const override;
  std::vector<RateGrant> Assign(std::span<const IoJobView> active,
                                double max_bandwidth_gbps,
                                sim::SimTime now) override;

  /// Ceiling on the reserved headroom, as a fraction of BWmax.
  static constexpr double kMaxHeadroomFraction = 0.5;

  /// The headroom (GB/s) the policy would reserve out of `max_bandwidth_gbps`
  /// given the current prediction snapshot — GreedyAdapter::prediction(),
  /// refreshed by the framework each cycle while prediction is enabled and
  /// all-default ("no prediction" = Cons-FCFS) otherwise. Exposed for
  /// tests: predicted imminent volume spread over the horizon, capped at
  /// the ceiling.
  double ReservedHeadroomGbps(double max_bandwidth_gbps) const;
};

}  // namespace iosched::core
