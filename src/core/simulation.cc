#include "core/simulation.h"

#include <algorithm>
#include <optional>
#include <stdexcept>
#include <unordered_map>
#include <vector>

#include "core/io_scheduler.h"
#include "core/policy_factory.h"
#include "core/trace_adapter.h"
#include "faults/fault_injector.h"
#include "sim/simulator.h"
#include "util/units.h"

namespace iosched::core {

namespace {

/// Per-running-job execution state: walks the phase list.
struct ExecState {
  const workload::Job* job = nullptr;
  machine::Partition partition;
  sim::SimTime start_time = 0.0;
  std::size_t next_phase = 0;
  /// Time the current I/O request was issued (for io_time_actual).
  sim::SimTime io_request_start = 0.0;
  double io_time_actual = 0.0;
  /// Whether the job is currently blocked in an I/O request.
  bool in_io = false;
  /// Pending walltime-kill event (enforce_walltime mode only).
  sim::EventId kill_event = 0;
  bool has_kill_event = false;
  /// Pending compute-phase-completion event (cancelled on kill).
  sim::EventId compute_event = 0;
  bool has_compute_event = false;
};

/// Bookkeeping for a fault-killed job across its attempts.
struct RetryContext {
  /// Failed attempts so far (== the scheduler's retry count).
  int failures = 0;
  /// Machine time burned by failed attempts.
  double lost_seconds = 0.0;
  /// First phase the next attempt executes (restart-mode dependent).
  std::size_t resume_phase = 0;
};

class Engine {
 public:
  Engine(const SimulationConfig& config, const workload::Workload& jobs,
         EventLog* event_log, obs::Hub* hub)
      : config_(config),
        jobs_(jobs),
        event_log_(event_log),
        hub_(hub),
        machine_(config.machine),
        storage_(config.storage),
        batch_(machine_, config.batch),
        utilization_(config.machine.total_nodes()),
        bandwidth_tracker_(config.storage.max_bandwidth_gbps),
        io_scheduler_(simulator_, storage_, config.machine.node_bandwidth_gbps,
                      MakePolicy(config.policy),
                      [this](workload::JobId id, sim::SimTime now) {
                        OnIoComplete(id, now);
                      }),
        base_bwmax_(config.storage.max_bandwidth_gbps) {
    if (config_.track_bandwidth) {
      io_scheduler_.SetBandwidthTracker(&bandwidth_tracker_);
    }
    if (event_log_ != nullptr) sinks_.push_back(event_log_);
    if (hub_ != nullptr) {
      trace_adapter_.emplace(&hub_->tracer());
      sinks_.push_back(&*trace_adapter_);
      simulator_.SetEventCounter(hub_->events_processed);
      io_scheduler_.SetObs(hub_);
      batch_.SetObs(hub_);
    }
    if (config_.burst_buffer.enabled()) {
      if (config_.burst_buffer.drain_gbps >=
          config_.storage.max_bandwidth_gbps) {
        throw std::invalid_argument(
            "RunSimulation: burst-buffer drain must stay below BWmax");
      }
      burst_buffer_.emplace(config_.burst_buffer);
      io_scheduler_.AttachBurstBuffer(&*burst_buffer_);
    }
    if (config_.faults.enabled()) {
      faults::FaultPlan plan = config_.faults.explicit_plan;
      if (plan.Empty() && config_.faults.plan_config.enabled) {
        plan = faults::BuildFaultPlan(config_.faults.plan_config,
                                      PlanHorizon(),
                                      config_.machine.total_midplanes());
      }
      faults::FaultHooks hooks;
      hooks.set_bandwidth_factor = [this](double factor, sim::SimTime now) {
        // Re-accrue in-flight transfers at the old rates up to `now`, swap
        // the cap, then force a cycle so every policy immediately re-plans
        // against the new BWmax (the validator only runs post-cycle, so a
        // shrink can never look like an over-assignment).
        storage_.SetMaxBandwidth(base_bwmax_ * factor, now);
        io_scheduler_.ForceReschedule(now);
      };
      hooks.set_midplane_faulted = [this](int midplane, bool faulted,
                                          sim::SimTime now) {
        OnMidplaneEdge(midplane, faulted, now);
      };
      hooks.kill_job = [this](workload::JobId id, sim::SimTime now) {
        return FailJob(id, now);
      };
      injector_.emplace(simulator_, std::move(plan), std::move(hooks),
                        &fault_stats_);
    }
  }

  SimulationResult Run() {
    for (const workload::Job& job : jobs_) {
      std::string err = job.Validate();
      if (!err.empty()) {
        throw std::invalid_argument("RunSimulation: job " +
                                    std::to_string(job.id) + ": " + err);
      }
      simulator_.ScheduleAt(job.submit_time, [this, &job] { OnSubmit(job); });
    }
    if (injector_.has_value()) injector_->Arm();
    if (hub_ != nullptr && hub_->options().sample_dt_seconds > 0) {
      // The engine owns the tick cadence: the first sample lands at t=0 and
      // each tick re-arms only while real work remains, so sampling cannot
      // keep an otherwise-drained queue alive.
      simulator_.ScheduleAt(0.0, [this] { SampleTick(); });
    }
    simulator_.Run();
    if (!running_.empty() || batch_.queue_size() != 0) {
      throw std::logic_error(
          "RunSimulation: event queue drained with unfinished jobs");
    }
    if (hub_ != nullptr) {
      sim::SimTime end = simulator_.Now();
      io_scheduler_.FlushObs(end);
      trace_adapter_->Flush(end);
      if (hub_->options().sample_dt_seconds > 0) RecordSample(end);
    }

    SimulationResult result;
    std::sort(records_.begin(), records_.end(),
              [](const metrics::JobRecord& a, const metrics::JobRecord& b) {
                return a.id < b.id;
              });
    result.records = std::move(records_);
    result.report =
        metrics::Summarize(result.records, utilization_,
                           config_.warmup_fraction, config_.cooldown_fraction);
    result.bandwidth = bandwidth_tracker_.Summarize();
    if (config_.keep_bandwidth_samples) {
      result.bandwidth_samples = bandwidth_tracker_.samples();
    }
    if (burst_buffer_.has_value()) {
      result.bb_absorbed_gb = burst_buffer_->total_absorbed_gb();
      result.bb_absorbed_requests = burst_buffer_->absorbed_requests();
    }
    if (injector_.has_value()) injector_->FinalizeStats(simulator_.Now());
    result.faults = std::move(fault_stats_);
    result.io_requests = io_scheduler_.submitted_requests();
    result.events_processed = simulator_.processed_events();
    result.io_scheduling_cycles = io_scheduler_.cycles();
    result.policy_name = io_scheduler_.policy().name();
    return result;
  }

 private:
  void OnSubmit(const workload::Job& job) {
    Log(SchedEventKind::kSubmit, job.id, static_cast<double>(job.nodes));
    batch_.Submit(job);
    RunSchedulingPass();
  }

  /// The single emit point of the scheduling-event stream: every consumer
  /// (CSV log, trace adapter, lifecycle counters) hangs off this call.
  void Log(SchedEventKind kind, workload::JobId id, double detail = 0.0) {
    if (sinks_.empty() && hub_ == nullptr) return;
    SchedEvent event{simulator_.Now(), kind, id, detail};
    for (SchedEventSink* sink : sinks_) sink->OnSchedEvent(event);
    CountSchedEvent(kind);
  }

  void CountSchedEvent(SchedEventKind kind) {
    if (hub_ == nullptr) return;
    switch (kind) {
      case SchedEventKind::kSubmit: hub_->jobs_submitted->Inc(); break;
      case SchedEventKind::kStart: hub_->jobs_started->Inc(); break;
      case SchedEventKind::kEnd: hub_->jobs_completed->Inc(); break;
      case SchedEventKind::kKill: hub_->jobs_killed->Inc(); break;
      case SchedEventKind::kFaultKill: hub_->jobs_fault_killed->Inc(); break;
      case SchedEventKind::kRequeue: hub_->jobs_requeued->Inc(); break;
      case SchedEventKind::kAbandon: hub_->jobs_abandoned->Inc(); break;
      case SchedEventKind::kIoRequest:
      case SchedEventKind::kIoComplete:
        break;  // counted at the IoScheduler, which also sees absorbed I/O
    }
  }

  void SampleTick() {
    RecordSample(simulator_.Now());
    if (simulator_.pending_events() > 0) {
      simulator_.ScheduleAfter(hub_->options().sample_dt_seconds,
                               [this] { SampleTick(); });
    }
  }

  void RecordSample(sim::SimTime now) {
    obs::SamplePoint p;
    p.time = now;
    p.demand_gbps = storage_.TotalDemand();
    p.granted_gbps = storage_.TotalAssignedRate();
    p.active_requests = static_cast<int>(storage_.active_count());
    storage_.ActiveByArrival(sample_scratch_);
    for (const storage::Transfer* t : sample_scratch_) {
      if (t->rate_gbps <= 0) ++p.suspended_requests;
    }
    p.busy_nodes = machine_.busy_nodes();
    int total_nodes = config_.machine.total_nodes();
    p.utilization = total_nodes > 0
                        ? static_cast<double>(p.busy_nodes) / total_nodes
                        : 0.0;
    p.queue_depth = batch_.queue_size();
    p.running_jobs = running_.size();
    hub_->sampler().Record(p);
  }

  void RunSchedulingPass() {
    sim::SimTime now = simulator_.Now();
    for (const sched::StartDecision& d : batch_.Schedule(now)) {
      StartJob(*d.job, d.partition, now);
    }
    utilization_.Record(now, machine_.busy_nodes());
    if (hub_ != nullptr) {
      hub_->tracer().Counter(obs::kSchedulerTrack, "queue_depth", now,
                             static_cast<double>(batch_.queue_size()));
    }
  }

  void StartJob(const workload::Job& job, const machine::Partition& partition,
                sim::SimTime now) {
    ExecState state;
    state.job = &job;
    state.partition = partition;
    state.start_time = now;
    auto rit = retry_.find(job.id);
    if (rit != retry_.end()) state.next_phase = rit->second.resume_phase;
    Log(SchedEventKind::kStart, job.id, static_cast<double>(partition.nodes));
    if (config_.enforce_walltime) {
      state.kill_event = simulator_.ScheduleAfter(
          job.requested_walltime, [this, id = job.id] { KillJob(id); });
      state.has_kill_event = true;
    }
    running_.emplace(job.id, state);
    io_scheduler_.RegisterJob(job, now);
    if (injector_.has_value()) {
      injector_->OnJobStart(
          job.id, now,
          job.UncongestedRuntime(config_.machine.node_bandwidth_gbps));
    }
    AdvancePhase(job.id);
  }

  /// Walltime expired: terminate the job wherever it is in its phase list.
  void KillJob(workload::JobId id) {
    auto it = running_.find(id);
    if (it == running_.end()) return;  // finished at the same instant
    ExecState& state = it->second;
    state.has_kill_event = false;
    sim::SimTime now = simulator_.Now();
    if (state.has_compute_event) {
      simulator_.Cancel(state.compute_event);
      state.has_compute_event = false;
    }
    if (state.in_io) {
      state.io_time_actual += now - state.io_request_start;
      io_scheduler_.AbortRequest(id, now);
      state.in_io = false;
    }
    FinishJob(id, now, /*killed=*/true);
  }

  /// Fault-kill a running job (injector hook): tear down its execution
  /// state, then requeue it with backoff or abandon it once the retry
  /// budget is spent. Returns false when the job is not running (it ended
  /// at the same instant the kill fired).
  bool FailJob(workload::JobId id, sim::SimTime now) {
    auto it = running_.find(id);
    if (it == running_.end()) return false;
    ExecState state = it->second;
    if (state.has_compute_event) simulator_.Cancel(state.compute_event);
    if (state.has_kill_event) simulator_.Cancel(state.kill_event);
    if (state.in_io) {
      state.io_time_actual += now - state.io_request_start;
      io_scheduler_.AbortRequest(id, now);
    }
    running_.erase(it);
    io_scheduler_.UnregisterJob(id);
    if (injector_.has_value()) injector_->OnJobStop(id);

    sched::BatchScheduler::RequeueDecision decision =
        batch_.OnJobFailed(id, now);
    RetryContext& rc = retry_[id];
    rc.failures = decision.retries;
    rc.lost_seconds += now - state.start_time;
    rc.resume_phase =
        config_.faults.restart_mode == faults::RestartMode::kResumeFromLastPhase
            ? (state.next_phase > 0 ? state.next_phase - 1 : 0)
            : 0;
    Log(SchedEventKind::kFaultKill, id, static_cast<double>(decision.retries));

    if (decision.requeued) {
      fault_stats_.Add(now, metrics::FaultEventKind::kRequeue, id,
                       decision.eligible_time);
      Log(SchedEventKind::kRequeue, id, decision.eligible_time);
      // A backoff expiry wakes nobody by itself: arm a scheduling pass at
      // the eligibility time (idempotent if anything else runs one first).
      simulator_.ScheduleAt(decision.eligible_time,
                            [this] { RunSchedulingPass(); });
    } else {
      fault_stats_.Add(now, metrics::FaultEventKind::kAbandon, id);
      Log(SchedEventKind::kAbandon, id);
      metrics::JobRecord record = MakeRecord(state, now, /*killed=*/false);
      record.abandoned = true;
      record.attempts = rc.failures;
      record.lost_seconds = rc.lost_seconds;
      records_.push_back(record);
      retry_.erase(id);
    }
    RunSchedulingPass();
    return true;
  }

  /// Midplane outage edge (injector hook). On fault: mark the midplane
  /// unallocatable *first* (so the scheduling passes triggered by the kills
  /// cannot hand it out again), then kill every job whose partition covers
  /// it, in job-id order for determinism. On repair: the freed midplane may
  /// unblock the queue.
  void OnMidplaneEdge(int midplane, bool faulted, sim::SimTime now) {
    machine_.SetFaulted(midplane, faulted);
    if (faulted) {
      std::vector<workload::JobId> victims;
      for (const auto& [id, state] : running_) {
        if (machine::Machine::Covers(state.partition, midplane)) {
          victims.push_back(id);
        }
      }
      std::sort(victims.begin(), victims.end());
      for (workload::JobId id : victims) {
        if (FailJob(id, now)) {
          fault_stats_.Add(now, metrics::FaultEventKind::kJobKill, id,
                           static_cast<double>(midplane));
        }
      }
    }
    RunSchedulingPass();
  }

  /// Horizon for generated fault plans: the latest time any job could still
  /// be running if every job consumed its full requested walltime.
  double PlanHorizon() const {
    double horizon = 0.0;
    for (const workload::Job& job : jobs_) {
      horizon = std::max(horizon, job.submit_time + job.requested_walltime);
    }
    return horizon;
  }

  /// Enter the next phase of a job (or finish it).
  void AdvancePhase(workload::JobId id) {
    ExecState& state = running_.at(id);
    sim::SimTime now = simulator_.Now();
    for (;;) {
      if (state.next_phase >= state.job->phases.size()) {
        FinishJob(id, now, /*killed=*/false);
        return;
      }
      const workload::Phase& phase = state.job->phases[state.next_phase];
      ++state.next_phase;
      if (phase.kind == workload::PhaseKind::kCompute) {
        if (phase.compute_seconds <= 0) continue;  // empty phase: skip
        state.compute_event = simulator_.ScheduleAfter(
            phase.compute_seconds, [this, id, dur = phase.compute_seconds] {
              running_.at(id).has_compute_event = false;
              io_scheduler_.AddCompletedCompute(id, dur);
              AdvancePhase(id);
            });
        state.has_compute_event = true;
        return;
      }
      // I/O phase.
      if (phase.io_volume_gb <= util::kVolumeEpsilon) continue;
      state.io_request_start = now;
      state.in_io = true;
      Log(SchedEventKind::kIoRequest, id, phase.io_volume_gb);
      io_scheduler_.SubmitRequest(id, phase.io_volume_gb, now);
      return;
    }
  }

  void OnIoComplete(workload::JobId id, sim::SimTime now) {
    ExecState& state = running_.at(id);
    state.io_time_actual += now - state.io_request_start;
    state.in_io = false;
    Log(SchedEventKind::kIoComplete, id);
    AdvancePhase(id);
  }

  metrics::JobRecord MakeRecord(const ExecState& state, sim::SimTime now,
                                bool killed) const {
    metrics::JobRecord record;
    record.id = state.job->id;
    record.requested_nodes = state.job->nodes;
    record.allocated_nodes = state.partition.nodes;
    record.submit_time = state.job->submit_time;
    record.start_time = state.start_time;
    record.end_time = now;
    record.uncongested_runtime =
        state.job->UncongestedRuntime(config_.machine.node_bandwidth_gbps);
    record.requested_walltime = state.job->requested_walltime;
    record.io_time_actual = state.io_time_actual;
    record.io_time_uncongested =
        state.job->UncongestedIoSeconds(config_.machine.node_bandwidth_gbps);
    record.io_phase_count = state.job->IoPhaseCount();
    record.killed = killed;
    return record;
  }

  void FinishJob(workload::JobId id, sim::SimTime now, bool killed) {
    Log(killed ? SchedEventKind::kKill : SchedEventKind::kEnd, id);
    ExecState state = running_.at(id);
    running_.erase(id);
    if (state.has_kill_event) simulator_.Cancel(state.kill_event);
    io_scheduler_.UnregisterJob(id);
    if (injector_.has_value()) injector_->OnJobStop(id);
    batch_.OnJobEnd(id, now);

    metrics::JobRecord record = MakeRecord(state, now, killed);
    auto rit = retry_.find(id);
    if (rit != retry_.end()) {
      record.attempts = rit->second.failures + 1;
      record.lost_seconds = rit->second.lost_seconds;
      retry_.erase(rit);
    }
    records_.push_back(record);

    RunSchedulingPass();
  }

  const SimulationConfig& config_;
  const workload::Workload& jobs_;
  EventLog* event_log_;
  obs::Hub* hub_;
  /// Consumers of the Log() emit point (event_log_, then trace_adapter_).
  std::vector<SchedEventSink*> sinks_;
  std::optional<SchedTraceAdapter> trace_adapter_;
  sim::Simulator simulator_;
  machine::Machine machine_;
  storage::StorageModel storage_;
  sched::BatchScheduler batch_;
  metrics::UtilizationTracker utilization_;
  metrics::BandwidthTracker bandwidth_tracker_;
  std::optional<storage::BurstBuffer> burst_buffer_;
  IoScheduler io_scheduler_;
  /// Nominal BWmax; degradation scales it (the storage model holds the
  /// currently effective value).
  double base_bwmax_ = 0.0;
  metrics::FaultStats fault_stats_;
  std::optional<faults::FaultInjector> injector_;
  std::unordered_map<workload::JobId, ExecState> running_;
  std::unordered_map<workload::JobId, RetryContext> retry_;
  metrics::JobRecords records_;
  /// Scratch for RecordSample's suspended-transfer count.
  std::vector<const storage::Transfer*> sample_scratch_;
};

}  // namespace

SimulationResult RunSimulation(const SimulationConfig& config,
                               const workload::Workload& jobs,
                               EventLog* event_log, obs::Hub* hub) {
  Engine engine(config, jobs, event_log, hub);
  return engine.Run();
}

}  // namespace iosched::core
