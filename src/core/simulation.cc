#include "core/simulation.h"

#include <algorithm>
#include <optional>
#include <stdexcept>
#include <unordered_map>

#include "core/io_scheduler.h"
#include "core/policy_factory.h"
#include "sim/simulator.h"
#include "util/units.h"

namespace iosched::core {

namespace {

/// Per-running-job execution state: walks the phase list.
struct ExecState {
  const workload::Job* job = nullptr;
  machine::Partition partition;
  sim::SimTime start_time = 0.0;
  std::size_t next_phase = 0;
  /// Time the current I/O request was issued (for io_time_actual).
  sim::SimTime io_request_start = 0.0;
  double io_time_actual = 0.0;
  /// Whether the job is currently blocked in an I/O request.
  bool in_io = false;
  /// Pending walltime-kill event (enforce_walltime mode only).
  sim::EventId kill_event = 0;
  bool has_kill_event = false;
  /// Pending compute-phase-completion event (cancelled on kill).
  sim::EventId compute_event = 0;
  bool has_compute_event = false;
};

class Engine {
 public:
  Engine(const SimulationConfig& config, const workload::Workload& jobs,
         EventLog* event_log)
      : config_(config),
        jobs_(jobs),
        event_log_(event_log),
        machine_(config.machine),
        storage_(config.storage),
        batch_(machine_, config.batch),
        utilization_(config.machine.total_nodes()),
        bandwidth_tracker_(config.storage.max_bandwidth_gbps),
        io_scheduler_(simulator_, storage_, config.machine.node_bandwidth_gbps,
                      MakePolicy(config.policy),
                      [this](workload::JobId id, sim::SimTime now) {
                        OnIoComplete(id, now);
                      }) {
    if (config_.track_bandwidth) {
      io_scheduler_.SetBandwidthTracker(&bandwidth_tracker_);
    }
    if (config_.burst_buffer.enabled()) {
      if (config_.burst_buffer.drain_gbps >=
          config_.storage.max_bandwidth_gbps) {
        throw std::invalid_argument(
            "RunSimulation: burst-buffer drain must stay below BWmax");
      }
      burst_buffer_.emplace(config_.burst_buffer);
      io_scheduler_.AttachBurstBuffer(&*burst_buffer_);
    }
  }

  SimulationResult Run() {
    for (const workload::Job& job : jobs_) {
      std::string err = job.Validate();
      if (!err.empty()) {
        throw std::invalid_argument("RunSimulation: job " +
                                    std::to_string(job.id) + ": " + err);
      }
      simulator_.ScheduleAt(job.submit_time, [this, &job] { OnSubmit(job); });
    }
    simulator_.Run();
    if (!running_.empty() || batch_.queue_size() != 0) {
      throw std::logic_error(
          "RunSimulation: event queue drained with unfinished jobs");
    }

    SimulationResult result;
    std::sort(records_.begin(), records_.end(),
              [](const metrics::JobRecord& a, const metrics::JobRecord& b) {
                return a.id < b.id;
              });
    result.records = std::move(records_);
    result.report =
        metrics::Summarize(result.records, utilization_,
                           config_.warmup_fraction, config_.cooldown_fraction);
    result.bandwidth = bandwidth_tracker_.Summarize();
    if (config_.keep_bandwidth_samples) {
      result.bandwidth_samples = bandwidth_tracker_.samples();
    }
    if (burst_buffer_.has_value()) {
      result.bb_absorbed_gb = burst_buffer_->total_absorbed_gb();
      result.bb_absorbed_requests = burst_buffer_->absorbed_requests();
    }
    result.io_requests = io_scheduler_.submitted_requests();
    result.events_processed = simulator_.processed_events();
    result.io_scheduling_cycles = io_scheduler_.cycles();
    result.policy_name = io_scheduler_.policy().name();
    return result;
  }

 private:
  void OnSubmit(const workload::Job& job) {
    Log(SchedEventKind::kSubmit, job.id, static_cast<double>(job.nodes));
    batch_.Submit(job);
    RunSchedulingPass();
  }

  void Log(SchedEventKind kind, workload::JobId id, double detail = 0.0) {
    if (event_log_ != nullptr) {
      event_log_->Append(simulator_.Now(), kind, id, detail);
    }
  }

  void RunSchedulingPass() {
    sim::SimTime now = simulator_.Now();
    for (const sched::StartDecision& d : batch_.Schedule(now)) {
      StartJob(*d.job, d.partition, now);
    }
    utilization_.Record(now, machine_.busy_nodes());
  }

  void StartJob(const workload::Job& job, const machine::Partition& partition,
                sim::SimTime now) {
    ExecState state;
    state.job = &job;
    state.partition = partition;
    state.start_time = now;
    Log(SchedEventKind::kStart, job.id, static_cast<double>(partition.nodes));
    if (config_.enforce_walltime) {
      state.kill_event = simulator_.ScheduleAfter(
          job.requested_walltime, [this, id = job.id] { KillJob(id); });
      state.has_kill_event = true;
    }
    running_.emplace(job.id, state);
    io_scheduler_.RegisterJob(job, now);
    AdvancePhase(job.id);
  }

  /// Walltime expired: terminate the job wherever it is in its phase list.
  void KillJob(workload::JobId id) {
    auto it = running_.find(id);
    if (it == running_.end()) return;  // finished at the same instant
    ExecState& state = it->second;
    state.has_kill_event = false;
    sim::SimTime now = simulator_.Now();
    if (state.has_compute_event) {
      simulator_.Cancel(state.compute_event);
      state.has_compute_event = false;
    }
    if (state.in_io) {
      state.io_time_actual += now - state.io_request_start;
      io_scheduler_.AbortRequest(id, now);
      state.in_io = false;
    }
    FinishJob(id, now, /*killed=*/true);
  }

  /// Enter the next phase of a job (or finish it).
  void AdvancePhase(workload::JobId id) {
    ExecState& state = running_.at(id);
    sim::SimTime now = simulator_.Now();
    for (;;) {
      if (state.next_phase >= state.job->phases.size()) {
        FinishJob(id, now, /*killed=*/false);
        return;
      }
      const workload::Phase& phase = state.job->phases[state.next_phase];
      ++state.next_phase;
      if (phase.kind == workload::PhaseKind::kCompute) {
        if (phase.compute_seconds <= 0) continue;  // empty phase: skip
        state.compute_event = simulator_.ScheduleAfter(
            phase.compute_seconds, [this, id, dur = phase.compute_seconds] {
              running_.at(id).has_compute_event = false;
              io_scheduler_.AddCompletedCompute(id, dur);
              AdvancePhase(id);
            });
        state.has_compute_event = true;
        return;
      }
      // I/O phase.
      if (phase.io_volume_gb <= util::kVolumeEpsilon) continue;
      state.io_request_start = now;
      state.in_io = true;
      Log(SchedEventKind::kIoRequest, id, phase.io_volume_gb);
      io_scheduler_.SubmitRequest(id, phase.io_volume_gb, now);
      return;
    }
  }

  void OnIoComplete(workload::JobId id, sim::SimTime now) {
    ExecState& state = running_.at(id);
    state.io_time_actual += now - state.io_request_start;
    state.in_io = false;
    Log(SchedEventKind::kIoComplete, id);
    AdvancePhase(id);
  }

  void FinishJob(workload::JobId id, sim::SimTime now, bool killed) {
    Log(killed ? SchedEventKind::kKill : SchedEventKind::kEnd, id);
    ExecState state = running_.at(id);
    running_.erase(id);
    if (state.has_kill_event) simulator_.Cancel(state.kill_event);
    io_scheduler_.UnregisterJob(id);
    batch_.OnJobEnd(id, now);

    metrics::JobRecord record;
    record.id = id;
    record.requested_nodes = state.job->nodes;
    record.allocated_nodes = state.partition.nodes;
    record.submit_time = state.job->submit_time;
    record.start_time = state.start_time;
    record.end_time = now;
    record.uncongested_runtime =
        state.job->UncongestedRuntime(config_.machine.node_bandwidth_gbps);
    record.requested_walltime = state.job->requested_walltime;
    record.io_time_actual = state.io_time_actual;
    record.io_time_uncongested =
        state.job->UncongestedIoSeconds(config_.machine.node_bandwidth_gbps);
    record.io_phase_count = state.job->IoPhaseCount();
    record.killed = killed;
    records_.push_back(record);

    RunSchedulingPass();
  }

  const SimulationConfig& config_;
  const workload::Workload& jobs_;
  EventLog* event_log_;
  sim::Simulator simulator_;
  machine::Machine machine_;
  storage::StorageModel storage_;
  sched::BatchScheduler batch_;
  metrics::UtilizationTracker utilization_;
  metrics::BandwidthTracker bandwidth_tracker_;
  std::optional<storage::BurstBuffer> burst_buffer_;
  IoScheduler io_scheduler_;
  std::unordered_map<workload::JobId, ExecState> running_;
  metrics::JobRecords records_;
};

}  // namespace

SimulationResult RunSimulation(const SimulationConfig& config,
                               const workload::Workload& jobs,
                               EventLog* event_log) {
  Engine engine(config, jobs, event_log);
  return engine.Run();
}

}  // namespace iosched::core
