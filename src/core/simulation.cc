#include "core/simulation.h"

#include <algorithm>
#include <cctype>
#include <chrono>
#include <filesystem>
#include <map>
#include <optional>
#include <stdexcept>
#include <unordered_map>
#include <utility>
#include <vector>

#include "ckpt/serializer.h"
#include "core/invariants.h"
#include "core/io_scheduler.h"
#include "core/policy_factory.h"
#include "core/trace_adapter.h"
#include "faults/fault_injector.h"
#include "metrics/digest.h"
#include "sim/simulator.h"
#include "util/units.h"

namespace iosched::core {

namespace {

/// A burst-buffer-absorbed checkpoint flush awaiting drain: the restart
/// point it will establish once the buffer's cumulative drained volume
/// passes `threshold_gb`. The threshold is captured at absorb time as
/// (total drained + queued), which the FIFO drain makes exact: the flush's
/// bytes are on the PFS precisely when the cumulative counter passes it.
struct DurableMarker {
  std::size_t resume_phase = 0;
  /// When the application finished writing the flush (work after this
  /// instant is rework if the job restarts from this marker).
  sim::SimTime completion_time = 0.0;
  double threshold_gb = 0.0;
};

/// Per-running-job execution state: walks the phase list.
struct ExecState {
  const workload::Job* job = nullptr;
  machine::Partition partition;
  sim::SimTime start_time = 0.0;
  std::size_t next_phase = 0;
  /// Time the current I/O request was issued (for io_time_actual).
  sim::SimTime io_request_start = 0.0;
  double io_time_actual = 0.0;
  /// Whether the job is currently blocked in an I/O request.
  bool in_io = false;
  /// Pending walltime-kill event (enforce_walltime mode only). The firing
  /// time is kept so a checkpoint can re-arm it bit-exactly.
  sim::EventId kill_event = 0;
  sim::SimTime kill_fire_time = 0.0;
  bool has_kill_event = false;
  /// Pending compute-phase-completion event (cancelled on kill), with the
  /// firing time and phase duration its closure credits on completion.
  sim::EventId compute_event = 0;
  sim::SimTime compute_fire_time = 0.0;
  double compute_duration = 0.0;
  bool has_compute_event = false;
  /// App-checkpoint durability (app_checkpoint runs only; all dormant
  /// otherwise). `durable_phase` is the first phase a restart would
  /// re-execute given the flushes durably on the PFS; `durable_anchor_time`
  /// is when that durability point was established (work after it is
  /// rework on failure). Starts at the attempt's own resume point.
  std::size_t durable_phase = 0;
  sim::SimTime durable_anchor_time = 0.0;
  /// Checkpoint flushes completed during this attempt.
  int flush_count = 0;
  /// Absorbed flushes not yet drained, in completion order (thresholds are
  /// monotone because the cumulative drained volume is).
  std::vector<DurableMarker> pending_durables;
};

/// Bookkeeping for a fault-killed job across its attempts.
struct RetryContext {
  /// Failed attempts so far (== the scheduler's retry count).
  int failures = 0;
  /// Machine time burned by failed attempts.
  double lost_seconds = 0.0;
  /// First phase the next attempt executes (restart-mode dependent).
  std::size_t resume_phase = 0;
  /// Checkpoint flushes completed across failed attempts.
  int flush_count = 0;
  /// Machine time re-executed because it postdated the last durable flush
  /// (kRestartFromAppCheckpoint only; 0 under the other modes).
  double rework_seconds = 0.0;
};

std::uint64_t MixStr(std::uint64_t hash, const std::string& value) {
  hash = metrics::FnvMix(hash, static_cast<std::uint64_t>(value.size()));
  for (char c : value) {
    hash ^= static_cast<unsigned char>(c);
    hash *= metrics::kFnvPrime;
  }
  return hash;
}

class Engine {
 public:
  Engine(const SimulationConfig& config, const workload::Workload& jobs,
         EventLog* event_log, obs::Hub* hub)
      : config_(config),
        jobs_(jobs),
        event_log_(event_log),
        hub_(hub),
        machine_(config.machine),
        backend_(storage::MakeBackend(config.storage, config.burst_buffer)),
        storage_(backend_->model()),
        batch_(machine_, config.batch),
        utilization_(config.machine.total_nodes()),
        bandwidth_tracker_(config.storage.max_bandwidth_gbps),
        io_scheduler_(simulator_, *backend_,
                      config.machine.node_bandwidth_gbps,
                      MakePolicy(config.policy),
                      [this](workload::JobId id, sim::SimTime now,
                             const IoCompletionInfo& info) {
                        OnIoComplete(id, now, info);
                      }),
        base_bwmax_(config.storage.max_bandwidth_gbps) {
    burst_buffer_ = backend_->burst_buffer();
    io_scheduler_.SetRetryConfig(config.transfer_retry);
    io_scheduler_.ConfigurePrediction(config.prediction);
    io_scheduler_.ConfigureFlushScheduling(config.app_checkpoint);
    io_scheduler_.ConfigurePlanning(config.plan);
    if (io_scheduler_.policy().WantsPlanning()) {
      // Reservation-aware backfill (PLAN_BF): after the geometric EASY
      // probe passes, the planning policy may veto a candidate whose bursts
      // would not fit the buffer's projected free capacity at shadow time,
      // net of the absorb promises already on its table.
      batch_.SetBackfillAdmission(
          [this](const workload::Job& job, sim::SimTime now,
                 sim::SimTime shadow) {
            double projected =
                backend_->ProjectedFreeCapacityGb(now, shadow);
            return io_scheduler_.policy().AdmitBackfill(job, now, projected);
          });
    }
    if (config_.track_bandwidth) {
      io_scheduler_.SetBandwidthTracker(&bandwidth_tracker_);
    }
    if (event_log_ != nullptr) sinks_.push_back(event_log_);
    if (config_.check_invariants) {
      checker_.emplace(machine_, storage_, batch_, burst_buffer_);
      checker_->AttachIoScheduler(&io_scheduler_);
      sinks_.push_back(&*checker_);
    }
    if (hub_ != nullptr) {
      trace_adapter_.emplace(&hub_->tracer());
      sinks_.push_back(&*trace_adapter_);
      simulator_.SetEventCounter(hub_->events_processed);
      io_scheduler_.SetObs(hub_);
      batch_.SetObs(hub_);
    }
    if (config_.faults.enabled()) {
      faults::FaultPlan plan = config_.faults.explicit_plan;
      if (plan.Empty() && config_.faults.plan_config.enabled) {
        plan = faults::BuildFaultPlan(config_.faults.plan_config,
                                      PlanHorizon(),
                                      config_.machine.total_midplanes());
      }
      faults::FaultHooks hooks;
      hooks.set_bandwidth_factor = [this](double factor, sim::SimTime now) {
        // Re-accrue in-flight transfers at the old rates up to `now`, then
        // swap the cap. The IoScheduler listens for bandwidth changes and
        // runs a cycle immediately, so every policy re-plans against the
        // new BWmax before any further event (the validator only runs
        // post-cycle, so a shrink can never look like an over-assignment).
        storage_.SetMaxBandwidth(base_bwmax_ * factor, now);
      };
      hooks.set_midplane_faulted = [this](int midplane, bool faulted,
                                          sim::SimTime now) {
        OnMidplaneEdge(midplane, faulted, now);
      };
      hooks.kill_job = [this](workload::JobId id, sim::SimTime now) {
        return FailJob(id, now);
      };
      hooks.set_bb_faulted = [this](bool faulted, bool lose_data,
                                    sim::SimTime now) {
        // A lossy buffer fault drops staged flush data. Settle durability
        // markers against what actually reached the PFS first, then
        // invalidate whatever was still queued — those flushes are gone.
        const bool ckpt_markers = config_.app_checkpoint.enabled;
        if (ckpt_markers && faulted && lose_data) SettleAllMarkers(now);
        io_scheduler_.OnBurstBufferFault(faulted, lose_data, now);
        if (ckpt_markers && faulted && lose_data) {
          for (auto& [id, state] : running_) state.pending_durables.clear();
        }
      };
      hooks.set_drain_factor = [this](double factor, sim::SimTime now) {
        io_scheduler_.OnDrainFactorChange(factor, now);
      };
      const bool stragglers = plan.straggler_probability > 0;
      injector_.emplace(simulator_, std::move(plan), std::move(hooks),
                        &fault_stats_);
      if (stragglers) {
        // Only installed when the plan can actually produce stragglers:
        // with no draw attached, submissions never touch the RNG and a
        // straggler-free run stays digest-identical to pre-straggler
        // builds.
        io_scheduler_.SetStragglerDraw(
            [this] { return injector_->DrawStragglerFactor(); });
      }
    }
  }

  /// Load `path` and restore the full engine state from it. Must run
  /// before Run(), on a freshly constructed engine.
  void RestoreFromFile(const std::string& path) {
    RestoreFrom(ckpt::CheckpointFile::Load(path), path);
  }

  SimulationResult Run() {
    for (const workload::Job& job : jobs_) {
      std::string err = job.Validate();
      if (!err.empty()) {
        throw std::invalid_argument("RunSimulation: job " +
                                    std::to_string(job.id) + ": " + err);
      }
    }
    if (!restored_) {
      if (checker_.has_value()) checker_->MarkCompleteHistory();
      for (const workload::Job& job : jobs_) {
        pending_submits_[job.id] =
            simulator_.ScheduleAt(job.submit_time, SubmitAction(job));
      }
      if (injector_.has_value()) injector_->Arm();
      if (hub_ != nullptr && hub_->options().sample_dt_seconds > 0) {
        // The engine owns the tick cadence: the first sample lands at t=0
        // and each tick re-arms only while real work remains, so sampling
        // cannot keep an otherwise-drained queue alive.
        ArmSampleTick(0.0);
      }
    }
    RunLoop();
    if (!running_.empty() || batch_.queue_size() != 0) {
      throw std::logic_error(
          "RunSimulation: event queue drained with unfinished jobs");
    }
    if (checker_.has_value()) RunInvariantCheck();
    if (hub_ != nullptr) {
      sim::SimTime end = simulator_.Now();
      io_scheduler_.FlushObs(end);
      trace_adapter_->Flush(end);
      if (hub_->options().sample_dt_seconds > 0) RecordSample(end);
    }

    SimulationResult result;
    std::sort(records_.begin(), records_.end(),
              [](const metrics::JobRecord& a, const metrics::JobRecord& b) {
                return a.id < b.id;
              });
    result.records = std::move(records_);
    result.report =
        metrics::Summarize(result.records, utilization_,
                           config_.warmup_fraction, config_.cooldown_fraction);
    result.bandwidth = bandwidth_tracker_.Summarize();
    if (config_.keep_bandwidth_samples) {
      result.bandwidth_samples = bandwidth_tracker_.samples();
    }
    if (burst_buffer_ != nullptr) {
      // Close the occupancy integral at the end of the run (all drains have
      // completed by now, so this only accrues the final idle stretch).
      burst_buffer_->AdvanceTo(simulator_.Now());
      result.bb_absorbed_gb = burst_buffer_->total_absorbed_gb();
      result.bb_absorbed_requests = burst_buffer_->absorbed_requests();
      result.bb_spilled_requests = burst_buffer_->spilled_requests();
      result.bb_drained_gb = burst_buffer_->total_drained_gb();
      result.bb_peak_queued_gb = burst_buffer_->peak_queued_gb();
      double span = simulator_.Now() * config_.burst_buffer.capacity_gb;
      result.bb_mean_occupancy =
          span > 0 ? burst_buffer_->occupancy_integral_gbs() / span : 0.0;
    }
    if (injector_.has_value()) injector_->FinalizeStats(simulator_.Now());
    result.faults = std::move(fault_stats_);
    result.transfer_timeouts = io_scheduler_.transfer_timeouts();
    result.transfer_retries = io_scheduler_.transfer_retries();
    result.straggler_spills = io_scheduler_.straggler_spills();
    result.bb_reflushed_requests = io_scheduler_.reflushed_requests();
    result.flush_deferrals = io_scheduler_.flush_deferrals();
    result.forced_flush_releases = io_scheduler_.forced_flush_releases();
    if (burst_buffer_ != nullptr) {
      result.bb_lost_gb = burst_buffer_->total_lost_gb();
    }
    if (checker_.has_value()) {
      result.invariant_checks = checker_->checks_run();
    }
    result.io_requests = io_scheduler_.submitted_requests();
    result.events_processed = simulator_.processed_events();
    result.io_scheduling_cycles = io_scheduler_.cycles();
    result.policy_name = io_scheduler_.policy().name();
    result.plan_replans = io_scheduler_.replans();
    result.plan_wall_seconds = io_scheduler_.plan_wall_seconds();
    result.checkpoints_written = checkpoints_written_;
    result.resumed_from = resumed_from_;
    return result;
  }

 private:
  // --- Event closures ------------------------------------------------------
  // Every event the engine schedules is built by one of these factories, so
  // checkpoint restore re-arms byte-for-byte the same behaviour the original
  // schedule would have run. Each closure that owns a tracking entry erases
  // it first, keeping the checkpointed pending sets exactly the
  // not-yet-fired events.

  std::function<void()> SubmitAction(const workload::Job& job) {
    return [this, &job] {
      pending_submits_.erase(job.id);
      OnSubmit(job);
    };
  }

  std::function<void()> PassAction(std::uint64_t seq) {
    return [this, seq] {
      pending_passes_.erase(seq);
      RunSchedulingPass();
    };
  }

  std::function<void()> KillAction(workload::JobId id) {
    return [this, id] { KillJob(id); };
  }

  std::function<void()> ComputeAction(workload::JobId id, double duration) {
    return [this, id, duration] {
      running_.at(id).has_compute_event = false;
      io_scheduler_.AddCompletedCompute(id, duration);
      AdvancePhase(id);
    };
  }

  std::function<void()> SampleAction() {
    return [this] {
      has_sample_event_ = false;
      SampleTick();
    };
  }

  void ArmSampleTick(sim::SimTime t) {
    sample_event_ = simulator_.ScheduleAt(t, SampleAction());
    sample_event_time_ = t;
    has_sample_event_ = true;
  }

  void OnSubmit(const workload::Job& job) {
    Log(SchedEventKind::kSubmit, job.id, static_cast<double>(job.nodes));
    batch_.Submit(job);
    RunSchedulingPass();
  }

  /// The single emit point of the scheduling-event stream: every consumer
  /// (CSV log, trace adapter, lifecycle counters) hangs off this call.
  void Log(SchedEventKind kind, workload::JobId id, double detail = 0.0) {
    if (sinks_.empty() && hub_ == nullptr) return;
    SchedEvent event{simulator_.Now(), kind, id, detail};
    for (SchedEventSink* sink : sinks_) sink->OnSchedEvent(event);
    CountSchedEvent(kind);
  }

  void CountSchedEvent(SchedEventKind kind) {
    if (hub_ == nullptr) return;
    switch (kind) {
      case SchedEventKind::kSubmit: hub_->jobs_submitted->Inc(); break;
      case SchedEventKind::kStart: hub_->jobs_started->Inc(); break;
      case SchedEventKind::kEnd: hub_->jobs_completed->Inc(); break;
      case SchedEventKind::kKill: hub_->jobs_killed->Inc(); break;
      case SchedEventKind::kFaultKill: hub_->jobs_fault_killed->Inc(); break;
      case SchedEventKind::kRequeue: hub_->jobs_requeued->Inc(); break;
      case SchedEventKind::kAbandon: hub_->jobs_abandoned->Inc(); break;
      case SchedEventKind::kIoRequest:
      case SchedEventKind::kIoComplete:
        break;  // counted at the IoScheduler, which also sees absorbed I/O
    }
  }

  void SampleTick() {
    RecordSample(simulator_.Now());
    if (simulator_.pending_events() > 0) {
      ArmSampleTick(simulator_.Now() + hub_->options().sample_dt_seconds);
    }
  }

  void RecordSample(sim::SimTime now) {
    obs::SamplePoint p;
    p.time = now;
    p.demand_gbps = storage_.TotalDemand();
    p.granted_gbps = storage_.TotalAssignedRate();
    p.active_requests = static_cast<int>(storage_.active_count());
    storage_.ActiveByArrival(sample_scratch_);
    for (const storage::Transfer* t : sample_scratch_) {
      if (t->rate_gbps <= 0) ++p.suspended_requests;
    }
    p.busy_nodes = machine_.busy_nodes();
    int total_nodes = config_.machine.total_nodes();
    p.utilization = total_nodes > 0
                        ? static_cast<double>(p.busy_nodes) / total_nodes
                        : 0.0;
    p.queue_depth = batch_.queue_size();
    p.running_jobs = running_.size();
    if (burst_buffer_ != nullptr) {
      // Backlog as of the last storage event. Deliberately no AdvanceTo:
      // sampling must never mutate simulation state.
      p.bb_queued_gb = burst_buffer_->queued_gb();
    }
    hub_->sampler().Record(p);
  }

  void RunSchedulingPass() {
    sim::SimTime now = simulator_.Now();
    for (const sched::StartDecision& d : batch_.Schedule(now)) {
      StartJob(*d.job, d.partition, now);
    }
    utilization_.Record(now, machine_.busy_nodes());
    if (hub_ != nullptr) {
      hub_->tracer().Counter(obs::kSchedulerTrack, "queue_depth", now,
                             static_cast<double>(batch_.queue_size()));
    }
  }

  void StartJob(const workload::Job& job, const machine::Partition& partition,
                sim::SimTime now) {
    ExecState state;
    state.job = &job;
    state.partition = partition;
    state.start_time = now;
    auto rit = retry_.find(job.id);
    if (rit != retry_.end()) state.next_phase = rit->second.resume_phase;
    // Until a flush drains, a failure rolls back to the attempt's own
    // starting point — everything since `now` would be rework.
    state.durable_phase = state.next_phase;
    state.durable_anchor_time = now;
    Log(SchedEventKind::kStart, job.id, static_cast<double>(partition.nodes));
    if (config_.enforce_walltime) {
      state.kill_fire_time = now + job.requested_walltime;
      state.kill_event =
          simulator_.ScheduleAt(state.kill_fire_time, KillAction(job.id));
      state.has_kill_event = true;
    }
    running_.emplace(job.id, state);
    io_scheduler_.RegisterJob(job, now);
    if (injector_.has_value()) {
      injector_->OnJobStart(
          job.id, now,
          job.UncongestedRuntime(config_.machine.node_bandwidth_gbps));
    }
    AdvancePhase(job.id);
  }

  /// Walltime expired: terminate the job wherever it is in its phase list.
  void KillJob(workload::JobId id) {
    auto it = running_.find(id);
    if (it == running_.end()) return;  // finished at the same instant
    ExecState& state = it->second;
    state.has_kill_event = false;
    sim::SimTime now = simulator_.Now();
    if (state.has_compute_event) {
      simulator_.Cancel(state.compute_event);
      state.has_compute_event = false;
    }
    if (state.in_io) {
      state.io_time_actual += now - state.io_request_start;
      io_scheduler_.AbortRequest(id, now);
      state.in_io = false;
    }
    FinishJob(id, now, /*killed=*/true);
  }

  /// Fault-kill a running job (injector hook): tear down its execution
  /// state, then requeue it with backoff or abandon it once the retry
  /// budget is spent. Returns false when the job is not running (it ended
  /// at the same instant the kill fired).
  bool FailJob(workload::JobId id, sim::SimTime now) {
    auto it = running_.find(id);
    if (it == running_.end()) return false;
    ExecState state = it->second;
    if (state.has_compute_event) simulator_.Cancel(state.compute_event);
    if (state.has_kill_event) simulator_.Cancel(state.kill_event);
    if (state.in_io) {
      state.io_time_actual += now - state.io_request_start;
      io_scheduler_.AbortRequest(id, now);
    }
    running_.erase(it);
    io_scheduler_.UnregisterJob(id);
    if (injector_.has_value()) injector_->OnJobStop(id);

    const bool app_ckpt = config_.faults.restart_mode ==
                          faults::RestartMode::kRestartFromAppCheckpoint;
    if (app_ckpt) {
      // Late flushes may have drained since the last settlement; count
      // them before deciding how far back this failure rolls the job.
      SettleJobMarkers(state, io_scheduler_.TotalDrainedGb(now));
    }
    sched::BatchScheduler::RequeueDecision decision =
        batch_.OnJobFailed(id, now);
    RetryContext& rc = retry_[id];
    rc.failures = decision.retries;
    rc.lost_seconds += now - state.start_time;
    if (app_ckpt) {
      rc.resume_phase = state.durable_phase;
      rc.rework_seconds += now - state.durable_anchor_time;
    } else {
      rc.resume_phase = config_.faults.restart_mode ==
                                faults::RestartMode::kResumeFromLastPhase
                            ? (state.next_phase > 0 ? state.next_phase - 1 : 0)
                            : 0;
    }
    rc.flush_count += state.flush_count;
    Log(SchedEventKind::kFaultKill, id, static_cast<double>(decision.retries));

    if (decision.requeued) {
      fault_stats_.Add(now, metrics::FaultEventKind::kRequeue, id,
                       decision.eligible_time);
      Log(SchedEventKind::kRequeue, id, decision.eligible_time);
      // A backoff expiry wakes nobody by itself: arm a scheduling pass at
      // the eligibility time (idempotent if anything else runs one first).
      std::uint64_t seq = next_pass_seq_++;
      pending_passes_[seq] = PendingPass{
          simulator_.ScheduleAt(decision.eligible_time, PassAction(seq)),
          decision.eligible_time};
    } else {
      fault_stats_.Add(now, metrics::FaultEventKind::kAbandon, id);
      Log(SchedEventKind::kAbandon, id);
      metrics::JobRecord record = MakeRecord(state, now, /*killed=*/false);
      record.abandoned = true;
      record.attempts = rc.failures;
      record.lost_seconds = rc.lost_seconds;
      // rc already folded this attempt's flushes in above.
      record.flush_count = rc.flush_count;
      record.rework_seconds = rc.rework_seconds;
      records_.push_back(record);
      retry_.erase(id);
    }
    RunSchedulingPass();
    return true;
  }

  /// Midplane outage edge (injector hook). On fault: mark the midplane
  /// unallocatable *first* (so the scheduling passes triggered by the kills
  /// cannot hand it out again), then kill every job whose partition covers
  /// it, in job-id order for determinism. On repair: the freed midplane may
  /// unblock the queue.
  void OnMidplaneEdge(int midplane, bool faulted, sim::SimTime now) {
    machine_.SetFaulted(midplane, faulted);
    if (faulted) {
      std::vector<workload::JobId> victims;
      for (const auto& [id, state] : running_) {
        if (machine::Machine::Covers(state.partition, midplane)) {
          victims.push_back(id);
        }
      }
      std::sort(victims.begin(), victims.end());
      for (workload::JobId id : victims) {
        if (FailJob(id, now)) {
          fault_stats_.Add(now, metrics::FaultEventKind::kJobKill, id,
                           static_cast<double>(midplane));
        }
      }
    }
    RunSchedulingPass();
  }

  /// Horizon for generated fault plans: the latest time any job could still
  /// be running if every job consumed its full requested walltime.
  double PlanHorizon() const {
    double horizon = 0.0;
    for (const workload::Job& job : jobs_) {
      horizon = std::max(horizon, job.submit_time + job.requested_walltime);
    }
    return horizon;
  }

  /// Enter the next phase of a job (or finish it).
  void AdvancePhase(workload::JobId id) {
    ExecState& state = running_.at(id);
    sim::SimTime now = simulator_.Now();
    for (;;) {
      if (state.next_phase >= state.job->phases.size()) {
        FinishJob(id, now, /*killed=*/false);
        return;
      }
      const workload::Phase& phase = state.job->phases[state.next_phase];
      ++state.next_phase;
      if (phase.kind == workload::PhaseKind::kCompute) {
        if (phase.compute_seconds <= 0) continue;  // empty phase: skip
        state.compute_duration = phase.compute_seconds;
        state.compute_fire_time = now + phase.compute_seconds;
        state.compute_event = simulator_.ScheduleAt(
            state.compute_fire_time, ComputeAction(id, phase.compute_seconds));
        state.has_compute_event = true;
        return;
      }
      // I/O phase.
      if (phase.io_volume_gb <= util::kVolumeEpsilon) continue;
      state.io_request_start = now;
      state.in_io = true;
      Log(SchedEventKind::kIoRequest, id, phase.io_volume_gb);
      io_scheduler_.SubmitRequest(id, phase.io_volume_gb, now,
                                  phase.is_flush);
      return;
    }
  }

  void OnIoComplete(workload::JobId id, sim::SimTime now,
                    const IoCompletionInfo& info) {
    ExecState& state = running_.at(id);
    state.io_time_actual += now - state.io_request_start;
    state.in_io = false;
    Log(SchedEventKind::kIoComplete, id);
    if (config_.app_checkpoint.enabled && state.next_phase > 0 &&
        state.job->phases[state.next_phase - 1].is_flush) {
      ++state.flush_count;
      if (info.absorbed) {
        // Staged in the burst buffer: durable only once the drain has
        // pushed the flush's bytes to the PFS.
        state.pending_durables.push_back(
            DurableMarker{state.next_phase, now, info.durable_drain_gb});
      } else {
        // Direct path: durable now. This point postdates every pending
        // marker, so they are superseded.
        state.durable_phase = state.next_phase;
        state.durable_anchor_time = now;
        state.pending_durables.clear();
      }
      SettleJobMarkers(state, io_scheduler_.TotalDrainedGb(now));
    }
    AdvancePhase(id);
  }

  /// Promote every pending marker the drain has caught up with into the
  /// job's durable restart point. Markers are in completion order with
  /// monotone thresholds, so a prefix settles.
  static void SettleJobMarkers(ExecState& state, double drained_gb) {
    std::size_t settled = 0;
    for (const DurableMarker& m : state.pending_durables) {
      if (m.threshold_gb > drained_gb + util::kVolumeEpsilon) break;
      state.durable_phase = m.resume_phase;
      state.durable_anchor_time = m.completion_time;
      ++settled;
    }
    if (settled > 0) {
      state.pending_durables.erase(state.pending_durables.begin(),
                                   state.pending_durables.begin() + settled);
    }
  }

  void SettleAllMarkers(sim::SimTime now) {
    double drained = io_scheduler_.TotalDrainedGb(now);
    for (auto& [id, state] : running_) SettleJobMarkers(state, drained);
  }

  metrics::JobRecord MakeRecord(const ExecState& state, sim::SimTime now,
                                bool killed) const {
    metrics::JobRecord record;
    record.id = state.job->id;
    record.requested_nodes = state.job->nodes;
    record.allocated_nodes = state.partition.nodes;
    record.submit_time = state.job->submit_time;
    record.start_time = state.start_time;
    record.end_time = now;
    record.uncongested_runtime =
        state.job->UncongestedRuntime(config_.machine.node_bandwidth_gbps);
    record.requested_walltime = state.job->requested_walltime;
    record.io_time_actual = state.io_time_actual;
    record.io_time_uncongested =
        state.job->UncongestedIoSeconds(config_.machine.node_bandwidth_gbps);
    record.io_phase_count = state.job->IoPhaseCount();
    record.killed = killed;
    record.flush_count = state.flush_count;
    return record;
  }

  void FinishJob(workload::JobId id, sim::SimTime now, bool killed) {
    Log(killed ? SchedEventKind::kKill : SchedEventKind::kEnd, id);
    ExecState state = running_.at(id);
    running_.erase(id);
    if (state.has_kill_event) simulator_.Cancel(state.kill_event);
    // Only jobs that ran to normal completion train the predictor: a
    // walltime-killed job's observed phases misrepresent its behaviour.
    if (!killed) io_scheduler_.ObserveCompletion(id);
    io_scheduler_.UnregisterJob(id);
    if (injector_.has_value()) injector_->OnJobStop(id);
    batch_.OnJobEnd(id, now);

    metrics::JobRecord record = MakeRecord(state, now, killed);
    auto rit = retry_.find(id);
    if (rit != retry_.end()) {
      record.attempts = rit->second.failures + 1;
      record.lost_seconds = rit->second.lost_seconds;
      record.flush_count += rit->second.flush_count;
      record.rework_seconds = rit->second.rework_seconds;
      retry_.erase(rit);
    }
    records_.push_back(record);

    RunSchedulingPass();
  }

  // --- Checkpoint orchestration --------------------------------------------

  /// Event loop with checkpoint triggers and watchdog polling. Checkpoints
  /// are taken strictly *between* events, so the saved state is always a
  /// consistent between-events frontier.
  void RunLoop() {
    const ckpt::Options& opt = config_.checkpoint;
    const bool saving = opt.SavingEnabled();
    RunControl* control = config_.control;
    using Clock = std::chrono::steady_clock;
    auto wall_period = std::chrono::duration_cast<Clock::duration>(
        std::chrono::duration<double>(
            opt.every_wall_seconds > 0 ? opt.every_wall_seconds : 0.0));
    double next_sim_save = opt.every_sim_seconds > 0
                               ? simulator_.Now() + opt.every_sim_seconds
                               : 0.0;
    std::uint64_t next_event_save =
        opt.every_events > 0
            ? simulator_.processed_events() + opt.every_events
            : 0;
    Clock::time_point next_wall_save = Clock::now() + wall_period;
    const std::uint64_t check_every =
        checker_.has_value() ? config_.invariant_check_every_events : 0;
    std::uint64_t next_invariant_check =
        check_every > 0 ? simulator_.processed_events() + check_every : 0;

    while (simulator_.RunOne()) {
      if (check_every > 0 &&
          simulator_.processed_events() >= next_invariant_check) {
        RunInvariantCheck();
        next_invariant_check = simulator_.processed_events() + check_every;
      }
      if (control != nullptr) {
        control->progress_events.store(simulator_.processed_events(),
                                       std::memory_order_relaxed);
        control->progress_sim_time.store(simulator_.Now(),
                                         std::memory_order_relaxed);
        if (control->abort.load(std::memory_order_relaxed)) {
          std::string path;
          if (!opt.directory.empty()) path = SaveCheckpointNow();
          throw SimulationAborted(
              "simulation aborted by watchdog at t=" +
                  std::to_string(simulator_.Now()) + " after " +
                  std::to_string(simulator_.processed_events()) + " events" +
                  (path.empty() ? "" : "; emergency checkpoint " + path),
              path);
        }
      }
      if (!saving || simulator_.pending_events() == 0) continue;
      bool due = false;
      if (opt.every_events > 0 &&
          simulator_.processed_events() >= next_event_save) {
        due = true;
      }
      if (opt.every_sim_seconds > 0 && simulator_.Now() >= next_sim_save) {
        due = true;
      }
      // The wall trigger checks the clock only every 1024 events to keep
      // the hot loop free of syscalls.
      if (opt.every_wall_seconds > 0 &&
          (simulator_.processed_events() & 1023u) == 0 &&
          Clock::now() >= next_wall_save) {
        due = true;
      }
      if (!due) continue;
      SaveCheckpointNow();
      if (opt.every_events > 0) {
        next_event_save = simulator_.processed_events() + opt.every_events;
      }
      if (opt.every_sim_seconds > 0) {
        next_sim_save = simulator_.Now() + opt.every_sim_seconds;
      }
      if (opt.every_wall_seconds > 0) {
        next_wall_save = Clock::now() + wall_period;
      }
    }
  }

  /// One full InvariantChecker sweep, counted on the hub when one is
  /// attached. Strictly read-only with respect to simulation state.
  void RunInvariantCheck() {
    checker_->CheckNow(simulator_.Now());
    if (hub_ != nullptr) hub_->invariant_checks->Inc();
  }

  /// Snapshot the complete engine state and atomically publish it under the
  /// next sequence number, pruning old checkpoints. Returns the path.
  std::string SaveCheckpointNow() {
    const ckpt::Options& opt = config_.checkpoint;
    // Flag the write on the control handle so a watchdog can tell "long
    // checkpoint write" apart from "stuck simulation"; cleared on every
    // exit path (WriteAtomic can throw on a full disk).
    struct CkptFlag {
      RunControl* control;
      explicit CkptFlag(RunControl* c) : control(c) {
        if (control != nullptr) {
          control->checkpoint_in_progress.store(true,
                                                std::memory_order_relaxed);
        }
      }
      ~CkptFlag() {
        if (control != nullptr) {
          control->checkpoint_in_progress.store(false,
                                                std::memory_order_relaxed);
        }
      }
    } flag(config_.control);
    std::filesystem::create_directories(std::filesystem::path(opt.directory));
    ckpt::CheckpointFile file = BuildCheckpoint();
    std::string path = ckpt::CheckpointFileName(
        opt.directory, ckpt::NextSequence(opt.directory));
    file.WriteAtomic(path);
    ++checkpoints_written_;
    ckpt::PruneOld(opt.directory, opt.keep_last);
    return path;
  }

  std::uint64_t ConfigHash() {
    if (!config_hash_.has_value()) {
      config_hash_ = SimulationConfigHash(config_, jobs_);
    }
    return *config_hash_;
  }

  /// Id → workload entry, built on first use. Checkpointing requires
  /// unique job ids (the restore path keys everything by id).
  const workload::Job* FindJob(workload::JobId id) {
    if (job_index_.empty() && !jobs_.empty()) {
      job_index_.reserve(jobs_.size());
      for (const workload::Job& job : jobs_) {
        if (!job_index_.emplace(job.id, &job).second) {
          throw std::invalid_argument(
              "checkpoint: workload has duplicate job id " +
              std::to_string(job.id));
        }
      }
    }
    auto it = job_index_.find(id);
    return it == job_index_.end() ? nullptr : it->second;
  }

  ckpt::CheckpointFile BuildCheckpoint() {
    ckpt::CheckpointFile file;
    file.SetConfigHash(ConfigHash());
    {
      ckpt::Writer w;
      w.F64(simulator_.Now());
      w.U64(simulator_.processed_events());
      w.U64(simulator_.NextEventId());
      file.AddSection("sim", w.TakeBuffer());
    }
    {
      ckpt::Writer w;
      machine_.SaveState(w);
      file.AddSection("machine", w.TakeBuffer());
    }
    {
      ckpt::Writer w;
      storage_.SaveState(w);
      file.AddSection("storage", w.TakeBuffer());
    }
    if (burst_buffer_ != nullptr) {
      ckpt::Writer w;
      burst_buffer_->SaveState(w);
      file.AddSection("burst_buffer", w.TakeBuffer());
    }
    {
      ckpt::Writer w;
      batch_.SaveState(w);
      file.AddSection("batch", w.TakeBuffer());
    }
    {
      ckpt::Writer w;
      io_scheduler_.SaveState(w);
      file.AddSection("iosched", w.TakeBuffer());
    }
    {
      ckpt::Writer w;
      SaveEngineSection(w);
      file.AddSection("engine", w.TakeBuffer());
    }
    if (injector_.has_value()) {
      ckpt::Writer w;
      injector_->SaveState(w);
      file.AddSection("faults", w.TakeBuffer());
    }
    {
      ckpt::Writer w;
      fault_stats_.SaveState(w);
      file.AddSection("fault_stats", w.TakeBuffer());
    }
    {
      ckpt::Writer w;
      utilization_.SaveState(w);
      file.AddSection("utilization", w.TakeBuffer());
    }
    {
      ckpt::Writer w;
      bandwidth_tracker_.SaveState(w);
      file.AddSection("bandwidth", w.TakeBuffer());
    }
    if (event_log_ != nullptr) {
      ckpt::Writer w;
      event_log_->SaveState(w);
      file.AddSection("event_log", w.TakeBuffer());
    }
    return file;
  }

  void SaveEngineSection(ckpt::Writer& w) {
    // Running jobs, sorted by id for deterministic bytes.
    std::vector<workload::JobId> ids;
    ids.reserve(running_.size());
    for (const auto& [id, state] : running_) ids.push_back(id);
    std::sort(ids.begin(), ids.end());
    w.U32(static_cast<std::uint32_t>(ids.size()));
    for (workload::JobId id : ids) {
      const ExecState& s = running_.at(id);
      w.I64(id);
      w.I64(s.partition.first_midplane);
      w.I64(s.partition.midplane_count);
      w.I64(s.partition.nodes);
      w.F64(s.start_time);
      w.U64(s.next_phase);
      w.F64(s.io_request_start);
      w.F64(s.io_time_actual);
      w.Bool(s.in_io);
      w.Bool(s.has_kill_event);
      if (s.has_kill_event) {
        w.U64(s.kill_event);
        w.F64(s.kill_fire_time);
      }
      w.Bool(s.has_compute_event);
      if (s.has_compute_event) {
        w.U64(s.compute_event);
        w.F64(s.compute_fire_time);
        w.F64(s.compute_duration);
      }
      w.U64(s.durable_phase);
      w.F64(s.durable_anchor_time);
      w.I64(s.flush_count);
      w.U32(static_cast<std::uint32_t>(s.pending_durables.size()));
      for (const DurableMarker& m : s.pending_durables) {
        w.U64(m.resume_phase);
        w.F64(m.completion_time);
        w.F64(m.threshold_gb);
      }
    }
    // Retry contexts.
    ids.clear();
    for (const auto& [id, rc] : retry_) ids.push_back(id);
    std::sort(ids.begin(), ids.end());
    w.U32(static_cast<std::uint32_t>(ids.size()));
    for (workload::JobId id : ids) {
      const RetryContext& rc = retry_.at(id);
      w.I64(id);
      w.I64(rc.failures);
      w.F64(rc.lost_seconds);
      w.U64(rc.resume_phase);
      w.I64(rc.flush_count);
      w.F64(rc.rework_seconds);
    }
    // Finished-job records, in completion order (sorted by id only at the
    // end of Run, so the order must be preserved across a resume).
    w.U32(static_cast<std::uint32_t>(records_.size()));
    for (const metrics::JobRecord& r : records_) {
      w.I64(r.id);
      w.I64(r.requested_nodes);
      w.I64(r.allocated_nodes);
      w.F64(r.submit_time);
      w.F64(r.start_time);
      w.F64(r.end_time);
      w.F64(r.uncongested_runtime);
      w.F64(r.requested_walltime);
      w.F64(r.io_time_actual);
      w.F64(r.io_time_uncongested);
      w.I64(r.io_phase_count);
      w.Bool(r.killed);
      w.I64(r.attempts);
      w.Bool(r.abandoned);
      w.F64(r.lost_seconds);
      w.I64(r.flush_count);
      w.F64(r.rework_seconds);
    }
    // Pending submit events (fire time = the job's submit time).
    ids.clear();
    for (const auto& [id, event] : pending_submits_) ids.push_back(id);
    std::sort(ids.begin(), ids.end());
    w.U32(static_cast<std::uint32_t>(ids.size()));
    for (workload::JobId id : ids) {
      w.I64(id);
      w.U64(pending_submits_.at(id));
    }
    // Pending backoff scheduling passes (std::map: already sorted).
    w.U32(static_cast<std::uint32_t>(pending_passes_.size()));
    for (const auto& [seq, pass] : pending_passes_) {
      w.U64(seq);
      w.U64(pass.event);
      w.F64(pass.fire_time);
    }
    w.U64(next_pass_seq_);
    // Sampler tick event.
    w.Bool(has_sample_event_);
    if (has_sample_event_) {
      w.U64(sample_event_);
      w.F64(sample_event_time_);
    }
  }

  void RestoreEngineSection(ckpt::Reader& r) {
    auto must_resolve = [this](workload::JobId id) -> const workload::Job* {
      const workload::Job* job = FindJob(id);
      if (job == nullptr) {
        throw std::runtime_error(
            "checkpoint engine: job " + std::to_string(id) +
            " not present in the workload");
      }
      return job;
    };
    std::uint32_t n = r.U32();
    for (std::uint32_t i = 0; i < n; ++i) {
      workload::JobId id = r.I64();
      ExecState s;
      s.job = must_resolve(id);
      s.partition.first_midplane = static_cast<int>(r.I64());
      s.partition.midplane_count = static_cast<int>(r.I64());
      s.partition.nodes = static_cast<int>(r.I64());
      s.start_time = r.F64();
      s.next_phase = static_cast<std::size_t>(r.U64());
      s.io_request_start = r.F64();
      s.io_time_actual = r.F64();
      s.in_io = r.Bool();
      s.has_kill_event = r.Bool();
      if (s.has_kill_event) {
        s.kill_event = r.U64();
        s.kill_fire_time = r.F64();
        simulator_.RestoreEvent(s.kill_fire_time, s.kill_event,
                                KillAction(id));
      }
      s.has_compute_event = r.Bool();
      if (s.has_compute_event) {
        s.compute_event = r.U64();
        s.compute_fire_time = r.F64();
        s.compute_duration = r.F64();
        simulator_.RestoreEvent(s.compute_fire_time, s.compute_event,
                                ComputeAction(id, s.compute_duration));
      }
      s.durable_phase = static_cast<std::size_t>(r.U64());
      s.durable_anchor_time = r.F64();
      s.flush_count = static_cast<int>(r.I64());
      std::uint32_t markers = r.U32();
      s.pending_durables.reserve(markers);
      for (std::uint32_t m = 0; m < markers; ++m) {
        DurableMarker marker;
        marker.resume_phase = static_cast<std::size_t>(r.U64());
        marker.completion_time = r.F64();
        marker.threshold_gb = r.F64();
        s.pending_durables.push_back(marker);
      }
      running_.emplace(id, s);
    }
    n = r.U32();
    for (std::uint32_t i = 0; i < n; ++i) {
      workload::JobId id = r.I64();
      RetryContext rc;
      rc.failures = static_cast<int>(r.I64());
      rc.lost_seconds = r.F64();
      rc.resume_phase = static_cast<std::size_t>(r.U64());
      rc.flush_count = static_cast<int>(r.I64());
      rc.rework_seconds = r.F64();
      retry_.emplace(id, rc);
    }
    n = r.U32();
    records_.reserve(n);
    for (std::uint32_t i = 0; i < n; ++i) {
      metrics::JobRecord rec;
      rec.id = r.I64();
      rec.requested_nodes = static_cast<int>(r.I64());
      rec.allocated_nodes = static_cast<int>(r.I64());
      rec.submit_time = r.F64();
      rec.start_time = r.F64();
      rec.end_time = r.F64();
      rec.uncongested_runtime = r.F64();
      rec.requested_walltime = r.F64();
      rec.io_time_actual = r.F64();
      rec.io_time_uncongested = r.F64();
      rec.io_phase_count = static_cast<int>(r.I64());
      rec.killed = r.Bool();
      rec.attempts = static_cast<int>(r.I64());
      rec.abandoned = r.Bool();
      rec.lost_seconds = r.F64();
      rec.flush_count = static_cast<int>(r.I64());
      rec.rework_seconds = r.F64();
      records_.push_back(rec);
    }
    n = r.U32();
    for (std::uint32_t i = 0; i < n; ++i) {
      workload::JobId id = r.I64();
      sim::EventId event = r.U64();
      const workload::Job* job = must_resolve(id);
      simulator_.RestoreEvent(job->submit_time, event, SubmitAction(*job));
      pending_submits_.emplace(id, event);
    }
    n = r.U32();
    for (std::uint32_t i = 0; i < n; ++i) {
      std::uint64_t seq = r.U64();
      PendingPass pass;
      pass.event = r.U64();
      pass.fire_time = r.F64();
      simulator_.RestoreEvent(pass.fire_time, pass.event, PassAction(seq));
      pending_passes_.emplace(seq, pass);
    }
    next_pass_seq_ = r.U64();
    has_sample_event_ = r.Bool();
    if (has_sample_event_) {
      sample_event_ = r.U64();
      sample_event_time_ = r.F64();
      if (hub_ == nullptr || hub_->options().sample_dt_seconds <= 0) {
        throw ckpt::ConfigMismatchError(
            "checkpoint engine: a sampler tick is pending but the resumed "
            "run has no sampler (pass a hub built from the same obs "
            "options)");
      }
      simulator_.RestoreEvent(sample_event_time_, sample_event_,
                              SampleAction());
    }
    r.ExpectEnd();
  }

  void RestoreFrom(const ckpt::CheckpointFile& file,
                   const std::string& context) {
    if (restored_) {
      throw std::logic_error("checkpoint: engine already restored");
    }
    if (simulator_.processed_events() != 0 ||
        simulator_.pending_events() != 0) {
      throw std::logic_error("checkpoint: restore requires a fresh engine");
    }
    if (file.config_hash() != ConfigHash()) {
      throw ckpt::ConfigMismatchError(
          "checkpoint " + context +
          ": configuration/workload hash mismatch (the file was written "
          "under a different run setup)");
    }
    if (file.HasSection("burst_buffer") != (burst_buffer_ != nullptr)) {
      throw ckpt::ConfigMismatchError(
          "checkpoint " + context + ": burst-buffer presence mismatch");
    }
    if (file.HasSection("faults") != injector_.has_value()) {
      throw ckpt::ConfigMismatchError(
          "checkpoint " + context + ": fault-injection presence mismatch");
    }
    {
      ckpt::Reader r(file.Section("sim"), "sim");
      sim::SimTime now = r.F64();
      std::uint64_t processed = r.U64();
      sim::EventId next_id = r.U64();
      r.ExpectEnd();
      simulator_.RestoreClock(now, processed, next_id);
    }
    {
      ckpt::Reader r(file.Section("machine"), "machine");
      machine_.RestoreState(r);
      r.ExpectEnd();
    }
    {
      ckpt::Reader r(file.Section("storage"), "storage");
      storage_.RestoreState(r);
      r.ExpectEnd();
    }
    if (burst_buffer_ != nullptr) {
      ckpt::Reader r(file.Section("burst_buffer"), "burst_buffer");
      burst_buffer_->RestoreState(r);
      r.ExpectEnd();
    }
    auto resolve = [this](workload::JobId id) { return FindJob(id); };
    {
      ckpt::Reader r(file.Section("batch"), "batch");
      batch_.RestoreState(r, resolve);
      r.ExpectEnd();
    }
    {
      ckpt::Reader r(file.Section("iosched"), "iosched");
      io_scheduler_.RestoreState(r, resolve);
      r.ExpectEnd();
    }
    {
      ckpt::Reader r(file.Section("engine"), "engine");
      RestoreEngineSection(r);
    }
    if (injector_.has_value()) {
      ckpt::Reader r(file.Section("faults"), "faults");
      injector_->RestoreState(r);
      r.ExpectEnd();
    }
    {
      ckpt::Reader r(file.Section("fault_stats"), "fault_stats");
      fault_stats_.RestoreState(r);
      r.ExpectEnd();
    }
    {
      ckpt::Reader r(file.Section("utilization"), "utilization");
      utilization_.RestoreState(r);
      r.ExpectEnd();
    }
    {
      ckpt::Reader r(file.Section("bandwidth"), "bandwidth");
      bandwidth_tracker_.RestoreState(r);
      r.ExpectEnd();
    }
    if (event_log_ != nullptr && file.HasSection("event_log")) {
      ckpt::Reader r(file.Section("event_log"), "event_log");
      event_log_->RestoreState(r);
      r.ExpectEnd();
    }
    restored_ = true;
    resumed_from_ = context;
  }

  const SimulationConfig& config_;
  const workload::Workload& jobs_;
  EventLog* event_log_;
  obs::Hub* hub_;
  /// Consumers of the Log() emit point (event_log_, then trace_adapter_).
  std::vector<SchedEventSink*> sinks_;
  std::optional<SchedTraceAdapter> trace_adapter_;
  sim::Simulator simulator_;
  machine::Machine machine_;
  /// Storage subsystem: single-tier PFS or PFS + burst-buffer tier,
  /// selected by config. Declared before the members that hold references
  /// into it.
  std::unique_ptr<storage::StorageBackend> backend_;
  /// The PFS fair-share model inside the backend (checkpoint section
  /// "storage" and every grant computation go through this alias, keeping
  /// the on-disk layout identical to the pre-backend engine).
  storage::StorageModel& storage_;
  sched::BatchScheduler batch_;
  metrics::UtilizationTracker utilization_;
  metrics::BandwidthTracker bandwidth_tracker_;
  /// backend_->burst_buffer(); null when the tier is disabled.
  storage::BurstBuffer* burst_buffer_ = nullptr;
  IoScheduler io_scheduler_;
  /// Nominal BWmax; degradation scales it (the storage model holds the
  /// currently effective value).
  double base_bwmax_ = 0.0;
  metrics::FaultStats fault_stats_;
  std::optional<faults::FaultInjector> injector_;
  /// The chaos-harness invariant checker (config.check_invariants only);
  /// registered as a sink for lifecycle legality and swept periodically by
  /// RunLoop.
  std::optional<InvariantChecker> checker_;
  std::unordered_map<workload::JobId, ExecState> running_;
  std::unordered_map<workload::JobId, RetryContext> retry_;
  metrics::JobRecords records_;
  /// Scratch for RecordSample's suspended-transfer count.
  std::vector<const storage::Transfer*> sample_scratch_;
  // --- Checkpoint bookkeeping ----------------------------------------------
  /// Not-yet-fired submit events, keyed by job id.
  std::unordered_map<workload::JobId, sim::EventId> pending_submits_;
  /// A not-yet-fired backoff scheduling pass (armed by FailJob).
  struct PendingPass {
    sim::EventId event = 0;
    sim::SimTime fire_time = 0.0;
  };
  /// Keyed by an ever-increasing sequence so concurrent backoffs coexist.
  std::map<std::uint64_t, PendingPass> pending_passes_;
  std::uint64_t next_pass_seq_ = 0;
  /// The single pending sampler tick (obs runs only).
  sim::EventId sample_event_ = 0;
  sim::SimTime sample_event_time_ = 0.0;
  bool has_sample_event_ = false;
  /// Lazily built id → job map (restore + duplicate-id validation).
  std::unordered_map<workload::JobId, const workload::Job*> job_index_;
  std::optional<std::uint64_t> config_hash_;
  bool restored_ = false;
  std::string resumed_from_;
  std::uint64_t checkpoints_written_ = 0;
};

std::string FormatIssues(const std::vector<ConfigIssue>& issues) {
  std::string msg = "SimulationConfig validation failed (" +
                    std::to_string(issues.size()) +
                    (issues.size() == 1 ? " issue)" : " issues)");
  for (const ConfigIssue& issue : issues) {
    msg += "\n  " + issue.field + ": " + issue.message;
  }
  return msg;
}

}  // namespace

ConfigValidationError::ConfigValidationError(std::vector<ConfigIssue> issues)
    : std::invalid_argument(FormatIssues(issues)),
      issues_(std::move(issues)) {}

std::vector<ConfigIssue> SimulationConfig::Validate() const {
  std::vector<ConfigIssue> issues;
  auto add = [&issues](const char* field, std::string message) {
    issues.push_back({field, std::move(message)});
  };

  if (machine.nodes_per_midplane <= 0) {
    add("machine.nodes_per_midplane", "must be positive");
  }
  if (machine.midplanes_per_row <= 0) {
    add("machine.midplanes_per_row", "must be positive");
  }
  if (machine.rows <= 0) add("machine.rows", "must be positive");
  if (machine.node_bandwidth_gbps <= 0) {
    add("machine.node_bandwidth_gbps", "must be positive");
  }

  if (storage.max_bandwidth_gbps <= 0) {
    add("storage.max_bandwidth_gbps", "must be positive");
  }

  // The factory registry is the single source of truth for names (it also
  // accepts the lowercase aliases the figure list omits).
  if (!KnownPolicyName(policy)) {
    add("policy", "unknown policy \"" + policy + "\" (known: " +
                      PolicyNamesHelp() + ")");
  }

  {
    std::string err = plan.Validate();
    if (!err.empty()) add("plan", std::move(err));
  }

  if (warmup_fraction < 0 || warmup_fraction >= 1) {
    add("warmup_fraction", "must be in [0, 1)");
  }
  if (cooldown_fraction < 0 || cooldown_fraction >= 1) {
    add("cooldown_fraction", "must be in [0, 1)");
  }
  if (warmup_fraction >= 0 && cooldown_fraction >= 0 &&
      warmup_fraction + cooldown_fraction >= 1) {
    add("warmup_fraction", "warmup + cooldown must leave a stable window");
  }

  if (batch.max_retries < 0) add("batch.max_retries", "must be >= 0");
  if (batch.requeue_backoff_seconds < 0) {
    add("batch.requeue_backoff_seconds", "must be >= 0");
  }
  if (batch.max_backoff_seconds < 0) {
    add("batch.max_backoff_seconds", "must be >= 0");
  }
  if (batch.backoff_jitter_fraction < 0 || batch.backoff_jitter_fraction >= 1) {
    add("batch.backoff_jitter_fraction", "must be in [0, 1)");
  }

  {
    std::string err = transfer_retry.Validate();
    if (!err.empty()) add("transfer_retry", std::move(err));
  }

  if (app_checkpoint.max_defer_seconds < 0) {
    add("app_checkpoint.max_defer_seconds", "must be >= 0");
  }
  if (faults.restart_mode == faults::RestartMode::kRestartFromAppCheckpoint &&
      !app_checkpoint.enabled) {
    add("faults.restart_mode",
        "restart mode app_checkpoint requires app_checkpoint.enabled (the "
        "engine must track flush durability to know where to restart)");
  }

  if (prediction.mode != "learned" && prediction.mode != "oracle" &&
      prediction.mode != "null") {
    add("prediction.mode",
        "unknown mode \"" + prediction.mode +
            "\" (known: learned, oracle, null)");
  }
  if (prediction.alpha <= 0 || prediction.alpha > 1) {
    add("prediction.alpha", "must be in (0, 1]");
  }
  if (prediction.horizon_seconds <= 0) {
    add("prediction.horizon_seconds", "must be positive");
  }
  if (check_invariants && invariant_check_every_events == 0) {
    add("invariant_check_every_events",
        "must be positive when check_invariants is set");
  }

  const storage::BurstBufferConfig& bb = burst_buffer;
  if (bb.capacity_gb < 0) add("burst_buffer.capacity_gb", "must be >= 0");
  if (bb.drain_gbps < 0) add("burst_buffer.drain_gbps", "must be >= 0");
  if (bb.absorb_gbps < 0) add("burst_buffer.absorb_gbps", "must be >= 0");
  if (bb.per_job_quota_gb < 0) {
    add("burst_buffer.per_job_quota_gb", "must be >= 0");
  }
  if (bb.congestion_watermark <= 0 || bb.congestion_watermark > 1) {
    add("burst_buffer.congestion_watermark", "must be in (0, 1]");
  }
  if ((bb.capacity_gb > 0) != (bb.drain_gbps > 0)) {
    add("burst_buffer",
        "capacity_gb and drain_gbps must both be positive to enable the "
        "tier (set both to 0 to disable it)");
  }
  if (bb.enabled() && storage.max_bandwidth_gbps > 0 &&
      bb.drain_gbps >= storage.max_bandwidth_gbps) {
    add("burst_buffer.drain_gbps",
        "drain must stay below storage.max_bandwidth_gbps (the drain is "
        "carved out of the PFS budget)");
  }

  const faults::FaultPlanConfig& fp = faults.plan_config;
  if (fp.degraded_fraction < 0 || fp.degraded_fraction >= 1) {
    add("faults.plan_config.degraded_fraction", "must be in [0, 1)");
  }
  if (fp.degradation_factor <= 0 || fp.degradation_factor > 1) {
    add("faults.plan_config.degradation_factor", "must be in (0, 1]");
  }
  if (fp.degraded_window_seconds < 0) {
    add("faults.plan_config.degraded_window_seconds", "must be >= 0");
  }
  if (fp.midplane_outages < 0) {
    add("faults.plan_config.midplane_outages", "must be >= 0");
  }
  if (fp.midplane_outage_seconds < 0) {
    add("faults.plan_config.midplane_outage_seconds", "must be >= 0");
  }
  if (fp.job_kill_probability < 0 || fp.job_kill_probability > 1) {
    add("faults.plan_config.job_kill_probability", "must be in [0, 1]");
  }
  if (fp.bb_faults < 0) add("faults.plan_config.bb_faults", "must be >= 0");
  if (fp.bb_fault_seconds < 0) {
    add("faults.plan_config.bb_fault_seconds", "must be >= 0");
  }
  if (fp.drain_degraded_fraction < 0 || fp.drain_degraded_fraction >= 1) {
    add("faults.plan_config.drain_degraded_fraction", "must be in [0, 1)");
  }
  if (fp.drain_degradation_factor <= 0 || fp.drain_degradation_factor > 1) {
    add("faults.plan_config.drain_degradation_factor", "must be in (0, 1]");
  }
  if (fp.drain_window_seconds < 0) {
    add("faults.plan_config.drain_window_seconds", "must be >= 0");
  }
  if (fp.straggler_probability < 0 || fp.straggler_probability > 1) {
    add("faults.plan_config.straggler_probability", "must be in [0, 1]");
  }
  if (fp.straggler_probability > 0 &&
      (fp.straggler_factor <= 0 || fp.straggler_factor >= 1)) {
    add("faults.plan_config.straggler_factor", "must be in (0, 1)");
  }
  if (!faults.explicit_plan.Empty()) {
    std::string err = faults.explicit_plan.Validate();
    if (!err.empty()) add("faults.explicit_plan", err);
  }
  {
    // Burst-buffer fault windows are meaningless without the tier.
    const bool wants_bb_faults =
        (fp.enabled &&
         (fp.bb_faults > 0 || fp.drain_degraded_fraction > 0)) ||
        !faults.explicit_plan.bb_faults.empty() ||
        !faults.explicit_plan.drain_degradations.empty();
    if (wants_bb_faults && !bb.enabled()) {
      add("faults",
          "burst-buffer fault / drain-degradation windows require the "
          "burst-buffer tier to be enabled");
    }
  }

  if (obs.sample_dt_seconds < 0) {
    add("obs.sample_dt_seconds", "must be >= 0 (0 disables sampling)");
  }

  if (checkpoint.every_sim_seconds < 0) {
    add("checkpoint.every_sim_seconds", "must be >= 0");
  }
  if (checkpoint.every_wall_seconds < 0) {
    add("checkpoint.every_wall_seconds", "must be >= 0");
  }
  if (checkpoint.directory.empty() &&
      (checkpoint.every_sim_seconds > 0 || checkpoint.every_events > 0 ||
       checkpoint.every_wall_seconds > 0)) {
    add("checkpoint.directory",
        "a save trigger is set but no checkpoint directory is configured");
  }
  if (!checkpoint.resume_from.empty() && checkpoint.resume_latest) {
    add("checkpoint.resume_from",
        "resume_from and resume_latest are mutually exclusive");
  }

  return issues;
}

SimulationConfig SimulationConfig::Builder::Build() const {
  std::vector<ConfigIssue> issues = config_.Validate();
  if (!issues.empty()) throw ConfigValidationError(std::move(issues));
  return config_;
}

std::uint64_t SimulationConfigHash(const SimulationConfig& config,
                                   const workload::Workload& jobs) {
  using metrics::FnvMix;
  std::uint64_t h = metrics::kFnvOffset;
  // Machine geometry + link speed.
  h = FnvMix(h, static_cast<std::uint64_t>(config.machine.nodes_per_midplane));
  h = FnvMix(h, static_cast<std::uint64_t>(config.machine.midplanes_per_row));
  h = FnvMix(h, static_cast<std::uint64_t>(config.machine.rows));
  h = FnvMix(h, config.machine.node_bandwidth_gbps);
  // Storage.
  h = FnvMix(h, config.storage.max_bandwidth_gbps);
  h = FnvMix(h, static_cast<std::uint64_t>(config.storage.enforce_capacity));
  // Batch scheduler. incremental_order is deliberately excluded: both order
  // paths produce bit-identical schedules, so checkpoints are
  // interchangeable across the toggle.
  h = FnvMix(h, static_cast<std::uint64_t>(config.batch.order));
  h = FnvMix(h, static_cast<std::uint64_t>(config.batch.easy_backfill));
  h = FnvMix(h, static_cast<std::uint64_t>(config.batch.max_retries));
  h = FnvMix(h, config.batch.requeue_backoff_seconds);
  h = FnvMix(h, config.batch.max_backoff_seconds);
  h = FnvMix(h, config.batch.backoff_jitter_fraction);
  h = FnvMix(h, config.batch.backoff_jitter_seed);
  // Transfer deadlines/retries reshape the event schedule when enabled.
  h = FnvMix(h, config.transfer_retry.timeout_seconds);
  h = FnvMix(h, static_cast<std::uint64_t>(config.transfer_retry.max_retries));
  h = FnvMix(h, config.transfer_retry.backoff_base_seconds);
  h = FnvMix(h, config.transfer_retry.backoff_max_seconds);
  h = FnvMix(h, config.transfer_retry.backoff_jitter_fraction);
  h = FnvMix(h, config.transfer_retry.jitter_seed);
  // App-checkpoint flush scheduling: deferral decisions reshape the event
  // schedule, and the enabled flag changes the checkpoint layout.
  h = FnvMix(h, static_cast<std::uint64_t>(config.app_checkpoint.enabled));
  h = FnvMix(h, config.app_checkpoint.max_defer_seconds);
  // Prediction: shapes both the schedule (prediction-aware policies) and
  // the checkpoint layout (predictor state section).
  h = FnvMix(h, static_cast<std::uint64_t>(config.prediction.enabled));
  h = MixStr(h, config.prediction.mode);
  h = FnvMix(h, config.prediction.alpha);
  h = FnvMix(h, static_cast<std::uint64_t>(config.prediction.min_support));
  h = FnvMix(h, config.prediction.horizon_seconds);
  // check_invariants is deliberately excluded: the checker is read-only.
  // Policy + engine switches that shape the schedule.
  h = MixStr(h, config.policy);
  // Replan cadence: shapes the schedule (and checkpoint plan section) only
  // under a planning policy. Mixing it conditionally keeps every greedy
  // config hash identical to pre-planning builds, so their checkpoints stay
  // mutually resumable.
  if (IsPlanningPolicyName(config.policy)) {
    h = FnvMix(h, config.plan.window_seconds);
    h = FnvMix(h, config.plan.slice_seconds);
    h = FnvMix(h, config.plan.churn_cycles);
  }
  h = FnvMix(h, static_cast<std::uint64_t>(config.track_bandwidth));
  h = FnvMix(h, static_cast<std::uint64_t>(config.enforce_walltime));
  // Burst buffer. The congestion watermark is deliberately excluded: it
  // only shapes observability output, never the schedule.
  h = FnvMix(h, config.burst_buffer.capacity_gb);
  h = FnvMix(h, config.burst_buffer.drain_gbps);
  h = FnvMix(h, config.burst_buffer.absorb_gbps);
  h = FnvMix(h, config.burst_buffer.per_job_quota_gb);
  // Faults: generation parameters and the explicit plan both pin the
  // schedule.
  const faults::FaultPlanConfig& fp = config.faults.plan_config;
  h = FnvMix(h, static_cast<std::uint64_t>(fp.enabled));
  h = FnvMix(h, fp.seed);
  h = FnvMix(h, fp.degraded_fraction);
  h = FnvMix(h, fp.degradation_factor);
  h = FnvMix(h, fp.degraded_window_seconds);
  h = FnvMix(h, static_cast<std::uint64_t>(fp.midplane_outages));
  h = FnvMix(h, fp.midplane_outage_seconds);
  h = FnvMix(h, fp.job_kill_probability);
  h = FnvMix(h, static_cast<std::uint64_t>(fp.bb_faults));
  h = FnvMix(h, fp.bb_fault_seconds);
  h = FnvMix(h, static_cast<std::uint64_t>(fp.bb_fault_lose_data));
  h = FnvMix(h, fp.drain_degraded_fraction);
  h = FnvMix(h, fp.drain_degradation_factor);
  h = FnvMix(h, fp.drain_window_seconds);
  h = FnvMix(h, fp.straggler_probability);
  h = FnvMix(h, fp.straggler_factor);
  const faults::FaultPlan& plan = config.faults.explicit_plan;
  h = FnvMix(h, static_cast<std::uint64_t>(plan.degradations.size()));
  for (const faults::StorageDegradation& d : plan.degradations) {
    h = FnvMix(h, d.start);
    h = FnvMix(h, d.end);
    h = FnvMix(h, d.bandwidth_factor);
  }
  h = FnvMix(h, static_cast<std::uint64_t>(plan.outages.size()));
  for (const faults::MidplaneOutage& o : plan.outages) {
    h = FnvMix(h, o.start);
    h = FnvMix(h, o.end);
    h = FnvMix(h, static_cast<std::uint64_t>(o.midplane));
  }
  h = FnvMix(h, plan.job_kill_probability);
  h = FnvMix(h, plan.kill_seed);
  h = FnvMix(h, static_cast<std::uint64_t>(plan.bb_faults.size()));
  for (const faults::BurstBufferFault& f : plan.bb_faults) {
    h = FnvMix(h, f.start);
    h = FnvMix(h, f.end);
    h = FnvMix(h, static_cast<std::uint64_t>(f.lose_data));
  }
  h = FnvMix(h, static_cast<std::uint64_t>(plan.drain_degradations.size()));
  for (const faults::DrainDegradation& d : plan.drain_degradations) {
    h = FnvMix(h, d.start);
    h = FnvMix(h, d.end);
    h = FnvMix(h, d.drain_factor);
  }
  h = FnvMix(h, plan.straggler_probability);
  h = FnvMix(h, plan.straggler_factor);
  h = FnvMix(h, plan.straggler_seed);
  h = FnvMix(h, static_cast<std::uint64_t>(config.faults.restart_mode));
  // Observability: sampler ticks consume event ids, so sampling must match.
  h = FnvMix(h, static_cast<std::uint64_t>(config.obs.enabled));
  h = FnvMix(h, config.obs.enabled ? config.obs.sample_dt_seconds : 0.0);
  // The workload itself.
  h = FnvMix(h, workload::WorkloadFingerprint(jobs));
  return h;
}

SimulationResult RunSimulation(const SimulationConfig& config,
                               const workload::Workload& jobs,
                               EventLog* event_log, obs::Hub* hub) {
  std::vector<ConfigIssue> issues = config.Validate();
  if (!issues.empty()) throw ConfigValidationError(std::move(issues));
  Engine engine(config, jobs, event_log, hub);
  const ckpt::Options& opt = config.checkpoint;
  std::string resume_path = opt.resume_from;
  if (resume_path.empty() && opt.resume_latest && !opt.directory.empty()) {
    resume_path = ckpt::FindLatestValid(
        opt.directory, SimulationConfigHash(config, jobs), nullptr);
  }
  if (!resume_path.empty()) {
    engine.RestoreFromFile(resume_path);
  }
  return engine.Run();
}

}  // namespace iosched::core
