// Trace-driven scheduling simulation (the paper's Qsim substrate, Section
// IV-A), wired with the I/O-aware framework.
//
// Composition: a discrete-event Simulator drives job submissions; the
// Cobalt-like BatchScheduler places jobs onto the partitioned Machine; each
// running job walks its compute/I/O phase list; I/O phases go through the
// IoScheduler, whose policy decides who transfers and how fast against the
// StorageModel. Per-job outcomes and the busy-node step function feed the
// metrics subsystem.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "ckpt/checkpoint.h"
#include "core/event_log.h"
#include "core/io_scheduler.h"
#include "faults/fault_plan.h"
#include "machine/machine.h"
#include "metrics/bandwidth.h"
#include "metrics/fault_stats.h"
#include "storage/backend.h"
#include "storage/burst_buffer.h"
#include "metrics/job_record.h"
#include "metrics/report.h"
#include "metrics/utilization.h"
#include "obs/hub.h"
#include "sched/batch_scheduler.h"
#include "storage/storage_model.h"
#include "workload/workload.h"

namespace iosched::core {

/// Shared-state handle between a running simulation and an external monitor
/// (the driver's watchdog). The engine publishes progress after every
/// processed event and polls `abort`; a monitor thread that sees no
/// progress within its budget sets `abort`, and the engine responds by
/// writing an emergency checkpoint (when a checkpoint directory is
/// configured) and throwing SimulationAborted. The struct must outlive the
/// run.
struct RunControl {
  std::atomic<std::uint64_t> progress_events{0};
  std::atomic<double> progress_sim_time{0.0};
  std::atomic<bool> abort{false};
  /// Set by the engine for the duration of a checkpoint write. Event
  /// progress stalls while a snapshot is serialized and fsynced, so a
  /// monitor must not confuse a long checkpoint write with a stuck
  /// simulation (the driver's Watchdog suspends its normal budget while
  /// this flag is up).
  std::atomic<bool> checkpoint_in_progress{false};
};

/// Thrown when a run is stopped via RunControl::abort. Carries the path of
/// the emergency checkpoint, when one could be written ("" otherwise).
class SimulationAborted : public std::runtime_error {
 public:
  SimulationAborted(const std::string& what, std::string checkpoint_path)
      : std::runtime_error(what),
        checkpoint_path_(std::move(checkpoint_path)) {}
  const std::string& checkpoint_path() const { return checkpoint_path_; }

 private:
  std::string checkpoint_path_;
};

/// One problem found by SimulationConfig::Validate — a dotted field path
/// plus a human-readable description of what is wrong with it.
struct ConfigIssue {
  std::string field;
  std::string message;
};

/// Thrown by RunSimulation (and SimulationConfig::Builder::Build) when a
/// config fails validation. Derives from std::invalid_argument so existing
/// "bad config throws invalid_argument" call sites keep working; carries
/// every issue found, not just the first.
class ConfigValidationError : public std::invalid_argument {
 public:
  explicit ConfigValidationError(std::vector<ConfigIssue> issues);
  const std::vector<ConfigIssue>& issues() const { return issues_; }

 private:
  std::vector<ConfigIssue> issues_;
};

struct SimulationConfig {
  machine::MachineConfig machine = machine::MachineConfig::Mira();
  storage::StorageConfig storage;
  sched::BatchScheduler::Options batch;
  /// I/O policy name (see AllPolicyNames()).
  std::string policy = "BASE_LINE";
  /// Stable-window fractions for utilization reporting.
  double warmup_fraction = 0.05;
  double cooldown_fraction = 0.05;
  /// Record per-cycle storage demand/grant samples (cheap; on by default).
  bool track_bandwidth = true;
  /// Also copy the raw per-cycle samples into the result (for timeline
  /// rendering); off by default to keep results small.
  bool keep_bandwidth_samples = false;
  /// Kill jobs at their requested walltime, as the production Cobalt does.
  /// Off by default: the paper lets congestion-stretched jobs run out, and
  /// its metrics assume every job completes.
  bool enforce_walltime = false;
  /// Optional burst-buffer tier (disabled by default; the paper's system
  /// has none — this is the architectural alternative its related work
  /// discusses). drain_gbps must stay below the storage BWmax.
  storage::BurstBufferConfig burst_buffer;
  /// Fault injection (disabled by default = the paper's fault-free model).
  /// Either an explicit plan or seeded generation parameters; killed jobs
  /// requeue with exponential backoff under `batch` retry options.
  faults::FaultOptions faults;
  /// Deadline/timeout semantics for direct PFS transfers (disabled by
  /// default — timeout_seconds 0 leaves every transfer unwatched, exactly
  /// the pre-timeout behavior).
  TransferRetryConfig transfer_retry;
  /// Application-checkpoint semantics (disabled by default — flush phases
  /// then behave as ordinary I/O and restart accounting is untouched).
  /// When enabled, I/O phases marked `is_flush` become deferrable flush
  /// sub-jobs (policies may park them up to `max_defer_seconds` under
  /// congestion) and the engine tracks per-job durability points so
  /// RestartMode::kRestartFromAppCheckpoint can requeue a failed job owing
  /// only the compute since its last fully drained flush.
  FlushDeferralConfig app_checkpoint;
  /// Prediction-driven scheduling (disabled by default — the scheduler then
  /// builds no predictions and results are bit-identical to a
  /// prediction-free build). In "learned" mode the engine feeds every
  /// normally completed job to the predictor; "oracle"/"null" bound the
  /// value of prediction from above/below. Consumed by the PREDICTIVE and
  /// PREDICTIVE_ADAPTIVE policies; other policies ignore the snapshots.
  PredictionConfig prediction;
  /// Replan cadence for planning policies (PERIODIC, PLAN_BF): window
  /// length, pattern slice length, optional churn-cycle trigger. Ignored by
  /// the greedy family, and excluded from the checkpoint config hash for
  /// greedy policies so their hashes are untouched by the defaults.
  PlanConfig plan;
  /// Run the from-scratch InvariantChecker alongside the simulation: every
  /// `invariant_check_every_events` events (and once after the queue
  /// drains) all incremental aggregates are recomputed and any mismatch
  /// throws InvariantViolation. Strictly read-only — enabling it never
  /// changes a run's records or digest. Off by default (the sweep is a
  /// full scan of the active sets).
  bool check_invariants = false;
  std::uint64_t invariant_check_every_events = 64;
  /// Observability settings (counters + tracer + time-series sampler).
  /// Drivers that honor `obs.enabled` construct an obs::Hub from these and
  /// pass it to RunSimulation; the engine itself only sees the Hub pointer.
  /// Callers passing a hub MUST keep it consistent with these settings —
  /// the checkpoint config hash covers `obs.enabled`/`sample_dt_seconds`
  /// because sampler ticks consume event ids.
  obs::Options obs;
  /// Periodic checkpointing + resume (disabled by default). Resume-equiv
  /// guarantee: a run restored from any checkpoint produces records
  /// bit-identical to the uninterrupted run.
  ckpt::Options checkpoint;
  /// Optional watchdog handle (see RunControl); null disables polling.
  RunControl* control = nullptr;

  /// Check every field and return the full list of problems (empty = valid).
  /// RunSimulation calls this first and throws ConfigValidationError when
  /// anything is wrong, so a bad config fails before any state is built.
  std::vector<ConfigIssue> Validate() const;

  class Builder;
};

/// Fluent construction with fail-fast validation: setters mirror the struct
/// fields, and Build() returns the config after Validate() passes — or
/// throws ConfigValidationError listing every issue. Start from scratch or
/// from an existing config:
///
///   auto config = core::SimulationConfig::Builder()
///                     .Machine(machine::MachineConfig::Small())
///                     .StorageBandwidth(64.0)
///                     .Policy("ADAPTIVE")
///                     .BurstBuffer({.capacity_gb = 2000, .drain_gbps = 25})
///                     .Build();
class SimulationConfig::Builder {
 public:
  Builder() = default;
  /// Seed the builder from an existing config (sweeps tweak one axis).
  explicit Builder(SimulationConfig base) : config_(std::move(base)) {}

  Builder& Machine(machine::MachineConfig machine) {
    config_.machine = machine;
    return *this;
  }
  Builder& StorageBandwidth(double bwmax_gbps) {
    config_.storage.max_bandwidth_gbps = bwmax_gbps;
    return *this;
  }
  Builder& Batch(sched::BatchScheduler::Options batch) {
    config_.batch = std::move(batch);
    return *this;
  }
  Builder& Policy(std::string name) {
    config_.policy = std::move(name);
    return *this;
  }
  Builder& WarmupCooldown(double warmup_fraction, double cooldown_fraction) {
    config_.warmup_fraction = warmup_fraction;
    config_.cooldown_fraction = cooldown_fraction;
    return *this;
  }
  Builder& EnforceWalltime(bool on) {
    config_.enforce_walltime = on;
    return *this;
  }
  Builder& BurstBuffer(storage::BurstBufferConfig bb) {
    config_.burst_buffer = bb;
    return *this;
  }
  Builder& Faults(faults::FaultOptions faults) {
    config_.faults = std::move(faults);
    return *this;
  }
  Builder& TransferRetry(TransferRetryConfig retry) {
    config_.transfer_retry = retry;
    return *this;
  }
  Builder& AppCheckpoint(FlushDeferralConfig app_checkpoint) {
    config_.app_checkpoint = app_checkpoint;
    return *this;
  }
  Builder& Prediction(PredictionConfig prediction) {
    config_.prediction = std::move(prediction);
    return *this;
  }
  Builder& Plan(PlanConfig plan) {
    config_.plan = plan;
    return *this;
  }
  Builder& CheckInvariants(bool on, std::uint64_t every_events = 64) {
    config_.check_invariants = on;
    config_.invariant_check_every_events = every_events;
    return *this;
  }
  Builder& Obs(obs::Options options) {
    config_.obs = options;
    return *this;
  }
  Builder& Checkpoint(ckpt::Options options) {
    config_.checkpoint = std::move(options);
    return *this;
  }

  /// Peek at the config without validating (for incremental assembly).
  const SimulationConfig& Peek() const { return config_; }

  /// Validate and return; throws ConfigValidationError on any issue.
  SimulationConfig Build() const;

 private:
  SimulationConfig config_;
};

struct SimulationResult {
  metrics::JobRecords records;
  metrics::Report report;
  /// Storage congestion statistics (empty when track_bandwidth is off).
  metrics::BandwidthSummary bandwidth;
  /// Raw per-cycle samples (only when keep_bandwidth_samples is set).
  std::vector<metrics::BandwidthSample> bandwidth_samples;
  /// Burst-buffer statistics (zero when the buffer is disabled).
  double bb_absorbed_gb = 0.0;
  std::uint64_t bb_absorbed_requests = 0;
  /// Requests that did not fit the buffer and fell back to the direct path.
  std::uint64_t bb_spilled_requests = 0;
  /// Volume drained to the PFS (GB) and the deepest backlog seen (GB).
  double bb_drained_gb = 0.0;
  double bb_peak_queued_gb = 0.0;
  /// Time-averaged occupancy fraction (0..1) over the run.
  double bb_mean_occupancy = 0.0;
  /// Fault accounting (empty when fault injection is disabled).
  metrics::FaultStats faults;
  /// Robustness accounting (all zero when timeouts/fault injection are
  /// disabled).
  std::uint64_t transfer_timeouts = 0;
  std::uint64_t transfer_retries = 0;
  std::uint64_t straggler_spills = 0;
  /// Absorbed requests re-flushed over the direct path after a lossy
  /// burst-buffer fault, and the staged volume those faults dropped.
  std::uint64_t bb_reflushed_requests = 0;
  double bb_lost_gb = 0.0;
  /// Checkpoint-flush scheduling (all zero when app_checkpoint is off):
  /// flushes parked by the policy, and parked flushes the scheduler
  /// force-released at their deferral deadline.
  std::uint64_t flush_deferrals = 0;
  std::uint64_t forced_flush_releases = 0;
  /// Full InvariantChecker sweeps executed (0 unless check_invariants).
  std::uint64_t invariant_checks = 0;
  /// Engine statistics.
  std::uint64_t io_requests = 0;
  std::uint64_t events_processed = 0;
  std::uint64_t io_scheduling_cycles = 0;
  std::string policy_name;
  /// Two-phase planning statistics (1 plan per process for greedy
  /// policies; the wall-clock cost is host-side measurement only).
  std::uint64_t plan_replans = 0;
  double plan_wall_seconds = 0.0;
  /// Checkpoints written during this run (periodic + emergency).
  std::uint64_t checkpoints_written = 0;
  /// Checkpoint file the run resumed from ("" for a fresh run).
  std::string resumed_from;
};

/// FNV-1a fingerprint over every configuration field that shapes the event
/// schedule, plus the workload fingerprint. Stamped into checkpoints; a
/// resume whose recomputed hash differs is rejected with
/// ckpt::ConfigMismatchError instead of silently diverging. Fields that
/// only affect post-run reporting (warmup/cooldown fractions,
/// keep_bandwidth_samples) are deliberately excluded.
std::uint64_t SimulationConfigHash(const SimulationConfig& config,
                                   const workload::Workload& jobs);

/// Run the workload to completion under `config`. The workload must be
/// valid (ValidateWorkload empty) and is not modified. Deterministic.
/// When `event_log` is non-null every scheduling event (submit, start, I/O
/// request/complete, end, kill) is appended to it in time order.
/// When `hub` is non-null the run feeds its counters, tracer, and sampler;
/// the schedule of decisions is unaffected (obs never mutates simulation
/// state), so records and report are identical with and without a hub —
/// only `events_processed` grows by the sampler's tick events.
/// When `config.checkpoint` enables saving, state snapshots land in the
/// checkpoint directory; `resume_from`/`resume_latest` restore one before
/// running (throws ckpt::CheckpointError subclasses on damaged or
/// mismatched files; resume_latest quietly starts fresh when the directory
/// holds no usable checkpoint).
SimulationResult RunSimulation(const SimulationConfig& config,
                               const workload::Workload& jobs,
                               EventLog* event_log = nullptr,
                               obs::Hub* hub = nullptr);

}  // namespace iosched::core
