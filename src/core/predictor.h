// I/O-behavior prediction from past traces (the paper's stated future work:
// "build a model to predict an application's I/O behavior based on its past
// I/O trace").
//
// The predictor learns, per project and per user, exponentially weighted
// moving averages of the I/O characteristics that drive scheduling: the
// I/O-time fraction, the number of I/O phases, and the application's
// effective I/O efficiency. Prediction falls back hierarchically:
// project -> user -> global, weighting each level by how much evidence it
// has. On Mira-like workloads projects have consistent I/O behaviour
// (checkpointing style is a property of the code base), which makes this
// learnable — our synthetic generator reproduces exactly that structure.
#pragma once

#include <cstddef>
#include <string>
#include <unordered_map>

#include "workload/workload.h"

namespace iosched::core {

struct IoPrediction {
  /// Predicted fraction of the uncongested runtime spent in I/O.
  double io_fraction = 0.0;
  /// Predicted number of I/O requests over the job's lifetime.
  double io_phases = 0.0;
  /// Predicted application I/O efficiency (fraction of link bandwidth).
  double io_efficiency = 1.0;
  /// Evidence count behind the strongest contributing level.
  std::size_t support = 0;
};

class IoBehaviorPredictor {
 public:
  struct Options {
    /// EWMA smoothing factor in (0, 1]: weight of the newest observation.
    double alpha = 0.25;
    /// Per-node link bandwidth used to derive I/O fractions.
    double node_bandwidth_gbps = 1536.0 / 49152.0;
    /// Observations at a level before it is trusted over its fallback.
    std::size_t min_support = 3;
  };

  explicit IoBehaviorPredictor(Options options);

  /// Learn from a completed (or historical) job.
  void Observe(const workload::Job& job);

  /// Predict the I/O behaviour of `job` from its provenance. Jobs from
  /// unseen projects/users fall back to the global average; with no history
  /// at all the prediction is the I/O-free default with support 0.
  IoPrediction Predict(const workload::Job& job) const;

  std::size_t observed_jobs() const { return global_.count; }
  std::size_t known_projects() const { return by_project_.size(); }
  std::size_t known_users() const { return by_user_.size(); }

 private:
  struct Ewma {
    double io_fraction = 0.0;
    double io_phases = 0.0;
    double io_efficiency = 1.0;
    std::size_t count = 0;

    void Update(double fraction, double phases, double efficiency,
                double alpha);
  };

  const Ewma* Lookup(const std::unordered_map<std::string, Ewma>& table,
                     const std::string& key) const;

  Options options_;
  Ewma global_;
  std::unordered_map<std::string, Ewma> by_project_;
  std::unordered_map<std::string, Ewma> by_user_;
};

/// Mean absolute error of the predictor's io_fraction over a workload
/// (evaluation helper used by tests, the example, and EXPERIMENTS.md).
double EvaluateFractionError(const IoBehaviorPredictor& predictor,
                             const workload::Workload& jobs,
                             double node_bandwidth_gbps);

}  // namespace iosched::core
