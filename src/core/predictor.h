// I/O-behavior prediction from past traces (the paper's stated future work:
// "build a model to predict an application's I/O behavior based on its past
// I/O trace").
//
// The predictor learns, per project and per user, exponentially weighted
// moving averages of the I/O characteristics that drive scheduling: the
// I/O-time fraction, the number of I/O phases, and the application's
// effective I/O efficiency. Prediction falls back hierarchically:
// project -> user -> global, weighting each level by how much evidence it
// has: a level with at least `min_support` observations fully overrides its
// fallback, and below that its weight ramps linearly with the observation
// count, so a project seen twice under min_support 4 contributes half of
// the estimate and the coarser levels the rest. On Mira-like workloads
// projects have consistent I/O behaviour (checkpointing style is a property
// of the code base), which makes this learnable — our synthetic generator
// reproduces exactly that structure.
#pragma once

#include <cstddef>
#include <string>
#include <unordered_map>

#include "workload/workload.h"

namespace iosched::ckpt {
class Reader;
class Writer;
}  // namespace iosched::ckpt

namespace iosched::core {

struct IoPrediction {
  /// Predicted fraction of the uncongested runtime spent in I/O.
  double io_fraction = 0.0;
  /// Predicted number of I/O requests over the job's lifetime.
  double io_phases = 0.0;
  /// Predicted application I/O efficiency (fraction of link bandwidth).
  double io_efficiency = 1.0;
  /// Evidence count behind the strongest contributing level. Zero means
  /// "no signal at all" (the predictor has never observed a job); consumers
  /// must treat that as absence of a prediction, not as an I/O-free job.
  std::size_t support = 0;
};

/// Prediction-driven scheduling knobs (SimulationConfig::prediction and the
/// `[prediction]` INI section / `--predict*` CLI flags).
struct PredictionConfig {
  /// Master switch: when false the scheduler builds no predictions, calls
  /// no predictor, and replay digests are bit-identical to a prediction-free
  /// build.
  bool enabled = false;
  /// "learned" (online EWMA predictor fed by completed jobs), "oracle"
  /// (exact per-job profile read from the trace; upper-bounds the value of
  /// prediction), or "null" (always no-signal; lower bound).
  std::string mode = "learned";
  /// EWMA smoothing factor for the learned mode, in (0, 1].
  double alpha = 0.25;
  /// Observations before a provenance level fully overrides its fallback.
  std::size_t min_support = 3;
  /// Look-ahead window: a burst predicted to start within this many seconds
  /// counts as imminent for headroom reservation / storm deferral.
  double horizon_seconds = 300.0;
};

class IoBehaviorPredictor {
 public:
  struct Options {
    /// EWMA smoothing factor in (0, 1]: weight of the newest observation.
    double alpha = 0.25;
    /// Per-node link bandwidth used to derive I/O fractions.
    double node_bandwidth_gbps = 1536.0 / 49152.0;
    /// Observations at a level before it fully overrides its fallback;
    /// below this the level's weight ramps linearly (count / min_support).
    std::size_t min_support = 3;
  };

  explicit IoBehaviorPredictor(Options options);

  /// Learn from a completed (or historical) job.
  void Observe(const workload::Job& job);

  /// Predict the I/O behaviour of `job` from its provenance. The estimate
  /// starts from the global average and blends in the user- then
  /// project-level EWMAs, each weighted by its evidence ramp
  /// min(1, count / min_support). Jobs from unseen projects/users therefore
  /// fall back to the global average; with no history at all the prediction
  /// is the default with support 0 ("no signal").
  IoPrediction Predict(const workload::Job& job) const;

  std::size_t observed_jobs() const { return global_.count; }
  std::size_t known_projects() const { return by_project_.size(); }
  std::size_t known_users() const { return by_user_.size(); }

  /// Checkpoint the learned state (EWMA tables, deterministic key order).
  /// Options are not serialized: they are config-derived, and the owner
  /// reconstructs the predictor from config before calling RestoreState.
  void SaveState(ckpt::Writer& writer) const;
  void RestoreState(ckpt::Reader& reader);

 private:
  struct Ewma {
    double io_fraction = 0.0;
    double io_phases = 0.0;
    double io_efficiency = 1.0;
    std::size_t count = 0;

    void Update(double fraction, double phases, double efficiency,
                double alpha);
  };

  const Ewma* Find(const std::unordered_map<std::string, Ewma>& table,
                   const std::string& key) const;

  Options options_;
  Ewma global_;
  std::unordered_map<std::string, Ewma> by_project_;
  std::unordered_map<std::string, Ewma> by_user_;
};

/// Mean absolute error of the predictor's io_fraction over a workload.
/// In-sample: the caller typically trained on (some of) `jobs`, so this
/// measures fit, not generalization — use EvaluatePrequential for an honest
/// forward-looking accuracy number.
double EvaluateFractionError(const IoBehaviorPredictor& predictor,
                             const workload::Workload& jobs,
                             double node_bandwidth_gbps);

struct PrequentialResult {
  /// Mean absolute io_fraction error over all evaluated jobs, including the
  /// cold ones (a cold prediction is the support-0 default).
  double mae_fraction = 0.0;
  /// Jobs evaluated (== jobs.size()).
  std::size_t evaluated = 0;
  /// Jobs predicted with support 0, i.e. before any history existed.
  std::size_t cold_jobs = 0;
};

/// Online (prequential) evaluation: walk `jobs` in order, predict each job
/// *before* observing it, then train on it. Mutates `predictor`. This is the
/// honest accuracy protocol — every prediction uses only earlier jobs.
PrequentialResult EvaluatePrequential(IoBehaviorPredictor& predictor,
                                      const workload::Workload& jobs,
                                      double node_bandwidth_gbps);

}  // namespace iosched::core
