#include "core/policy_factory.h"

#include <stdexcept>

#include "core/adaptive_policy.h"
#include "core/baseline_policy.h"
#include "core/conservative_policy.h"
#include "core/periodic_policy.h"
#include "core/plan_bf_policy.h"
#include "core/predictive_policy.h"
#include "util/strings.h"

namespace iosched::core {

const std::vector<std::string>& AllPolicyNames() {
  static const std::vector<std::string> kNames = {
      "BASE_LINE", "FCFS", "MAX_UTIL", "MIN_INST_SLD", "MIN_AGGR_SLD",
      "ADAPTIVE", "PREDICTIVE", "PREDICTIVE_ADAPTIVE"};
  return kNames;
}

const std::vector<std::string>& PlanningPolicyNames() {
  static const std::vector<std::string> kNames = {"PERIODIC", "PLAN_BF"};
  return kNames;
}

std::string PolicyNamesHelp() {
  std::string help;
  for (const std::string& name : AllPolicyNames()) {
    if (!help.empty()) help += "|";
    help += name;
  }
  for (const std::string& name : PlanningPolicyNames()) {
    help += "|";
    help += name;
  }
  return help;
}

namespace {
std::unique_ptr<IoPolicy> TryMakePolicy(const std::string& name) {
  std::string n = util::ToLower(name);
  if (n == "base_line" || n == "baseline") {
    return std::make_unique<BaselinePolicy>();
  }
  if (n == "base_line_maxmin" || n == "maxmin") {
    return std::make_unique<MaxMinPolicy>();
  }
  if (n == "fcfs" || n == "cons_fcfs" || n == "cons-fcfs") {
    return std::make_unique<ConservativePolicy>(ConservativeOrder::kFcfs);
  }
  if (n == "max_util" || n == "cons_maxutil" || n == "cons-maxutil") {
    return std::make_unique<ConservativePolicy>(ConservativeOrder::kMaxUtil);
  }
  if (n == "min_inst_sld" || n == "cons_mininstsld") {
    return std::make_unique<ConservativePolicy>(
        ConservativeOrder::kMinInstSld);
  }
  if (n == "min_aggr_sld" || n == "cons_minaggrsld") {
    return std::make_unique<ConservativePolicy>(
        ConservativeOrder::kMinAggrSld);
  }
  if (n == "adaptive") {
    return std::make_unique<AdaptivePolicy>();
  }
  if (n == "predictive" || n == "cons_predictive") {
    return std::make_unique<PredictivePolicy>();
  }
  if (n == "predictive_adaptive" || n == "predictive-adaptive") {
    return std::make_unique<AdaptivePolicy>(/*predictive=*/true);
  }
  if (n == "sjf") {
    return std::make_unique<ConservativePolicy>(
        ConservativeOrder::kShortestFirst);
  }
  if (n == "wsjf" || n == "smith") {
    return std::make_unique<ConservativePolicy>(ConservativeOrder::kSmithRule);
  }
  if (n == "periodic") {
    return std::make_unique<PeriodicPolicy>();
  }
  if (n == "plan_bf" || n == "plan-bf" || n == "planbf") {
    return std::make_unique<PlanBfPolicy>();
  }
  return nullptr;
}
}  // namespace

bool KnownPolicyName(const std::string& name) {
  return TryMakePolicy(name) != nullptr;
}

bool IsPlanningPolicyName(const std::string& name) {
  std::unique_ptr<IoPolicy> policy = TryMakePolicy(name);
  return policy != nullptr && policy->WantsPlanning();
}

std::unique_ptr<IoPolicy> MakePolicy(const std::string& name) {
  std::unique_ptr<IoPolicy> policy = TryMakePolicy(name);
  if (policy == nullptr) {
    throw std::invalid_argument("MakePolicy: unknown policy '" + name +
                                "' (valid: " + PolicyNamesHelp() + ")");
  }
  return policy;
}

}  // namespace iosched::core
