// PERIODIC policy — periodic I/O scheduling after Aupy, Gainaru & Le Fèvre,
// "Periodic I/O scheduling for super-computers" (the planning family's
// pattern-based member; see DESIGN.md §13).
//
// Plan computes a repeating per-job I/O pattern over the configured window:
// the active applications, in arrival order, each own one slice of
// `slice_seconds` in a round-robin rotation anchored at plan time. Execute
// is O(1) in the pattern — the slice owner at `now` is pure modular
// arithmetic off the anchor — and work-conserving: the owner is granted
// first (up to its full rate), then the residual channel is water-filled
// FCFS across the other transfers, so an application that cannot use its
// slice never idles the PFS.
//
// Replan triggers: the plan expires after `window_seconds`, and any change
// in the active-application set invalidates it immediately (the paper
// recomputes the pattern when the application mix changes). Between
// replans the framework wakes the scheduler at slice boundaries
// (NextPlanEvent), so ownership rotates even while no request arrives or
// completes.
//
// The pattern (anchor, slice, rotation) is cross-cycle state and is
// checkpointed; a resumed run continues the same rotation bit-exactly.
#pragma once

#include "core/io_policy.h"

namespace iosched::core {

class PeriodicPolicy final : public IoPolicy {
 public:
  const std::string& name() const override;

  IoPlan Plan(const PlanContext& ctx) override;
  std::vector<RateGrant> Execute(const PlanContext& ctx,
                                 const PlanCursor& cursor) override;
  bool PlanInvalidated(const PlanContext& ctx) const override;
  sim::SimTime NextPlanEvent(const PlanContext& ctx) const override;
  bool WantsPlanning() const override { return true; }

  void SaveState(ckpt::Writer& w) const override;
  void RestoreState(ckpt::Reader& r) override;

  /// Slice owner at `now` under the standing pattern, or 0 when the
  /// rotation is empty (exposed for tests).
  workload::JobId SliceOwner(sim::SimTime now) const;
  /// Rotation size (exposed for tests).
  std::size_t rotation_size() const { return rotation_.size(); }

  /// Fallback pattern geometry when the configured values are unusable.
  static constexpr double kDefaultWindowSeconds = 600.0;
  static constexpr double kDefaultSliceSeconds = 30.0;

 private:
  /// Pattern anchor: slice k covers [anchor + k*slice, anchor + (k+1)*slice).
  sim::SimTime anchor_ = 0.0;
  double slice_seconds_ = kDefaultSliceSeconds;
  sim::SimTime valid_until_ = 0.0;
  /// Slice owners in arrival order at plan time.
  std::vector<workload::JobId> rotation_;
  /// Sorted copy of rotation_ for the O(log k) membership probe.
  std::vector<workload::JobId> members_;
};

}  // namespace iosched::core
