// The I/O-aware scheduling policy interface (paper Section III-C).
//
// Whenever the set of in-flight I/O requests changes (a request arrives or
// completes — one "scheduling cycle"), the framework presents the policy
// with a view of every job that is performing or ready to perform I/O. The
// policy answers with a bandwidth grant per request: rate 0 suspends a job's
// I/O, a positive rate lets it transfer. Conservative policies keep the sum
// of grants within BWmax; the adaptive policy may admit an overflow job, in
// which case the admitted set fair-shares BWmax.
#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "ckpt/serializer.h"
#include "sim/time.h"
#include "workload/job.h"

namespace iosched::obs {
class Hub;
}  // namespace iosched::obs

namespace iosched::core {

/// The policy-visible state of one job's current I/O request.
struct IoJobView {
  workload::JobId id = 0;
  /// Partition size N_i.
  int nodes = 0;
  /// Full-speed demand b*N_i (GB/s).
  double full_rate_gbps = 0.0;
  /// Total volume of the current request, Vol_{i,k} (GB).
  double volume_gb = 0.0;
  /// Transferred so far within this request, W_{i,k} (GB).
  double transferred_gb = 0.0;
  /// Start time of the current request, t^{I/O}_{i,k}.
  sim::SimTime request_arrival = 0.0;
  /// Job start time t^{start}_i.
  sim::SimTime job_start = 0.0;
  /// Sum of compute durations of the job's completed compute phases
  /// (sum_{j<=k} T^{com}_{i,j}).
  double completed_compute_seconds = 0.0;
  /// Sum of *uncongested* I/O times of completed I/O phases
  /// (sum_{j<k} T^{I/O}_{i,j}).
  double completed_io_seconds = 0.0;

  double RemainingGb() const { return volume_gb - transferred_gb; }
};

/// One bandwidth grant.
struct RateGrant {
  workload::JobId id = 0;
  double rate_gbps = 0.0;
};

/// A checkpoint flush waiting on the deferral bench: ready to take the
/// direct PFS path but held back while the policy reports congestion. The
/// scheduler re-queries the policy every cycle and force-releases the flush
/// at `deadline` regardless of the answer.
struct FlushView {
  workload::JobId id = 0;
  /// Remaining flush volume (GB).
  double volume_gb = 0.0;
  /// Full-speed demand the flush would add if released (GB/s).
  double full_rate_gbps = 0.0;
  /// When the flush became ready.
  sim::SimTime submitted = 0.0;
  /// Forced-release time (submitted + the configured deferral bound).
  sim::SimTime deadline = 0.0;
};

/// Storage-tier snapshot handed to tier-aware policies once per scheduling
/// cycle, *before* Assign, when a burst buffer is attached. The
/// `max_bandwidth_gbps` that Assign receives already has the drain
/// reservation subtracted, so conservative policies cannot oversubscribe the
/// PFS drain by construction; this struct lets a policy additionally shape
/// its behavior on the backlog itself (e.g. ADAPTIVE defers over-admission
/// while the drain is far behind).
struct TierState {
  bool bb_enabled = false;
  double bb_capacity_gb = 0.0;
  /// Data staged and awaiting drain (GB).
  double bb_queued_gb = 0.0;
  /// Drain reservation active right now (GB/s).
  double drain_gbps = 0.0;
  /// Occupancy above the configured watermark.
  bool bb_congested = false;
  /// The buffer is down (absorbing nothing) — fault injection.
  bool bb_faulted = false;
  /// Drain-rate multiplier from fault injection (1.0 = nominal; below 1 the
  /// backlog clears slower than the capacity planning assumed).
  double drain_factor = 1.0;
};

/// One job's predicted next I/O burst, derived by the scheduler from the
/// configured predictor (learned / oracle / null).
struct PredictedBurst {
  workload::JobId id = 0;
  /// Seconds until the burst is expected to start (0 = due now).
  sim::SimTime eta_seconds = 0.0;
  /// Expected transfer rate once it starts (GB/s, efficiency-adjusted).
  double rate_gbps = 0.0;
  /// Expected volume of the burst (GB).
  double volume_gb = 0.0;
  /// Evidence behind the prediction (IoPrediction::support).
  std::size_t support = 0;
};

/// Prediction snapshot handed to prediction-aware policies once per
/// scheduling cycle, before Assign, when prediction is enabled. Jobs whose
/// prediction has support 0 ("no signal") are omitted entirely, so an
/// unseen-project job never biases a consumer toward treating it as
/// I/O-free. Like TierState, the policy-side copy is deliberately not
/// checkpointed: the scheduler re-delivers it each cycle before use.
struct PredictionState {
  bool enabled = false;
  /// Look-ahead window the scheduler used to classify bursts as imminent.
  double horizon_seconds = 0.0;
  /// Predicted bursts of currently computing jobs, sorted by job id.
  std::vector<PredictedBurst> upcoming;
  /// Aggregate demand rate of bursts due within the horizon (GB/s).
  double imminent_rate_gbps = 0.0;
  /// Aggregate volume of bursts due within the horizon (GB).
  double imminent_volume_gb = 0.0;
};

class IoPolicy {
 public:
  virtual ~IoPolicy() = default;

  /// Policy name as it appears in the paper's figures (e.g. "ADAPTIVE").
  virtual const std::string& name() const = 0;

  /// Produce a grant for *every* view in `active` (suspended jobs get 0).
  /// `active` is ordered by (request_arrival, id) — FCFS order. Must be
  /// deterministic.
  virtual std::vector<RateGrant> Assign(std::span<const IoJobView> active,
                                        double max_bandwidth_gbps,
                                        sim::SimTime now) = 0;

  /// Attach observability instruments (null detaches). Policies that count
  /// anything (knapsack solves, water-filling steps) override; the default
  /// ignores it, so observability stays optional for policy authors.
  virtual void BindObs(obs::Hub* hub) { (void)hub; }

  /// Tier snapshot, delivered once per scheduling cycle before Assign —
  /// only when the run has a burst-buffer tier. Policies that do not care
  /// about tiers ignore it (the default), so single-tier behavior is
  /// untouched.
  virtual void ObserveTiers(const TierState& tiers) { (void)tiers; }

  /// Prediction snapshot, delivered once per scheduling cycle before Assign
  /// — only when prediction is enabled. Policies that do not consume
  /// predictions ignore it (the default), so prediction-off behavior is
  /// untouched.
  virtual void ObservePrediction(const PredictionState& prediction) {
    (void)prediction;
  }

  /// Deferred checkpoint-flush backlog (total parked volume and count),
  /// delivered once per scheduling cycle before Assign — only when
  /// flush-aware scheduling is enabled. Tier-aware policies treat a deep
  /// backlog as congestion pressure; the default ignores it, so runs
  /// without checkpoint traffic are untouched.
  virtual void ObserveFlushBacklog(double pending_gb, std::size_t count) {
    (void)pending_gb;
    (void)count;
  }

  /// Should `flush` stay parked? Queried when a checkpoint flush becomes
  /// ready for the direct path and again every scheduling cycle while it
  /// waits; the scheduler releases it as soon as this returns false (and
  /// unconditionally at the deadline). `active_demand_gbps` is the summed
  /// full-rate demand of the in-flight direct transfers. Must be
  /// deterministic. The default never defers, so flush phases behave as
  /// ordinary I/O under policies that do not opt in.
  virtual bool DeferFlush(const FlushView& flush, double active_demand_gbps,
                          double max_bandwidth_gbps, sim::SimTime now) {
    (void)flush;
    (void)active_demand_gbps;
    (void)max_bandwidth_gbps;
    (void)now;
    return false;
  }

  /// Checkpoint hooks. Every shipped policy (BASE_LINE, the conservative
  /// family, ADAPTIVE) is stateless across scheduling cycles — per-call
  /// scratch is thread_local inside Assign and ADAPTIVE's fair-share dirty
  /// flag is cycle-local — so the defaults write/read nothing. A policy
  /// that grows cross-cycle state (e.g. a learned predictor) must override
  /// both, or resumed runs will diverge from uninterrupted ones.
  virtual void SaveState(ckpt::Writer& w) const { (void)w; }
  virtual void RestoreState(ckpt::Reader& r) { (void)r; }
};

/// Verify a grant vector covers exactly the active set with non-negative
/// rates, each at most the job's full rate; throws std::logic_error
/// otherwise. Used by the framework to catch buggy policies at the boundary.
void ValidateGrants(std::span<const IoJobView> active,
                    std::span<const RateGrant> grants);

}  // namespace iosched::core
