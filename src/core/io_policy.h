// The I/O-aware scheduling policy interface (paper Section III-C), as a
// two-phase plan/execute contract.
//
// Whenever the set of in-flight I/O requests changes (a request arrives or
// completes — one "scheduling cycle"), the framework asks the policy for a
// bandwidth grant per request: rate 0 suspends a job's I/O, a positive rate
// lets it transfer. The contract splits that decision in two:
//
//   Plan(PlanContext)            — build (or rebuild) a plan. Called on the
//                                  replan cadence (plan expiry, churn past
//                                  the configured threshold, or the policy
//                                  invalidating its own plan), NOT every
//                                  cycle, so planning may be expensive.
//   Execute(PlanContext, cursor) — the per-cycle dispatch: translate the
//                                  standing plan into grants for the active
//                                  set. Must be cheap and deterministic.
//
// Greedy policies (the paper's whole family) have no cross-cycle plan: they
// derive from GreedyAdapter below, whose Plan never expires and whose
// Execute delegates to the classic Assign(active, BWmax, now) body —
// grant-for-grant identical to the single-phase interface this replaced.
//
// Planning policies (PERIODIC per Aupy et al., "Periodic I/O scheduling for
// super-computers"; PLAN_BF per Kopanski & Rzadca, "Plan-based Job
// Scheduling for Supercomputers with Shared Burst Buffers") return a finite
// IoPlan::valid_until, publish future bandwidth/burst-buffer reservations
// for auditing, and may ask the framework for a wakeup at the next plan
// boundary (NextPlanEvent), so rates can change at slice edges even when no
// request arrives or completes there.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "ckpt/serializer.h"
#include "sim/time.h"
#include "workload/job.h"

namespace iosched::obs {
class Hub;
}  // namespace iosched::obs

namespace iosched::core {

/// The policy-visible state of one job's current I/O request.
struct IoJobView {
  workload::JobId id = 0;
  /// Partition size N_i.
  int nodes = 0;
  /// Full-speed demand b*N_i (GB/s).
  double full_rate_gbps = 0.0;
  /// Total volume of the current request, Vol_{i,k} (GB).
  double volume_gb = 0.0;
  /// Transferred so far within this request, W_{i,k} (GB).
  double transferred_gb = 0.0;
  /// Start time of the current request, t^{I/O}_{i,k}.
  sim::SimTime request_arrival = 0.0;
  /// Job start time t^{start}_i.
  sim::SimTime job_start = 0.0;
  /// Sum of compute durations of the job's completed compute phases
  /// (sum_{j<=k} T^{com}_{i,j}).
  double completed_compute_seconds = 0.0;
  /// Sum of *uncongested* I/O times of completed I/O phases
  /// (sum_{j<k} T^{I/O}_{i,j}).
  double completed_io_seconds = 0.0;

  double RemainingGb() const { return volume_gb - transferred_gb; }
};

/// One bandwidth grant.
struct RateGrant {
  workload::JobId id = 0;
  double rate_gbps = 0.0;
};

/// A checkpoint flush waiting on the deferral bench: ready to take the
/// direct PFS path but held back while the policy reports congestion. The
/// scheduler re-queries the policy every cycle and force-releases the flush
/// at `deadline` regardless of the answer.
struct FlushView {
  workload::JobId id = 0;
  /// Remaining flush volume (GB).
  double volume_gb = 0.0;
  /// Full-speed demand the flush would add if released (GB/s).
  double full_rate_gbps = 0.0;
  /// When the flush became ready.
  sim::SimTime submitted = 0.0;
  /// Forced-release time (submitted + the configured deferral bound).
  sim::SimTime deadline = 0.0;
};

/// Storage-tier snapshot refreshed once per scheduling cycle when a burst
/// buffer is attached (all-default otherwise). The `max_bandwidth_gbps`
/// that Execute receives already has the drain reservation subtracted, so
/// conservative policies cannot oversubscribe the PFS drain by
/// construction; this struct lets a policy additionally shape its behavior
/// on the backlog itself (e.g. ADAPTIVE defers over-admission while the
/// drain is far behind).
struct TierState {
  bool bb_enabled = false;
  double bb_capacity_gb = 0.0;
  /// Data staged and awaiting drain (GB).
  double bb_queued_gb = 0.0;
  /// Drain reservation active right now (GB/s).
  double drain_gbps = 0.0;
  /// Occupancy above the configured watermark.
  bool bb_congested = false;
  /// The buffer is down (absorbing nothing) — fault injection.
  bool bb_faulted = false;
  /// Drain-rate multiplier from fault injection (1.0 = nominal; below 1 the
  /// backlog clears slower than the capacity planning assumed).
  double drain_factor = 1.0;
};

/// One job's predicted next I/O burst, derived by the scheduler from the
/// configured predictor (learned / oracle / null).
struct PredictedBurst {
  workload::JobId id = 0;
  /// Seconds until the burst is expected to start (0 = due now).
  sim::SimTime eta_seconds = 0.0;
  /// Expected transfer rate once it starts (GB/s, efficiency-adjusted).
  double rate_gbps = 0.0;
  /// Expected volume of the burst (GB).
  double volume_gb = 0.0;
  /// Evidence behind the prediction (IoPrediction::support).
  std::size_t support = 0;
};

/// Prediction snapshot refreshed once per scheduling cycle when prediction
/// is enabled (all-default otherwise). Jobs whose prediction has support 0
/// ("no signal") are omitted entirely, so an unseen-project job never
/// biases a consumer toward treating it as I/O-free.
struct PredictionState {
  bool enabled = false;
  /// Look-ahead window the scheduler used to classify bursts as imminent.
  double horizon_seconds = 0.0;
  /// Predicted bursts of currently computing jobs, sorted by job id.
  std::vector<PredictedBurst> upcoming;
  /// Aggregate demand rate of bursts due within the horizon (GB/s).
  double imminent_rate_gbps = 0.0;
  /// Aggregate volume of bursts due within the horizon (GB).
  double imminent_volume_gb = 0.0;
};

/// Everything the framework observes for the policy, refreshed once per
/// scheduling cycle before Plan/Execute. This replaces the former
/// ObserveTiers/ObservePrediction/ObserveFlushBacklog hook sprawl: a policy
/// reads what it cares about and ignores the rest, and the defaults keep
/// feature-off runs indistinguishable from builds without the feature.
/// The instance handed out through PlanContext is owned by the scheduler
/// and stable for the policy's lifetime, so latching the pointer (as
/// GreedyAdapter does) is safe and matches the stale-snapshot semantics of
/// the old per-cycle observer delivery exactly.
struct CycleInputs {
  /// Tier snapshot (default = no burst buffer attached).
  TierState tiers;
  /// Prediction snapshot (default = prediction disabled).
  PredictionState prediction;
  /// Deferred checkpoint-flush backlog: total parked volume and count
  /// (0 unless flush-aware scheduling is enabled and flushes are parked).
  double flush_backlog_gb = 0.0;
  std::size_t flush_backlog_count = 0;
};

/// The framework-side context for one Plan or Execute call.
struct PlanContext {
  /// Active I/O requests, ordered by (request_arrival, id) — FCFS order.
  std::span<const IoJobView> active;
  /// Per-cycle observations; never null when called by the framework.
  const CycleInputs* inputs = nullptr;
  /// Bandwidth the policy may grant this cycle (BWmax minus the burst-
  /// buffer drain reservation).
  double max_bandwidth_gbps = 0.0;
  sim::SimTime now = 0.0;
  /// Configured planning-window length (PlanConfig::window_seconds).
  double window_seconds = 0.0;
  /// Configured slice length for pattern-building policies
  /// (PlanConfig::slice_seconds).
  double slice_seconds = 0.0;
};

/// What a Plan call produced, as far as the framework is concerned. The
/// plan's content stays inside the policy; the framework only needs to know
/// when to ask for a fresh one.
struct IoPlan {
  /// The framework replans at the first cycle at or after this time.
  /// Infinity (the default) = the plan never expires on its own — greedy
  /// policies re-decide every Execute and need no cadence.
  sim::SimTime valid_until = sim::kTimeInfinity;
  /// Items the plan covers (slices, reservations; informational).
  std::uint64_t planned_items = 0;
};

/// Where the framework stands within the current plan, handed to Execute.
struct PlanCursor {
  /// Plans built so far (monotone; 1 on the first Execute after a Plan).
  std::uint64_t sequence = 0;
  /// When the standing plan was computed.
  sim::SimTime planned_at = 0.0;
  /// Execute calls already dispatched against the standing plan.
  std::uint64_t cycles_in_plan = 0;
};

/// A future resource promise made by a planning policy: bandwidth on the
/// PFS channel and/or absorb capacity in the burst buffer over [start, end).
/// `job` 0 marks an infrastructure reservation (the projected drain).
/// Exposed through IoPolicy::Reservations() so the InvariantChecker can
/// audit the table (well-formed intervals, active rates within BWmax,
/// absorb promises within capacity) every sweep.
struct PlanReservation {
  workload::JobId job = 0;
  sim::SimTime start = 0.0;
  sim::SimTime end = 0.0;
  /// PFS bandwidth promised over the interval (GB/s).
  double rate_gbps = 0.0;
  /// Burst-buffer absorb capacity promised at `start` (GB).
  double bb_gb = 0.0;
};

class IoPolicy {
 public:
  virtual ~IoPolicy() = default;

  /// Policy name as it appears in the paper's figures (e.g. "ADAPTIVE").
  virtual const std::string& name() const = 0;

  /// Build a plan for the coming window. Called by the framework on the
  /// replan cadence (see file header); may be expensive. Must be
  /// deterministic in the context.
  virtual IoPlan Plan(const PlanContext& ctx) = 0;

  /// Per-cycle dispatch: produce a grant for *every* view in `ctx.active`
  /// (suspended jobs get 0) from the standing plan. Must be cheap and
  /// deterministic; Plan has always been called at least once before.
  virtual std::vector<RateGrant> Execute(const PlanContext& ctx,
                                         const PlanCursor& cursor) = 0;

  /// Does the standing plan still describe the world? Checked every cycle
  /// before Execute; returning true forces a replan even before
  /// valid_until (e.g. PERIODIC rebuilds when a job outside its rotation
  /// shows up). The default never invalidates.
  virtual bool PlanInvalidated(const PlanContext& ctx) const {
    (void)ctx;
    return false;
  }

  /// Next instant the plan wants a scheduling cycle even if no request
  /// arrives or completes (slice boundary, reservation edge, plan expiry).
  /// kTimeInfinity (the default) = no wakeup. Only honored for policies
  /// with WantsPlanning() — greedy policies never add simulator events, so
  /// their replay digests are untouched by the two-phase machinery.
  virtual sim::SimTime NextPlanEvent(const PlanContext& ctx) const {
    (void)ctx;
    return sim::kTimeInfinity;
  }

  /// True for policies with a real (finite-horizon) plan. Gates the plan
  /// review event, the plan checkpoint section, and the reservation-aware
  /// backfill hook.
  virtual bool WantsPlanning() const { return false; }

  /// The standing reservation table (empty for policies that promise
  /// nothing). Audited by the InvariantChecker; entries must be
  /// well-formed (see PlanReservation).
  virtual std::span<const PlanReservation> Reservations() const { return {}; }

  /// Reservation-aware backfill admission (PLAN_BF): may the batch
  /// scheduler backfill `job` at `now`? `projected_free_bb_gb` is the
  /// storage backend's projected free absorb capacity at start time
  /// (+infinity for single-tier runs). Consulted only after the geometric
  /// EASY probe passed, and only when WantsPlanning(); the default admits
  /// everything, leaving classic EASY untouched.
  virtual bool AdmitBackfill(const workload::Job& job, sim::SimTime now,
                             double projected_free_bb_gb) const {
    (void)job;
    (void)now;
    (void)projected_free_bb_gb;
    return true;
  }

  /// Attach observability instruments (null detaches). Policies that count
  /// anything (knapsack solves, water-filling steps) override; the default
  /// ignores it, so observability stays optional for policy authors.
  virtual void BindObs(obs::Hub* hub) { (void)hub; }

  /// Should `flush` stay parked? Queried when a checkpoint flush becomes
  /// ready for the direct path and again every scheduling cycle while it
  /// waits; the scheduler releases it as soon as this returns false (and
  /// unconditionally at the deadline). `active_demand_gbps` is the summed
  /// full-rate demand of the in-flight direct transfers. Must be
  /// deterministic. The default never defers, so flush phases behave as
  /// ordinary I/O under policies that do not opt in.
  virtual bool DeferFlush(const FlushView& flush, double active_demand_gbps,
                          double max_bandwidth_gbps, sim::SimTime now) {
    (void)flush;
    (void)active_demand_gbps;
    (void)max_bandwidth_gbps;
    (void)now;
    return false;
  }

  /// Checkpoint hooks for cross-cycle plan state. The framework invokes
  /// them (inside the scheduler's plan checkpoint section) only for
  /// policies with WantsPlanning(): a planning policy must serialize
  /// everything Execute reads — pattern anchors, rotations, reservation
  /// tables — or resumed runs diverge from uninterrupted ones. Greedy
  /// policies are stateless across cycles and keep the no-op defaults.
  virtual void SaveState(ckpt::Writer& w) const { (void)w; }
  virtual void RestoreState(ckpt::Reader& r) { (void)r; }
};

/// Adapter that carries the classic greedy policies through the two-phase
/// contract unchanged: Plan latches the cycle-inputs pointer and never
/// expires, Execute delegates to the single-phase Assign body. Because the
/// scheduler refreshes its CycleInputs at exactly the points the old
/// observer hooks fired, the tiers()/prediction()/flush-backlog accessors
/// see byte-identical snapshots to the members the policies used to copy —
/// the whole greedy family is grant-for-grant (and so digest-) identical
/// through this adapter.
class GreedyAdapter : public IoPolicy {
 public:
  IoPlan Plan(const PlanContext& ctx) override {
    inputs_ = ctx.inputs;
    return IoPlan{};  // never expires; greedy policies re-decide per cycle
  }

  std::vector<RateGrant> Execute(const PlanContext& ctx,
                                 const PlanCursor& cursor) override {
    (void)cursor;
    inputs_ = ctx.inputs;
    return Assign(ctx.active, ctx.max_bandwidth_gbps, ctx.now);
  }

  /// The classic single-phase decision: produce a grant for *every* view in
  /// `active` (suspended jobs get 0), FCFS-ordered input, deterministic.
  virtual std::vector<RateGrant> Assign(std::span<const IoJobView> active,
                                        double max_bandwidth_gbps,
                                        sim::SimTime now) = 0;

 protected:
  /// Current-cycle observations (all-default before the first Plan/Execute,
  /// matching the old observer-member defaults). Valid between cycles too —
  /// DeferFlush is queried from SubmitRequest and reads the previous
  /// cycle's snapshot, exactly as the copied members did.
  const CycleInputs& inputs() const {
    return inputs_ != nullptr ? *inputs_ : NoInputs();
  }
  const TierState& tiers() const { return inputs().tiers; }
  const PredictionState& prediction() const { return inputs().prediction; }
  double flush_backlog_gb() const { return inputs().flush_backlog_gb; }
  std::size_t flush_backlog_count() const {
    return inputs().flush_backlog_count;
  }

 private:
  static const CycleInputs& NoInputs();
  /// Owned by the scheduler, stable for the policy's lifetime.
  const CycleInputs* inputs_ = nullptr;
};

/// Verify a grant vector covers exactly the active set with non-negative
/// rates, each at most the job's full rate; throws std::logic_error
/// otherwise. Used by the framework to catch buggy policies at the boundary.
void ValidateGrants(std::span<const IoJobView> active,
                    std::span<const RateGrant> grants);

/// Verify a reservation table is well-formed against the current instant
/// and resource envelope: finite non-negative rates/volumes, end >= start,
/// the summed rate of reservations active at `now` within
/// `max_bandwidth_gbps` (+epsilon), and the summed absorb promises within
/// `bb_capacity_gb` when a buffer exists. Throws std::logic_error naming
/// the offending entry. Used by the InvariantChecker.
void ValidateReservations(std::span<const PlanReservation> reservations,
                          sim::SimTime now, double max_bandwidth_gbps,
                          double bb_capacity_gb);

}  // namespace iosched::core
