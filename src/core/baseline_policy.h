// BASE_LINE policy (paper Section IV-D): no coordination. Every job with a
// pending I/O request transfers. "In case of I/O congestion, the BASE_LINE
// policy will evenly distribute the I/O bandwidth among the concurrent
// applications": each of the K applications is granted min(demand, BWmax/K)
// — an even per-application split regardless of job size. The slice an
// application cannot use is NOT redistributed; a static even split (the
// paper's round-robin reference point) is not work-conserving, and that
// wasted bandwidth is a large part of what the I/O-aware policies recover.
//
// MaxMinPolicy ("BASE_LINE_MAXMIN") is our ablation variant: the
// work-conserving round-robin limit, where unused slack flows to the
// applications that can use it (max-min fairness). Comparing the two
// quantifies how much of the I/O-aware win comes from the baseline's
// non-work-conservation versus genuine coordination.
#pragma once

#include "core/io_policy.h"

namespace iosched::core {

class BaselinePolicy final : public GreedyAdapter {
 public:
  const std::string& name() const override;
  std::vector<RateGrant> Assign(std::span<const IoJobView> active,
                                double max_bandwidth_gbps,
                                sim::SimTime now) override;
};

/// Ablation: work-conserving even split (max-min fairness per application).
class MaxMinPolicy final : public GreedyAdapter {
 public:
  const std::string& name() const override;
  std::vector<RateGrant> Assign(std::span<const IoJobView> active,
                                double max_bandwidth_gbps,
                                sim::SimTime now) override;
};

}  // namespace iosched::core
