#include "core/invariants.h"

#include <cmath>
#include <string>
#include <unordered_set>
#include <vector>

#include "core/io_scheduler.h"
#include "util/units.h"

namespace iosched::core {

namespace {

/// Scale-aware closeness: the incremental aggregates accumulate one
/// round-off per mutation, so the tolerance grows with the magnitude of the
/// quantity (but a genuine mis-accounting — a forgotten transfer, an
/// un-unwound rate — is off by a whole term, orders of magnitude above
/// this).
bool Close(double incremental, double recomputed) {
  double scale = std::max({1.0, std::abs(incremental), std::abs(recomputed)});
  return std::abs(incremental - recomputed) <= 1e-6 * scale;
}

std::string Num(double v) { return std::to_string(v); }

}  // namespace

InvariantChecker::InvariantChecker(const machine::Machine& machine,
                                   const storage::StorageModel& storage,
                                   const sched::BatchScheduler& batch,
                                   const storage::BurstBuffer* burst_buffer)
    : machine_(machine),
      storage_(storage),
      batch_(batch),
      burst_buffer_(burst_buffer) {}

void InvariantChecker::Fail(sim::SimTime now, const std::string& what) const {
  throw InvariantViolation("invariant violated at t=" + Num(now) + ": " +
                           what);
}

void InvariantChecker::OnSchedEvent(const SchedEvent& event) {
  ++events_;
  auto it = lifecycle_.find(event.job);
  const bool known = it != lifecycle_.end();
  auto expect = [&](bool legal, const char* requirement) {
    // Jobs first seen mid-stream (resumed runs) initialize without
    // judgement; everything they do afterwards is checked normally.
    if (known && !legal) {
      Fail(event.time, std::string(ToString(event.kind)) + " for job " +
                           std::to_string(event.job) + " requires " +
                           requirement);
    }
  };
  JobPhase phase = known ? it->second : JobPhase::kDone;
  switch (event.kind) {
    case SchedEventKind::kSubmit:
      if (known) {
        Fail(event.time,
             "duplicate submit for job " + std::to_string(event.job));
      }
      lifecycle_[event.job] = JobPhase::kQueued;
      return;
    case SchedEventKind::kStart:
      expect(phase == JobPhase::kQueued, "a queued job");
      lifecycle_[event.job] = JobPhase::kRunning;
      return;
    case SchedEventKind::kIoRequest:
      expect(phase == JobPhase::kRunning, "a running job outside I/O");
      lifecycle_[event.job] = JobPhase::kRunningIo;
      return;
    case SchedEventKind::kIoComplete:
      expect(phase == JobPhase::kRunningIo, "a job blocked in I/O");
      lifecycle_[event.job] = JobPhase::kRunning;
      return;
    case SchedEventKind::kEnd:
      // A job ends only from a compute phase: the final I/O completion is
      // logged before the phase walk discovers the end.
      expect(phase == JobPhase::kRunning, "a running job outside I/O");
      lifecycle_[event.job] = JobPhase::kDone;
      return;
    case SchedEventKind::kKill:
    case SchedEventKind::kFaultKill:
      // Kills interrupt jobs anywhere, including mid-I/O.
      expect(phase == JobPhase::kRunning || phase == JobPhase::kRunningIo,
             "a running job");
      lifecycle_[event.job] = event.kind == SchedEventKind::kKill
                                  ? JobPhase::kDone
                                  : JobPhase::kFaultKilled;
      return;
    case SchedEventKind::kRequeue:
      expect(phase == JobPhase::kFaultKilled, "a fault-killed job");
      lifecycle_[event.job] = JobPhase::kQueued;
      return;
    case SchedEventKind::kAbandon:
      expect(phase == JobPhase::kFaultKilled, "a fault-killed job");
      lifecycle_[event.job] = JobPhase::kDone;
      return;
  }
}

void InvariantChecker::CheckNow(sim::SimTime now) {
  if (now < last_check_time_ - util::kTimeEpsilon) {
    Fail(now, "time went backwards (previous check at t=" +
                  Num(last_check_time_) + ")");
  }
  last_check_time_ = now;
  CheckStorage();
  CheckMachine();
  if (burst_buffer_ != nullptr) CheckBurstBuffer(now);
  CheckLifecycle();
  if (io_scheduler_ != nullptr) {
    CheckDeferredFlushes();
    CheckPlanReservations();
  }
  ++checks_;
}

void InvariantChecker::CheckStorage() const {
  sim::SimTime now = storage_.last_update();
  double sum_rate = 0.0;
  double sum_demand = 0.0;
  long long sum_nodes = 0;
  for (const storage::Transfer* t : storage_.ActiveByArrival()) {
    if (t->nodes <= 0) {
      Fail(now, "transfer of job " + std::to_string(t->job_id) +
                    " has non-positive node count");
    }
    if (t->full_rate_gbps <= 0) {
      Fail(now, "transfer of job " + std::to_string(t->job_id) +
                    " has non-positive full rate");
    }
    if (t->rate_gbps < 0 ||
        t->rate_gbps > util::MaxGrantableRate(t->full_rate_gbps)) {
      Fail(now, "transfer of job " + std::to_string(t->job_id) +
                    " granted " + Num(t->rate_gbps) + " GB/s outside [0, " +
                    Num(t->full_rate_gbps) + "]");
    }
    if (t->efficiency <= 0 || t->efficiency > 1.0) {
      Fail(now, "transfer of job " + std::to_string(t->job_id) +
                    " has efficiency " + Num(t->efficiency) +
                    " outside (0, 1]");
    }
    if (t->transferred_gb < -util::kVolumeEpsilon ||
        t->transferred_gb >
            t->volume_gb * (1.0 + util::kCapacityRelSlack) + 1e-6) {
      Fail(now, "transfer of job " + std::to_string(t->job_id) + " moved " +
                    Num(t->transferred_gb) + " of " + Num(t->volume_gb) +
                    " GB");
    }
    sum_rate += t->rate_gbps;
    sum_demand += t->full_rate_gbps;
    sum_nodes += t->nodes;
  }
  if (!Close(storage_.TotalAssignedRate(), sum_rate)) {
    Fail(now, "incremental assigned-rate sum " +
                  Num(storage_.TotalAssignedRate()) +
                  " != recomputed " + Num(sum_rate));
  }
  if (!Close(storage_.TotalDemand(), sum_demand)) {
    Fail(now, "incremental demand sum " + Num(storage_.TotalDemand()) +
                  " != recomputed " + Num(sum_demand));
  }
  if (storage_.TotalActiveNodes() != sum_nodes) {
    Fail(now, "incremental active-node sum " +
                  std::to_string(storage_.TotalActiveNodes()) +
                  " != recomputed " + std::to_string(sum_nodes));
  }
  if (storage_.config().enforce_capacity &&
      sum_rate > storage_.config().max_bandwidth_gbps *
                     (1.0 + util::kCapacityRelSlack)) {
    Fail(now, "granted rates sum to " + Num(sum_rate) + " GB/s above BWmax " +
                  Num(storage_.config().max_bandwidth_gbps));
  }
}

void InvariantChecker::CheckMachine() const {
  sim::SimTime now = last_check_time_;
  const int total_midplanes = machine_.config().total_midplanes();
  std::vector<bool> occupied(static_cast<std::size_t>(total_midplanes),
                             false);
  int busy_nodes = 0;
  int busy_midplanes = 0;
  for (const auto& [id, running] : batch_.running()) {
    const machine::Partition& p = running.partition;
    if (!p.valid() || p.first_midplane < 0 ||
        p.first_midplane + p.midplane_count > total_midplanes) {
      Fail(now, "job " + std::to_string(id) + " holds an invalid partition");
    }
    for (int m = p.first_midplane; m < p.first_midplane + p.midplane_count;
         ++m) {
      if (occupied[static_cast<std::size_t>(m)]) {
        Fail(now, "midplane " + std::to_string(m) +
                      " allocated to two jobs (job " + std::to_string(id) +
                      " among them)");
      }
      occupied[static_cast<std::size_t>(m)] = true;
    }
    busy_nodes += p.nodes;
    busy_midplanes += p.midplane_count;
  }
  if (machine_.occupancy() != occupied) {
    Fail(now,
         "machine occupancy bitmap disagrees with the running-job "
         "partitions");
  }
  if (machine_.busy_nodes() != busy_nodes) {
    Fail(now, "machine busy_nodes " + std::to_string(machine_.busy_nodes()) +
                  " != recomputed " + std::to_string(busy_nodes));
  }
  if (machine_.busy_midplanes() != busy_midplanes) {
    Fail(now, "machine busy_midplanes " +
                  std::to_string(machine_.busy_midplanes()) +
                  " != recomputed " + std::to_string(busy_midplanes));
  }
}

void InvariantChecker::CheckBurstBuffer(sim::SimTime now) {
  const storage::BurstBuffer& bb = *burst_buffer_;
  if (bb.queued_gb() < -util::kVolumeEpsilon) {
    Fail(now, "burst-buffer backlog is negative: " + Num(bb.queued_gb()));
  }
  if (bb.queued_gb() >
      bb.config().capacity_gb * (1.0 + util::kCapacityRelSlack) + 1e-6) {
    Fail(now, "burst-buffer backlog " + Num(bb.queued_gb()) +
                  " GB exceeds capacity " + Num(bb.config().capacity_gb));
  }
  if (!Close(bb.queued_gb(), bb.FifoTotalGb())) {
    Fail(now, "burst-buffer backlog " + Num(bb.queued_gb()) +
                  " != sum of FIFO segments " + Num(bb.FifoTotalGb()));
  }
  if (!Close(bb.queued_gb(), bb.UsageTotalGb())) {
    Fail(now, "burst-buffer backlog " + Num(bb.queued_gb()) +
                  " != sum of per-job usage " + Num(bb.UsageTotalGb()));
  }
  // Conservation: everything absorbed either drained, is still queued, or
  // was dropped by a lossy fault.
  double accounted =
      bb.total_drained_gb() + bb.queued_gb() + bb.total_lost_gb();
  if (!Close(bb.total_absorbed_gb(), accounted)) {
    Fail(now, "burst-buffer conservation: absorbed " +
                  Num(bb.total_absorbed_gb()) + " GB != drained " +
                  Num(bb.total_drained_gb()) + " + queued " +
                  Num(bb.queued_gb()) + " + lost " + Num(bb.total_lost_gb()));
  }
  if (bb.peak_queued_gb() <
      bb.queued_gb() - 1e-6 * std::max(1.0, bb.queued_gb())) {
    Fail(now, "burst-buffer peak backlog " + Num(bb.peak_queued_gb()) +
                  " below the current backlog " + Num(bb.queued_gb()));
  }
  if (bb.occupancy_integral_gbs() <
      last_occupancy_integral_ -
          1e-6 * std::max(1.0, last_occupancy_integral_)) {
    Fail(now, "burst-buffer occupancy integral went backwards: " +
                  Num(bb.occupancy_integral_gbs()) + " after " +
                  Num(last_occupancy_integral_));
  }
  last_occupancy_integral_ = bb.occupancy_integral_gbs();
  if (bb.drain_factor() <= 0 || bb.drain_factor() > 1.0) {
    Fail(now, "burst-buffer drain factor " + Num(bb.drain_factor()) +
                  " outside (0, 1]");
  }
}

void InvariantChecker::CheckDeferredFlushes() const {
  sim::SimTime now = last_check_time_;
  const IoScheduler& io = *io_scheduler_;
  std::unordered_set<workload::JobId> transferring;
  for (const storage::Transfer* t : storage_.ActiveByArrival()) {
    transferring.insert(t->job_id);
  }
  double sum_gb = 0.0;
  io.ForEachDeferredFlush([&](workload::JobId id, double volume_gb,
                              sim::SimTime submit_time,
                              sim::SimTime deadline) {
    if (volume_gb <= 0) {
      Fail(now, "deferred flush of job " + std::to_string(id) +
                    " has non-positive volume " + Num(volume_gb));
    }
    if (deadline < submit_time - util::kTimeEpsilon) {
      Fail(now, "deferred flush of job " + std::to_string(id) +
                    " has release deadline " + Num(deadline) +
                    " before its submission at " + Num(submit_time));
    }
    // A parked flush means the job's I/O request never reached the storage
    // model: a job both parked and transferring is double-submitted.
    if (transferring.count(id) != 0) {
      Fail(now, "job " + std::to_string(id) +
                    " holds a deferred flush and an active transfer");
    }
    if (batch_.running().count(id) == 0) {
      Fail(now, "job " + std::to_string(id) +
                    " holds a deferred flush but is not running");
    }
    sum_gb += volume_gb;
  });
  if (!Close(io.deferred_flush_gb(), sum_gb)) {
    Fail(now, "incremental deferred-flush backlog " +
                  Num(io.deferred_flush_gb()) + " != recomputed " +
                  Num(sum_gb));
  }
}

void InvariantChecker::CheckPlanReservations() const {
  sim::SimTime now = last_check_time_;
  std::span<const PlanReservation> table =
      io_scheduler_->policy().Reservations();
  if (table.empty()) return;
  double bb_capacity = burst_buffer_ != nullptr
                           ? burst_buffer_->config().capacity_gb
                           : 0.0;
  try {
    ValidateReservations(table, now, storage_.config().max_bandwidth_gbps,
                         bb_capacity);
  } catch (const std::logic_error& e) {
    Fail(now, std::string("plan reservation table invalid: ") + e.what());
  }
}

void InvariantChecker::CheckLifecycle() const {
  sim::SimTime now = last_check_time_;
  // Every job the batch scheduler is running must be in a running phase per
  // the event stream, and with complete history the counts must agree
  // exactly.
  std::size_t tracked_running = 0;
  std::size_t tracked_queued = 0;
  for (const auto& [id, phase] : lifecycle_) {
    if (phase == JobPhase::kRunning || phase == JobPhase::kRunningIo) {
      ++tracked_running;
      if (batch_.running().count(id) == 0) {
        Fail(now, "job " + std::to_string(id) +
                      " is running per the event stream but unknown to the "
                      "batch scheduler");
      }
    } else if (phase == JobPhase::kQueued) {
      ++tracked_queued;
    } else if (batch_.running().count(id) != 0) {
      Fail(now, "job " + std::to_string(id) +
                    " holds a partition but is not running per the event "
                    "stream");
    }
  }
  if (complete_history_) {
    if (tracked_running != batch_.running_count()) {
      Fail(now, "event stream counts " + std::to_string(tracked_running) +
                    " running jobs, batch scheduler has " +
                    std::to_string(batch_.running_count()));
    }
    if (tracked_queued != batch_.queue_size()) {
      Fail(now, "event stream counts " + std::to_string(tracked_queued) +
                    " queued jobs, batch scheduler has " +
                    std::to_string(batch_.queue_size()));
    }
  }
}

}  // namespace iosched::core
