#include "core/io_scheduler.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <stdexcept>
#include <string>
#include <vector>

#include "obs/hub.h"
#include "util/units.h"

namespace iosched::core {

IoScheduler::IoScheduler(sim::Simulator& simulator,
                         storage::StorageModel& storage,
                         double node_bandwidth_gbps,
                         std::unique_ptr<IoPolicy> policy,
                         CompletionCallback on_complete)
    : simulator_(simulator),
      storage_(storage),
      node_bandwidth_gbps_(node_bandwidth_gbps),
      policy_(std::move(policy)),
      on_complete_(std::move(on_complete)) {
  if (node_bandwidth_gbps_ <= 0) {
    throw std::invalid_argument("IoScheduler: non-positive node bandwidth");
  }
  if (!policy_) throw std::invalid_argument("IoScheduler: null policy");
  if (!on_complete_) throw std::invalid_argument("IoScheduler: null callback");
  policy_is_planning_ = policy_->WantsPlanning();
  storage_.SetBandwidthChangeListener(
      [this](double new_bwmax, sim::SimTime now) {
        OnBandwidthChange(new_bwmax, now);
      });
}

IoScheduler::~IoScheduler() {
  storage_.SetBandwidthChangeListener(nullptr);
}

namespace {
/// Lookup with the scheduler's historical error message (the map's .at()
/// used to serve this role).
JobContext& MustFind(JobStore& jobs, workload::JobId id) {
  JobContext* ctx = jobs.Find(id);
  if (ctx == nullptr) {
    throw std::logic_error("IoScheduler: job " + std::to_string(id) +
                           " not registered");
  }
  return *ctx;
}
}  // namespace

void IoScheduler::RegisterJob(const workload::Job& job,
                              sim::SimTime start_time) {
  jobs_.Add(job.id, JobContext{&job, start_time, 0.0, 0.0, start_time});
}

void IoScheduler::UnregisterJob(workload::JobId id) {
  if (storage_.Has(id)) {
    throw std::logic_error("IoScheduler: job " + std::to_string(id) +
                           " still has an in-flight transfer");
  }
  if (pending_retries_.count(id) != 0) {
    throw std::logic_error("IoScheduler: job " + std::to_string(id) +
                           " still has a pending transfer retry");
  }
  if (deferred_flushes_.count(id) != 0) {
    throw std::logic_error("IoScheduler: job " + std::to_string(id) +
                           " still has a deferred flush");
  }
  jobs_.Remove(id);
}

void IoScheduler::AddCompletedCompute(workload::JobId id, double seconds) {
  MustFind(jobs_, id).completed_compute_seconds += seconds;
}

void IoScheduler::SubmitRequest(workload::JobId id, double volume_gb,
                                sim::SimTime now, bool is_flush) {
  const JobContext& ctx = MustFind(jobs_, id);
  if (volume_gb <= 0) {
    throw std::invalid_argument("IoScheduler: non-positive volume");
  }
  ++submitted_requests_;
  if (hub_ != nullptr) {
    hub_->io_requests->Inc();
    hub_->io_request_gb->Observe(volume_gb);
  }
  const workload::Job& job = *ctx.job;
  double full_rate = job.FullIoRate(node_bandwidth_gbps_);
  if (burst_buffer_ != nullptr) {
    burst_buffer_->AdvanceTo(now);
    if (burst_buffer_->CanAbsorb(id, volume_gb)) {
      // Absorbed: the write lands in the buffer at the absorb-tier rate
      // (the link rate unless `absorb_gbps` caps it), never touching the
      // policy-managed storage path. The drain it triggers reduces the
      // policy's usable bandwidth, so run a cycle. A straggling absorb
      // stretches the duration; when the stretch would blow the transfer
      // deadline the request spills to the direct path instead, where the
      // timeout/retry machinery can act on it.
      double factor = straggler_draw_ ? straggler_draw_() : 1.0;
      double duration = volume_gb / burst_buffer_->AbsorbRate(full_rate);
      if (factor < 1.0) duration /= factor;
      if (retry_config_.enabled() && factor < 1.0 &&
          duration > retry_config_.timeout_seconds) {
        ++straggler_spills_;
        burst_buffer_->RecordSpill();
        if (hub_ != nullptr) {
          hub_->io_straggler_spills->Inc();
          hub_->bb_spilled_requests->Inc();
        }
        BeginDirectTransfer(id, volume_gb, now, /*retries=*/0);
        Reschedule(now);
        return;
      }
      burst_buffer_->Absorb(id, volume_gb);
      if (hub_ != nullptr) hub_->bb_absorbed_requests->Inc();
      sim::EventId event =
          simulator_.ScheduleAfter(duration, AbsorbedAction(id, duration));
      // Durability threshold: the FIFO drain must move everything queued up
      // to and including this request before its bytes are on the PFS.
      double durable_gb =
          burst_buffer_->total_drained_gb() + burst_buffer_->queued_gb();
      absorbed_events_[id] =
          AbsorbedEvent{event, now + duration, duration, volume_gb,
                        durable_gb};
      Reschedule(now);
      return;
    }
    // Spill: no room (or over quota or faulted) — the request takes the
    // direct path.
    burst_buffer_->RecordSpill();
    if (hub_ != nullptr) hub_->bb_spilled_requests->Inc();
  }
  if (flush_config_.enabled && is_flush &&
      flush_config_.max_defer_seconds > 0) {
    // A checkpoint flush headed for the direct path is deferrable: ask the
    // policy whether to bench it while the channel is congested.
    double usable = storage_.config().max_bandwidth_gbps;
    if (burst_buffer_ != nullptr) {
      usable = std::max(0.0, usable - burst_buffer_->CurrentDrainRate());
    }
    FlushView view{id, volume_gb, full_rate, now,
                   now + flush_config_.max_defer_seconds};
    if (policy_->DeferFlush(view, storage_.TotalDemand(), usable, now)) {
      ParkFlush(id, volume_gb, now);
      Reschedule(now);
      return;
    }
  }
  BeginDirectTransfer(id, volume_gb, now, /*retries=*/0);
  Reschedule(now);
}

void IoScheduler::ParkFlush(workload::JobId id, double volume_gb,
                            sim::SimTime now) {
  sim::SimTime deadline = now + flush_config_.max_defer_seconds;
  sim::EventId event = simulator_.ScheduleAt(deadline, FlushReleaseAction(id));
  deferred_flushes_[id] = DeferredFlush{event, deadline, now, volume_gb};
  deferred_backlog_gb_ += volume_gb;
  ++flush_deferrals_;
  if (hub_ != nullptr) hub_->tracer().Instant(
      obs::kStorageTrack, "flush_deferred", now, volume_gb);
}

std::function<void()> IoScheduler::FlushReleaseAction(workload::JobId id) {
  return [this, id] {
    auto it = deferred_flushes_.find(id);
    if (it == deferred_flushes_.end()) return;
    double volume = it->second.volume_gb;
    deferred_backlog_gb_ -= volume;
    deferred_flushes_.erase(it);
    if (deferred_flushes_.empty()) deferred_backlog_gb_ = 0.0;
    ++forced_flush_releases_;
    sim::SimTime now = simulator_.Now();
    BeginDirectTransfer(id, volume, now, /*retries=*/0);
    Reschedule(now);
  };
}

void IoScheduler::ReleaseDeferredFlushes(sim::SimTime now) {
  if (releasing_flushes_) return;
  releasing_flushes_ = true;
  std::size_t released = 0;
  for (;;) {
    // Pick one release per pass: each release changes the demand the
    // policy's answer depends on, so re-query after every start.
    double usable = storage_.config().max_bandwidth_gbps;
    if (burst_buffer_ != nullptr) {
      usable = std::max(0.0, usable - burst_buffer_->CurrentDrainRate());
    }
    double demand = storage_.TotalDemand();
    workload::JobId release_id = 0;
    double release_volume = 0.0;
    bool forced = false;
    bool found = false;
    for (const auto& [id, df] : deferred_flushes_) {
      if (now >= df.fire_time - 1e-9) {
        // Past the deadline at this very timestamp; don't wait for the
        // forced-release event to drain from the queue.
        release_id = id;
        release_volume = df.volume_gb;
        forced = true;
        found = true;
        break;
      }
      const JobContext& ctx = MustFind(jobs_, id);
      FlushView view{id, df.volume_gb,
                     ctx.job->FullIoRate(node_bandwidth_gbps_),
                     df.submit_time, df.fire_time};
      if (!policy_->DeferFlush(view, demand, usable, now)) {
        release_id = id;
        release_volume = df.volume_gb;
        found = true;
        break;
      }
    }
    if (!found) break;
    auto it = deferred_flushes_.find(release_id);
    simulator_.Cancel(it->second.event);
    deferred_backlog_gb_ -= it->second.volume_gb;
    deferred_flushes_.erase(it);
    if (deferred_flushes_.empty()) deferred_backlog_gb_ = 0.0;
    if (forced) ++forced_flush_releases_;
    BeginDirectTransfer(release_id, release_volume, now, /*retries=*/0);
    ++released;
  }
  if (released > 0) {
    // Grant rates to the newly released transfers (the sweep guard keeps
    // this nested cycle from re-entering the sweep).
    Reschedule(now);
  }
  releasing_flushes_ = false;
}

void IoScheduler::ConfigureFlushScheduling(const FlushDeferralConfig& config) {
  if (config.max_defer_seconds < 0) {
    throw std::invalid_argument(
        "IoScheduler::ConfigureFlushScheduling: max_defer_seconds must be "
        ">= 0");
  }
  flush_config_ = config;
}

double IoScheduler::TotalDrainedGb(sim::SimTime now) {
  if (burst_buffer_ == nullptr) return 0.0;
  burst_buffer_->AdvanceTo(now);
  return burst_buffer_->total_drained_gb();
}

void IoScheduler::BeginDirectTransfer(workload::JobId id, double volume_gb,
                                      sim::SimTime now, int retries) {
  std::uint32_t slot = jobs_.SlotOf(id);
  if (slot == JobStore::kInvalidSlot) {
    throw std::logic_error("IoScheduler: job " + std::to_string(id) +
                           " not registered");
  }
  const workload::Job& job = *jobs_.At(slot).job;
  double full_rate = job.FullIoRate(node_bandwidth_gbps_);
  double factor = straggler_draw_ ? straggler_draw_() : 1.0;
  storage_.Begin(id, job.nodes, full_rate, volume_gb, now, factor);
  // Cache the job-context slot on the transfer: the slot is stable while
  // the job stays registered, so every later view build is hash-free.
  storage_.SetUserSlot(id, slot);
  if (retry_config_.enabled() && retries < retry_config_.max_retries) {
    sim::EventId event = simulator_.ScheduleAfter(
        retry_config_.timeout_seconds, DeadlineAction(id));
    deadline_events_[id] = DeadlineEvent{
        event, now + retry_config_.timeout_seconds, retries};
  }
}

void IoScheduler::ForceReschedule(sim::SimTime now) {
  if (hub_ != nullptr) hub_->forced_reschedules->Inc();
  Reschedule(now);
}

void IoScheduler::OnBandwidthChange(double new_bwmax_gbps, sim::SimTime now) {
  if (hub_ != nullptr) {
    hub_->tracer().Instant(obs::kStorageTrack, "bwmax_change", now,
                           new_bwmax_gbps);
    hub_->forced_reschedules->Inc();
  }
  // A standing plan was budgeted against the old resource envelope; its
  // promises may exceed the degraded BWmax (which the reservation audit
  // would rightly flag). Replan inside this very cycle.
  if (policy_is_planning_) has_plan_ = false;
  Reschedule(now);
}

void IoScheduler::SetObs(obs::Hub* hub) {
  hub_ = hub;
  policy_->BindObs(hub);
}

void IoScheduler::FlushObs(sim::SimTime now) {
  if (hub_ != nullptr && congested_) {
    hub_->tracer().Span(obs::kStorageTrack, "congestion", congestion_start_,
                        now);
  }
  congested_ = false;
  if (hub_ != nullptr && bb_congested_) {
    hub_->tracer().Span(obs::kStorageTrack, "bb_congestion",
                        bb_congestion_start_, now);
  }
  bb_congested_ = false;
}

void IoScheduler::AbortRequest(workload::JobId id, sim::SimTime now) {
  auto deferred = deferred_flushes_.find(id);
  if (deferred != deferred_flushes_.end()) {
    // The flush was parked on the deferral bench; it holds no transfer.
    simulator_.Cancel(deferred->second.event);
    deferred_backlog_gb_ -= deferred->second.volume_gb;
    deferred_flushes_.erase(deferred);
    if (deferred_flushes_.empty()) deferred_backlog_gb_ = 0.0;
    return;
  }
  auto absorbed = absorbed_events_.find(id);
  if (absorbed != absorbed_events_.end()) {
    // The request was absorbed by the burst buffer; its completion event
    // must not fire after the job is gone.
    simulator_.Cancel(absorbed->second.event);
    absorbed_events_.erase(absorbed);
    return;
  }
  auto retry = pending_retries_.find(id);
  if (retry != pending_retries_.end()) {
    // The job was waiting out a retry backoff; it holds no transfer.
    simulator_.Cancel(retry->second.event);
    pending_retries_.erase(retry);
    return;
  }
  auto deadline = deadline_events_.find(id);
  if (deadline != deadline_events_.end()) {
    simulator_.Cancel(deadline->second.event);
    deadline_events_.erase(deadline);
  }
  if (!storage_.Has(id)) return;
  storage_.AdvanceTo(now);
  storage_.Abort(id);
  Reschedule(now);
}

std::vector<IoJobView> IoScheduler::BuildViews(sim::SimTime now) const {
  (void)now;
  std::vector<IoJobView> views;
  FillViews(views);
  return views;
}

void IoScheduler::FillViews(std::vector<IoJobView>& views) const {
  views.clear();
  // Column walk in arrival order: the transfer carries its job-context slot
  // (cached at Begin), so building the views touches no hash table.
  const storage::StorageModel::ActiveColumns cols = storage_.Columns();
  views.reserve(cols.arrival_order.size());
  for (std::size_t slot : cols.arrival_order) {
    std::uint32_t user = cols.user_slots[slot];
    if (user == storage::StorageModel::kNoUserSlot) {
      throw std::logic_error("IoScheduler: transfer for unregistered job " +
                             std::to_string(cols.job_ids[slot]));
    }
    const JobContext& ctx = jobs_.At(user);
    IoJobView v;
    v.id = cols.job_ids[slot];
    v.nodes = cols.nodes[slot];
    v.full_rate_gbps = cols.full_rates[slot];
    v.volume_gb = cols.volumes[slot];
    v.transferred_gb = cols.transferred[slot];
    v.request_arrival = cols.arrivals[slot];
    v.job_start = ctx.start_time;
    v.completed_compute_seconds = ctx.completed_compute_seconds;
    v.completed_io_seconds = ctx.completed_io_seconds;
    views.push_back(v);
  }
}

void IoScheduler::Reschedule(sim::SimTime now) {
  storage_.AdvanceTo(now);
  ++cycles_;

  // The burst-buffer drain has priority on the file servers: it shrinks the
  // bandwidth the policy may grant to direct traffic until the queue empties
  // (at which point a scheduled cycle restores the full BWmax).
  double usable_bandwidth = storage_.config().max_bandwidth_gbps;
  if (burst_buffer_ != nullptr) {
    burst_buffer_->AdvanceTo(now);
    usable_bandwidth = std::max(
        0.0, usable_bandwidth - burst_buffer_->CurrentDrainRate());
    if (has_drain_event_) {
      simulator_.Cancel(drain_event_);
      has_drain_event_ = false;
    }
    if (burst_buffer_->queued_gb() > 0) {
      // Keep the wakeup strictly in the future even when the remaining
      // drain time is below the clock's resolution at this timestamp.
      sim::SimTime wake =
          std::max(burst_buffer_->DrainEmptyTime(), now + 1e-4);
      drain_event_ = simulator_.ScheduleAt(wake, [this] {
        has_drain_event_ = false;
        Reschedule(simulator_.Now());
      });
      has_drain_event_ = true;
      drain_event_time_ = wake;
    }
  }
  RefreshCycleInputs(now);

  FillViews(views_scratch_);
  const std::vector<IoJobView>& views = views_scratch_;
  PlanContext ctx;
  ctx.active = views;
  ctx.inputs = &cycle_inputs_;
  ctx.max_bandwidth_gbps = usable_bandwidth;
  ctx.now = now;
  ctx.window_seconds = plan_config_.window_seconds;
  ctx.slice_seconds = plan_config_.slice_seconds;
  std::vector<RateGrant> grants = PlanAndExecute(ctx);
  ValidateGrants(views, grants);
  // Views were built in arrival order, so grant i addresses the slot at
  // arrival_order[i] whenever the policy preserved positions (they all do);
  // the id check falls back to the hash probe if one ever reorders.
  const storage::StorageModel::ActiveColumns cols = storage_.Columns();
  for (std::size_t i = 0; i < grants.size(); ++i) {
    const RateGrant& g = grants[i];
    if (i < cols.arrival_order.size() &&
        cols.job_ids[cols.arrival_order[i]] == g.id) {
      storage_.SetRateAtSlot(cols.arrival_order[i], g.rate_gbps);
    } else {
      storage_.SetRate(g.id, g.rate_gbps);
    }
  }
  // Physics check: even the adaptive policy only over-admits *demand*; the
  // granted rates must always fit the disks.
  storage_.ValidateAssignment();

  if (bandwidth_tracker_ != nullptr) {
    metrics::BandwidthSample sample;
    sample.time = now;
    for (const IoJobView& v : views) sample.demand_gbps += v.full_rate_gbps;
    sample.active_requests = static_cast<int>(views.size());
    for (const RateGrant& g : grants) {
      sample.granted_gbps += g.rate_gbps;
      if (g.rate_gbps <= 0) ++sample.suspended_requests;
    }
    bandwidth_tracker_->Record(sample);
  }

  if (hub_ != nullptr) {
    hub_->io_cycles->Inc();
    double demand = 0.0;
    for (const IoJobView& v : views) demand += v.full_rate_gbps;
    double granted = 0.0;
    std::uint64_t throttled = 0;
    for (const RateGrant& g : grants) {
      granted += g.rate_gbps;
      if (g.rate_gbps <= 0) ++throttled;
    }
    hub_->throttled_grants->Inc(throttled);
    obs::Tracer& tracer = hub_->tracer();
    tracer.Counter(obs::kStorageTrack, "demand_gbps", now, demand);
    tracer.Counter(obs::kStorageTrack, "granted_gbps", now, granted);
    // A congestion episode spans consecutive congested cycles; the span is
    // emitted when demand drops back under the usable bandwidth (or at
    // FlushObs if the run ends congested).
    bool congested = demand > usable_bandwidth + util::kVolumeEpsilon;
    if (congested) {
      hub_->congested_cycles->Inc();
      if (!congested_) {
        congested_ = true;
        congestion_start_ = now;
      }
    } else if (congested_) {
      congested_ = false;
      tracer.Span(obs::kStorageTrack, "congestion", congestion_start_, now);
    }
    if (burst_buffer_ != nullptr) {
      tracer.Counter(obs::kStorageTrack, "bb_queued_gb", now,
                     burst_buffer_->queued_gb());
      tracer.Counter(obs::kStorageTrack, "bb_free_gb", now,
                     burst_buffer_->free_gb());
      // BB-tier congestion episode: occupancy above the watermark.
      bool bb_congested = burst_buffer_->Congested();
      if (bb_congested) {
        hub_->bb_congested_cycles->Inc();
        if (!bb_congested_) {
          bb_congested_ = true;
          bb_congestion_start_ = now;
        }
      } else if (bb_congested_) {
        bb_congested_ = false;
        tracer.Span(obs::kStorageTrack, "bb_congestion", bb_congestion_start_,
                    now);
      }
    }
  }

  if (has_pending_event_) {
    simulator_.Cancel(pending_event_);
    has_pending_event_ = false;
  }
  auto next = storage_.NextCompletion();
  if (next) {
    pending_event_ =
        simulator_.ScheduleAt(next->first, [this] { OnCompletionEvent(); });
    has_pending_event_ = true;
    pending_event_time_ = next->first;
  }

  // Planning policies may want a cycle at the next plan boundary (slice
  // edge, reservation edge, window expiry) even if no request arrives or
  // completes there. Greedy policies never take this branch, so their
  // event-id sequences — and replay digests — are untouched.
  if (policy_is_planning_) ArmPlanReview(ctx);

  // Benched checkpoint flushes get a fresh release query every cycle: the
  // congestion that parked them may just have cleared.
  if (flush_config_.enabled && !deferred_flushes_.empty()) {
    ReleaseDeferredFlushes(now);
  }
}

void IoScheduler::RefreshCycleInputs(sim::SimTime now) {
  if (burst_buffer_ != nullptr) {
    // Tier snapshot for tier-aware policies (the buffer was already settled
    // to `now` by the caller).
    TierState& tiers = cycle_inputs_.tiers;
    tiers.bb_enabled = true;
    tiers.bb_capacity_gb = burst_buffer_->config().capacity_gb;
    tiers.bb_queued_gb = burst_buffer_->queued_gb();
    tiers.drain_gbps = burst_buffer_->CurrentDrainRate();
    tiers.bb_congested = burst_buffer_->Congested();
    tiers.bb_faulted = burst_buffer_->faulted();
    tiers.drain_factor = burst_buffer_->drain_factor();
  }
  if (prediction_config_.enabled) {
    BuildPredictionState(now);
  }
  if (flush_config_.enabled) {
    cycle_inputs_.flush_backlog_gb = deferred_backlog_gb_;
    cycle_inputs_.flush_backlog_count = deferred_flushes_.size();
  }
}

std::vector<RateGrant> IoScheduler::PlanAndExecute(const PlanContext& ctx) {
  bool replan = !has_plan_;
  if (policy_is_planning_ && has_plan_) {
    replan = ctx.now >= plan_valid_until_ ||
             (plan_config_.churn_cycles > 0 &&
              cycles_in_plan_ >= plan_config_.churn_cycles) ||
             policy_->PlanInvalidated(ctx);
  }
  if (replan) {
    auto wall_start = std::chrono::steady_clock::now();
    IoPlan plan = policy_->Plan(ctx);
    plan_wall_seconds_ += std::chrono::duration<double>(
                              std::chrono::steady_clock::now() - wall_start)
                              .count();
    has_plan_ = true;
    plan_computed_at_ = ctx.now;
    plan_valid_until_ = plan.valid_until;
    if (policy_is_planning_ && plan_config_.window_seconds > 0) {
      plan_valid_until_ = std::min(
          plan_valid_until_, ctx.now + plan_config_.window_seconds);
    }
    ++replans_;
    cycles_in_plan_ = 0;
  }
  PlanCursor cursor{replans_, plan_computed_at_, cycles_in_plan_};
  ++cycles_in_plan_;
  return policy_->Execute(ctx, cursor);
}

void IoScheduler::ArmPlanReview(const PlanContext& ctx) {
  if (has_review_event_) {
    simulator_.Cancel(review_event_);
    has_review_event_ = false;
  }
  // The policy folds its own plan expiry into NextPlanEvent while it has
  // standing traffic and returns infinity when idle — an unconditional
  // expiry wakeup would keep the event queue non-empty forever and the
  // simulation would never drain.
  sim::SimTime next = policy_->NextPlanEvent(ctx);
  if (!std::isfinite(next)) return;
  sim::SimTime wake = std::max(next, ctx.now + 1e-4);
  review_event_ = simulator_.ScheduleAt(wake, PlanReviewAction());
  has_review_event_ = true;
  review_event_time_ = wake;
}

std::function<void()> IoScheduler::PlanReviewAction() {
  return [this] {
    has_review_event_ = false;
    Reschedule(simulator_.Now());
  };
}

std::string PlanConfig::Validate() const {
  if (window_seconds <= 0) return "window_seconds must be > 0";
  if (slice_seconds <= 0) return "slice_seconds must be > 0";
  return "";
}

void IoScheduler::ConfigurePlanning(const PlanConfig& config) {
  std::string err = config.Validate();
  if (!err.empty()) {
    throw std::invalid_argument("IoScheduler::ConfigurePlanning: " + err);
  }
  plan_config_ = config;
}

std::function<void()> IoScheduler::AbsorbedAction(workload::JobId id,
                                                 double duration) {
  return [this, id, duration] {
    // A buffer-absorbed request runs contention-free at the absorb-tier
    // rate: its completed uncongested time equals its actual time.
    IoCompletionInfo info;
    info.absorbed = true;
    auto it = absorbed_events_.find(id);
    if (it != absorbed_events_.end()) {
      info.durable_drain_gb = it->second.durable_gb;
      absorbed_events_.erase(it);
    }
    JobContext& ctx = MustFind(jobs_, id);
    ctx.completed_io_seconds += duration;
    ctx.last_io_end_time = simulator_.Now();
    on_complete_(id, simulator_.Now(), info);
  };
}

std::string TransferRetryConfig::Validate() const {
  if (timeout_seconds < 0) return "timeout_seconds must be >= 0";
  if (max_retries < 0) return "max_retries must be >= 0";
  if (backoff_base_seconds <= 0) return "backoff_base_seconds must be > 0";
  if (backoff_max_seconds < backoff_base_seconds) {
    return "backoff_max_seconds must be >= backoff_base_seconds";
  }
  if (backoff_jitter_fraction < 0 || backoff_jitter_fraction >= 1.0) {
    return "backoff_jitter_fraction must be in [0, 1)";
  }
  return "";
}

void IoScheduler::SetRetryConfig(const TransferRetryConfig& config) {
  std::string err = config.Validate();
  if (!err.empty()) {
    throw std::invalid_argument("IoScheduler::SetRetryConfig: " + err);
  }
  retry_config_ = config;
  jitter_rng_ = util::Rng(config.jitter_seed, /*stream=*/31);
}

void IoScheduler::ConfigurePrediction(const PredictionConfig& config) {
  prediction_config_ = config;
  predictor_.reset();
  if (config.enabled && config.mode == "learned") {
    IoBehaviorPredictor::Options opts;
    opts.alpha = config.alpha;
    opts.min_support = config.min_support;
    opts.node_bandwidth_gbps = node_bandwidth_gbps_;
    predictor_ = std::make_unique<IoBehaviorPredictor>(opts);
  }
}

void IoScheduler::ObserveCompletion(workload::JobId id) {
  if (predictor_ == nullptr) return;
  const JobContext* ctx = jobs_.Find(id);
  if (ctx == nullptr || ctx->job == nullptr) return;
  predictor_->Observe(*ctx->job);
}

IoPrediction IoScheduler::PredictFor(const workload::Job& job) const {
  if (prediction_config_.mode == "oracle") {
    IoPrediction p;
    p.io_fraction = job.IoFraction(node_bandwidth_gbps_);
    p.io_phases = static_cast<double>(job.IoPhaseCount());
    p.io_efficiency = job.io_efficiency;
    p.support = 1;
    return p;
  }
  if (predictor_ != nullptr) return predictor_->Predict(job);
  return IoPrediction{};  // null mode: never a signal
}

void IoScheduler::BuildPredictionState(sim::SimTime now) {
  PredictionState& ps = cycle_inputs_.prediction;
  ps.enabled = true;
  ps.horizon_seconds = prediction_config_.horizon_seconds;
  ps.upcoming.clear();
  ps.imminent_rate_gbps = 0.0;
  ps.imminent_volume_gb = 0.0;
  jobs_.SortedIds(ids_scratch_);
  for (workload::JobId id : ids_scratch_) {
    // Only jobs currently computing have a next burst to forecast: a job
    // with an in-flight, absorbed, or backoff-pending request is already in
    // I/O — it is the policy's Assign input, not a prediction.
    if (storage_.Has(id) || absorbed_events_.count(id) != 0 ||
        pending_retries_.count(id) != 0) {
      continue;
    }
    const JobContext& ctx = *jobs_.Find(id);
    const workload::Job& job = *ctx.job;
    IoPrediction pred = PredictFor(job);
    // support == 0 means "no signal", never "I/O-free": an unseen-project
    // job must be scheduled exactly as the non-predictive path would.
    if (pred.support == 0 || pred.io_fraction <= 0.0) continue;
    double efficiency = std::clamp(pred.io_efficiency, 0.0, 1.0);
    double rate = node_bandwidth_gbps_ * job.nodes * efficiency;
    if (rate <= 0.0) continue;
    // Model the predicted behaviour as `phases` evenly spaced bursts over
    // the requested walltime: each burst moves an equal share of the
    // predicted I/O time at `rate`, separated by equal compute gaps. The
    // ETA counts down from the end of the job's last burst (its start for
    // the first one).
    double phases = std::max(pred.io_phases, 1.0);
    double walltime = std::max(job.requested_walltime, 1.0);
    double fraction = std::min(pred.io_fraction, 1.0);
    double volume = fraction * walltime * rate / phases;
    double gap = (1.0 - fraction) * walltime / phases;
    double elapsed = now - std::max(ctx.start_time, ctx.last_io_end_time);
    double eta = std::max(0.0, gap - std::max(elapsed, 0.0));
    ps.upcoming.push_back(PredictedBurst{id, eta, rate, volume, pred.support});
    if (eta <= ps.horizon_seconds) {
      ps.imminent_rate_gbps += rate;
      ps.imminent_volume_gb += volume;
    }
  }
}

double IoScheduler::BackoffDelay(int retries) {
  // Multiply-until-clamped instead of pow(): at high retry counts repeated
  // doubling would overflow to inf before a final min() could clamp it.
  double backoff = retry_config_.backoff_base_seconds;
  for (int i = 0; i < retries && backoff < retry_config_.backoff_max_seconds;
       ++i) {
    backoff *= 2.0;
  }
  backoff = std::min(backoff, retry_config_.backoff_max_seconds);
  if (retry_config_.backoff_jitter_fraction > 0) {
    backoff *= 1.0 + retry_config_.backoff_jitter_fraction *
                         jitter_rng_.Uniform(-1.0, 1.0);
  }
  return std::max(backoff, 1e-3);
}

std::function<void()> IoScheduler::DeadlineAction(workload::JobId id) {
  return [this, id] { OnTransferDeadline(id); };
}

std::function<void()> IoScheduler::RetryAction(workload::JobId id) {
  return [this, id] { OnTransferRetry(id); };
}

void IoScheduler::OnTransferDeadline(workload::JobId id) {
  auto it = deadline_events_.find(id);
  if (it == deadline_events_.end()) return;
  int retries = it->second.retries;
  deadline_events_.erase(it);
  if (!storage_.Has(id)) return;
  sim::SimTime now = simulator_.Now();
  storage_.AdvanceTo(now);
  const storage::Transfer& t = storage_.Get(id);
  if (t.Complete()) {
    // The completion event shares this timestamp; let it finish the job.
    return;
  }
  // Keep the progress: credit the moved volume's uncongested equivalent and
  // resubmit only the remainder after the backoff.
  double remaining = t.RemainingGb();
  MustFind(jobs_, id).completed_io_seconds += t.transferred_gb / t.full_rate_gbps;
  storage_.Abort(id);
  ++transfer_timeouts_;
  if (hub_ != nullptr) hub_->io_transfer_timeouts->Inc();
  double delay = BackoffDelay(retries);
  sim::EventId event = simulator_.ScheduleAfter(delay, RetryAction(id));
  pending_retries_[id] =
      PendingRetry{event, now + delay, remaining, retries + 1};
  Reschedule(now);
}

void IoScheduler::OnTransferRetry(workload::JobId id) {
  auto it = pending_retries_.find(id);
  if (it == pending_retries_.end()) return;
  PendingRetry retry = it->second;
  pending_retries_.erase(it);
  sim::SimTime now = simulator_.Now();
  ++transfer_retries_;
  if (hub_ != nullptr) hub_->io_transfer_retries->Inc();
  // A fresh attempt draws a fresh straggler factor: a transient straggler
  // window clears on retry, a persistent one times out again until the
  // budget is spent and the attempt runs unwatched.
  BeginDirectTransfer(id, retry.remaining_gb, now, retry.retries);
  Reschedule(now);
}

void IoScheduler::OnBurstBufferFault(bool faulted, bool lose_data,
                                     sim::SimTime now) {
  if (burst_buffer_ == nullptr) {
    throw std::logic_error(
        "IoScheduler::OnBurstBufferFault without an attached buffer");
  }
  burst_buffer_->AdvanceTo(now);
  burst_buffer_->SetFaulted(faulted);
  if (faulted && lose_data) {
    burst_buffer_->DropBufferedData();
    // Every in-flight absorbed request lost its staged data: cancel its
    // completion and re-flush the full volume over the direct path (in job
    // order, so the straggler draw sequence is deterministic).
    std::vector<workload::JobId> ids;
    ids.reserve(absorbed_events_.size());
    for (const auto& [id, _] : absorbed_events_) ids.push_back(id);
    std::sort(ids.begin(), ids.end());
    for (workload::JobId id : ids) {
      const AbsorbedEvent& ab = absorbed_events_.at(id);
      simulator_.Cancel(ab.event);
      double volume = ab.volume_gb;
      absorbed_events_.erase(id);
      ++reflushed_requests_;
      if (hub_ != nullptr) hub_->bb_reflushed_requests->Inc();
      BeginDirectTransfer(id, volume, now, /*retries=*/0);
    }
  }
  Reschedule(now);
}

void IoScheduler::OnDrainFactorChange(double factor, sim::SimTime now) {
  if (burst_buffer_ == nullptr) {
    throw std::logic_error(
        "IoScheduler::OnDrainFactorChange without an attached buffer");
  }
  // Settle the backlog at the old rate before the factor applies, then
  // re-plan: the drain wakeup and the usable bandwidth both move.
  burst_buffer_->AdvanceTo(now);
  burst_buffer_->SetDrainFactor(factor);
  Reschedule(now);
}

void IoScheduler::SaveState(ckpt::Writer& w) const {
  std::vector<workload::JobId> ids;
  jobs_.SortedIds(ids);
  w.U32(static_cast<std::uint32_t>(ids.size()));
  for (workload::JobId id : ids) {
    const JobContext& ctx = *jobs_.Find(id);
    w.I64(id);
    w.F64(ctx.start_time);
    w.F64(ctx.completed_compute_seconds);
    w.F64(ctx.completed_io_seconds);
  }
  w.Bool(has_pending_event_);
  if (has_pending_event_) {
    w.U64(pending_event_);
    w.F64(pending_event_time_);
  }
  w.Bool(has_drain_event_);
  if (has_drain_event_) {
    w.U64(drain_event_);
    w.F64(drain_event_time_);
  }
  w.U64(cycles_);
  w.U64(submitted_requests_);
  w.Bool(congested_);
  w.F64(congestion_start_);
  w.Bool(bb_congested_);
  w.F64(bb_congestion_start_);
  ids.clear();
  ids.reserve(absorbed_events_.size());
  for (const auto& [id, _] : absorbed_events_) ids.push_back(id);
  std::sort(ids.begin(), ids.end());
  w.U32(static_cast<std::uint32_t>(ids.size()));
  for (workload::JobId id : ids) {
    const AbsorbedEvent& ab = absorbed_events_.at(id);
    w.I64(id);
    w.U64(ab.event);
    w.F64(ab.fire_time);
    w.F64(ab.duration);
    w.F64(ab.volume_gb);
    w.F64(ab.durable_gb);
  }
  // Deadline/retry state (appended so the layout above is unchanged).
  util::Rng::State jitter = jitter_rng_.SaveState();
  w.U64(jitter.engine.state);
  w.U64(jitter.engine.inc);
  w.Bool(jitter.has_spare);
  w.F64(jitter.spare);
  ids.clear();
  ids.reserve(deadline_events_.size());
  for (const auto& [id, _] : deadline_events_) ids.push_back(id);
  std::sort(ids.begin(), ids.end());
  w.U32(static_cast<std::uint32_t>(ids.size()));
  for (workload::JobId id : ids) {
    const DeadlineEvent& dl = deadline_events_.at(id);
    w.I64(id);
    w.U64(dl.event);
    w.F64(dl.fire_time);
    w.I64(dl.retries);
  }
  ids.clear();
  ids.reserve(pending_retries_.size());
  for (const auto& [id, _] : pending_retries_) ids.push_back(id);
  std::sort(ids.begin(), ids.end());
  w.U32(static_cast<std::uint32_t>(ids.size()));
  for (workload::JobId id : ids) {
    const PendingRetry& pr = pending_retries_.at(id);
    w.I64(id);
    w.U64(pr.event);
    w.F64(pr.fire_time);
    w.F64(pr.remaining_gb);
    w.I64(pr.retries);
  }
  w.U64(transfer_timeouts_);
  w.U64(transfer_retries_);
  w.U64(straggler_spills_);
  w.U64(reflushed_requests_);
  // Prediction state (appended so the layout above is unchanged, and only
  // when prediction is on, so prediction-off checkpoints stay byte-stable):
  // the per-job burst-ETA anchors plus, in learned mode, the predictor's
  // EWMA tables.
  w.Bool(prediction_config_.enabled);
  if (prediction_config_.enabled) {
    ids.clear();
    jobs_.SortedIds(ids);
    for (workload::JobId id : ids) {
      w.F64(jobs_.Find(id)->last_io_end_time);
    }
    w.Bool(predictor_ != nullptr);
    if (predictor_ != nullptr) predictor_->SaveState(w);
  }
  // Deferred-flush state (appended, gated on the feature so checkpoint
  // streams from flush-unaware runs stay byte-stable).
  w.Bool(flush_config_.enabled);
  if (flush_config_.enabled) {
    w.U32(static_cast<std::uint32_t>(deferred_flushes_.size()));
    for (const auto& [id, df] : deferred_flushes_) {
      w.I64(id);
      w.U64(df.event);
      w.F64(df.fire_time);
      w.F64(df.submit_time);
      w.F64(df.volume_gb);
    }
    w.U64(flush_deferrals_);
    w.U64(forced_flush_releases_);
  }
  // Two-phase plan state (appended, gated on the policy actually planning,
  // so checkpoint streams from greedy-policy runs only gain the gate byte).
  // A planning policy's standing plan — cadence bookkeeping, the review
  // event, and the policy's own cross-cycle state — must survive a resume
  // bit-exactly or the resumed run diverges from the uninterrupted one.
  w.Bool(policy_is_planning_);
  if (policy_is_planning_) {
    w.Bool(has_plan_);
    w.F64(plan_computed_at_);
    w.F64(plan_valid_until_);
    w.U64(replans_);
    w.U64(cycles_in_plan_);
    w.Bool(has_review_event_);
    if (has_review_event_) {
      w.U64(review_event_);
      w.F64(review_event_time_);
    }
    policy_->SaveState(w);
  }
}

void IoScheduler::RestoreState(
    ckpt::Reader& r,
    const std::function<const workload::Job*(workload::JobId)>& resolve) {
  jobs_.Clear();
  absorbed_events_.clear();
  deadline_events_.clear();
  pending_retries_.clear();
  deferred_flushes_.clear();
  deferred_backlog_gb_ = 0.0;
  std::uint32_t job_count = r.U32();
  for (std::uint32_t i = 0; i < job_count; ++i) {
    workload::JobId id = r.I64();
    const workload::Job* job = resolve(id);
    if (job == nullptr) {
      throw std::runtime_error(
          "IoScheduler::RestoreState: checkpoint references job " +
          std::to_string(id) + " absent from the workload");
    }
    JobContext ctx;
    ctx.job = job;
    ctx.start_time = r.F64();
    ctx.completed_compute_seconds = r.F64();
    ctx.completed_io_seconds = r.F64();
    // Overwritten from the appended prediction section when present.
    ctx.last_io_end_time = ctx.start_time;
    jobs_.Add(id, ctx);
  }
  has_pending_event_ = r.Bool();
  if (has_pending_event_) {
    pending_event_ = r.U64();
    pending_event_time_ = r.F64();
    simulator_.RestoreEvent(pending_event_time_, pending_event_,
                            [this] { OnCompletionEvent(); });
  }
  has_drain_event_ = r.Bool();
  if (has_drain_event_) {
    drain_event_ = r.U64();
    drain_event_time_ = r.F64();
    simulator_.RestoreEvent(drain_event_time_, drain_event_, [this] {
      has_drain_event_ = false;
      Reschedule(simulator_.Now());
    });
  }
  cycles_ = r.U64();
  submitted_requests_ = r.U64();
  congested_ = r.Bool();
  congestion_start_ = r.F64();
  bb_congested_ = r.Bool();
  bb_congestion_start_ = r.F64();
  std::uint32_t absorbed = r.U32();
  for (std::uint32_t i = 0; i < absorbed; ++i) {
    workload::JobId id = r.I64();
    AbsorbedEvent ab;
    ab.event = r.U64();
    ab.fire_time = r.F64();
    ab.duration = r.F64();
    ab.volume_gb = r.F64();
    ab.durable_gb = r.F64();
    absorbed_events_.emplace(id, ab);
    simulator_.RestoreEvent(ab.fire_time, ab.event,
                            AbsorbedAction(id, ab.duration));
  }
  util::Rng::State jitter;
  jitter.engine.state = r.U64();
  jitter.engine.inc = r.U64();
  jitter.has_spare = r.Bool();
  jitter.spare = r.F64();
  jitter_rng_.RestoreState(jitter);
  std::uint32_t deadlines = r.U32();
  for (std::uint32_t i = 0; i < deadlines; ++i) {
    workload::JobId id = r.I64();
    DeadlineEvent dl;
    dl.event = r.U64();
    dl.fire_time = r.F64();
    dl.retries = static_cast<int>(r.I64());
    deadline_events_.emplace(id, dl);
    simulator_.RestoreEvent(dl.fire_time, dl.event, DeadlineAction(id));
  }
  std::uint32_t retries = r.U32();
  for (std::uint32_t i = 0; i < retries; ++i) {
    workload::JobId id = r.I64();
    PendingRetry pr;
    pr.event = r.U64();
    pr.fire_time = r.F64();
    pr.remaining_gb = r.F64();
    pr.retries = static_cast<int>(r.I64());
    pending_retries_.emplace(id, pr);
    simulator_.RestoreEvent(pr.fire_time, pr.event, RetryAction(id));
  }
  transfer_timeouts_ = r.U64();
  transfer_retries_ = r.U64();
  straggler_spills_ = r.U64();
  reflushed_requests_ = r.U64();
  if (r.Bool()) {
    std::vector<workload::JobId> sorted;
    jobs_.SortedIds(sorted);
    for (workload::JobId id : sorted) {
      jobs_.Find(id)->last_io_end_time = r.F64();
    }
    if (r.Bool()) {
      if (predictor_ == nullptr) {
        throw std::runtime_error(
            "IoScheduler::RestoreState: checkpoint carries learned-predictor "
            "state but prediction is not configured in learned mode");
      }
      predictor_->RestoreState(r);
    }
  }
  if (r.Bool()) {
    std::uint32_t deferred = r.U32();
    for (std::uint32_t i = 0; i < deferred; ++i) {
      workload::JobId id = r.I64();
      DeferredFlush df;
      df.event = r.U64();
      df.fire_time = r.F64();
      df.submit_time = r.F64();
      df.volume_gb = r.F64();
      deferred_flushes_.emplace(id, df);
      deferred_backlog_gb_ += df.volume_gb;
      simulator_.RestoreEvent(df.fire_time, df.event, FlushReleaseAction(id));
    }
    flush_deferrals_ = r.U64();
    forced_flush_releases_ = r.U64();
  }
  if (r.Bool()) {
    if (!policy_is_planning_) {
      throw std::runtime_error(
          "IoScheduler::RestoreState: checkpoint carries plan state but the "
          "configured policy is not a planning policy");
    }
    has_plan_ = r.Bool();
    plan_computed_at_ = r.F64();
    plan_valid_until_ = r.F64();
    replans_ = r.U64();
    cycles_in_plan_ = r.U64();
    has_review_event_ = r.Bool();
    if (has_review_event_) {
      review_event_ = r.U64();
      review_event_time_ = r.F64();
      simulator_.RestoreEvent(review_event_time_, review_event_,
                              PlanReviewAction());
    }
    policy_->RestoreState(r);
  }
  // User slots are runtime-only (not serialized); relink every restored
  // transfer to its owner's JobStore slot. The engine restores the storage
  // model before this component, so the transfers are already in place.
  {
    const storage::StorageModel::ActiveColumns cols = storage_.Columns();
    for (std::size_t slot = 0; slot < cols.job_ids.size(); ++slot) {
      workload::JobId id = cols.job_ids[slot];
      std::uint32_t user = jobs_.SlotOf(id);
      if (user == JobStore::kInvalidSlot) {
        throw std::runtime_error(
            "IoScheduler::RestoreState: transfer for job " +
            std::to_string(id) + " has no registered context");
      }
      storage_.SetUserSlot(id, user);
    }
  }
}

void IoScheduler::OnCompletionEvent() {
  has_pending_event_ = false;
  sim::SimTime now = simulator_.Now();
  storage_.AdvanceTo(now);

  // Collect every transfer that is complete at this instant (rate changes
  // can align several completions on one timestamp).
  std::vector<workload::JobId>& done = done_scratch_;
  done.clear();
  {
    const storage::StorageModel::ActiveColumns cols = storage_.Columns();
    for (std::size_t slot : cols.arrival_order) {
      if (storage_.CompleteAt(slot)) done.push_back(cols.job_ids[slot]);
    }
    if (done.empty()) {
      // Float round-off left a sliver. If a transfer would finish within the
      // clock's resolution anyway, write the sliver off — re-arming an event
      // at an unrepresentable future instant would spin forever.
      std::vector<std::pair<workload::JobId, double>> slivers;
      for (const std::size_t slot : cols.arrival_order) {
        double epsilon = storage_.EffectiveRateAt(slot) * 1e-4;
        if (cols.rates[slot] > 0 && storage_.RemainingAt(slot) <= epsilon) {
          slivers.emplace_back(cols.job_ids[slot], epsilon);
        }
      }
      // ForceComplete mutates the store, so it runs after the column walk.
      for (const auto& [id, epsilon] : slivers) {
        storage_.ForceComplete(id, epsilon);
        done.push_back(id);
      }
    }
  }
  if (done.empty()) {
    // A genuine rate change moved the completion; reschedule from state.
    Reschedule(now);
    return;
  }
  for (workload::JobId id : done) {
    // End returns the removed transfer, so accounting and teardown share
    // one index lookup.
    storage::Transfer t = storage_.End(id);
    JobContext& ctx = MustFind(jobs_, id);
    ctx.completed_io_seconds += t.volume_gb / t.full_rate_gbps;
    ctx.last_io_end_time = now;
    auto deadline = deadline_events_.find(id);
    if (deadline != deadline_events_.end()) {
      simulator_.Cancel(deadline->second.event);
      deadline_events_.erase(deadline);
    }
  }
  Reschedule(now);
  // Notify after rates are re-assigned so callbacks observing the storage
  // see a consistent post-cycle state. Callbacks may submit new requests
  // (the next phase is compute, so in practice they do not re-enter I/O at
  // the same instant, but nested Reschedule calls are safe regardless).
  // Direct-path completions are durable on the PFS immediately.
  const IoCompletionInfo direct_info;
  for (workload::JobId id : done) {
    on_complete_(id, now, direct_info);
  }
}

}  // namespace iosched::core
