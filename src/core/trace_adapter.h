// SchedEventSink that renders the engine's scheduling-event stream as
// per-job tracks in the observability tracer: a "wait" span from submit (or
// requeue) to start, a "run" span from start to end/kill, and one "io" span
// per I/O request, plus instants for the fault-handling events. This is the
// EventLog's sibling behind the engine's shared emit point — the CSV log
// and the Chrome trace are two views of one event stream.
#pragma once

#include <unordered_map>

#include "core/event_log.h"
#include "obs/tracer.h"

namespace iosched::core {

class SchedTraceAdapter : public SchedEventSink {
 public:
  /// `tracer` must outlive the adapter.
  explicit SchedTraceAdapter(obs::Tracer* tracer);

  void OnSchedEvent(const SchedEvent& event) override;

  /// Close the open spans of jobs still in flight (nothing should remain
  /// after a run-to-completion simulation; kept for partial runs and
  /// defensive symmetry). Call once after the simulator drains.
  void Flush(sim::SimTime now);

 private:
  struct JobState {
    /// Wait-span origin: submit time, or the requeue time after a fault.
    sim::SimTime waiting_since = 0.0;
    sim::SimTime run_start = 0.0;
    sim::SimTime io_start = 0.0;
    bool running = false;
    bool in_io = false;
  };

  obs::Tracer* tracer_;
  std::unordered_map<workload::JobId, JobState> jobs_;
};

}  // namespace iosched::core
