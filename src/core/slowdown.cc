#include "core/slowdown.h"

#include <algorithm>

#include "util/units.h"

namespace iosched::core {

double InstantSlowdown(const IoJobView& view, sim::SimTime now) {
  double elapsed = now - view.request_arrival;
  if (elapsed <= util::kTimeEpsilon) return 1.0;
  double ideal_gb = view.full_rate_gbps * elapsed;
  if (view.transferred_gb <= util::kVolumeEpsilon) return kSlowdownCap;
  return std::max(1.0, std::min(kSlowdownCap, ideal_gb / view.transferred_gb));
}

double AggregateSlowdown(const IoJobView& view, sim::SimTime now) {
  double elapsed = now - view.job_start;
  double ideal =
      view.completed_compute_seconds + view.completed_io_seconds;
  if (ideal <= util::kTimeEpsilon) {
    return elapsed <= util::kTimeEpsilon ? 1.0 : kSlowdownCap;
  }
  return std::max(1.0, std::min(kSlowdownCap, elapsed / ideal));
}

}  // namespace iosched::core
