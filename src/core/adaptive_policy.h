// ADAPTIVE policy (paper Section III-C.2, Algorithm 1, Figure 7).
//
// Starts as Cons-FCFS: admit requests in arrival order while they fit under
// BWmax. When a request does not fit, instead of making it wait the policy
// estimates two average I/O completion times over Sopt ∪ {J_i}:
//   T_FCFS     — admitted jobs finish at full rate; J_i starts at the
//                earliest time T_i enough bandwidth has been released;
//   T_Adaptive — J_i is admitted immediately and the whole set fair-shares
//                BWmax per node.
// If T_Adaptive < T_FCFS the job is admitted (bandwidth bound broken on
// purpose) and the remaining budget drops to zero, so every later candidate
// must also pass the comparison against the enlarged set.
//
// Estimation detail (the paper leaves it open): both estimates freeze rates
// at their initial values — they ignore future release/re-share events
// within the compared horizon. This mirrors "calculate the average time" in
// Algorithm 1 lines 12-13 and keeps each cycle O(K log K).
#pragma once

#include "core/io_policy.h"

namespace iosched::obs {
class Counter;
}  // namespace iosched::obs

namespace iosched::core {

class AdaptivePolicy final : public GreedyAdapter {
 public:
  /// With `predictive` set the policy runs as PREDICTIVE_ADAPTIVE: identical
  /// to ADAPTIVE except that the over-admission branch is also suspended
  /// while the prediction snapshot forecasts an imminent burst storm —
  /// aggregate imminent demand of at least kStormDeferralFraction of BWmax
  /// within the horizon. FCFS admissions are untouched; with prediction
  /// off or never signalling, behavior is grant-for-grant ADAPTIVE.
  ///
  /// Tier / prediction / flush-backlog awareness all read the per-cycle
  /// CycleInputs (GreedyAdapter::inputs()): while the burst-buffer drain
  /// backlog is deep (above kBacklogDeferralFraction of capacity) or the
  /// parked-flush backlog holds kFlushBacklogDeferralSeconds of
  /// full-bandwidth work, the over-admission branch is suspended and the
  /// policy degrades to Cons-FCFS — see DESIGN.md §9. All no-ops when the
  /// respective feature is off.
  explicit AdaptivePolicy(bool predictive = false) : predictive_(predictive) {}

  const std::string& name() const override;
  std::vector<RateGrant> Assign(std::span<const IoJobView> active,
                                double max_bandwidth_gbps,
                                sim::SimTime now) override;
  void BindObs(obs::Hub* hub) override;

  /// Hold a ready flush while the direct channel is saturated or the
  /// burst-buffer drain is behind; release as soon as there is headroom
  /// (the scheduler force-releases at the deadline regardless).
  bool DeferFlush(const FlushView& flush, double active_demand_gbps,
                  double max_bandwidth_gbps, sim::SimTime now) override;

  /// Backlog fraction of BB capacity above which over-admission pauses.
  static constexpr double kBacklogDeferralFraction = 0.5;

  /// Imminent predicted demand, as a fraction of BWmax, above which
  /// PREDICTIVE_ADAPTIVE defers discretionary (over-)admissions.
  static constexpr double kStormDeferralFraction = 0.5;

  /// Parked-flush backlog, in seconds of full-bandwidth work, above which
  /// over-admission pauses.
  static constexpr double kFlushBacklogDeferralSeconds = 30.0;

 private:
  bool predictive_ = false;
  /// Accumulates water-filling steps across cycles; null when obs is off.
  obs::Counter* waterfill_counter_ = nullptr;
};

/// Earliest time J_i (index `candidate`) could start I/O if not admitted
/// now: admitted jobs release bandwidth as they finish at their granted
/// rates; returns the completion time of the release that first makes
/// b*N_i (capped at BWmax) available. Exposed for unit tests.
sim::SimTime EarliestStartIfDeferred(std::span<const IoJobView> active,
                                     std::span<const std::uint8_t> admitted,
                                     std::span<const double> rates,
                                     std::size_t candidate,
                                     double max_bandwidth_gbps,
                                     sim::SimTime now);

}  // namespace iosched::core
