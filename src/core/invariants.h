// From-scratch invariant checking for the chaos harness.
//
// The simulation keeps most of its aggregates incrementally: the storage
// model's total demand/grant/node sums, the machine's busy-node and
// busy-midplane counters, the burst buffer's queued volume and occupancy
// integral. Incremental bookkeeping is exactly what a fault path corrupts
// silently — an abort that forgets to unwind a sum never crashes, it just
// mis-accounts forever after. The InvariantChecker recomputes every such
// aggregate from first principles (scanning the live transfer set, the
// running-job partitions, the FIFO segments) and throws InvariantViolation
// on any mismatch, so a chaos run fails loudly at the first corrupted
// event instead of producing a subtly wrong report.
//
// The checker is strictly read-only: it never advances, mutates, or
// re-orders simulation state, so enabling it cannot change a run's digest.
// It plugs in twice: as a SchedEventSink it validates every job lifecycle
// transition as it happens, and CheckNow() (called by the engine every N
// events and once after the queue drains) runs the full recompute sweep.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <unordered_map>

#include "core/event_log.h"
#include "machine/machine.h"
#include "sched/batch_scheduler.h"
#include "sim/time.h"
#include "storage/burst_buffer.h"
#include "storage/storage_model.h"
#include "workload/job.h"

namespace iosched::core {

class IoScheduler;

/// A broken simulation invariant. Derives from std::logic_error: a
/// violation is always a bug in the engine (or the checker), never a
/// property of the workload or the fault schedule.
class InvariantViolation : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

class InvariantChecker : public SchedEventSink {
 public:
  /// All references must outlive the checker. `burst_buffer` may be null
  /// (single-tier runs).
  InvariantChecker(const machine::Machine& machine,
                   const storage::StorageModel& storage,
                   const sched::BatchScheduler& batch,
                   const storage::BurstBuffer* burst_buffer);

  /// Attach the I/O scheduler to extend the sweep with the checkpoint-flush
  /// lifecycle checks (parked-flush backlog conservation, parked jobs not
  /// simultaneously transferring, deadlines ordered after submission).
  /// Nullptr detaches. The scheduler must outlive the checker.
  void AttachIoScheduler(const IoScheduler* io_scheduler) {
    io_scheduler_ = io_scheduler;
  }

  /// Call when the checker observes the run from event zero (a fresh, not
  /// resumed, engine): enables the strict lifecycle census — every
  /// batch-scheduler queued/running job must be accounted for by the event
  /// stream. Without it, jobs already in flight at resume time are exempt.
  void MarkCompleteHistory() { complete_history_ = true; }

  /// Lifecycle-transition legality (e.g. kStart requires kQueued, kEnd
  /// requires running-and-not-mid-I/O). Throws InvariantViolation on an
  /// illegal transition; events for jobs first seen mid-stream (resumed
  /// runs) initialize state without judgement.
  void OnSchedEvent(const SchedEvent& event) override;

  /// The full recompute sweep; throws InvariantViolation on any mismatch.
  void CheckNow(sim::SimTime now);

  std::uint64_t checks_run() const { return checks_; }
  std::uint64_t events_seen() const { return events_; }

 private:
  /// Tracked job state, driven purely by the event stream.
  enum class JobPhase {
    kQueued,      // submitted or requeued, waiting to start
    kRunning,     // on a partition, in a compute phase
    kRunningIo,   // on a partition, blocked in an I/O request
    kFaultKilled, // fault-kill emitted; awaiting kRequeue or kAbandon
    kDone,        // ended, walltime-killed, or abandoned
  };

  void CheckStorage() const;
  void CheckMachine() const;
  void CheckBurstBuffer(sim::SimTime now);
  void CheckLifecycle() const;
  void CheckDeferredFlushes() const;
  /// Audit a planning policy's standing reservation table (well-formed
  /// intervals, active rates within BWmax, absorb promises within buffer
  /// capacity). No-op for greedy policies (empty table).
  void CheckPlanReservations() const;

  [[noreturn]] void Fail(sim::SimTime now, const std::string& what) const;

  const machine::Machine& machine_;
  const storage::StorageModel& storage_;
  const sched::BatchScheduler& batch_;
  const storage::BurstBuffer* burst_buffer_;
  const IoScheduler* io_scheduler_ = nullptr;

  std::unordered_map<workload::JobId, JobPhase> lifecycle_;
  bool complete_history_ = false;
  /// The occupancy integral is monotone non-decreasing; remember the last
  /// observed value to catch a fault path winding it backwards.
  double last_occupancy_integral_ = 0.0;
  sim::SimTime last_check_time_ = 0.0;
  std::uint64_t checks_ = 0;
  std::uint64_t events_ = 0;
};

}  // namespace iosched::core
