#include "core/predictive_policy.h"

#include <algorithm>

#include "core/conservative_policy.h"

namespace iosched::core {

const std::string& PredictivePolicy::name() const {
  static const std::string kName = "PREDICTIVE";
  return kName;
}

double PredictivePolicy::ReservedHeadroomGbps(
    double max_bandwidth_gbps) const {
  const PredictionState& p = prediction();
  if (!p.enabled || p.imminent_volume_gb <= 0.0) {
    return 0.0;
  }
  // Spread the predicted imminent volume over the horizon: reserving this
  // rate lets the forecast bursts drain within roughly one horizon once
  // they arrive, without handing them more than half the channel.
  double horizon = std::max(p.horizon_seconds, 1.0);
  return std::min(p.imminent_volume_gb / horizon,
                  kMaxHeadroomFraction * max_bandwidth_gbps);
}

std::vector<RateGrant> PredictivePolicy::Assign(
    std::span<const IoJobView> active, double max_bandwidth_gbps,
    sim::SimTime now) {
  std::vector<RateGrant> grants(active.size());
  for (std::size_t i = 0; i < active.size(); ++i) {
    grants[i] = {active[i].id, 0.0};
  }
  if (active.empty()) return grants;

  double budget =
      max_bandwidth_gbps - ReservedHeadroomGbps(max_bandwidth_gbps);

  std::vector<bool> admitted(active.size(), false);
  std::size_t admitted_count = 0;

  // Same demand capping as the conservative family: a solo-saturating job
  // (b*N_i > BWmax) counts as BWmax so it can be admitted at the head of
  // the order instead of starving.
  auto demand = [&](const IoJobView& v) {
    return std::min(v.full_rate_gbps, max_bandwidth_gbps);
  };

  std::vector<std::size_t> priority =
      ConservativePriorityOrder(active, ConservativeOrder::kFcfs, now);
  double available = budget;
  for (std::size_t i : priority) {
    if (demand(active[i]) <= available) {
      admitted[i] = true;
      ++admitted_count;
      available -= demand(active[i]);
    }
  }

  if (admitted_count == 0) {
    // Starvation guard (reservation-proof): when nothing fits the reduced
    // budget, the head job is admitted against the full BWmax, so a
    // predicted storm can delay discretionary admissions but never stall
    // the queue outright.
    std::size_t head = priority.front();
    grants[head].rate_gbps =
        std::min(active[head].full_rate_gbps, max_bandwidth_gbps);
    return grants;
  }

  for (std::size_t i = 0; i < active.size(); ++i) {
    if (admitted[i]) {
      grants[i].rate_gbps =
          std::min(active[i].full_rate_gbps, max_bandwidth_gbps);
    }
  }
  return grants;
}

}  // namespace iosched::core
