#include "core/event_log.h"

#include <algorithm>
#include <ostream>
#include <stdexcept>

#include "util/csv.h"
#include "util/units.h"

namespace iosched::core {

const char* ToString(SchedEventKind kind) {
  switch (kind) {
    case SchedEventKind::kSubmit: return "submit";
    case SchedEventKind::kStart: return "start";
    case SchedEventKind::kIoRequest: return "io_request";
    case SchedEventKind::kIoComplete: return "io_complete";
    case SchedEventKind::kEnd: return "end";
    case SchedEventKind::kKill: return "kill";
    case SchedEventKind::kFaultKill: return "fault_kill";
    case SchedEventKind::kRequeue: return "requeue";
    case SchedEventKind::kAbandon: return "abandon";
  }
  return "?";
}

void EventLog::Append(sim::SimTime time, SchedEventKind kind,
                      workload::JobId job, double detail) {
  if (!events_.empty() && time < events_.back().time - util::kTimeEpsilon) {
    throw std::logic_error("EventLog: time went backwards");
  }
  events_.push_back(SchedEvent{time, kind, job, detail});
}

std::vector<SchedEvent> EventLog::OfKind(SchedEventKind kind) const {
  std::vector<SchedEvent> out;
  for (const SchedEvent& e : events_) {
    if (e.kind == kind) out.push_back(e);
  }
  return out;
}

std::vector<SchedEvent> EventLog::Sorted() const {
  std::vector<SchedEvent> out = events_;
  std::stable_sort(out.begin(), out.end(),
                   [](const SchedEvent& a, const SchedEvent& b) {
                     if (a.time != b.time) return a.time < b.time;
                     if (a.kind != b.kind) {
                       return static_cast<int>(a.kind) <
                              static_cast<int>(b.kind);
                     }
                     return a.job < b.job;
                   });
  return out;
}

void EventLog::WriteCsv(std::ostream& out) const {
  util::CsvWriter csv(out);
  csv.Header({"time", "event", "job", "detail"});
  for (const SchedEvent& e : Sorted()) {
    csv.Row()
        .Add(e.time)
        .Add(std::string_view(ToString(e.kind)))
        .Add(static_cast<long long>(e.job))
        .Add(e.detail);
  }
}

void EventLog::SaveState(ckpt::Writer& w) const {
  w.U32(static_cast<std::uint32_t>(events_.size()));
  for (const SchedEvent& e : events_) {
    w.F64(e.time);
    w.U8(static_cast<std::uint8_t>(e.kind));
    w.I64(e.job);
    w.F64(e.detail);
  }
}

void EventLog::RestoreState(ckpt::Reader& r) {
  events_.resize(r.U32());
  for (SchedEvent& e : events_) {
    e.time = r.F64();
    e.kind = static_cast<SchedEventKind>(r.U8());
    e.job = r.I64();
    e.detail = r.F64();
  }
}

}  // namespace iosched::core
