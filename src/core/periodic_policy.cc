#include "core/periodic_policy.h"

#include <algorithm>
#include <cmath>

#include "ckpt/serializer.h"
#include "util/units.h"

namespace iosched::core {

const std::string& PeriodicPolicy::name() const {
  static const std::string kName = "PERIODIC";
  return kName;
}

IoPlan PeriodicPolicy::Plan(const PlanContext& ctx) {
  slice_seconds_ = ctx.slice_seconds > 0.0 ? ctx.slice_seconds
                                           : kDefaultSliceSeconds;
  double window = ctx.window_seconds > 0.0 ? ctx.window_seconds
                                           : kDefaultWindowSeconds;
  anchor_ = ctx.now;
  valid_until_ = ctx.now + window;

  rotation_.clear();
  rotation_.reserve(ctx.active.size());
  for (const IoJobView& v : ctx.active) {
    rotation_.push_back(v.id);
  }
  members_ = rotation_;
  std::sort(members_.begin(), members_.end());

  IoPlan plan;
  plan.valid_until = valid_until_;
  plan.planned_items = rotation_.size();
  return plan;
}

workload::JobId PeriodicPolicy::SliceOwner(sim::SimTime now) const {
  if (rotation_.empty()) return 0;
  double offset = now - anchor_;
  if (offset < 0.0) offset = 0.0;
  auto slice = static_cast<std::uint64_t>(offset / slice_seconds_);
  return rotation_[slice % rotation_.size()];
}

std::vector<RateGrant> PeriodicPolicy::Execute(const PlanContext& ctx,
                                               const PlanCursor& cursor) {
  (void)cursor;
  std::vector<RateGrant> grants(ctx.active.size());
  for (std::size_t i = 0; i < ctx.active.size(); ++i) {
    grants[i] = {ctx.active[i].id, 0.0};
  }
  if (ctx.active.empty()) return grants;

  double budget = ctx.max_bandwidth_gbps;

  // The slice owner drinks first: O(1) pattern lookup, then one pass over
  // the views to locate its grant slot.
  workload::JobId owner = SliceOwner(ctx.now);
  if (owner != 0) {
    for (std::size_t i = 0; i < ctx.active.size(); ++i) {
      if (ctx.active[i].id != owner) continue;
      double r = std::min(ctx.active[i].full_rate_gbps, budget);
      grants[i].rate_gbps = r;
      budget -= r;
      break;
    }
  }

  // Residual channel: FCFS water-fill over the remaining transfers so the
  // PFS never idles inside a slice its owner cannot fill.
  for (std::size_t i = 0; i < ctx.active.size(); ++i) {
    if (budget <= util::kVolumeEpsilon) break;
    if (ctx.active[i].id == owner) continue;
    double r = std::min(ctx.active[i].full_rate_gbps, budget);
    grants[i].rate_gbps = r;
    budget -= r;
  }
  return grants;
}

bool PeriodicPolicy::PlanInvalidated(const PlanContext& ctx) const {
  // The pattern is recomputed whenever the application mix changes: any
  // arrival or departure relative to the planned rotation invalidates it.
  if (ctx.active.size() != members_.size()) return true;
  for (const IoJobView& v : ctx.active) {
    if (!std::binary_search(members_.begin(), members_.end(), v.id)) {
      return true;
    }
  }
  return false;
}

sim::SimTime PeriodicPolicy::NextPlanEvent(const PlanContext& ctx) const {
  // No standing traffic: no wakeup, or an idle simulation would never
  // drain its event queue.
  if (ctx.active.empty() || rotation_.empty()) return sim::kTimeInfinity;
  double offset = ctx.now - anchor_;
  if (offset < 0.0) offset = 0.0;
  auto slice = static_cast<std::uint64_t>(offset / slice_seconds_);
  sim::SimTime boundary =
      anchor_ + static_cast<double>(slice + 1) * slice_seconds_;
  return std::min(boundary, valid_until_);
}

void PeriodicPolicy::SaveState(ckpt::Writer& w) const {
  w.F64(anchor_);
  w.F64(slice_seconds_);
  w.F64(valid_until_);
  w.U64(rotation_.size());
  for (workload::JobId id : rotation_) {
    w.I64(id);
  }
}

void PeriodicPolicy::RestoreState(ckpt::Reader& r) {
  anchor_ = r.F64();
  slice_seconds_ = r.F64();
  valid_until_ = r.F64();
  rotation_.resize(r.U64());
  for (workload::JobId& id : rotation_) {
    id = r.I64();
  }
  members_ = rotation_;
  std::sort(members_.begin(), members_.end());
}

}  // namespace iosched::core
