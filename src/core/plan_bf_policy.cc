#include "core/plan_bf_policy.h"

#include <algorithm>
#include <cmath>

#include "ckpt/serializer.h"
#include "util/units.h"

namespace iosched::core {

const std::string& PlanBfPolicy::name() const {
  static const std::string kName = "PLAN_BF";
  return kName;
}

IoPlan PlanBfPolicy::Plan(const PlanContext& ctx) {
  reservations_.clear();
  double window = ctx.window_seconds > 0.0 ? ctx.window_seconds
                                           : kDefaultWindowSeconds;
  valid_until_ = ctx.now + window;

  static const CycleInputs kNoInputs;
  const CycleInputs& in = ctx.inputs != nullptr ? *ctx.inputs : kNoInputs;

  // Promised rates are budgeted cumulatively (ignoring that reservations
  // may be disjoint in time): conservative, and it guarantees the audited
  // "active rates within BWmax" invariant for every instant, not just now.
  double rate_budget = ctx.max_bandwidth_gbps;
  double bb_avail = 0.0;
  plan_drain_gbps_ = 0.0;
  plan_bb_capacity_gb_ = 0.0;
  if (in.tiers.bb_enabled) {
    bb_avail =
        std::max(0.0, in.tiers.bb_capacity_gb - in.tiers.bb_queued_gb);
    plan_drain_gbps_ = std::max(0.0, in.tiers.drain_gbps);
    plan_bb_capacity_gb_ = in.tiers.bb_capacity_gb;
  }

  // Infrastructure reservation: the drain backlog holds its carve-out of
  // the PFS channel until the queue clears.
  if (in.tiers.bb_enabled && in.tiers.bb_queued_gb > util::kVolumeEpsilon &&
      in.tiers.drain_gbps > util::kVolumeEpsilon) {
    PlanReservation drain;
    drain.job = 0;
    drain.start = ctx.now;
    drain.end = ctx.now + in.tiers.bb_queued_gb / in.tiers.drain_gbps;
    drain.rate_gbps = in.tiers.drain_gbps;
    reservations_.push_back(drain);
  }

  // One reservation per predicted burst due within the window, nearest
  // first. `upcoming` is sorted by job id; re-rank by (eta, id) so the
  // bursts that arrive first get first claim on the budget.
  std::vector<std::size_t> order;
  order.reserve(in.prediction.upcoming.size());
  for (std::size_t i = 0; i < in.prediction.upcoming.size(); ++i) {
    if (in.prediction.upcoming[i].eta_seconds <= window) order.push_back(i);
  }
  // Rate promises are starvation floors, not priority boosts: each burst's
  // floor is capped at its fair share of the channel across the window's
  // reserved bursts. A floor above fair share would let whichever jobs the
  // predictor happens to see next crowd fair-share traffic out of the
  // channel — measured on the BB-constrained month, that costs far more
  // mean wait than promise-keeping wins. The real teeth of a reservation
  // are its absorb promise (AdmitBackfill) and the drain carve-out.
  double fair_floor_gbps =
      order.empty() ? 0.0
                    : ctx.max_bandwidth_gbps /
                          static_cast<double>(order.size());
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    const PredictedBurst& pa = in.prediction.upcoming[a];
    const PredictedBurst& pb = in.prediction.upcoming[b];
    if (pa.eta_seconds != pb.eta_seconds) {
      return pa.eta_seconds < pb.eta_seconds;
    }
    return pa.id < pb.id;
  });

  for (std::size_t i : order) {
    const PredictedBurst& burst = in.prediction.upcoming[i];
    if (burst.volume_gb <= util::kVolumeEpsilon) continue;
    double rate = std::min({burst.rate_gbps, fair_floor_gbps, rate_budget});
    if (rate <= util::kVolumeEpsilon) break;  // channel fully promised

    PlanReservation res;
    res.job = burst.id;
    res.start = ctx.now + burst.eta_seconds;
    res.end = res.start + burst.volume_gb / rate;
    res.rate_gbps = rate;
    if (in.tiers.bb_enabled) {
      res.bb_gb = std::min(burst.volume_gb, bb_avail);
      bb_avail -= res.bb_gb;
    }
    rate_budget -= rate;
    reservations_.push_back(res);
  }

  IoPlan plan;
  plan.valid_until = valid_until_;
  plan.planned_items = reservations_.size();
  return plan;
}

std::vector<RateGrant> PlanBfPolicy::Execute(const PlanContext& ctx,
                                             const PlanCursor& cursor) {
  (void)cursor;
  std::vector<RateGrant> grants(ctx.active.size());
  for (std::size_t i = 0; i < ctx.active.size(); ++i) {
    grants[i] = {ctx.active[i].id, 0.0};
  }
  if (ctx.active.empty()) return grants;

  // Rate promised to each job by reservations active right now. A promise
  // is honored at the *reserved* rate — granting reserved transfers their
  // full demand instead would let a late-arriving reservation crowd the
  // FCFS head out of the channel entirely, which costs far more wait than
  // the promise protects.
  std::vector<std::pair<workload::JobId, double>> reserved;
  for (const PlanReservation& res : reservations_) {
    if (res.job != 0 && res.start <= ctx.now && ctx.now < res.end) {
      reserved.emplace_back(res.job, res.rate_gbps);
    }
  }
  std::sort(reserved.begin(), reserved.end());

  double budget = ctx.max_bandwidth_gbps;
  bool any = false;

  // Pass 1: promised transfers drink their reserved rate first, in FCFS
  // order among themselves.
  for (std::size_t i = 0; i < ctx.active.size(); ++i) {
    double promised = 0.0;
    for (const auto& [job, rate] : reserved) {
      if (job == ctx.active[i].id) promised += rate;
    }
    if (promised <= 0.0) continue;
    double r = std::min({ctx.active[i].full_rate_gbps, promised, budget});
    if (r <= util::kVolumeEpsilon) continue;
    grants[i].rate_gbps = r;
    budget -= r;
    any = true;
  }

  // Pass 2: max-min water-fill of the residual budget over the remaining
  // demand (full rate net of any promise already granted). Ascending-
  // demand progressive filling, so slack from transfers that cannot use
  // their share flows to the bigger ones and the channel stays saturated.
  std::vector<std::size_t> by_demand(ctx.active.size());
  for (std::size_t i = 0; i < by_demand.size(); ++i) by_demand[i] = i;
  std::sort(by_demand.begin(), by_demand.end(),
            [&](std::size_t a, std::size_t b) {
              double da = ctx.active[a].full_rate_gbps - grants[a].rate_gbps;
              double db = ctx.active[b].full_rate_gbps - grants[b].rate_gbps;
              if (da != db) return da < db;
              return ctx.active[a].id < ctx.active[b].id;
            });
  std::size_t left = ctx.active.size();
  for (std::size_t i : by_demand) {
    double share = budget / static_cast<double>(left);
    double demand =
        std::min(ctx.active[i].full_rate_gbps, ctx.max_bandwidth_gbps) -
        grants[i].rate_gbps;
    double r = std::min(std::max(demand, 0.0), share);
    if (r > util::kVolumeEpsilon) {
      grants[i].rate_gbps += r;
      budget -= r;
      any = true;
    }
    --left;
  }

  if (!any) {
    // Starvation guard: a solo-saturating head job still runs.
    grants[0].rate_gbps =
        std::min(ctx.active[0].full_rate_gbps, ctx.max_bandwidth_gbps);
  }
  return grants;
}

sim::SimTime PlanBfPolicy::NextPlanEvent(const PlanContext& ctx) const {
  // No standing traffic: no wakeup, or an idle simulation would never
  // drain its event queue.
  if (ctx.active.empty()) return sim::kTimeInfinity;
  sim::SimTime next = valid_until_;
  for (const PlanReservation& res : reservations_) {
    if (res.start > ctx.now) next = std::min(next, res.start);
    if (res.end > ctx.now) next = std::min(next, res.end);
  }
  return next;
}

bool PlanBfPolicy::AdmitBackfill(const workload::Job& job, sim::SimTime now,
                                 double projected_free_bb_gb) const {
  (void)now;
  if (!std::isfinite(projected_free_bb_gb)) return true;  // single tier
  double largest_burst_gb = 0.0;
  for (const workload::Phase& phase : job.phases) {
    largest_burst_gb = std::max(largest_burst_gb, phase.io_volume_gb);
  }
  if (largest_burst_gb <= util::kVolumeEpsilon) return true;
  // A burst no buffer state could ever hold takes the direct PFS path
  // whenever the job runs; holding the job back protects nothing.
  if (largest_burst_gb > plan_bb_capacity_gb_) return true;
  return largest_burst_gb <=
         projected_free_bb_gb - PendingAbsorbGb(now) + util::kVolumeEpsilon;
}

double PlanBfPolicy::CommittedAbsorbGb() const {
  double total = 0.0;
  for (const PlanReservation& res : reservations_) {
    total += res.bb_gb;
  }
  return total;
}

double PlanBfPolicy::PendingAbsorbGb(sim::SimTime now) const {
  // A burst absorbing over [start, end) raises occupancy by its volume
  // minus what the drain clears meanwhile; promises already fully absorbed
  // (end <= now) live in the drain queue and are priced by the projection,
  // not here.
  double total = 0.0;
  for (const PlanReservation& res : reservations_) {
    if (res.job == 0 || res.bb_gb <= 0.0 || res.end <= now) continue;
    double drained = plan_drain_gbps_ * (res.end - res.start);
    total += std::max(0.0, res.bb_gb - drained);
  }
  return total;
}

void PlanBfPolicy::SaveState(ckpt::Writer& w) const {
  w.F64(valid_until_);
  w.F64(plan_drain_gbps_);
  w.F64(plan_bb_capacity_gb_);
  w.U64(reservations_.size());
  for (const PlanReservation& res : reservations_) {
    w.I64(res.job);
    w.F64(res.start);
    w.F64(res.end);
    w.F64(res.rate_gbps);
    w.F64(res.bb_gb);
  }
}

void PlanBfPolicy::RestoreState(ckpt::Reader& r) {
  valid_until_ = r.F64();
  plan_drain_gbps_ = r.F64();
  plan_bb_capacity_gb_ = r.F64();
  reservations_.resize(r.U64());
  for (PlanReservation& res : reservations_) {
    res.job = r.I64();
    res.start = r.F64();
    res.end = r.F64();
    res.rate_gbps = r.F64();
    res.bb_gb = r.F64();
  }
}

}  // namespace iosched::core
