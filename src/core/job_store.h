// Slot-stable store for per-job runtime accounting (ROADMAP item 3).
//
// The I/O scheduler keeps one JobContext per running job and reads it on
// every scheduling cycle while building policy views — previously via an
// unordered_map probe per active transfer. JobStore keeps the contexts in a
// dense vector with a free list: a job's slot is stable for the whole time
// it is registered, so the storage model can cache the slot on the transfer
// (StorageModel::SetUserSlot) and the cycle's view building becomes pure
// array indexing. The id hash index remains for the cold paths
// (register/unregister/checkpoint).
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "sim/time.h"
#include "workload/job.h"

namespace iosched::core {

/// Per-running-job accounting the slowdown metrics need.
struct JobContext {
  const workload::Job* job = nullptr;
  sim::SimTime start_time = 0.0;
  double completed_compute_seconds = 0.0;
  double completed_io_seconds = 0.0;  // uncongested equivalents
  /// When the job's last I/O request finished (start_time before the first
  /// one) — anchors the predictor's next-burst ETA estimate.
  sim::SimTime last_io_end_time = 0.0;
};

/// Dense JobContext store with stable slots. Add returns the slot; the slot
/// stays valid (and addresses the same job's context) until Remove, after
/// which it may be reused by a later Add.
class JobStore {
 public:
  static constexpr std::uint32_t kInvalidSlot = 0xffffffffu;

  /// Register `id`; throws std::logic_error when already present.
  std::uint32_t Add(workload::JobId id, const JobContext& ctx);

  /// Remove `id`, freeing its slot for reuse; throws when absent.
  void Remove(workload::JobId id);

  /// Slot of `id`, or kInvalidSlot when absent. O(1) hash probe.
  std::uint32_t SlotOf(workload::JobId id) const;

  /// Context at `slot` — O(1) array indexing, no hashing. The slot must be
  /// live (returned by Add and not yet Removed).
  JobContext& At(std::uint32_t slot) { return contexts_[slot]; }
  const JobContext& At(std::uint32_t slot) const { return contexts_[slot]; }

  /// Context of `id`, or nullptr when absent.
  JobContext* Find(workload::JobId id);
  const JobContext* Find(workload::JobId id) const;

  bool Contains(workload::JobId id) const {
    return index_.find(id) != index_.end();
  }
  std::size_t size() const { return index_.size(); }

  /// Live job ids, ascending — the deterministic checkpoint order. Clears
  /// and refills `out` (caller-owned scratch).
  void SortedIds(std::vector<workload::JobId>& out) const;

  void Clear();

 private:
  std::vector<JobContext> contexts_;
  std::vector<std::uint32_t> free_slots_;
  std::unordered_map<workload::JobId, std::uint32_t> index_;
};

}  // namespace iosched::core
