#include "core/baseline_policy.h"

#include <algorithm>
#include <vector>

namespace iosched::core {

namespace {
/// Grants everyone their full rate when total demand fits.
bool TryUncongested(std::span<const IoJobView> active,
                    double max_bandwidth_gbps,
                    std::vector<RateGrant>& grants) {
  double total_demand = 0.0;
  for (const IoJobView& v : active) total_demand += v.full_rate_gbps;
  if (total_demand > max_bandwidth_gbps) return false;
  grants.reserve(active.size());
  for (const IoJobView& v : active) {
    grants.push_back({v.id, v.full_rate_gbps});
  }
  return true;
}
}  // namespace

const std::string& BaselinePolicy::name() const {
  static const std::string kName = "BASE_LINE";
  return kName;
}

std::vector<RateGrant> BaselinePolicy::Assign(
    std::span<const IoJobView> active, double max_bandwidth_gbps,
    sim::SimTime now) {
  (void)now;
  std::vector<RateGrant> grants;
  if (active.empty() || TryUncongested(active, max_bandwidth_gbps, grants)) {
    return grants;
  }
  // Congestion: static even split. Applications that need less than their
  // slice leave it idle (the round-robin reference point of Section IV-D).
  double slice = max_bandwidth_gbps / static_cast<double>(active.size());
  grants.reserve(active.size());
  for (const IoJobView& v : active) {
    grants.push_back({v.id, std::min(v.full_rate_gbps, slice)});
  }
  return grants;
}

const std::string& MaxMinPolicy::name() const {
  static const std::string kName = "BASE_LINE_MAXMIN";
  return kName;
}

std::vector<RateGrant> MaxMinPolicy::Assign(std::span<const IoJobView> active,
                                            double max_bandwidth_gbps,
                                            sim::SimTime now) {
  (void)now;
  std::vector<RateGrant> grants;
  if (active.empty() || TryUncongested(active, max_bandwidth_gbps, grants)) {
    return grants;
  }
  // Max-min fairness: ascending-demand progressive filling; slack from
  // applications that cannot use their slice flows to the bigger ones.
  std::vector<std::size_t> by_demand(active.size());
  for (std::size_t i = 0; i < by_demand.size(); ++i) by_demand[i] = i;
  std::sort(by_demand.begin(), by_demand.end(),
            [&](std::size_t a, std::size_t b) {
              if (active[a].full_rate_gbps != active[b].full_rate_gbps) {
                return active[a].full_rate_gbps < active[b].full_rate_gbps;
              }
              return active[a].id < active[b].id;
            });
  grants.resize(active.size());
  double remaining = max_bandwidth_gbps;
  std::size_t left = active.size();
  for (std::size_t i : by_demand) {
    double share = remaining / static_cast<double>(left);
    double rate = std::min(active[i].full_rate_gbps, share);
    grants[i] = {active[i].id, rate};
    remaining -= rate;
    --left;
  }
  return grants;
}

}  // namespace iosched::core
