// Job-performance quantification under I/O congestion (paper Section
// III-C.1, Equations 1 and 2).
#pragma once

#include "core/io_policy.h"
#include "sim/time.h"

namespace iosched::core {

/// Cap applied when a slowdown is undefined/unbounded (no data transferred
/// yet): such a request has been starved completely and sorts last among
/// "low slowdown first" orderings, matching the equations' limits.
inline constexpr double kSlowdownCap = 1e12;

/// InstSld (Eq. 1): ratio of the data the job could have moved at full rate
/// since this request started to the data it actually moved. 1 = no
/// interference; grows as the request is suspended or squeezed.
///   InstSld = b*N_i*(t - t_io) / W_{i,k}
/// Edge cases: at t == t_io the request just arrived -> 1. W == 0 with
/// elapsed time -> kSlowdownCap.
double InstantSlowdown(const IoJobView& view, sim::SimTime now);

/// AggrSld (Eq. 2): total elapsed lifetime over the congestion-free time of
/// everything the job has executed so far:
///   AggrSld = (t - t_start) / (sum_{j<=k} T_com + sum_{j<k} T_io)
/// Edge case: zero denominator (job started with I/O immediately) ->
/// kSlowdownCap unless the numerator is also ~0, which gives 1.
double AggregateSlowdown(const IoJobView& view, sim::SimTime now);

}  // namespace iosched::core
