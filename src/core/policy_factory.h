// Construction of I/O policies by their figure names.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/io_policy.h"

namespace iosched::core {

/// Policy names exactly as the paper's figures label them, plus the
/// prediction-aware extensions (which have no paper series).
/// {"BASE_LINE", "FCFS", "MAX_UTIL", "MIN_INST_SLD", "MIN_AGGR_SLD",
///  "ADAPTIVE", "PREDICTIVE", "PREDICTIVE_ADAPTIVE"}.
const std::vector<std::string>& AllPolicyNames();

/// Build a policy by name (case-insensitive); throws std::invalid_argument
/// for unknown names.
std::unique_ptr<IoPolicy> MakePolicy(const std::string& name);

}  // namespace iosched::core
