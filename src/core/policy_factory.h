// Construction of I/O policies by their figure names. This registry is the
// single source of truth for policy names: the CLI's --policy flag, the INI
// [simulation] policy key, driver SweepSpecs, and the bench figures all
// resolve names through it, and an unknown name always fails with the full
// list of valid options.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/io_policy.h"

namespace iosched::core {

/// Policy names exactly as the paper's figures label them, plus the
/// prediction-aware extensions (which have no paper series).
/// {"BASE_LINE", "FCFS", "MAX_UTIL", "MIN_INST_SLD", "MIN_AGGR_SLD",
///  "ADAPTIVE", "PREDICTIVE", "PREDICTIVE_ADAPTIVE"}.
/// The planning family is deliberately NOT in this list: sweeps, chaos
/// runs, and bench figures that iterate "all policies" mean the paper's
/// greedy family; planners are opted into by name.
const std::vector<std::string>& AllPolicyNames();

/// The planning (two-phase, finite-horizon) policy family:
/// {"PERIODIC", "PLAN_BF"}.
const std::vector<std::string>& PlanningPolicyNames();

/// True when `name` (case-insensitive, including aliases) names a policy
/// MakePolicy can build.
bool KnownPolicyName(const std::string& name);

/// True when `name` builds a planning (WantsPlanning) policy; false for
/// greedy policies and unknown names.
bool IsPlanningPolicyName(const std::string& name);

/// One "NAME|NAME|..." string over both families, for error messages and
/// CLI help text.
std::string PolicyNamesHelp();

/// Build a policy by name (case-insensitive); throws std::invalid_argument
/// listing the valid options for unknown names.
std::unique_ptr<IoPolicy> MakePolicy(const std::string& name);

}  // namespace iosched::core
