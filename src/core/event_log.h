// Scheduling event log: the Qsim-style output trace.
//
// Qsim "replays the job scheduling ... and generates a new sequence of
// scheduling events as an output log". This module is that output side: a
// time-ordered record of every externally visible scheduling event, which
// downstream tooling (or a site's accounting pipeline) can consume as CSV.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "ckpt/serializer.h"
#include "sim/time.h"
#include "workload/job.h"

namespace iosched::core {

enum class SchedEventKind {
  kSubmit,      // job entered the wait queue
  kStart,       // partition allocated, job began executing
  kIoRequest,   // job issued an I/O request (detail = volume GB)
  kIoComplete,  // the request finished (detail = volume GB)
  kEnd,         // job completed all phases
  kKill,        // job terminated at its walltime limit
  kFaultKill,   // job killed by fault injection (detail = retries so far)
  kRequeue,     // killed job re-queued (detail = backoff eligible time)
  kAbandon,     // retry budget exhausted; job permanently failed
};

const char* ToString(SchedEventKind kind);

struct SchedEvent {
  sim::SimTime time = 0.0;
  SchedEventKind kind = SchedEventKind::kSubmit;
  workload::JobId job = 0;
  /// Kind-specific payload (I/O volume in GB; nodes for kStart).
  double detail = 0.0;
};

/// Consumer of the engine's scheduling-event stream. The engine emits every
/// event once through a single point; the EventLog, the observability trace
/// adapter, and any future consumer each implement this interface instead
/// of owning a private hook.
class SchedEventSink {
 public:
  virtual ~SchedEventSink() = default;
  virtual void OnSchedEvent(const SchedEvent& event) = 0;
};

class EventLog : public SchedEventSink {
 public:
  void Append(sim::SimTime time, SchedEventKind kind, workload::JobId job,
              double detail = 0.0);

  void OnSchedEvent(const SchedEvent& event) override {
    Append(event.time, event.kind, event.job, event.detail);
  }

  const std::vector<SchedEvent>& events() const { return events_; }
  std::size_t size() const { return events_.size(); }
  bool empty() const { return events_.empty(); }

  /// Events of one kind, in time order.
  std::vector<SchedEvent> OfKind(SchedEventKind kind) const;

  /// Events in canonical output order: (time, kind, job id). Insertion
  /// order of same-timestamp events depends on event-queue pop order — an
  /// implementation detail that has already changed once (the heap
  /// compaction rework) — so emission sorts with a deterministic tie-break
  /// instead of leaking it.
  std::vector<SchedEvent> Sorted() const;

  /// CSV: time,kind,job,detail — rows in Sorted() order.
  void WriteCsv(std::ostream& out) const;

  /// Serialize the accumulated event stream (insertion order).
  void SaveState(ckpt::Writer& w) const;
  void RestoreState(ckpt::Reader& r);

 private:
  std::vector<SchedEvent> events_;
};

}  // namespace iosched::core
