// 0-1 knapsack solver for the Cons-MaxUtil policy (paper Section III-C.2).
//
// Cons-MaxUtil selects the subset of I/O-ready jobs whose aggregate
// bandwidth demand fits within BWmax while maximizing the number of compute
// nodes kept busy. The paper (following the authors' earlier power-aware
// work) casts this as 0-1 knapsack solved by dynamic programming in
// pseudo-polynomial time. Weights (bandwidth demands) are discretised to a
// configurable unit; rounding weights *up* keeps every solution feasible.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace iosched::core {

struct KnapsackItem {
  /// Bandwidth demand (GB/s).
  double weight = 0.0;
  /// Objective contribution (compute nodes for MaxUtil).
  double value = 0.0;
};

struct KnapsackSolution {
  /// Indices into the input item span, ascending.
  std::vector<std::size_t> selected;
  double total_value = 0.0;
  double total_weight = 0.0;
};

/// Solve max sum(value) s.t. sum(weight) <= capacity, each item 0/1.
/// `unit` is the discretisation granularity in GB/s (default 1.0; Mira's
/// BWmax of 250 GB/s gives a 250-column DP table). Items with weight > the
/// capacity are never selected. Deterministic tie-break: among equal-value
/// solutions the DP prefers not taking later items, so earlier (FCFS-order)
/// items win ties.
KnapsackSolution SolveKnapsack01(std::span<const KnapsackItem> items,
                                 double capacity, double unit = 1.0);

}  // namespace iosched::core
