// Incrementally maintained wait-queue order (ROADMAP item 3).
//
// OrderQueue() recomputes the full service order from scratch on every
// dispatch pass — an O(n log n) sort that dominates the scheduling cycle at
// deep queue depths. WaitQueue keeps the order standing between passes and
// exploits two structural facts:
//
//  * FCFS order is (submit_time, id) — independent of `now` — so it can be
//    maintained at insert time and a dispatch pass costs zero comparator
//    invocations.
//  * WFP scores are monotone in wait time: for any two queued jobs the score
//    curves c_a(x - s_a)^3 and c_b(x - s_b)^3 cross at most once as `now`
//    advances, so consecutive passes see a nearly sorted sequence. An
//    adaptive insertion re-sort from the previous pass's order runs in
//    O(n + inversions), falling back to std::sort when the displacement
//    budget is exhausted (rare: mass requeues after an outage).
//
// The comparator is a strict total order (ties break by submit time then by
// unique id), so every comparison sort yields the identical sequence — the
// incremental order is exactly equal, element for element, to the full
// re-sort's. tests/sched/wait_queue_test.cc proves this property under
// randomized arrivals/completions/requeues.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "sched/queue_policy.h"
#include "sim/time.h"
#include "workload/job.h"

namespace iosched::sched {

/// Standing service-order structure for the batch scheduler's wait queue.
class WaitQueue {
 public:
  /// One queued job plus everything the dispatch pass needs, cached so the
  /// hot loop never dereferences the Job or re-derives machine geometry.
  struct Entry {
    const workload::Job* job = nullptr;
    sim::SimTime submit_time = 0.0;
    workload::JobId id = 0;
    /// max(1, requested_walltime) — WfpScore's clamp, cached once.
    double walltime = 1.0;
    double nodes = 0.0;
    /// Allocation block size (nodes) for this job; a pure function of
    /// job->nodes, cached to spare the backfill loop a lookup per probe.
    int block_nodes = 0;
    /// Score as of the most recent Ordered() call; WFP only.
    double score = 0.0;
  };

  explicit WaitQueue(QueueOrder order) : order_(order) {}

  /// Add a job. FCFS inserts at its (submit_time, id) position; WFP appends
  /// (the next Ordered() pass places it — a fresh submission has score 0 and
  /// belongs at the tail anyway).
  void Insert(const workload::Job& job, int block_nodes);

  /// Drop a job by id; no-op when absent. Preserves the standing order of
  /// the remaining entries.
  void Remove(workload::JobId id);

  void Clear() { entries_.clear(); }

  /// Entries in service order at `now` (descending priority). The returned
  /// span is invalidated by Insert/Remove/Clear and by the next Ordered()
  /// call.
  std::span<const Entry> Ordered(sim::SimTime now);

  std::size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }
  QueueOrder order() const { return order_; }

  /// Comparator invocations consumed by the most recent Ordered() call.
  /// FCFS passes cost 0; a WFP pass over an already sorted queue costs
  /// n - 1. Regression tests pin these bounds.
  std::uint64_t last_pass_comparisons() const {
    return last_pass_comparisons_;
  }

 private:
  void SortByScore();

  QueueOrder order_;
  std::vector<Entry> entries_;
  std::uint64_t last_pass_comparisons_ = 0;
};

}  // namespace iosched::sched
