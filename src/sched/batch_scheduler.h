// Cobalt-like batch scheduler: wait-queue management, WFP/FCFS ordering,
// partition allocation, and EASY backfilling.
//
// The scheduler is a pure decision component: it holds the queue and the
// running set, and Schedule(now) returns the jobs to launch at `now`. The
// simulation loop (src/core/simulation.*) invokes it on every job submission
// and completion. Predicted end times come from requested walltimes — the
// same information the real Cobalt has; jobs whose runtime stretches past
// the estimate (I/O congestion!) simply hold their partitions longer, which
// is exactly the coupling the paper exploits.
#pragma once

#include <functional>
#include <optional>
#include <unordered_map>
#include <vector>

#include "ckpt/serializer.h"
#include "machine/machine.h"
#include "sched/queue_policy.h"
#include "sched/wait_queue.h"
#include "sim/time.h"
#include "util/rng.h"
#include "workload/job.h"

namespace iosched::obs {
class Hub;
}  // namespace iosched::obs

namespace iosched::sched {

/// A job holding a partition.
struct RunningJob {
  const workload::Job* job = nullptr;
  machine::Partition partition;
  sim::SimTime start_time = 0.0;
  /// start + requested walltime; scheduling estimate only.
  sim::SimTime predicted_end = 0.0;
};

/// A launch decision returned by Schedule().
struct StartDecision {
  const workload::Job* job = nullptr;
  machine::Partition partition;
};

class BatchScheduler {
 public:
  struct Options {
    QueueOrder order = QueueOrder::kWfp;
    /// EASY backfilling: reserve for the queue head, backfill jobs that do
    /// not delay the reservation. Off = plain first-fit in queue order that
    /// stops at the first blocked job.
    bool easy_backfill = true;
    /// Retry budget for failed (fault-killed) jobs: how many requeues one
    /// job may consume before it is abandoned. 0 = never requeue.
    int max_retries = 3;
    /// Base backoff before a requeued job becomes eligible again; doubles
    /// with each retry of the same job, capped at `max_backoff_seconds`.
    double requeue_backoff_seconds = 300.0;
    double max_backoff_seconds = 4.0 * 3600.0;
    /// Optional seeded jitter: each backoff is scaled by a uniform factor
    /// in [1 - f, 1 + f], decorrelating the requeue herd after a midplane
    /// outage. 0 disables (no RNG draws, bit-identical to the unjittered
    /// schedule).
    double backoff_jitter_fraction = 0.0;
    std::uint64_t backoff_jitter_seed = 1;
    /// Maintain the service order incrementally between dispatch passes
    /// (sched/wait_queue.h) instead of re-sorting the queue from scratch
    /// each pass. Both paths produce bit-identical schedules — the toggle
    /// exists so tests can diff them and benchmarks can measure the full
    /// re-sort reference. Excluded from the checkpoint config hash for the
    /// same reason.
    bool incremental_order = true;
  };

  /// `machine` must outlive the scheduler.
  BatchScheduler(machine::Machine& machine, Options options);

  /// Add a job to the wait queue.
  void Submit(const workload::Job& job);

  /// Decide which queued jobs start at `now`; partitions are allocated as a
  /// side effect. Call on every submission/completion event.
  std::vector<StartDecision> Schedule(sim::SimTime now);

  /// Release the partition of a finished job. Throws on unknown id.
  void OnJobEnd(workload::JobId id, sim::SimTime now);

  /// Outcome of a mid-run failure.
  struct RequeueDecision {
    /// False when the retry budget is exhausted: the job is abandoned and
    /// is no longer queued or running.
    bool requeued = false;
    /// Retry attempts consumed so far (1 after the first failure).
    int retries = 0;
    /// When the requeued job becomes eligible to start again (exponential
    /// backoff from the failure time); meaningless when !requeued.
    sim::SimTime eligible_time = 0.0;
  };

  /// A running job failed (fault kill): release its partition and either
  /// requeue it with exponential backoff or abandon it once the budget is
  /// spent. The caller owns restart semantics (which phases re-run). The
  /// caller must arm a scheduling pass at `eligible_time` — a backoff
  /// expiry wakes nobody by itself. Throws on unknown id.
  RequeueDecision OnJobFailed(workload::JobId id, sim::SimTime now);

  /// Earliest backoff expiry among queued-but-ineligible jobs, strictly
  /// after `now`; kTimeInfinity when every queued job is already eligible.
  sim::SimTime NextEligibleTime(sim::SimTime now) const;

  /// Attach observability (null detaches). The hub must outlive the
  /// scheduler or be detached first.
  void SetObs(obs::Hub* hub) { hub_ = hub; }

  /// Admission check consulted for each backfill candidate AFTER the
  /// geometric EASY probe passed: (job, now, shadow_time) -> may it start?
  /// Used by reservation-aware planning policies to veto backfills whose
  /// I/O bursts would not fit the projected burst-buffer capacity. Null
  /// (the default) admits everything — classic EASY. Must be deterministic.
  using BackfillAdmission = std::function<bool(
      const workload::Job&, sim::SimTime, sim::SimTime)>;
  void SetBackfillAdmission(BackfillAdmission admission) {
    backfill_admission_ = std::move(admission);
  }

  std::size_t queue_size() const { return queue_.size(); }
  std::size_t running_count() const { return running_.size(); }
  /// Comparator invocations consumed by the most recent incremental-order
  /// dispatch pass (0 until Schedule runs; see WaitQueue).
  std::uint64_t last_order_comparisons() const {
    return wait_queue_.last_pass_comparisons();
  }
  const std::unordered_map<workload::JobId, RunningJob>& running() const {
    return running_;
  }
  const Options& options() const { return options_; }

  /// Serialize queue order, running set, retry counters, and backoff gates
  /// (job pointers become ids). The machine's occupancy is saved by the
  /// Machine itself — restoring does NOT re-allocate partitions.
  void SaveState(ckpt::Writer& w) const;
  /// Restore onto a scheduler built with the same machine/options.
  /// `resolve` maps a job id back to its workload entry and must cover
  /// every saved id (throws otherwise).
  void RestoreState(
      ckpt::Reader& r,
      const std::function<const workload::Job*(workload::JobId)>& resolve);

 private:
  /// Earliest time the head job's block could be allocated, assuming
  /// running jobs end at their predicted ends; also reports the machine
  /// state snapshot at that time for the backfill feasibility test.
  sim::SimTime ShadowTime(const workload::Job& head, sim::SimTime now) const;

  /// True if starting `candidate` now cannot delay the reserved head job:
  /// either it finishes (per its walltime) before the shadow time, or the
  /// head job's block still fits with the candidate's partition occupied
  /// at shadow time.
  bool BackfillOk(const workload::Job& candidate,
                  const machine::Partition& candidate_partition,
                  const workload::Job& head, sim::SimTime now,
                  sim::SimTime shadow) const;

  /// One eligible queue entry in service order, with the allocation block
  /// size cached so the backfill loop never re-derives machine geometry.
  struct Candidate {
    const workload::Job* job = nullptr;
    int block_nodes = 0;
  };

  /// True when `id` is still inside its requeue backoff at `now`.
  bool InBackoff(workload::JobId id, sim::SimTime now) const;

  machine::Machine& machine_;
  Options options_;
  /// Submission-order view of the wait queue: checkpoint layout and the
  /// NextEligibleTime scan key off it. The service order lives in
  /// wait_queue_ and is maintained incrementally.
  std::vector<const workload::Job*> queue_;
  WaitQueue wait_queue_;
  std::unordered_map<workload::JobId, RunningJob> running_;
  /// Reusable machine snapshot for ShadowTime/BackfillOk probes; copy-assign
  /// reuses its buffers instead of heap-allocating a fresh Machine per
  /// probe (millions of probes per replay).
  mutable machine::Machine probe_scratch_;
  /// Per-pass scratch for the ordered eligible candidates.
  std::vector<Candidate> candidates_;
  /// Overflow-safe clamped exponential backoff for retry attempt `retries`
  /// (1-based), with the optional seeded jitter applied.
  double BackoffDelay(int retries);

  /// Retry attempts consumed per job (erased on successful completion).
  std::unordered_map<workload::JobId, int> retries_;
  /// Backoff gate: queued jobs absent from this map are always eligible.
  std::unordered_map<workload::JobId, sim::SimTime> eligible_after_;
  util::Rng jitter_rng_;
  BackfillAdmission backfill_admission_;
  obs::Hub* hub_ = nullptr;
};

}  // namespace iosched::sched
