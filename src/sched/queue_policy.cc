#include "sched/queue_policy.h"

#include <algorithm>
#include <stdexcept>

#include "util/strings.h"

namespace iosched::sched {

QueueOrder ParseQueueOrder(const std::string& name) {
  std::string n = util::ToLower(name);
  if (n == "fcfs") return QueueOrder::kFcfs;
  if (n == "wfp") return QueueOrder::kWfp;
  throw std::invalid_argument("unknown queue order: " + name);
}

std::string ToString(QueueOrder order) {
  switch (order) {
    case QueueOrder::kFcfs: return "fcfs";
    case QueueOrder::kWfp: return "wfp";
  }
  return "?";
}

double WfpScore(const workload::Job& job, sim::SimTime now) {
  double wait = std::max(0.0, now - job.submit_time);
  double walltime = std::max(1.0, job.requested_walltime);
  double ratio = wait / walltime;
  return ratio * ratio * ratio * static_cast<double>(job.nodes);
}

std::vector<const workload::Job*> OrderQueue(
    std::span<const workload::Job* const> queue, QueueOrder order,
    sim::SimTime now) {
  std::vector<const workload::Job*> out(queue.begin(), queue.end());
  auto fcfs_tie = [](const workload::Job* a, const workload::Job* b) {
    if (a->submit_time != b->submit_time) {
      return a->submit_time < b->submit_time;
    }
    return a->id < b->id;
  };
  switch (order) {
    case QueueOrder::kFcfs:
      std::sort(out.begin(), out.end(), fcfs_tie);
      break;
    case QueueOrder::kWfp:
      std::sort(out.begin(), out.end(),
                [&](const workload::Job* a, const workload::Job* b) {
                  double sa = WfpScore(*a, now);
                  double sb = WfpScore(*b, now);
                  if (sa != sb) return sa > sb;
                  return fcfs_tie(a, b);
                });
      break;
  }
  return out;
}

}  // namespace iosched::sched
