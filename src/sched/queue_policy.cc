#include "sched/queue_policy.h"

#include <algorithm>
#include <stdexcept>

#include "util/strings.h"

namespace iosched::sched {

QueueOrder ParseQueueOrder(const std::string& name) {
  std::string n = util::ToLower(name);
  if (n == "fcfs") return QueueOrder::kFcfs;
  if (n == "wfp") return QueueOrder::kWfp;
  throw std::invalid_argument("unknown queue order: " + name);
}

std::string ToString(QueueOrder order) {
  switch (order) {
    case QueueOrder::kFcfs: return "fcfs";
    case QueueOrder::kWfp: return "wfp";
  }
  return "?";
}

double WfpScore(const workload::Job& job, sim::SimTime now) {
  double wait = std::max(0.0, now - job.submit_time);
  double walltime = std::max(1.0, job.requested_walltime);
  double ratio = wait / walltime;
  return ratio * ratio * ratio * static_cast<double>(job.nodes);
}

std::vector<const workload::Job*> OrderQueue(
    std::span<const workload::Job* const> queue, QueueOrder order,
    sim::SimTime now) {
  std::vector<const workload::Job*> out(queue.begin(), queue.end());
  auto fcfs_tie = [](const workload::Job* a, const workload::Job* b) {
    if (a->submit_time != b->submit_time) {
      return a->submit_time < b->submit_time;
    }
    return a->id < b->id;
  };
  switch (order) {
    case QueueOrder::kFcfs:
      std::sort(out.begin(), out.end(), fcfs_tie);
      break;
    case QueueOrder::kWfp: {
      // Precompute each job's score once — a comparator-side WfpScore costs
      // O(n log n) evaluations per sort and this runs on every dispatch
      // pass.
      struct Ranked {
        double score;
        const workload::Job* job;
      };
      // Scratch reused across dispatch passes (policies may run on the
      // driver's pool threads, hence thread_local).
      thread_local std::vector<Ranked> ranked;
      ranked.clear();
      ranked.reserve(out.size());
      for (const workload::Job* j : out) ranked.push_back({WfpScore(*j, now), j});
      std::sort(ranked.begin(), ranked.end(),
                [&](const Ranked& a, const Ranked& b) {
                  if (a.score != b.score) return a.score > b.score;
                  return fcfs_tie(a.job, b.job);
                });
      for (std::size_t i = 0; i < ranked.size(); ++i) out[i] = ranked[i].job;
      break;
    }
  }
  return out;
}

}  // namespace iosched::sched
