#include "sched/queue_policy.h"

#include <algorithm>
#include <stdexcept>

#include "util/strings.h"

namespace iosched::sched {

QueueOrder ParseQueueOrder(const std::string& name) {
  std::string n = util::ToLower(name);
  if (n == "fcfs") return QueueOrder::kFcfs;
  if (n == "wfp") return QueueOrder::kWfp;
  throw std::invalid_argument("unknown queue order: " + name);
}

std::string ToString(QueueOrder order) {
  switch (order) {
    case QueueOrder::kFcfs: return "fcfs";
    case QueueOrder::kWfp: return "wfp";
  }
  return "?";
}

double WfpScore(const workload::Job& job, sim::SimTime now) {
  double wait = std::max(0.0, now - job.submit_time);
  double walltime = std::max(1.0, job.requested_walltime);
  double ratio = wait / walltime;
  return ratio * ratio * ratio * static_cast<double>(job.nodes);
}

namespace {
struct Ranked {
  double score;
  const workload::Job* job;
};
// Scratch reused across dispatch passes (policies may run on the driver's
// pool threads, hence thread_local). Namespace scope so the capacity test
// hook below can observe it.
thread_local std::vector<Ranked> wfp_ranked_scratch;
}  // namespace

std::size_t OrderQueueScratchCapacity() {
  return wfp_ranked_scratch.capacity();
}

std::vector<const workload::Job*> OrderQueue(
    std::span<const workload::Job* const> queue, QueueOrder order,
    sim::SimTime now, std::uint64_t* comparisons) {
  std::vector<const workload::Job*> out(queue.begin(), queue.end());
  std::uint64_t count = 0;
  auto fcfs_tie = [&count](const workload::Job* a, const workload::Job* b) {
    ++count;
    if (a->submit_time != b->submit_time) {
      return a->submit_time < b->submit_time;
    }
    return a->id < b->id;
  };
  switch (order) {
    case QueueOrder::kFcfs:
      // The scheduler keeps its queue in submission order, which for
      // monotone arrival times is already (submit_time, id) — detect that
      // with one O(n) sweep instead of paying the O(n log n) sort on every
      // dispatch pass.
      if (!std::is_sorted(out.begin(), out.end(), fcfs_tie)) {
        std::sort(out.begin(), out.end(), fcfs_tie);
      }
      break;
    case QueueOrder::kWfp: {
      // Precompute each job's score once — a comparator-side WfpScore costs
      // O(n log n) evaluations per sort and this runs on every dispatch
      // pass.
      std::vector<Ranked>& ranked = wfp_ranked_scratch;
      ranked.clear();
      ranked.reserve(out.size());
      for (const workload::Job* j : out) ranked.push_back({WfpScore(*j, now), j});
      std::sort(ranked.begin(), ranked.end(),
                [&](const Ranked& a, const Ranked& b) {
                  if (a.score != b.score) {
                    ++count;
                    return a.score > b.score;
                  }
                  return fcfs_tie(a.job, b.job);
                });
      for (std::size_t i = 0; i < ranked.size(); ++i) out[i] = ranked[i].job;
      // One oversized pass must not pin peak capacity on a pool thread for
      // the rest of a sweep; release anything beyond the cap.
      if (ranked.capacity() > kOrderQueueScratchCapacityCap) {
        ranked.clear();
        ranked.shrink_to_fit();
      }
      break;
    }
  }
  if (comparisons != nullptr) *comparisons += count;
  return out;
}

}  // namespace iosched::sched
