#include "sched/batch_scheduler.h"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <string>

#include "obs/hub.h"
#include "util/units.h"

namespace iosched::sched {

BatchScheduler::BatchScheduler(machine::Machine& machine, Options options)
    : machine_(machine),
      options_(options),
      wait_queue_(options.order),
      probe_scratch_(machine),
      jitter_rng_(options.backoff_jitter_seed, /*stream=*/37) {
  if (options_.backoff_jitter_fraction < 0 ||
      options_.backoff_jitter_fraction >= 1.0) {
    throw std::invalid_argument(
        "BatchScheduler: backoff_jitter_fraction must be in [0, 1)");
  }
}

void BatchScheduler::Submit(const workload::Job& job) {
  std::string err = job.Validate();
  if (!err.empty()) {
    throw std::invalid_argument("Submit: invalid job " +
                                std::to_string(job.id) + ": " + err);
  }
  std::optional<int> block_nodes = machine_.BlockNodesFor(job.nodes);
  if (!block_nodes) {
    throw std::invalid_argument("Submit: job " + std::to_string(job.id) +
                                " larger than the machine");
  }
  queue_.push_back(&job);
  wait_queue_.Insert(job, *block_nodes);
}

sim::SimTime BatchScheduler::ShadowTime(const workload::Job& head,
                                        sim::SimTime now) const {
  if (machine_.CanAllocate(head.nodes)) return now;

  // Release running partitions in predicted-end order until the head fits.
  std::vector<const RunningJob*> by_end;
  by_end.reserve(running_.size());
  for (const auto& [id, rj] : running_) by_end.push_back(&rj);
  std::sort(by_end.begin(), by_end.end(),
            [now](const RunningJob* a, const RunningJob* b) {
              double ea = std::max(a->predicted_end, now);
              double eb = std::max(b->predicted_end, now);
              if (ea != eb) return ea < eb;
              return a->job->id < b->job->id;
            });
  // Fitting is monotone in the released prefix (releases only free space),
  // so binary-search the smallest prefix whose release lets the head in.
  // Releases are a few word-ops each; the allocator probe (CanAllocate)
  // scans the whole machine, so probing O(log R) prefixes instead of every
  // one is the win. The result is identical to the linear scan's.
  auto fits_after = [&](std::size_t prefix) {
    // Copy-assign into the standing scratch machine: reuses its buffers
    // instead of heap-allocating a snapshot per probe.
    probe_scratch_ = machine_;
    for (std::size_t k = 0; k < prefix; ++k) {
      probe_scratch_.Release(by_end[k]->partition);
    }
    return probe_scratch_.CanAllocate(head.nodes);
  };
  std::size_t lo = 1, hi = by_end.size();
  if (hi == 0 || !fits_after(hi)) {
    // With everything released the head must fit (size was validated at
    // submit); fall back to the latest predicted end.
    sim::SimTime latest = now;
    for (const RunningJob* rj : by_end) {
      latest = std::max(latest, rj->predicted_end);
    }
    return latest;
  }
  while (lo < hi) {
    std::size_t mid = lo + (hi - lo) / 2;
    if (fits_after(mid)) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  // A job that overran its estimate is treated as ending "now": the real
  // Cobalt would see the same stale estimate.
  return std::max(by_end[lo - 1]->predicted_end, now);
}

bool BatchScheduler::BackfillOk(const workload::Job& candidate,
                                const machine::Partition& candidate_partition,
                                const workload::Job& head, sim::SimTime now,
                                sim::SimTime shadow) const {
  (void)candidate_partition;
  // Finishes before the reservation needs the space.
  if (now + candidate.requested_walltime <= shadow + util::kTimeEpsilon) {
    return true;
  }
  // Otherwise the head must still fit at shadow time with the candidate's
  // partition occupied. machine_ already contains the candidate (the caller
  // allocated it tentatively), so replay the releases up to `shadow`.
  probe_scratch_ = machine_;
  for (const auto& [id, rj] : running_) {
    if (std::max(rj.predicted_end, now) <= shadow + util::kTimeEpsilon) {
      probe_scratch_.Release(rj.partition);
    }
  }
  return probe_scratch_.CanAllocate(head.nodes);
}

std::vector<StartDecision> BatchScheduler::Schedule(sim::SimTime now) {
  if (hub_ != nullptr) {
    hub_->sched_passes->Inc();
    double depth = static_cast<double>(queue_.size());
    hub_->queue_depth->Set(depth);
    hub_->queue_depth_hist->Observe(depth);
  }
  std::vector<StartDecision> decisions;
  if (queue_.empty()) return decisions;

  // Build the eligible candidates in service order. Jobs still inside
  // their requeue backoff are invisible to this pass (they neither start
  // nor hold the EASY reservation). The incremental path orders the whole
  // standing queue and filters afterwards — identical to ordering the
  // filtered subset, because the order is a total order independent of
  // membership.
  candidates_.clear();
  if (options_.incremental_order) {
    for (const WaitQueue::Entry& e : wait_queue_.Ordered(now)) {
      if (InBackoff(e.id, now)) continue;
      candidates_.push_back(Candidate{e.job, e.block_nodes});
    }
  } else {
    // Reference path: full re-sort from scratch via OrderQueue. Kept so
    // tests and benchmarks can diff the two orders; schedules are
    // bit-identical.
    std::vector<const workload::Job*> eligible;
    eligible.reserve(queue_.size());
    for (const workload::Job* job : queue_) {
      if (InBackoff(job->id, now)) continue;
      eligible.push_back(job);
    }
    for (const workload::Job* job :
         OrderQueue(eligible, options_.order, now)) {
      // Block size exists: Submit validated the job fits the machine.
      candidates_.push_back(
          Candidate{job, *machine_.BlockNodesFor(job->nodes)});
    }
  }
  if (candidates_.empty()) return decisions;

  const workload::Job* blocked_head = nullptr;
  sim::SimTime shadow = 0.0;
  // Smallest block size (in nodes) that failed to allocate during this
  // pass. Aligned blocks nest, so once a block of B midplanes has no free
  // run neither does any larger block — and the machine only loses free
  // space as the pass backfills jobs (a failed BackfillOk releases its
  // tentative partition, restoring the state exactly). Skipping those
  // candidates outright avoids the allocator probe entirely.
  int min_failed_block_nodes = std::numeric_limits<int>::max();

  for (const Candidate& candidate : candidates_) {
    const workload::Job* job = candidate.job;
    if (blocked_head == nullptr) {
      auto partition = machine_.Allocate(job->nodes);
      if (partition) {
        decisions.push_back(StartDecision{job, *partition});
        running_.emplace(job->id, RunningJob{job, *partition, now,
                                             now + job->requested_walltime});
        continue;
      }
      // First blocked job: it owns the reservation.
      blocked_head = job;
      if (!options_.easy_backfill) break;
      shadow = ShadowTime(*job, now);
      continue;
    }
    // Backfill phase.
    int block_nodes = candidate.block_nodes;
    if (block_nodes >= min_failed_block_nodes) continue;
    auto partition = machine_.Allocate(job->nodes);
    if (!partition) {
      min_failed_block_nodes = block_nodes;
      continue;
    }
    if (BackfillOk(*job, *partition, *blocked_head, now, shadow)) {
      // Geometry says the backfill cannot delay the reservation; an
      // installed admission hook (reservation-aware planning policies) may
      // still veto it on projected storage pressure. A veto is not a
      // capacity failure, so min_failed_block_nodes stays untouched.
      if (backfill_admission_ && !backfill_admission_(*job, now, shadow)) {
        if (hub_ != nullptr) hub_->backfill_denials->Inc();
        machine_.Release(*partition);
        continue;
      }
      if (hub_ != nullptr) hub_->backfill_starts->Inc();
      decisions.push_back(StartDecision{job, *partition});
      running_.emplace(job->id, RunningJob{job, *partition, now,
                                           now + job->requested_walltime});
    } else {
      machine_.Release(*partition);
    }
  }

  if (!decisions.empty()) {
    // Drop started jobs from the queue, preserving submission order. A
    // queued job is running iff this pass started it, so scanning the
    // (few) decisions beats a hash probe per queued job.
    auto started = [&decisions](const workload::Job* j) {
      for (const StartDecision& d : decisions) {
        if (d.job == j) return true;
      }
      return false;
    };
    queue_.erase(std::remove_if(queue_.begin(), queue_.end(), started),
                 queue_.end());
    for (const StartDecision& d : decisions) {
      eligible_after_.erase(d.job->id);
      wait_queue_.Remove(d.job->id);
    }
  }
  return decisions;
}

bool BatchScheduler::InBackoff(workload::JobId id, sim::SimTime now) const {
  if (eligible_after_.empty()) return false;
  auto it = eligible_after_.find(id);
  return it != eligible_after_.end() && it->second > now + util::kTimeEpsilon;
}

BatchScheduler::RequeueDecision BatchScheduler::OnJobFailed(
    workload::JobId id, sim::SimTime now) {
  auto it = running_.find(id);
  if (it == running_.end()) {
    throw std::logic_error("OnJobFailed: job " + std::to_string(id) +
                           " not running");
  }
  const workload::Job* job = it->second.job;
  machine_.Release(it->second.partition);
  running_.erase(it);

  RequeueDecision decision;
  decision.retries = ++retries_[id];
  if (decision.retries > options_.max_retries) {
    // Budget exhausted: the job leaves the system for good.
    retries_.erase(id);
    eligible_after_.erase(id);
    return decision;
  }
  decision.requeued = true;
  decision.eligible_time = now + BackoffDelay(decision.retries);
  eligible_after_[id] = decision.eligible_time;
  queue_.push_back(job);
  // Block size exists: Submit validated the job fits the machine.
  wait_queue_.Insert(*job, *machine_.BlockNodesFor(job->nodes));
  return decision;
}

double BatchScheduler::BackoffDelay(int retries) {
  // Stop doubling once the cap is reached: a naive 2^(retries-1) loop
  // overflows to inf at high retry counts before a final min() could clamp
  // it, and inf poisons the eligible time.
  double backoff = options_.requeue_backoff_seconds;
  for (int i = 1; i < retries && backoff < options_.max_backoff_seconds;
       ++i) {
    backoff *= 2.0;
  }
  backoff = std::min(backoff, options_.max_backoff_seconds);
  if (options_.backoff_jitter_fraction > 0) {
    backoff *= 1.0 + options_.backoff_jitter_fraction *
                         jitter_rng_.Uniform(-1.0, 1.0);
  }
  return std::max(0.0, backoff);
}

sim::SimTime BatchScheduler::NextEligibleTime(sim::SimTime now) const {
  sim::SimTime next = sim::kTimeInfinity;
  for (const workload::Job* job : queue_) {
    auto it = eligible_after_.find(job->id);
    if (it != eligible_after_.end() && it->second > now + util::kTimeEpsilon) {
      next = std::min(next, it->second);
    }
  }
  return next;
}

void BatchScheduler::OnJobEnd(workload::JobId id, sim::SimTime now) {
  (void)now;
  auto it = running_.find(id);
  if (it == running_.end()) {
    throw std::logic_error("OnJobEnd: job " + std::to_string(id) +
                           " not running");
  }
  machine_.Release(it->second.partition);
  running_.erase(it);
  retries_.erase(id);
}

namespace {
// Serialize unordered_map entries sorted by job id so the checkpoint bytes
// are deterministic (the maps' iteration order is not).
template <typename Map, typename Fn>
void WriteSortedById(ckpt::Writer& w, const Map& map, Fn&& write_value) {
  std::vector<workload::JobId> ids;
  ids.reserve(map.size());
  for (const auto& [id, _] : map) ids.push_back(id);
  std::sort(ids.begin(), ids.end());
  w.U32(static_cast<std::uint32_t>(ids.size()));
  for (workload::JobId id : ids) {
    w.I64(id);
    write_value(map.at(id));
  }
}
}  // namespace

void BatchScheduler::SaveState(ckpt::Writer& w) const {
  w.U32(static_cast<std::uint32_t>(queue_.size()));
  for (const workload::Job* job : queue_) w.I64(job->id);
  WriteSortedById(w, running_, [&w](const RunningJob& run) {
    w.I64(run.partition.first_midplane);
    w.I64(run.partition.midplane_count);
    w.I64(run.partition.nodes);
    w.F64(run.start_time);
    w.F64(run.predicted_end);
  });
  WriteSortedById(w, retries_, [&w](int retries) { w.I64(retries); });
  WriteSortedById(w, eligible_after_,
                  [&w](sim::SimTime t) { w.F64(t); });
  util::Rng::State jitter = jitter_rng_.SaveState();
  w.U64(jitter.engine.state);
  w.U64(jitter.engine.inc);
  w.Bool(jitter.has_spare);
  w.F64(jitter.spare);
}

void BatchScheduler::RestoreState(
    ckpt::Reader& r,
    const std::function<const workload::Job*(workload::JobId)>& resolve) {
  auto must_resolve = [&resolve](workload::JobId id) {
    const workload::Job* job = resolve(id);
    if (job == nullptr) {
      throw std::runtime_error(
          "BatchScheduler::RestoreState: checkpoint references job " +
          std::to_string(id) + " absent from the workload");
    }
    return job;
  };
  queue_.clear();
  wait_queue_.Clear();
  running_.clear();
  retries_.clear();
  eligible_after_.clear();
  std::uint32_t queued = r.U32();
  queue_.reserve(queued);
  for (std::uint32_t i = 0; i < queued; ++i) {
    const workload::Job* job = must_resolve(r.I64());
    queue_.push_back(job);
    wait_queue_.Insert(*job, *machine_.BlockNodesFor(job->nodes));
  }
  std::uint32_t running = r.U32();
  for (std::uint32_t i = 0; i < running; ++i) {
    workload::JobId id = r.I64();
    RunningJob run;
    run.job = must_resolve(id);
    run.partition.first_midplane = static_cast<int>(r.I64());
    run.partition.midplane_count = static_cast<int>(r.I64());
    run.partition.nodes = static_cast<int>(r.I64());
    run.start_time = r.F64();
    run.predicted_end = r.F64();
    running_.emplace(id, run);
  }
  std::uint32_t retried = r.U32();
  for (std::uint32_t i = 0; i < retried; ++i) {
    workload::JobId id = r.I64();
    retries_.emplace(id, static_cast<int>(r.I64()));
  }
  std::uint32_t gated = r.U32();
  for (std::uint32_t i = 0; i < gated; ++i) {
    workload::JobId id = r.I64();
    eligible_after_.emplace(id, r.F64());
  }
  util::Rng::State jitter;
  jitter.engine.state = r.U64();
  jitter.engine.inc = r.U64();
  jitter.has_spare = r.Bool();
  jitter.spare = r.F64();
  jitter_rng_.RestoreState(jitter);
}

}  // namespace iosched::sched
