#include "sched/batch_scheduler.h"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "util/units.h"

namespace iosched::sched {

BatchScheduler::BatchScheduler(machine::Machine& machine, Options options)
    : machine_(machine), options_(options) {}

void BatchScheduler::Submit(const workload::Job& job) {
  std::string err = job.Validate();
  if (!err.empty()) {
    throw std::invalid_argument("Submit: invalid job " +
                                std::to_string(job.id) + ": " + err);
  }
  if (!machine_.BlockNodesFor(job.nodes)) {
    throw std::invalid_argument("Submit: job " + std::to_string(job.id) +
                                " larger than the machine");
  }
  queue_.push_back(&job);
}

sim::SimTime BatchScheduler::ShadowTime(const workload::Job& head,
                                        sim::SimTime now) const {
  machine::Machine scratch = machine_;
  if (scratch.CanAllocate(head.nodes)) return now;

  // Release running partitions in predicted-end order until the head fits.
  std::vector<const RunningJob*> by_end;
  by_end.reserve(running_.size());
  for (const auto& [id, rj] : running_) by_end.push_back(&rj);
  std::sort(by_end.begin(), by_end.end(),
            [now](const RunningJob* a, const RunningJob* b) {
              double ea = std::max(a->predicted_end, now);
              double eb = std::max(b->predicted_end, now);
              if (ea != eb) return ea < eb;
              return a->job->id < b->job->id;
            });
  for (const RunningJob* rj : by_end) {
    scratch.Release(rj->partition);
    if (scratch.CanAllocate(head.nodes)) {
      // A job that overran its estimate is treated as ending "now": the
      // real Cobalt would see the same stale estimate.
      return std::max(rj->predicted_end, now);
    }
  }
  // With everything released the head must fit (size was validated at
  // submit); fall back to the latest predicted end.
  sim::SimTime latest = now;
  for (const RunningJob* rj : by_end) {
    latest = std::max(latest, rj->predicted_end);
  }
  return latest;
}

bool BatchScheduler::BackfillOk(const workload::Job& candidate,
                                const machine::Partition& candidate_partition,
                                const workload::Job& head, sim::SimTime now,
                                sim::SimTime shadow) const {
  (void)candidate_partition;
  // Finishes before the reservation needs the space.
  if (now + candidate.requested_walltime <= shadow + util::kTimeEpsilon) {
    return true;
  }
  // Otherwise the head must still fit at shadow time with the candidate's
  // partition occupied. machine_ already contains the candidate (the caller
  // allocated it tentatively), so replay the releases up to `shadow`.
  machine::Machine scratch = machine_;
  for (const auto& [id, rj] : running_) {
    if (std::max(rj.predicted_end, now) <= shadow + util::kTimeEpsilon) {
      scratch.Release(rj.partition);
    }
  }
  return scratch.CanAllocate(head.nodes);
}

std::vector<StartDecision> BatchScheduler::Schedule(sim::SimTime now) {
  std::vector<StartDecision> decisions;
  if (queue_.empty()) return decisions;

  // Jobs still inside their requeue backoff are invisible to this pass
  // (they neither start nor hold the EASY reservation).
  std::vector<const workload::Job*> eligible;
  eligible.reserve(queue_.size());
  for (const workload::Job* job : queue_) {
    auto it = eligible_after_.find(job->id);
    if (it != eligible_after_.end() && it->second > now + util::kTimeEpsilon) {
      continue;
    }
    eligible.push_back(job);
  }
  if (eligible.empty()) return decisions;

  std::vector<const workload::Job*> ordered =
      OrderQueue(eligible, options_.order, now);

  const workload::Job* blocked_head = nullptr;
  sim::SimTime shadow = 0.0;

  for (const workload::Job* job : ordered) {
    if (blocked_head == nullptr) {
      auto partition = machine_.Allocate(job->nodes);
      if (partition) {
        decisions.push_back(StartDecision{job, *partition});
        running_.emplace(job->id, RunningJob{job, *partition, now,
                                             now + job->requested_walltime});
        continue;
      }
      // First blocked job: it owns the reservation.
      blocked_head = job;
      if (!options_.easy_backfill) break;
      shadow = ShadowTime(*job, now);
      continue;
    }
    // Backfill phase.
    auto partition = machine_.Allocate(job->nodes);
    if (!partition) continue;
    if (BackfillOk(*job, *partition, *blocked_head, now, shadow)) {
      decisions.push_back(StartDecision{job, *partition});
      running_.emplace(job->id, RunningJob{job, *partition, now,
                                           now + job->requested_walltime});
    } else {
      machine_.Release(*partition);
    }
  }

  if (!decisions.empty()) {
    // Drop started jobs from the queue, preserving submission order.
    queue_.erase(std::remove_if(queue_.begin(), queue_.end(),
                                [this](const workload::Job* j) {
                                  return running_.count(j->id) > 0;
                                }),
                 queue_.end());
    for (const StartDecision& d : decisions) {
      eligible_after_.erase(d.job->id);
    }
  }
  return decisions;
}

BatchScheduler::RequeueDecision BatchScheduler::OnJobFailed(
    workload::JobId id, sim::SimTime now) {
  auto it = running_.find(id);
  if (it == running_.end()) {
    throw std::logic_error("OnJobFailed: job " + std::to_string(id) +
                           " not running");
  }
  const workload::Job* job = it->second.job;
  machine_.Release(it->second.partition);
  running_.erase(it);

  RequeueDecision decision;
  decision.retries = ++retries_[id];
  if (decision.retries > options_.max_retries) {
    // Budget exhausted: the job leaves the system for good.
    retries_.erase(id);
    eligible_after_.erase(id);
    return decision;
  }
  double backoff = options_.requeue_backoff_seconds;
  for (int i = 1; i < decision.retries; ++i) backoff *= 2.0;
  backoff = std::min(backoff, options_.max_backoff_seconds);
  decision.requeued = true;
  decision.eligible_time = now + std::max(0.0, backoff);
  eligible_after_[id] = decision.eligible_time;
  queue_.push_back(job);
  return decision;
}

sim::SimTime BatchScheduler::NextEligibleTime(sim::SimTime now) const {
  sim::SimTime next = sim::kTimeInfinity;
  for (const workload::Job* job : queue_) {
    auto it = eligible_after_.find(job->id);
    if (it != eligible_after_.end() && it->second > now + util::kTimeEpsilon) {
      next = std::min(next, it->second);
    }
  }
  return next;
}

void BatchScheduler::OnJobEnd(workload::JobId id, sim::SimTime now) {
  (void)now;
  auto it = running_.find(id);
  if (it == running_.end()) {
    throw std::logic_error("OnJobEnd: job " + std::to_string(id) +
                           " not running");
  }
  machine_.Release(it->second.partition);
  running_.erase(it);
  retries_.erase(id);
}

}  // namespace iosched::sched
