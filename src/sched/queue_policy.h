// Queue-ordering policies of the Cobalt batch scheduler (paper Section II-C).
//
// Cobalt on Mira orders the wait queue with "WFP", which favors large and
// old jobs by growing a job's priority with the ratio of its wait time to
// its requested runtime. We implement the WFP3 variant documented for
// Argonne's Blue Gene systems: score = (wait / requested_walltime)^3 * nodes,
// plus plain FCFS for comparison.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "sim/time.h"
#include "workload/job.h"

namespace iosched::sched {

enum class QueueOrder { kFcfs, kWfp };

/// Parse "fcfs" / "wfp" (case-insensitive); throws on unknown names.
QueueOrder ParseQueueOrder(const std::string& name);
std::string ToString(QueueOrder order);

/// WFP priority score at time `now`; higher runs earlier.
double WfpScore(const workload::Job& job, sim::SimTime now);

/// Return queue entries sorted into service order (descending priority).
/// Ties break by (submit time, id) so the order is total and deterministic.
/// `comparisons`, when non-null, is incremented by the number of comparator
/// invocations the call consumed (regression tests pin the FCFS fast path).
std::vector<const workload::Job*> OrderQueue(
    std::span<const workload::Job* const> queue, QueueOrder order,
    sim::SimTime now, std::uint64_t* comparisons = nullptr);

/// Retained capacity of this thread's WFP ranking scratch, in entries.
/// Test hook for the capacity cap (see kOrderQueueScratchCapacityCap).
std::size_t OrderQueueScratchCapacity();

/// Ceiling on the WFP scratch retained between passes. One oversized pass
/// (a driver sweep cell with a very deep queue) must not pin peak capacity
/// on a pool thread forever; anything above the cap is freed after the
/// pass.
inline constexpr std::size_t kOrderQueueScratchCapacityCap = 4096;

}  // namespace iosched::sched
