// Queue-ordering policies of the Cobalt batch scheduler (paper Section II-C).
//
// Cobalt on Mira orders the wait queue with "WFP", which favors large and
// old jobs by growing a job's priority with the ratio of its wait time to
// its requested runtime. We implement the WFP3 variant documented for
// Argonne's Blue Gene systems: score = (wait / requested_walltime)^3 * nodes,
// plus plain FCFS for comparison.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "sim/time.h"
#include "workload/job.h"

namespace iosched::sched {

enum class QueueOrder { kFcfs, kWfp };

/// Parse "fcfs" / "wfp" (case-insensitive); throws on unknown names.
QueueOrder ParseQueueOrder(const std::string& name);
std::string ToString(QueueOrder order);

/// WFP priority score at time `now`; higher runs earlier.
double WfpScore(const workload::Job& job, sim::SimTime now);

/// Return queue entries sorted into service order (descending priority).
/// Ties break by (submit time, id) so the order is total and deterministic.
std::vector<const workload::Job*> OrderQueue(
    std::span<const workload::Job* const> queue, QueueOrder order,
    sim::SimTime now);

}  // namespace iosched::sched
