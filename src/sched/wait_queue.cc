#include "sched/wait_queue.h"

#include <algorithm>

namespace iosched::sched {

namespace {
/// (submit_time, id) — the FCFS order and the WFP tie-break.
bool FcfsLess(const WaitQueue::Entry& a, const WaitQueue::Entry& b) {
  if (a.submit_time != b.submit_time) return a.submit_time < b.submit_time;
  return a.id < b.id;
}
}  // namespace

void WaitQueue::Insert(const workload::Job& job, int block_nodes) {
  Entry e;
  e.job = &job;
  e.submit_time = job.submit_time;
  e.id = job.id;
  e.walltime = std::max(1.0, job.requested_walltime);
  e.nodes = static_cast<double>(job.nodes);
  e.block_nodes = block_nodes;
  if (order_ == QueueOrder::kFcfs) {
    // Submissions arrive in non-decreasing submit time, so this is almost
    // always an append. A requeued job re-enters at exactly its original
    // position — (submit_time, id) is unique per job, so upper_bound lands
    // one past every entry that sorts before it and nowhere else — which
    // keeps requeues invisible to the FCFS order even among tied submit
    // times.
    entries_.insert(
        std::upper_bound(entries_.begin(), entries_.end(), e, FcfsLess),
        e);
  } else {
    entries_.push_back(e);
  }
}

void WaitQueue::Remove(workload::JobId id) {
  // Started jobs sit at the front of the last pass's order, so the scan is
  // short in practice; erase (not swap-erase) keeps the standing order.
  auto it = std::find_if(entries_.begin(), entries_.end(),
                         [id](const Entry& e) { return e.id == id; });
  if (it != entries_.end()) entries_.erase(it);
}

std::span<const WaitQueue::Entry> WaitQueue::Ordered(sim::SimTime now) {
  last_pass_comparisons_ = 0;
  if (order_ == QueueOrder::kFcfs) {
    // Maintained at insert: zero comparator invocations per pass.
    return entries_;
  }
  // Refresh scores with the exact arithmetic of WfpScore() — wait clamped at
  // zero, divided by the clamped walltime — so both order paths agree to the
  // last ulp and the schedules are bit-identical.
  for (Entry& e : entries_) {
    double wait = std::max(0.0, now - e.submit_time);
    double ratio = wait / e.walltime;
    e.score = ratio * ratio * ratio * e.nodes;
  }
  SortByScore();
  return entries_;
}

void WaitQueue::SortByScore() {
  const std::size_t n = entries_.size();
  if (n < 2) return;
  auto less = [this](const Entry& a, const Entry& b) {
    ++last_pass_comparisons_;
    if (a.score != b.score) return a.score > b.score;
    return FcfsLess(a, b);
  };
  // Adaptive insertion re-sort from the previous pass's order. Score curves
  // cross at most once per pair, so inversions between passes are few and
  // the common case is a single O(n) sortedness sweep. The displacement
  // budget bounds the worst case (mass requeue after an outage): once spent,
  // finish with std::sort — the comparator is a strict total order, so the
  // result is identical either way.
  std::size_t budget = 4 * n + 64;
  for (std::size_t i = 1; i < n; ++i) {
    if (!less(entries_[i], entries_[i - 1])) continue;
    auto pos = std::upper_bound(entries_.begin(), entries_.begin() + i,
                                entries_[i], less);
    std::size_t displacement =
        static_cast<std::size_t>((entries_.begin() + i) - pos);
    if (displacement > budget) {
      std::sort(entries_.begin(), entries_.end(), less);
      return;
    }
    budget -= displacement;
    std::rotate(pos, entries_.begin() + i, entries_.begin() + i + 1);
  }
}

}  // namespace iosched::sched
