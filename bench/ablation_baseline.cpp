// Ablation: how much of the I/O-aware win comes from the BASE_LINE's
// non-work-conservation?
//
// The paper's BASE_LINE splits BWmax evenly per application and wastes the
// slack of applications that cannot use their slice. BASE_LINE_MAXMIN is
// the work-conserving round-robin limit (max-min fairness). Comparing
// BASE_LINE vs BASE_LINE_MAXMIN vs ADAPTIVE separates "stop wasting
// bandwidth" from "coordinate who transfers".
#include <cstdio>
#include <string>
#include <vector>

#include "driver/experiment.h"
#include "driver/scenario.h"
#include "figure_common.h"
#include "util/table.h"
#include "util/units.h"

int main() {
  using namespace iosched;
  const std::vector<std::string> policies = {"BASE_LINE", "BASE_LINE_MAXMIN",
                                             "MAX_UTIL", "ADAPTIVE"};
  std::printf("== Ablation: even-split vs work-conserving baseline vs "
              "coordination (%.0f days) ==\n\n", bench::BenchDays());
  util::ThreadPool pool;
  for (int wl = 1; wl <= 3; ++wl) {
    driver::Scenario scenario =
        driver::MakeEvaluationScenario(wl, bench::BenchDays());
    driver::SweepSpec spec;
    spec.scenario = &scenario;
    spec.policies = policies;
    spec.pool = &pool;
    auto runs = driver::RunSweep(spec).runs;
    util::Table table({"policy", "avg wait (min)", "avg response (min)",
                       "utilization", "avg runtime expansion"});
    for (const auto& run : runs) {
      table.AddRow(
          {run.policy,
           util::Table::Num(util::SecondsToMinutes(run.report.avg_wait_seconds), 1),
           util::Table::Num(
               util::SecondsToMinutes(run.report.avg_response_seconds), 1),
           util::Table::Num(run.report.utilization * 100.0, 1) + "%",
           util::Table::Num(run.report.avg_runtime_expansion, 3)});
    }
    std::printf("Workload %d\n%s\n", wl, table.ToString().c_str());
  }
  std::printf("Interpretation: the gap BASE_LINE -> BASE_LINE_MAXMIN is the "
              "pure work-conservation effect;\nthe remaining gap to "
              "MAX_UTIL/ADAPTIVE is genuine coordination.\n");
  return 0;
}
