// Shared scaffolding for the paper-figure benchmarks: runs the evaluation
// months under every policy and prints measured-vs-paper tables.
//
// Absolute numbers are not expected to match the paper (our substrate is a
// synthetic Mira, not the authors' 2014 traces); the *shape* — who wins and
// by roughly what factor — is the reproduction target. The paper reference
// values are digitized from the published bar charts and are approximate.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include "core/policy_factory.h"
#include "driver/experiment.h"
#include "driver/scenario.h"
#include "driver/sweep.h"
#include "util/table.h"
#include "util/thread_pool.h"
#include "util/units.h"

namespace iosched::bench {

/// Paper-reported values digitized from a figure: policy -> value per
/// workload (index 0..2 for WL1..WL3).
using PaperSeries = std::map<std::string, std::vector<double>>;

/// Approximate readings of Figure 8 (average wait time, minutes).
inline PaperSeries PaperFig8Wait() {
  return {{"BASE_LINE", {700, 450, 400}},    {"FCFS", {640, 430, 390}},
          {"MAX_UTIL", {650, 450, 380}},     {"MIN_INST_SLD", {640, 490, 370}},
          {"MIN_AGGR_SLD", {560, 380, 310}}, {"ADAPTIVE", {480, 310, 280}}};
}

/// Approximate readings of Figure 9 (average response time, minutes).
inline PaperSeries PaperFig9Response() {
  return {{"BASE_LINE", {820, 620, 540}},    {"FCFS", {790, 615, 530}},
          {"MAX_UTIL", {800, 680, 520}},     {"MIN_INST_SLD", {780, 640, 500}},
          {"MIN_AGGR_SLD", {690, 520, 430}}, {"ADAPTIVE", {610, 530, 370}}};
}

/// Approximate readings of Figure 10 (utilization normalized to BASE_LINE).
inline PaperSeries PaperFig10Utilization() {
  return {{"BASE_LINE", {1.00, 1.00, 1.00}},    {"FCFS", {0.99, 0.92, 0.99}},
          {"MAX_UTIL", {1.08, 1.00, 1.10}},     {"MIN_INST_SLD", {0.98, 0.91, 1.00}},
          {"MIN_AGGR_SLD", {0.99, 0.98, 1.01}}, {"ADAPTIVE", {1.00, 0.99, 1.00}}};
}

/// Simulation duration used by the figure benches. The paper uses full
/// months; override with IOSCHED_BENCH_DAYS for quick runs.
inline double BenchDays() {
  if (const char* env = std::getenv("IOSCHED_BENCH_DAYS")) {
    double days = std::atof(env);
    if (days > 0) return days;
  }
  return 30.0;
}

/// Run all six policies on evaluation month `index` (1..3).
inline std::vector<driver::PolicyRun> RunMonth(int index,
                                               util::ThreadPool& pool) {
  driver::Scenario scenario =
      driver::MakeEvaluationScenario(index, BenchDays());
  driver::SweepSpec spec;
  spec.scenario = &scenario;
  spec.policies = core::AllPolicyNames();
  spec.pool = &pool;
  return driver::RunSweep(spec).runs;
}

/// Print one workload's measured-vs-paper table for a time metric.
inline void PrintTimeFigure(const char* figure, int workload_index,
                            const std::vector<driver::PolicyRun>& runs,
                            const PaperSeries& paper,
                            double (*metric_seconds)(const metrics::Report&)) {
  util::Table table({"policy", "measured (min)", "vs BASE_LINE",
                     "paper (min)", "paper vs BASE_LINE"});
  double base_measured = metric_seconds(runs.front().report);
  double base_paper = paper.at("BASE_LINE")[workload_index - 1];
  for (const auto& run : runs) {
    double measured = metric_seconds(run.report);
    // Prediction-aware policies have no paper series; leave their paper
    // cells blank instead of throwing.
    auto series = paper.find(run.policy);
    std::string paper_cell = "-";
    std::string paper_delta_cell = "-";
    if (series != paper.end()) {
      double paper_value = series->second[workload_index - 1];
      paper_cell = util::Table::Num(paper_value, 0);
      paper_delta_cell = util::Table::Percent(paper_value / base_paper - 1.0, 1);
    }
    table.AddRow({run.policy,
                  util::Table::Num(util::SecondsToMinutes(measured), 1),
                  util::Table::Percent(
                      base_measured > 0 ? measured / base_measured - 1.0 : 0.0,
                      1),
                  paper_cell, paper_delta_cell});
  }
  std::printf("%s — Workload %d\n%s\n", figure, workload_index,
              table.ToString().c_str());
}

}  // namespace iosched::bench
