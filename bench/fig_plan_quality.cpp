// Plan-quality figure: does planning ahead beat deciding greedily?
//
// Three sections:
//   month        the BB-constrained month-1 evaluation workload (tight
//                burst-buffer, oracle prediction so the planner sees real
//                bursts) under the EASY-greedy baseline (BASE_LINE), plain
//                FCFS, and the two planning policies PERIODIC and PLAN_BF.
//                The reproduction claim: PLAN_BF's backfill reservations of
//                absorb capacity and drain bandwidth keep the buffer out of
//                congestion collapse, so its mean wait must not exceed the
//                EASY-greedy baseline here.
//   replan cost  plans built and the wall-clock spent inside Plan() for
//                each planning policy, absolute and as a share of the run's
//                simulation wall time — the price of looking ahead.
//   year smoke   a short cut of the year-scale workload under the same
//                tiered config, to catch planning pathologies the month
//                misses (deep diurnal queue swings).
//
// Run with
//   fig_plan_quality --json=OUT.json [--days=N]
// Honors IOSCHED_BENCH_DAYS like the other figure benches when --days is
// absent. tools/check_plan_fig.py gates CI on the emitted JSON.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "core/simulation.h"
#include "driver/scenario.h"
#include "figure_common.h"
#include "util/atomic_file.h"
#include "util/units.h"

namespace {

using namespace iosched;
using Clock = std::chrono::steady_clock;

/// The tiered-storage setup every policy runs under. The buffer is sized
/// well below the month's burst volume (the 4 TB point of the capacity
/// sweep is where absorption starts to matter but congestion is still
/// common), so promising absorb space to the wrong backfill job hurts.
double g_bb_capacity_gb = 4096.0;
double g_bb_drain_gbps = 50.0;

void ApplyTieredConfig(core::SimulationConfig& config) {
  config.burst_buffer = storage::BurstBufferConfig{};
  config.burst_buffer.capacity_gb = g_bb_capacity_gb;
  config.burst_buffer.drain_gbps = g_bb_drain_gbps;
  config.prediction.enabled = true;
  config.prediction.mode = "oracle";
}

struct PolicyResult {
  std::string policy;
  double wait_minutes = 0.0;
  double response_minutes = 0.0;
  double bounded_slowdown = 0.0;
  double utilization = 0.0;
  std::uint64_t plan_replans = 0;
  double plan_wall_seconds = 0.0;
  double sim_wall_seconds = 0.0;
  double bb_absorbed_gb = 0.0;
  std::uint64_t bb_spilled_requests = 0;
  double bb_peak_queued_gb = 0.0;
};

PolicyResult RunPolicy(const driver::Scenario& scenario,
                       const std::string& policy) {
  core::SimulationConfig config = scenario.config;
  config.policy = policy;
  auto t0 = Clock::now();
  core::SimulationResult sim = core::RunSimulation(config, scenario.jobs);
  auto t1 = Clock::now();
  PolicyResult r;
  r.policy = policy;
  r.wait_minutes = util::SecondsToMinutes(sim.report.avg_wait_seconds);
  r.response_minutes =
      util::SecondsToMinutes(sim.report.avg_response_seconds);
  r.bounded_slowdown = sim.report.avg_bounded_slowdown;
  r.utilization = sim.report.utilization;
  r.plan_replans = sim.plan_replans;
  r.plan_wall_seconds = sim.plan_wall_seconds;
  r.sim_wall_seconds = std::chrono::duration<double>(t1 - t0).count();
  r.bb_absorbed_gb = sim.bb_absorbed_gb;
  r.bb_spilled_requests = sim.bb_spilled_requests;
  r.bb_peak_queued_gb = sim.bb_peak_queued_gb;
  return r;
}

void PrintSection(const char* title,
                  const std::vector<PolicyResult>& results) {
  std::printf("%s\n", title);
  std::printf("  %-10s %10s %10s %8s %9s %9s %10s\n", "policy", "wait(min)",
              "resp(min)", "bsld", "replans", "plan(s)", "spilled");
  for (const PolicyResult& r : results) {
    std::printf("  %-10s %10.1f %10.1f %8.2f %9llu %9.3f %10llu\n",
                r.policy.c_str(), r.wait_minutes, r.response_minutes,
                r.bounded_slowdown,
                static_cast<unsigned long long>(r.plan_replans),
                r.plan_wall_seconds,
                static_cast<unsigned long long>(r.bb_spilled_requests));
  }
  std::printf("\n");
}

void EmitResults(std::ostream& out, const char* key,
                 const std::vector<PolicyResult>& results, bool last) {
  char buf[512];
  out << "  \"" << key << "\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const PolicyResult& r = results[i];
    std::snprintf(
        buf, sizeof(buf),
        "    {\"policy\": \"%s\", \"wait_minutes\": %.3f, "
        "\"response_minutes\": %.3f, \"bounded_slowdown\": %.4f, "
        "\"utilization\": %.4f, \"plan_replans\": %llu, "
        "\"plan_wall_seconds\": %.4f, \"sim_wall_seconds\": %.4f, "
        "\"bb_absorbed_gb\": %.1f, \"bb_spilled_requests\": %llu, "
        "\"bb_peak_queued_gb\": %.1f}%s\n",
        r.policy.c_str(), r.wait_minutes, r.response_minutes,
        r.bounded_slowdown, r.utilization,
        static_cast<unsigned long long>(r.plan_replans), r.plan_wall_seconds,
        r.sim_wall_seconds, r.bb_absorbed_gb,
        static_cast<unsigned long long>(r.bb_spilled_requests),
        r.bb_peak_queued_gb, i + 1 < results.size() ? "," : "");
    out << buf;
  }
  out << "  ]" << (last ? "\n" : ",\n");
}

bool TakeFlag(int& argc, char** argv, const char* flag, std::string* value) {
  std::string prefix = std::string(flag) + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      *value = argv[i] + prefix.size();
      for (int j = i; j + 1 < argc; ++j) argv[j] = argv[j + 1];
      --argc;
      return true;
    }
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  std::string days_str;
  std::string bb_str;
  std::string drain_str;
  TakeFlag(argc, argv, "--json", &json_path);
  TakeFlag(argc, argv, "--days", &days_str);
  if (TakeFlag(argc, argv, "--bb", &bb_str)) {
    g_bb_capacity_gb = std::strtod(bb_str.c_str(), nullptr);
  }
  if (TakeFlag(argc, argv, "--drain", &drain_str)) {
    g_bb_drain_gbps = std::strtod(drain_str.c_str(), nullptr);
  }
  double days = days_str.empty() ? bench::BenchDays()
                                 : std::strtod(days_str.c_str(), nullptr);
  if (days <= 0) {
    std::fprintf(stderr, "bad --days\n");
    return 2;
  }

  const std::vector<std::string> policies = {
      "BASE_LINE", "BASE_LINE_MAXMIN", "FCFS", "PERIODIC", "PLAN_BF"};

  driver::Scenario month = driver::MakeEvaluationScenario(1, days);
  ApplyTieredConfig(month.config);
  std::printf("== Plan quality: BB-constrained month (WL1, %.0f days, "
              "BB %.0f GB / drain %.0f GB/s, oracle prediction) ==\n\n",
              days, month.config.burst_buffer.capacity_gb,
              month.config.burst_buffer.drain_gbps);

  std::vector<PolicyResult> month_results;
  for (const std::string& policy : policies) {
    month_results.push_back(RunPolicy(month, policy));
  }
  PrintSection("month:", month_results);

  // Replan cost, the price of looking ahead: a planning policy that spends
  // a visible fraction of the whole simulation inside Plan() has lost the
  // cheap-Execute property the two-phase split exists for.
  for (const PolicyResult& r : month_results) {
    if (r.plan_replans == 0) continue;
    double share =
        r.sim_wall_seconds > 0 ? r.plan_wall_seconds / r.sim_wall_seconds : 0;
    std::printf("replan cost %-10s %llu plans, %.3f s in Plan() "
                "(%.1f%% of the run)\n",
                r.policy.c_str(),
                static_cast<unsigned long long>(r.plan_replans),
                r.plan_wall_seconds, share * 100.0);
  }
  std::printf("\n");

  // Year-smoke cut: same tiered config on the year-scale workload.
  double smoke_days = std::min(5.0, days);
  driver::Scenario year = driver::MakeYearScenario(smoke_days);
  ApplyTieredConfig(year.config);
  std::printf("== Year smoke (%.0f days) ==\n\n", smoke_days);
  std::vector<PolicyResult> year_results;
  for (const std::string& policy : policies) {
    year_results.push_back(RunPolicy(year, policy));
  }
  PrintSection("year_smoke:", year_results);

  double base_wait = month_results.front().wait_minutes;
  double plan_bf_wait = month_results.back().wait_minutes;
  std::printf("PLAN_BF vs EASY-greedy baseline: %+.1f%% wait\n",
              base_wait > 0 ? (plan_bf_wait / base_wait - 1.0) * 100.0 : 0.0);

  if (!json_path.empty()) {
    util::AtomicFileWriter json_file(json_path);
    std::ostream& out = json_file.stream();
    char buf[256];
    out << "{\n";
    out << "  \"schema\": \"fig-plan-quality-v1\",\n";
    out << "  \"baseline_policy\": \"BASE_LINE\",\n";
    std::snprintf(buf, sizeof(buf),
                  "  \"days\": %g,\n  \"bb_capacity_gb\": %g,\n"
                  "  \"bb_drain_gbps\": %g,\n",
                  days, month.config.burst_buffer.capacity_gb,
                  month.config.burst_buffer.drain_gbps);
    out << buf;
    EmitResults(out, "month", month_results, /*last=*/false);
    EmitResults(out, "year_smoke", year_results, /*last=*/true);
    out << "}\n";
    json_file.Commit();
    std::printf("wrote %s\n", json_path.c_str());
  }
  return 0;
}
