// Ablation: burst buffer vs I/O-aware scheduling.
//
// The paper's related work frames burst buffers as the architectural answer
// to I/O congestion; I/O-aware scheduling is the software answer. This
// bench runs Workload 1 with both knobs: does a buffer make the scheduling
// policy redundant, and vice versa?
#include <cstdio>
#include <string>
#include <vector>

#include "core/simulation.h"
#include "driver/scenario.h"
#include "figure_common.h"
#include "util/table.h"
#include "util/units.h"

int main() {
  using namespace iosched;
  struct BbVariant {
    const char* label;
    storage::BurstBufferConfig config;
  };
  const std::vector<BbVariant> variants = {
      {"no burst buffer", {}},
      {"BB 128 TB, drain 50 GB/s", {131072.0, 50.0}},
      {"BB 1 PB, drain 100 GB/s", {1048576.0, 100.0}},
  };
  std::printf("== Ablation: burst buffer vs I/O-aware scheduling "
              "(Workload 1, %.0f days) ==\n\n", bench::BenchDays());

  driver::Scenario scenario =
      driver::MakeEvaluationScenario(1, bench::BenchDays());
  for (const char* policy : {"BASE_LINE", "ADAPTIVE"}) {
    util::Table table({"burst buffer", "avg wait (min)",
                       "avg response (min)", "absorbed", "io slowdown"});
    for (const BbVariant& v : variants) {
      core::SimulationConfig config = scenario.config;
      config.policy = policy;
      config.burst_buffer = v.config;
      auto result = core::RunSimulation(config, scenario.jobs);
      double absorbed_share =
          result.io_requests > 0
              ? static_cast<double>(result.bb_absorbed_requests) /
                    static_cast<double>(result.io_requests)
              : 0.0;
      table.AddRow(
          {v.label,
           util::Table::Num(
               util::SecondsToMinutes(result.report.avg_wait_seconds), 1),
           util::Table::Num(
               util::SecondsToMinutes(result.report.avg_response_seconds), 1),
           util::Table::Num(absorbed_share * 100.0, 1) + "%",
           util::Table::Num(result.report.avg_io_slowdown, 3)});
    }
    std::printf("I/O policy: %s\n%s\n", policy, table.ToString().c_str());
  }
  std::printf("Reading: a large buffer absorbs most requests and shrinks "
              "the BASE_LINE/ADAPTIVE gap —\nthe hardware and software "
              "answers to I/O congestion are substitutes.\n");
  return 0;
}
