// Burst-buffer capacity sensitivity: how much staging capacity does it
// take before the buffer meaningfully absorbs the checkpoint bursts, and
// does I/O-aware scheduling still matter once it does?
//
// Sweeps the BB capacity axis of driver::RunSweep over Workload 1 with a
// fixed drain reservation, for the two policies that bracket the paper's
// range (BASE_LINE and ADAPTIVE).
#include <cstdio>
#include <cstdlib>

#include "driver/scenario.h"
#include "driver/sweep.h"
#include "figure_common.h"
#include "util/thread_pool.h"

int main() {
  using namespace iosched;
  driver::Scenario scenario =
      driver::MakeEvaluationScenario(1, bench::BenchDays());

  driver::SweepSpec spec;
  spec.scenario = &scenario;
  spec.policies = {"BASE_LINE", "ADAPTIVE"};
  spec.bb_capacities_gb = {0.0, 1024.0, 4096.0, 16384.0, 65536.0, 262144.0};
  spec.bb_drain_gbps = 50.0;
  util::ThreadPool pool;
  spec.pool = &pool;

  std::printf("== Burst-buffer capacity sensitivity (Workload 1, %.0f days, "
              "drain %.0f GB/s) ==\n\n",
              bench::BenchDays(), spec.bb_drain_gbps);
  driver::SweepResult result = driver::RunSweep(spec);
  std::printf("avg wait (min), absorbed-request share in parentheses\n%s\n",
              driver::BbCapacityTable(result).ToString().c_str());
  std::printf("Reading: the absorbed share grows with capacity until the "
              "drain rate, not the\ncapacity, is the bottleneck; the "
              "BASE_LINE-vs-ADAPTIVE gap narrows as the buffer\ntakes over "
              "congestion control from the scheduler.\n");
  return 0;
}
