// Robustness check beyond the paper: the Fig. 8 policy ordering across
// independently seeded month instances (mean ± stddev), so the reproduction
// is not a single-seed accident. The paper reports one trace per month.
#include <cstdio>
#include <vector>

#include "core/policy_factory.h"
#include "driver/replication.h"
#include "figure_common.h"
#include "util/units.h"

int main() {
  using namespace iosched;
  // Five instances of the I/O-heavy month model at reduced length (the
  // policy gaps establish within ~10 days; 5 x 6 policies x 10 days keeps
  // the bench under a minute). IOSCHED_BENCH_DAYS overrides.
  double days = std::min(bench::BenchDays(), 10.0);
  const std::vector<std::uint64_t> seeds = {101, 202, 303, 404, 505};
  std::printf("== Robustness: Fig. 8 ordering across %zu seeded months "
              "(WL1 model, %.0f days each) ==\n\n", seeds.size(), days);

  util::ThreadPool pool;
  auto runs = driver::RunReplications(
      driver::EvaluationMonthFactory(1, days), seeds,
      core::AllPolicyNames(), &pool);
  std::printf("%s\n", driver::ReplicationTable(runs).ToString().c_str());

  double base = runs.front().wait_seconds.mean;
  std::printf("Robust reproduction targets (mean over seeds):\n");
  for (const auto& run : runs) {
    if (run.policy == "ADAPTIVE" || run.policy == "MIN_AGGR_SLD" ||
        run.policy == "MAX_UTIL") {
      std::printf("  %-14s %+6.1f%% wait vs BASE_LINE (expect negative)\n",
                  run.policy.c_str(),
                  (run.wait_seconds.mean / base - 1.0) * 100.0);
    }
  }
  return 0;
}
