// Robustness check beyond the paper: the Fig. 8 policy ordering across
// independently seeded month instances (mean ± stddev), so the reproduction
// is not a single-seed accident. The paper reports one trace per month.
#include <chrono>
#include <cstdio>
#include <vector>

#include "core/policy_factory.h"
#include "core/simulation.h"
#include "driver/replication.h"
#include "figure_common.h"
#include "util/units.h"

int main() {
  using namespace iosched;
  // Five instances of the I/O-heavy month model at reduced length (the
  // policy gaps establish within ~10 days; 5 x 6 policies x 10 days keeps
  // the bench under a minute). IOSCHED_BENCH_DAYS overrides.
  double days = std::min(bench::BenchDays(), 10.0);
  const std::vector<std::uint64_t> seeds = {101, 202, 303, 404, 505};
  std::printf("== Robustness: Fig. 8 ordering across %zu seeded months "
              "(WL1 model, %.0f days each) ==\n\n", seeds.size(), days);

  util::ThreadPool pool;
  auto runs = driver::RunReplications(
      driver::EvaluationMonthFactory(1, days), seeds,
      core::AllPolicyNames(), &pool);
  std::printf("%s\n", driver::ReplicationTable(runs).ToString().c_str());

  double base = runs.front().wait_seconds.mean;
  std::printf("Robust reproduction targets (mean over seeds):\n");
  for (const auto& run : runs) {
    if (run.policy == "ADAPTIVE" || run.policy == "MIN_AGGR_SLD" ||
        run.policy == "MAX_UTIL") {
      std::printf("  %-14s %+6.1f%% wait vs BASE_LINE (expect negative)\n",
                  run.policy.c_str(),
                  (run.wait_seconds.mean / base - 1.0) * 100.0);
    }
  }

  // Fault-machinery overhead: arming the injector with an empty plan must
  // not change results and must cost <5% wall time vs faults disabled.
  driver::Scenario scenario = driver::EvaluationMonthFactory(1, days)(101);
  scenario.config.policy = "ADAPTIVE";
  auto timed_run = [&](const core::SimulationConfig& config) {
    auto t0 = std::chrono::steady_clock::now();
    core::SimulationResult result =
        core::RunSimulation(config, scenario.jobs);
    auto t1 = std::chrono::steady_clock::now();
    return std::pair<double, double>(
        std::chrono::duration<double>(t1 - t0).count(),
        result.report.avg_wait_seconds);
  };
  auto [off_wall, off_wait] = timed_run(scenario.config);
  core::SimulationConfig armed = scenario.config;
  armed.faults.plan_config.enabled = true;  // all fault knobs at zero
  auto [on_wall, on_wait] = timed_run(armed);
  std::printf("\nFault-injector overhead (empty plan, ADAPTIVE, seed 101): "
              "%.2fs -> %.2fs (%+.1f%%, expect <5%%); wait unchanged: %s\n",
              off_wall, on_wall, (on_wall / off_wall - 1.0) * 100.0,
              off_wait == on_wait ? "yes" : "NO");
  return 0;
}
