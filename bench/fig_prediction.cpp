// Prediction figure: how much does predicting I/O behaviour help, and is
// the learned predictor honest?
//
// Three sections, all on the month-1 evaluation workload:
//   accuracy       prequential (predict-before-observe) io_fraction MAE for
//                  the null, learned, and oracle predictors. The learned
//                  number must land strictly between the bounds.
//   replays        prediction-off replays of the BENCH_core.json scenarios;
//                  their digests must stay bit-identical to the pinned
//                  baseline (prediction is a strict no-op when disabled).
//   policy deltas  avg wait / bounded slowdown of PREDICTIVE vs its FCFS
//                  base and PREDICTIVE_ADAPTIVE vs ADAPTIVE, under each
//                  prediction mode.
//
// Run with
//   fig_prediction --json=OUT.json [--replay-days=30]
//                  [--baseline=BENCH_core.json]
// Exit 1 when a digest diverges from the baseline. tools/check_prediction_fig.py
// gates CI on the emitted JSON.
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "core/predictor.h"
#include "core/simulation.h"
#include "driver/experiment.h"
#include "driver/scenario.h"
#include "metrics/digest.h"
#include "util/atomic_file.h"
#include "util/units.h"

namespace {

using namespace iosched;
using Clock = std::chrono::steady_clock;

struct AccuracyResult {
  std::string mode;
  double mae_fraction = 0.0;
  std::size_t evaluated = 0;
  std::size_t cold_jobs = 0;
};

struct ReplayResult {
  std::string name;
  double seconds = 0.0;
  std::string digest;
};

struct DeltaResult {
  std::string mode;
  std::string policy;
  std::string baseline_policy;
  double wait_minutes = 0.0;
  double baseline_wait_minutes = 0.0;
  double slowdown = 0.0;
  double baseline_slowdown = 0.0;
};

/// Prequential accuracy of all three modes over the same workload. The null
/// predictor always answers "no signal" (io_fraction 0), the oracle reads
/// the true profile, so their MAEs bound what any learner can do.
std::vector<AccuracyResult> RunAccuracy(const driver::Scenario& scenario) {
  std::vector<AccuracyResult> out;
  double node_bw = scenario.config.machine.node_bandwidth_gbps;

  AccuracyResult null_result;
  null_result.mode = "null";
  double null_total = 0.0;
  for (const workload::Job& job : scenario.jobs) {
    null_total += std::abs(job.IoFraction(node_bw));
  }
  null_result.evaluated = scenario.jobs.size();
  null_result.cold_jobs = scenario.jobs.size();
  if (!scenario.jobs.empty()) {
    null_result.mae_fraction =
        null_total / static_cast<double>(scenario.jobs.size());
  }
  out.push_back(null_result);

  core::IoBehaviorPredictor::Options opts;
  opts.node_bandwidth_gbps = node_bw;
  core::IoBehaviorPredictor predictor(opts);
  core::PrequentialResult learned =
      core::EvaluatePrequential(predictor, scenario.jobs, node_bw);
  out.push_back({"learned", learned.mae_fraction, learned.evaluated,
                 learned.cold_jobs});

  // The oracle predicts each job's own profile: MAE 0 by construction.
  out.push_back({"oracle", 0.0, scenario.jobs.size(), 0});

  for (const AccuracyResult& r : out) {
    std::printf("accuracy %-8s mae=%.4f evaluated=%zu cold=%zu\n",
                r.mode.c_str(), r.mae_fraction, r.evaluated, r.cold_jobs);
  }
  return out;
}

ReplayResult RunReplay(const std::string& name, driver::Scenario scenario,
                       const char* policy) {
  core::SimulationConfig config = scenario.config;
  config.policy = policy;
  config.prediction = core::PredictionConfig{};  // explicitly off
  ReplayResult result;
  result.name = name;
  auto t0 = Clock::now();
  core::SimulationResult sim = core::RunSimulation(config, scenario.jobs);
  auto t1 = Clock::now();
  result.seconds = std::chrono::duration<double>(t1 - t0).count();
  result.digest = metrics::HexDigest(metrics::DigestRecords(sim.records));
  std::printf("replay %-10s %8.2f s  %s\n", name.c_str(), result.seconds,
              result.digest.c_str());
  return result;
}

/// Read the "digest" pinned for each replay name in a BENCH_core.json.
/// Same line-based format micro_components emits; see its ReadBaselineReplays.
std::string BaselineDigest(const std::string& path, const std::string& name) {
  std::ifstream in(path);
  if (!in) return "";
  std::string needle = "\"name\": \"" + name + "\"";
  std::string line;
  while (std::getline(in, line)) {
    if (line.find(needle) == std::string::npos ||
        line.find("\"digest\"") == std::string::npos ||
        line.find("\"speedup\"") != std::string::npos) {
      continue;
    }
    std::size_t k = line.find("\"digest\"");
    std::size_t start = line.find('"', k + std::strlen("\"digest\"") + 1);
    if (start == std::string::npos) return "";
    std::size_t end = line.find('"', start + 1);
    if (end == std::string::npos) return "";
    return line.substr(start + 1, end - start - 1);
  }
  return "";
}

DeltaResult RunDelta(const driver::Scenario& scenario, const std::string& mode,
                     const std::string& policy,
                     const driver::PolicyRun& baseline) {
  driver::Scenario predicted = scenario;
  predicted.config.prediction.enabled = true;
  predicted.config.prediction.mode = mode;
  driver::PolicyRun run = driver::RunSingle(predicted, policy);
  DeltaResult d;
  d.mode = mode;
  d.policy = policy;
  d.baseline_policy = baseline.policy;
  d.wait_minutes = util::SecondsToMinutes(run.report.avg_wait_seconds);
  d.baseline_wait_minutes =
      util::SecondsToMinutes(baseline.report.avg_wait_seconds);
  d.slowdown = run.report.avg_bounded_slowdown;
  d.baseline_slowdown = baseline.report.avg_bounded_slowdown;
  std::printf("delta %-7s %-19s wait=%7.1f min (%s %7.1f)  "
              "bsld=%6.2f (%6.2f)\n",
              d.mode.c_str(), d.policy.c_str(), d.wait_minutes,
              d.baseline_policy.c_str(), d.baseline_wait_minutes, d.slowdown,
              d.baseline_slowdown);
  return d;
}

/// Pull `--flag=value` out of argv; returns true (and strips it) on match.
bool TakeFlag(int& argc, char** argv, const char* flag, std::string* value) {
  std::string prefix = std::string(flag) + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      *value = argv[i] + prefix.size();
      for (int j = i; j + 1 < argc; ++j) argv[j] = argv[j + 1];
      --argc;
      return true;
    }
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  std::string baseline;
  std::string days_str;
  TakeFlag(argc, argv, "--json", &json_path);
  TakeFlag(argc, argv, "--baseline", &baseline);
  TakeFlag(argc, argv, "--replay-days", &days_str);
  double days = days_str.empty() ? 30.0
                                 : std::strtod(days_str.c_str(), nullptr);
  if (days <= 0) {
    std::fprintf(stderr, "bad --replay-days\n");
    return 2;
  }

  driver::Scenario month = driver::MakeEvaluationScenario(1, days);
  std::vector<AccuracyResult> accuracy = RunAccuracy(month);

  // Prediction-off replays of the pinned BENCH_core.json scenarios: the
  // subsystem must be a strict no-op when disabled.
  std::vector<ReplayResult> replays;
  for (const char* policy : {"BASE_LINE", "MAX_UTIL", "ADAPTIVE"}) {
    replays.push_back(
        RunReplay(policy, driver::MakeEvaluationScenario(1, days), policy));
  }
  replays.push_back(
      RunReplay("YEAR_SMOKE", driver::MakeYearScenario(5.0), "BASE_LINE"));

  bool digests_ok = true;
  if (!baseline.empty()) {
    for (const ReplayResult& r : replays) {
      std::string pinned = BaselineDigest(baseline, r.name);
      if (pinned.empty()) continue;
      bool match = pinned == r.digest;
      if (!match) digests_ok = false;
      std::printf("vs baseline %-10s digest %s\n", r.name.c_str(),
                  match ? "identical" : "CHANGED");
    }
  }

  // Policy deltas: each prediction-aware policy against the policy it
  // degrades to when prediction is off, under every mode.
  driver::PolicyRun fcfs = driver::RunSingle(month, "FCFS");
  driver::PolicyRun adaptive = driver::RunSingle(month, "ADAPTIVE");
  std::vector<DeltaResult> deltas;
  for (const char* mode : {"null", "learned", "oracle"}) {
    deltas.push_back(RunDelta(month, mode, "PREDICTIVE", fcfs));
    deltas.push_back(RunDelta(month, mode, "PREDICTIVE_ADAPTIVE", adaptive));
  }

  if (!json_path.empty()) {
    util::AtomicFileWriter json_file(json_path);
    std::ostream& out = json_file.stream();
    char buf[512];
    out << "{\n";
    out << "  \"schema\": \"fig-prediction-v1\",\n";
    std::snprintf(buf, sizeof(buf), "  \"replay_days\": %g,\n", days);
    out << buf;
    out << "  \"accuracy\": [\n";
    for (std::size_t i = 0; i < accuracy.size(); ++i) {
      const AccuracyResult& a = accuracy[i];
      std::snprintf(buf, sizeof(buf),
                    "    {\"mode\": \"%s\", \"mae_fraction\": %.6f, "
                    "\"evaluated\": %zu, \"cold_jobs\": %zu}%s\n",
                    a.mode.c_str(), a.mae_fraction, a.evaluated, a.cold_jobs,
                    i + 1 < accuracy.size() ? "," : "");
      out << buf;
    }
    out << "  ],\n";
    out << "  \"replays\": [\n";
    for (std::size_t i = 0; i < replays.size(); ++i) {
      const ReplayResult& r = replays[i];
      std::snprintf(buf, sizeof(buf),
                    "    {\"name\": \"%s\", \"seconds\": %.4f, "
                    "\"digest\": \"%s\"}%s\n",
                    r.name.c_str(), r.seconds, r.digest.c_str(),
                    i + 1 < replays.size() ? "," : "");
      out << buf;
    }
    out << "  ],\n";
    out << "  \"policy_deltas\": [\n";
    for (std::size_t i = 0; i < deltas.size(); ++i) {
      const DeltaResult& d = deltas[i];
      std::snprintf(
          buf, sizeof(buf),
          "    {\"mode\": \"%s\", \"policy\": \"%s\", "
          "\"baseline_policy\": \"%s\", \"wait_minutes\": %.2f, "
          "\"baseline_wait_minutes\": %.2f, \"bounded_slowdown\": %.4f, "
          "\"baseline_bounded_slowdown\": %.4f}%s\n",
          d.mode.c_str(), d.policy.c_str(), d.baseline_policy.c_str(),
          d.wait_minutes, d.baseline_wait_minutes, d.slowdown,
          d.baseline_slowdown, i + 1 < deltas.size() ? "," : "");
      out << buf;
    }
    out << "  ],\n";
    std::snprintf(buf, sizeof(buf), "  \"digests_ok\": %s\n",
                  digests_ok ? "true" : "false");
    out << buf;
    out << "}\n";
    json_file.Commit();
    std::printf("wrote %s%s\n", json_path.c_str(),
                digests_ok ? "" : " (DIGEST MISMATCH)");
  }
  return digests_ok ? 0 : 1;
}
