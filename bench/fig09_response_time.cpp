// Figure 9 reproduction: average job response time per policy on the three
// one-month evaluation workloads.
#include "figure_common.h"

int main() {
  using namespace iosched;
  std::printf("== Figure 9: average response time (all policies x 3 workloads, "
              "%.0f days) ==\n\n", bench::BenchDays());
  util::ThreadPool pool;
  bench::PaperSeries paper = bench::PaperFig9Response();
  for (int wl = 1; wl <= 3; ++wl) {
    auto runs = bench::RunMonth(wl, pool);
    bench::PrintTimeFigure("Fig. 9: average response time", wl, runs, paper,
                           [](const metrics::Report& r) {
                             return r.avg_response_seconds;
                           });
  }
  std::printf("Reproduction target: ADAPTIVE/MIN_AGGR_SLD reduce response "
              "time (up to ~30%%/20%%);\nFCFS and MAX_UTIL land near "
              "BASE_LINE.\n");
  return 0;
}
