// Beyond the paper: policy behaviour under storage faults. Sweeps the
// fraction of time the file servers run degraded (0-30%, at half BWmax)
// on Workload 1 and reports average wait time plus fault accounting for
// the baseline, the utilization-driven scheduler, and the adaptive policy.
//
// The paper models a fault-free month; production file systems do not
// cooperate. The question this bench answers: does the I/O-aware ordering
// still pay off when BWmax itself is unreliable, or does it overfit to the
// nominal capacity?
#include <cstdio>
#include <string>
#include <vector>

#include "figure_common.h"

int main() {
  using namespace iosched;
  const std::vector<double> fractions = {0.0, 0.1, 0.2, 0.3};
  const std::vector<std::string> policies = {"BASE_LINE", "MAX_UTIL",
                                             "ADAPTIVE"};
  std::printf("== Faults: average wait time vs degraded-storage fraction "
              "(Workload 1, %.0f days, 0.5x BWmax windows, 1%% per-attempt "
              "kills) ==\n\n", bench::BenchDays());

  driver::Scenario scenario =
      driver::MakeEvaluationScenario(1, bench::BenchDays());
  util::ThreadPool pool;

  // Row-major: runs[f * policies + p].
  std::vector<driver::PolicyRun> runs;
  for (double fraction : fractions) {
    driver::Scenario faulted = scenario;
    faulted.config.faults.plan_config.enabled = fraction > 0.0;
    faulted.config.faults.plan_config.seed = 42;
    faulted.config.faults.plan_config.degraded_fraction = fraction;
    faulted.config.faults.plan_config.degradation_factor = 0.5;
    faulted.config.faults.plan_config.job_kill_probability =
        fraction > 0.0 ? 0.01 : 0.0;
    driver::SweepSpec spec;
    spec.scenario = &faulted;
    spec.policies = policies;
    spec.pool = &pool;
    auto sweep = driver::RunSweep(spec).runs;
    runs.insert(runs.end(), sweep.begin(), sweep.end());
  }

  util::Table table({"degraded", "policy", "wait (min)", "vs BASE_LINE",
                     "requeued", "abandoned", "lost node-hours"});
  for (std::size_t f = 0; f < fractions.size(); ++f) {
    double base =
        runs[f * policies.size()].report.avg_wait_seconds;
    for (std::size_t p = 0; p < policies.size(); ++p) {
      const driver::PolicyRun& run = runs[f * policies.size() + p];
      table.AddRow(
          {util::Table::Num(fractions[f] * 100.0, 0) + "%", run.policy,
           util::Table::Num(
               util::SecondsToMinutes(run.report.avg_wait_seconds), 1),
           util::Table::Percent(
               base > 0 ? run.report.avg_wait_seconds / base - 1.0 : 0.0, 1),
           util::Table::Num(double(run.report.requeued_job_count), 0),
           util::Table::Num(double(run.report.abandoned_job_count), 0),
           util::Table::Num(run.report.lost_node_seconds / 3600.0, 0)});
    }
  }
  std::printf("%s\n", table.ToString().c_str());

  // Headline: how much of the clean-run advantage survives at 30% degraded.
  auto wait = [&](std::size_t f, std::size_t p) {
    return runs[f * policies.size() + p].report.avg_wait_seconds;
  };
  std::size_t last = fractions.size() - 1;
  std::printf("ADAPTIVE vs BASE_LINE wait: %+.1f%% clean, %+.1f%% at %.0f%% "
              "degraded time\n",
              (wait(0, 2) / wait(0, 0) - 1.0) * 100.0,
              (wait(last, 2) / wait(last, 0) - 1.0) * 100.0,
              fractions[last] * 100.0);
  return 0;
}
