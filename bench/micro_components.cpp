// Microbenchmarks of the framework's hot components (google-benchmark):
// event queue, RNG, knapsack DP, policy scheduling cycles, storage model
// rate updates, partition allocator, and an end-to-end simulation day.
//
// The binary doubles as the simulation-core regression harness. Run with
//   micro_components --core-json=BENCH_core.json [--replay-days=30]
//                    [--baseline=OLD.json] [--allow-digest-change=ADAPTIVE]
// to time each hot component plus a full synthetic-month replay under
// BASE_LINE / MAX_UTIL / ADAPTIVE and emit machine-readable BENCH_core.json.
// Every replay records an order-independent FNV-1a digest over the bit-exact
// per-job metric records; with --baseline the harness compares digests
// against a previous BENCH_core.json and fails (exit 1) on any mismatch not
// explicitly waived with --allow-digest-change, so hot-path refactors cannot
// silently change simulation results. Without --core-json the binary behaves
// as a plain google-benchmark suite.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <bit>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/io_policy.h"
#include "core/knapsack.h"
#include "core/policy_factory.h"
#include "core/simulation.h"
#include "driver/scenario.h"
#include "machine/machine.h"
#include "metrics/digest.h"
#include "metrics/speedup.h"
#include "obs/hub.h"
#include "sched/queue_policy.h"
#include "sched/wait_queue.h"
#include "sim/event_queue.h"
#include "storage/storage_model.h"
#include "util/atomic_file.h"
#include "util/rng.h"

namespace {

using namespace iosched;

void BM_EventQueuePushPop(benchmark::State& state) {
  const auto count = static_cast<std::size_t>(state.range(0));
  util::Rng rng(7);
  std::vector<double> times(count);
  for (auto& t : times) t = rng.Uniform(0, 1e6);
  for (auto _ : state) {
    sim::EventQueue q;
    for (double t : times) q.Push(t, [] {});
    while (!q.Empty()) benchmark::DoNotOptimize(q.Pop().time);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(count));
}
BENCHMARK(BM_EventQueuePushPop)->Arg(1 << 10)->Arg(1 << 14)->Arg(1 << 17);

void BM_EventQueueCancelHeavy(benchmark::State& state) {
  const std::size_t count = 4096;
  for (auto _ : state) {
    sim::EventQueue q;
    std::vector<sim::EventId> ids;
    ids.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
      ids.push_back(q.Push(static_cast<double>(i % 97), [] {}));
    }
    for (std::size_t i = 0; i < count; i += 2) q.Cancel(ids[i]);
    while (!q.Empty()) benchmark::DoNotOptimize(q.Pop().id);
  }
}
BENCHMARK(BM_EventQueueCancelHeavy);

void BM_Pcg32(benchmark::State& state) {
  util::Pcg32 g(42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(g());
  }
}
BENCHMARK(BM_Pcg32);

void BM_RngLogNormal(benchmark::State& state) {
  util::Rng rng(42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.LogNormal(8.6, 0.85));
  }
}
BENCHMARK(BM_RngLogNormal);

void BM_Knapsack(benchmark::State& state) {
  const auto items_count = static_cast<std::size_t>(state.range(0));
  util::Rng rng(13);
  std::vector<core::KnapsackItem> items(items_count);
  for (auto& item : items) {
    item.weight = rng.Uniform(4.0, 250.0);
    item.value = rng.Uniform(512.0, 16384.0);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::SolveKnapsack01(items, 250.0, 1.0));
  }
}
BENCHMARK(BM_Knapsack)->Arg(8)->Arg(32)->Arg(128);

std::vector<core::IoJobView> MakeActiveSet(std::size_t count) {
  util::Rng rng(99);
  std::vector<core::IoJobView> active(count);
  for (std::size_t i = 0; i < count; ++i) {
    auto& v = active[i];
    v.id = static_cast<workload::JobId>(i + 1);
    v.nodes = 512 << rng.UniformInt(0, 4);
    v.full_rate_gbps = 0.03125 * rng.Uniform(0.15, 0.75) * v.nodes;
    v.volume_gb = rng.Uniform(10, 5000);
    v.transferred_gb = v.volume_gb * rng.Uniform(0.0, 0.8);
    v.request_arrival = rng.Uniform(0, 100);
    v.job_start = 0;
    v.completed_compute_seconds = rng.Uniform(10, 1000);
    v.completed_io_seconds = rng.Uniform(0, 100);
  }
  return active;
}

void BM_PolicyAssign(benchmark::State& state, const char* policy_name) {
  auto policy = core::MakePolicy(policy_name);
  auto active = MakeActiveSet(static_cast<std::size_t>(state.range(0)));
  core::CycleInputs inputs;
  core::PlanContext ctx;
  ctx.active = active;
  ctx.inputs = &inputs;
  ctx.max_bandwidth_gbps = 250.0;
  ctx.now = 200.0;
  policy->Plan(ctx);
  core::PlanCursor cursor{1, 200.0, 0};
  for (auto _ : state) {
    benchmark::DoNotOptimize(policy->Execute(ctx, cursor));
  }
}
BENCHMARK_CAPTURE(BM_PolicyAssign, baseline, "BASE_LINE")->Arg(8)->Arg(64);
BENCHMARK_CAPTURE(BM_PolicyAssign, fcfs, "FCFS")->Arg(8)->Arg(64);
BENCHMARK_CAPTURE(BM_PolicyAssign, max_util, "MAX_UTIL")->Arg(8)->Arg(64);
BENCHMARK_CAPTURE(BM_PolicyAssign, min_aggr, "MIN_AGGR_SLD")->Arg(8)->Arg(64);
BENCHMARK_CAPTURE(BM_PolicyAssign, adaptive, "ADAPTIVE")->Arg(8)->Arg(64);

void BM_StorageAdvance(benchmark::State& state) {
  const auto transfers = static_cast<std::size_t>(state.range(0));
  storage::StorageModel sm(storage::StorageConfig{250.0, false});
  for (std::size_t i = 0; i < transfers; ++i) {
    auto id = static_cast<workload::JobId>(i + 1);
    sm.Begin(id, 512, 16.0, 1e12, 0.0);
    sm.SetRate(id, std::min(16.0, 250.0 / static_cast<double>(transfers)));
  }
  double now = 0.0;
  for (auto _ : state) {
    now += 0.25;
    sm.AdvanceTo(now);
    benchmark::DoNotOptimize(sm.NextCompletion());
  }
}
BENCHMARK(BM_StorageAdvance)->Arg(8)->Arg(64);

void BM_MachineAllocateRelease(benchmark::State& state) {
  machine::Machine machine(machine::MachineConfig::Mira());
  for (auto _ : state) {
    auto a = machine.Allocate(512);
    auto b = machine.Allocate(8192);
    auto c = machine.Allocate(2048);
    machine.Release(*c);
    machine.Release(*b);
    machine.Release(*a);
  }
}
BENCHMARK(BM_MachineAllocateRelease);

void BM_SimulateOneDay(benchmark::State& state, const char* policy) {
  driver::Scenario scenario = driver::MakeEvaluationScenario(2, 1.0);
  core::SimulationConfig config = scenario.config;
  config.policy = policy;
  for (auto _ : state) {
    auto result = core::RunSimulation(config, scenario.jobs);
    benchmark::DoNotOptimize(result.report.avg_wait_seconds);
  }
}
BENCHMARK_CAPTURE(BM_SimulateOneDay, baseline, "BASE_LINE")
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_SimulateOneDay, adaptive, "ADAPTIVE")
    ->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------------
// Regression harness (--core-json mode): hand-rolled component timers plus
// full synthetic-month replays with bit-exact per-job metric digests.
// ---------------------------------------------------------------------------

using Clock = std::chrono::steady_clock;

/// Best-of-`reps` wall time of `fn()` in seconds.
template <typename Fn>
double TimeBestOf(int reps, Fn&& fn) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    auto t0 = Clock::now();
    fn();
    auto t1 = Clock::now();
    best = std::min(best, std::chrono::duration<double>(t1 - t0).count());
  }
  return best;
}

struct ComponentResult {
  std::string name;
  double ns_per_op = 0.0;
  std::uint64_t ops = 0;
};

struct ReplayResult {
  std::string name;
  double seconds = 0.0;
  std::size_t jobs = 0;
  std::uint64_t events = 0;
  std::uint64_t io_requests = 0;
  std::uint64_t cycles = 0;
  std::string digest;
};

ComponentResult TimeComponent(const std::string& name, std::uint64_t ops,
                              int reps, const std::function<void()>& fn) {
  ComponentResult result;
  result.name = name;
  result.ops = ops;
  result.ns_per_op = TimeBestOf(reps, fn) * 1e9 / static_cast<double>(ops);
  std::printf("  component %-28s %12.1f ns/op\n", name.c_str(),
              result.ns_per_op);
  return result;
}

std::vector<ComponentResult> RunComponentTimers() {
  std::vector<ComponentResult> out;
  std::printf("component timers:\n");

  {
    // Push/pop throughput of the discrete-event core.
    const std::size_t count = 1 << 15;
    util::Rng rng(7);
    std::vector<double> times(count);
    for (auto& t : times) t = rng.Uniform(0, 1e6);
    out.push_back(TimeComponent("event_queue_push_pop", 2 * count, 5, [&] {
      sim::EventQueue q;
      for (double t : times) q.Push(t, [] {});
      while (!q.Empty()) q.Pop();
    }));
  }
  {
    // The I/O-completion rescheduling pattern: one pending completion event
    // per cycle is cancelled and re-pushed, with only occasional pops. An
    // event queue without compaction accumulates every cancelled entry deep
    // in the heap across such a run.
    const std::size_t rounds = 1 << 16;
    out.push_back(TimeComponent("event_queue_reschedule_churn", rounds, 3, [&] {
      sim::EventQueue q;
      std::vector<sim::EventId> live;
      double now = 0.0;
      for (std::size_t i = 0; i < 64; ++i) {
        live.push_back(q.Push(now + 100.0 + static_cast<double>(i), [] {}));
      }
      util::Pcg32 g(11);
      for (std::size_t r = 0; r < rounds; ++r) {
        std::size_t victim = g() % live.size();
        q.Cancel(live[victim]);
        now += 0.01;
        live[victim] = q.Push(now + 100.0 + static_cast<double>(g() % 128),
                              [] {});
        if ((r & 1023) == 0) {
          sim::Event ev = q.Pop();
          live.erase(std::find(live.begin(), live.end(), ev.id));
          live.push_back(q.Push(now + 100.0, [] {}));
        }
      }
      while (!q.Empty()) q.Pop();
    }));
  }
  {
    // One storage scheduling cycle: accrue, re-grant every rate, validate,
    // find the next completion. This is the per-cycle StorageModel cost.
    const std::size_t transfers = 64;
    const std::size_t cycles = 4096;
    out.push_back(TimeComponent("storage_rate_cycle", cycles, 3, [&] {
      storage::StorageModel sm(storage::StorageConfig{250.0, true});
      for (std::size_t i = 0; i < transfers; ++i) {
        sm.Begin(static_cast<workload::JobId>(i + 1), 512, 16.0, 1e12, 0.0);
      }
      double now = 0.0;
      double share = 250.0 / static_cast<double>(transfers);
      for (std::size_t c = 0; c < cycles; ++c) {
        now += 0.25;
        sm.AdvanceTo(now);
        for (std::size_t i = 0; i < transfers; ++i) {
          sm.SetRate(static_cast<workload::JobId>(i + 1),
                     std::min(16.0, share));
        }
        sm.ValidateAssignment();
        sm.NextCompletion();
      }
    }));
  }
  {
    // Begin/Has/Get/End churn against a deep active set: the per-request
    // bookkeeping cost of the storage index.
    const std::size_t resident = 256;
    const std::size_t churn = 8192;
    out.push_back(TimeComponent("storage_lookup_churn", churn, 3, [&] {
      storage::StorageModel sm(storage::StorageConfig{250.0, false});
      for (std::size_t i = 0; i < resident; ++i) {
        sm.Begin(static_cast<workload::JobId>(i + 1), 512, 16.0, 1e12, 0.0);
      }
      workload::JobId next = resident + 1;
      for (std::size_t c = 0; c < churn; ++c) {
        workload::JobId probe = static_cast<workload::JobId>(c % resident) + 1;
        if (!sm.Has(probe)) std::abort();
        if (sm.Get(probe).nodes != 512) std::abort();
        sm.Begin(next, 512, 16.0, 1e12, 0.0);
        sm.Abort(next);
        ++next;
      }
    }));
  }
  for (const char* policy_name : {"BASE_LINE", "MAX_UTIL", "ADAPTIVE"}) {
    auto policy = core::MakePolicy(policy_name);
    auto active = MakeActiveSet(64);
    core::CycleInputs inputs;
    core::PlanContext ctx;
    ctx.active = active;
    ctx.inputs = &inputs;
    ctx.max_bandwidth_gbps = 250.0;
    ctx.now = 200.0;
    policy->Plan(ctx);
    const std::size_t calls = 2048;
    out.push_back(TimeComponent(
        std::string("policy_assign_") + policy_name, calls, 3, [&] {
          core::PlanCursor cursor{1, 200.0, 0};
          for (std::size_t c = 0; c < calls; ++c) {
            policy->Execute(ctx, cursor);
            ++cursor.cycles_in_plan;
          }
        }));
  }
  {
    // WFP ordering of a deep wait queue — the per-dispatch-pass cost as the
    // scheduler now pays it: a standing WaitQueue maintained incrementally
    // across passes (scores recomputed, adaptive re-sort from the previous
    // order) with one arrival and one start per pass as churn. The legacy
    // full re-sort of the same queue is timed alongside for reference.
    const std::size_t depth = 512;
    util::Rng rng(5);
    std::vector<workload::Job> jobs(2 * depth);
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      jobs[i].id = static_cast<workload::JobId>(i + 1);
      jobs[i].submit_time = rng.Uniform(0, 1e5);
      jobs[i].nodes = 512 << rng.UniformInt(0, 5);
      jobs[i].requested_walltime = rng.Uniform(1800, 86400);
    }
    const std::size_t passes = 2048;
    out.push_back(TimeComponent("queue_order_wfp", passes, 3, [&] {
      sched::WaitQueue wq(sched::QueueOrder::kWfp);
      for (std::size_t i = 0; i < depth; ++i) {
        wq.Insert(jobs[i], jobs[i].nodes);
      }
      double now = 2e5;
      std::size_t arriving = depth;
      std::size_t leaving = 0;
      for (std::size_t c = 0; c < passes; ++c) {
        std::span<const sched::WaitQueue::Entry> ordered = wq.Ordered(now);
        benchmark::DoNotOptimize(ordered.data());
        now += 30.0;
        wq.Remove(jobs[leaving].id);
        wq.Insert(jobs[arriving], jobs[arriving].nodes);
        arriving = (arriving + 1) % jobs.size();
        leaving = (leaving + 1) % jobs.size();
      }
    }));
    std::vector<const workload::Job*> queue(depth);
    for (std::size_t i = 0; i < depth; ++i) queue[i] = &jobs[i];
    const std::size_t calls = 2048;
    out.push_back(TimeComponent("queue_order_wfp_full_resort", calls, 3, [&] {
      for (std::size_t c = 0; c < calls; ++c) {
        sched::OrderQueue(queue, sched::QueueOrder::kWfp, 2e5);
      }
    }));
  }
  return out;
}

ReplayResult RunReplayScenario(const std::string& name,
                               driver::Scenario scenario,
                               const char* policy) {
  core::SimulationConfig config = scenario.config;
  config.policy = policy;
  ReplayResult result;
  result.name = name;
  auto t0 = Clock::now();
  core::SimulationResult sim = core::RunSimulation(config, scenario.jobs);
  auto t1 = Clock::now();
  result.seconds = std::chrono::duration<double>(t1 - t0).count();
  result.jobs = sim.records.size();
  result.events = sim.events_processed;
  result.io_requests = sim.io_requests;
  result.cycles = sim.io_scheduling_cycles;
  result.digest = metrics::HexDigest(metrics::DigestRecords(sim.records));
  std::printf("replay %-10s %8.2f s  jobs=%zu events=%llu cycles=%llu %s\n",
              name.c_str(), result.seconds, result.jobs,
              static_cast<unsigned long long>(result.events),
              static_cast<unsigned long long>(result.cycles),
              result.digest.c_str());
  return result;
}

ReplayResult RunReplay(const char* policy, double days) {
  return RunReplayScenario(policy, driver::MakeEvaluationScenario(1, days),
                           policy);
}

struct BaselineReplay {
  std::string name;
  double seconds = 0.0;
  std::string digest;
};

/// Minimal reader for the `replays` entries of a BENCH_core.json we emitted
/// ourselves: each replay is one line carrying "name", "seconds" and
/// "digest" keys (comparison lines carry "speedup" instead, and component
/// lines carry "ns_per_op", so neither can be confused with a replay).
std::vector<BaselineReplay> ReadBaselineReplays(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "cannot read baseline %s\n", path.c_str());
    std::exit(2);
  }
  std::vector<BaselineReplay> out;
  std::string line;
  while (std::getline(in, line)) {
    if (line.find("\"name\"") == std::string::npos ||
        line.find("\"seconds\"") == std::string::npos ||
        line.find("\"digest\"") == std::string::npos ||
        line.find("\"speedup\"") != std::string::npos) {
      continue;
    }
    BaselineReplay b;
    auto grab_string = [&line](const char* key) -> std::string {
      std::size_t k = line.find(key);
      if (k == std::string::npos) return "";
      std::size_t start = line.find('"', k + std::strlen(key) + 1);
      if (start == std::string::npos) return "";
      std::size_t end = line.find('"', start + 1);
      if (end == std::string::npos) return "";
      return line.substr(start + 1, end - start - 1);
    };
    b.name = grab_string("\"name\"");
    b.digest = grab_string("\"digest\"");
    std::size_t k = line.find("\"seconds\"");
    if (k != std::string::npos) {
      b.seconds = std::strtod(line.c_str() + k + std::strlen("\"seconds\":"),
                              nullptr);
    }
    if (!b.name.empty() && !b.digest.empty()) out.push_back(b);
  }
  return out;
}

bool ListContains(const std::string& csv, const std::string& item) {
  std::stringstream ss(csv);
  std::string token;
  while (std::getline(ss, token, ',')) {
    if (token == item) return true;
  }
  return false;
}

int RunCoreHarness(const std::string& json_path, const std::string& baseline,
                   double replay_days, const std::string& allow_changes,
                   bool skip_components, bool skip_year, double year_days) {
  std::vector<ComponentResult> components;
  if (!skip_components) components = RunComponentTimers();
  std::vector<ReplayResult> replays;
  for (const char* policy : {"BASE_LINE", "MAX_UTIL", "ADAPTIVE"}) {
    replays.push_back(RunReplay(policy, replay_days));
  }
  // Year-scale throughput replays (BASE_LINE): YEAR_SMOKE is the 5-day cut
  // CI gates on; YEAR is the full ~1M-job run (skippable for quick passes).
  replays.push_back(RunReplayScenario(
      "YEAR_SMOKE", driver::MakeYearScenario(5.0), "BASE_LINE"));
  if (!skip_year) {
    replays.push_back(RunReplayScenario(
        "YEAR", driver::MakeYearScenario(year_days), "BASE_LINE"));
  }

  bool digests_ok = true;
  std::vector<BaselineReplay> base;
  std::vector<metrics::SpeedupSample> speedups;
  if (!baseline.empty()) {
    base = ReadBaselineReplays(baseline);
    for (const ReplayResult& r : replays) {
      auto it = std::find_if(base.begin(), base.end(),
                             [&](const BaselineReplay& b) {
                               return b.name == r.name;
                             });
      if (it == base.end()) continue;
      bool match = it->digest == r.digest;
      bool allowed = ListContains(allow_changes, r.name);
      if (!match && !allowed) digests_ok = false;
      speedups.push_back({it->seconds, r.seconds});
      std::printf("vs baseline %-10s speedup=%.2fx digest %s%s\n",
                  r.name.c_str(), metrics::Speedup(it->seconds, r.seconds),
                  match ? "identical" : "CHANGED",
                  !match && allowed ? " (waived)" : "");
    }
  }
  double speedup_geomean = metrics::SpeedupGeomean(speedups);

  util::AtomicFileWriter json_file(json_path);
  std::ostream& out = json_file.stream();
  out << "{\n";
  out << "  \"schema\": \"bench-core-v1\",\n";
  char buf[512];
  std::snprintf(buf, sizeof(buf), "  \"replay_days\": %g,\n", replay_days);
  out << buf;
  out << "  \"components\": [\n";
  for (std::size_t i = 0; i < components.size(); ++i) {
    const ComponentResult& c = components[i];
    std::snprintf(buf, sizeof(buf),
                  "    {\"component\": \"%s\", \"ns_per_op\": %.2f, "
                  "\"ops\": %llu}%s\n",
                  c.name.c_str(), c.ns_per_op,
                  static_cast<unsigned long long>(c.ops),
                  i + 1 < components.size() ? "," : "");
    out << buf;
  }
  out << "  ],\n";
  out << "  \"replays\": [\n";
  for (std::size_t i = 0; i < replays.size(); ++i) {
    const ReplayResult& r = replays[i];
    std::snprintf(buf, sizeof(buf),
                  "    {\"name\": \"%s\", \"seconds\": %.4f, \"jobs\": %zu, "
                  "\"events\": %llu, \"io_requests\": %llu, \"cycles\": %llu, "
                  "\"digest\": \"%s\"}%s\n",
                  r.name.c_str(), r.seconds, r.jobs,
                  static_cast<unsigned long long>(r.events),
                  static_cast<unsigned long long>(r.io_requests),
                  static_cast<unsigned long long>(r.cycles),
                  r.digest.c_str(), i + 1 < replays.size() ? "," : "");
    out << buf;
  }
  out << "  ]";
  if (!baseline.empty()) {
    out << ",\n  \"baseline\": {\n";
    std::snprintf(buf, sizeof(buf), "    \"path\": \"%s\",\n",
                  baseline.c_str());
    out << buf;
    out << "    \"comparison\": [\n";
    bool first = true;
    for (const ReplayResult& r : replays) {
      auto it = std::find_if(base.begin(), base.end(),
                             [&](const BaselineReplay& b) {
                               return b.name == r.name;
                             });
      if (it == base.end()) continue;
      if (!first) out << ",\n";
      first = false;
      std::snprintf(buf, sizeof(buf),
                    "      {\"name\": \"%s\", \"baseline_seconds\": %.4f, "
                    "\"speedup\": %.3f, \"digest_match\": %s, "
                    "\"digest_change_allowed\": %s}",
                    r.name.c_str(), it->seconds,
                    metrics::Speedup(it->seconds, r.seconds),
                    it->digest == r.digest ? "true" : "false",
                    ListContains(allow_changes, r.name) ? "true" : "false");
      out << buf;
    }
    out << "\n    ],\n";
    std::snprintf(buf, sizeof(buf), "    \"speedup_geomean\": %.3f,\n",
                  speedup_geomean);
    out << buf;
    std::snprintf(buf, sizeof(buf), "    \"digests_ok\": %s\n",
                  digests_ok ? "true" : "false");
    out << buf;
    out << "  }";
  }
  out << "\n}\n";
  try {
    json_file.Commit();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 2;
  }
  std::printf("wrote %s%s\n", json_path.c_str(),
              digests_ok ? "" : " (DIGEST MISMATCH)");
  return digests_ok ? 0 : 1;
}

/// --obs-check mode: replay each policy with observability off and on and
/// verify the invariants the subsystem promises — identical job records
/// (digest equality), the hub's event counter agreeing with the engine's
/// own count, and a populated trace/sampler. Reports the wall-time overhead
/// of the enabled hub. Exit 1 on any violation.
int RunObsCheck(double days) {
  int failures = 0;
  for (const char* policy : {"BASE_LINE", "MAX_UTIL", "ADAPTIVE"}) {
    driver::Scenario scenario = driver::MakeEvaluationScenario(1, days);
    core::SimulationConfig config = scenario.config;
    config.policy = policy;

    auto t0 = Clock::now();
    core::SimulationResult off = core::RunSimulation(config, scenario.jobs);
    auto t1 = Clock::now();

    config.obs.enabled = true;
    obs::Hub hub(config.obs);
    auto t2 = Clock::now();
    core::SimulationResult on =
        core::RunSimulation(config, scenario.jobs, nullptr, &hub);
    auto t3 = Clock::now();

    double off_s = std::chrono::duration<double>(t1 - t0).count();
    double on_s = std::chrono::duration<double>(t3 - t2).count();
    bool digest_ok = metrics::DigestRecords(off.records) ==
                     metrics::DigestRecords(on.records);
    bool counter_ok = hub.events_processed->value() == on.events_processed;
    bool trace_ok = hub.tracer().size() > 0;
    bool sampler_ok = !hub.sampler().empty();
    bool ok = digest_ok && counter_ok && trace_ok && sampler_ok;
    if (!ok) ++failures;
    std::printf(
        "obs-check %-10s off=%.2fs on=%.2fs overhead=%+.1f%% digest=%s "
        "events=%llu/%llu trace=%zu samples=%zu %s\n",
        policy, off_s, on_s,
        off_s > 0 ? (on_s - off_s) / off_s * 100.0 : 0.0,
        digest_ok ? "identical" : "CHANGED",
        static_cast<unsigned long long>(hub.events_processed->value()),
        static_cast<unsigned long long>(on.events_processed),
        hub.tracer().size(), hub.sampler().samples().size(),
        ok ? "ok" : "FAIL");
  }
  return failures > 0 ? 1 : 0;
}

/// Pull `--flag=value` out of argv; returns true (and strips it) on match.
bool TakeFlag(int& argc, char** argv, const char* flag, std::string* value) {
  std::string prefix = std::string(flag) + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      *value = argv[i] + prefix.size();
      for (int j = i; j + 1 < argc; ++j) argv[j] = argv[j + 1];
      --argc;
      return true;
    }
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  std::string baseline;
  std::string days_str;
  std::string allow_changes;
  std::string skip_components;
  std::string obs_check;
  std::string skip_year;
  std::string year_days_str;
  TakeFlag(argc, argv, "--core-json", &json_path);
  TakeFlag(argc, argv, "--baseline", &baseline);
  TakeFlag(argc, argv, "--replay-days", &days_str);
  TakeFlag(argc, argv, "--allow-digest-change", &allow_changes);
  // --skip-components=1: replays only (fast CI runs, clean profiles).
  TakeFlag(argc, argv, "--skip-components", &skip_components);
  // --obs-check=1: verify the observability layer changes no results.
  TakeFlag(argc, argv, "--obs-check", &obs_check);
  // --skip-year=1: omit the full YEAR replay (YEAR_SMOKE always runs);
  // --year-days=N: shrink the YEAR replay from the default 365 days.
  TakeFlag(argc, argv, "--skip-year", &skip_year);
  TakeFlag(argc, argv, "--year-days", &year_days_str);
  double days = days_str.empty() ? 30.0 : std::strtod(days_str.c_str(),
                                                      nullptr);
  if (days <= 0) {
    std::fprintf(stderr, "bad --replay-days\n");
    return 2;
  }
  double year_days = year_days_str.empty()
                         ? 365.0
                         : std::strtod(year_days_str.c_str(), nullptr);
  if (year_days <= 0) {
    std::fprintf(stderr, "bad --year-days\n");
    return 2;
  }
  if (obs_check == "1") return RunObsCheck(days);
  if (!json_path.empty()) {
    return RunCoreHarness(json_path, baseline, days, allow_changes,
                          skip_components == "1", skip_year == "1",
                          year_days);
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
