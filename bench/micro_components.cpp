// Microbenchmarks of the framework's hot components (google-benchmark):
// event queue, RNG, knapsack DP, policy scheduling cycles, storage model
// rate updates, partition allocator, and an end-to-end simulation day.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <vector>

#include "core/io_policy.h"
#include "core/knapsack.h"
#include "core/policy_factory.h"
#include "core/simulation.h"
#include "driver/scenario.h"
#include "machine/machine.h"
#include "sim/event_queue.h"
#include "storage/storage_model.h"
#include "util/rng.h"

namespace {

using namespace iosched;

void BM_EventQueuePushPop(benchmark::State& state) {
  const auto count = static_cast<std::size_t>(state.range(0));
  util::Rng rng(7);
  std::vector<double> times(count);
  for (auto& t : times) t = rng.Uniform(0, 1e6);
  for (auto _ : state) {
    sim::EventQueue q;
    for (double t : times) q.Push(t, [] {});
    while (!q.Empty()) benchmark::DoNotOptimize(q.Pop().time);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(count));
}
BENCHMARK(BM_EventQueuePushPop)->Arg(1 << 10)->Arg(1 << 14)->Arg(1 << 17);

void BM_EventQueueCancelHeavy(benchmark::State& state) {
  const std::size_t count = 4096;
  for (auto _ : state) {
    sim::EventQueue q;
    std::vector<sim::EventId> ids;
    ids.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
      ids.push_back(q.Push(static_cast<double>(i % 97), [] {}));
    }
    for (std::size_t i = 0; i < count; i += 2) q.Cancel(ids[i]);
    while (!q.Empty()) benchmark::DoNotOptimize(q.Pop().id);
  }
}
BENCHMARK(BM_EventQueueCancelHeavy);

void BM_Pcg32(benchmark::State& state) {
  util::Pcg32 g(42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(g());
  }
}
BENCHMARK(BM_Pcg32);

void BM_RngLogNormal(benchmark::State& state) {
  util::Rng rng(42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.LogNormal(8.6, 0.85));
  }
}
BENCHMARK(BM_RngLogNormal);

void BM_Knapsack(benchmark::State& state) {
  const auto items_count = static_cast<std::size_t>(state.range(0));
  util::Rng rng(13);
  std::vector<core::KnapsackItem> items(items_count);
  for (auto& item : items) {
    item.weight = rng.Uniform(4.0, 250.0);
    item.value = rng.Uniform(512.0, 16384.0);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::SolveKnapsack01(items, 250.0, 1.0));
  }
}
BENCHMARK(BM_Knapsack)->Arg(8)->Arg(32)->Arg(128);

std::vector<core::IoJobView> MakeActiveSet(std::size_t count) {
  util::Rng rng(99);
  std::vector<core::IoJobView> active(count);
  for (std::size_t i = 0; i < count; ++i) {
    auto& v = active[i];
    v.id = static_cast<workload::JobId>(i + 1);
    v.nodes = 512 << rng.UniformInt(0, 4);
    v.full_rate_gbps = 0.03125 * rng.Uniform(0.15, 0.75) * v.nodes;
    v.volume_gb = rng.Uniform(10, 5000);
    v.transferred_gb = v.volume_gb * rng.Uniform(0.0, 0.8);
    v.request_arrival = rng.Uniform(0, 100);
    v.job_start = 0;
    v.completed_compute_seconds = rng.Uniform(10, 1000);
    v.completed_io_seconds = rng.Uniform(0, 100);
  }
  return active;
}

void BM_PolicyAssign(benchmark::State& state, const char* policy_name) {
  auto policy = core::MakePolicy(policy_name);
  auto active = MakeActiveSet(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(policy->Assign(active, 250.0, 200.0));
  }
}
BENCHMARK_CAPTURE(BM_PolicyAssign, baseline, "BASE_LINE")->Arg(8)->Arg(64);
BENCHMARK_CAPTURE(BM_PolicyAssign, fcfs, "FCFS")->Arg(8)->Arg(64);
BENCHMARK_CAPTURE(BM_PolicyAssign, max_util, "MAX_UTIL")->Arg(8)->Arg(64);
BENCHMARK_CAPTURE(BM_PolicyAssign, min_aggr, "MIN_AGGR_SLD")->Arg(8)->Arg(64);
BENCHMARK_CAPTURE(BM_PolicyAssign, adaptive, "ADAPTIVE")->Arg(8)->Arg(64);

void BM_StorageAdvance(benchmark::State& state) {
  const auto transfers = static_cast<std::size_t>(state.range(0));
  storage::StorageModel sm(storage::StorageConfig{250.0, false});
  for (std::size_t i = 0; i < transfers; ++i) {
    auto id = static_cast<workload::JobId>(i + 1);
    sm.Begin(id, 512, 16.0, 1e12, 0.0);
    sm.SetRate(id, std::min(16.0, 250.0 / static_cast<double>(transfers)));
  }
  double now = 0.0;
  for (auto _ : state) {
    now += 0.25;
    sm.AdvanceTo(now);
    benchmark::DoNotOptimize(sm.NextCompletion());
  }
}
BENCHMARK(BM_StorageAdvance)->Arg(8)->Arg(64);

void BM_MachineAllocateRelease(benchmark::State& state) {
  machine::Machine machine(machine::MachineConfig::Mira());
  for (auto _ : state) {
    auto a = machine.Allocate(512);
    auto b = machine.Allocate(8192);
    auto c = machine.Allocate(2048);
    machine.Release(*c);
    machine.Release(*b);
    machine.Release(*a);
  }
}
BENCHMARK(BM_MachineAllocateRelease);

void BM_SimulateOneDay(benchmark::State& state, const char* policy) {
  driver::Scenario scenario = driver::MakeEvaluationScenario(2, 1.0);
  core::SimulationConfig config = scenario.config;
  config.policy = policy;
  for (auto _ : state) {
    auto result = core::RunSimulation(config, scenario.jobs);
    benchmark::DoNotOptimize(result.report.avg_wait_seconds);
  }
}
BENCHMARK_CAPTURE(BM_SimulateOneDay, baseline, "BASE_LINE")
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_SimulateOneDay, adaptive, "ADAPTIVE")
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
