// Figure 8 reproduction: average job wait time per policy on the three
// one-month evaluation workloads.
#include "figure_common.h"

int main() {
  using namespace iosched;
  std::printf("== Figure 8: average wait time (all policies x 3 workloads, "
              "%.0f days) ==\n\n", bench::BenchDays());
  util::ThreadPool pool;
  bench::PaperSeries paper = bench::PaperFig8Wait();
  for (int wl = 1; wl <= 3; ++wl) {
    auto runs = bench::RunMonth(wl, pool);
    bench::PrintTimeFigure("Fig. 8: average wait time", wl, runs, paper,
                           [](const metrics::Report& r) {
                             return r.avg_wait_seconds;
                           });
  }
  std::printf("Reproduction target: every I/O-aware policy at or below "
              "BASE_LINE;\nADAPTIVE and MIN_AGGR_SLD cut wait by >= 30%% on "
              "the I/O-heavy months.\n");
  return 0;
}
