// Figure 10 reproduction: system utilization (normalized to BASE_LINE) per
// policy on the three one-month evaluation workloads.
#include "figure_common.h"

int main() {
  using namespace iosched;
  std::printf("== Figure 10: normalized system utilization (all policies x 3 "
              "workloads, %.0f days) ==\n\n", bench::BenchDays());
  util::ThreadPool pool;
  bench::PaperSeries paper = bench::PaperFig10Utilization();
  for (int wl = 1; wl <= 3; ++wl) {
    auto runs = bench::RunMonth(wl, pool);
    util::Table table({"policy", "measured util", "normalized",
                       "paper normalized"});
    double base = runs.front().report.utilization;
    for (const auto& run : runs) {
      double normalized = base > 0 ? run.report.utilization / base : 0.0;
      // Prediction-aware policies have no paper series; leave the cell blank.
      auto series = paper.find(run.policy);
      table.AddRow(
          {run.policy,
           util::Table::Num(run.report.utilization * 100.0, 1) + "%",
           util::Table::Ratio(normalized, 3),
           series != paper.end() ? util::Table::Ratio(series->second[wl - 1], 2)
                                 : "-"});
    }
    std::printf("Fig. 10: normalized utilization — Workload %d\n%s\n", wl,
                table.ToString().c_str());
  }
  std::printf("Reproduction target: MAX_UTIL gains the most utilization; "
              "other policies stay within a few percent of BASE_LINE.\n");
  return 0;
}
