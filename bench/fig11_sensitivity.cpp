// Figure 11 reproduction: impact of I/O intensiveness (expansion factor EF)
// on average wait time, all six policies on Workload 1.
#include "figure_common.h"

int main() {
  using namespace iosched;
  const std::vector<double> factors = {0.3, 0.5, 0.7, 0.9, 1.2, 1.5};
  std::printf("== Figure 11: average wait time vs I/O expansion factor "
              "(Workload 1, %.0f days) ==\n\n", bench::BenchDays());

  driver::Scenario scenario =
      driver::MakeEvaluationScenario(1, bench::BenchDays());
  util::ThreadPool pool;
  driver::SweepSpec spec;
  spec.scenario = &scenario;
  spec.policies = core::AllPolicyNames();
  spec.expansion_factors = factors;
  spec.pool = &pool;
  auto runs = driver::RunSweep(spec).runs;
  util::Table table =
      driver::SensitivityTable(runs, factors, core::AllPolicyNames());
  std::printf("%s\n", table.ToString().c_str());

  // The paper's qualitative observations, checked against this run:
  //  (1) wait time grows with EF for every policy;
  //  (2) at low EF (30-50%) the policies are close together;
  //  (3) at EF=150% ADAPTIVE/MIN_AGGR_SLD cut wait by up to ~50%.
  std::size_t n = core::AllPolicyNames().size();
  auto wait_of = [&](std::size_t f, const std::string& policy) {
    for (std::size_t p = 0; p < n; ++p) {
      const auto& run = runs[f * n + p];
      if (run.policy == policy) {
        return util::SecondsToMinutes(run.report.avg_wait_seconds);
      }
    }
    return 0.0;
  };
  double base_hi = wait_of(factors.size() - 1, "BASE_LINE");
  double adaptive_hi = wait_of(factors.size() - 1, "ADAPTIVE");
  double aggr_hi = wait_of(factors.size() - 1, "MIN_AGGR_SLD");
  std::printf("At EF=150%%: ADAPTIVE %+.1f%%, MIN_AGGR_SLD %+.1f%% vs "
              "BASE_LINE (paper: up to ~-50%%)\n",
              (adaptive_hi / base_hi - 1.0) * 100.0,
              (aggr_hi / base_hi - 1.0) * 100.0);
  return 0;
}
