// Ablation: batch-scheduler configuration (queue order x EASY backfilling)
// under a fixed I/O policy. DESIGN.md calls out WFP+EASY as the Cobalt
// behaviour we mirror; this bench quantifies how much each piece matters
// and confirms the I/O-policy effect is robust to the batch layer.
#include <cstdio>
#include <string>
#include <vector>

#include "core/simulation.h"
#include "driver/scenario.h"
#include "figure_common.h"
#include "util/table.h"
#include "util/units.h"

int main() {
  using namespace iosched;
  struct Variant {
    const char* label;
    sched::QueueOrder order;
    bool backfill;
  };
  const std::vector<Variant> variants = {
      {"WFP + EASY backfill (Cobalt)", sched::QueueOrder::kWfp, true},
      {"WFP, no backfill", sched::QueueOrder::kWfp, false},
      {"FCFS + EASY backfill", sched::QueueOrder::kFcfs, true},
      {"FCFS, no backfill", sched::QueueOrder::kFcfs, false},
  };
  std::printf("== Ablation: batch scheduler variants (Workload 2, %.0f days) "
              "==\n\n", bench::BenchDays());

  driver::Scenario scenario =
      driver::MakeEvaluationScenario(2, bench::BenchDays());
  for (const char* policy : {"BASE_LINE", "ADAPTIVE"}) {
    util::Table table({"batch variant", "avg wait (min)",
                       "avg response (min)", "utilization"});
    for (const Variant& v : variants) {
      core::SimulationConfig config = scenario.config;
      config.policy = policy;
      config.batch.order = v.order;
      config.batch.easy_backfill = v.backfill;
      auto result = core::RunSimulation(config, scenario.jobs);
      table.AddRow(
          {v.label,
           util::Table::Num(
               util::SecondsToMinutes(result.report.avg_wait_seconds), 1),
           util::Table::Num(
               util::SecondsToMinutes(result.report.avg_response_seconds), 1),
           util::Table::Num(result.report.utilization * 100.0, 1) + "%"});
    }
    std::printf("I/O policy: %s\n%s\n", policy, table.ToString().c_str());
  }
  std::printf("Expected: EASY backfilling cuts wait substantially under "
              "either queue order;\nthe ADAPTIVE-vs-BASE_LINE gap persists "
              "across batch variants.\n");
  return 0;
}
