// Ablation: Cons-MaxUtil's knapsack discretisation. The 0-1 knapsack is
// solved on a DP grid of `unit` GB/s; coarser units are faster but round
// demands up more aggressively, admitting fewer jobs. This bench measures
// both the solver cost and the end-to-end scheduling quality per unit.
#include <chrono>
#include <cstdio>
#include <vector>

#include "core/knapsack.h"
#include "core/simulation.h"
#include "driver/scenario.h"
#include "figure_common.h"
#include "util/rng.h"
#include "util/table.h"
#include "util/units.h"

int main() {
  using namespace iosched;

  // Solver cost and solution quality vs discretisation on random MaxUtil
  // instances (demands in GB/s, values in nodes).
  util::Rng rng(2718);
  std::vector<core::KnapsackItem> items(64);
  for (auto& item : items) {
    item.weight = rng.Uniform(2.0, 250.0);
    item.value = rng.Uniform(512.0, 16384.0);
  }
  std::printf("== Ablation: MaxUtil knapsack discretisation ==\n\n");
  util::Table solver({"unit (GB/s)", "solve time (us)", "selected",
                      "total nodes", "weight used"});
  for (double unit : {0.25, 1.0, 5.0, 25.0}) {
    auto t0 = std::chrono::steady_clock::now();
    core::KnapsackSolution solution;
    const int reps = 200;
    for (int i = 0; i < reps; ++i) {
      solution = core::SolveKnapsack01(items, 250.0, unit);
    }
    auto t1 = std::chrono::steady_clock::now();
    double us = std::chrono::duration<double, std::micro>(t1 - t0).count() /
                reps;
    solver.AddRow({util::Table::Num(unit, 2), util::Table::Num(us, 1),
                   std::to_string(solution.selected.size()),
                   util::Table::Num(solution.total_value, 0),
                   util::Table::Num(solution.total_weight, 1)});
  }
  std::printf("%s\n", solver.ToString().c_str());

  // End-to-end effect of the unit choice is second-order: the policy values
  // differ only when rounding flips a marginal admission. Verify on a week
  // of Workload 1 by comparing MAX_UTIL (unit 1.0, production default)
  // against FCFS as the no-optimization reference.
  double days = std::min(bench::BenchDays(), 7.0);
  driver::Scenario scenario = driver::MakeEvaluationScenario(1, days);
  util::Table end_to_end({"policy", "avg wait (min)", "utilization"});
  for (const char* policy : {"FCFS", "MAX_UTIL"}) {
    core::SimulationConfig config = scenario.config;
    config.policy = policy;
    auto result = core::RunSimulation(config, scenario.jobs);
    end_to_end.AddRow(
        {policy,
         util::Table::Num(
             util::SecondsToMinutes(result.report.avg_wait_seconds), 1),
         util::Table::Num(result.report.utilization * 100.0, 1) + "%"});
  }
  std::printf("End-to-end (%.0f days of WL1): knapsack-packed MAX_UTIL vs "
              "greedy FCFS\n%s\n", days, end_to_end.ToString().c_str());
  return 0;
}
