// Beyond the paper: checkpoint storms under MTBF-driven failures. Jobs
// write Young/Daly-optimal checkpoint flushes sized to the application
// MTBF; the same MTBF drives per-job failures with restart-from-checkpoint
// semantics. The sweep crosses the fault rate (application MTBF) with the
// burst-buffer capacity and the two bracketing policies, and reports the
// resilience metrics: rework ratio (share of delivered cycles that was
// repeated work), goodput, and the wait-time penalty vs the same workload
// with resilience off.
//
// The question this bench answers: does staging capacity buy back rework?
// A flush is durable only once it reaches the PFS; a burst buffer lets the
// application resume computing immediately and drains the checkpoint at
// the reserved rate, instead of fighting congested direct-path traffic —
// so bigger buffers should pull the durable point earlier and shrink the
// window a failure can claw back.
//
// With a CSV path argument the per-cell rows are also written for
// tools/check_ckpt_storm.py (the CI physics gate).
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "figure_common.h"
#include "util/csv.h"
#include "workload/app_checkpoint.h"

int main(int argc, char** argv) {
  using namespace iosched;
  std::vector<double> mtbf_hours = {8.0, 2.0};
  std::vector<double> capacities_gb = {0.0, 8192.0, 65536.0};
  const std::vector<std::string> policies = {"BASE_LINE", "ADAPTIVE"};
  double drain_gbps = 50.0;
  // Axis overrides for smoke/CI runs (same spirit as IOSCHED_BENCH_DAYS):
  // short runs carry few failures, so the CI gate narrows to the
  // failure-rich MTBF row where the rework signal beats placement noise.
  auto parse_list = [](const char* env, std::vector<double>& out) {
    out.clear();
    for (const char* p = env; *p != '\0';) {
      char* end = nullptr;
      out.push_back(std::strtod(p, &end));
      p = (*end == ',') ? end + 1 : end;
    }
  };
  if (const char* env = std::getenv("IOSCHED_CKPT_CAPS")) {
    parse_list(env, capacities_gb);
  }
  if (const char* env = std::getenv("IOSCHED_CKPT_MTBF")) {
    parse_list(env, mtbf_hours);
  }
  if (const char* env = std::getenv("IOSCHED_CKPT_DRAIN")) {
    drain_gbps = std::atof(env);
  }

  driver::Scenario base =
      driver::MakeEvaluationScenario(1, bench::BenchDays());
  util::ThreadPool pool;

  std::printf("== Checkpoint storms: rework vs application MTBF and "
              "burst-buffer capacity (Workload 1, %.0f days, drain %.0f "
              "GB/s, Young/Daly intervals) ==\n\n",
              bench::BenchDays(), drain_gbps);

  // The resilience-off reference per policy: same workload, no flushes, no
  // failures — the wait-time delta isolates what the checkpoint traffic
  // and the restarts cost.
  driver::SweepSpec clean_spec;
  clean_spec.scenario = &base;
  clean_spec.policies = policies;
  clean_spec.pool = &pool;
  std::vector<driver::PolicyRun> clean = driver::RunSweep(clean_spec).runs;

  // Row-major: runs[(m * capacities + c) * policies + p].
  std::vector<driver::PolicyRun> runs;
  for (double hours : mtbf_hours) {
    driver::Scenario storm = base;
    workload::AppCheckpointConfig ac;
    ac.enabled = true;
    ac.mtbf_seconds = hours * 3600.0;
    // Heavy defensive-I/O applications (full-memory checkpoints): these are
    // the flushes that turn into PFS storms, and the regime where staging
    // capacity visibly moves the durable point.
    ac.classes = {{2.0, 0.45}, {8.0, 0.40}, {32.0, 0.15}};
    workload::ApplyCheckpointTraffic(
        storm.jobs, ac, storm.config.machine.node_bandwidth_gbps);
    storm.config.app_checkpoint.enabled = true;
    storm.config.app_checkpoint.max_defer_seconds = 600.0;
    storm.config.faults.plan_config.enabled = true;
    storm.config.faults.plan_config.seed = 42;
    storm.config.faults.plan_config.job_mtbf_seconds = hours * 3600.0;
    storm.config.faults.restart_mode =
        faults::RestartMode::kRestartFromAppCheckpoint;
    for (double capacity : capacities_gb) {
      driver::Scenario cell = storm;
      if (capacity > 0) {
        cell.config.burst_buffer.capacity_gb = capacity;
        cell.config.burst_buffer.drain_gbps = drain_gbps;
      }
      driver::SweepSpec spec;
      spec.scenario = &cell;
      spec.policies = policies;
      spec.pool = &pool;
      auto sweep = driver::RunSweep(spec).runs;
      runs.insert(runs.end(), sweep.begin(), sweep.end());
    }
  }

  util::Table table({"MTBF", "BB (GB)", "policy", "flushes", "rework",
                     "goodput", "wait (min)", "vs clean", "requeued"});
  for (std::size_t m = 0; m < mtbf_hours.size(); ++m) {
    for (std::size_t c = 0; c < capacities_gb.size(); ++c) {
      for (std::size_t p = 0; p < policies.size(); ++p) {
        const driver::PolicyRun& run =
            runs[(m * capacities_gb.size() + c) * policies.size() + p];
        double clean_wait = clean[p].report.avg_wait_seconds;
        table.AddRow(
            {util::Table::Num(mtbf_hours[m], 0) + "h",
             util::Table::Num(capacities_gb[c], 0), run.policy,
             util::Table::Num(double(run.report.total_flushes), 0),
             util::Table::Percent(run.report.rework_ratio, 2),
             util::Table::Num(run.report.goodput, 4),
             util::Table::Num(
                 util::SecondsToMinutes(run.report.avg_wait_seconds), 1),
             util::Table::Percent(
                 clean_wait > 0
                     ? run.report.avg_wait_seconds / clean_wait - 1.0
                     : 0.0,
                 1),
             util::Table::Num(double(run.report.requeued_job_count), 0)});
      }
    }
  }
  std::printf("%s\n", table.ToString().c_str());

  // Headline: rework bought back by the largest buffer at the worst MTBF.
  auto rework = [&](std::size_t m, std::size_t c, std::size_t p) {
    return runs[(m * capacities_gb.size() + c) * policies.size() + p]
        .report.rework_ratio;
  };
  std::size_t worst = mtbf_hours.size() - 1;
  std::size_t big = capacities_gb.size() - 1;
  std::printf("ADAPTIVE rework at %.0fh MTBF: %.2f%% without a buffer, "
              "%.2f%% with %.0f GB staged\n",
              mtbf_hours[worst], rework(worst, 0, 1) * 100.0,
              rework(worst, big, 1) * 100.0, capacities_gb[big]);

  if (argc > 1) {
    std::ofstream out(argv[1]);
    util::CsvWriter csv(out);
    csv.Header({"mtbf_hours", "bb_capacity_gb", "policy", "jobs", "flushes",
                "rework_ratio", "goodput", "avg_wait_min", "wait_vs_clean",
                "requeued", "abandoned", "lost_node_hours"});
    for (std::size_t m = 0; m < mtbf_hours.size(); ++m) {
      for (std::size_t c = 0; c < capacities_gb.size(); ++c) {
        for (std::size_t p = 0; p < policies.size(); ++p) {
          const driver::PolicyRun& run =
              runs[(m * capacities_gb.size() + c) * policies.size() + p];
          double clean_wait = clean[p].report.avg_wait_seconds;
          csv.Row()
              .Add(mtbf_hours[m])
              .Add(capacities_gb[c])
              .Add(run.policy)
              .Add(run.report.job_count)
              .Add(static_cast<unsigned long long>(run.report.total_flushes))
              .Add(run.report.rework_ratio)
              .Add(run.report.goodput)
              .Add(util::SecondsToMinutes(run.report.avg_wait_seconds))
              .Add(clean_wait > 0
                       ? run.report.avg_wait_seconds / clean_wait - 1.0
                       : 0.0)
              .Add(run.report.requeued_job_count)
              .Add(run.report.abandoned_job_count)
              .Add(run.report.lost_node_seconds / 3600.0);
        }
      }
    }
    if (!out.flush()) {
      std::fprintf(stderr, "failed writing %s\n", argv[1]);
      return 1;
    }
    std::printf("wrote %s\n", argv[1]);
  }
  return 0;
}
