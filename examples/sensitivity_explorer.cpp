// Interactive sensitivity exploration (the Figure 11 axis, but for any
// workload/policy/EF combination).
//
// Usage: sensitivity_explorer [workload 1..3] [policy] [EF%] [days]
//   e.g. sensitivity_explorer 1 ADAPTIVE 150 14
#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/simulation.h"
#include "driver/scenario.h"
#include "util/units.h"

int main(int argc, char** argv) {
  using namespace iosched;
  int workload_index = argc > 1 ? std::atoi(argv[1]) : 1;
  std::string policy = argc > 2 ? argv[2] : "ADAPTIVE";
  double ef_percent = argc > 3 ? std::atof(argv[3]) : 100.0;
  double days = argc > 4 ? std::atof(argv[4]) : 14.0;
  if (workload_index < 1 || workload_index > 3 || ef_percent <= 0 ||
      days <= 0) {
    std::fprintf(stderr,
                 "usage: %s [workload 1..3] [policy] [EF%%] [days]\n",
                 argv[0]);
    return 1;
  }

  driver::Scenario scenario =
      driver::MakeEvaluationScenario(workload_index, days);
  scenario = driver::WithExpansionFactor(scenario, ef_percent / 100.0);
  core::SimulationConfig config = scenario.config;
  config.policy = policy;

  core::SimulationResult result = core::RunSimulation(config, scenario.jobs);
  const metrics::Report& r = result.report;
  std::printf("%s under %s (EF=%.0f%%, %.0f days)\n", scenario.name.c_str(),
              result.policy_name.c_str(), ef_percent, days);
  std::printf("  jobs                 %zu\n", r.job_count);
  std::printf("  avg wait             %.1f min (p90 %.1f)\n",
              util::SecondsToMinutes(r.avg_wait_seconds),
              util::SecondsToMinutes(r.p90_wait_seconds));
  std::printf("  avg response         %.1f min (p90 %.1f)\n",
              util::SecondsToMinutes(r.avg_response_seconds),
              util::SecondsToMinutes(r.p90_response_seconds));
  std::printf("  utilization          %.1f%%\n", r.utilization * 100.0);
  std::printf("  avg runtime stretch  %.3fx (I/O slowdown %.3fx)\n",
              r.avg_runtime_expansion, r.avg_io_slowdown);
  std::printf("  engine               %llu events, %llu I/O cycles\n",
              static_cast<unsigned long long>(result.events_processed),
              static_cast<unsigned long long>(result.io_scheduling_cycles));
  return 0;
}
