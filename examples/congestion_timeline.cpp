// Visualize the congestion structure a policy faces: ASCII strip charts of
// machine occupancy and storage demand (relative to BWmax) over one week of
// Workload 1, under BASE_LINE and ADAPTIVE.
//
// Usage: congestion_timeline [workload=1] [days=7]
#include <cstdio>
#include <cstdlib>

#include "core/simulation.h"
#include "driver/scenario.h"
#include "metrics/bandwidth.h"
#include "metrics/timeline.h"
#include "util/units.h"

int main(int argc, char** argv) {
  using namespace iosched;
  int index = argc > 1 ? std::atoi(argv[1]) : 1;
  double days = argc > 2 ? std::atof(argv[2]) : 7.0;
  if (index < 1 || index > 3 || days <= 0) {
    std::fprintf(stderr, "usage: %s [workload 1..3] [days]\n", argv[0]);
    return 1;
  }

  driver::Scenario scenario = driver::MakeEvaluationScenario(index, days);
  const double bucket = 2.0 * util::kSecondsPerHour;

  for (const char* policy : {"BASE_LINE", "ADAPTIVE"}) {
    core::SimulationConfig config = scenario.config;
    config.policy = policy;
    config.keep_bandwidth_samples = true;
    core::SimulationResult result =
        core::RunSimulation(config, scenario.jobs);

    std::printf("=== %s on %s (%.0f days) ===\n", policy,
                scenario.name.c_str(), days);
    metrics::TimelineSeries occupancy = metrics::OccupancyTimeline(
        result.records, config.machine.total_nodes(), bucket);
    std::printf("machine occupancy (busy-node fraction, 2h buckets)\n%s\n",
                metrics::RenderTimeline(occupancy, 8, 1.0, 0.9).c_str());

    metrics::BandwidthTracker tracker(config.storage.max_bandwidth_gbps);
    for (const metrics::BandwidthSample& s : result.bandwidth_samples) {
      tracker.Record(s);
    }
    metrics::TimelineSeries demand = metrics::DemandTimeline(tracker, bucket);
    std::printf("storage demand / BWmax (dashes mark 1.0 = congestion)\n%s\n",
                metrics::RenderTimeline(demand, 8, 2.0, 1.0).c_str());
    std::printf("congested %.1f%% of the time across %zu episodes, mean "
                "episode %.1f min\n\n",
                result.bandwidth.congested_fraction * 100.0,
                result.bandwidth.episode_count,
                util::SecondsToMinutes(result.bandwidth.mean_episode_seconds));
  }
  return 0;
}
