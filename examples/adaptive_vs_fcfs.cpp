// The paper's Figure 7 micro-scenario: why the adaptive policy admits an
// overflow request that Cons-FCFS would make wait.
//
// Two I/O requests (A, B) are in flight; two more (C, D) arrive and exceed
// the remaining storage bandwidth. Cons-FCFS suspends C and D until A or B
// finishes, wasting bandwidth; ADAPTIVE compares the average finish time of
// "defer C" vs "let C compete" and admits C when sharing is cheaper.
#include <cstdio>
#include <string>
#include <vector>

#include "core/io_scheduler.h"
#include "core/policy_factory.h"
#include "sim/simulator.h"
#include "storage/storage_model.h"
#include "workload/job.h"

using namespace iosched;

namespace {

struct Request {
  workload::JobId id;
  const char* label;
  int nodes;
  double volume_gb;
  double arrival;
};

void RunScenario(const std::string& policy_name) {
  // Mira-like numbers: b = 31.25 MB/s per node, BWmax = 250 GB/s.
  const double node_bw = 1536.0 / 49152.0;
  const std::vector<Request> requests = {
      {1, "A", 4096, 1280.0, 0.0},   // 128 GB/s for ~10 s
      {2, "B", 2048, 1280.0, 0.0},   // 64 GB/s for ~20 s
      {3, "C", 4096, 640.0, 1.0},    // needs 128, only 58 free -> overflow
      {4, "D", 2048, 640.0, 2.0},    // needs 64 after C's decision
  };

  sim::Simulator simulator;
  storage::StorageModel storage(storage::StorageConfig{250.0, true});
  std::vector<workload::Job> jobs;
  jobs.reserve(requests.size());
  for (const Request& r : requests) {
    workload::Job j;
    j.id = r.id;
    j.submit_time = 0;
    j.nodes = r.nodes;
    j.requested_walltime = 1e6;
    j.phases = {workload::Phase::Io(r.volume_gb)};
    jobs.push_back(j);
  }

  std::printf("--- %s ---\n", policy_name.c_str());
  core::IoScheduler scheduler(
      simulator, storage, node_bw, core::MakePolicy(policy_name),
      [&](workload::JobId id, sim::SimTime t, const core::IoCompletionInfo&) {
        std::printf("  t=%5.2fs  request %s finished\n", t,
                    requests[static_cast<std::size_t>(id - 1)].label);
      });
  for (std::size_t i = 0; i < requests.size(); ++i) {
    scheduler.RegisterJob(jobs[i], 0.0);
    const Request& r = requests[i];
    simulator.ScheduleAt(r.arrival, [&, i] {
      std::printf("  t=%5.2fs  request %s arrives (%d nodes, %.0f GB, "
                  "demand %.0f GB/s)\n",
                  requests[i].arrival, requests[i].label, requests[i].nodes,
                  requests[i].volume_gb,
                  node_bw * requests[i].nodes);
      scheduler.SubmitRequest(requests[i].id, requests[i].volume_gb,
                              simulator.Now());
      // Show the post-cycle bandwidth grants.
      for (const storage::Transfer* t : storage.ActiveByArrival()) {
        std::printf("             %s: %.1f GB/s%s\n",
                    requests[static_cast<std::size_t>(t->job_id - 1)].label,
                    t->rate_gbps, t->rate_gbps == 0 ? "  (suspended)" : "");
      }
    });
  }
  simulator.Run();
  std::printf("\n");
}

}  // namespace

int main() {
  std::printf("Figure 7 scenario: requests C and D overflow BWmax=250 GB/s\n\n");
  RunScenario("FCFS");
  RunScenario("ADAPTIVE");
  std::printf(
      "Under FCFS, C and D wait for releases while bandwidth idles;\n"
      "ADAPTIVE lets them compete when that lowers the average finish time.\n");
  return 0;
}
