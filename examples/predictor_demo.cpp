// The paper's future-work extension in action: learn per-project I/O
// behaviour from one month of history, then predict the next month.
// Accuracy is reported prequentially — each future job is predicted
// *before* the predictor trains on it — so the number is honest: a
// train-on-test evaluation of the same month looks several times better
// than the predictor actually is on unseen jobs.
#include <cstdio>

#include "core/predictor.h"
#include "workload/synthetic.h"

int main() {
  using namespace iosched;

  workload::SyntheticConfig cfg = workload::EvaluationMonthConfig(1);
  cfg.duration_days = 15.0;
  workload::Workload history = workload::GenerateWorkload(cfg, 31001);
  cfg.first_job_id = 100000;
  workload::Workload future = workload::GenerateWorkload(cfg, 31002);

  core::IoBehaviorPredictor::Options opts;
  opts.node_bandwidth_gbps = cfg.node_bandwidth_gbps;
  core::IoBehaviorPredictor predictor(opts);
  for (const workload::Job& job : history) predictor.Observe(job);

  std::printf("trained on %zu jobs (%zu projects, %zu users)\n",
              predictor.observed_jobs(), predictor.known_projects(),
              predictor.known_users());

  std::printf("\nsample predictions (first five future jobs, history-only):\n");
  std::printf("%-8s %-6s %10s %10s %10s %10s\n", "project", "nodes",
              "pred_frac", "true_frac", "pred_phs", "true_phs");
  for (std::size_t i = 0; i < 5 && i < future.size(); ++i) {
    const workload::Job& job = future[i];
    core::IoPrediction p = predictor.Predict(job);
    std::printf("%-8s %-6d %10.3f %10.3f %10.1f %10d\n", job.project.c_str(),
                job.nodes, p.io_fraction,
                job.IoFraction(cfg.node_bandwidth_gbps), p.io_phases,
                job.IoPhaseCount());
  }

  // Prequential: predict each future job before observing it, training as
  // the month unfolds — the same protocol the online scheduler lives under.
  core::PrequentialResult prequential = core::EvaluatePrequential(
      predictor, future, cfg.node_bandwidth_gbps);
  std::printf("\nnext-month io-fraction MAE (prequential): %.4f "
              "(%zu jobs, %zu cold)\n",
              prequential.mae_fraction, prequential.evaluated,
              prequential.cold_jobs);
  return 0;
}
