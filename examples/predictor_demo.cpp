// The paper's future-work extension in action: learn per-project I/O
// behaviour from one month of history, then predict the next month.
#include <cstdio>

#include "core/predictor.h"
#include "workload/synthetic.h"

int main() {
  using namespace iosched;

  workload::SyntheticConfig cfg = workload::EvaluationMonthConfig(1);
  cfg.duration_days = 15.0;
  workload::Workload history = workload::GenerateWorkload(cfg, 31001);
  cfg.first_job_id = 100000;
  workload::Workload future = workload::GenerateWorkload(cfg, 31002);

  core::IoBehaviorPredictor::Options opts;
  opts.node_bandwidth_gbps = cfg.node_bandwidth_gbps;
  core::IoBehaviorPredictor predictor(opts);
  for (const workload::Job& job : history) predictor.Observe(job);

  std::printf("trained on %zu jobs (%zu projects, %zu users)\n",
              predictor.observed_jobs(), predictor.known_projects(),
              predictor.known_users());

  double mae = core::EvaluateFractionError(predictor, future,
                                           cfg.node_bandwidth_gbps);
  std::printf("next-month io-fraction MAE: %.4f\n", mae);

  std::printf("\nsample predictions (first five future jobs):\n");
  std::printf("%-8s %-6s %10s %10s %10s %10s\n", "project", "nodes",
              "pred_frac", "true_frac", "pred_phs", "true_phs");
  for (std::size_t i = 0; i < 5 && i < future.size(); ++i) {
    const workload::Job& job = future[i];
    core::IoPrediction p = predictor.Predict(job);
    std::printf("%-8s %-6d %10.3f %10.3f %10.1f %10d\n", job.project.c_str(),
                job.nodes, p.io_fraction,
                job.IoFraction(cfg.node_bandwidth_gbps), p.io_phases,
                job.IoPhaseCount());
  }
  return 0;
}
