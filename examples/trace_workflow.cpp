// File-based trace workflow, as a site would use it with real logs:
//   1. generate a synthetic month and write it out as an SWF job trace plus
//      a Darshan-lite I/O summary (stand-ins for Cobalt logs + Darshan);
//   2. read both files back and pair them into a workload;
//   3. run the paired workload under two policies and report.
//
// Usage: trace_workflow [output_dir=/tmp]
#include <cstdio>
#include <string>

#include "core/simulation.h"
#include "driver/scenario.h"
#include "util/units.h"
#include "workload/iotrace.h"
#include "workload/swf.h"
#include "workload/synthetic.h"
#include "workload/workload.h"

int main(int argc, char** argv) {
  using namespace iosched;
  std::string dir = argc > 1 ? argv[1] : "/tmp";
  std::string swf_path = dir + "/mira_month.swf";
  std::string io_path = dir + "/mira_month_io.csv";

  // 1. Generate and persist.
  workload::SyntheticConfig cfg = workload::EvaluationMonthConfig(2);
  cfg.duration_days = 7.0;
  workload::Workload original = workload::GenerateWorkload(cfg, 777);
  workload::WriteSwfFile(swf_path,
                         workload::ToSwf(original, cfg.node_bandwidth_gbps));
  workload::WriteIoTraceFile(
      io_path, workload::ToIoTrace(original, cfg.node_bandwidth_gbps));
  std::printf("wrote %zu jobs to %s and %s\n", original.size(),
              swf_path.c_str(), io_path.c_str());

  // 2. Load and pair, exactly as with real site logs.
  workload::SwfTrace swf = workload::ReadSwfFile(swf_path);
  workload::IoTrace io = workload::ReadIoTraceFile(io_path);
  workload::PairingOptions opts;
  opts.node_bandwidth_gbps = cfg.node_bandwidth_gbps;
  workload::Workload paired = workload::PairTraces(swf, io, opts);
  std::printf("paired %zu jobs (%zu with I/O records)\n", paired.size(),
              io.size());

  // 3. Simulate.
  core::SimulationConfig sim_cfg;
  sim_cfg.machine = machine::MachineConfig::Mira();
  for (const char* policy : {"BASE_LINE", "ADAPTIVE"}) {
    sim_cfg.policy = policy;
    core::SimulationResult result = core::RunSimulation(sim_cfg, paired);
    std::printf("%-10s avg wait %7.1f min | avg response %7.1f min | "
                "util %5.1f%%\n",
                policy,
                util::SecondsToMinutes(result.report.avg_wait_seconds),
                util::SecondsToMinutes(result.report.avg_response_seconds),
                result.report.utilization * 100.0);
  }
  return 0;
}
