// Replay of a Mira-like evaluation month under all six I/O policies,
// printing the paper's three metrics (Figures 8-10 shape).
//
// Usage: mira_month [workload_index=1] [days=30]
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "driver/experiment.h"
#include "driver/scenario.h"
#include "driver/sweep.h"
#include "core/policy_factory.h"
#include "util/units.h"

int main(int argc, char** argv) {
  using namespace iosched;

  int index = argc > 1 ? std::atoi(argv[1]) : 1;
  double days = argc > 2 ? std::atof(argv[2]) : 30.0;
  if (index < 1 || index > 3 || days <= 0) {
    std::fprintf(stderr, "usage: %s [workload_index 1..3] [days]\n", argv[0]);
    return 1;
  }

  driver::Scenario scenario = driver::MakeEvaluationScenario(index, days);
  workload::WorkloadStats stats = workload::ComputeStats(
      scenario.jobs, scenario.config.machine.total_nodes(),
      scenario.config.machine.node_bandwidth_gbps);
  std::printf(
      "%s: %zu jobs over %.0f days | offered load %.2f | mean size %.0f "
      "nodes | mean I/O fraction %.2f | total I/O %.1f TB\n\n",
      scenario.name.c_str(), stats.job_count, days, stats.offered_load,
      stats.mean_nodes, stats.mean_io_fraction, stats.total_io_gb / 1024.0);

  util::ThreadPool pool;
  driver::SweepSpec spec;
  spec.scenario = &scenario;
  spec.policies = core::AllPolicyNames();
  spec.pool = &pool;
  std::vector<driver::PolicyRun> runs = driver::RunSweep(spec).runs;

  std::printf("-- Average wait time (Fig. 8 shape) --\n%s\n",
              driver::WaitTimeTable(runs).ToString().c_str());
  std::printf("-- Average response time (Fig. 9 shape) --\n%s\n",
              driver::ResponseTimeTable(runs).ToString().c_str());
  std::printf("-- System utilization (Fig. 10 shape) --\n%s\n",
              driver::UtilizationTable(runs).ToString().c_str());
  std::printf("-- Diagnostics --\n");
  for (const driver::PolicyRun& run : runs) {
    std::printf(
        "%-12s expansion %.3f | io_slowdown %.3f | events %llu | cycles %llu "
        "| %.2fs wall\n",
        run.policy.c_str(), run.report.avg_runtime_expansion,
        run.report.avg_io_slowdown,
        static_cast<unsigned long long>(run.events_processed),
        static_cast<unsigned long long>(run.io_cycles), run.wall_seconds);
  }
  return 0;
}
