// Quickstart: generate a small workload, run it under two I/O policies, and
// compare the paper's three evaluation metrics.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>

#include "core/simulation.h"
#include "driver/experiment.h"
#include "driver/scenario.h"
#include "driver/sweep.h"
#include "util/units.h"

int main() {
  using namespace iosched;

  // A reduced-scale scenario: 4,096-node machine, two days of jobs, storage
  // sized so the congestion regime matches Mira's.
  driver::Scenario scenario = driver::MakeTestScenario(/*seed=*/42,
                                                       /*duration_days=*/2.0);
  workload::WorkloadStats stats = workload::ComputeStats(
      scenario.jobs, scenario.config.machine.total_nodes(),
      scenario.config.machine.node_bandwidth_gbps);
  std::printf("workload: %zu jobs, offered load %.2f, mean I/O fraction %.2f\n",
              stats.job_count, stats.offered_load, stats.mean_io_fraction);

  driver::SweepSpec spec;
  spec.scenario = &scenario;
  spec.policies = {"BASE_LINE", "ADAPTIVE"};
  std::vector<driver::PolicyRun> runs = driver::RunSweep(spec).runs;

  for (const driver::PolicyRun& run : runs) {
    std::printf(
        "%-12s avg wait %7.1f min | avg response %7.1f min | util %5.1f%%\n",
        run.policy.c_str(),
        util::SecondsToMinutes(run.report.avg_wait_seconds),
        util::SecondsToMinutes(run.report.avg_response_seconds),
        run.report.utilization * 100.0);
  }

  double base = runs[0].report.avg_wait_seconds;
  double adaptive = runs[1].report.avg_wait_seconds;
  if (base > 0) {
    std::printf("ADAPTIVE changes average wait by %+.1f%% vs BASE_LINE\n",
                (adaptive - base) / base * 100.0);
  }
  return 0;
}
