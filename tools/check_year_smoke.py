#!/usr/bin/env python3
"""Year-replay smoke gate for CI.

Compares the YEAR_SMOKE replay entry of a freshly generated BENCH_core.json
against the committed baseline:

  * the metric-record digest must match bit-for-bit (the year-scale
    workload exercises deep diurnal queue swings the evaluation months
    don't, so a digest drift here can pass the monthly replays); and
  * the wall-clock must not regress by more than --max-slowdown (default
    1.2, i.e. a >20% slowdown fails).

Usage: check_year_smoke.py CURRENT.json BASELINE.json [--max-slowdown=X]
"""

import json
import sys

ENTRY = "YEAR_SMOKE"


def find_replay(doc, path):
    for replay in doc.get("replays", []):
        if replay.get("name") == ENTRY:
            return replay
    raise SystemExit(f"{path}: no {ENTRY} replay entry")


def main(argv):
    args = [a for a in argv[1:] if not a.startswith("--")]
    max_slowdown = 1.2
    for a in argv[1:]:
        if a.startswith("--max-slowdown="):
            max_slowdown = float(a.split("=", 1)[1])
    if len(args) != 2:
        raise SystemExit(__doc__)
    current_path, baseline_path = args
    with open(current_path) as f:
        current = find_replay(json.load(f), current_path)
    with open(baseline_path) as f:
        baseline = find_replay(json.load(f), baseline_path)

    failures = []
    if current.get("digest") != baseline.get("digest"):
        failures.append(
            f"digest changed: {baseline.get('digest')} -> "
            f"{current.get('digest')} (schedule results differ)"
        )
    base_s = float(baseline.get("seconds", 0.0))
    cur_s = float(current.get("seconds", 0.0))
    if base_s > 0 and cur_s > base_s * max_slowdown:
        failures.append(
            f"wall-clock regression: {base_s:.3f}s -> {cur_s:.3f}s "
            f"(>{(max_slowdown - 1) * 100:.0f}% slower)"
        )

    status = "FAIL" if failures else "ok"
    print(
        f"{ENTRY}: jobs={current.get('jobs')} "
        f"seconds={cur_s:.3f} (baseline {base_s:.3f}) "
        f"digest={'identical' if current.get('digest') == baseline.get('digest') else 'CHANGED'} "
        f"{status}"
    )
    for f in failures:
        print(f"  {f}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
