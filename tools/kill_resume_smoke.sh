#!/usr/bin/env bash
# Crash-safety smoke test: SIGKILL a checkpointed simulation mid-run, then
# relaunch it with --resume and require the stitched-together run to write
# per-job records byte-identical to an uninterrupted reference run.
#
# Usage: tools/kill_resume_smoke.sh [build-dir]
#   build-dir  defaults to ./build (must contain tools/iosched)
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${1:-${repo_root}/build}"
iosched="${build_dir}/tools/iosched"
[[ -x "${iosched}" ]] || { echo "error: ${iosched} not built" >&2; exit 2; }

work="$(mktemp -d)"
trap 'rm -rf "${work}"' EXIT

# A year-long replay runs for several seconds — a wide window to land the
# kill in — while the first checkpoint appears within milliseconds. The
# prediction-aware policy with a learned predictor makes the smoke cover
# the predictor's checkpoint section too: resuming must restore the EWMA
# tables exactly or the post-resume schedule (and records) diverge.
args=(simulate --workload 1 --days 365 --policy PREDICTIVE_ADAPTIVE
      --predict learned)

echo "== reference run (uninterrupted)"
"${iosched}" "${args[@]}" --records "${work}/reference.csv" > /dev/null

echo "== victim run (checkpointed, killed mid-flight)"
"${iosched}" "${args[@]}" --records "${work}/victim.csv" \
    --checkpoint-dir "${work}/ckpt" --checkpoint-every 50000 &
victim=$!
for _ in $(seq 1 2000); do
  compgen -G "${work}/ckpt/ckpt-*.iosckpt" > /dev/null && break
  sleep 0.01
done
compgen -G "${work}/ckpt/ckpt-*.iosckpt" > /dev/null || {
  echo "error: no checkpoint appeared before the victim finished" >&2
  exit 1
}
kill -KILL "${victim}"
set +e
wait "${victim}"
status=$?
set -e
if [[ "${status}" -ne 137 ]]; then
  echo "error: victim exited with ${status} instead of dying to SIGKILL" >&2
  exit 1
fi
if [[ -f "${work}/victim.csv" ]]; then
  echo "error: victim finished before the kill landed (records exist)" >&2
  exit 1
fi
echo "   killed pid ${victim}; checkpoints left behind:"
ls "${work}/ckpt"

echo "== resumed run"
"${iosched}" "${args[@]}" --records "${work}/resumed.csv" \
    --checkpoint-dir "${work}/ckpt" --resume | tee "${work}/resume.log"
grep -q "resumed from" "${work}/resume.log" || {
  echo "error: the relaunch did not resume from a checkpoint" >&2
  exit 1
}

echo "== comparing per-job records"
cmp "${work}/reference.csv" "${work}/resumed.csv" || {
  echo "error: resumed records differ from the uninterrupted reference" >&2
  exit 1
}
echo "PASS: resumed run is byte-identical to the uninterrupted run"
