#!/usr/bin/env bash
# Crash-safety smoke test: SIGKILL a checkpointed simulation mid-run, then
# relaunch it with --resume and require the stitched-together run to write
# per-job records byte-identical to an uninterrupted reference run.
#
# Two victims are exercised:
#   * a year-long replay under the prediction-aware policy (covers the
#     learned predictor's checkpoint section), and
#   * a checkpoint-storm run — Young/Daly flush traffic, MTBF failures,
#     restart-from-checkpoint, deferrable flushes, and a burst buffer — so
#     the kill lands amid parked flushes, staged-but-not-durable markers,
#     and in-flight retry contexts, all of which must restore exactly.
#
# Usage: tools/kill_resume_smoke.sh [build-dir]
#   build-dir  defaults to ./build (must contain tools/iosched)
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${1:-${repo_root}/build}"
iosched="${build_dir}/tools/iosched"
[[ -x "${iosched}" ]] || { echo "error: ${iosched} not built" >&2; exit 2; }

work="$(mktemp -d)"
trap 'rm -rf "${work}"' EXIT

run_case() {
  local label="$1"; shift
  local dir="${work}/${label}"
  mkdir -p "${dir}"

  echo "== [${label}] reference run (uninterrupted)"
  "${iosched}" "$@" --records "${dir}/reference.csv" > /dev/null

  echo "== [${label}] victim run (checkpointed, killed mid-flight)"
  "${iosched}" "$@" --records "${dir}/victim.csv" \
      --checkpoint-dir "${dir}/ckpt" --checkpoint-every 50000 &
  local victim=$!
  for _ in $(seq 1 2000); do
    compgen -G "${dir}/ckpt/ckpt-*.iosckpt" > /dev/null && break
    sleep 0.01
  done
  compgen -G "${dir}/ckpt/ckpt-*.iosckpt" > /dev/null || {
    echo "error: no checkpoint appeared before the victim finished" >&2
    exit 1
  }
  kill -KILL "${victim}"
  set +e
  wait "${victim}"
  local status=$?
  set -e
  if [[ "${status}" -ne 137 ]]; then
    echo "error: victim exited ${status} instead of dying to SIGKILL" >&2
    exit 1
  fi
  if [[ -f "${dir}/victim.csv" ]]; then
    echo "error: victim finished before the kill landed (records exist)" >&2
    exit 1
  fi
  echo "   killed pid ${victim}; checkpoints left behind:"
  ls "${dir}/ckpt"

  echo "== [${label}] resumed run"
  "${iosched}" "$@" --records "${dir}/resumed.csv" \
      --checkpoint-dir "${dir}/ckpt" --resume | tee "${dir}/resume.log"
  grep -q "resumed from" "${dir}/resume.log" || {
    echo "error: the relaunch did not resume from a checkpoint" >&2
    exit 1
  }

  echo "== [${label}] comparing per-job records"
  cmp "${dir}/reference.csv" "${dir}/resumed.csv" || {
    echo "error: resumed records differ from the reference" >&2
    exit 1
  }
  echo "PASS [${label}]: resumed run is byte-identical to the reference"
}

# A year-long replay runs for several seconds — a wide window to land the
# kill in — while the first checkpoint appears within milliseconds. The
# prediction-aware policy with a learned predictor makes the smoke cover
# the predictor's checkpoint section too: resuming must restore the EWMA
# tables exactly or the post-resume schedule (and records) diverge.
run_case year simulate --workload 1 --days 365 --policy PREDICTIVE_ADAPTIVE \
    --predict learned

# Mid-storm kill: a short application MTBF arms the full resilience stack
# (flush phases, failures, restart-from-checkpoint, 10-minute deferrals)
# and the burst buffer keeps absorbed flushes staged-but-not-durable when
# the SIGKILL lands.
run_case storm simulate --workload 1 --days 120 --policy ADAPTIVE \
    --app-ckpt-mtbf 7200 --bb-capacity 8192 --bb-drain 50

# Mid-window kill of a planning policy: event-count checkpoints land the
# snapshot inside a PLAN_BF planning window essentially always, so the
# standing reservation table, its absorb promises, and the drain/capacity
# prices backfill admission uses must all restore bit-exactly — a resumed
# run that rebuilt its plan instead of restoring it would replan on a
# different cadence and diverge.
run_case plan simulate --workload 1 --days 180 --policy PLAN_BF \
    --predict oracle --bb-capacity 4096 --bb-drain 50 \
    --plan-window 600 --plan-slice 30

echo "PASS: all kill/resume cases are byte-identical to their references"
