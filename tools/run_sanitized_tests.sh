#!/usr/bin/env bash
# Build and run the full test suite under AddressSanitizer + UBSan.
#
# Usage: tools/run_sanitized_tests.sh [build-dir] [sanitizers]
#   build-dir   defaults to build-asan (kept separate from the normal build)
#   sanitizers  defaults to "address;undefined"
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${1:-${repo_root}/build-asan}"
sanitizers="${2:-address;undefined}"

export ASAN_OPTIONS="${ASAN_OPTIONS:-detect_leaks=1:strict_string_checks=1}"
export UBSAN_OPTIONS="${UBSAN_OPTIONS:-print_stacktrace=1:halt_on_error=1}"

cmake -B "${build_dir}" -S "${repo_root}" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DIOSCHED_SANITIZE="${sanitizers}" \
  -DIOSCHED_BUILD_BENCH=OFF \
  -DIOSCHED_BUILD_EXAMPLES=OFF
cmake --build "${build_dir}" -j"$(nproc)"
ctest --test-dir "${build_dir}" --output-on-failure -j"$(nproc)"
