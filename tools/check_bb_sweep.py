#!/usr/bin/env python3
"""Sanity-check a `iosched bbsweep --csv` output file.

Validates the CSV schema (every expected column present, rows well-formed)
and the physics the sweep must obey regardless of workload noise:

  * BB=off rows report zero burst-buffer activity.
  * Absorbed volume / absorbed-request share are non-decreasing in
    capacity (per policy) — a bigger buffer never absorbs less.
  * Spilled requests are non-increasing in capacity (per policy).
  * Peak occupancy never exceeds the configured capacity.

Wait times are intentionally NOT checked for monotonicity: on short smoke
workloads the scheduling noise dominates the buffer's effect.

Usage: check_bb_sweep.py <sweep.csv>
"""
import csv
import sys

EXPECTED_COLUMNS = [
    "scenario", "policy", "jobs", "avg_wait_min", "avg_response_min",
    "utilization", "p90_wait_min", "avg_expansion", "avg_io_slowdown",
    "events", "io_cycles", "wall_seconds", "bb_capacity_gb",
    "bb_absorbed_gb", "bb_absorbed_requests", "bb_spilled_requests",
    "bb_peak_queued_gb", "bb_mean_occupancy",
]


def fail(message):
    print(f"check_bb_sweep: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def main():
    if len(sys.argv) != 2:
        fail("usage: check_bb_sweep.py <sweep.csv>")
    with open(sys.argv[1], newline="") as handle:
        reader = csv.DictReader(handle)
        if reader.fieldnames != EXPECTED_COLUMNS:
            fail(f"unexpected header {reader.fieldnames};"
                 f" want {EXPECTED_COLUMNS}")
        rows = list(reader)
    if not rows:
        fail("no data rows")

    by_policy = {}
    for i, row in enumerate(rows, start=2):
        try:
            capacity = float(row["bb_capacity_gb"])
            absorbed_gb = float(row["bb_absorbed_gb"])
            absorbed = int(row["bb_absorbed_requests"])
            spilled = int(row["bb_spilled_requests"])
            peak = float(row["bb_peak_queued_gb"])
            jobs = int(row["jobs"])
        except ValueError as error:
            fail(f"line {i}: malformed number: {error}")
        if jobs <= 0:
            fail(f"line {i}: no jobs completed")
        if capacity == 0 and (absorbed_gb or absorbed or spilled or peak):
            fail(f"line {i}: BB=off row reports burst-buffer activity")
        if peak > capacity + 1e-6:
            fail(f"line {i}: peak queued {peak} GB exceeds"
                 f" capacity {capacity} GB")
        share = absorbed / (absorbed + spilled) if absorbed + spilled else 0.0
        by_policy.setdefault(row["policy"], []).append(
            (capacity, absorbed_gb, share, spilled))

    for policy, cells in by_policy.items():
        cells.sort()
        for (c0, gb0, share0, sp0), (c1, gb1, share1, sp1) in zip(
                cells, cells[1:]):
            if gb1 < gb0 - 1e-6:
                fail(f"{policy}: absorbed GB dropped from {gb0} (BB={c0})"
                     f" to {gb1} (BB={c1})")
            if share1 < share0 - 1e-9:
                fail(f"{policy}: absorbed share dropped from {share0:.4f}"
                     f" (BB={c0}) to {share1:.4f} (BB={c1})")
            if sp1 > sp0 and c0 > 0:
                fail(f"{policy}: spills grew from {sp0} (BB={c0})"
                     f" to {sp1} (BB={c1})")

    capacities = sorted({c for cells in by_policy.values()
                         for c, _, _, _ in cells})
    print(f"check_bb_sweep: OK: {len(rows)} rows,"
          f" {len(by_policy)} policies, capacities {capacities}")


if __name__ == "__main__":
    main()
