#!/usr/bin/env bash
# Chaos soak: run N seeded randomized fault schedules under every policy
# with the from-scratch invariant checker on, and fail on any invariant
# violation, stuck run, engine error, or non-reproducible same-seed digest.
#
# Usage: tools/chaos_soak.sh [build-dir] [schedules] [csv-out]
#   build-dir  defaults to ./build (must contain tools/iosched)
#   schedules  defaults to 50 randomized fault schedules
#   csv-out    defaults to <build-dir>/chaos_summary.csv
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${1:-${repo_root}/build}"
schedules="${2:-50}"
csv_out="${3:-${build_dir}/chaos_summary.csv}"
iosched="${build_dir}/tools/iosched"
[[ -x "${iosched}" ]] || { echo "error: ${iosched} not built" >&2; exit 2; }

echo "== chaos soak: ${schedules} schedules x all policies (x2 for repro)"
"${iosched}" chaos --chaos-schedules "${schedules}" --chaos-out "${csv_out}"

echo "PASS: chaos soak clean (summary: ${csv_out})"
