#!/usr/bin/env python3
"""Plan-quality figure gate for CI.

Validates a fig_plan_quality JSON (schema fig-plan-quality-v1):

  * plan quality: on the BB-constrained month, PLAN_BF's mean wait must
    not exceed the EASY-greedy baseline's (the file names it in
    "baseline_policy") — reservation-aware planning has to at least pay
    for itself where the buffer is the constraint;
  * replan cost: every planning policy (PERIODIC, PLAN_BF) must report a
    positive replan count and its Plan() wall time, and Plan() must stay
    under --max-plan-share (default 0.25) of the run's wall time — past
    that the cheap-Execute property of the two-phase split is gone;
  * year smoke: the planning policies must still be planning (replans > 0)
    on the year-scale cut, not silently degrading to greedy.

Usage: check_plan_fig.py FIG.json [--max-plan-share=X]
"""

import json
import sys

PLANNING_POLICIES = ("PERIODIC", "PLAN_BF")


def by_policy(rows, path, section):
    out = {}
    for row in rows:
        out[row.get("policy")] = row
    if not out:
        raise SystemExit(f"{path}: empty {section} section")
    return out


def main(argv):
    args = [a for a in argv[1:] if not a.startswith("--")]
    max_plan_share = 0.25
    for a in argv[1:]:
        if a.startswith("--max-plan-share="):
            max_plan_share = float(a.split("=", 1)[1])
    if len(args) != 1:
        raise SystemExit(__doc__)
    fig_path = args[0]
    with open(fig_path) as f:
        fig = json.load(f)
    if fig.get("schema") != "fig-plan-quality-v1":
        raise SystemExit(f"{fig_path}: unexpected schema {fig.get('schema')}")

    failures = []
    month = by_policy(fig.get("month", []), fig_path, "month")
    year = by_policy(fig.get("year_smoke", []), fig_path, "year_smoke")

    baseline_name = fig.get("baseline_policy", "BASE_LINE")
    for need in (baseline_name, "PLAN_BF"):
        if need not in month:
            raise SystemExit(f"{fig_path}: month section lacks {need}")

    base_wait = float(month[baseline_name]["wait_minutes"])
    plan_wait = float(month["PLAN_BF"]["wait_minutes"])
    print(
        f"month wait: {baseline_name}={base_wait:.1f} min "
        f"PLAN_BF={plan_wait:.1f} min "
        f"({(plan_wait / base_wait - 1.0) * 100.0:+.1f}%)"
        if base_wait > 0
        else f"month wait: baseline {base_wait}, PLAN_BF {plan_wait}"
    )
    if plan_wait > base_wait:
        failures.append(
            f"PLAN_BF mean wait {plan_wait:.1f} min exceeds the "
            f"{baseline_name} baseline {base_wait:.1f} min on the "
            "BB-constrained month"
        )

    for policy in PLANNING_POLICIES:
        for section_name, section in (("month", month), ("year_smoke", year)):
            row = section.get(policy)
            if row is None:
                failures.append(f"{section_name} section lacks {policy}")
                continue
            replans = int(row.get("plan_replans", 0))
            if replans <= 0:
                failures.append(
                    f"{section_name} {policy}: no replans recorded — the "
                    "policy is not actually planning"
                )
            if "plan_wall_seconds" not in row:
                failures.append(
                    f"{section_name} {policy}: replan cost not reported"
                )
                continue
            plan_s = float(row["plan_wall_seconds"])
            sim_s = float(row.get("sim_wall_seconds", 0.0))
            share = plan_s / sim_s if sim_s > 0 else 0.0
            print(
                f"{section_name} {policy}: {replans} replans, "
                f"{plan_s:.4f}s in Plan() ({share * 100.0:.1f}% of the run)"
            )
            if share > max_plan_share:
                failures.append(
                    f"{section_name} {policy}: Plan() took "
                    f"{share * 100.0:.1f}% of the run wall time "
                    f"(> {max_plan_share * 100.0:.0f}%)"
                )

    print("FAIL" if failures else "ok")
    for f in failures:
        print(f"  {f}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
